// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation section plus the ablation studies (X1–X5). Each
// benchmark runs its experiment driver in quick mode (trimmed sweeps) and
// reports the headline quantities via b.ReportMetric; cmd/dalia-bench runs
// the full sweeps and prints the complete series.
//
// Run with:
//
//	go test -bench=. -benchmem -benchtime=1x
package dalia_test

import (
	"testing"

	"github.com/dalia-hpc/dalia/internal/bench"
	"github.com/dalia-hpc/dalia/internal/dense"
)

// reportLast publishes the last point of the named series as a metric.
func reportLast(b *testing.B, fig *bench.Figure, series, unit string) {
	b.Helper()
	for _, s := range fig.Series {
		if s.Name == series && len(s.Y) > 0 {
			b.ReportMetric(s.Y[len(s.Y)-1], unit)
			return
		}
	}
}

// BenchmarkKernelGemm1024 reports the headline dense-engine number: packed
// register-tiled GEMM GFLOP/s at n=1024, single-threaded. The packed-vs-
// naive comparison sweep lives in internal/dense/kernel_test.go and in
// `dalia-bench -exp=kernels` (which also writes the JSON baseline).
func BenchmarkKernelGemm1024(b *testing.B) {
	prev := dense.SetMaxWorkers(1)
	defer dense.SetMaxWorkers(prev)
	n := 1024
	x := dense.New(n, n)
	y := dense.New(n, n)
	c := dense.New(n, n)
	for i := range x.Data {
		x.Data[i] = float64(i%17) * 0.25
		y.Data[i] = float64(i%13) * 0.5
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dense.Gemm(dense.NoTrans, dense.NoTrans, 1, x, y, 0, c)
	}
	b.StopTimer()
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s-packed")
}

// BenchmarkFig4StrongScaling regenerates the strong-scaling comparison of
// Fig. 4 (DALIA vs INLA_DIST-like vs R-INLA-like, univariate MB1).
func BenchmarkFig4StrongScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig4(true)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "DALIA", "s/iter-widest")
		reportLast(b, fig, "R-INLA-like", "s/iter-rinla")
	}
}

// BenchmarkFig5SolverWeakScaling regenerates the solver weak-scaling
// microbenchmark of Fig. 5 (PPOBTAF/PPOBTAS/PPOBTASI efficiency, MB2).
func BenchmarkFig5SolverWeakScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig5(true)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "factorization lb=1.0", "eff%-factor")
		reportLast(b, fig, "triangular solve lb=1.0", "eff%-solve")
	}
}

// BenchmarkFig6aWeakScalingTime regenerates the weak scaling through the
// time domain of Fig. 6a (trivariate WA1).
func BenchmarkFig6aWeakScalingTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig6a(true)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "DALIA", "s/iter-widest")
	}
}

// BenchmarkFig6bWeakScalingSpace regenerates the weak scaling through mesh
// refinement of Fig. 6b (trivariate WA2, memory-cap-driven S3).
func BenchmarkFig6bWeakScalingSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig6b(true)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "DALIA", "s/iter-finest")
	}
}

// BenchmarkFig7StrongScaling regenerates the application-level strong
// scaling of Fig. 7 (trivariate SA1, full three-layer scheme).
func BenchmarkFig7StrongScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig7(true)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "DALIA", "s/iter-widest")
		reportLast(b, fig, "efficiency %", "eff%-widest")
	}
}

// BenchmarkTable4Datasets materializes every Table IV dataset configuration
// (model assembly + mapping construction for each).
func BenchmarkTable4Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.Table4()
		if len(fig.Notes) == 0 {
			b.Fatal("empty dataset table")
		}
	}
}

// BenchmarkAppAirPollution regenerates the §VI application numbers
// (elevation effects, correlations, downscaling RMSE) on the synthetic
// CAMS-like dataset.
func BenchmarkAppAirPollution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.App(true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.DownscaleRMSE, "rmse-downscaled")
		b.ReportMetric(rep.CoarseRMSE, "rmse-coarse")
	}
}

// BenchmarkMappingSparseToDense is ablation X1: cached O(nnz) mapping vs
// naive O(n·b²) densification (§IV-F).
func BenchmarkMappingSparseToDense(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationMapping(true)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "cached mapping", "s-cached")
		reportLast(b, fig, "naive densification", "s-naive")
	}
}

// BenchmarkAblationBTAvsSparse is ablation X3: the structured solver
// against the general sparse Cholesky on identical conditional precisions.
func BenchmarkAblationBTAvsSparse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationBTAvsSparse(true)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "BTA (DALIA)", "s-bta")
		reportLast(b, fig, "general sparse (R-INLA-like)", "s-sparse")
	}
}

// BenchmarkAblationS2 is ablation X4: the concurrent Q_p/Q_c pipelines at
// fixed resources.
func BenchmarkAblationS2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationS2(true)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "per-iteration time", "s/iter-s2on")
	}
}

// BenchmarkAblationLoadBalance is ablation X5: the lb sweep of §V-C.
func BenchmarkAblationLoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationLB(true)
		if err != nil {
			b.Fatal(err)
		}
		reportLast(b, fig, "factorization", "s-factor")
		reportLast(b, fig, "triangular solve", "s-solve")
	}
}
