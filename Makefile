# DALIA-Go build/verify/bench targets.
#
#   make test       — tier-1 verification: vet + build + full test suite
#   make ci         — the CI pipeline locally: gofmt gate, tier-1, race,
#                     purego fallback, then the non-blocking bench smoke
#   make ci-local   — the full workflow job sequence, including the
#                     GOMAXPROCS race matrix, the chaos suite, the arm64
#                     cross-build and the latency gate — what a green run
#                     of .github/workflows/ci.yml proves, runnable offline
#   make bench      — microbenchmarks (testing.B, 1 iteration, with allocs)
#   make baseline   — write BENCH_$(PR).json: the perf baseline this PR
#                     establishes (EXP selects the experiment; PR 1 wrote
#                     the kernels baseline, PR 2 the serving baseline,
#                     PR 3 the parallel-in-time baseline, PR 4 the hybrid
#                     two-level scheduling baseline, PR 5 the recursive
#                     reduced-system engine baseline, PR 6 the serving
#                     latency baseline, PR 7 the crash-recovery baseline,
#                     PR 8 the mixed-precision baseline, PR 9 the task-DAG
#                     scheduler baseline)
#   make bench-smoke— regression gates: kernels GEMM rate vs BENCH_1.json
#                     (25% floor), serving engine path vs BENCH_2.json,
#                     pintime rates vs BENCH_3.json, hybrid solver cycle
#                     rates vs BENCH_4.json, reduced-engine cycle rates vs
#                     BENCH_5.json (40% floors — the quick-mode runs are
#                     shorter and noisier), serving p99 latency vs
#                     BENCH_6.json (25% ceiling, p99 only) and crash
#                     recovery vs BENCH_7.json (restart cost ceiling plus
#                     the unconditional byte-identical-predictions check)
#                     and mixed-precision GEMM rates — fp32 and fp64 —
#                     vs BENCH_8.json (40% floor; the gate also refuses
#                     a baseline recorded under a different precision mode)
#                     and the task-DAG scheduler vs BENCH_9.json (40%
#                     floor, plus the unconditional DAG-vs-phase-barrier
#                     neutrality check of the current run)
#   make all        — everything above

GO ?= go
# PR/BASE/BENCH parameterize the baseline artifact so successive PRs never
# clobber earlier baselines (BENCH_1.json is the PR 1 kernels reference the
# smoke compares against). BASE lags PR by one since PR 8 (persistence
# hardening) gated on the existing baselines without adding a new one.
PR ?= 10
BASE ?= 9
BENCH ?= BENCH_$(BASE).json
EXP ?= sched

.PHONY: all test vet fmt-check race purego bench baseline bench-smoke ci ci-local

all: test bench baseline

fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test: vet
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Portable path: the amd64 assembly micro-kernel compiled out.
purego:
	$(GO) test -tags purego ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

baseline:
	$(GO) run ./cmd/dalia-bench -exp=$(EXP) -out $(BENCH)

bench-smoke:
	$(GO) run ./cmd/dalia-bench -exp=kernels -compare BENCH_1.json
	$(GO) run ./cmd/dalia-bench -exp=serving -quick -compare BENCH_2.json -maxregress 0.4
	$(GO) run ./cmd/dalia-bench -exp=pintime -quick -compare BENCH_3.json -maxregress 0.4
	$(GO) run ./cmd/dalia-bench -exp=hybrid -quick -compare BENCH_4.json -maxregress 0.4
	$(GO) run ./cmd/dalia-bench -exp=reduced -quick -compare BENCH_5.json -maxregress 0.4
	$(GO) run ./cmd/dalia-bench -exp=latency -quick -compare BENCH_6.json -maxregress 0.25
	$(GO) run ./cmd/dalia-bench -exp=recovery -quick -compare BENCH_7.json -maxregress 1.0
	$(GO) run ./cmd/dalia-bench -exp=precision -quick -compare BENCH_8.json -maxregress 0.4
	$(GO) run ./cmd/dalia-bench -exp=sched -quick -compare BENCH_9.json -maxregress 0.4

ci: fmt-check test race purego
	-$(MAKE) bench-smoke

# Mirror of the GitHub workflow, job by job: tier1, race, the race-pintime
# GOMAXPROCS matrix over the partition/replica packages, the chaos
# fault-injection suite, the purego fallback with the arm64 cross-build,
# then the non-blocking perf smoke and latency gate.
ci-local: fmt-check test race
	GOMAXPROCS=2 $(GO) test -race -count=1 ./internal/sched/ ./internal/bta/ ./internal/comm/ ./internal/inla/ ./internal/predict/ ./internal/serve/
	GOMAXPROCS=8 $(GO) test -race -count=1 ./internal/sched/ ./internal/bta/ ./internal/comm/ ./internal/inla/ ./internal/predict/ ./internal/serve/
	$(GO) test -race -count=2 \
		-run 'Chaos|Fault|Kill|Shrink|Revoke|Timeout|Corrupt|Dropped|Dead|Quarantine|Recovery|Overload|Shutdown|Drain|Panic|Readyz|Resilience|Torture|Restart|Interrupted' \
		./internal/comm/ ./internal/bta/ ./internal/inla/ ./internal/serve/ ./internal/store/
	$(GO) test -count=1 -run 'CrashRestartRecovery' ./cmd/dalia-serve/
	$(GO) test -tags purego ./...
	$(GO) test -tags purego -count=1 -run '32|Mixed|Refined|Precision' ./internal/dense/ ./internal/bta/ ./internal/inla/
	GOOS=linux GOARCH=arm64 $(GO) build ./...
	-$(MAKE) bench-smoke
