# DALIA-Go build/verify/bench targets.
#
#   make test    — tier-1 verification: vet + build + full test suite
#   make bench   — microbenchmarks (testing.B, 1 iteration, with allocs)
#   make baseline— write BENCH_1.json: the dense-engine perf baseline this
#                  PR establishes, for future PRs to compare against
#   make all     — everything above

GO ?= go

.PHONY: all test vet bench baseline

all: test bench baseline

vet:
	$(GO) vet ./...

test: vet
	$(GO) build ./...
	$(GO) test ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

baseline:
	$(GO) run ./cmd/dalia-bench -exp=kernels -out BENCH_1.json
