package dalia_test

import (
	"math"
	"testing"

	dalia "github.com/dalia-hpc/dalia"
)

// TestPublicAPIEndToEnd exercises the full public workflow: mesh, synthetic
// data, fit, fixed effects, and the simulated cluster.
func TestPublicAPIEndToEnd(t *testing.T) {
	ds, err := dalia.Generate(dalia.GenConfig{
		Nv: 1, Nt: 3, Nr: 2,
		MeshNx: 4, MeshNy: 4,
		ObsPerStep: 20,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := ds.Model
	if m.NumHyper() != 4 {
		t.Fatalf("dim(θ) = %d", m.NumHyper())
	}

	prior := dalia.WeakPrior(ds.Theta0, 3)
	opts := dalia.DefaultFitOptions()
	opts.Opt.MaxIter = 6
	opts.SkipHyperUncertainty = true
	res, err := dalia.Fit(m, prior, ds.Theta0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mu) != m.Dims.Total() || len(res.LatentVar) != m.Dims.Total() {
		t.Fatal("posterior sizes wrong")
	}
	fes := dalia.FixedEffects(m, res)
	if len(fes) != 2 {
		t.Fatalf("fixed effects = %d", len(fes))
	}
	for _, fe := range fes {
		if math.IsNaN(fe.Mean) || fe.SD <= 0 {
			t.Fatalf("bad fixed effect %+v", fe)
		}
	}

	rep, err := dalia.RunCluster(m, prior, ds.Theta0, dalia.ClusterConfig{
		World: 3, Machine: dalia.DefaultMachine(), Iterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerIter <= 0 {
		t.Fatal("cluster report has no runtime")
	}
}

func TestPublicMeshAndModelConstruction(t *testing.T) {
	msh := dalia.UniformMesh(4, 4, 100, 100)
	if msh.NumNodes() != 16 {
		t.Fatalf("nodes = %d", msh.NumNodes())
	}
	cov := dalia.NewDenseMatrix(2, 1)
	cov.Set(0, 0, 1)
	cov.Set(1, 0, 1)
	obs := &dalia.Obs{
		Points:     []dalia.Point{{X: 10, Y: 10}, {X: 50, Y: 80}},
		TimeIdx:    []int{0, 1},
		Covariates: cov,
		Y:          [][]float64{{1.0, 2.0}},
	}
	m, err := dalia.NewModel(msh, 2, 1, 1, obs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dims.Ns != 16 || m.Dims.Nt != 2 {
		t.Fatalf("dims %+v", m.Dims)
	}
}

func TestPublicBTAFacade(t *testing.T) {
	m := dalia.NewBTAMatrix(3, 2, 1)
	for i := 0; i < 3; i++ {
		m.Diag[i].AddDiag(4)
	}
	m.Tip.AddDiag(4)
	f, err := dalia.FactorizeBTA(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.LogDet()-7*math.Log(4)) > 1e-12 {
		t.Fatalf("logdet = %v", f.LogDet())
	}
}

func TestPublicLambda(t *testing.T) {
	l, err := dalia.NewLambda([]float64{1, 2}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	c := l.ImpliedCorrelation()
	if c.At(0, 1) <= 0 {
		t.Fatal("positive coupling must give positive correlation")
	}
}
