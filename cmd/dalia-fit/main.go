// dalia-fit fits a multivariate spatio-temporal model described by a JSON
// configuration to synthetic data and prints the posterior summary. It is
// the command-line face of the dalia.Fit API.
//
// Usage:
//
//	dalia-fit -config model.json
//	dalia-fit -print-config          # emit a commented default config
//
// Config schema (JSON):
//
//	{
//	  "nv": 3, "nt": 6, "nr": 2,
//	  "meshNx": 7, "meshNy": 5,
//	  "width": 560, "height": 220,
//	  "obsPerStep": 60,
//	  "seed": 1,
//	  "maxIter": 10,
//	  "hyperUncertainty": true
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	dalia "github.com/dalia-hpc/dalia"
)

type config struct {
	Family           string  `json:"family"` // "gaussian" (default) or "poisson"
	Nv               int     `json:"nv"`
	Nt               int     `json:"nt"`
	Nr               int     `json:"nr"`
	MeshNx           int     `json:"meshNx"`
	MeshNy           int     `json:"meshNy"`
	Width            float64 `json:"width"`
	Height           float64 `json:"height"`
	ObsPerStep       int     `json:"obsPerStep"`
	Seed             int64   `json:"seed"`
	MaxIter          int     `json:"maxIter"`
	HyperUncertainty bool    `json:"hyperUncertainty"`
	// Precision selects the factorization precision policy: "fp64" (default)
	// or "mixed" (fp32 interior sweeps + fp64 iterative refinement).
	Precision string `json:"precision,omitempty"`
}

func defaultConfig() config {
	return config{
		Nv: 1, Nt: 4, Nr: 2,
		MeshNx: 6, MeshNy: 5,
		Width: 400, Height: 300,
		ObsPerStep: 40, Seed: 1,
		MaxIter: 20, HyperUncertainty: true,
	}
}

func main() {
	cfgPath := flag.String("config", "", "path to a JSON model configuration")
	printCfg := flag.Bool("print-config", false, "print the default configuration and exit")
	precFlag := flag.String("precision", "", "factorization precision policy: fp64 or mixed (overrides the config's \"precision\")")
	schedWorkers := flag.Int("sched-workers", 0, "worker count of the shared task-DAG executor that solver phases and evaluation batches run on (0 = GOMAXPROCS)")
	flag.Parse()
	if *schedWorkers > 0 {
		dalia.SetSchedWorkers(*schedWorkers)
	}

	cfg := defaultConfig()
	if *printCfg {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cfg); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *cfgPath != "" {
		raw, err := os.ReadFile(*cfgPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.Unmarshal(raw, &cfg); err != nil {
			log.Fatalf("parsing %s: %v", *cfgPath, err)
		}
	}

	family := dalia.LikGaussian
	if cfg.Family == "poisson" {
		family = dalia.LikPoisson
	}
	ds, err := dalia.Generate(dalia.GenConfig{
		Nv: cfg.Nv, Nt: cfg.Nt, Nr: cfg.Nr,
		MeshNx: cfg.MeshNx, MeshNy: cfg.MeshNy,
		Width: cfg.Width, Height: cfg.Height,
		ObsPerStep: cfg.ObsPerStep,
		Seed:       cfg.Seed,
		Family:     family,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := ds.Model
	fmt.Printf("model: nv=%d ns=%d nt=%d nr=%d  latent dim %d  dim(θ)=%d  obs %d\n",
		m.Dims.Nv, m.Dims.Ns, m.Dims.Nt, m.Dims.Nr, m.Dims.Total(), m.NumHyper(), m.Obs.M()*m.Dims.Nv)

	prior := dalia.WeakPrior(ds.Theta0, 3)
	opts := dalia.DefaultFitOptions()
	opts.Opt.MaxIter = cfg.MaxIter
	opts.SkipHyperUncertainty = !cfg.HyperUncertainty
	precSpec := cfg.Precision
	if *precFlag != "" {
		precSpec = *precFlag
	}
	prec, err := dalia.ParsePrecision(precSpec)
	if err != nil {
		log.Fatal(err)
	}
	opts.Precision = prec
	if prec == dalia.PrecMixed {
		fmt.Println("precision: mixed (fp32 interior sweeps + fp64 iterative refinement)")
	}
	res, err := dalia.Fit(m, prior, ds.Theta0, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer: %d iterations, %d evaluations, converged=%v, -fobj=%.4f\n\n",
		res.Opt.Iterations, res.Opt.FEvals, res.Opt.Converged, res.Opt.F)

	dec, err := m.DecodeTheta(res.Theta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hyperparameters (fitted | truth):")
	for k := 0; k < cfg.Nv; k++ {
		fmt.Printf("  process %d: range_s %7.1f | %7.1f   range_t %5.2f | %5.2f   sd %5.2f | %5.2f",
			k,
			dec.Process[k].RangeS, ds.TrueTheta.Process[k].RangeS,
			dec.Process[k].RangeT, ds.TrueTheta.Process[k].RangeT,
			dec.Lambda.Sigmas[k], ds.TrueTheta.Lambda.Sigmas[k])
		if family == dalia.LikGaussian {
			fmt.Printf("   noise sd %5.3f | %5.3f", 1/math.Sqrt(dec.TauY[k]), 1/math.Sqrt(ds.TrueTheta.TauY[k]))
		}
		fmt.Println()
	}
	if hms := dalia.HyperMarginals(m, res); hms != nil {
		fmt.Println("\nhyperparameter marginals (natural scale where log-parametrized):")
		for _, hm := range hms {
			if hm.LogScale {
				fmt.Printf("  %-12s median %8.3f  [%8.3f, %8.3f]\n", hm.Name, hm.NaturalMedian, hm.NaturalQ025, hm.NaturalQ975)
			} else {
				fmt.Printf("  %-12s mean   %+8.3f  [%+8.3f, %+8.3f]\n", hm.Name, hm.Mean, hm.Q025, hm.Q975)
			}
		}
	}
	fmt.Println("\nfixed effects:")
	for _, fe := range dalia.FixedEffects(m, res) {
		fmt.Printf("  process %d effect %d: %+.3f [%+.3f, %+.3f]\n",
			fe.Process, fe.Index, fe.Mean, fe.Q025, fe.Q975)
	}
}
