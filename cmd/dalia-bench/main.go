// dalia-bench regenerates the tables and figures of the paper's evaluation
// section. Each experiment prints the same rows/series the paper reports,
// annotated with the paper's published numbers for comparison.
//
// Usage:
//
//	dalia-bench -exp=fig4            # one experiment
//	dalia-bench -exp=fig4,fig5,app   # several
//	dalia-bench -exp=all -quick      # everything, trimmed sweeps
//
// Experiments: table1, table4, fig4, fig5, fig6a, fig6b, fig7, app,
// x1 (mapping), x3 (solver ablation), x4 (S2 ablation), x5 (lb sweep),
// kernels (dense BLAS-3 engine GFLOP/s; -out writes a JSON perf baseline,
// -compare checks GEMM rates against a stored baseline and fails on
// regression), serving (posterior-prediction throughput; -out writes the
// serving baseline BENCH_2.json, -compare gates the engine path against
// one), pintime (parallel-in-time BTA engine: single-evaluation latency
// and selected-inversion throughput vs partitions; -out writes
// BENCH_3.json, -compare gates against one), hybrid (two-level
// ranks × partitions distributed BTA solver cycle times; -out writes
// BENCH_4.json, -compare gates against one), reduced (parallel recursive
// reduced-system engine: factorization latency and reduced-phase share
// across partitions × recursion depth × pipelined handoff; -out writes
// BENCH_5.json, -compare gates against one), latency (closed-loop clients
// against the replicated HTTP serving path: p50/p99/p999 request latency
// and throughput; -out writes BENCH_6.json, -compare gates p99 against
// one), recovery (crash recovery: restart-from-store vs refit cost for a
// registry of fitted models, asserting byte-identical predictions; -out
// writes BENCH_7.json, -compare gates restart cost against one), precision
// (mixed precision: fp32 vs fp64 GEMM/POTRF GFLOP/s and the mixed
// per-stage BTA factor+solve cycle with its refinement iteration count;
// -out writes BENCH_8.json, -compare gates GEMM rates against one and
// refuses cross-mode baselines), sched (work-stealing task-DAG executor
// vs the legacy phase-barrier concurrency: gradient-batch makespan,
// width-1 evaluation latency and raw spawn/join rate, num_cpu recorded;
// -out writes BENCH_9.json, -compare gates rates against one and always
// checks DAG-vs-barrier neutrality of the current run).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/dalia-hpc/dalia/internal/bench"
)

type experiment struct {
	name string
	desc string
	run  func(quick bool) error
}

func figExp(name, desc string, f func(bool) (*bench.Figure, error)) experiment {
	return experiment{name: name, desc: desc, run: func(quick bool) error {
		fig, err := f(quick)
		if err != nil {
			return err
		}
		fig.Fprint(os.Stdout)
		return nil
	}}
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiments or 'all'")
	quick := flag.Bool("quick", false, "trim sweeps for fast runs")
	out := flag.String("out", "", "write the kernels/serving/pintime experiment's JSON baseline to this path")
	compare := flag.String("compare", "", "kernels/serving/pintime: compare against this stored baseline and exit 1 on a >-maxregress rate regression")
	maxRegress := flag.Float64("maxregress", 0.25, "maximum tolerated fractional rate regression in -compare mode")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this path")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	experiments := []experiment{
		{"table1", "framework capability matrix (Table I)", func(bool) error {
			bench.Table1().Fprint(os.Stdout)
			return nil
		}},
		{"table4", "dataset dimensions, paper and scaled (Table IV)", func(bool) error {
			bench.Table4().Fprint(os.Stdout)
			return nil
		}},
		figExp("fig4", "strong scaling vs INLA_DIST-like and R-INLA-like (MB1)", bench.Fig4),
		figExp("fig5", "distributed solver weak scaling with/without lb (MB2)", bench.Fig5),
		figExp("fig6a", "weak scaling through the time domain (WA1)", bench.Fig6a),
		figExp("fig6b", "weak scaling through mesh refinement + memory cap (WA2)", bench.Fig6b),
		figExp("fig7", "application-level strong scaling (SA1)", bench.Fig7),
		{"app", "air-pollution application study (§VI, AP1)", func(quick bool) error {
			rep, err := bench.App(quick)
			if err != nil {
				return err
			}
			bench.PrintApp(rep, os.Stdout)
			return nil
		}},
		figExp("x1", "ablation: cached vs naive sparse→dense mapping (§IV-F)", bench.AblationMapping),
		figExp("x3", "ablation: BTA solver vs general sparse Cholesky", bench.AblationBTAvsSparse),
		figExp("x4", "ablation: S2 pipeline on/off at fixed resources", bench.AblationS2),
		figExp("x5", "ablation: load-balance factor sweep (§V-C)", bench.AblationLB),
		{"kernels", "dense BLAS-3 engine microbenchmarks (tiled vs naive)", func(quick bool) error {
			base := bench.Kernels(quick)
			bench.PrintKernels(base, os.Stdout)
			if *out != "" {
				if err := bench.WriteBaseline(base, *out); err != nil {
					return err
				}
				fmt.Printf("    baseline written to %s\n", *out)
			}
			if *compare != "" {
				stored, err := bench.LoadBaseline(*compare)
				if err != nil {
					return err
				}
				regs := bench.CompareKernels(base, stored, *maxRegress)
				if len(regs) > 0 {
					for _, r := range regs {
						fmt.Fprintf(os.Stderr, "    REGRESSION %s\n", r)
					}
					return fmt.Errorf("%d GEMM regression(s) beyond %.0f%% vs %s", len(regs), *maxRegress*100, *compare)
				}
				fmt.Printf("    no GEMM regression beyond %.0f%% vs %s\n", *maxRegress*100, *compare)
			}
			return nil
		}},
		{"serving", "posterior-prediction serving throughput (engine + HTTP paths)", func(quick bool) error {
			base, err := bench.Serving(quick)
			if err != nil {
				return err
			}
			bench.PrintServing(base, os.Stdout)
			if *out != "" {
				if err := bench.WriteServingBaseline(base, *out); err != nil {
					return err
				}
				fmt.Printf("    baseline written to %s\n", *out)
			}
			if *compare != "" {
				stored, err := bench.LoadServingBaseline(*compare)
				if err != nil {
					return err
				}
				regs := bench.CompareServing(base, stored, *maxRegress)
				if len(regs) > 0 {
					for _, r := range regs {
						fmt.Fprintf(os.Stderr, "    REGRESSION %s\n", r)
					}
					return fmt.Errorf("%d serving regression(s) beyond %.0f%% vs %s", len(regs), *maxRegress*100, *compare)
				}
				fmt.Printf("    no engine-path regression beyond %.0f%% vs %s\n", *maxRegress*100, *compare)
			}
			return nil
		}},
		{"latency", "serving tail latency under concurrent closed-loop load (replicated snapshot path)", func(quick bool) error {
			base, err := bench.Latency(quick)
			if err != nil {
				return err
			}
			bench.PrintLatency(base, os.Stdout)
			if *out != "" {
				if err := bench.WriteLatencyBaseline(base, *out); err != nil {
					return err
				}
				fmt.Printf("    baseline written to %s\n", *out)
			}
			if *compare != "" {
				stored, err := bench.LoadLatencyBaseline(*compare)
				if err != nil {
					return err
				}
				if !bench.LatencyComparable(base, stored) {
					fmt.Printf("    gate skipped: GOMAXPROCS %d here vs %d in %s (latencies not comparable)\n",
						base.GoMaxProcs, stored.GoMaxProcs, *compare)
					return nil
				}
				regs := bench.CompareLatency(base, stored, *maxRegress)
				if len(regs) > 0 {
					for _, r := range regs {
						fmt.Fprintf(os.Stderr, "    REGRESSION %s\n", r)
					}
					return fmt.Errorf("%d p99 regression(s) beyond %.0f%% vs %s", len(regs), *maxRegress*100, *compare)
				}
				fmt.Printf("    no p99 regression beyond %.0f%% vs %s\n", *maxRegress*100, *compare)
			}
			return nil
		}},
		{"recovery", "crash recovery: restart-from-store vs refit (byte-identical predictions)", func(quick bool) error {
			base, err := bench.Recovery(quick)
			if err != nil {
				return err
			}
			bench.PrintRecovery(base, os.Stdout)
			if *out != "" {
				if err := bench.WriteRecoveryBaseline(base, *out); err != nil {
					return err
				}
				fmt.Printf("    baseline written to %s\n", *out)
			}
			if *compare != "" {
				stored, err := bench.LoadRecoveryBaseline(*compare)
				if err != nil {
					return err
				}
				if !bench.RecoveryComparable(base, stored) {
					fmt.Printf("    gate skipped: GOMAXPROCS %d here vs %d in %s (restart times not comparable)\n",
						base.GoMaxProcs, stored.GoMaxProcs, *compare)
					return nil
				}
				regs := bench.CompareRecovery(base, stored, *maxRegress)
				if len(regs) > 0 {
					for _, r := range regs {
						fmt.Fprintf(os.Stderr, "    REGRESSION %s\n", r)
					}
					return fmt.Errorf("%d recovery regression(s) beyond %.0f%% vs %s", len(regs), *maxRegress*100, *compare)
				}
				fmt.Printf("    no recovery regression beyond %.0f%% vs %s\n", *maxRegress*100, *compare)
			}
			return nil
		}},
		{"hybrid", "hybrid two-level (ranks × partitions) distributed BTA solver", func(quick bool) error {
			base, err := bench.Hybrid(quick)
			if err != nil {
				return err
			}
			bench.PrintHybrid(base, os.Stdout)
			if *out != "" {
				if err := bench.WriteHybridBaseline(base, *out); err != nil {
					return err
				}
				fmt.Printf("    baseline written to %s\n", *out)
			}
			if *compare != "" {
				stored, err := bench.LoadHybridBaseline(*compare)
				if err != nil {
					return err
				}
				if !bench.HybridComparable(base, stored) {
					fmt.Printf("    gate skipped: GOMAXPROCS %d here vs %d in %s (virtual times not comparable)\n",
						base.GoMaxProcs, stored.GoMaxProcs, *compare)
					return nil
				}
				regs := bench.CompareHybrid(base, stored, *maxRegress)
				if len(regs) > 0 {
					for _, r := range regs {
						fmt.Fprintf(os.Stderr, "    REGRESSION %s\n", r)
					}
					return fmt.Errorf("%d hybrid regression(s) beyond %.0f%% vs %s", len(regs), *maxRegress*100, *compare)
				}
				fmt.Printf("    no hybrid regression beyond %.0f%% vs %s\n", *maxRegress*100, *compare)
			}
			return nil
		}},
		{"reduced", "parallel recursive reduced-system engine (P × depth × pipelined handoff)", func(quick bool) error {
			base, err := bench.Reduced(quick)
			if err != nil {
				return err
			}
			bench.PrintReduced(base, os.Stdout)
			if *out != "" {
				if err := bench.WriteReducedBaseline(base, *out); err != nil {
					return err
				}
				fmt.Printf("    baseline written to %s\n", *out)
			}
			if *compare != "" {
				stored, err := bench.LoadReducedBaseline(*compare)
				if err != nil {
					return err
				}
				if !bench.ReducedComparable(base, stored) {
					fmt.Printf("    gate skipped: GOMAXPROCS %d here vs %d in %s (latencies not comparable)\n",
						base.GoMaxProcs, stored.GoMaxProcs, *compare)
					return nil
				}
				regs := bench.CompareReduced(base, stored, *maxRegress)
				if len(regs) > 0 {
					for _, r := range regs {
						fmt.Fprintf(os.Stderr, "    REGRESSION %s\n", r)
					}
					return fmt.Errorf("%d reduced regression(s) beyond %.0f%% vs %s", len(regs), *maxRegress*100, *compare)
				}
				fmt.Printf("    no reduced regression beyond %.0f%% vs %s\n", *maxRegress*100, *compare)
			}
			return nil
		}},
		{"precision", "mixed precision: fp32 vs fp64 kernels, mixed BTA factor+solve with refinement", func(quick bool) error {
			base := bench.Precision(quick)
			bench.PrintPrecision(base, os.Stdout)
			if *out != "" {
				if err := bench.WritePrecisionBaseline(base, *out); err != nil {
					return err
				}
				fmt.Printf("    baseline written to %s\n", *out)
			}
			if *compare != "" {
				stored, err := bench.LoadPrecisionBaseline(*compare)
				if err != nil {
					return err
				}
				regs := bench.ComparePrecision(base, stored, *maxRegress)
				if len(regs) > 0 {
					for _, r := range regs {
						fmt.Fprintf(os.Stderr, "    REGRESSION %s\n", r)
					}
					return fmt.Errorf("%d precision regression(s) beyond %.0f%% vs %s", len(regs), *maxRegress*100, *compare)
				}
				fmt.Printf("    no GEMM regression beyond %.0f%% vs %s\n", *maxRegress*100, *compare)
			}
			return nil
		}},
		{"sched", "task-DAG executor vs phase-barrier (gradient-batch makespan, spawn/join rate)", func(quick bool) error {
			base, err := bench.Sched(quick)
			if err != nil {
				return err
			}
			bench.PrintSched(base, os.Stdout)
			if *out != "" {
				if err := bench.WriteSchedBaseline(base, *out); err != nil {
					return err
				}
				fmt.Printf("    baseline written to %s\n", *out)
			}
			if *compare != "" {
				stored, err := bench.LoadSchedBaseline(*compare)
				if err != nil {
					return err
				}
				if !bench.SchedComparable(base, stored) {
					fmt.Printf("    baseline gate skipped: GOMAXPROCS %d here vs %d in %s (makespans not comparable; neutrality still checked)\n",
						base.GoMaxProcs, stored.GoMaxProcs, *compare)
					stored = nil
				}
				regs := bench.CompareSched(base, stored, *maxRegress)
				if len(regs) > 0 {
					for _, r := range regs {
						fmt.Fprintf(os.Stderr, "    REGRESSION %s\n", r)
					}
					return fmt.Errorf("%d sched regression(s) beyond %.0f%% vs %s", len(regs), *maxRegress*100, *compare)
				}
				fmt.Printf("    dag within tolerance of phase-barrier; no rate regression beyond %.0f%% vs %s\n", *maxRegress*100, *compare)
			}
			return nil
		}},
		{"pintime", "parallel-in-time BTA engine (single-eval latency, selected-inversion throughput)", func(quick bool) error {
			base, err := bench.Pintime(quick)
			if err != nil {
				return err
			}
			bench.PrintPintime(base, os.Stdout)
			if *out != "" {
				if err := bench.WritePintimeBaseline(base, *out); err != nil {
					return err
				}
				fmt.Printf("    baseline written to %s\n", *out)
			}
			if *compare != "" {
				stored, err := bench.LoadPintimeBaseline(*compare)
				if err != nil {
					return err
				}
				if !bench.PintimeComparable(base, stored) {
					fmt.Printf("    gate skipped: GOMAXPROCS %d here vs %d in %s (latencies not comparable)\n",
						base.GoMaxProcs, stored.GoMaxProcs, *compare)
					return nil
				}
				regs := bench.ComparePintime(base, stored, *maxRegress)
				if len(regs) > 0 {
					for _, r := range regs {
						fmt.Fprintf(os.Stderr, "    REGRESSION %s\n", r)
					}
					return fmt.Errorf("%d pintime regression(s) beyond %.0f%% vs %s", len(regs), *maxRegress*100, *compare)
				}
				fmt.Printf("    no pintime regression beyond %.0f%% vs %s\n", *maxRegress*100, *compare)
			}
			return nil
		}},
	}

	want := map[string]bool{}
	runAll := *expFlag == "all"
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}

	// -out is honored by several experiments; refuse a selection where a
	// later one would silently overwrite an earlier one's file.
	nOut := 0
	for _, name := range []string{"kernels", "serving", "pintime", "hybrid", "reduced", "latency", "recovery", "precision", "sched"} {
		if runAll || want[name] {
			nOut++
		}
	}
	if *out != "" && nOut > 1 {
		fmt.Fprintln(os.Stderr, "-out with several baseline-writing experiments selected would write them to one path; pick one of kernels/serving/pintime/hybrid/reduced/latency/recovery")
		os.Exit(2)
	}

	ran := 0
	for _, ex := range experiments {
		if !runAll && !want[ex.name] {
			continue
		}
		fmt.Printf("--- %s: %s\n", ex.name, ex.desc)
		t0 := time.Now()
		if err := ex.run(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", ex.name, err)
			os.Exit(1)
		}
		fmt.Printf("    (%.1fs)\n\n", time.Since(t0).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known:", *expFlag)
		for _, ex := range experiments {
			fmt.Fprintf(os.Stderr, " %s", ex.name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
