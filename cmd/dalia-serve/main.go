// dalia-serve is the long-lived batch inference server: it holds a registry
// of fitted spatio-temporal multivariate GP models and answers posterior
// prediction queries over HTTP JSON, coalescing concurrent point queries
// into single multi-RHS solves against the mode-factorized conditional
// precision.
//
// Usage:
//
//	dalia-serve                          # empty registry on :8042
//	dalia-serve -addr :9000 -window 2ms  # custom bind and batch window
//	dalia-serve -preload MB1,AP1         # fit Table IV datasets at startup
//
// See the package comment of internal/serve for the endpoint list and
// examples/serving for a walkthrough with a curl transcript.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/dalia-hpc/dalia/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8042", "listen address")
	window := flag.Duration("window", time.Millisecond, "batch coalescing window (0 = flush when queue drains)")
	preload := flag.String("preload", "", "comma-separated Table IV dataset specs to fit and register at startup (e.g. MB1,AP1)")
	maxIter := flag.Int("max-iter", 25, "BFGS iteration cap for preloaded fits")
	flag.Parse()

	srv := serve.New(serve.Options{BatchWindow: *window})
	if *preload != "" {
		for _, spec := range strings.Split(*preload, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			name := strings.ToLower(spec)
			fmt.Printf("preloading %s as %q...\n", spec, name)
			t0 := time.Now()
			m, err := srv.FitModel(serve.FitRequest{Name: name, Spec: spec, MaxIter: *maxIter})
			if err != nil {
				fmt.Fprintf(os.Stderr, "preload %s: %v\n", spec, err)
				os.Exit(1)
			}
			if err := srv.Register(m); err != nil {
				fmt.Fprintf(os.Stderr, "preload %s: %v\n", spec, err)
				os.Exit(1)
			}
			fmt.Printf("  fitted in %.2fs\n", time.Since(t0).Seconds())
		}
	}

	fmt.Printf("dalia-serve listening on %s (batch window %v)\n", *addr, *window)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "dalia-serve: %v\n", err)
		os.Exit(1)
	}
}
