// dalia-serve is the long-lived batch inference server: it holds a registry
// of fitted spatio-temporal multivariate GP models and answers posterior
// prediction queries over HTTP JSON, coalescing concurrent point queries
// into single multi-RHS solves against the mode-factorized conditional
// precision.
//
// Usage:
//
//	dalia-serve                          # empty registry on :8042
//	dalia-serve -addr :9000 -window 2ms  # custom bind and batch window
//	dalia-serve -replicas 4 -slo 10ms    # worker pool size and latency SLO
//	dalia-serve -preload MB1,AP1         # fit Table IV datasets at startup
//	dalia-serve -store-dir /var/lib/dalia # durable checkpoints + crash recovery
//	dalia-serve -request-timeout 5s -queue-depth 128 -drain-timeout 10s
//
// With -store-dir every successful fit or refit is checkpointed to a
// crash-safe store (atomic rename + write-ahead log) and in-flight fits
// checkpoint their optimizer state. On restart the registry is rebuilt
// from the store — recovered models serve bitwise-identical predictions
// without re-running a single mode search, and interrupted fits resume
// from their last BFGS iterate instead of θ₀.
//
// SIGINT/SIGTERM trigger a graceful drain: readiness flips to 503 so load
// balancers stop routing here, in-flight batches complete, queued requests
// fail with 503 + Retry-After, pending checkpoints flush to the store, and
// the listener closes once the drain finishes (or -drain-timeout elapses).
//
// See the package comment of internal/serve for the endpoint list and
// examples/serving for a walkthrough with a curl transcript.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/sched"
	"github.com/dalia-hpc/dalia/internal/serve"
	"github.com/dalia-hpc/dalia/internal/store"
)

func main() {
	addr := flag.String("addr", ":8042", "listen address")
	window := flag.Duration("window", time.Millisecond, "batch coalescing window (0 = flush when queue drains)")
	slo := flag.Duration("slo", 0, "per-request latency target: batches flush early once the oldest queued request's budget drops below the expected solve time (0 = disabled)")
	replicas := flag.Int("replicas", 0, "batch-worker replicas per model, each reading the lock-free snapshot (0 = GOMAXPROCS)")
	preload := flag.String("preload", "", "comma-separated Table IV dataset specs to fit and register at startup (e.g. MB1,AP1)")
	maxIter := flag.Int("max-iter", 25, "BFGS iteration cap for preloaded fits")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request deadline for prediction requests, 504 on expiry (0 = none)")
	queueDepth := flag.Int("queue-depth", 0, "per-model admission queue depth; a full queue sheds with 429 + Retry-After (0 = default 64)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long a SIGINT/SIGTERM drain waits for in-flight batches (0 = indefinitely)")
	storeDir := flag.String("store-dir", "", "durable checkpoint store directory: fits persist here and the registry recovers on restart (empty = in-memory only)")
	ckptEvery := flag.Int("checkpoint-every", 1, "persist in-flight optimizer state every N BFGS iterations (with -store-dir)")
	precFlag := flag.String("precision", "", "fit factorization precision policy: fp64 (default) or mixed (fp32 interior sweeps + fp64 refinement; serving accuracy is unaffected)")
	schedWorkers := flag.Int("sched-workers", 0, "worker count of the shared task-DAG executor that fit solver phases and evaluation batches run on (0 = GOMAXPROCS)")
	flag.Parse()
	if *schedWorkers > 0 {
		sched.SetSharedWorkers(*schedWorkers)
	}

	prec, err := bta.ParsePrecision(*precFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dalia-serve: %v\n", err)
		os.Exit(1)
	}

	opts := serve.Options{
		Precision:       prec,
		BatchWindow:     *window,
		SLO:             *slo,
		Replicas:        *replicas,
		RequestTimeout:  *reqTimeout,
		QueueDepth:      *queueDepth,
		DrainTimeout:    *drainTimeout,
		CheckpointEvery: *ckptEvery,
		Logf: func(format string, args ...any) {
			fmt.Printf("dalia-serve: "+format+"\n", args...)
		},
	}
	if *storeDir != "" {
		st, stats, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dalia-serve: open store %s: %v\n", *storeDir, err)
			os.Exit(1)
		}
		defer st.Close()
		opts.Store = st
		opts.Recovery = stats
		fmt.Printf("dalia-serve: store %s opened: %s\n", *storeDir, stats)
	}

	srv := serve.New(opts)
	if *preload != "" {
		for _, spec := range strings.Split(*preload, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			name := strings.ToLower(spec)
			fmt.Printf("preloading %s as %q...\n", spec, name)
			t0 := time.Now()
			m, err := srv.FitModel(serve.FitRequest{Name: name, Spec: spec, MaxIter: *maxIter})
			if err != nil {
				fmt.Fprintf(os.Stderr, "preload %s: %v\n", spec, err)
				os.Exit(1)
			}
			if err := srv.Register(m); err != nil {
				fmt.Fprintf(os.Stderr, "preload %s: %v\n", spec, err)
				os.Exit(1)
			}
			fmt.Printf("  fitted in %.2fs\n", time.Since(t0).Seconds())
		}
	}

	// Explicit Listen (instead of ListenAndServe) so ":0" binds print the
	// actual address — the crash-restart harness depends on this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dalia-serve: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	fmt.Printf("dalia-serve listening on %s (batch window %v)\n", ln.Addr(), *window)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "dalia-serve: %v\n", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		fmt.Printf("dalia-serve: %v received, draining...\n", sig)
		ctx := context.Background()
		if *drainTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *drainTimeout)
			defer cancel()
		}
		// Drain the batchers first (queued work answers 503 + Retry-After,
		// in-flight batches finish, pending checkpoints flush to the store),
		// then close the HTTP listener waiting for the in-flight handlers to
		// write their replies.
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "dalia-serve: drain: %v\n", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "dalia-serve: shutdown: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("dalia-serve: drained, bye")
	}
}
