// dalia-serve is the long-lived batch inference server: it holds a registry
// of fitted spatio-temporal multivariate GP models and answers posterior
// prediction queries over HTTP JSON, coalescing concurrent point queries
// into single multi-RHS solves against the mode-factorized conditional
// precision.
//
// Usage:
//
//	dalia-serve                          # empty registry on :8042
//	dalia-serve -addr :9000 -window 2ms  # custom bind and batch window
//	dalia-serve -replicas 4 -slo 10ms    # worker pool size and latency SLO
//	dalia-serve -preload MB1,AP1         # fit Table IV datasets at startup
//	dalia-serve -request-timeout 5s -queue-depth 128 -drain-timeout 10s
//
// SIGINT/SIGTERM trigger a graceful drain: readiness flips to 503 so load
// balancers stop routing here, in-flight batches complete, queued requests
// fail with 503 + Retry-After, and the listener closes once the drain
// finishes (or -drain-timeout elapses).
//
// See the package comment of internal/serve for the endpoint list and
// examples/serving for a walkthrough with a curl transcript.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/dalia-hpc/dalia/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8042", "listen address")
	window := flag.Duration("window", time.Millisecond, "batch coalescing window (0 = flush when queue drains)")
	slo := flag.Duration("slo", 0, "per-request latency target: batches flush early once the oldest queued request's budget drops below the expected solve time (0 = disabled)")
	replicas := flag.Int("replicas", 0, "batch-worker replicas per model, each reading the lock-free snapshot (0 = GOMAXPROCS)")
	preload := flag.String("preload", "", "comma-separated Table IV dataset specs to fit and register at startup (e.g. MB1,AP1)")
	maxIter := flag.Int("max-iter", 25, "BFGS iteration cap for preloaded fits")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request deadline for prediction requests, 504 on expiry (0 = none)")
	queueDepth := flag.Int("queue-depth", 0, "per-model admission queue depth; a full queue sheds with 429 + Retry-After (0 = default 64)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long a SIGINT/SIGTERM drain waits for in-flight batches (0 = indefinitely)")
	flag.Parse()

	srv := serve.New(serve.Options{
		BatchWindow:    *window,
		SLO:            *slo,
		Replicas:       *replicas,
		RequestTimeout: *reqTimeout,
		QueueDepth:     *queueDepth,
		DrainTimeout:   *drainTimeout,
	})
	if *preload != "" {
		for _, spec := range strings.Split(*preload, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			name := strings.ToLower(spec)
			fmt.Printf("preloading %s as %q...\n", spec, name)
			t0 := time.Now()
			m, err := srv.FitModel(serve.FitRequest{Name: name, Spec: spec, MaxIter: *maxIter})
			if err != nil {
				fmt.Fprintf(os.Stderr, "preload %s: %v\n", spec, err)
				os.Exit(1)
			}
			if err := srv.Register(m); err != nil {
				fmt.Fprintf(os.Stderr, "preload %s: %v\n", spec, err)
				os.Exit(1)
			}
			fmt.Printf("  fitted in %.2fs\n", time.Since(t0).Seconds())
		}
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	fmt.Printf("dalia-serve listening on %s (batch window %v)\n", *addr, *window)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "dalia-serve: %v\n", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		fmt.Printf("dalia-serve: %v received, draining...\n", sig)
		ctx := context.Background()
		if *drainTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *drainTimeout)
			defer cancel()
		}
		// Drain the batchers first (queued work answers 503 + Retry-After,
		// in-flight batches finish), then close the HTTP listener waiting
		// for the in-flight handlers to write their replies.
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "dalia-serve: drain: %v\n", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "dalia-serve: shutdown: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("dalia-serve: drained, bye")
	}
}
