package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestCrashRestartRecovery is the end-to-end crash drill the persistence
// layer exists for: a real dalia-serve process with -store-dir fits a
// model, is SIGKILLed (no drain, no flush window), and a fresh process on
// the same store must serve byte-identical predictions without re-running
// a single fit.
func TestCrashRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "dalia-serve")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	storeDir := filepath.Join(tmp, "store")

	fitBody := `{"name":"m","gen":{"nv":1,"nt":3,"nr":2,"mesh_nx":4,"mesh_ny":4,"obs_per_step":25,"seed":7},"max_iter":6}`
	predictBody := `{"queries":[{"x":120,"y":80,"t":0,"response":0},{"x":33,"y":210,"t":1,"response":0},{"x":350,"y":10,"t":2,"response":0}]}`

	// First life: fit, predict, then die without ceremony.
	proc1, base1 := startServe(t, bin, storeDir)
	resp := mustPost(t, base1+"/v1/models", fitBody)
	if resp.code != http.StatusCreated && resp.code != http.StatusOK {
		t.Fatalf("fit: status %d: %s", resp.code, resp.body)
	}
	pred1 := mustPost(t, base1+"/v1/models/m/predict", predictBody)
	if pred1.code != http.StatusOK {
		t.Fatalf("predict: status %d: %s", pred1.code, pred1.body)
	}
	stats1 := getStats(t, base1)
	if stats1["models"].(float64) != 1 || stats1["fits"].(float64) != 1 {
		t.Fatalf("pre-crash stats: %v", stats1)
	}
	// Give the async persister a beat to land the checkpoint, then SIGKILL:
	// no drain, no flush, the hard way.
	waitForFile(t, filepath.Join(storeDir, "models"), 5*time.Second)
	time.Sleep(100 * time.Millisecond)
	if err := proc1.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	proc1.Wait()

	// Second life: same store, fresh port. The model must be back without a
	// refit and answer with the exact same bytes.
	proc2, base2 := startServe(t, bin, storeDir)
	defer func() {
		proc2.Process.Kill()
		proc2.Wait()
	}()
	stats2 := getStats(t, base2)
	if stats2["models"].(float64) != 1 {
		t.Fatalf("post-restart stats: %v", stats2)
	}
	if fits, ok := stats2["fits"].(float64); ok && fits != 0 {
		t.Fatalf("restart re-ran %v fits; recovery must not refit", fits)
	}
	if rec, ok := stats2["recovered_models"].(float64); !ok || rec != 1 {
		t.Fatalf("recovered_models = %v, want 1 (stats %v)", stats2["recovered_models"], stats2)
	}
	pred2 := mustPost(t, base2+"/v1/models/m/predict", predictBody)
	if pred2.code != http.StatusOK {
		t.Fatalf("post-restart predict: status %d: %s", pred2.code, pred2.body)
	}
	if !bytes.Equal(pred1.body, pred2.body) {
		t.Fatalf("predictions diverged across crash:\n pre: %s\npost: %s", pred1.body, pred2.body)
	}
}

// startServe launches the built binary on an ephemeral port and returns the
// running process plus its base URL once /readyz answers.
func startServe(t *testing.T, bin, storeDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-store-dir", storeDir, "-window", "0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				fields := strings.Fields(line[i+len("listening on "):])
				if len(fields) > 0 {
					addrCh <- fields[0]
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server never printed its listen address")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("server at %s never became ready", base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

type httpResult struct {
	code int
	body []byte
}

func mustPost(t *testing.T, url, body string) httpResult {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read: %v", url, err)
	}
	return httpResult{code: resp.StatusCode, body: data}
}

func getStats(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("GET /stats: decode: %v", err)
	}
	return m
}

// waitForFile polls until dir contains at least one committed checkpoint.
func waitForFile(t *testing.T, dir string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		found := false
		filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err == nil && info != nil && !info.IsDir() && strings.HasSuffix(path, ".ckpt") {
				found = true
			}
			return nil
		})
		if found {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal(fmt.Sprintf("no checkpoint appeared under %s within %v", dir, timeout))
		}
		time.Sleep(20 * time.Millisecond)
	}
}
