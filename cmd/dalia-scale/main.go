// dalia-scale runs free-form scaling sweeps of the three-layer parallel
// scheme on the simulated distributed machine and prints the virtual-time
// report for each width.
//
// Usage:
//
//	dalia-scale -workers 1,4,16,31 -nv 3 -nt 8
//	dalia-scale -workers 8 -memcap 3145728     # force S3 via memory cap
//	dalia-scale -workers 4 -partitions 2       # hybrid ranks × partitions
//	dalia-scale -workers 8 -nt 64 -reduce-depth 1 -pipeline
//	                                           # recursive reduced system +
//	                                           # pipelined boundary handoff
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	dalia "github.com/dalia-hpc/dalia"
)

func main() {
	workersFlag := flag.String("workers", "1,4,16", "comma-separated worker counts")
	nv := flag.Int("nv", 3, "number of response variables")
	nt := flag.Int("nt", 8, "time steps")
	nr := flag.Int("nr", 1, "fixed effects per process")
	meshNx := flag.Int("mesh-nx", 5, "mesh vertices in x")
	meshNy := flag.Int("mesh-ny", 4, "mesh vertices in y")
	obs := flag.Int("obs", 15, "observations per time step")
	lb := flag.Float64("lb", 1.6, "S3 load-balance factor")
	partitions := flag.Int("partitions", 1, "S3 partitions per rank (hybrid two-level topology)")
	memcap := flag.Int64("memcap", 0, "modeled device memory in bytes (0 = unlimited)")
	iters := flag.Int("iters", 1, "quasi-Newton iterations to simulate")
	seed := flag.Int64("seed", 31, "dataset seed")
	reduceDepth := flag.Int("reduce-depth", 0, "reduced-system recursion depth (0 = sequential reduced solve)")
	pipeline := flag.Bool("pipeline", false, "stream boundary contributions into the reduced assembly (pipelined handoff)")
	precFlag := flag.String("precision", "", "factorization precision policy: fp64 (default) or mixed (fp32 interior sweeps + fp64 refinement)")
	flag.Parse()

	prec, err := dalia.ParsePrecision(*precFlag)
	if err != nil {
		log.Fatal(err)
	}

	var workers []int
	maxWorkers := 0
	for _, w := range strings.Split(*workersFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(w))
		if err != nil || v < 1 {
			log.Fatalf("bad worker count %q", w)
		}
		workers = append(workers, v)
		if v > maxWorkers {
			maxWorkers = v
		}
	}

	// Validate flag combinations up front — a clear error beats a sweep
	// that silently ignores an unsupported pair.
	if *lb < 1 {
		log.Fatalf("-lb %v: the load-balance factor must be ≥ 1 (1 = even partitions)", *lb)
	}
	if *partitions < 1 {
		log.Fatalf("-partitions %d: the per-rank stream width must be ≥ 1", *partitions)
	}
	if *reduceDepth < 0 || *reduceDepth > dalia.MaxReducedRecursionDepth {
		log.Fatalf("-reduce-depth %d: must be in [0, %d]", *reduceDepth, dalia.MaxReducedRecursionDepth)
	}
	// The runtime clamps the total solver width to what nt can absorb
	// (middle partitions need 2 blocks), so validate against the width the
	// sweep can actually reach, not the raw flag product.
	effWidth := maxWorkers * *partitions
	if mx := (*nt + 2) / 2; effWidth > mx {
		effWidth = mx
	}
	if (*reduceDepth > 0 || *pipeline) && effWidth < 2 {
		log.Fatalf("-reduce-depth/-pipeline act on the reduced boundary system, which only exists when "+
			"ranks × partitions ≥ 2 (got max workers %d × partitions %d at nt=%d); widen -workers, -partitions or -nt",
			maxWorkers, *partitions, *nt)
	}
	// The reduced system has 2·(ranks × partitions)−2 blocks; recursion
	// engages once it reaches the crossover.
	minRecurseWidth := dalia.DefaultReducedCrossover/2 + 1
	if *reduceDepth > 0 && effWidth < minRecurseWidth {
		log.Fatalf("-reduce-depth %d cannot engage below the recursion crossover: the reduced system has "+
			"2·(ranks × partitions)−2 blocks and needs ≥ %d of them (ranks × partitions ≥ %d after the nt=%d clamp); "+
			"widen the sweep or drop the flag",
			*reduceDepth, dalia.DefaultReducedCrossover, minRecurseWidth, *nt)
	}

	ds, err := dalia.Generate(dalia.GenConfig{
		Nv: *nv, Nt: *nt, Nr: *nr,
		MeshNx: *meshNx, MeshNy: *meshNy,
		ObsPerStep: *obs,
		Seed:       *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := ds.Model
	prior := dalia.WeakPrior(ds.Theta0, 5)
	fmt.Printf("model: nv=%d ns=%d nt=%d nr=%d  dim(θ)=%d → %d evals/iter\n\n",
		m.Dims.Nv, m.Dims.Ns, m.Dims.Nt, m.Dims.Nr, m.NumHyper(), 2*m.NumHyper()+1)
	fmt.Printf("%8s  %10s  %9s  %7s  %-22s %12s\n",
		"workers", "s/iter", "speedup", "eff %", "plan", "max-imbal")

	var t1 float64
	for _, w := range workers {
		rep, err := dalia.RunCluster(m, prior, ds.Theta0, dalia.ClusterConfig{
			World:             w,
			Machine:           dalia.DefaultMachine(),
			Iterations:        *iters,
			LB:                *lb,
			MemCapBytes:       *memcap,
			PartitionsPerRank: *partitions,
			ReduceDepth:       *reduceDepth,
			PipelineReduced:   *pipeline,
			Precision:         prec,
		})
		if err != nil {
			log.Fatal(err)
		}
		if t1 == 0 {
			t1 = rep.PerIter * float64(workers[0])
		}
		plan := fmt.Sprintf("S1×%d", rep.Plan.Groups)
		if rep.Plan.UseS2 {
			plan += "+S2"
		}
		if rep.Plan.P3Min > 1 {
			plan += fmt.Sprintf("+S3(≥%d)", rep.Plan.P3Min)
		}
		if rep.Plan.PartitionsPerRank > 1 {
			plan += fmt.Sprintf("×%dq", rep.Plan.PartitionsPerRank)
		}
		if rep.Plan.ReduceDepth > 0 {
			plan += fmt.Sprintf("+R%d", rep.Plan.ReduceDepth)
		}
		if rep.Plan.PipelineReduced {
			plan += "+pipe"
		}
		if rep.Plan.Precision == dalia.PrecMixed {
			plan += "+mp"
		}
		fmt.Printf("%8d  %10.4f  %8.1fx  %7.1f  %-22s %11.2fx\n",
			w, rep.PerIter,
			t1/(rep.PerIter*float64(workers[0])),
			100*t1/(float64(w)*rep.PerIter*float64(workers[0])),
			plan, rep.Stats.Imbalance())
		// The static flag validation can only bound the raw product; the
		// planner may still route this row's workers to S1 groups whose
		// solver width leaves the reduced-engine flags inert — say so
		// rather than sweeping silently.
		if prec == dalia.PrecMixed && rep.Plan.Precision != dalia.PrecMixed {
			fmt.Printf("%8s  note: solver width 1 at this row — no interior sweeps; -precision mixed degenerates to fp64\n", "")
		}
		if *reduceDepth > 0 || *pipeline {
			sw := rep.Plan.SolverWidthAt(m.Dims.Nt)
			if sw < 2 {
				fmt.Printf("%8s  note: solver width %d at this row — no reduced system; -reduce-depth/-pipeline inert\n", "", sw)
			} else if *reduceDepth > 0 && 2*sw-2 < dalia.DefaultReducedCrossover {
				fmt.Printf("%8s  note: reduced system has %d blocks at this row (< crossover %d); -reduce-depth inert\n",
					"", 2*sw-2, dalia.DefaultReducedCrossover)
			}
		}
	}
}
