// dalia-scale runs free-form scaling sweeps of the three-layer parallel
// scheme on the simulated distributed machine and prints the virtual-time
// report for each width.
//
// Usage:
//
//	dalia-scale -workers 1,4,16,31 -nv 3 -nt 8
//	dalia-scale -workers 8 -memcap 3145728     # force S3 via memory cap
//	dalia-scale -workers 4 -partitions 2       # hybrid ranks × partitions
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	dalia "github.com/dalia-hpc/dalia"
)

func main() {
	workersFlag := flag.String("workers", "1,4,16", "comma-separated worker counts")
	nv := flag.Int("nv", 3, "number of response variables")
	nt := flag.Int("nt", 8, "time steps")
	nr := flag.Int("nr", 1, "fixed effects per process")
	meshNx := flag.Int("mesh-nx", 5, "mesh vertices in x")
	meshNy := flag.Int("mesh-ny", 4, "mesh vertices in y")
	obs := flag.Int("obs", 15, "observations per time step")
	lb := flag.Float64("lb", 1.6, "S3 load-balance factor")
	partitions := flag.Int("partitions", 1, "S3 partitions per rank (hybrid two-level topology)")
	memcap := flag.Int64("memcap", 0, "modeled device memory in bytes (0 = unlimited)")
	iters := flag.Int("iters", 1, "quasi-Newton iterations to simulate")
	seed := flag.Int64("seed", 31, "dataset seed")
	flag.Parse()

	var workers []int
	for _, w := range strings.Split(*workersFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(w))
		if err != nil || v < 1 {
			log.Fatalf("bad worker count %q", w)
		}
		workers = append(workers, v)
	}

	ds, err := dalia.Generate(dalia.GenConfig{
		Nv: *nv, Nt: *nt, Nr: *nr,
		MeshNx: *meshNx, MeshNy: *meshNy,
		ObsPerStep: *obs,
		Seed:       *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := ds.Model
	prior := dalia.WeakPrior(ds.Theta0, 5)
	fmt.Printf("model: nv=%d ns=%d nt=%d nr=%d  dim(θ)=%d → %d evals/iter\n\n",
		m.Dims.Nv, m.Dims.Ns, m.Dims.Nt, m.Dims.Nr, m.NumHyper(), 2*m.NumHyper()+1)
	fmt.Printf("%8s  %10s  %9s  %7s  %-22s %12s\n",
		"workers", "s/iter", "speedup", "eff %", "plan", "max-imbal")

	var t1 float64
	for _, w := range workers {
		rep, err := dalia.RunCluster(m, prior, ds.Theta0, dalia.ClusterConfig{
			World:             w,
			Machine:           dalia.DefaultMachine(),
			Iterations:        *iters,
			LB:                *lb,
			MemCapBytes:       *memcap,
			PartitionsPerRank: *partitions,
		})
		if err != nil {
			log.Fatal(err)
		}
		if t1 == 0 {
			t1 = rep.PerIter * float64(workers[0])
		}
		plan := fmt.Sprintf("S1×%d", rep.Plan.Groups)
		if rep.Plan.UseS2 {
			plan += "+S2"
		}
		if rep.Plan.P3Min > 1 {
			plan += fmt.Sprintf("+S3(≥%d)", rep.Plan.P3Min)
		}
		if rep.Plan.PartitionsPerRank > 1 {
			plan += fmt.Sprintf("×%dq", rep.Plan.PartitionsPerRank)
		}
		fmt.Printf("%8d  %10.4f  %8.1fx  %7.1f  %-22s %11.2fx\n",
			w, rep.PerIter,
			t1/(rep.PerIter*float64(workers[0])),
			100*t1/(float64(w)*rep.PerIter*float64(workers[0])),
			plan, rep.Stats.Imbalance())
	}
}
