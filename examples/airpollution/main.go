// Air pollution (§VI of the paper): jointly model three correlated
// pollutants (PM2.5, PM10, O₃) over a northern-Italy-like domain with a
// trivariate coregionalization model, report the elevation fixed effects
// with credible intervals, and the inter-pollutant correlations.
//
// The paper fits 48 days of CAMS reanalysis data at 4210 locations; this
// example fits a scaled synthetic equivalent sampled from the model itself
// (see DESIGN.md, substitutions), which additionally lets it verify the
// estimates against the generating truth.
//
//	go run ./examples/airpollution
package main

import (
	"fmt"
	"log"
	"math/rand"

	dalia "github.com/dalia-hpc/dalia"
)

var pollutants = []string{"PM2.5", "PM10", "O3"}

func main() {
	// Trivariate model over a 560×220 km box ("northern Italy"), 6 days,
	// 60 stations per day, intercept + elevation covariates. The generating
	// truth mimics the paper's findings: PM2.5↔PM10 strongly correlated,
	// both anti-correlated with ozone; elevation lowers PM and raises O₃.
	ds, err := dalia.Generate(dalia.GenConfig{
		Nv: 3, Nt: 6, Nr: 2,
		MeshNx: 7, MeshNy: 5,
		Width: 560, Height: 220,
		ObsPerStep: 60,
		Seed:       2022, // the paper's study starts January 1st, 2022
	})
	if err != nil {
		log.Fatal(err)
	}
	m := ds.Model
	fmt.Printf("trivariate LMC model: ns=%d nt=%d → latent dim %d, dim(θ)=%d (paper: 15)\n",
		m.Dims.Ns, m.Dims.Nt, m.Dims.Total(), m.NumHyper())
	fmt.Printf("observations: %d per pollutant (%d total)\n\n", m.Obs.M(), 3*m.Obs.M())

	prior := dalia.WeakPrior(m.EncodeTheta(ds.TrueTheta), 3)
	opts := dalia.DefaultFitOptions()
	opts.Opt.MaxIter = 8
	opts.SkipHyperUncertainty = true // keep the example fast
	res, err := dalia.Fit(m, prior, ds.Theta0, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fit: %d iterations, %d objective evaluations\n\n", res.Opt.Iterations, res.Opt.FEvals)

	// Elevation effects (paper: −0.45, −0.55, +1.27 µg/m³ per km).
	truthBeta := []float64{-0.45, -0.55, 1.27}
	fmt.Println("elevation effect per pollutant (posterior mean [95% CI] vs truth):")
	for _, fe := range dalia.FixedEffects(m, res) {
		if fe.Index != 1 {
			continue
		}
		fmt.Printf("  %-6s %+.3f  [%+.3f, %+.3f]   truth %+.2f\n",
			pollutants[fe.Process], fe.Mean, fe.Q025, fe.Q975, truthBeta[fe.Process])
	}

	// Inter-pollutant correlations (paper: +0.97, −0.61, −0.63).
	dec, err := m.DecodeTheta(res.Theta)
	if err != nil {
		log.Fatal(err)
	}
	fitted := dec.Lambda.ImpliedCorrelation()
	truth := ds.TrueTheta.Lambda.ImpliedCorrelation()
	fmt.Println("\ninter-pollutant correlations (fitted / truth):")
	pairs := [][2]int{{1, 0}, {2, 0}, {2, 1}}
	for _, p := range pairs {
		fmt.Printf("  %-5s ↔ %-5s  %+.2f / %+.2f\n",
			pollutants[p[0]], pollutants[p[1]], fitted.At(p[0], p[1]), truth.At(p[0], p[1]))
	}

	// Posterior uncertainty: latent marginal standard deviations summarize
	// where the field is well constrained (near stations) vs uncertain.
	var minV, maxV = res.LatentVar[0], res.LatentVar[0]
	for _, v := range res.LatentVar[:m.Dims.Nv*m.Dims.Ns*m.Dims.Nt] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	fmt.Printf("\nlatent marginal variance range (selected inversion of Q_c): [%.3f, %.3f]\n", minV, maxV)

	// Regulatory-threshold risk (the paper's motivating question): the
	// posterior probability that ozone exceeds a threshold at selected
	// sites on the final day, from 300 joint posterior samples.
	rng := rand.New(rand.NewSource(1))
	_, samples, err := dalia.SamplePosterior(m, res.Theta, 300, rng)
	if err != nil {
		log.Fatal(err)
	}
	sites := []dalia.Point{{X: 80, Y: 40}, {X: 280, Y: 110}, {X: 480, Y: 190}}
	tidx := []int{m.Dims.Nt - 1, m.Dims.Nt - 1, m.Dims.Nt - 1}
	cov := dalia.NewDenseMatrix(len(sites), 2)
	for i, p := range sites {
		cov.Set(i, 0, 1)
		cov.Set(i, 1, dalia.Elevation(p, 560, 220))
	}
	threshold := 4.0
	probs, err := dalia.Exceedance(m, res.Theta, samples, sites, tidx, cov, 2, threshold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nP(O3 > %.1f) on the final day (west / center / east-alpine):\n", threshold)
	for i, p := range probs {
		fmt.Printf("  site %d (%.0f,%.0f km): %.2f\n", i, sites[i].X, sites[i].Y, p)
	}
}
