// Quickstart: fit a univariate spatio-temporal Gaussian-process model on
// synthetic data and inspect the recovered hyperparameters and posteriors.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	dalia "github.com/dalia-hpc/dalia"
)

func main() {
	// Generate a dataset from a known ground truth: one latent Matérn field
	// over a 400×300 km domain, 4 time steps, observed with noise at 40
	// stations per step, with intercept + elevation fixed effects.
	ds, err := dalia.Generate(dalia.GenConfig{
		Nv: 1, Nt: 4, Nr: 2,
		MeshNx: 6, MeshNy: 5,
		ObsPerStep: 40,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := ds.Model
	fmt.Printf("model: nv=%d ns=%d nt=%d nr=%d → latent dim %d, dim(θ)=%d\n",
		m.Dims.Nv, m.Dims.Ns, m.Dims.Nt, m.Dims.Nr, m.Dims.Total(), m.NumHyper())

	// Fit with INLA: BFGS mode search, Hessian-based hyperparameter
	// uncertainty, selected inversion for latent marginal variances.
	prior := dalia.WeakPrior(ds.Theta0, 3)
	opts := dalia.DefaultFitOptions()
	opts.Opt.MaxIter = 20
	res, err := dalia.Fit(m, prior, ds.Theta0, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer: %d iterations, %d objective evaluations, converged=%v\n",
		res.Opt.Iterations, res.Opt.FEvals, res.Opt.Converged)

	// Compare recovered hyperparameters with the generating truth.
	dec, err := m.DecodeTheta(res.Theta)
	if err != nil {
		log.Fatal(err)
	}
	truth := ds.TrueTheta
	fmt.Println("\nhyperparameters (fitted vs truth):")
	fmt.Printf("  spatial range : %8.1f vs %8.1f km\n", dec.Process[0].RangeS, truth.Process[0].RangeS)
	fmt.Printf("  temporal range: %8.2f vs %8.2f steps\n", dec.Process[0].RangeT, truth.Process[0].RangeT)
	fmt.Printf("  field sd      : %8.3f vs %8.3f\n", dec.Lambda.Sigmas[0], truth.Lambda.Sigmas[0])
	fmt.Printf("  noise sd      : %8.3f vs %8.3f\n", 1/math.Sqrt(dec.TauY[0]), 1/math.Sqrt(truth.TauY[0]))
	if res.ThetaSD != nil {
		fmt.Printf("  posterior sd of log spatial range: %.3f\n", res.ThetaSD[0])
	}

	// Fixed effects with 95% credible intervals.
	fmt.Println("\nfixed effects:")
	for _, fe := range dalia.FixedEffects(m, res) {
		name := []string{"intercept", "elevation"}[fe.Index]
		fmt.Printf("  %-9s %+.3f  [%+.3f, %+.3f]\n", name, fe.Mean, fe.Q025, fe.Q975)
	}

	// Latent field recovery: correlation of the posterior mean with the
	// generating state.
	var num, da, db float64
	for i := range res.Mu {
		num += res.Mu[i] * ds.TrueX[i]
		da += res.Mu[i] * res.Mu[i]
		db += ds.TrueX[i] * ds.TrueX[i]
	}
	fmt.Printf("\nlatent posterior mean vs truth: correlation %.3f over %d parameters\n",
		num/math.Sqrt(da*db), len(res.Mu))
}
