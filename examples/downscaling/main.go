// Downscaling (§VI, Fig. 8): refine coarse aggregated pollutant
// measurements to a fine spatial grid with the fitted spatio-temporal
// model, and compare against the ground truth that only a synthetic study
// can provide. Renders ASCII maps of the coarse input, the downscaled
// posterior mean, and the truth.
//
//	go run ./examples/downscaling
package main

import (
	"fmt"
	"log"
	"math"

	dalia "github.com/dalia-hpc/dalia"
)

const (
	width, height = 560.0, 220.0
	fineNX        = 48
	fineNY        = 16
	coarseNX      = 8
	coarseNY      = 3
)

func main() {
	// Ground truth with a short spatial range (fine structure the coarse
	// product cannot represent) and a strong elevation effect (the ridge in
	// the north adds sub-cell detail the model can reconstruct from the
	// covariate).
	lam, err := dalia.NewLambda([]float64{1}, nil)
	if err != nil {
		log.Fatal(err)
	}
	truthTheta := &dalia.Theta{
		Process: []dalia.Hyper{{RangeS: 70, RangeT: 2.5, Sigma: 1}},
		Lambda:  lam,
		TauY:    []float64{16}, // noise sd 0.25
	}
	ds, err := dalia.Generate(dalia.GenConfig{
		Nv: 1, Nt: 4, Nr: 2,
		MeshNx: 10, MeshNy: 6,
		Width: width, Height: height,
		ObsPerStep:   110,
		Seed:         8,
		Truth:        truthTheta,
		FixedEffects: [][]float64{{1.0, -1.5}},
	})
	if err != nil {
		log.Fatal(err)
	}
	m := ds.Model

	prior := dalia.WeakPrior(m.EncodeTheta(ds.TrueTheta), 3)
	opts := dalia.DefaultFitOptions()
	opts.Opt.MaxIter = 12
	opts.SkipHyperUncertainty = true
	res, err := dalia.Fit(m, prior, ds.Theta0, opts)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := m.DecodeTheta(res.Theta)
	if err != nil {
		log.Fatal(err)
	}

	// Fine prediction grid for the last day.
	day := m.Dims.Nt - 1
	var pts []dalia.Point
	var tidx []int
	for j := 0; j < fineNY; j++ {
		for i := 0; i < fineNX; i++ {
			pts = append(pts, dalia.Point{
				X: (float64(i) + 0.5) * width / fineNX,
				Y: (float64(j) + 0.5) * height / fineNY,
			})
			tidx = append(tidx, day)
		}
	}
	cov := dalia.NewDenseMatrix(len(pts), 2)
	for i, p := range pts {
		cov.Set(i, 0, 1)
		cov.Set(i, 1, dalia.Elevation(p, width, height))
	}

	truth, err := m.PredictMean(ds.TrueTheta, ds.TrueX, pts, tidx, cov)
	if err != nil {
		log.Fatal(err)
	}
	fitted, err := m.PredictMean(dec, res.Mu, pts, tidx, cov)
	if err != nil {
		log.Fatal(err)
	}

	// Coarse product: block averages of the truth (what a satellite grid
	// reports at 0.1° in the paper).
	coarse := make([]float64, len(pts))
	blockSum := make([]float64, coarseNX*coarseNY)
	blockCnt := make([]int, coarseNX*coarseNY)
	cellOf := func(i int) int {
		p := pts[i]
		ci := int(p.X / width * coarseNX)
		cj := int(p.Y / height * coarseNY)
		if ci >= coarseNX {
			ci = coarseNX - 1
		}
		if cj >= coarseNY {
			cj = coarseNY - 1
		}
		return cj*coarseNX + ci
	}
	for i := range pts {
		blockSum[cellOf(i)] += truth[0][i]
		blockCnt[cellOf(i)]++
	}
	for i := range pts {
		coarse[i] = blockSum[cellOf(i)] / float64(blockCnt[cellOf(i)])
	}

	fmt.Printf("downscaling day %d: coarse %d×%d cells → fine %d×%d grid (%d×)\n\n",
		day, coarseNX, coarseNY, fineNX, fineNY, fineNX*fineNY/(coarseNX*coarseNY))
	render("coarse input (block-aggregated)", coarse)
	render("downscaled posterior mean", fitted[0])
	render("ground truth", truth[0])

	rmse := func(a []float64) float64 {
		var ss float64
		for i := range a {
			d := a[i] - truth[0][i]
			ss += d * d
		}
		return math.Sqrt(ss / float64(len(a)))
	}
	fmt.Printf("RMSE vs truth: coarse input %.3f, downscaled %.3f (improvement %.1f%%)\n",
		rmse(coarse), rmse(fitted[0]), 100*(1-rmse(fitted[0])/rmse(coarse)))
}

// render prints a fine-grid field as ASCII shades.
func render(title string, v []float64) {
	shades := []rune(" .:-=+*#%@")
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	fmt.Println(title + ":")
	for j := fineNY - 1; j >= 0; j-- { // north at the top
		row := make([]rune, fineNX)
		for i := 0; i < fineNX; i++ {
			x := v[j*fineNX+i]
			k := int((x - lo) / (hi - lo + 1e-12) * float64(len(shades)-1))
			row[i] = shades[k]
		}
		fmt.Printf("  %s\n", string(row))
	}
	fmt.Println()
}
