// Disease counts: the classic epidemiological INLA use case — weekly case
// counts observed at surveillance sites, modeled as a Poisson process with
// a latent spatio-temporal log-intensity field. This exercises the
// non-Gaussian extension of the library: the Laplace approximation's inner
// Newton loop, with every step a structured BTA solve.
//
//	go run ./examples/diseasecounts
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	dalia "github.com/dalia-hpc/dalia"
)

func main() {
	// Counts y ~ Poisson(exp(η)) with η = latent field + intercept +
	// population-density covariate.
	ds, err := dalia.Generate(dalia.GenConfig{
		Nv: 1, Nt: 4, Nr: 2,
		MeshNx: 5, MeshNy: 5,
		Width: 200, Height: 200,
		ObsPerStep: 50,
		Seed:       11,
		Family:     dalia.LikPoisson,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := ds.Model
	var total, mx float64
	for _, y := range m.Obs.Y[0] {
		total += y
		if y > mx {
			mx = y
		}
	}
	fmt.Printf("surveillance data: %d site-weeks, %d cases total, busiest site-week %d cases\n",
		m.Obs.M(), int(total), int(mx))
	fmt.Printf("model: Poisson log-link, dim(θ)=%d (no noise precision — counts carry their own variance)\n\n",
		m.NumHyper())

	prior := dalia.WeakPrior(m.EncodeTheta(ds.TrueTheta), 3)
	opts := dalia.DefaultFitOptions()
	opts.Opt.MaxIter = 10
	res, err := dalia.Fit(m, prior, ds.Theta0, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fit: %d outer iterations, %d objective evaluations (each with an inner Newton loop)\n\n",
		res.Opt.Iterations, res.Opt.FEvals)

	if hms := dalia.HyperMarginals(m, res); hms != nil {
		fmt.Println("hyperparameters (posterior median [95% CI]):")
		for _, hm := range hms {
			if hm.LogScale {
				fmt.Printf("  %-12s %8.2f  [%8.2f, %8.2f]\n", hm.Name, hm.NaturalMedian, hm.NaturalQ025, hm.NaturalQ975)
			}
		}
	}

	fmt.Println("\nfixed effects (log relative risk):")
	for _, fe := range dalia.FixedEffects(m, res) {
		name := []string{"baseline", "density"}[fe.Index]
		fmt.Printf("  %-9s %+.3f [%+.3f, %+.3f]\n", name, fe.Mean, fe.Q025, fe.Q975)
	}

	// Outbreak-risk surface: P(intensity > threshold) at unmonitored
	// locations on the final week, from joint posterior samples.
	rng := rand.New(rand.NewSource(2))
	_, samples, err := dalia.SamplePosterior(m, res.Theta, 250, rng)
	if err != nil {
		log.Fatal(err)
	}
	sites := []dalia.Point{{X: 40, Y: 40}, {X: 100, Y: 100}, {X: 160, Y: 160}}
	week := m.Dims.Nt - 1
	tidx := []int{week, week, week}
	cov := dalia.NewDenseMatrix(3, 2)
	for i := range sites {
		cov.Set(i, 0, 1)
		cov.Set(i, 1, 0.5)
	}
	// Threshold on the intensity scale: 5 expected cases.
	logThresh := math.Log(5)
	probs, err := dalia.Exceedance(m, res.Theta, samples, sites, tidx, cov, 0, logThresh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noutbreak risk P(expected cases > 5) in week %d:\n", week)
	for i, p := range probs {
		fmt.Printf("  site (%.0f,%.0f): %.2f\n", sites[i].X, sites[i].Y, p)
	}

	// Latent recovery check against the generating truth.
	var num, da, db float64
	for i := range res.Mu {
		num += res.Mu[i] * ds.TrueX[i]
		da += res.Mu[i] * res.Mu[i]
		db += ds.TrueX[i] * ds.TrueX[i]
	}
	fmt.Printf("\nlatent log-intensity recovery: correlation %.2f with the generating field\n",
		num/math.Sqrt(da*db))
}
