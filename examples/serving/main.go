// Serving walkthrough: stand up the dalia-serve batch inference server,
// register a model fitted from a synthetic dataset, and answer posterior
// prediction queries over HTTP — the fit-once/serve-many workflow.
//
//	go run ./examples/serving
//
// The program drives its own server through real HTTP requests, printing
// each exchange the way a curl session would show it (see README.md in
// this directory for the equivalent curl transcript against a standalone
// `dalia-serve` process).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"time"

	dalia "github.com/dalia-hpc/dalia"
)

func show(method, path string, body, reply []byte) {
	fmt.Printf("$ curl -s -X %s localhost:8042%s", method, path)
	if body != nil {
		fmt.Printf(" -d '%s'", body)
	}
	fmt.Println()
	fmt.Printf("%s\n", bytes.TrimRight(reply, "\n"))
	fmt.Println()
}

// serverDraining asks /readyz whether the server is shutting down for good.
// A draining server answers 503 with status "draining" — retrying against it
// is wasted work, because a drain never un-drains.
func serverDraining(client *http.Client, base string) bool {
	resp, err := client.Get(base + "/readyz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var ready struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		return false
	}
	return ready.Status == "draining"
}

// call sends one request as a well-behaved client, distinguishing the two
// shedding replies: 429 (queue momentarily full) is transient, so it retries
// with exponential backoff seeded from the server's Retry-After hint; 503
// during a graceful drain is terminal, so the client checks /readyz and
// gives up immediately instead of retrying against a server that is going
// away. A 503 on a server that is NOT draining (e.g. a refit briefly
// rejected) still gets the backoff treatment.
func call(client *http.Client, base, method, path string, payload any) ([]byte, []byte) {
	var body []byte
	if payload != nil {
		body, _ = json.Marshal(payload)
	}
	backoff := 50 * time.Millisecond
	const maxAttempts = 6
	for attempt := 1; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			log.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		reply, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			if serverDraining(client, base) {
				log.Fatalf("%s %s: server is draining (503 + Retry-After %q); not retrying — find another replica",
					method, path, resp.Header.Get("Retry-After"))
			}
			fallthrough
		case http.StatusTooManyRequests:
			if attempt >= maxAttempts {
				log.Fatalf("%s %s: still shedding after %d attempts: %d: %s", method, path, attempt, resp.StatusCode, reply)
			}
			wait := backoff
			if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil {
				if d := time.Duration(secs) * time.Second; d > wait {
					wait = d
				}
			}
			time.Sleep(wait)
			backoff *= 2
			continue
		}
		if resp.StatusCode >= 300 {
			log.Fatalf("%s %s: %d: %s", method, path, resp.StatusCode, reply)
		}
		return body, reply
	}
}

func main() {
	// A server with a 1 ms batching window: concurrent queries arriving
	// within the window coalesce into one multi-RHS solve.
	srv := dalia.NewServer(dalia.ServeOptions{BatchWindow: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// 1. Liveness.
	_, reply := call(client, ts.URL, "GET", "/healthz", nil)
	show("GET", "/healthz", nil, reply)

	// 2. Fit-once: register a bivariate spatio-temporal model fitted from a
	// synthetic dataset (two correlated pollutant-like fields, intercept +
	// elevation covariates). Registration runs the full INLA fit and
	// factorizes Q_c at the mode; every later query reuses that factor.
	fit := map[string]any{
		"name": "demo",
		"gen": map[string]any{
			"nv": 2, "nt": 4, "nr": 2,
			"mesh_nx": 5, "mesh_ny": 4,
			"obs_per_step": 30, "seed": 42,
		},
		"max_iter": 12,
	}
	body, reply := call(client, ts.URL, "POST", "/v1/models", fit)
	show("POST", "/v1/models", body, reply)

	// 3. Serve-many: posterior predictive means and variances at new
	// space-time locations none of which were observed.
	pred := map[string]any{
		"queries": []map[string]any{
			{"x": 120.0, "y": 45.0, "t": 0, "response": 0, "covariates": []float64{1, 0.3}},
			{"x": 120.0, "y": 45.0, "t": 0, "response": 1, "covariates": []float64{1, 0.3}},
			{"x": 333.0, "y": 280.0, "t": 3, "response": 0, "covariates": []float64{1, 1.8}},
		},
	}
	body, reply = call(client, ts.URL, "POST", "/v1/models/demo/predict", pred)
	show("POST", "/v1/models/demo/predict", body, reply)

	// 4. Serving counters: batches formed, average coalesced batch size.
	_, reply = call(client, ts.URL, "GET", "/stats", nil)
	show("GET", "/stats", nil, reply)
}
