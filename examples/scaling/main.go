// Scaling demo: run the same trivariate INLA iteration on the simulated
// distributed machine at several widths and watch the three parallel layers
// (S1 gradient evaluations, S2 pipelines, S3 distributed solver) engage —
// a miniature of the paper's Fig. 7.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	dalia "github.com/dalia-hpc/dalia"
)

func main() {
	ds, err := dalia.Generate(dalia.GenConfig{
		Nv: 3, Nt: 8, Nr: 1,
		MeshNx: 5, MeshNy: 4,
		ObsPerStep: 15,
		Seed:       31,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := ds.Model
	prior := dalia.WeakPrior(ds.Theta0, 5)
	nfeval := 2*m.NumHyper() + 1
	fmt.Printf("trivariate model: dim(θ)=%d → %d parallel evaluations per iteration\n\n", m.NumHyper(), nfeval)
	fmt.Printf("%8s  %10s  %10s  %8s  %s\n", "workers", "s/iter", "speedup", "eff %", "layers")

	var t1 float64
	for _, w := range []int{1, 4, 16, 31, 62} {
		rep, err := dalia.RunCluster(m, prior, ds.Theta0, dalia.ClusterConfig{
			World:      w,
			Machine:    dalia.DefaultMachine(),
			Iterations: 1,
			LB:         1.6,
		})
		if err != nil {
			log.Fatal(err)
		}
		if w == 1 {
			t1 = rep.PerIter
		}
		layers := fmt.Sprintf("S1×%d", rep.Plan.Groups)
		if rep.Plan.UseS2 {
			layers += " +S2"
		}
		if g := rep.Plan.GroupSizes[0]; g > 2 || (!rep.Plan.UseS2 && g > 1) {
			layers += " +S3"
		}
		fmt.Printf("%8d  %10.3f  %9.1fx  %8.1f  %s\n",
			w, rep.PerIter, t1/rep.PerIter, 100*t1/(float64(w)*rep.PerIter), layers)
	}
	fmt.Println("\n(virtual time on the simulated machine; see DESIGN.md for the substitution rationale)")
}
