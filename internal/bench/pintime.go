package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/inla"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// PintimeResult is one measured point of the parallel-in-time experiment.
type PintimeResult struct {
	// Kind is "evalbatch1" (a full width-1 EvalBatch: assembly + S2
	// pipelines + factorization + solve), "factor" (Refactorize + Solve +
	// LogDet on Q_c), or "selinv" (SelectedInversionInto on the factor).
	Kind string `json:"kind"`
	// Partitions is the parallel-in-time width the point ran at.
	Partitions int     `json:"partitions"`
	Seconds    float64 `json:"seconds"` // latency per operation
	PerSec     float64 `json:"per_sec"`
	// Speedup is relative to the same kind's partitions=1 row.
	Speedup float64 `json:"speedup,omitempty"`
}

// PintimeBaseline is the serialized parallel-in-time baseline
// (BENCH_3.json): single-evaluation latency and selected-inversion
// throughput of the shared-memory PPOBTAF engine versus the sequential
// chain. NumCPU records the hardware parallelism the numbers were taken
// at — speedups are only meaningful when it matches or exceeds the
// partition width (a 1-core host measures scheduling overhead, not
// parallel speedup).
type PintimeBaseline struct {
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	Nt         int `json:"nt"`
	BlockSize  int `json:"block_size"`
	ArrowSize  int `json:"arrow_size"`
	// Precision records the factorization precision policy the run measured
	// ("fp64" here — this suite exercises the pure-fp64 path); RefineIters
	// the refinement iterations its solves spent. Gates refuse comparisons
	// across modes.
	Precision   string          `json:"precision"`
	RefineIters int             `json:"refine_iters"`
	Results     []PintimeResult `json:"results"`
}

// pintimeParts is the fixed partition sweep of the factor-level rows.
var pintimeParts = []int{1, 2, 4}

// Pintime measures the parallel-in-time BTA engine on a time-deep
// trivariate model (nt = 64, b = 90): width-1 EvalBatch latency on the
// sequential path versus the width-1 scheduling plan, then the raw
// factorization and selected-inversion rates across partition counts.
// quick trims repetitions, not the grid.
func Pintime(quick bool) (*PintimeBaseline, error) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 3, Nt: 64, Nr: 2,
		MeshNx: 6, MeshNy: 5,
		ObsPerStep: 40,
		Seed:       23,
	})
	if err != nil {
		return nil, err
	}
	m := ds.Model
	n, b, a := m.Dims.BTAShape()
	out := &PintimeBaseline{
		Precision:  "fp64",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Nt:         n, BlockSize: b, ArrowSize: a,
	}
	reps := 5
	if quick {
		reps = 2
	}
	prior := inla.WeakPrior(ds.Theta0, 5)
	point := [][]float64{ds.Theta0}

	// Width-1 EvalBatch: the line-search / posterior latency wall. The
	// sequential row pins Partitions=1; the planned row lets the width-1
	// scheduling plan spend the spare cores inside the factorization.
	plan := inla.PlanBatch(1, 0, n, true)
	var seqEval float64
	for _, partitions := range []int{1, plan.Partitions} {
		e := &inla.BTAEvaluator{Model: m, Prior: prior, S2: true, Partitions: partitions}
		e.EvalBatch(point) // warm the scratch pool
		secs := timeIt(reps, func() { e.EvalBatch(point) })
		r := PintimeResult{Kind: "evalbatch1", Partitions: partitions,
			Seconds: secs, PerSec: 1 / secs}
		if partitions == 1 {
			seqEval = secs
		} else if seqEval > 0 {
			r.Speedup = seqEval / secs
		}
		out.Results = append(out.Results, r)
		if partitions == 1 && plan.Partitions == 1 {
			// Single-core plan: the rows coincide; keep one.
			break
		}
	}

	// Factor-level rows: Refactorize + Solve + LogDet, and the selected
	// inversion, across the partition sweep on Q_c(θ0).
	th, err := m.DecodeTheta(ds.Theta0)
	if err != nil {
		return nil, err
	}
	qc, err := m.Qc(th)
	if err != nil {
		return nil, err
	}
	rhs0 := make([]float64, qc.Dim())
	for i := range rhs0 {
		rhs0[i] = float64(i%7) - 3
	}
	rhs := make([]float64, len(rhs0))
	sig := bta.NewMatrix(n, b, a)
	var seqFactor, seqSelinv float64
	for _, p := range pintimeParts {
		// Mirror NewSolver's clamp: a width it would silently reduce must
		// not be reported (and baseline-gated) under the requested label.
		if p > bta.MaxUsefulPartitions(n) {
			continue
		}
		s, err := bta.NewSolver(n, b, a, p)
		if err != nil {
			return nil, err
		}
		if err := s.Refactorize(qc); err != nil {
			return nil, err
		}
		if err := s.SelectedInversionInto(sig); err != nil {
			return nil, err
		}
		secs := timeIt(reps, func() {
			if err := s.Refactorize(qc); err != nil {
				panic(err)
			}
			copy(rhs, rhs0)
			s.Solve(rhs)
			_ = s.LogDet()
		})
		r := PintimeResult{Kind: "factor", Partitions: p, Seconds: secs, PerSec: 1 / secs}
		if p == 1 {
			seqFactor = secs
		} else {
			r.Speedup = seqFactor / secs
		}
		out.Results = append(out.Results, r)

		secs = timeIt(reps, func() {
			if err := s.SelectedInversionInto(sig); err != nil {
				panic(err)
			}
		})
		r = PintimeResult{Kind: "selinv", Partitions: p, Seconds: secs, PerSec: 1 / secs}
		if p == 1 {
			seqSelinv = secs
		} else {
			r.Speedup = seqSelinv / secs
		}
		out.Results = append(out.Results, r)
	}
	return out, nil
}

// WritePintimeBaseline serializes the parallel-in-time baseline.
func WritePintimeBaseline(b *PintimeBaseline, path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadPintimeBaseline reads a stored parallel-in-time baseline back in.
func LoadPintimeBaseline(path string) (*PintimeBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b PintimeBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parse pintime baseline %s: %w", path, err)
	}
	return &b, nil
}

// PintimeComparable reports whether two pintime runs can be gated against
// each other: these are latency measurements whose goroutine fan-out
// scales with the scheduler width, so a GOMAXPROCS mismatch would flag the
// host configuration rather than a code regression. Callers should check
// it (and tell the user the gate was skipped) before ComparePintime.
func PintimeComparable(cur, base *PintimeBaseline) bool {
	return cur.GoMaxProcs == base.GoMaxProcs
}

// ComparePintime checks the current measurements against a stored baseline
// and returns one description per regression: a (kind, partitions) point
// whose rate fell below (1−maxRegress) of the baseline. Points present in
// only one set are skipped, as are points too short to time reliably.
// Incomparable runs (PintimeComparable false) yield no regressions.
func ComparePintime(cur, base *PintimeBaseline, maxRegress float64) []string {
	if !PintimeComparable(cur, base) {
		return nil
	}
	if regs := precisionMismatch("pintime", cur.Precision, base.Precision); regs != nil {
		return regs
	}
	key := func(r PintimeResult) string { return fmt.Sprintf("%s/p=%d", r.Kind, r.Partitions) }
	baseRate := map[string]float64{}
	for _, r := range base.Results {
		if r.PerSec > 0 && r.Seconds >= minCompareSeconds {
			baseRate[key(r)] = r.PerSec
		}
	}
	var regressions []string
	for _, r := range cur.Results {
		if r.PerSec <= 0 || r.Seconds < minCompareSeconds {
			continue
		}
		want, ok := baseRate[key(r)]
		if !ok {
			continue
		}
		floor := want * (1 - maxRegress)
		if r.PerSec < floor {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.2f ops/s vs baseline %.2f (floor %.2f, −%.0f%%)",
					key(r), r.PerSec, want, floor, 100*(1-r.PerSec/want)))
		}
	}
	return regressions
}

// PrintPintime renders the parallel-in-time table.
func PrintPintime(b *PintimeBaseline, w *os.File) {
	fmt.Fprintf(w, "  parallel-in-time BTA engine (nt=%d, b=%d, a=%d, GOMAXPROCS=%d, %d hardware CPUs)\n",
		b.Nt, b.BlockSize, b.ArrowSize, b.GoMaxProcs, b.NumCPU)
	if b.NumCPU < 2 {
		fmt.Fprintf(w, "  note: single hardware CPU — partition rows measure scheduling overhead, not speedup\n")
	}
	fmt.Fprintf(w, "  %-12s %10s %12s %10s %8s\n", "kind", "partitions", "latency", "ops/s", "speedup")
	for _, r := range b.Results {
		sp := "-"
		if r.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", r.Speedup)
		}
		fmt.Fprintf(w, "  %-12s %10d %12s %10.1f %8s\n",
			r.Kind, r.Partitions, fmtDuration(r.Seconds), r.PerSec, sp)
	}
}

// fmtDuration renders a latency in adaptive units.
func fmtDuration(secs float64) string {
	return time.Duration(float64(time.Second) * secs).Round(time.Microsecond).String()
}
