package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// LoadServingBaseline reads a stored serving baseline (BENCH_2.json) back
// in.
func LoadServingBaseline(path string) (*ServingBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b ServingBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parse serving baseline %s: %w", path, err)
	}
	return &b, nil
}

// CompareServing checks current serving throughput against a stored
// baseline and returns one description per regression: an engine-path
// point whose predictions/sec fell below (1−maxRegress) of the baseline
// rate. HTTP-path rows are skipped — they fold in client scheduling and
// kernel-irrelevant JSON costs, far too noisy for a gate — as are rows
// too short to time reliably and rows present in only one set.
func CompareServing(cur, base *ServingBaseline, maxRegress float64) []string {
	if regs := precisionMismatch("serving", cur.Precision, base.Precision); regs != nil {
		return regs
	}
	key := func(r ServingResult) string {
		return fmt.Sprintf("%s/batch=%d/conc=%d", r.Path, r.Batch, r.Concurrency)
	}
	baseRate := map[string]float64{}
	for _, r := range base.Results {
		if r.Path == "engine" && r.PerSec > 0 {
			baseRate[key(r)] = r.PerSec
		}
	}
	var regressions []string
	for _, r := range cur.Results {
		if r.Path != "engine" || r.PerSec <= 0 || r.Seconds < minCompareSeconds {
			continue
		}
		want, ok := baseRate[key(r)]
		if !ok {
			continue
		}
		floor := want * (1 - maxRegress)
		if r.PerSec < floor {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f pred/s vs baseline %.0f (floor %.0f, −%.0f%%)",
					key(r), r.PerSec, want, floor, 100*(1-r.PerSec/want)))
		}
	}
	return regressions
}

// LoadBaseline reads a kernels baseline (BENCH_<pr>.json) back in.
func LoadBaseline(path string) (*KernelBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b KernelBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parse baseline %s: %w", path, err)
	}
	return &b, nil
}

// normPrec maps a baseline's recorded precision mode to its canonical
// name: files written before the precision field existed carry "", which
// means they were measured on the pure-fp64 path.
func normPrec(s string) string {
	if s == "" {
		return "fp64"
	}
	return s
}

// precisionMismatch is the cross-mode guard every regression gate runs
// first: wall times and rates taken under different precision policies are
// not comparable (a mixed run gated against an fp64 baseline would bank the
// fp32 speedup as headroom), so a mode mismatch is itself reported as a
// gate failure rather than silently passing.
func precisionMismatch(what, cur, base string) []string {
	if normPrec(cur) != normPrec(base) {
		return []string{fmt.Sprintf(
			"%s: precision mode %q vs baseline %q — rates are not comparable across modes; regenerate the baseline at the matching mode",
			what, normPrec(cur), normPrec(base))}
	}
	return nil
}

// minCompareSeconds is the shortest measurement the regression gate
// trusts: a point finishing faster than this (n=64 GEMM runs in ~20µs) is
// dominated by timer granularity and scheduler noise on shared CI runners,
// so it is reported but never gates.
const minCompareSeconds = 1e-4

// CompareKernels checks the current kernel measurements against a stored
// baseline and returns one description per regression: a GEMM point whose
// GFLOP/s fell below (1−maxRegress) of the baseline rate. Points present in
// only one of the two sets are skipped (sizes may evolve across PRs), as
// are points too short to time reliably (minCompareSeconds); non-GEMM rows
// are informational and never fail the comparison.
func CompareKernels(cur, base *KernelBaseline, maxRegress float64) []string {
	if regs := precisionMismatch("kernels", cur.Precision, base.Precision); regs != nil {
		return regs
	}
	baseRate := map[string]float64{}
	key := func(name string, n int) string { return fmt.Sprintf("%s/n=%d", name, n) }
	for _, r := range base.Results {
		if r.GFlops > 0 {
			baseRate[key(r.Name, r.N)] = r.GFlops
		}
	}
	var regressions []string
	for _, r := range cur.Results {
		if r.Name != "gemm" || r.GFlops <= 0 || r.Seconds < minCompareSeconds {
			continue
		}
		want, ok := baseRate[key(r.Name, r.N)]
		if !ok {
			continue
		}
		floor := want * (1 - maxRegress)
		if r.GFlops < floor {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.2f GFLOP/s vs baseline %.2f (floor %.2f, −%.0f%%)",
					key(r.Name, r.N), r.GFlops, want, floor, 100*(1-r.GFlops/want)))
		}
	}
	return regressions
}
