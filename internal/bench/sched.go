package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"github.com/dalia-hpc/dalia/internal/inla"
	"github.com/dalia-hpc/dalia/internal/sched"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// SchedResult is one measured point of the task-DAG scheduler experiment.
// Rows come in dag/barrier pairs measuring the same workload on the
// work-stealing executor versus the legacy phase-synchronized goroutine
// gangs; Speedup on the dag row is barrier-seconds over dag-seconds, so
// > 1 means the DAG path won and ≈ 1 means overhead-neutral.
type SchedResult struct {
	// Kind is "gradbatch" (a 2d+1-point gradient-stencil EvalBatch — the
	// mode search's hot loop, where cross-θ-evaluation overlap pays),
	// "evalbatch1" (a width-1 line-search evaluation whose solver phases
	// run as partition tasks), or "spawnjoin" (raw executor spawn/join
	// cycles of empty tasks — the scheduling overhead itself, dag only).
	Kind string `json:"kind"`
	// Mode is "dag" (shared work-stealing executor) or "barrier"
	// (PhaseBarrier: fresh goroutine gangs with a barrier per phase).
	Mode    string  `json:"mode"`
	Points  int     `json:"points,omitempty"` // batch width (eval rows)
	Tasks   int     `json:"tasks,omitempty"`  // tasks per join (spawnjoin)
	Seconds float64 `json:"seconds"`          // latency per operation
	PerSec  float64 `json:"per_sec"`
	Speedup float64 `json:"speedup,omitempty"`
}

// SchedBaseline is the serialized task-DAG scheduler baseline
// (BENCH_9.json): gradient-batch makespan and width-1 evaluation latency
// on the DAG executor versus the phase-barrier path, plus the raw
// spawn/join rate. NumCPU records the hardware parallelism — on one CPU
// the dag/barrier pairs measure pure scheduling overhead (the acceptance
// bar is neutrality), while at ≥ 4 CPUs the DAG path must not lose.
type SchedBaseline struct {
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	Nt         int `json:"nt"`
	BlockSize  int `json:"block_size"`
	ArrowSize  int `json:"arrow_size"`
	// Precision records the factorization precision policy of the run
	// ("fp64" — the scheduler suite exercises the pure-fp64 path).
	Precision string        `json:"precision"`
	Results   []SchedResult `json:"results"`
}

// Sched measures the work-stealing task-DAG executor against the legacy
// phase-barrier concurrency on a time-deep univariate model: the
// 2d+1-point gradient-stencil EvalBatch (where evaluations from different
// θ points interleave on one worker pool), the width-1 line-search
// evaluation (per-phase solver gangs become partition tasks), and the raw
// spawn/join cycle rate of the executor itself. quick trims repetitions,
// not the workload.
func Sched(quick bool) (*SchedBaseline, error) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 48, Nr: 2,
		MeshNx: 6, MeshNy: 5,
		ObsPerStep: 40,
		Seed:       29,
	})
	if err != nil {
		return nil, err
	}
	m := ds.Model
	n, b, a := m.Dims.BTAShape()
	out := &SchedBaseline{
		Precision:  "fp64",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Nt:         n, BlockSize: b, ArrowSize: a,
	}
	reps := 3
	if quick {
		reps = 1
	}
	prior := inla.WeakPrior(ds.Theta0, 5)

	// The 2d+1-point central-difference stencil of the mode search's
	// gradient: the makespan workload where the DAG path overlaps the
	// solver phases of different θ evaluations instead of barriering
	// between batch points.
	d := len(ds.Theta0)
	stencil := make([][]float64, 2*d+1)
	for i := range stencil {
		stencil[i] = append([]float64(nil), ds.Theta0...)
	}
	const h = 5e-3
	for k := 0; k < d; k++ {
		stencil[2*k+1][k] += h
		stencil[2*k+2][k] -= h
	}

	evalPair := func(kind string, points [][]float64, partitions int) {
		var barrierSecs float64
		for _, mode := range []string{"barrier", "dag"} {
			e := &inla.BTAEvaluator{Model: m, Prior: prior, S2: true,
				Partitions: partitions, PhaseBarrier: mode == "barrier"}
			e.EvalBatch(points) // warm the scratch pool
			secs := timeIt(reps, func() { e.EvalBatch(points) })
			r := SchedResult{Kind: kind, Mode: mode, Points: len(points),
				Seconds: secs, PerSec: 1 / secs}
			if mode == "barrier" {
				barrierSecs = secs
			} else if barrierSecs > 0 {
				r.Speedup = barrierSecs / secs
			}
			out.Results = append(out.Results, r)
		}
	}

	// Gradient-batch makespan: batch-level parallelism dominates, the
	// plan keeps the solver sequential inside each point.
	evalPair("gradbatch", stencil, 0)

	// Width-1 line-search evaluation: the plan spends the cores inside
	// the factorization, so the dag/barrier pair compares partition-task
	// scheduling against per-phase goroutine gangs.
	plan := inla.PlanBatch(1, 0, n, true)
	evalPair("evalbatch1", [][]float64{ds.Theta0}, plan.Partitions)

	// Raw executor spawn/join rate: one lane, spawnTasks empty tasks per
	// join cycle on a private executor sized like the shared one. This is
	// the overhead every phase pays; the eval rows above show whether it
	// is visible at solver-block granularity.
	{
		const spawnTasks = 256
		ex := sched.New(runtime.GOMAXPROCS(0))
		defer ex.Close()
		var g sched.Group
		g.Init(ex)
		tasks := make([]sched.Task, spawnTasks)
		nop := func() {}
		cycle := func() {
			l := ex.AcquireLane()
			g.Add(spawnTasks)
			for i := range tasks {
				tasks[i].Reset(ex, &g, nop, nil)
				l.Spawn(&tasks[i])
			}
			g.Wait(l)
			ex.ReleaseLane(l)
		}
		cycle() // warm the lane pool
		secs := timeIt(reps*100, cycle)
		out.Results = append(out.Results, SchedResult{
			Kind: "spawnjoin", Mode: "dag", Tasks: spawnTasks,
			Seconds: secs, PerSec: float64(spawnTasks) / secs,
		})
	}
	return out, nil
}

// WriteSchedBaseline serializes the scheduler baseline.
func WriteSchedBaseline(b *SchedBaseline, path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadSchedBaseline reads a stored scheduler baseline back in.
func LoadSchedBaseline(path string) (*SchedBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b SchedBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parse sched baseline %s: %w", path, err)
	}
	return &b, nil
}

// SchedComparable reports whether two scheduler runs can be gated against
// each other: both the DAG makespans and the goroutine-gang latencies
// scale with the worker pool, so a GOMAXPROCS mismatch would flag the
// host configuration rather than a code regression.
func SchedComparable(cur, base *SchedBaseline) bool {
	return cur.GoMaxProcs == base.GoMaxProcs
}

// schedOverheadSlack is the tolerated dag-over-barrier makespan ratio on
// hosts without real parallelism (NumCPU < 4): the DAG path must be
// overhead-neutral within 10%. At NumCPU ≥ 4 the same check runs with no
// slack — the DAG path must not lose outright.
const schedOverheadSlack = 1.10

// CompareSched checks the current measurements against a stored baseline
// and returns one description per failure. Two families of checks: every
// (kind, mode) rate must hold (1−maxRegress) of the baseline, and —
// independent of the baseline — each dag row of the current run must beat
// its barrier partner (NumCPU ≥ 4) or stay within schedOverheadSlack of
// it (fewer CPUs, where the DAG path can only add overhead). Rows too
// short to time reliably are informational.
func CompareSched(cur, base *SchedBaseline, maxRegress float64) []string {
	var failures []string
	slack := 1.0
	if cur.NumCPU < 4 {
		slack = schedOverheadSlack
	}
	for _, r := range cur.Results {
		if r.Mode != "dag" || r.Speedup <= 0 || r.Seconds < minCompareSeconds {
			continue
		}
		// Speedup is barrier/dag; below 1/slack the DAG path lost by more
		// than the tolerated overhead.
		if r.Speedup*slack < 1 {
			failures = append(failures,
				fmt.Sprintf("%s: dag %.0f%% slower than phase-barrier (tolerance %.0f%%, %d CPUs)",
					r.Kind, 100*(1/r.Speedup-1), 100*(slack-1), cur.NumCPU))
		}
	}
	if base == nil || !SchedComparable(cur, base) {
		return failures
	}
	key := func(r SchedResult) string { return fmt.Sprintf("%s/%s", r.Kind, r.Mode) }
	baseRate := map[string]float64{}
	for _, r := range base.Results {
		if r.PerSec > 0 && r.Seconds >= minCompareSeconds {
			baseRate[key(r)] = r.PerSec
		}
	}
	for _, r := range cur.Results {
		if r.PerSec <= 0 || r.Seconds < minCompareSeconds {
			continue
		}
		want, ok := baseRate[key(r)]
		if !ok {
			continue
		}
		floor := want * (1 - maxRegress)
		if r.PerSec < floor {
			failures = append(failures,
				fmt.Sprintf("%s: %.2f ops/s vs baseline %.2f (floor %.2f, −%.0f%%)",
					key(r), r.PerSec, want, floor, 100*(1-r.PerSec/want)))
		}
	}
	return failures
}

// PrintSched renders the scheduler table.
func PrintSched(b *SchedBaseline, w *os.File) {
	fmt.Fprintf(w, "  task-DAG executor vs phase-barrier (nt=%d, b=%d, a=%d, GOMAXPROCS=%d, %d hardware CPUs)\n",
		b.Nt, b.BlockSize, b.ArrowSize, b.GoMaxProcs, b.NumCPU)
	if b.NumCPU < 4 {
		fmt.Fprintf(w, "  note: %d hardware CPU(s) — dag/barrier pairs measure scheduling overhead (bar: within 10%%), not overlap speedup\n", b.NumCPU)
	}
	fmt.Fprintf(w, "  %-12s %-9s %7s %12s %10s %8s\n", "kind", "mode", "width", "latency", "ops/s", "speedup")
	for _, r := range b.Results {
		width := r.Points
		if r.Kind == "spawnjoin" {
			width = r.Tasks
		}
		sp := "-"
		if r.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", r.Speedup)
		}
		fmt.Fprintf(w, "  %-12s %-9s %7d %12s %10.1f %8s\n",
			r.Kind, r.Mode, width, fmtDuration(r.Seconds), r.PerSec, sp)
	}
}
