package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/dalia-hpc/dalia/internal/baselines"
	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/inla"
	"github.com/dalia-hpc/dalia/internal/mesh"
	"github.com/dalia-hpc/dalia/internal/spde"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// Fig4 reproduces the strong-scaling comparison of Fig. 4: per-iteration
// runtime of DALIA, INLA_DIST-like, and the R-INLA-like reference on the
// univariate spatio-temporal model MB1, scaling S1+S2 from 1 to 18 workers.
func Fig4(quick bool) (*Figure, error) {
	spec := synth.MB1()
	workers := spec.Workers
	if quick {
		workers = []int{1, 4, 9}
	}
	ds, err := synth.Generate(spec.Gen)
	if err != nil {
		return nil, err
	}
	prior := inla.WeakPrior(ds.Theta0, 5)
	fig := NewFigure("Fig4", "Strong scaling, univariate ST model (MB1-scaled), per-iteration seconds", "workers", "s/iter")
	fig.Note("paper: DALIA 12.6× / INLA_DIST 8.4× over R-INLA on 1 GPU; 2× DALIA-vs-INLA_DIST and 180× over R-INLA at 18; η: 79.7%% vs 59.3%%")
	fig.Note("scaled: %s", spec.ScaleNote)

	dalia := fig.AddSeries("DALIA")
	idist := fig.AddSeries("INLA_DIST-like")
	rinla := fig.AddSeries("R-INLA-like")

	// R-INLA-like reference at its most performant shared-memory width
	// (S1 = 9 groups, the nfeval of the univariate model).
	rRef, err := baselines.RunRINLASim(ds.Model, prior, ds.Theta0, 9, 1, comm.DefaultMachine())
	if err != nil {
		return nil, err
	}

	var tD1, tDmax, tI1, tImax float64
	var wMax int
	for _, w := range workers {
		repD, err := inla.RunDistributed(ds.Model, prior, ds.Theta0, inla.DistConfig{
			World: w, Machine: comm.DefaultMachine(), Iterations: 1, DisableS3: true,
		})
		if err != nil {
			return nil, err
		}
		repI, err := inla.RunDistributed(ds.Model, prior, ds.Theta0, inla.DistConfig{
			World: w, Machine: comm.DefaultMachine(), Iterations: 1, DisableS3: true, NaiveMapping: true,
		})
		if err != nil {
			return nil, err
		}
		dalia.Add(float64(w), repD.PerIter)
		idist.Add(float64(w), repI.PerIter)
		rinla.Add(float64(w), rRef.PerIter)
		if w == 1 {
			tD1, tI1 = repD.PerIter, repI.PerIter
		}
		if w >= wMax {
			wMax, tDmax, tImax = w, repD.PerIter, repI.PerIter
		}
	}
	if tD1 > 0 && wMax > 1 {
		fig.Note("measured: 1-worker speedup over R-INLA-like: DALIA %.1f×, INLA_DIST-like %.1f×",
			rRef.PerIter/tD1, rRef.PerIter/tI1)
		fig.Note("measured: at %d workers: DALIA %.1f× over R-INLA-like, %.2f× over INLA_DIST-like; η(DALIA) = %.1f%%, η(INLA_DIST-like) = %.1f%%",
			wMax, rRef.PerIter/tDmax, tImax/tDmax,
			100*tD1/(float64(wMax)*tDmax), 100*tI1/(float64(wMax)*tImax))
	}
	return fig, nil
}

// fig5Matrix builds the MB2-style BTA prior matrix with an arrowhead of
// size nr for a weak-scaling width of p ranks.
func fig5Matrix(spec synth.Spec, p int) (*bta.Matrix, error) {
	nt := spec.Gen.Nt * p
	msh := mesh.Uniform(spec.Gen.MeshNx, spec.Gen.MeshNy, 400, 300)
	b := spde.NewBuilder(msh, nt)
	q := b.Precision(spde.Hyper{RangeS: 120, RangeT: 3, Sigma: 1})
	bt, err := bta.FromCSR(q, nt, b.Ns(), 0)
	if err != nil {
		return nil, err
	}
	// Attach the nr=1 arrowhead (fixed effect coupled weakly to the field).
	out := bta.NewMatrix(nt, b.Ns(), spec.Gen.Nr)
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < nt; i++ {
		out.Diag[i].CopyFrom(bt.Diag[i])
		if i < nt-1 {
			out.Lower[i].CopyFrom(bt.Lower[i])
		}
		for r := 0; r < out.A; r++ {
			for jj := 0; jj < out.B; jj++ {
				out.Arrow[i].Set(r, jj, 0.01*rng.NormFloat64())
			}
		}
	}
	for r := 0; r < out.A; r++ {
		out.Tip.Set(r, r, float64(nt))
	}
	return out, nil
}

// Fig5 reproduces the solver weak-scaling microbenchmark: parallel
// efficiency of PPOBTAF (factorization), PPOBTASI (selected inversion), and
// PPOBTAS (triangular solve) on 1→16 ranks, with and without the lb = 1.6
// load balancing of §V-C.
func Fig5(quick bool) (*Figure, error) {
	spec := synth.MB2()
	worlds := spec.Workers
	if quick {
		worlds = []int{1, 2, 4}
	}
	fig := NewFigure("Fig5", "Solver weak scaling (MB2-scaled): parallel efficiency", "ranks", "efficiency %")
	fig.Note("paper: factorization/selinv ≈52.6/52.8%% at 16 ranks, →58.8/58.3%% with lb=1.6; PPOBTAS 31.6%% and *hurt* by lb; lb matters most at 1→2 ranks")
	fig.Note("scaled: %s", spec.ScaleNote)

	type key struct {
		phase string
		lb    float64
	}
	times := map[key]map[int]float64{}
	record := func(phase string, lb float64, p int, t float64) {
		k := key{phase, lb}
		if times[k] == nil {
			times[k] = map[int]float64{}
		}
		times[k][p] = t
	}

	for _, lb := range []float64{1.0, 1.6} {
		for _, p := range worlds {
			if lb != 1.0 && p == 1 {
				// P=1 is lb-independent; reuse the measured baseline.
				for _, phase := range []string{"factorization", "triangular solve", "selected inversion"} {
					record(phase, lb, 1, times[key{phase, 1.0}][1])
				}
				continue
			}
			g, err := fig5Matrix(spec, p)
			if err != nil {
				return nil, err
			}
			useLB := lb
			if p == 1 {
				useLB = 1
			}
			parts, err := bta.PartitionBlocks(g.N, p, useLB)
			if err != nil {
				// lb infeasible at this width: fall back to even.
				parts, err = bta.PartitionBlocks(g.N, p, 1)
				if err != nil {
					return nil, err
				}
			}
			rng := rand.New(rand.NewSource(77))
			rhs := make([]float64, g.Dim())
			for i := range rhs {
				rhs[i] = rng.NormFloat64()
			}
			var tFac, tSol, tInv float64
			comm.Run(p, comm.DefaultMachine(), func(c *comm.Comm) {
				local := bta.LocalSlice(g, parts, c.Rank())
				c.Barrier()
				t0 := c.Clock()
				f, err := bta.PPOBTAF(c, local)
				if err != nil {
					return
				}
				c.Barrier()
				t1 := c.Clock()
				part := parts[c.Rank()]
				rl := append([]float64(nil), rhs[part.Lo*g.B:(part.Hi+1)*g.B]...)
				var rt []float64
				if g.A > 0 {
					rt = rhs[g.N*g.B:]
				}
				if _, _, err := bta.PPOBTAS(c, f, rl, rt); err != nil {
					return
				}
				c.Barrier()
				t2 := c.Clock()
				if _, err := bta.PPOBTASI(c, f); err != nil {
					return
				}
				c.Barrier()
				t3 := c.Clock()
				if c.Rank() == 0 {
					tFac, tSol, tInv = t1-t0, t2-t1, t3-t2
				}
			})
			record("factorization", lb, p, tFac)
			record("triangular solve", lb, p, tSol)
			record("selected inversion", lb, p, tInv)
		}
	}

	for _, phase := range []string{"factorization", "triangular solve", "selected inversion"} {
		for _, lb := range []float64{1.0, 1.6} {
			s := fig.AddSeries(fmt.Sprintf("%s lb=%.1f", phase, lb))
			t1 := times[key{phase, 1.0}][1] // P=1 baseline shared across lb
			for _, p := range worlds {
				tp := times[key{phase, lb}][p]
				if tp > 0 && t1 > 0 {
					s.Add(float64(p), 100*t1/tp)
				}
			}
		}
	}
	return fig, nil
}

// Fig6a reproduces the weak scaling through the time domain (WA1): DALIA
// with the full layer policy vs the R-INLA-like reference, doubling nt with
// the worker count.
func Fig6a(quick bool) (*Figure, error) {
	spec := synth.WA1()
	type pt struct{ nt, w int }
	points := []pt{{2, 1}, {4, 2}, {8, 4}, {16, 8}, {32, 16}}
	rinlaCut := 3 // R-INLA reference evaluated for the first few points only
	if quick {
		points = points[:3]
	}
	fig := NewFigure("Fig6a", "Weak scaling in time, trivariate model (WA1-scaled)", "time steps", "s/iter")
	fig.Note("paper: 1.48× over R-INLA at nt=2 (1 GPU); >100× from 32 steps (16 GPUs); 124× at 512 steps on a model 8× larger; superlinear while construction dominates, solver ≈90%% of runtime from 64 steps")
	fig.Note("scaled: %s", spec.ScaleNote)

	dalia := fig.AddSeries("DALIA")
	rinla := fig.AddSeries("R-INLA-like")

	for i, p := range points {
		gen := spec.Gen
		gen.Nt = p.nt
		ds, err := synth.Generate(gen)
		if err != nil {
			return nil, err
		}
		prior := inla.WeakPrior(ds.Theta0, 5)
		rep, err := inla.RunDistributed(ds.Model, prior, ds.Theta0, inla.DistConfig{
			World: p.w, Machine: comm.DefaultMachine(), Iterations: 1, LB: 1.6,
		})
		if err != nil {
			return nil, err
		}
		dalia.Add(float64(p.nt), rep.PerIter)
		if i < rinlaCut {
			rRef, err := baselines.RunRINLASim(ds.Model, prior, ds.Theta0, minInt(8, p.w*2), 1, comm.DefaultMachine())
			if err != nil {
				return nil, err
			}
			rinla.Add(float64(p.nt), rRef.PerIter)
			fig.Note("nt=%d (W=%d): DALIA %.2f× over R-INLA-like; plan groups=%d S2=%v",
				p.nt, p.w, rRef.PerIter/rep.PerIter, rep.Plan.Groups, rep.Plan.UseS2)
		}
		// Solver-vs-construction share for the stacked-bar annotation.
		asm, sol := splitEvalCost(ds)
		fig.Note("nt=%d: solver share of one evaluation ≈ %.0f%%", p.nt, 100*sol/(sol+asm))
	}
	return fig, nil
}

// splitEvalCost measures the construction (assembly+mapping) and solver
// (factorization+solve) wall seconds of one objective evaluation.
func splitEvalCost(ds *synth.Dataset) (asm, sol float64) {
	t, err := ds.Model.DecodeTheta(ds.Theta0)
	if err != nil {
		return 1, 1
	}
	t0 := time.Now()
	qc, err := ds.Model.Qc(t)
	if err != nil {
		return 1, 1
	}
	rhs := ds.Model.CondRHS(t)
	asm = time.Since(t0).Seconds()
	t1 := time.Now()
	f, err := bta.Factorize(qc)
	if err != nil {
		return asm, 1
	}
	f.Solve(rhs)
	sol = time.Since(t1).Seconds()
	return asm, sol
}

// Fig6b reproduces the weak scaling through spatial mesh refinement (WA2):
// the finest level exceeds the modeled device memory, forcing the S3 layer
// before S1 widens (the §V-D policy exception).
func Fig6b(quick bool) (*Figure, error) {
	spec := synth.WA2()
	type lvl struct {
		nx, ny int
		w      int
	}
	levels := []lvl{{4, 3, 1}, {6, 5, 4}, {9, 8, 16}}
	if quick {
		levels = levels[:2]
	}
	fig := NewFigure("Fig6b", "Weak scaling in space via mesh refinement (WA2-scaled)", "mesh nodes", "s/iter")
	fig.Note("paper: 1.95× over R-INLA at the coarsest mesh; S3 engaged when the model stops fitting one device; 168× at 64 GPUs; η = 51.2%% at 496")
	fig.Note("scaled: %s", spec.ScaleNote)
	const memCap = int64(3 << 20) // 3 MiB modeled device memory

	dalia := fig.AddSeries("DALIA")
	rinla := fig.AddSeries("R-INLA-like")

	for i, lv := range levels {
		gen := spec.Gen
		gen.MeshNx, gen.MeshNy = lv.nx, lv.ny
		ds, err := synth.Generate(gen)
		if err != nil {
			return nil, err
		}
		ns := ds.Model.Dims.Ns
		prior := inla.WeakPrior(ds.Theta0, 5)
		rep, err := inla.RunDistributed(ds.Model, prior, ds.Theta0, inla.DistConfig{
			World: lv.w, Machine: comm.DefaultMachine(), Iterations: 1,
			MemCapBytes: memCap, LB: 1.6,
		})
		if err != nil {
			return nil, err
		}
		dalia.Add(float64(ns), rep.PerIter)
		fig.Note("level %d: ns=%d (b=%d), W=%d → plan: S1 groups=%d, S2=%v, forced S3 width=%d",
			i, ns, 3*ns, lv.w, rep.Plan.Groups, rep.Plan.UseS2, rep.Plan.P3Min)
		if i == 0 {
			rRef, err := baselines.RunRINLASim(ds.Model, prior, ds.Theta0, 1, 1, comm.DefaultMachine())
			if err != nil {
				return nil, err
			}
			rinla.Add(float64(ns), rRef.PerIter)
			fig.Note("coarsest mesh: DALIA %.2f× over R-INLA-like (paper: 1.95×)", rRef.PerIter/rep.PerIter)
		}
	}
	return fig, nil
}

// Fig7 reproduces the application-level strong scaling (SA1): per-iteration
// runtime and parallel efficiency of the full three-layer scheme from 1 to
// 124 workers, with the R-INLA-like reference.
func Fig7(quick bool) (*Figure, error) {
	spec := synth.SA1()
	workers := spec.Workers
	if quick {
		workers = []int{1, 4, 16}
	}
	ds, err := synth.Generate(spec.Gen)
	if err != nil {
		return nil, err
	}
	prior := inla.WeakPrior(ds.Theta0, 5)
	fig := NewFigure("Fig7", "Strong scaling, trivariate model (SA1-scaled)", "workers", "s/iter")
	fig.Note("paper: ≈4 min/iter on 1 GPU vs >40 min for R-INLA; near-perfect to 31 GPUs; η = 85.6%% at 62; η = 28.3%% and ~1000× total speedup at 496")
	fig.Note("scaled: %s", spec.ScaleNote)

	dalia := fig.AddSeries("DALIA")
	eff := fig.AddSeries("efficiency %")
	rinla := fig.AddSeries("R-INLA-like")

	rRef, err := baselines.RunRINLASim(ds.Model, prior, ds.Theta0, 8, 1, comm.DefaultMachine())
	if err != nil {
		return nil, err
	}

	var t1 float64
	for _, w := range workers {
		rep, err := inla.RunDistributed(ds.Model, prior, ds.Theta0, inla.DistConfig{
			World: w, Machine: comm.DefaultMachine(), Iterations: 1, LB: 1.6,
		})
		if err != nil {
			return nil, err
		}
		if w == 1 {
			t1 = rep.PerIter
		}
		dalia.Add(float64(w), rep.PerIter)
		eff.Add(float64(w), 100*t1/(float64(w)*rep.PerIter))
		rinla.Add(float64(w), rRef.PerIter)
	}
	last := len(dalia.Y) - 1
	fig.Note("measured: 1-worker %.2f× over R-INLA-like; widest point %.0f× total speedup, η = %.1f%%",
		rRef.PerIter/dalia.Y[0], rRef.PerIter/dalia.Y[last], eff.Y[last])
	return fig, nil
}

// Table1 prints the framework capability matrix of Table I, sourced from
// the shipped implementations.
func Table1() *Figure {
	fig := NewFigure("Table1", "Framework comparison (Table I)", "", "")
	fig.Note("R-INLA-like   | fobj: general sparse Cholesky (PARDISO stand-in) | Qp/Qc: shared-memory | solver: sparse (SM) | comm: none      | scaling: single node  | pkg internal/baselines")
	fig.Note("INLA_DIST-like| fobj: sequential BTA solver                      | Qp/Qc: S1+S2         | solver: BTA (SM)    | comm: solver off | scaling: ≤2×nfeval    | pkg internal/baselines")
	fig.Note("DALIA         | fobj: distributed BTA solver                     | Qp/Qc: S1+S2         | solver: BTA (DM,S3) | comm: simulated MPI/NCCL | scaling: full 3-layer | pkg internal/inla + internal/bta")
	return fig
}

// Table4 prints the dataset table with paper and scaled dimensions.
func Table4() *Figure {
	fig := NewFigure("Table4", "Datasets (Table IV): paper dimensions and scaled defaults", "", "")
	for _, s := range synth.AllSpecs() {
		fig.Note("%s", s.String())
		fig.Note("      scaled: nv=%d nt=%d nr=%d mesh=%d×%d obs/step=%d — %s",
			s.Gen.Nv, s.Gen.Nt, s.Gen.Nr, s.Gen.MeshNx, s.Gen.MeshNy, s.Gen.ObsPerStep, s.ScaleNote)
	}
	return fig
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
