package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/dense"
)

// PrecisionResult is one measured point of the mixed-precision experiment.
// Rows come in fp64/fp32 (kernel level) or fp64/mixed (solver level) pairs;
// Speedup on the reduced-precision row is relative to its fp64 partner at
// the same size.
type PrecisionResult struct {
	Name      string  `json:"name"`
	N         int     `json:"n"`
	Precision string  `json:"precision"`
	Seconds   float64 `json:"seconds"`
	GFlops    float64 `json:"gflops,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
	// RefineIters is the fp64 residual-correction count of the mixed
	// Solve rows — the price of getting fp64 accuracy back.
	RefineIters int `json:"refine_iters,omitempty"`
}

// PrecisionBaseline is the serialized mixed-precision baseline
// (BENCH_8.json): the fp32 packed engine's GFLOP/s against the fp64 engine
// at the same sizes, and the mixed per-stage BTA factor+solve cycle against
// the pure-fp64 cycle. Precision/RefineIters record the headline mode the
// file's reduced-precision rows ran at, so gates can refuse a comparison
// against a file taken under a different policy.
type PrecisionBaseline struct {
	GoMaxProcs  int               `json:"gomaxprocs"`
	NumCPU      int               `json:"num_cpu"`
	Workers     int               `json:"workers"`
	Precision   string            `json:"precision"`
	RefineIters int               `json:"refine_iters"`
	Results     []PrecisionResult `json:"results"`
}

// Precision measures what dropping to fp32 buys and what refinement costs,
// single-threaded like the kernels experiment: GEMM and POTRF at
// n ∈ {256, 1024} in both precisions (the acceptance headline is the
// n=1024 GEMM fp32-over-fp64 speedup), then the BTA Refactorize+Solve
// cycle fp64 vs the mixed per-stage policy with its refinement iteration
// count. quick trims repetitions, not sizes.
func Precision(quick bool) *PrecisionBaseline {
	prev := dense.SetMaxWorkers(1)
	defer dense.SetMaxWorkers(prev)
	reps := 3
	if quick {
		reps = 1
	}
	rng := rand.New(rand.NewSource(41))
	out := &PrecisionBaseline{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    1,
		Precision:  bta.PrecMixed.String(),
	}

	for _, n := range []int{256, 1024} {
		a := dense.New(n, n)
		b := dense.New(n, n)
		c := dense.New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			b.Data[i] = rng.NormFloat64()
		}
		a32, b32, c32 := dense.New32(n, n), dense.New32(n, n), dense.New32(n, n)
		a32.FromFloat64(a)
		b32.FromFloat64(b)
		flops := 2 * float64(n) * float64(n) * float64(n)
		t64 := timeIt(reps, func() { dense.Gemm(dense.NoTrans, dense.NoTrans, 1, a, b, 0, c) })
		t32 := timeIt(reps, func() { dense.Gemm32(dense.NoTrans, dense.NoTrans, 1, a32, b32, 0, c32) })
		out.Results = append(out.Results,
			PrecisionResult{Name: "gemm", N: n, Precision: "fp64", Seconds: t64, GFlops: flops / t64 / 1e9},
			PrecisionResult{Name: "gemm", N: n, Precision: "fp32", Seconds: t32, GFlops: flops / t32 / 1e9, Speedup: t64 / t32})
	}

	// Blocked Cholesky in both precisions at n = 1024 (fp32 input is made
	// strongly diagonally dominant the same way, so POTRF32 cannot fail).
	{
		n := 1024
		g := dense.New(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		spd := dense.New(n, n)
		dense.Syrk(dense.NoTrans, 1, g, 0, spd)
		spd.MirrorLowerToUpper()
		spd.AddDiag(float64(n))
		w := dense.New(n, n)
		spd32 := dense.New32(n, n)
		spd32.FromFloat64(spd)
		w32 := dense.New32(n, n)
		flops := float64(n) * float64(n) * float64(n) / 3
		t64 := timeIt(reps, func() {
			w.CopyFrom(spd)
			if err := dense.Potrf(w); err != nil {
				panic(err)
			}
		})
		t32 := timeIt(reps, func() {
			w32.CopyFrom(spd32)
			if err := dense.Potrf32(w32); err != nil {
				panic(err)
			}
		})
		out.Results = append(out.Results,
			PrecisionResult{Name: "potrf", N: n, Precision: "fp64", Seconds: t64, GFlops: flops / t64 / 1e9},
			PrecisionResult{Name: "potrf", N: n, Precision: "fp32", Seconds: t32, GFlops: flops / t32 / 1e9, Speedup: t64 / t32})
	}

	// BTA Refactorize + Solve cycle: the pure-fp64 path against the mixed
	// per-stage policy (fp32 interior sweeps, fp64 boundary/log-det, fp64
	// refined solve). Same matrix, same rhs; the mixed row records how many
	// residual corrections the refined solve spent.
	{
		nBlocks, bs, as := 16, 128, 8
		m := randSPDBTA(rng, nBlocks, bs, as)
		rhs0 := make([]float64, m.Dim())
		for i := range rhs0 {
			rhs0[i] = rng.NormFloat64()
		}
		rhs := make([]float64, len(rhs0))
		cycle := func(f *bta.Factor) float64 {
			return timeIt(reps, func() {
				if err := f.Refactorize(m); err != nil {
					panic(err)
				}
				copy(rhs, rhs0)
				f.Solve(rhs)
				_ = f.LogDet()
			})
		}
		f64 := bta.NewFactor(nBlocks, bs, as)
		t64 := cycle(f64)
		fmx := bta.NewFactor(nBlocks, bs, as)
		fmx.SetPrecision(bta.PrecMixed)
		tmx := cycle(fmx)
		out.RefineIters = fmx.LastRefineIters()
		out.Results = append(out.Results,
			PrecisionResult{Name: "pobtaf-refactorize-solve", N: nBlocks * bs, Precision: "fp64", Seconds: t64},
			PrecisionResult{Name: "pobtaf-refactorize-solve", N: nBlocks * bs, Precision: "mixed",
				Seconds: tmx, Speedup: t64 / tmx, RefineIters: fmx.LastRefineIters()})
	}
	return out
}

// WritePrecisionBaseline serializes the mixed-precision baseline.
func WritePrecisionBaseline(b *PrecisionBaseline, path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadPrecisionBaseline reads a stored mixed-precision baseline back in.
func LoadPrecisionBaseline(path string) (*PrecisionBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b PrecisionBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parse precision baseline %s: %w", path, err)
	}
	return &b, nil
}

// minPrecisionGateSeconds is the shortest measurement the precision gate
// trusts: quick mode times each point once, and a single cold n=256 GEMM
// wanders ±2× on a shared 1-core runner. The n=1024 headline rows run tens
// of milliseconds and stay stable even at one repetition.
const minPrecisionGateSeconds = 0.01

// ComparePrecision checks the current measurements against a stored
// baseline: a precision-mode mismatch between the two files is itself a
// gate failure (fp32 rates gated against fp64 rates would always "pass"),
// then each GEMM point — both precisions — must hold (1−maxRegress) of the
// baseline GFLOP/s. Non-GEMM rows are informational, as are rows too short
// to time reliably (minPrecisionGateSeconds) or present in only one set.
func ComparePrecision(cur, base *PrecisionBaseline, maxRegress float64) []string {
	if regs := precisionMismatch("precision", cur.Precision, base.Precision); regs != nil {
		return regs
	}
	key := func(r PrecisionResult) string { return fmt.Sprintf("%s/%s/n=%d", r.Name, r.Precision, r.N) }
	baseRate := map[string]float64{}
	for _, r := range base.Results {
		if r.GFlops > 0 {
			baseRate[key(r)] = r.GFlops
		}
	}
	var regressions []string
	for _, r := range cur.Results {
		if r.Name != "gemm" || r.GFlops <= 0 || r.Seconds < minPrecisionGateSeconds {
			continue
		}
		want, ok := baseRate[key(r)]
		if !ok {
			continue
		}
		floor := want * (1 - maxRegress)
		if r.GFlops < floor {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.2f GFLOP/s vs baseline %.2f (floor %.2f, −%.0f%%)",
					key(r), r.GFlops, want, floor, 100*(1-r.GFlops/want)))
		}
	}
	return regressions
}

// PrintPrecision renders the mixed-precision table.
func PrintPrecision(b *PrecisionBaseline, w *os.File) {
	fmt.Fprintf(w, "  mixed precision (single-threaded, GOMAXPROCS=%d, %d hardware CPUs, refine iters=%d)\n",
		b.GoMaxProcs, b.NumCPU, b.RefineIters)
	fmt.Fprintf(w, "  %-24s %6s %-9s %12s %10s %8s %7s\n",
		"op", "n", "prec", "latency", "GFLOP/s", "speedup", "refine")
	for _, r := range b.Results {
		gf, sp, ri := "-", "-", "-"
		if r.GFlops > 0 {
			gf = fmt.Sprintf("%.2f", r.GFlops)
		}
		if r.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", r.Speedup)
		}
		if r.Precision == "mixed" {
			ri = fmt.Sprintf("%d", r.RefineIters)
		}
		fmt.Fprintf(w, "  %-24s %6d %-9s %12s %10s %8s %7s\n",
			r.Name, r.N, r.Precision, fmtDuration(r.Seconds), gf, sp, ri)
	}
}
