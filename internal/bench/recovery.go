package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/dalia-hpc/dalia/internal/serve"
	"github.com/dalia-hpc/dalia/internal/store"
)

// RecoveryResult is one model of the crash-recovery benchmark: the cost of
// the cold path (full INLA fit + durable publish) against the cost of the
// recovery path (decode checkpoint, regenerate dataset, refactorize), and
// whether the two paths answer a fixed query set with identical bytes.
type RecoveryResult struct {
	Name      string `json:"name"`
	LatentDim int    `json:"latent_dim"`
	Nv        int    `json:"nv"`
	// FitSeconds is the cold path: BFGS mode search + posterior + publish.
	FitSeconds float64 `json:"fit_seconds"`
	// RecoverSeconds is the restart path for this model, amortized from the
	// whole-registry recovery wall time.
	RecoverSeconds float64 `json:"recover_seconds"`
	// Speedup is FitSeconds / RecoverSeconds: how much faster a restart is
	// than refitting.
	Speedup float64 `json:"speedup"`
	// CheckpointBytes is the on-disk size of the current generation.
	CheckpointBytes int `json:"checkpoint_bytes"`
	// Identical reports whether pre-crash and post-restart predictions were
	// byte-for-byte equal.
	Identical bool `json:"identical"`
}

// RecoveryBaseline is the serialized crash-recovery baseline (BENCH_7.json):
// restart-vs-refit cost for a registry of fitted models, for the CI chaos
// gate to compare against.
type RecoveryBaseline struct {
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// TotalFitSeconds / TotalRecoverSeconds are whole-registry wall times:
	// every model fitted and published vs the same registry rebuilt from the
	// store on a fresh server.
	TotalFitSeconds     float64 `json:"total_fit_seconds"`
	TotalRecoverSeconds float64 `json:"total_recover_seconds"`
	// Precision records the factorization precision policy the run measured
	// ("fp64" here — this suite exercises the pure-fp64 path); RefineIters
	// the refinement iterations its solves spent. Gates refuse comparisons
	// across modes.
	Precision   string           `json:"precision"`
	RefineIters int              `json:"refine_iters"`
	Results     []RecoveryResult `json:"results"`
}

// Recovery measures what the persistence layer buys on restart: fit a small
// registry of models on a store-backed server, capture predictions, tear
// the server down, and time a fresh server rebuilding the whole registry
// from durable checkpoints — asserting along the way that the recovered
// models answer the same queries with byte-identical responses and that no
// fit re-ran. quick trims the registry, not the assertions.
func Recovery(quick bool) (*RecoveryBaseline, error) {
	dir, err := os.MkdirTemp("", "dalia-bench-recovery-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	specs := []struct {
		name string
		gen  serve.GenSpec
	}{
		{"uni", serve.GenSpec{Nv: 1, Nt: 4, Nr: 2, MeshNx: 5, MeshNy: 4, ObsPerStep: 30, Seed: 11}},
		{"bi", serve.GenSpec{Nv: 2, Nt: 4, Nr: 2, MeshNx: 5, MeshNy: 4, ObsPerStep: 30, Seed: 22}},
		{"tri", serve.GenSpec{Nv: 3, Nt: 6, Nr: 2, MeshNx: 6, MeshNy: 5, ObsPerStep: 20, Seed: 33}},
	}
	if quick {
		specs = specs[:1]
	}

	predictBodies := func(ts *httptest.Server) (map[string][]byte, error) {
		out := map[string][]byte{}
		for _, sp := range specs {
			body := `{"queries":[{"x":120,"y":80,"t":0,"response":0},{"x":33,"y":210,"t":1,"response":0},{"x":350,"y":10,"t":2,"response":0}]}`
			resp, err := ts.Client().Post(ts.URL+"/v1/models/"+sp.name+"/predict", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				return nil, err
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("predict %s: status %d: %s", sp.name, resp.StatusCode, data)
			}
			out[sp.name] = data
		}
		return out, nil
	}

	// Cold path: fit + publish every model on a store-backed server.
	st, _, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	srv := serve.New(serve.Options{BatchWindow: 0, Store: st})
	out := &RecoveryBaseline{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), Precision: "fp64"}
	fitSecs := map[string]float64{}
	dims := map[string][2]int{} // latent dim, nv
	t0 := time.Now()
	for _, sp := range specs {
		gen := sp.gen
		tf := time.Now()
		m, err := srv.FitModel(serve.FitRequest{Name: sp.name, Gen: &gen, MaxIter: 8})
		if err != nil {
			return nil, err
		}
		if err := srv.Register(m); err != nil {
			return nil, err
		}
		fitSecs[sp.name] = time.Since(tf).Seconds()
		d := m.Dims()
		dims[sp.name] = [2]int{d.Total(), d.Nv}
	}
	out.TotalFitSeconds = time.Since(t0).Seconds()

	ts := httptest.NewServer(srv.Handler())
	before, err := predictBodies(ts)
	ts.Close()
	if err != nil {
		return nil, err
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		return nil, err
	}
	if err := st.Close(); err != nil {
		return nil, err
	}

	// Restart path: reopen the store and rebuild the registry — decode, not
	// refit. The wall time covers store recovery plus every model's snapshot
	// refactorization.
	t1 := time.Now()
	st2, stats, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	srv2 := serve.New(serve.Options{BatchWindow: 0, Store: st2, Recovery: stats})
	out.TotalRecoverSeconds = time.Since(t1).Seconds()
	defer func() {
		srv2.Shutdown(context.Background())
		st2.Close()
	}()

	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var sst serve.Stats
	resp, err := ts2.Client().Get(ts2.URL + "/stats")
	if err != nil {
		return nil, err
	}
	err = json.NewDecoder(resp.Body).Decode(&sst)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if sst.Models != len(specs) {
		return nil, fmt.Errorf("recovered %d models, want %d (store stats %s)", sst.Models, len(specs), stats)
	}
	if sst.Fits != 0 {
		return nil, fmt.Errorf("recovery re-ran %d fits; restart must not refit", sst.Fits)
	}

	after, err := predictBodies(ts2)
	if err != nil {
		return nil, err
	}

	perModel := out.TotalRecoverSeconds / float64(len(specs))
	for _, sp := range specs {
		size := 0
		gen, ok := st2.Generation(sp.name)
		if ok {
			if fi, err := os.Stat(filepath.Join(dir, "models", sp.name, fmt.Sprintf("gen-%012d.ckpt", gen))); err == nil {
				size = int(fi.Size())
			}
		}
		r := RecoveryResult{
			Name:            sp.name,
			LatentDim:       dims[sp.name][0],
			Nv:              dims[sp.name][1],
			FitSeconds:      fitSecs[sp.name],
			RecoverSeconds:  perModel,
			CheckpointBytes: size,
			Identical:       bytes.Equal(before[sp.name], after[sp.name]),
		}
		if r.RecoverSeconds > 0 {
			r.Speedup = r.FitSeconds / r.RecoverSeconds
		}
		if !r.Identical {
			return nil, fmt.Errorf("model %s: recovered predictions differ from pre-crash bytes", sp.name)
		}
		out.Results = append(out.Results, r)
	}
	return out, nil
}

// WriteRecoveryBaseline serializes the recovery baseline as indented JSON.
func WriteRecoveryBaseline(b *RecoveryBaseline, path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRecoveryBaseline reads a stored recovery baseline (BENCH_7.json) back
// in.
func LoadRecoveryBaseline(path string) (*RecoveryBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b RecoveryBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parse recovery baseline %s: %w", path, err)
	}
	return &b, nil
}

// RecoveryComparable reports whether two recovery baselines were measured on
// comparable machines.
func RecoveryComparable(cur, base *RecoveryBaseline) bool {
	return cur.GoMaxProcs == base.GoMaxProcs
}

// CompareRecovery checks the current restart cost against a stored baseline
// and returns one description per regression: a model whose recovery time
// exceeds (1+maxRegress) of the baseline, or any model whose recovered
// predictions were not byte-identical (always a failure, never tolerance-
// gated). Models present in only one set are skipped, as are baseline times
// too small for the timer to resolve.
func CompareRecovery(cur, base *RecoveryBaseline, maxRegress float64) []string {
	if regs := precisionMismatch("recovery", cur.Precision, base.Precision); regs != nil {
		return regs
	}
	const minGateSeconds = 0.005
	baseRec := map[string]float64{}
	for _, r := range base.Results {
		if r.RecoverSeconds > 0 {
			baseRec[r.Name] = r.RecoverSeconds
		}
	}
	var regressions []string
	for _, r := range cur.Results {
		if !r.Identical {
			regressions = append(regressions,
				fmt.Sprintf("%s: recovered predictions are not byte-identical", r.Name))
			continue
		}
		want, ok := baseRec[r.Name]
		if !ok || r.RecoverSeconds <= 0 || want < minGateSeconds {
			continue
		}
		ceil := want * (1 + maxRegress)
		if r.RecoverSeconds > ceil {
			regressions = append(regressions,
				fmt.Sprintf("%s: recover %.3fs vs baseline %.3fs (ceiling %.3fs, +%.0f%%)",
					r.Name, r.RecoverSeconds, want, ceil, 100*(r.RecoverSeconds/want-1)))
		}
	}
	return regressions
}

// PrintRecovery renders the restart-vs-refit table.
func PrintRecovery(b *RecoveryBaseline, w *os.File) {
	fmt.Fprintf(w, "  crash recovery: restart-from-store vs refit (GOMAXPROCS=%d, %d CPUs)\n",
		b.GoMaxProcs, b.NumCPU)
	fmt.Fprintf(w, "  %6s %10s %4s %10s %12s %9s %10s %10s\n",
		"model", "latent", "nv", "fit s", "recover s", "speedup", "ckpt KiB", "identical")
	for _, r := range b.Results {
		fmt.Fprintf(w, "  %6s %10d %4d %10.3f %12.4f %8.1fx %10.1f %10v\n",
			r.Name, r.LatentDim, r.Nv, r.FitSeconds, r.RecoverSeconds, r.Speedup,
			float64(r.CheckpointBytes)/1024, r.Identical)
	}
	fmt.Fprintf(w, "  registry: fit+publish %.3fs, rebuild from store %.3fs\n",
		b.TotalFitSeconds, b.TotalRecoverSeconds)
}
