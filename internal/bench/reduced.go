package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// ReducedResult is one measured point of the reduced-system-engine
// experiment: a (partitions, recursion depth, pipelined) configuration's
// factorization latency and reduced-phase share.
type ReducedResult struct {
	Partitions int  `json:"partitions"`
	Depth      int  `json:"depth"`
	Pipeline   bool `json:"pipeline"`
	// Seconds is the Refactorize + Solve latency per cycle.
	Seconds float64 `json:"seconds"`
	PerSec  float64 `json:"per_sec"`
	// RedShare is the reduced-phase share of the factorization wall time:
	// the tail after the last interior elimination finished, over the
	// total. The serial fraction the engine attacks — pipelining overlaps
	// it into the interior sweeps, recursion parallelizes what remains.
	RedShare float64 `json:"red_share"`
	// Speedup is relative to the sequential-reduced baseline row
	// (depth 0, pipeline off) at the same partition count.
	Speedup float64 `json:"speedup,omitempty"`
}

// ReducedBaseline is the serialized reduced-system-engine baseline
// (BENCH_5.json). Like pintime/hybrid, latencies scale with the scheduler
// width, so runs are only gate-comparable at matching GOMAXPROCS; NumCPU
// records the hardware parallelism — reduced-share drops and speedups need
// at least as many real cores as partitions to show.
type ReducedBaseline struct {
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	Nt         int `json:"nt"`
	BlockSize  int `json:"block_size"`
	ArrowSize  int `json:"arrow_size"`
	// Precision records the factorization precision policy the run measured
	// ("fp64" here — this suite exercises the pure-fp64 path); RefineIters
	// the refinement iterations its solves spent. Gates refuse comparisons
	// across modes.
	Precision   string          `json:"precision"`
	RefineIters int             `json:"refine_iters"`
	Results     []ReducedResult `json:"results"`
}

// reducedConfigs is the engine sweep per partition count: the sequential
// baseline, each mechanism alone, and both together.
var reducedConfigs = []struct {
	depth    int
	pipeline bool
}{
	{0, false}, {0, true}, {1, false}, {1, true},
}

// reducedParts sweeps the partition width across the recursion crossover:
// P = 4 (reduced size 6, below the default crossover — recursion must cost
// nothing) and P = 8 (reduced size 14 — the §V-B knee the engine exists
// for).
var reducedParts = []int{4, 8}

// Reduced measures the parallel recursive reduced-system engine on a
// time-deep bivariate model: for each partition count × (recursion depth,
// pipelined handoff) configuration, the Refactorize + Solve latency and the
// reduced-phase share of the factorization wall time. quick trims
// repetitions, not the grid.
func Reduced(quick bool) (*ReducedBaseline, error) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 2, Nt: 64, Nr: 1,
		MeshNx: 5, MeshNy: 4,
		ObsPerStep: 30,
		Seed:       37,
	})
	if err != nil {
		return nil, err
	}
	m := ds.Model
	n, b, a := m.Dims.BTAShape()
	th, err := m.DecodeTheta(ds.Theta0)
	if err != nil {
		return nil, err
	}
	qc, err := m.Qc(th)
	if err != nil {
		return nil, err
	}
	rhs0 := make([]float64, qc.Dim())
	for i := range rhs0 {
		rhs0[i] = float64(i%7) - 3
	}
	rhs := make([]float64, len(rhs0))
	out := &ReducedBaseline{
		Precision:  "fp64",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Nt:         n, BlockSize: b, ArrowSize: a,
	}
	reps := 10
	if quick {
		reps = 3
	}
	for _, p := range reducedParts {
		if p > bta.MaxUsefulPartitions(n) {
			continue
		}
		var base float64
		for _, cfg := range reducedConfigs {
			pf, err := bta.NewParallelFactorOpts(n, b, a, bta.ParallelOptions{
				Partitions: p,
				Reduced:    bta.ReducedOptions{Depth: cfg.depth, Pipeline: cfg.pipeline},
			})
			if err != nil {
				return nil, err
			}
			if err := pf.Refactorize(qc); err != nil {
				return nil, err
			}
			var elimSum, tailSum float64
			secs := timeIt(reps, func() {
				if err := pf.Refactorize(qc); err != nil {
					panic(err)
				}
				elim, tail := pf.FactorPhaseSeconds()
				elimSum += elim
				tailSum += tail
				copy(rhs, rhs0)
				pf.Solve(rhs)
			})
			r := ReducedResult{
				Partitions: p, Depth: cfg.depth, Pipeline: cfg.pipeline,
				Seconds: secs, PerSec: 1 / secs,
			}
			if elimSum+tailSum > 0 {
				r.RedShare = tailSum / (elimSum + tailSum)
			}
			if cfg.depth == 0 && !cfg.pipeline {
				base = secs
			} else if base > 0 {
				r.Speedup = base / secs
			}
			out.Results = append(out.Results, r)
		}
	}
	return out, nil
}

// WriteReducedBaseline serializes the reduced-engine baseline.
func WriteReducedBaseline(b *ReducedBaseline, path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReducedBaseline reads a stored reduced-engine baseline back in.
func LoadReducedBaseline(path string) (*ReducedBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b ReducedBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parse reduced baseline %s: %w", path, err)
	}
	return &b, nil
}

// ReducedComparable reports whether two reduced runs can be gated against
// each other (latencies scale with the scheduler width).
func ReducedComparable(cur, base *ReducedBaseline) bool {
	return cur.GoMaxProcs == base.GoMaxProcs
}

// CompareReduced checks the current measurements against a stored baseline
// and returns one description per regression: a configuration whose cycle
// rate fell below (1−maxRegress) of the baseline. Incomparable runs yield
// no regressions; points too short to time reliably are skipped.
func CompareReduced(cur, base *ReducedBaseline, maxRegress float64) []string {
	if !ReducedComparable(cur, base) {
		return nil
	}
	if regs := precisionMismatch("reduced", cur.Precision, base.Precision); regs != nil {
		return regs
	}
	key := func(r ReducedResult) string {
		return fmt.Sprintf("p=%d/depth=%d/pipe=%v", r.Partitions, r.Depth, r.Pipeline)
	}
	baseRate := map[string]float64{}
	for _, r := range base.Results {
		if r.PerSec > 0 && r.Seconds >= minCompareSeconds {
			baseRate[key(r)] = r.PerSec
		}
	}
	var regressions []string
	for _, r := range cur.Results {
		if r.PerSec <= 0 || r.Seconds < minCompareSeconds {
			continue
		}
		want, ok := baseRate[key(r)]
		if !ok {
			continue
		}
		floor := want * (1 - maxRegress)
		if r.PerSec < floor {
			regressions = append(regressions,
				fmt.Sprintf("reduced %s: %.2f cycles/s vs baseline %.2f (floor %.2f, −%.0f%%)",
					key(r), r.PerSec, want, floor, 100*(1-r.PerSec/want)))
		}
	}
	return regressions
}

// PrintReduced renders the reduced-engine table.
func PrintReduced(b *ReducedBaseline, w *os.File) {
	fmt.Fprintf(w, "  parallel recursive reduced-system engine (nt=%d, b=%d, a=%d, GOMAXPROCS=%d, %d hardware CPUs)\n",
		b.Nt, b.BlockSize, b.ArrowSize, b.GoMaxProcs, b.NumCPU)
	fmt.Fprintf(w, "  factorize+solve latency; red%% = reduced-phase share of factorization wall time\n")
	if b.NumCPU < 2 {
		fmt.Fprintf(w, "  note: single hardware CPU — the reduced-share drop needs ≥ 2 real cores to show\n")
	}
	fmt.Fprintf(w, "  %10s %6s %9s %12s %10s %7s %8s\n",
		"partitions", "depth", "pipelined", "cycle", "cycles/s", "red%", "speedup")
	for _, r := range b.Results {
		sp := "-"
		if r.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", r.Speedup)
		}
		fmt.Fprintf(w, "  %10d %6d %9v %12s %10.1f %6.1f%% %8s\n",
			r.Partitions, r.Depth, r.Pipeline, fmtDuration(r.Seconds), r.PerSec, 100*r.RedShare, sp)
	}
}
