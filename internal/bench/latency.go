package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/dalia-hpc/dalia/internal/mesh"
	"github.com/dalia-hpc/dalia/internal/predict"
	"github.com/dalia-hpc/dalia/internal/serve"
)

// LatencyResult is one measured point of the serving latency benchmark:
// closed-loop clients at a fixed concurrency hammering the HTTP predict
// path, with the full per-request latency distribution summarized by its
// tail percentiles.
type LatencyResult struct {
	// Concurrency is the number of closed-loop clients.
	Concurrency int `json:"concurrency"`
	// Requests is the total number of timed round trips.
	Requests int `json:"requests"`
	// PerRequest is queries per request.
	PerRequest int `json:"per_request"`
	// P50/P99/P999 are request-latency percentiles in milliseconds.
	P50Millis  float64 `json:"p50_ms"`
	P99Millis  float64 `json:"p99_ms"`
	P999Millis float64 `json:"p999_ms"`
	// Seconds is the scenario wall time; PerSec the prediction throughput.
	Seconds float64 `json:"seconds"`
	PerSec  float64 `json:"predictions_per_sec"`
}

// LatencyBaseline is the serialized serving latency baseline (BENCH_6.json):
// tail latency and throughput of the replicated lock-free serving path under
// concurrent closed-loop load, for the CI latency gate to compare against.
type LatencyBaseline struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	LatentDim  int     `json:"latent_dim"`
	Nv         int     `json:"nv"`
	Replicas   int     `json:"replicas_per_model"`
	SLOMillis  float64 `json:"slo_ms"`
	FitSeconds float64 `json:"fit_seconds"`
	// SLOFlushes counts batches the SLO policy (not width or window) cut
	// short across the whole run — evidence the flush policy engaged.
	SLOFlushes int64 `json:"slo_flushes"`
	// Precision records the factorization precision policy the run measured
	// ("fp64" here — this suite exercises the pure-fp64 path); RefineIters
	// the refinement iterations its solves spent. Gates refuse comparisons
	// across modes.
	Precision   string          `json:"precision"`
	RefineIters int             `json:"refine_iters"`
	Results     []LatencyResult `json:"results"`
}

// latencySLO is the per-request latency target the benchmark server runs
// with: generous against the sub-millisecond solves of the bench model, so
// the SLO policy engages only when queueing actually threatens the tail.
const latencySLO = 10 * time.Millisecond

// latencyWindow is the batch collection window: long enough that the
// closed-loop clients refill the queue and batches reach the full
// coalescing width (where the multi-RHS engine rate peaks), short enough
// that a lone client pays little for it. The SLO policy cuts it when the
// queue-wait has already eaten the latency budget.
const latencyWindow = time.Millisecond

// Latency measures end-to-end serving latency under concurrent closed-loop
// load: the same trivariate bench model as Serving, served through the
// replicated lock-free snapshot path with the SLO flush policy enabled, and
// hit by {1, 8, 32, 64} concurrent clients posting 8-query requests. Each
// scenario records the full per-request latency distribution (p50/p99/p999)
// and the aggregate prediction throughput. quick trims the request counts,
// not the concurrency grid.
func Latency(quick bool) (*LatencyBaseline, error) {
	// Queue depth must exceed the widest client grid so closed-loop load
	// never sheds (a 429 would abort the scenario).
	srv := serve.New(serve.Options{BatchWindow: latencyWindow, SLO: latencySLO, QueueDepth: 128})
	t0 := time.Now()
	m, err := srv.FitModel(serve.FitRequest{
		Name: "bench",
		Gen: &serve.GenSpec{
			Nv: 3, Nt: 8, Nr: 2,
			MeshNx: 6, MeshNy: 5,
			ObsPerStep: 20,
			Seed:       42,
		},
		MaxIter: 8,
		// Wide coalescing: at high concurrency a whole closed-loop round
		// lands in one multi-RHS sweep, where the engine rate peaks.
		MaxBatch: 256,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Register(m); err != nil {
		return nil, err
	}
	fitSecs := time.Since(t0).Seconds()

	dims := m.Dims()
	out := &LatencyBaseline{
		Precision:  "fp64",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		LatentDim:  dims.Total(),
		Nv:         dims.Nv,
		Replicas:   runtime.GOMAXPROCS(0),
		SLOMillis:  float64(latencySLO) / float64(time.Millisecond),
		FitSeconds: fitSecs,
	}

	rng := rand.New(rand.NewSource(5))
	const perReq = 8
	body := func() []byte {
		qr := serve.PredictRequest{}
		for i := 0; i < perReq; i++ {
			q := predict.Query{
				Point:      mesh.Point{X: rng.Float64() * 400, Y: rng.Float64() * 300},
				T:          rng.Intn(dims.Nt),
				Response:   rng.Intn(dims.Nv),
				Covariates: []float64{1, rng.NormFloat64()},
			}
			qr.Queries = append(qr.Queries, serve.QueryJSON{
				X: q.Point.X, Y: q.Point.Y, T: q.T, Response: q.Response, Covariates: q.Covariates,
			})
		}
		b, _ := json.Marshal(qr)
		return b
	}()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/models/bench/predict"

	// Per-scenario request budget: enough samples that p999 is a real
	// percentile, not the max of a handful.
	total := 4096
	if quick {
		total = 512
	}
	for _, conc := range []int{1, 8, 32, 64} {
		perClient := total / conc
		if perClient < 8 {
			perClient = 8
		}
		nReq := perClient * conc
		lats := make([]float64, nReq) // milliseconds, one slot per request
		var wg sync.WaitGroup
		errCh := make(chan error, conc)
		start := time.Now()
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				client := ts.Client()
				for i := 0; i < perClient; i++ {
					r0 := time.Now()
					resp, err := client.Post(url, "application/json", bytes.NewReader(body))
					if err != nil {
						errCh <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errCh <- fmt.Errorf("predict status %d", resp.StatusCode)
						resp.Body.Close()
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					lats[c*perClient+i] = float64(time.Since(r0)) / float64(time.Millisecond)
				}
			}(c)
		}
		wg.Wait()
		close(errCh)
		if err := <-errCh; err != nil {
			return nil, err
		}
		secs := time.Since(start).Seconds()
		sort.Float64s(lats)
		out.Results = append(out.Results, LatencyResult{
			Concurrency: conc,
			Requests:    nReq,
			PerRequest:  perReq,
			P50Millis:   percentile(lats, 0.50),
			P99Millis:   percentile(lats, 0.99),
			P999Millis:  percentile(lats, 0.999),
			Seconds:     secs,
			PerSec:      float64(nReq*perReq) / secs,
		})
	}

	// Fold in how often the SLO policy drove a flush across the whole run.
	var st serve.Stats
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	out.SLOFlushes = st.SLOFlushes
	return out, nil
}

// percentile reads the q-quantile from an ascending-sorted sample by the
// nearest-rank method.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteLatencyBaseline serializes the latency baseline as indented JSON.
func WriteLatencyBaseline(b *LatencyBaseline, path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadLatencyBaseline reads a stored latency baseline (BENCH_6.json) back
// in.
func LoadLatencyBaseline(path string) (*LatencyBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b LatencyBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parse latency baseline %s: %w", path, err)
	}
	return &b, nil
}

// LatencyComparable reports whether two latency baselines were measured on
// comparable machines: wall-clock latencies from different scheduler widths
// gate nothing.
func LatencyComparable(cur, base *LatencyBaseline) bool {
	return cur.GoMaxProcs == base.GoMaxProcs
}

// CompareLatency checks current tail latency against a stored baseline and
// returns one description per regression: a concurrency scenario whose p99
// exceeds (1+maxRegress) of the baseline p99. p50 and p999 are recorded but
// never gate (the median moves with batch luck, the extreme tail with
// scheduler noise); scenarios present in only one set are skipped, as are
// baseline tails too small for the timer to resolve.
func CompareLatency(cur, base *LatencyBaseline, maxRegress float64) []string {
	if regs := precisionMismatch("latency", cur.Precision, base.Precision); regs != nil {
		return regs
	}
	const minGateMillis = 0.05 // ~timer+scheduler noise floor on CI runners
	baseP99 := map[int]float64{}
	for _, r := range base.Results {
		if r.P99Millis > 0 {
			baseP99[r.Concurrency] = r.P99Millis
		}
	}
	var regressions []string
	for _, r := range cur.Results {
		want, ok := baseP99[r.Concurrency]
		if !ok || r.P99Millis <= 0 || want < minGateMillis {
			continue
		}
		ceil := want * (1 + maxRegress)
		if r.P99Millis > ceil {
			regressions = append(regressions,
				fmt.Sprintf("conc=%d: p99 %.3fms vs baseline %.3fms (ceiling %.3fms, +%.0f%%)",
					r.Concurrency, r.P99Millis, want, ceil, 100*(r.P99Millis/want-1)))
		}
	}
	return regressions
}

// PrintLatency renders the serving latency table.
func PrintLatency(b *LatencyBaseline, w *os.File) {
	fmt.Fprintf(w, "  serving latency under closed-loop load (latent dim %d, nv=%d, slo %.0fms, %d replicas, GOMAXPROCS=%d, %d CPUs)\n",
		b.LatentDim, b.Nv, b.SLOMillis, b.Replicas, b.GoMaxProcs, b.NumCPU)
	fmt.Fprintf(w, "  %6s %9s %10s %10s %10s %14s\n", "conc", "requests", "p50 ms", "p99 ms", "p999 ms", "pred/s")
	for _, r := range b.Results {
		fmt.Fprintf(w, "  %6d %9d %10.3f %10.3f %10.3f %14.0f\n",
			r.Concurrency, r.Requests, r.P50Millis, r.P99Millis, r.P999Millis, r.PerSec)
	}
	fmt.Fprintf(w, "  slo-driven flushes across the run: %d\n", b.SLOFlushes)
}
