package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// HybridResult is one measured point of the two-level scheduling
// experiment: a (ranks × partitions-per-rank) topology's virtual time for
// one full distributed solver cycle (PPOBTAF + PPOBTAS + PPOBTASI).
type HybridResult struct {
	Ranks             int     `json:"ranks"`
	PartitionsPerRank int     `json:"partitions_per_rank"`
	Width             int     `json:"width"` // total partitions = ranks × per-rank
	Seconds           float64 `json:"seconds"`
	PerSec            float64 `json:"per_sec"`
	// Speedup is relative to the 1×1 topology.
	Speedup float64 `json:"speedup,omitempty"`
}

// HybridBaseline is the serialized two-level scheduling baseline
// (BENCH_4.json): virtual cycle times of the hybrid (ranks × partitions)
// distributed BTA solver across topologies of equal and growing total
// width. Virtual times derive from measured kernel wall clocks, so — like
// the pintime baseline — runs are only gate-comparable at matching
// GOMAXPROCS.
type HybridBaseline struct {
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	Nt         int `json:"nt"`
	BlockSize  int `json:"block_size"`
	ArrowSize  int `json:"arrow_size"`
	// Precision records the factorization precision policy the run measured
	// ("fp64" here — this suite exercises the pure-fp64 path); RefineIters
	// the refinement iterations its solves spent. Gates refuse comparisons
	// across modes.
	Precision   string         `json:"precision"`
	RefineIters int            `json:"refine_iters"`
	Results     []HybridResult `json:"results"`
}

// hybridConfigs is the (ranks, partitions-per-rank) sweep: flat rank-only
// rows, node-only rows, and the mixed two-level topologies the paper's
// GPU-node layout corresponds to.
var hybridConfigs = []struct{ ranks, perRank int }{
	{1, 1}, {2, 1}, {1, 2}, {4, 1}, {2, 2}, {1, 4}, {4, 2}, {2, 4},
}

// Hybrid measures the two-level distributed BTA solver on a bivariate
// spatio-temporal precision matrix: for each (ranks × partitions-per-rank)
// topology, the virtual makespan of a factorize + solve + selected-invert
// cycle on the simulated machine, with each rank running its owned
// partitions as a concurrent node-local gang over the shared partition
// cores. quick trims repetitions, not the topology grid.
func Hybrid(quick bool) (*HybridBaseline, error) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 2, Nt: 32, Nr: 1,
		MeshNx: 5, MeshNy: 4,
		ObsPerStep: 30,
		Seed:       29,
	})
	if err != nil {
		return nil, err
	}
	m := ds.Model
	th, err := m.DecodeTheta(ds.Theta0)
	if err != nil {
		return nil, err
	}
	qc, err := m.Qc(th)
	if err != nil {
		return nil, err
	}
	rhs := make([]float64, qc.Dim())
	for i := range rhs {
		rhs[i] = float64(i%5) - 2
	}
	out := &HybridBaseline{
		Precision:  "fp64",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Nt:         qc.N, BlockSize: qc.B, ArrowSize: qc.A,
	}
	reps := 5
	if quick {
		reps = 2
	}
	var base float64
	for _, cfg := range hybridConfigs {
		secs, err := hybridCycleSeconds(qc, rhs, cfg.ranks, cfg.perRank, reps)
		if err != nil {
			return nil, fmt.Errorf("bench: hybrid %d×%d: %w", cfg.ranks, cfg.perRank, err)
		}
		r := HybridResult{
			Ranks: cfg.ranks, PartitionsPerRank: cfg.perRank,
			Width: cfg.ranks * cfg.perRank, Seconds: secs, PerSec: 1 / secs,
		}
		if cfg.ranks == 1 && cfg.perRank == 1 {
			base = secs
		} else if base > 0 {
			r.Speedup = base / secs
		}
		out.Results = append(out.Results, r)
	}
	return out, nil
}

// hybridCycleSeconds runs reps scratch-backed factor/solve/selinv cycles
// over the given topology and returns the virtual seconds per cycle.
func hybridCycleSeconds(g *bta.Matrix, rhs []float64, ranks, perRank, reps int) (float64, error) {
	parts, err := bta.PartitionBlocks(g.N, ranks*perRank, 1)
	if err != nil {
		return 0, err
	}
	var mu sync.Mutex
	var runErr error
	fail := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
	}
	st := comm.Run(ranks, comm.DefaultMachine(), func(c *comm.Comm) {
		local := bta.NewLocalBTANode(parts, c.Rank(), perRank, g.N, g.B, g.A)
		scr := &bta.DistScratch{}
		var prev *bta.DistFactor
		span := local.Part
		rhsLocal := make([]float64, span.Size()*g.B)
		var rhsTip []float64
		if g.A > 0 {
			rhsTip = rhs[g.N*g.B:]
		}
		for rep := 0; rep < reps; rep++ {
			local.FillFrom(g)
			scr.Reclaim(prev)
			prev = nil
			f, err := bta.PPOBTAFScratch(c, local, scr)
			if err != nil {
				fail(err)
				return
			}
			prev = f
			copy(rhsLocal, rhs[span.Lo*g.B:(span.Hi+1)*g.B])
			if _, _, err := bta.PPOBTAS(c, f, rhsLocal, rhsTip); err != nil {
				fail(err)
				return
			}
			if _, err := bta.PPOBTASI(c, f); err != nil {
				fail(err)
				return
			}
		}
	})
	if runErr != nil {
		return 0, runErr
	}
	return st.Makespan() / float64(reps), nil
}

// WriteHybridBaseline serializes the two-level scheduling baseline.
func WriteHybridBaseline(b *HybridBaseline, path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadHybridBaseline reads a stored two-level baseline back in.
func LoadHybridBaseline(path string) (*HybridBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b HybridBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parse hybrid baseline %s: %w", path, err)
	}
	return &b, nil
}

// HybridComparable reports whether two hybrid runs can be gated against
// each other: virtual times derive from measured kernel wall clocks whose
// node-gang concurrency scales with the scheduler width, so a GOMAXPROCS
// mismatch would flag the host rather than a code regression.
func HybridComparable(cur, base *HybridBaseline) bool {
	return cur.GoMaxProcs == base.GoMaxProcs
}

// CompareHybrid checks the current measurements against a stored baseline
// and returns one description per regression: a topology whose cycle rate
// fell below (1−maxRegress) of the baseline. Incomparable runs yield no
// regressions; points too short to time reliably are skipped.
func CompareHybrid(cur, base *HybridBaseline, maxRegress float64) []string {
	if !HybridComparable(cur, base) {
		return nil
	}
	if regs := precisionMismatch("hybrid", cur.Precision, base.Precision); regs != nil {
		return regs
	}
	key := func(r HybridResult) string {
		return fmt.Sprintf("%dx%d", r.Ranks, r.PartitionsPerRank)
	}
	baseRate := map[string]float64{}
	for _, r := range base.Results {
		if r.PerSec > 0 && r.Seconds >= minCompareSeconds {
			baseRate[key(r)] = r.PerSec
		}
	}
	var regressions []string
	for _, r := range cur.Results {
		if r.PerSec <= 0 || r.Seconds < minCompareSeconds {
			continue
		}
		want, ok := baseRate[key(r)]
		if !ok {
			continue
		}
		floor := want * (1 - maxRegress)
		if r.PerSec < floor {
			regressions = append(regressions,
				fmt.Sprintf("hybrid %s: %.2f cycles/s vs baseline %.2f (floor %.2f, −%.0f%%)",
					key(r), r.PerSec, want, floor, 100*(1-r.PerSec/want)))
		}
	}
	return regressions
}

// PrintHybrid renders the two-level scheduling table.
func PrintHybrid(b *HybridBaseline, w *os.File) {
	fmt.Fprintf(w, "  hybrid two-level distributed BTA solver (nt=%d, b=%d, a=%d, GOMAXPROCS=%d, %d hardware CPUs)\n",
		b.Nt, b.BlockSize, b.ArrowSize, b.GoMaxProcs, b.NumCPU)
	fmt.Fprintf(w, "  virtual seconds per factor+solve+selinv cycle; speedup vs the 1×1 topology\n")
	if b.NumCPU < 2 {
		fmt.Fprintf(w, "  note: single hardware CPU — node-gang rows measure scheduling overhead, not speedup\n")
	}
	fmt.Fprintf(w, "  %6s %11s %6s %12s %10s %8s\n", "ranks", "parts/rank", "width", "cycle", "cycles/s", "speedup")
	for _, r := range b.Results {
		sp := "-"
		if r.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", r.Speedup)
		}
		fmt.Fprintf(w, "  %6d %11d %6d %12s %10.1f %8s\n",
			r.Ranks, r.PartitionsPerRank, r.Width, fmtDuration(r.Seconds), r.PerSec, sp)
	}
}
