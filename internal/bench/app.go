package bench

import (
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/inla"
	"github.com/dalia-hpc/dalia/internal/mesh"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// AppReport carries the §VI air-pollution reproduction outputs.
type AppReport struct {
	Fig *Figure
	// ElevationEffect[k] is the posterior (mean, q025, q975) of the
	// elevation fixed effect of pollutant k.
	ElevationEffect [][3]float64
	// Correlations is the fitted inter-pollutant correlation matrix.
	Correlations [][]float64
	// DownscaleRMSE compares fine-grid prediction error of the fitted model
	// vs the coarse-aggregate baseline.
	DownscaleRMSE, CoarseRMSE float64
}

// App reproduces the §VI application study on the synthetic CAMS-like
// dataset (AP1-scaled): fit the trivariate LMC model, report the elevation
// fixed-effect posteriors and inter-pollutant correlations, and perform the
// spatial downscaling comparison.
func App(quick bool) (*AppReport, error) {
	spec := synth.AP1()
	ds, err := synth.Generate(spec.Gen)
	if err != nil {
		return nil, err
	}
	truth := ds.Model.EncodeTheta(ds.TrueTheta)
	prior := inla.WeakPrior(truth, 3)
	opts := inla.DefaultFitOptions()
	opts.Opt.MaxIter = 8
	opts.SkipHyperUncertainty = true
	if quick {
		opts.Opt.MaxIter = 3
	}
	res, err := inla.Fit(ds.Model, prior, ds.Theta0, opts)
	if err != nil {
		return nil, err
	}

	rep := &AppReport{Fig: NewFigure("App", "§VI air-pollution application (AP1-scaled, synthetic CAMS-like data)", "", "")}
	rep.Fig.Note("paper: elevation effects −0.45 (PM2.5), −0.55 (PM10), +1.27 (O₃) µg/m³ per km; correlations +0.97 PM2.5↔PM10, −0.61/−0.63 vs O₃")
	names := []string{"PM2.5", "PM10", "O3"}

	// Fixed-effect posteriors (index 1 = elevation).
	fes := inla.FixedEffects(ds.Model, res)
	for _, fe := range fes {
		if fe.Index != 1 {
			continue
		}
		rep.ElevationEffect = append(rep.ElevationEffect, [3]float64{fe.Mean, fe.Q025, fe.Q975})
		truthBeta := []float64{-0.45, -0.55, 1.27}[fe.Process]
		rep.Fig.Note("elevation effect %-6s: %+.3f [%+.3f, %+.3f]  (generating truth %+.2f)",
			names[fe.Process], fe.Mean, fe.Q025, fe.Q975, truthBeta)
	}

	// Inter-pollutant correlations at the fitted mode.
	dec, err := ds.Model.DecodeTheta(res.Theta)
	if err != nil {
		return nil, err
	}
	corr := dec.Lambda.ImpliedCorrelation()
	trueCorr := ds.TrueTheta.Lambda.ImpliedCorrelation()
	for i := 0; i < 3; i++ {
		row := make([]float64, 3)
		for j := 0; j < 3; j++ {
			row[j] = corr.At(i, j)
		}
		rep.Correlations = append(rep.Correlations, row)
	}
	rep.Fig.Note("fitted correlations: PM2.5↔PM10 %+.2f (truth %+.2f), PM2.5↔O3 %+.2f (truth %+.2f), PM10↔O3 %+.2f (truth %+.2f)",
		corr.At(1, 0), trueCorr.At(1, 0), corr.At(2, 0), trueCorr.At(2, 0), corr.At(2, 1), trueCorr.At(2, 1))

	// Downscaling: predict on a fine grid and compare to the true latent
	// surface vs a coarse-aggregate baseline (the paper's 0.1°→0.02°, our
	// 5× refinement).
	if err := downscale(ds, res, rep); err != nil {
		return nil, err
	}
	rep.Fig.Note("downscaling RMSE (O3): fitted fine-grid %.3f vs coarse-aggregate %.3f (lower is better)",
		rep.DownscaleRMSE, rep.CoarseRMSE)
	return rep, nil
}

// downscale evaluates fine-grid predictions for the last day and compares
// them against the noiseless truth, alongside the coarse-cell aggregate
// baseline (what the raw satellite product provides).
func downscale(ds *synth.Dataset, res *inla.Result, rep *AppReport) error {
	spec := synth.AP1()
	w, h := spec.Gen.Width, spec.Gen.Height
	const fineN = 24 // fine-grid resolution per axis (5× the coarse 5×5)
	const coarseN = 5
	day := spec.Gen.Nt - 1

	var finePts []mesh.Point
	var fineT []int
	for i := 0; i < fineN; i++ {
		for j := 0; j < fineN; j++ {
			finePts = append(finePts, mesh.Point{
				X: (float64(i) + 0.5) * w / fineN,
				Y: (float64(j) + 0.5) * h / fineN,
			})
			fineT = append(fineT, day)
		}
	}
	cov := covariatesFor(finePts, w, h)

	// Truth at the fine grid: noiseless response from the generating state.
	truthPred, err := ds.Model.PredictMean(ds.TrueTheta, ds.TrueX, finePts, fineT, cov)
	if err != nil {
		return err
	}
	// Fitted model prediction at the fine grid.
	theta, err := ds.Model.DecodeTheta(res.Theta)
	if err != nil {
		return err
	}
	fitPred, err := ds.Model.PredictMean(theta, res.Mu, finePts, fineT, cov)
	if err != nil {
		return err
	}
	// Coarse baseline: average the truth within each coarse cell and assign
	// the block value to every fine point inside it.
	const k = 2 // O₃
	coarseVal := make([]float64, coarseN*coarseN)
	coarseCnt := make([]int, coarseN*coarseN)
	cellOf := func(p mesh.Point) int {
		ci := int(p.X / w * coarseN)
		cj := int(p.Y / h * coarseN)
		if ci >= coarseN {
			ci = coarseN - 1
		}
		if cj >= coarseN {
			cj = coarseN - 1
		}
		return cj*coarseN + ci
	}
	for i, p := range finePts {
		c := cellOf(p)
		coarseVal[c] += truthPred[k][i]
		coarseCnt[c]++
	}
	for c := range coarseVal {
		if coarseCnt[c] > 0 {
			coarseVal[c] /= float64(coarseCnt[c])
		}
	}
	var ssFit, ssCoarse float64
	for i, p := range finePts {
		dFit := fitPred[k][i] - truthPred[k][i]
		dCoarse := coarseVal[cellOf(p)] - truthPred[k][i]
		ssFit += dFit * dFit
		ssCoarse += dCoarse * dCoarse
	}
	n := float64(len(finePts))
	rep.DownscaleRMSE = math.Sqrt(ssFit / n)
	rep.CoarseRMSE = math.Sqrt(ssCoarse / n)
	return nil
}

// covariatesFor builds the [intercept, elevation] covariate matrix for
// prediction points.
func covariatesFor(pts []mesh.Point, w, h float64) *dense.Matrix {
	m := dense.New(len(pts), 2)
	for i, p := range pts {
		m.Set(i, 0, 1)
		m.Set(i, 1, synth.Elevation(p, w, h))
	}
	return m
}

// PrintApp renders the application report.
func PrintApp(rep *AppReport, w interface{ Write(p []byte) (int, error) }) {
	rep.Fig.Fprint(w)
	fmt.Fprintf(w, "  elevation effects (mean [q025, q975]):\n")
	names := []string{"PM2.5", "PM10", "O3"}
	for i, e := range rep.ElevationEffect {
		fmt.Fprintf(w, "    %-6s %+.3f [%+.3f, %+.3f]\n", names[i], e[0], e[1], e[2])
	}
}
