package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestFigureRendering(t *testing.T) {
	fig := NewFigure("T", "title", "x", "y")
	a := fig.AddSeries("alpha")
	a.Add(1, 10)
	a.Add(2, 20)
	b := fig.AddSeries("beta")
	b.Add(2, 200)
	fig.Note("hello %d", 7)
	var buf bytes.Buffer
	fig.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"T", "title", "alpha", "beta", "hello 7", "200", "10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
	// Missing cells render as '-'.
	if !strings.Contains(out, "-") {
		t.Fatal("missing-cell marker absent")
	}
}

func TestTable1And4(t *testing.T) {
	if len(Table1().Notes) < 3 {
		t.Fatal("Table1 must describe three frameworks")
	}
	t4 := Table4()
	var buf bytes.Buffer
	t4.Fprint(&buf)
	for _, id := range []string{"MB1", "MB2", "WA1", "WA2", "SA1", "AP1"} {
		if !strings.Contains(buf.String(), id) {
			t.Fatalf("Table4 missing dataset %s", id)
		}
	}
}

func TestFig5QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("driver test skipped in -short mode")
	}
	fig, err := Fig5(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 { // 3 phases × 2 lb values
		t.Fatalf("Fig5 series = %d, want 6", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) == 0 {
			t.Fatalf("series %q empty", s.Name)
		}
		// Efficiency at P=1 must be 100% for the lb=1.0 series.
		if strings.HasSuffix(s.Name, "lb=1.0") && (s.Y[0] < 99 || s.Y[0] > 101) {
			t.Fatalf("series %q: efficiency at P=1 is %v, want 100", s.Name, s.Y[0])
		}
	}
}

func TestAblationLBQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("driver test skipped in -short mode")
	}
	fig, err := AblationLB(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		for _, v := range s.Y {
			if v <= 0 {
				t.Fatalf("series %q has non-positive time %v", s.Name, v)
			}
		}
	}
}

func TestAblationMappingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("driver test skipped in -short mode")
	}
	fig, err := AblationMapping(true)
	if err != nil {
		t.Fatal(err)
	}
	cached := fig.Series[0]
	naive := fig.Series[1]
	last := len(cached.Y) - 1
	if naive.Y[last] <= cached.Y[last] {
		t.Fatalf("naive densification (%v s) should be slower than the cached mapping (%v s)",
			naive.Y[last], cached.Y[last])
	}
}

// TestHybridQuick runs the two-level scheduling experiment in quick mode
// and checks the baseline invariants: every topology of the sweep yields a
// finite rate, the 1×1 row anchors the speedups, and the self-comparison
// gate is clean while a GOMAXPROCS mismatch disarms it.
func TestHybridQuick(t *testing.T) {
	base, err := Hybrid(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Results) != len(hybridConfigs) {
		t.Fatalf("%d results, want %d", len(base.Results), len(hybridConfigs))
	}
	for _, r := range base.Results {
		if r.Seconds <= 0 || r.PerSec <= 0 {
			t.Fatalf("non-positive measurement: %+v", r)
		}
		if r.Width != r.Ranks*r.PartitionsPerRank {
			t.Fatalf("width %d != %d×%d", r.Width, r.Ranks, r.PartitionsPerRank)
		}
	}
	if base.Results[0].Ranks != 1 || base.Results[0].PartitionsPerRank != 1 || base.Results[0].Speedup != 0 {
		t.Fatalf("first row must be the 1×1 anchor: %+v", base.Results[0])
	}
	if regs := CompareHybrid(base, base, 0.25); len(regs) != 0 {
		t.Fatalf("self-comparison regressions: %v", regs)
	}
	other := *base
	other.GoMaxProcs++
	if HybridComparable(base, &other) {
		t.Fatal("GOMAXPROCS mismatch must be incomparable")
	}
	if regs := CompareHybrid(base, &other, 0.25); regs != nil {
		t.Fatalf("incomparable runs must yield no regressions, got %v", regs)
	}
}
