package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestFigureRendering(t *testing.T) {
	fig := NewFigure("T", "title", "x", "y")
	a := fig.AddSeries("alpha")
	a.Add(1, 10)
	a.Add(2, 20)
	b := fig.AddSeries("beta")
	b.Add(2, 200)
	fig.Note("hello %d", 7)
	var buf bytes.Buffer
	fig.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"T", "title", "alpha", "beta", "hello 7", "200", "10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
	// Missing cells render as '-'.
	if !strings.Contains(out, "-") {
		t.Fatal("missing-cell marker absent")
	}
}

func TestTable1And4(t *testing.T) {
	if len(Table1().Notes) < 3 {
		t.Fatal("Table1 must describe three frameworks")
	}
	t4 := Table4()
	var buf bytes.Buffer
	t4.Fprint(&buf)
	for _, id := range []string{"MB1", "MB2", "WA1", "WA2", "SA1", "AP1"} {
		if !strings.Contains(buf.String(), id) {
			t.Fatalf("Table4 missing dataset %s", id)
		}
	}
}

func TestFig5QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("driver test skipped in -short mode")
	}
	fig, err := Fig5(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 { // 3 phases × 2 lb values
		t.Fatalf("Fig5 series = %d, want 6", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) == 0 {
			t.Fatalf("series %q empty", s.Name)
		}
		// Efficiency at P=1 must be 100% for the lb=1.0 series.
		if strings.HasSuffix(s.Name, "lb=1.0") && (s.Y[0] < 99 || s.Y[0] > 101) {
			t.Fatalf("series %q: efficiency at P=1 is %v, want 100", s.Name, s.Y[0])
		}
	}
}

func TestAblationLBQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("driver test skipped in -short mode")
	}
	fig, err := AblationLB(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		for _, v := range s.Y {
			if v <= 0 {
				t.Fatalf("series %q has non-positive time %v", s.Name, v)
			}
		}
	}
}

func TestAblationMappingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("driver test skipped in -short mode")
	}
	fig, err := AblationMapping(true)
	if err != nil {
		t.Fatal(err)
	}
	cached := fig.Series[0]
	naive := fig.Series[1]
	last := len(cached.Y) - 1
	if naive.Y[last] <= cached.Y[last] {
		t.Fatalf("naive densification (%v s) should be slower than the cached mapping (%v s)",
			naive.Y[last], cached.Y[last])
	}
}

// TestHybridQuick runs the two-level scheduling experiment in quick mode
// and checks the baseline invariants: every topology of the sweep yields a
// finite rate, the 1×1 row anchors the speedups, and the self-comparison
// gate is clean while a GOMAXPROCS mismatch disarms it.
func TestHybridQuick(t *testing.T) {
	base, err := Hybrid(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Results) != len(hybridConfigs) {
		t.Fatalf("%d results, want %d", len(base.Results), len(hybridConfigs))
	}
	for _, r := range base.Results {
		if r.Seconds <= 0 || r.PerSec <= 0 {
			t.Fatalf("non-positive measurement: %+v", r)
		}
		if r.Width != r.Ranks*r.PartitionsPerRank {
			t.Fatalf("width %d != %d×%d", r.Width, r.Ranks, r.PartitionsPerRank)
		}
	}
	if base.Results[0].Ranks != 1 || base.Results[0].PartitionsPerRank != 1 || base.Results[0].Speedup != 0 {
		t.Fatalf("first row must be the 1×1 anchor: %+v", base.Results[0])
	}
	if regs := CompareHybrid(base, base, 0.25); len(regs) != 0 {
		t.Fatalf("self-comparison regressions: %v", regs)
	}
	other := *base
	other.GoMaxProcs++
	if HybridComparable(base, &other) {
		t.Fatal("GOMAXPROCS mismatch must be incomparable")
	}
	if regs := CompareHybrid(base, &other, 0.25); regs != nil {
		t.Fatalf("incomparable runs must yield no regressions, got %v", regs)
	}
}

// TestPrecisionQuick runs the mixed-precision experiment in quick mode and
// checks the baseline invariants: every reduced-precision row carries a
// speedup against its fp64 partner, the mixed BTA row records its
// refinement iterations, the self-comparison gate is clean, and a
// precision-mode mismatch between the two files is itself a gate failure.
func TestPrecisionQuick(t *testing.T) {
	base := Precision(true)
	if base.Precision != "mixed" {
		t.Fatalf("baseline precision = %q, want mixed", base.Precision)
	}
	if base.Workers != 1 {
		t.Fatalf("workers = %d, want 1 (single-threaded convention)", base.Workers)
	}
	pairs := 0
	for _, r := range base.Results {
		if r.Seconds <= 0 {
			t.Fatalf("non-positive measurement: %+v", r)
		}
		switch r.Precision {
		case "fp64":
			if r.Speedup != 0 {
				t.Fatalf("fp64 row carries a speedup: %+v", r)
			}
		case "fp32", "mixed":
			if r.Speedup <= 0 {
				t.Fatalf("reduced-precision row without speedup: %+v", r)
			}
			pairs++
			if r.Precision == "mixed" && r.RefineIters != base.RefineIters {
				t.Fatalf("mixed row refine iters %d != baseline %d", r.RefineIters, base.RefineIters)
			}
		default:
			t.Fatalf("unknown precision %q", r.Precision)
		}
	}
	if pairs != 4 {
		t.Fatalf("%d reduced-precision rows, want 4 (gemm×2, potrf, bta cycle)", pairs)
	}
	if regs := ComparePrecision(base, base, 0.25); len(regs) != 0 {
		t.Fatalf("self-comparison regressions: %v", regs)
	}
	other := *base
	other.Precision = "fp64"
	regs := ComparePrecision(base, &other, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "not comparable") {
		t.Fatalf("cross-mode comparison must fail the gate, got %v", regs)
	}
}

// TestGatesRefuseCrossMode: every experiment's regression gate refuses a
// baseline recorded under a different precision policy, and treats the ""
// of pre-precision baseline files as fp64.
func TestGatesRefuseCrossMode(t *testing.T) {
	if got := normPrec(""); got != "fp64" {
		t.Fatalf("normPrec(\"\") = %q, want fp64 (legacy files)", got)
	}
	if regs := precisionMismatch("x", "", "fp64"); regs != nil {
		t.Fatalf("legacy \"\" vs fp64 must compare, got %v", regs)
	}
	if regs := precisionMismatch("x", "mixed", "fp64"); len(regs) != 1 {
		t.Fatalf("mixed vs fp64 must refuse, got %v", regs)
	}
	k := &KernelBaseline{Precision: "mixed"}
	if regs := CompareKernels(k, &KernelBaseline{Precision: "fp64"}, 0.25); len(regs) != 1 {
		t.Fatalf("kernels gate must refuse cross-mode, got %v", regs)
	}
	s := &ServingBaseline{Precision: "mixed"}
	if regs := CompareServing(s, &ServingBaseline{}, 0.25); len(regs) != 1 {
		t.Fatalf("serving gate must refuse cross-mode, got %v", regs)
	}
	p := &PintimeBaseline{Precision: "mixed"}
	if regs := ComparePintime(p, &PintimeBaseline{}, 0.25); len(regs) != 1 {
		t.Fatalf("pintime gate must refuse cross-mode, got %v", regs)
	}
	h := &HybridBaseline{Precision: "mixed"}
	if regs := CompareHybrid(h, &HybridBaseline{}, 0.25); len(regs) != 1 {
		t.Fatalf("hybrid gate must refuse cross-mode, got %v", regs)
	}
	rd := &ReducedBaseline{Precision: "mixed"}
	if regs := CompareReduced(rd, &ReducedBaseline{}, 0.25); len(regs) != 1 {
		t.Fatalf("reduced gate must refuse cross-mode, got %v", regs)
	}
	l := &LatencyBaseline{Precision: "mixed"}
	if regs := CompareLatency(l, &LatencyBaseline{}, 0.25); len(regs) != 1 {
		t.Fatalf("latency gate must refuse cross-mode, got %v", regs)
	}
	rc := &RecoveryBaseline{Precision: "mixed"}
	if regs := CompareRecovery(rc, &RecoveryBaseline{}, 0.25); len(regs) != 1 {
		t.Fatalf("recovery gate must refuse cross-mode, got %v", regs)
	}
}
