package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/inla"
	"github.com/dalia-hpc/dalia/internal/sparse"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// AblationMapping (X1) compares the cached O(nnz) sparse→block-dense
// mapping of §IV-F against the naive O(n·b²) densification across growing
// time horizons.
func AblationMapping(quick bool) (*Figure, error) {
	nts := []int{4, 8, 16, 32}
	if quick {
		nts = nts[:2]
	}
	fig := NewFigure("X1", "Sparse→dense mapping: cached O(nnz) vs naive O(n·b²)", "time steps", "seconds")
	cached := fig.AddSeries("cached mapping")
	naive := fig.AddSeries("naive densification")
	for _, nt := range nts {
		gen := synth.MB1().Gen
		gen.Nt = nt
		ds, err := synth.Generate(gen)
		if err != nil {
			return nil, err
		}
		t, err := ds.Model.DecodeTheta(ds.Theta0)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := ds.Model.Qc(t); err != nil {
			return nil, err
		}
		tc := time.Since(t0).Seconds()
		t1 := time.Now()
		if _, err := ds.Model.QcDensifyNaive(t); err != nil {
			return nil, err
		}
		tn := time.Since(t1).Seconds()
		cached.Add(float64(nt), tc)
		naive.Add(float64(nt), tn)
	}
	last := len(cached.Y) - 1
	fig.Note("naive/cached ratio at the largest size: %.1f×", naive.Y[last]/cached.Y[last])
	return fig, nil
}

// AblationBTAvsSparse (X3) compares the structured BTA solver against the
// general sparse Cholesky (PARDISO stand-in) on the same Q_c: factorization
// + selected inversion, sweeping the spatial mesh size.
func AblationBTAvsSparse(quick bool) (*Figure, error) {
	type lvl struct{ nx, ny int }
	levels := []lvl{{4, 3}, {6, 5}, {9, 8}, {13, 10}}
	if quick {
		levels = levels[:2]
	}
	fig := NewFigure("X3", "Structured BTA solver vs general sparse Cholesky (factor + selected inversion)", "spatial nodes", "seconds")
	sBTA := fig.AddSeries("BTA (DALIA)")
	sSparse := fig.AddSeries("general sparse (R-INLA-like)")
	for _, lv := range levels {
		gen := synth.MB1().Gen
		gen.MeshNx, gen.MeshNy = lv.nx, lv.ny
		gen.Nt = 8
		ds, err := synth.Generate(gen)
		if err != nil {
			return nil, err
		}
		t, err := ds.Model.DecodeTheta(ds.Theta0)
		if err != nil {
			return nil, err
		}
		qcB, err := ds.Model.Qc(t)
		if err != nil {
			return nil, err
		}
		qcS := ds.Model.QcCSR(t)
		ns := float64(ds.Model.Dims.Ns)

		t0 := time.Now()
		f, err := bta.Factorize(qcB)
		if err != nil {
			return nil, err
		}
		if _, err := f.SelectedInversion(); err != nil {
			return nil, err
		}
		sBTA.Add(ns, time.Since(t0).Seconds())

		t1 := time.Now()
		sf, err := sparse.CholFactorize(qcS, nil)
		if err != nil {
			return nil, err
		}
		sf.SelectedInverseDiag()
		sSparse.Add(ns, time.Since(t1).Seconds())
	}
	last := len(sBTA.Y) - 1
	fig.Note("sparse/BTA ratio at the largest size: %.1f× (general sparse pays fill-in and irregular access)", sSparse.Y[last]/sBTA.Y[last])
	return fig, nil
}

// AblationS2 (X4) measures the gain of the concurrent Q_p/Q_c pipelines at
// fixed resources (2 workers per evaluation group) and the load-imbalance
// ratio r_Q = a³/b³ + triangular solve discussed in §IV-D2.
func AblationS2(quick bool) (*Figure, error) {
	spec := synth.MB1()
	gen := spec.Gen
	if quick {
		gen.Nt = 8
	}
	ds, err := synth.Generate(gen)
	if err != nil {
		return nil, err
	}
	prior := inla.WeakPrior(ds.Theta0, 5)
	fig := NewFigure("X4", "S2 pipeline ablation at 18 workers (9 groups × 2)", "S2 enabled (0/1)", "s/iter")
	s := fig.AddSeries("per-iteration time")
	for i, disable := range []bool{true, false} {
		rep, err := inla.RunDistributed(ds.Model, prior, ds.Theta0, inla.DistConfig{
			World: 18, Machine: comm.DefaultMachine(), Iterations: 1,
			DisableS2: disable, DisableS3: true,
		})
		if err != nil {
			return nil, err
		}
		s.Add(float64(i), rep.PerIter)
	}
	fig.Note("S2 speedup at fixed resources: %.2f× (ideal 2× minus the r_Q imbalance and the extra triangular solve)", s.Y[0]/s.Y[1])
	return fig, nil
}

// AblationLB (X5) sweeps the load-balancing factor of the time-domain
// partitioning at a fixed rank count, separating the three solver routines
// (§V-C: factorization/selected inversion improve with lb ≈ 1.6, the
// triangular solve deteriorates).
func AblationLB(quick bool) (*Figure, error) {
	spec := synth.MB2()
	p := 4
	lbs := []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
	if quick {
		lbs = []float64{1.0, 1.6}
	}
	fig := NewFigure("X5", fmt.Sprintf("Load-balance factor sweep at %d ranks (MB2-scaled)", p), "lb", "virtual seconds")
	sFac := fig.AddSeries("factorization")
	sSol := fig.AddSeries("triangular solve")
	sInv := fig.AddSeries("selected inversion")
	g, err := fig5Matrix(spec, p)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(99))
	rhs := make([]float64, g.Dim())
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	for _, lb := range lbs {
		parts, err := bta.PartitionBlocks(g.N, p, lb)
		if err != nil {
			continue
		}
		var tFac, tSol, tInv float64
		comm.Run(p, comm.DefaultMachine(), func(c *comm.Comm) {
			local := bta.LocalSlice(g, parts, c.Rank())
			c.Barrier()
			t0 := c.Clock()
			f, err := bta.PPOBTAF(c, local)
			if err != nil {
				return
			}
			c.Barrier()
			t1 := c.Clock()
			part := parts[c.Rank()]
			rl := append([]float64(nil), rhs[part.Lo*g.B:(part.Hi+1)*g.B]...)
			var rt []float64
			if g.A > 0 {
				rt = rhs[g.N*g.B:]
			}
			if _, _, err := bta.PPOBTAS(c, f, rl, rt); err != nil {
				return
			}
			c.Barrier()
			t2 := c.Clock()
			if _, err := bta.PPOBTASI(c, f); err != nil {
				return
			}
			c.Barrier()
			t3 := c.Clock()
			if c.Rank() == 0 {
				tFac, tSol, tInv = t1-t0, t2-t1, t3-t2
			}
		})
		sFac.Add(lb, tFac)
		sSol.Add(lb, tSol)
		sInv.Add(lb, tInv)
	}
	return fig, nil
}
