package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/dalia-hpc/dalia/internal/mesh"
	"github.com/dalia-hpc/dalia/internal/predict"
	"github.com/dalia-hpc/dalia/internal/serve"
)

// ServingResult is one measured point of the serving benchmark.
type ServingResult struct {
	// Path is "engine" (direct snapshot batches) or "http" (full JSON
	// round trips through the coalescing batcher).
	Path string `json:"path"`
	// Batch is queries per PredictInto call (engine) or per request (http).
	Batch int `json:"batch"`
	// Concurrency is the number of parallel clients (http only).
	Concurrency int     `json:"concurrency,omitempty"`
	Predictions int     `json:"predictions"`
	Seconds     float64 `json:"seconds"`
	PerSec      float64 `json:"predictions_per_sec"`
}

// ServingBaseline is the serialized serving-throughput baseline
// (BENCH_2.json): the prediction-engine and HTTP-service rates the serving
// subsystem establishes, for future PRs to compare against.
type ServingBaseline struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	LatentDim  int     `json:"latent_dim"`
	Nv         int     `json:"nv"`
	FitSeconds float64 `json:"fit_seconds"`
	// Precision records the factorization precision policy the run measured
	// ("fp64" here — this suite exercises the pure-fp64 path); RefineIters
	// the refinement iterations its solves spent. Gates refuse comparisons
	// across modes.
	Precision   string          `json:"precision"`
	RefineIters int             `json:"refine_iters"`
	Results     []ServingResult `json:"results"`
}

// Serving measures posterior-prediction throughput on a trivariate model:
// the raw engine path at several coalescing widths, then full HTTP JSON
// round trips at several client concurrencies. quick trims the query
// counts, not the scenario grid.
func Serving(quick bool) (*ServingBaseline, error) {
	srv := serve.New(serve.Options{})
	t0 := time.Now()
	m, err := srv.FitModel(serve.FitRequest{
		Name: "bench",
		Gen: &serve.GenSpec{
			Nv: 3, Nt: 8, Nr: 2,
			MeshNx: 6, MeshNy: 5,
			ObsPerStep: 20,
			Seed:       42,
		},
		MaxIter: 8,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Register(m); err != nil {
		return nil, err
	}
	fitSecs := time.Since(t0).Seconds()

	pr := m.Snapshot()
	dims := m.Dims()
	out := &ServingBaseline{
		Precision:  "fp64",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		LatentDim:  dims.Total(),
		Nv:         dims.Nv,
		FitSeconds: fitSecs,
	}
	rng := rand.New(rand.NewSource(5))
	mkQuery := func() predict.Query {
		return predict.Query{
			Point:      mesh.Point{X: rng.Float64() * 400, Y: rng.Float64() * 300},
			T:          rng.Intn(dims.Nt),
			Response:   rng.Intn(dims.Nv),
			Covariates: []float64{1, rng.NormFloat64()},
		}
	}

	// Engine path: repeated coalesced batches straight into the predictor.
	total := 4096
	if quick {
		total = 1024
	}
	for _, batch := range []int{1, 16, 64} {
		qs := make([]predict.Query, batch)
		for i := range qs {
			qs[i] = mkQuery()
		}
		means := make([]float64, batch)
		vars := make([]float64, batch)
		iters := total / batch
		if iters < 1 {
			iters = 1
		}
		t := time.Now()
		for it := 0; it < iters; it++ {
			if err := pr.PredictInto(qs, means, vars); err != nil {
				return nil, err
			}
		}
		secs := time.Since(t).Seconds()
		n := iters * batch
		out.Results = append(out.Results, ServingResult{
			Path: "engine", Batch: batch, Predictions: n,
			Seconds: secs, PerSec: float64(n) / secs,
		})
	}

	// HTTP path: JSON round trips through the coalescing batcher.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	httpTotal := 1024
	if quick {
		httpTotal = 256
	}
	const perReq = 8
	for _, conc := range []int{1, 8} {
		reqs := httpTotal / perReq
		body := func() []byte {
			qr := serve.PredictRequest{}
			for i := 0; i < perReq; i++ {
				q := mkQuery()
				qr.Queries = append(qr.Queries, serve.QueryJSON{
					X: q.Point.X, Y: q.Point.Y, T: q.T, Response: q.Response, Covariates: q.Covariates,
				})
			}
			b, _ := json.Marshal(qr)
			return b
		}()
		t := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, conc)
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				client := ts.Client()
				for i := 0; i < reqs/conc; i++ {
					resp, err := client.Post(ts.URL+"/v1/models/bench/predict", "application/json", bytes.NewReader(body))
					if err != nil {
						errCh <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errCh <- fmt.Errorf("predict status %d", resp.StatusCode)
						resp.Body.Close()
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
		}
		wg.Wait()
		close(errCh)
		if err := <-errCh; err != nil {
			return nil, err
		}
		secs := time.Since(t).Seconds()
		n := (reqs / conc) * conc * perReq
		out.Results = append(out.Results, ServingResult{
			Path: "http", Batch: perReq, Concurrency: conc, Predictions: n,
			Seconds: secs, PerSec: float64(n) / secs,
		})
	}
	return out, nil
}

// WriteServingBaseline serializes the serving baseline as indented JSON.
func WriteServingBaseline(b *ServingBaseline, path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintServing renders the serving throughput table.
func PrintServing(b *ServingBaseline, w *os.File) {
	fmt.Fprintf(w, "  serving throughput (latent dim %d, nv=%d, fit %.2fs, GOMAXPROCS=%d)\n",
		b.LatentDim, b.Nv, b.FitSeconds, b.GoMaxProcs)
	fmt.Fprintf(w, "  %-8s %6s %6s %12s %14s\n", "path", "batch", "conc", "predictions", "pred/s")
	for _, r := range b.Results {
		conc := "-"
		if r.Concurrency > 0 {
			conc = fmt.Sprint(r.Concurrency)
		}
		fmt.Fprintf(w, "  %-8s %6d %6s %12d %14.0f\n", r.Path, r.Batch, conc, r.Predictions, r.PerSec)
	}
}
