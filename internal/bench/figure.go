// Package bench contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation section (the per-experiment index
// lives in DESIGN.md). Each driver returns a Figure — named series of
// (x, y) points plus notes — that cmd/dalia-bench prints and bench_test.go
// wraps into testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a reproduced table or figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []*Series
	Notes  []string
}

// NewFigure constructs an empty figure.
func NewFigure(id, title, xlabel, ylabel string) *Figure {
	return &Figure{ID: id, Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries registers and returns a new series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Note appends a free-form annotation.
func (f *Figure) Note(format string, args ...interface{}) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the figure as an aligned text table: one row per distinct
// x value, one column per series.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var sorted []float64
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{}
	for _, x := range sorted {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := "-"
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf("%.4g", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	printAligned(w, header, rows)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.4g", x)
}

// printAligned prints a padded text table.
func printAligned(w io.Writer, header []string, rows [][]string) {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, width[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}
