package bench

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"time"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/dense"
)

// KernelResult is one measured point of the dense-engine microbenchmark
// suite. GFlops is 0 for measurements where a flop rate is not meaningful.
type KernelResult struct {
	Name    string  `json:"name"`
	N       int     `json:"n"`
	Seconds float64 `json:"seconds"`
	GFlops  float64 `json:"gflops,omitempty"`
	Speedup float64 `json:"speedup,omitempty"` // packed over naive, same size
}

// KernelBaseline is the serialized benchmark baseline (BENCH_<pr>.json)
// that lets later PRs compare their perf trajectory against this one.
type KernelBaseline struct {
	// GoMaxProcs is the machine's scheduler width (context for the file);
	// Workers is the dense-kernel parallelism the measurements ran at —
	// always 1, the single-threaded convention of GFLOP/s tables.
	GoMaxProcs int `json:"gomaxprocs"`
	Workers    int `json:"workers"`
	// Precision records the factorization precision policy the run measured
	// ("fp64" here — this suite exercises the pure-fp64 path); RefineIters
	// the refinement iterations its solves spent. Gates refuse comparisons
	// across modes.
	Precision   string         `json:"precision"`
	RefineIters int            `json:"refine_iters"`
	Results     []KernelResult `json:"results"`
}

// timeIt runs fn reps times and returns the best wall time in seconds
// (min-of-reps suppresses scheduler noise the way GFLOP/s tables expect).
func timeIt(reps int, fn func()) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		fn()
		dt := time.Since(t0).Seconds()
		if r == 0 || dt < best {
			best = dt
		}
	}
	return best
}

// Kernels measures the tiled BLAS-3 engine single-threaded: GEMM GFLOP/s
// (packed vs the retained naive kernel) at n ∈ {64, 256, 1024}, blocked
// POTRF, and the BTA Refactorize hot path. quick trims repetitions, not
// sizes — the n=1024 point is the headline speedup number.
func Kernels(quick bool) *KernelBaseline {
	prev := dense.SetMaxWorkers(1)
	defer dense.SetMaxWorkers(prev)
	reps := 3
	if quick {
		reps = 1
	}
	rng := rand.New(rand.NewSource(99))
	out := &KernelBaseline{GoMaxProcs: runtime.GOMAXPROCS(0), Workers: 1, Precision: "fp64"}

	for _, n := range []int{64, 256, 1024} {
		a := dense.New(n, n)
		b := dense.New(n, n)
		c := dense.New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			b.Data[i] = rng.NormFloat64()
		}
		flops := 2 * float64(n) * float64(n) * float64(n)
		tPacked := timeIt(reps, func() { dense.Gemm(dense.NoTrans, dense.NoTrans, 1, a, b, 0, c) })
		tNaive := timeIt(reps, func() { dense.GemmNaive(dense.NoTrans, dense.NoTrans, 1, a, b, 0, c) })
		out.Results = append(out.Results,
			KernelResult{Name: "gemm", N: n, Seconds: tPacked, GFlops: flops / tPacked / 1e9, Speedup: tNaive / tPacked},
			KernelResult{Name: "gemm-naive", N: n, Seconds: tNaive, GFlops: flops / tNaive / 1e9})
	}

	// Blocked Cholesky at n = 1024.
	{
		n := 1024
		g := dense.New(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		spd := dense.New(n, n)
		dense.Syrk(dense.NoTrans, 1, g, 0, spd)
		spd.MirrorLowerToUpper()
		spd.AddDiag(float64(n))
		w := dense.New(n, n)
		t := timeIt(reps, func() {
			w.CopyFrom(spd)
			if err := dense.Potrf(w); err != nil {
				panic(err)
			}
		})
		out.Results = append(out.Results,
			KernelResult{Name: "potrf", N: n, Seconds: t, GFlops: float64(n) * float64(n) * float64(n) / 3 / t / 1e9})
	}

	// BTA Refactorize + solve cycle (the INLA per-θ solver cost).
	{
		nBlocks, bs, as := 16, 128, 8
		m := randSPDBTA(rng, nBlocks, bs, as)
		f := bta.NewFactor(nBlocks, bs, as)
		rhs := make([]float64, m.Dim())
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		t := timeIt(reps, func() {
			if err := f.Refactorize(m); err != nil {
				panic(err)
			}
			f.Solve(rhs)
		})
		out.Results = append(out.Results,
			KernelResult{Name: "pobtaf-refactorize-solve", N: nBlocks * bs, Seconds: t})
	}
	return out
}

// randSPDBTA builds a diagonally dominant (hence SPD) random BTA matrix.
func randSPDBTA(rng *rand.Rand, n, b, a int) *bta.Matrix {
	m := bta.NewMatrix(n, b, a)
	fill := func(d *dense.Matrix) {
		for i := 0; i < d.Rows; i++ {
			row := d.Row(i)
			for j := range row {
				row[j] = rng.NormFloat64() * 0.05
			}
		}
	}
	for i := 0; i < n; i++ {
		fill(m.Diag[i])
		m.Diag[i].Symmetrize()
		m.Diag[i].AddDiag(float64(b))
		if i < n-1 {
			fill(m.Lower[i])
		}
		if a > 0 {
			fill(m.Arrow[i])
		}
	}
	if a > 0 {
		fill(m.Tip)
		m.Tip.Symmetrize()
		m.Tip.AddDiag(float64(b))
	}
	return m
}

// WriteBaseline serializes the kernel baseline as indented JSON.
func WriteBaseline(b *KernelBaseline, path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintKernels renders the baseline as an aligned text table.
func PrintKernels(b *KernelBaseline, w *os.File) {
	fig := NewFigure("kernels", "dense engine microbenchmarks (single-threaded)", "n", "GFLOP/s")
	series := map[string]*Series{}
	for _, r := range b.Results {
		s := series[r.Name]
		if s == nil {
			s = fig.AddSeries(r.Name)
			series[r.Name] = s
		}
		s.Add(float64(r.N), r.GFlops)
	}
	fig.Fprint(w)
}
