package dense

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the number of goroutines a single kernel call may fan
// out to. It defaults to GOMAXPROCS and can be adjusted globally (e.g. the
// communicator simulator pins kernels of one simulated rank to one worker so
// per-rank timings stay meaningful).
var maxWorkers int64 = int64(runtime.GOMAXPROCS(0))

// SetMaxWorkers sets the kernel-level parallelism bound. n < 1 resets to
// GOMAXPROCS. It returns the previous value.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(atomic.SwapInt64(&maxWorkers, int64(n)))
}

// MaxWorkers returns the current kernel-level parallelism bound.
func MaxWorkers() int { return int(atomic.LoadInt64(&maxWorkers)) }

// parallelRows is the work-splitting threshold: kernels operating on fewer
// result rows than this stay serial (goroutine overhead would dominate).
const parallelRows = 128

// parFor runs body(lo,hi) over [0,n) split into contiguous chunks across at
// most MaxWorkers goroutines. It runs serially when the bound is 1 or the
// range is small.
func parFor(n int, body func(lo, hi int)) {
	parForMin(n, parallelRows, body)
}

// parForTiles distributes nTiles macro-tiles across workers. Unlike parFor,
// any multi-tile range fans out: one tile is mcBlock rows of level-3 work,
// far above goroutine overhead.
func parForTiles(nTiles int, body func(t0, t1 int)) {
	parForMin(nTiles, 2, body)
}

// parForMin is the shared splitter: serial below the given grain, otherwise
// contiguous chunks across at most MaxWorkers goroutines.
func parForMin(n, grain int, body func(lo, hi int)) {
	w := MaxWorkers()
	if w <= 1 || n < grain {
		body(0, n)
		return
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
