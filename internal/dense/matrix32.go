package dense

import "fmt"

// Matrix32 is the float32 twin of Matrix: a dense row-major single-precision
// matrix view with element (i,j) at Data[i*Stride+j]. It backs the fp32
// instance of the packed BLAS-3 engine (kernel32.go/pack32.go/blas32.go)
// that the mixed-precision BTA elimination sweeps run on. Only the method
// set those sweeps need is implemented; everything analysis-facing stays on
// the float64 Matrix.
type Matrix32 struct {
	Rows, Cols int
	Stride     int
	Data       []float32
}

// New32 returns a zeroed r×c float32 matrix with compact storage.
func New32(r, c int) *Matrix32 {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: negative dimension %d×%d", r, c))
	}
	return &Matrix32{Rows: r, Cols: c, Stride: c, Data: make([]float32, r*c)}
}

// At returns element (i,j); indices are trusted (hot-path accessor).
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Stride+j] }

// Set stores v at (i,j).
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i*m.Stride+j] = v }

// View returns an r×c view starting at (i,j) sharing storage with m. Like
// Matrix.View it panics with a constant string so it stays within the
// inlining budget — panel views inside the blocked fp32 kernels must live on
// the caller's stack.
func (m *Matrix32) View(i, j, r, c int) *Matrix32 {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic("dense: view out of range")
	}
	return &Matrix32{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[i*m.Stride+j:]}
}

// Row returns row i as a slice view of length Cols.
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// CopyFrom copies src into m. Dimensions must match.
func (m *Matrix32) CopyFrom(src *Matrix32) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("dense: copy %d×%d into %d×%d", src.Rows, src.Cols, m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero sets every element of m to zero.
func (m *Matrix32) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// Scale multiplies every element by alpha.
func (m *Matrix32) Scale(alpha float32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= alpha
		}
	}
}

// TransposeInto writes mᵀ into dst. dst must be Cols×Rows, not aliasing m.
func (m *Matrix32) TransposeInto(dst *Matrix32) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic(fmt.Sprintf("dense: transpose %d×%d into %d×%d", m.Rows, m.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst.Data[j*dst.Stride+i] = v
		}
	}
}

// MirrorLowerToUpper copies the strict lower triangle onto the upper one.
func (m *Matrix32) MirrorLowerToUpper() {
	if m.Rows != m.Cols {
		panic("dense: mirror of non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < i; j++ {
			m.Set(j, i, m.At(i, j))
		}
	}
}

// ZeroUpper clears the strict upper triangle (canonicalizing a lower factor).
func (m *Matrix32) ZeroUpper() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := i + 1; j < m.Cols; j++ {
			row[j] = 0
		}
	}
}

// FromFloat64 rounds src into m (the precision demotion at the top of a
// mixed-precision elimination sweep). Dimensions must match.
func (m *Matrix32) FromFloat64(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("dense: demote %d×%d into %d×%d", src.Rows, src.Cols, m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		dst, s := m.Row(i), src.Row(i)
		for j, v := range s {
			dst[j] = float32(v)
		}
	}
}

// StoreFloat64 widens m into dst (the promotion of fp32 sweep results back
// into the float64 factor storage). Dimensions must match.
func (m *Matrix32) StoreFloat64(dst *Matrix) {
	if m.Rows != dst.Rows || m.Cols != dst.Cols {
		panic(fmt.Sprintf("dense: promote %d×%d into %d×%d", m.Rows, m.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		d, s := dst.Row(i), m.Row(i)
		for j, v := range s {
			d[j] = float64(v)
		}
	}
}
