package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 5)
	a.Set(1, 1, 1)
	a.Set(2, 2, 3)
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v", vals)
		}
	}
	// Eigenvectors are signed unit basis vectors.
	for c := 0; c < 3; c++ {
		var nrm float64
		for r := 0; r < 3; r++ {
			nrm += vecs.At(r, c) * vecs.At(r, c)
		}
		if math.Abs(nrm-1) > 1e-12 {
			t.Fatalf("eigenvector %d not unit", c)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := New(2, 2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	vals, _, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("vals = %v, want [1 3]", vals)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 2, 5, 10, 20} {
		a := randSPD(rng, n)
		vals, vecs, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// V·diag(λ)·Vᵀ must reconstruct A.
		vd := vecs.Clone()
		for c := 0; c < n; c++ {
			for r := 0; r < n; r++ {
				vd.Set(r, c, vd.At(r, c)*vals[c])
			}
		}
		rec := MatMul(NoTrans, Trans, vd, vecs)
		if !rec.Equal(a, 1e-8*float64(n)) {
			t.Fatalf("n=%d: eigendecomposition does not reconstruct A", n)
		}
		// Orthonormality.
		if !MatMul(Trans, NoTrans, vecs, vecs).Equal(Eye(n), 1e-10) {
			t.Fatalf("n=%d: VᵀV != I", n)
		}
		// Ascending order.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("n=%d: eigenvalues not sorted: %v", n, vals)
			}
		}
	}
}

func TestSymEigenNonSquare(t *testing.T) {
	if _, _, err := SymEigen(New(2, 3)); err == nil {
		t.Fatal("non-square must error")
	}
}

func TestQuickEigenTraceAndDet(t *testing.T) {
	// Σλ = trace(A) and Πλ = |A| (via Cholesky logdet) for SPD matrices.
	f := func(seed int64, sz uint8) bool {
		n := int(sz%8) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randSPD(rng, n)
		vals, _, err := SymEigen(a)
		if err != nil {
			return false
		}
		var sum, logProd float64
		for _, l := range vals {
			if l <= 0 {
				return false
			}
			sum += l
			logProd += math.Log(l)
		}
		if math.Abs(sum-a.Trace()) > 1e-8*(1+math.Abs(a.Trace())) {
			return false
		}
		l, err := Chol(a)
		if err != nil {
			return false
		}
		return math.Abs(logProd-LogDetFromChol(l)) < 1e-7*(1+math.Abs(logProd))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
