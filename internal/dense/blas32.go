package dense

import (
	"fmt"
	"math"
)

// Float32 blocked BLAS-3 layer — the single-precision twin of blas.go and
// chol.go, restricted to the operation set the mixed-precision BTA
// elimination sweeps use: Gemm32 (all op combinations), lower Syrk32, the
// four lower-triangular Trsm32 cases, and the blocked Cholesky Potrf32.
// Everything shares the fp64 engine's dispatch thresholds (gemmPackFlops,
// syrkBlock, trsmBlock, potrfBlock): the crossover points are set by loop
// overhead versus packing traffic, which scales with element count, not
// element width.

// opShape32 returns the rows/cols of op(M).
func opShape32(t Transpose, m *Matrix32) (int, int) {
	if t == Trans {
		return m.Cols, m.Rows
	}
	return m.Rows, m.Cols
}

// checkGemm32Shapes panics unless op(A)·op(B) conforms with C.
func checkGemm32Shapes(transA, transB Transpose, a, b, c *Matrix32) {
	am, ak := opShape32(transA, a)
	bk, bn := opShape32(transB, b)
	if ak != bk || c.Rows != am || c.Cols != bn {
		panic(fmt.Sprintf("dense: gemm32 shape mismatch op(A)=%d×%d op(B)=%d×%d C=%d×%d",
			am, ak, bk, bn, c.Rows, c.Cols))
	}
}

// applyBeta32 scales C by beta (beta == 0 clears C so uninitialized output
// garbage never propagates).
func applyBeta32(beta float32, c *Matrix32) {
	if beta == 1 {
		return
	}
	if beta == 0 {
		c.Zero()
		return
	}
	c.Scale(beta)
}

// Gemm32 computes C = alpha*op(A)*op(B) + beta*C in float32. Shapes must
// conform; C must not alias A or B. Large products run on the fp32 packed
// micro-kernel engine (kernel32.go/pack32.go), small ones on naive loops.
func Gemm32(transA, transB Transpose, alpha float32, a, b *Matrix32, beta float32, c *Matrix32) {
	checkGemm32Shapes(transA, transB, a, b, c)
	am, ak := opShape32(transA, a)
	_, bn := opShape32(transB, b)
	applyBeta32(beta, c)
	if alpha == 0 || am == 0 || bn == 0 || ak == 0 {
		return
	}
	if am*bn*ak >= gemmPackFlops {
		gemmPacked32(transA, transB, alpha, a, b, c)
		return
	}
	switch {
	case transA == NoTrans && transB == NoTrans:
		gemmSmall32NN(alpha, a, b, c)
	case transA == NoTrans && transB == Trans:
		gemmSmall32NT(alpha, a, b, c)
	case transA == Trans && transB == NoTrans:
		gemmSmall32TN(alpha, a, b, c)
	default:
		gemmSmall32TT(alpha, a, b, c)
	}
}

// gemmSmall32NN: C += alpha·A·B, i-k-j loop order.
func gemmSmall32NN(alpha float32, a, b, c *Matrix32) {
	for i := 0; i < c.Rows; i++ {
		arow, crow := a.Row(i), c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			s := alpha * av
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += s * bv
			}
		}
	}
}

// gemmSmall32NT: C += alpha·A·Bᵀ; C[i,j] = dot(A row i, B row j).
func gemmSmall32NT(alpha float32, a, b, c *Matrix32) {
	for i := 0; i < c.Rows; i++ {
		arow, crow := a.Row(i), c.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float32
			for k, av := range arow {
				s += av * brow[k]
			}
			crow[j] += alpha * s
		}
	}
}

// gemmSmall32TN: C += alpha·Aᵀ·B, k-outer saxpy form.
func gemmSmall32TN(alpha float32, a, b, c *Matrix32) {
	for k := 0; k < a.Rows; k++ {
		arow, brow := a.Row(k), b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			s := alpha * av
			crow := c.Row(i)
			for j, bv := range brow {
				crow[j] += s * bv
			}
		}
	}
}

// gemmSmall32TT: C += alpha·Aᵀ·Bᵀ via explicit strided dots (rare).
func gemmSmall32TT(alpha float32, a, b, c *Matrix32) {
	for i := 0; i < c.Rows; i++ {
		crow := c.Row(i)
		for j := 0; j < c.Cols; j++ {
			brow := b.Row(j)
			var s float32
			for k := 0; k < a.Rows; k++ {
				s += a.Data[k*a.Stride+i] * brow[k]
			}
			crow[j] += alpha * s
		}
	}
}

// Syrk32 computes the lower triangle of C = alpha*op(A)*op(A)ᵀ + beta*C in
// float32; only the lower triangle of C is referenced and written.
func Syrk32(trans Transpose, alpha float32, a *Matrix32, beta float32, c *Matrix32) {
	n, k := opShape32(trans, a)
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("dense: syrk32 shape mismatch C=%d×%d want %d×%d", c.Rows, c.Cols, n, n))
	}
	if beta != 1 {
		for i := 0; i < n; i++ {
			row := c.Row(i)
			for j := 0; j <= i; j++ {
				if beta == 0 {
					row[j] = 0
				} else {
					row[j] *= beta
				}
			}
		}
	}
	if alpha == 0 || n == 0 || k == 0 {
		return
	}
	if n <= syrkBlock {
		syrkRef32(trans, alpha, a, c)
		return
	}
	for i0 := 0; i0 < n; i0 += syrkBlock {
		ib := min(syrkBlock, n-i0)
		if i0 > 0 {
			cPanel := c.View(i0, 0, ib, i0)
			if trans == NoTrans {
				Gemm32(NoTrans, Trans, alpha, a.View(i0, 0, ib, k), a.View(0, 0, i0, k), 1, cPanel)
			} else {
				Gemm32(Trans, NoTrans, alpha, a.View(0, i0, k, ib), a.View(0, 0, k, i0), 1, cPanel)
			}
		}
		var slab *Matrix32
		if trans == NoTrans {
			slab = a.View(i0, 0, ib, k)
		} else {
			slab = a.View(0, i0, k, ib)
		}
		syrkRef32(trans, alpha, slab, c.View(i0, i0, ib, ib))
	}
}

// syrkRef32 accumulates the lower triangle of C += alpha·op(A)·op(A)ᵀ with
// plain loops; used on diagonal blocks and as the test reference.
func syrkRef32(trans Transpose, alpha float32, a *Matrix32, c *Matrix32) {
	n := c.Rows
	if trans == NoTrans {
		for i := 0; i < n; i++ {
			arow, crow := a.Row(i), c.Row(i)
			for j := 0; j <= i; j++ {
				brow := a.Row(j)
				var s float32
				for k, av := range arow {
					s += av * brow[k]
				}
				crow[j] += alpha * s
			}
		}
		return
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		for i := 0; i < n; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			s := alpha * av
			crow := c.Row(i)
			for j := 0; j <= i; j++ {
				crow[j] += s * arow[j]
			}
		}
	}
}

// Trsm32 solves a triangular system with a lower-triangular L in place of B
// (same side/trans convention as Trsm). Blocked like the fp64 version:
// small triangular solves on the diagonal blocks, Gemm32 updates elsewhere.
// The unblocked solves stay serial — in the mixed-precision BTA path the
// parallelism unit is the partition, not the triangular solve.
func Trsm32(side Side, trans Transpose, l, b *Matrix32) {
	if l.Rows != l.Cols {
		panic("dense: trsm32 with non-square triangular factor")
	}
	n := l.Rows
	if side == Left && b.Rows != n || side == Right && b.Cols != n {
		panic(fmt.Sprintf("dense: trsm32 shape mismatch L=%d×%d B=%d×%d side=%d", l.Rows, l.Cols, b.Rows, b.Cols, side))
	}
	if n == 0 || b.Rows == 0 || b.Cols == 0 {
		return
	}
	if n <= trsmBlock {
		trsmUnb32(side, trans, l, b)
		return
	}
	switch {
	case side == Left && trans == NoTrans:
		for k0 := 0; k0 < n; k0 += trsmBlock {
			kb := min(trsmBlock, n-k0)
			bk := b.View(k0, 0, kb, b.Cols)
			trsmUnb32(Left, NoTrans, l.View(k0, k0, kb, kb), bk)
			if rem := n - k0 - kb; rem > 0 {
				Gemm32(NoTrans, NoTrans, -1, l.View(k0+kb, k0, rem, kb), bk, 1, b.View(k0+kb, 0, rem, b.Cols))
			}
		}
	case side == Left && trans == Trans:
		k0 := ((n - 1) / trsmBlock) * trsmBlock
		for ; k0 >= 0; k0 -= trsmBlock {
			kb := min(trsmBlock, n-k0)
			bk := b.View(k0, 0, kb, b.Cols)
			if rem := n - k0 - kb; rem > 0 {
				Gemm32(Trans, NoTrans, -1, l.View(k0+kb, k0, rem, kb), b.View(k0+kb, 0, rem, b.Cols), 1, bk)
			}
			trsmUnb32(Left, Trans, l.View(k0, k0, kb, kb), bk)
		}
	case side == Right && trans == Trans:
		for j0 := 0; j0 < n; j0 += trsmBlock {
			jb := min(trsmBlock, n-j0)
			bj := b.View(0, j0, b.Rows, jb)
			if j0 > 0 {
				Gemm32(NoTrans, Trans, -1, b.View(0, 0, b.Rows, j0), l.View(j0, 0, jb, j0), 1, bj)
			}
			trsmUnb32(Right, Trans, l.View(j0, j0, jb, jb), bj)
		}
	default: // Right, NoTrans
		j0 := ((n - 1) / trsmBlock) * trsmBlock
		for ; j0 >= 0; j0 -= trsmBlock {
			jb := min(trsmBlock, n-j0)
			bj := b.View(0, j0, b.Rows, jb)
			if rem := n - j0 - jb; rem > 0 {
				Gemm32(NoTrans, NoTrans, -1, b.View(0, j0+jb, b.Rows, rem), l.View(j0+jb, j0, rem, jb), 1, bj)
			}
			trsmUnb32(Right, NoTrans, l.View(j0, j0, jb, jb), bj)
		}
	}
}

// trsmUnb32 is the unblocked fp32 triangular solve used on diagonal blocks.
func trsmUnb32(side Side, trans Transpose, l, b *Matrix32) {
	n := l.Rows
	switch {
	case side == Left && trans == NoTrans:
		for i := 0; i < n; i++ {
			li := l.Row(i)
			bi := b.Row(i)
			for k := 0; k < i; k++ {
				f := li[k]
				if f == 0 {
					continue
				}
				bk := b.Row(k)
				for j := range bi {
					bi[j] -= f * bk[j]
				}
			}
			inv := 1 / li[i]
			for j := range bi {
				bi[j] *= inv
			}
		}
	case side == Left && trans == Trans:
		for i := n - 1; i >= 0; i-- {
			bi := b.Row(i)
			for k := i + 1; k < n; k++ {
				f := l.Data[k*l.Stride+i] // Lᵀ[i,k] = L[k,i]
				if f == 0 {
					continue
				}
				bk := b.Row(k)
				for j := range bi {
					bi[j] -= f * bk[j]
				}
			}
			inv := 1 / l.Data[i*l.Stride+i]
			for j := range bi {
				bi[j] *= inv
			}
		}
	case side == Right && trans == Trans:
		// x·Lᵀ = b row-wise: x[j] = (b[j] − Σ_{k<j} x[k]·L[j,k]) / L[j,j].
		for i := 0; i < b.Rows; i++ {
			x := b.Row(i)
			for j := 0; j < n; j++ {
				lj := l.Data[j*l.Stride : j*l.Stride+j+1]
				s := x[j]
				for k := 0; k < j; k++ {
					s -= x[k] * lj[k]
				}
				x[j] = s / lj[j]
			}
		}
	default: // Right, NoTrans: x·L = b, backward over j.
		for i := 0; i < b.Rows; i++ {
			x := b.Row(i)
			for j := n - 1; j >= 0; j-- {
				s := x[j]
				for k := j + 1; k < n; k++ {
					s -= x[k] * l.Data[k*l.Stride+j]
				}
				x[j] = s / l.Data[j*l.Stride+j]
			}
		}
	}
}

// Potrf32 overwrites the lower triangle of a with its float32 Cholesky
// factor. The strict upper triangle is left untouched. Returns
// ErrNotPositiveDefinite when a pivot is ≤ 0 or NaN — in the mixed-precision
// BTA path this aborts the fp32 sweep and the partition is re-eliminated in
// fp64 (a matrix can be SPD in fp64 yet lose definiteness under fp32
// rounding).
func Potrf32(a *Matrix32) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("dense: potrf32 of non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	for j := 0; j < n; j += potrfBlock {
		bw := potrfBlock
		if j+bw > n {
			bw = n - j
		}
		d := a.View(j, j, bw, bw)
		if j > 0 {
			p := a.View(j, 0, bw, j)
			Syrk32(NoTrans, -1, p, 1, d)
			if rem := n - j - bw; rem > 0 {
				q := a.View(j+bw, 0, rem, j)
				r := a.View(j+bw, j, rem, bw)
				Gemm32(NoTrans, Trans, -1, q, p, 1, r)
			}
		}
		if err := potf232(d); err != nil {
			return err
		}
		if rem := n - j - bw; rem > 0 {
			r := a.View(j+bw, j, rem, bw)
			Trsm32(Right, Trans, d, r)
		}
	}
	return nil
}

// potf232 is the unblocked lower fp32 Cholesky used on diagonal panels.
func potf232(a *Matrix32) error {
	n := a.Rows
	for j := 0; j < n; j++ {
		row := a.Row(j)
		s := row[j]
		for k := 0; k < j; k++ {
			s -= row[k] * row[k]
		}
		if s <= 0 || s != s {
			return ErrNotPositiveDefinite
		}
		d := float32(math.Sqrt(float64(s)))
		row[j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			ri := a.Row(i)
			s := ri[j]
			for k := 0; k < j; k++ {
				s -= ri[k] * row[k]
			}
			ri[j] = s * inv
		}
	}
	return nil
}
