package dense

import (
	"math"
	"math/rand"
	"testing"
)

// naiveRefGemm is an independent j-loop reference used to cross-check both
// the packed engine and the retained naive kernels (which share no code
// with this triple loop).
func naiveRefGemm(transA, transB Transpose, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	am, ak := opShape(transA, a)
	_, bn := opShape(transB, b)
	at := func(i, k int) float64 {
		if transA == Trans {
			return a.At(k, i)
		}
		return a.At(i, k)
	}
	bt := func(k, j int) float64 {
		if transB == Trans {
			return b.At(j, k)
		}
		return b.At(k, j)
	}
	for i := 0; i < am; i++ {
		for j := 0; j < bn; j++ {
			var s float64
			for k := 0; k < ak; k++ {
				s += at(i, k) * bt(k, j)
			}
			c.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
}

func fillRand(rng *rand.Rand, m *Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
}

// TestGemmAllPathsVsReference sweeps shapes across the naive/packed
// dispatch threshold and every transpose combination, including 1×1,
// non-multiple-of-tile and strongly rectangular shapes.
func TestGemmAllPathsVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {5, 1, 7}, {1, 9, 1},
		{MR, NR, 8}, {MR + 1, NR + 1, 9}, {MR - 1, NR - 1, 3},
		{31, 33, 35},                // below pack threshold
		{63, 65, 67}, {129, 67, 31}, // straddling mcBlock/NR edges
		{130, 129, 257}, // above kcBlock with ragged edges
		{1, 200, 300}, {300, 1, 200}, {200, 300, 1},
	}
	for _, tA := range []Transpose{NoTrans, Trans} {
		for _, tB := range []Transpose{NoTrans, Trans} {
			for _, sh := range shapes {
				m, n, k := sh[0], sh[1], sh[2]
				a := New(m, k)
				if tA == Trans {
					a = New(k, m)
				}
				b := New(k, n)
				if tB == Trans {
					b = New(n, k)
				}
				fillRand(rng, a)
				fillRand(rng, b)
				c := New(m, n)
				fillRand(rng, c)
				want := c.Clone()
				alpha, beta := 1.3, -0.7
				naiveRefGemm(tA, tB, alpha, a, b, beta, want)
				Gemm(tA, tB, alpha, a, b, beta, c)
				if !c.Equal(want, 1e-10*float64(k+1)) {
					t.Fatalf("gemm mismatch tA=%v tB=%v shape=%v", tA, tB, sh)
				}
			}
		}
	}
}

// TestGemmStridedViews runs the packed path on sub-views of larger
// buffers (Stride > Cols) for all three operands.
func TestGemmStridedViews(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	big := New(300, 300)
	fillRand(rng, big)
	a := big.View(3, 5, 80, 90)
	b := big.View(97, 11, 90, 70)
	c := New(200, 200).View(10, 20, 80, 70)
	fillRand(rng, c)
	want := c.Clone()
	naiveRefGemm(NoTrans, NoTrans, 2.0, a, b, 0.5, want)
	Gemm(NoTrans, NoTrans, 2.0, a, b, 0.5, c)
	if !c.Equal(want, 1e-8) {
		t.Fatal("strided-view gemm mismatch")
	}
	// Transposed operands from views: C2 = Aᵀ(90×80) · B2ᵀ(80×85).
	b2 := big.View(50, 40, 85, 80)
	c2 := New(120, 120).View(7, 9, 90, 85)
	c2.Zero()
	want2 := New(90, 85)
	naiveRefGemm(Trans, Trans, 1.0, a, b2, 0, want2)
	Gemm(Trans, Trans, 1.0, a, b2, 0, c2)
	if !c2.Equal(want2, 1e-8) {
		t.Fatal("strided-view gemm TT mismatch")
	}
}

// TestGemmAlphaBetaFastPaths: alpha=0 reduces to the beta scaling; beta=0
// must clear C even when it holds NaN/Inf garbage (fresh-workspace
// semantics); beta=1 accumulates.
func TestGemmAlphaBetaFastPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := New(40, 40)
	b := New(40, 40)
	fillRand(rng, a)
	fillRand(rng, b)

	c := New(40, 40)
	fillRand(rng, c)
	want := c.Clone()
	want.Scale(0.25)
	Gemm(NoTrans, NoTrans, 0, a, b, 0.25, c) // alpha=0: pure scaling
	if !c.Equal(want, 1e-14) {
		t.Fatal("alpha=0 fast path mismatch")
	}

	c.Fill(math.NaN()) // beta=0 must overwrite garbage, not propagate it
	want = New(40, 40)
	naiveRefGemm(NoTrans, NoTrans, 1, a, b, 0, want)
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
	if !c.Equal(want, 1e-10) {
		t.Fatal("beta=0 did not clear NaN garbage")
	}

	// Naive reference has the same semantics.
	c.Fill(math.Inf(1))
	GemmNaive(NoTrans, NoTrans, 1, a, b, 0, c)
	if !c.Equal(want, 1e-10) {
		t.Fatal("GemmNaive beta=0 did not clear Inf garbage")
	}
}

// TestSyrkBlockedVsReference exercises the blocked Syrk (off-diagonal
// panels via Gemm) against the plain triangular reference, on sizes
// straddling syrkBlock, for both transposes, with strided views, and with
// the beta=0 fast path on a garbage-filled C.
func TestSyrkBlockedVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, trans := range []Transpose{NoTrans, Trans} {
		for _, n := range []int{1, 5, syrkBlock - 1, syrkBlock, syrkBlock + 1, 2*syrkBlock + 17} {
			k := 37
			var a *Matrix
			if trans == NoTrans {
				a = New(n, k)
			} else {
				a = New(k, n)
			}
			fillRand(rng, a)
			c := New(n, n)
			c.Fill(math.NaN())
			want := New(n, n)
			syrkRef(trans, 1.5, a, want)
			Syrk(trans, 1.5, a, 0, c)
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					if math.Abs(c.At(i, j)-want.At(i, j)) > 1e-10 {
						t.Fatalf("syrk trans=%v n=%d mismatch at (%d,%d)", trans, n, i, j)
					}
				}
			}
		}
	}
	// Strided-view operand.
	big := New(220, 220)
	fillRand(rng, big)
	a := big.View(2, 3, 150, 40)
	c := New(150, 150)
	want := New(150, 150)
	syrkRef(NoTrans, -1, a, want)
	Syrk(NoTrans, -1, a, 0, c)
	for i := 0; i < 150; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(c.At(i, j)-want.At(i, j)) > 1e-10 {
				t.Fatalf("syrk view mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// TestTrsmBlockedRoundTrip: blocked Trsm (sizes above trsmBlock) must
// invert Trmm for every side/transpose combination, including on views.
func TestTrsmBlockedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for _, n := range []int{trsmBlock + 1, 2*trsmBlock + 13} {
		l := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				l.Set(i, j, rng.NormFloat64()*0.1)
			}
			l.Set(i, i, 2+rng.Float64())
		}
		for _, side := range []Side{Left, Right} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				var b *Matrix
				if side == Left {
					b = New(n, 23)
				} else {
					b = New(23, n)
				}
				fillRand(rng, b)
				orig := b.Clone()
				Trsm(side, trans, l, b)
				Trmm(side, trans, l, b)
				if !b.Equal(orig, 1e-7) {
					t.Fatalf("trsm/trmm round trip failed side=%d trans=%v n=%d", side, trans, n)
				}
			}
		}
	}
}

// TestPotrfLargeReconstruction: the blocked Cholesky at a size that
// engages every level (panel potf2, blocked Trsm, blocked Syrk, packed
// Gemm) must reproduce L·Lᵀ = A.
func TestPotrfLargeReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	n := 2*potrfBlock + 29
	g := New(n, n)
	fillRand(rng, g)
	a := New(n, n)
	Syrk(NoTrans, 1, g, 0, a)
	a.MirrorLowerToUpper()
	a.AddDiag(float64(n))
	l, err := Chol(a)
	if err != nil {
		t.Fatal(err)
	}
	rec := New(n, n)
	Gemm(NoTrans, Trans, 1, l, l, 0, rec)
	if !rec.Equal(a, 1e-8*float64(n)) {
		t.Fatal("blocked potrf reconstruction failed")
	}
}
