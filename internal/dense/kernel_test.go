package dense

import (
	"math"
	"math/rand"
	"testing"
)

// TestMicroKernelMatchesGo cross-checks the active micro-kernel (assembly
// on capable amd64 CPUs) against the portable Go kernel on random packed
// panels, including k == 0 and odd k (the unrolled tail path).
func TestMicroKernelMatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{0, 1, 2, 3, 7, 16, 33, 255, 256} {
		a := make([]float64, k*MR)
		b := make([]float64, k*NR)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ldc := NR + 3 // non-trivial stride
		want := make([]float64, MR*ldc)
		got := make([]float64, MR*ldc)
		for i := range want {
			v := rng.NormFloat64()
			want[i] = v
			got[i] = v
		}
		ukernelGo(k, a, b, want, ldc)
		ukernel(k, a, b, got, ldc)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("k=%d: kernel mismatch at %d: got %g want %g", k, i, got[i], want[i])
			}
		}
	}
}

func benchGemm(b *testing.B, n int, naive bool) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(1))
	x := New(n, n)
	y := New(n, n)
	c := New(n, n)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			GemmNaive(NoTrans, NoTrans, 1, x, y, 0, c)
		} else {
			Gemm(NoTrans, NoTrans, 1, x, y, 0, c)
		}
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkGemm64(b *testing.B)        { benchGemm(b, 64, false) }
func BenchmarkGemm256(b *testing.B)       { benchGemm(b, 256, false) }
func BenchmarkGemm1024(b *testing.B)      { benchGemm(b, 1024, false) }
func BenchmarkGemmNaive64(b *testing.B)   { benchGemm(b, 64, true) }
func BenchmarkGemmNaive256(b *testing.B)  { benchGemm(b, 256, true) }
func BenchmarkGemmNaive1024(b *testing.B) { benchGemm(b, 1024, true) }

func benchPotrf(b *testing.B, n int) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(2))
	g := New(n, n)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	spd := New(n, n)
	Syrk(NoTrans, 1, g, 0, spd)
	spd.MirrorLowerToUpper()
	spd.AddDiag(float64(n))
	w := New(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.CopyFrom(spd)
		if err := Potrf(w); err != nil {
			b.Fatal(err)
		}
	}
	flops := float64(n) * float64(n) * float64(n) / 3
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkPotrf256(b *testing.B)  { benchPotrf(b, 256) }
func BenchmarkPotrf1024(b *testing.B) { benchPotrf(b, 1024) }

// TestGemmZeroAllocSteadyState: after warm-up, repeated Gemm calls on the
// packed path recycle all packing buffers through the pools.
func TestGemmZeroAllocSteadyState(t *testing.T) {
	if RaceEnabled {
		t.Skip("race-mode sync.Pool drops Put items; alloc counts are meaningless")
	}
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	n := 192
	x := New(n, n)
	y := New(n, n)
	c := New(n, n)
	for i := range x.Data {
		x.Data[i] = float64(i % 13)
		y.Data[i] = float64(i % 11)
	}
	Gemm(NoTrans, NoTrans, 1, x, y, 0, c) // warm the pools
	allocs := testing.AllocsPerRun(20, func() {
		Gemm(NoTrans, Trans, 1, x, y, 0.5, c)
	})
	if allocs != 0 {
		t.Fatalf("packed Gemm allocates %.1f objects per call in steady state, want 0", allocs)
	}
}
