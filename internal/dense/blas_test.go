package dense

import (
	"math/rand"
	"testing"
)

func TestGemmAllTransposeVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const m, k, n = 7, 5, 6
	a := randMat(rng, m, k)
	b := randMat(rng, k, n)
	want := naiveMul(a, b)

	cases := []struct {
		name   string
		ta, tb Transpose
		a, b   *Matrix
	}{
		{"NN", NoTrans, NoTrans, a, b},
		{"TN", Trans, NoTrans, a.T(), b},
		{"NT", NoTrans, Trans, a, b.T()},
		{"TT", Trans, Trans, a.T(), b.T()},
	}
	for _, tc := range cases {
		c := New(m, n)
		Gemm(tc.ta, tc.tb, 1, tc.a, tc.b, 0, c)
		if !c.Equal(want, 1e-12) {
			t.Errorf("Gemm %s mismatch", tc.name)
		}
	}
}

func TestGemmAlphaBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMat(rng, 4, 3)
	b := randMat(rng, 3, 5)
	c0 := randMat(rng, 4, 5)

	c := c0.Clone()
	Gemm(NoTrans, NoTrans, 2, a, b, 3, c)

	want := naiveMul(a, b)
	want.Scale(2)
	scaled := c0.Clone()
	scaled.Scale(3)
	want.Add(1, scaled)
	if !c.Equal(want, 1e-12) {
		t.Fatal("Gemm alpha/beta accumulation wrong")
	}
}

func TestGemmShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Gemm must panic")
		}
	}()
	Gemm(NoTrans, NoTrans, 1, New(2, 3), New(2, 3), 0, New(2, 3))
}

func TestGemmLargeParallel(t *testing.T) {
	// Exceeds the parallelRows threshold so the goroutine path is exercised.
	rng := rand.New(rand.NewSource(12))
	a := randMat(rng, 150, 40)
	b := randMat(rng, 40, 30)
	c := New(150, 30)
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
	if !c.Equal(naiveMul(a, b), 1e-11) {
		t.Fatal("parallel Gemm mismatch")
	}
}

func TestSyrkNoTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMat(rng, 6, 4)
	c := New(6, 6)
	Syrk(NoTrans, 1, a, 0, c)
	want := naiveMul(a, a.T())
	for i := 0; i < 6; i++ {
		for j := 0; j <= i; j++ {
			if d := c.At(i, j) - want.At(i, j); d > 1e-12 || d < -1e-12 {
				t.Fatalf("Syrk lower (%d,%d) = %v want %v", i, j, c.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestSyrkTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randMat(rng, 5, 7)
	c := New(7, 7)
	Syrk(Trans, 1, a, 0, c)
	want := naiveMul(a.T(), a)
	for i := 0; i < 7; i++ {
		for j := 0; j <= i; j++ {
			if d := c.At(i, j) - want.At(i, j); d > 1e-12 || d < -1e-12 {
				t.Fatalf("Syrk^T lower (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestSyrkBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randMat(rng, 4, 4)
	c := Eye(4)
	Syrk(NoTrans, -1, a, 2, c) // lower(C) = 2I − AAᵀ
	want := naiveMul(a, a.T())
	for i := 0; i < 4; i++ {
		for j := 0; j <= i; j++ {
			w := -want.At(i, j)
			if i == j {
				w += 2
			}
			if d := c.At(i, j) - w; d > 1e-12 || d < -1e-12 {
				t.Fatalf("Syrk beta (%d,%d) = %v want %v", i, j, c.At(i, j), w)
			}
		}
	}
}

// randLower returns a well-conditioned lower-triangular matrix.
func randLower(rng *rand.Rand, n int) *Matrix {
	l := randMat(rng, n, n)
	l.ZeroUpper()
	for i := 0; i < n; i++ {
		l.Set(i, i, 2+rng.Float64())
	}
	return l
}

func TestTrsmAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	const n, m = 6, 4
	l := randLower(rng, n)

	check := func(name string, side Side, tr Transpose, rows, cols int) {
		b := randMat(rng, rows, cols)
		orig := b.Clone()
		Trsm(side, tr, l, b)
		// Reconstruct: op(L)*X (left) or X*op(L) (right) must equal original B.
		var rec *Matrix
		lt := l.T()
		switch {
		case side == Left && tr == NoTrans:
			rec = naiveMul(l, b)
		case side == Left && tr == Trans:
			rec = naiveMul(lt, b)
		case side == Right && tr == NoTrans:
			rec = naiveMul(b, l)
		default:
			rec = naiveMul(b, lt)
		}
		if !rec.Equal(orig, 1e-10) {
			t.Errorf("Trsm %s does not reconstruct B", name)
		}
	}
	check("Left/NoTrans", Left, NoTrans, n, m)
	check("Left/Trans", Left, Trans, n, m)
	check("Right/NoTrans", Right, NoTrans, m, n)
	check("Right/Trans", Right, Trans, m, n)
}

func TestTrmmAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n, m = 5, 3
	l := randLower(rng, n)
	lt := l.T()

	check := func(name string, side Side, tr Transpose, rows, cols int) {
		b := randMat(rng, rows, cols)
		want := func() *Matrix {
			switch {
			case side == Left && tr == NoTrans:
				return naiveMul(l, b)
			case side == Left && tr == Trans:
				return naiveMul(lt, b)
			case side == Right && tr == NoTrans:
				return naiveMul(b, l)
			default:
				return naiveMul(b, lt)
			}
		}()
		got := b.Clone()
		Trmm(side, tr, l, got)
		if !got.Equal(want, 1e-11) {
			t.Errorf("Trmm %s mismatch", name)
		}
	}
	check("Left/NoTrans", Left, NoTrans, n, m)
	check("Left/Trans", Left, Trans, n, m)
	check("Right/NoTrans", Right, NoTrans, m, n)
	check("Right/Trans", Right, Trans, m, n)
}

func TestTrsmTrmmRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	l := randLower(rng, 8)
	b := randMat(rng, 8, 5)
	orig := b.Clone()
	Trsm(Left, NoTrans, l, b)
	Trmm(Left, NoTrans, l, b)
	if !b.Equal(orig, 1e-10) {
		t.Fatal("Trmm(Trsm(B)) != B")
	}
}

func TestGemvBothDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randMat(rng, 4, 6)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 4)
	Gemv(NoTrans, 1, a, x, 0, y)
	for i := 0; i < 4; i++ {
		var s float64
		for j := 0; j < 6; j++ {
			s += a.At(i, j) * x[j]
		}
		if d := y[i] - s; d > 1e-12 || d < -1e-12 {
			t.Fatalf("Gemv NoTrans row %d mismatch", i)
		}
	}
	z := make([]float64, 6)
	Gemv(Trans, 1, a, y, 0, z)
	for j := 0; j < 6; j++ {
		var s float64
		for i := 0; i < 4; i++ {
			s += a.At(i, j) * y[i]
		}
		if d := z[j] - s; d > 1e-12 || d < -1e-12 {
			t.Fatalf("Gemv Trans col %d mismatch", j)
		}
	}
}

func TestDotAxpyNrm2(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	if y[2] != 7 {
		t.Fatalf("Axpy result %v", y)
	}
	if d := Nrm2([]float64{3, 4}) - 5; d > 1e-15 || d < -1e-15 {
		t.Fatal("Nrm2 wrong")
	}
}

func TestMatMulConvenience(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randMat(rng, 3, 4)
	b := randMat(rng, 4, 2)
	if !MatMul(NoTrans, NoTrans, a, b).Equal(naiveMul(a, b), 1e-12) {
		t.Fatal("MatMul mismatch")
	}
	if !MatMul(Trans, Trans, a.T(), b.T()).Equal(naiveMul(a, b), 1e-12) {
		t.Fatal("MatMul TT mismatch")
	}
}

func TestSetMaxWorkers(t *testing.T) {
	old := SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	if MaxWorkers() != 1 {
		t.Fatal("SetMaxWorkers(1) not applied")
	}
	rng := rand.New(rand.NewSource(21))
	a := randMat(rng, 200, 16)
	b := randMat(rng, 16, 8)
	c := New(200, 8)
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c) // serial path on big input
	if !c.Equal(naiveMul(a, b), 1e-11) {
		t.Fatal("serial large Gemm mismatch")
	}
	SetMaxWorkers(4)
	if MaxWorkers() != 4 {
		t.Fatal("SetMaxWorkers(4) not applied")
	}
	c2 := New(200, 8)
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c2)
	if !c2.Equal(c, 0) {
		t.Fatal("parallel result differs from serial")
	}
}
