package dense

import (
	"math"
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randSPD returns a random symmetric positive definite n×n matrix.
func randSPD(rng *rand.Rand, n int) *Matrix {
	g := randMat(rng, n, n)
	a := New(n, n)
	Gemm(NoTrans, Trans, 1, g, g, 0, a)
	a.AddDiag(float64(n)) // guarantee well-conditioned positivity
	return a
}

// naiveMul is the reference O(n³) triple loop used to validate kernels.
func naiveMul(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestNewAndAccessors(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %+v", m)
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if _, err := m.AtChecked(3, 0); err == nil {
		t.Fatal("AtChecked out of range should error")
	}
	if v, err := m.AtChecked(1, 2); err != nil || v != 7.5 {
		t.Fatalf("AtChecked = %v, %v", v, err)
	}
}

func TestEye(t *testing.T) {
	e := Eye(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatalf("Eye(4)[%d,%d] = %v", i, j, e.At(i, j))
			}
		}
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := New(4, 4)
	v := m.View(1, 1, 2, 2)
	v.Set(0, 0, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("view write did not reach parent")
	}
	if v.Stride != m.Stride {
		t.Fatal("view must preserve stride")
	}
}

func TestViewBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range view must panic")
		}
	}()
	New(3, 3).View(2, 2, 2, 2)
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMat(rng, 5, 3)
	c := m.Clone()
	c.Set(0, 0, 123)
	if m.At(0, 0) == 123 {
		t.Fatal("clone shares storage with original")
	}
	if c.Stride != c.Cols {
		t.Fatal("clone must be compact")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randMat(rng, 4, 6)
	mt := m.T()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if mt.At(j, i) != m.At(i, j) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !m.T().T().Equal(m, 0) {
		t.Fatal("double transpose must be identity")
	}
}

func TestScaleAddZeroFill(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMat(rng, 3, 3)
	orig := m.Clone()
	m.Scale(2)
	m.Add(-1, orig)
	if !m.Equal(orig, 1e-14) {
		t.Fatal("2m − m should equal m")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero left nonzeros")
	}
	m.Fill(3)
	if m.At(2, 2) != 3 || m.At(0, 0) != 3 {
		t.Fatal("Fill failed")
	}
}

func TestSymmetrizeAndMirror(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randMat(rng, 5, 5)
	m.Symmetrize()
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatal("Symmetrize failed")
			}
		}
	}
	l := randMat(rng, 5, 5)
	l.ZeroUpper()
	full := l.Clone()
	full.MirrorLowerToUpper()
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			lo, hi := i, j
			if lo < hi {
				lo, hi = hi, lo
			}
			if full.At(i, j) != l.At(lo, hi) {
				t.Fatal("MirrorLowerToUpper failed")
			}
		}
	}
}

func TestDiagTraceAddDiag(t *testing.T) {
	m := Eye(3)
	m.AddDiag(2)
	d := m.Diag()
	for _, v := range d {
		if v != 3 {
			t.Fatalf("diag after AddDiag = %v", d)
		}
	}
	if m.Trace() != 9 {
		t.Fatalf("trace = %v, want 9", m.Trace())
	}
}

func TestNorms(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 3)
	m.Set(1, 1, -4)
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if math.Abs(m.FrobNorm()-5) > 1e-15 {
		t.Fatalf("FrobNorm = %v, want 5", m.FrobNorm())
	}
}

func TestEqualShapes(t *testing.T) {
	if New(2, 3).Equal(New(3, 2), 1) {
		t.Fatal("different shapes must not be Equal")
	}
}

func TestNewFromData(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := NewFromData(2, 3, d)
	if m.At(1, 2) != 6 {
		t.Fatalf("NewFromData layout wrong: %v", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if d[0] != 9 {
		t.Fatal("NewFromData must not copy")
	}
}

func TestStringAbbreviation(t *testing.T) {
	small := New(2, 2)
	if len(small.String()) == 0 {
		t.Fatal("small String empty")
	}
	big := New(20, 20)
	if got := big.String(); got != "dense.Matrix{20×20}" {
		t.Fatalf("big String = %q", got)
	}
}
