package dense

// Naive reference kernels, retained for two purposes: correctness
// cross-checks of the packed engine (every fast path is tested against
// these), and as the measured baseline in the GEMM microbenchmarks so the
// speedup of the tiled engine is a reported number rather than an
// assertion. GemmNaive is the seed implementation's i-k-j loop; it is also
// the small-size path of Gemm, where packing overhead would dominate.

// GemmNaive computes C = alpha*op(A)*op(B) + beta*C with plain triple
// loops (no packing, no register tiling, no parallelism). Shapes must
// conform as for Gemm.
func GemmNaive(transA, transB Transpose, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	checkGemmShapes(transA, transB, a, b, c)
	applyBeta(beta, c)
	am, ak := opShape(transA, a)
	_, bn := opShape(transB, b)
	if alpha == 0 || am == 0 || bn == 0 || ak == 0 {
		return
	}
	switch {
	case transA == NoTrans && transB == NoTrans:
		gemmSmallNN(alpha, a, b, c)
	case transA == NoTrans && transB == Trans:
		gemmSmallNT(alpha, a, b, c)
	case transA == Trans && transB == NoTrans:
		gemmSmallTN(alpha, a, b, c)
	default:
		gemmSmallTT(alpha, a, b, c)
	}
}

// gemmSmallNN: C += alpha·A·B, i-k-j loop order (cache-friendly row-major).
func gemmSmallNN(alpha float64, a, b, c *Matrix) {
	for i := 0; i < c.Rows; i++ {
		arow, crow := a.Row(i), c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			s := alpha * av
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += s * bv
			}
		}
	}
}

// gemmSmallNT: C += alpha·A·Bᵀ; C[i,j] = dot(A row i, B row j).
func gemmSmallNT(alpha float64, a, b, c *Matrix) {
	for i := 0; i < c.Rows; i++ {
		arow, crow := a.Row(i), c.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			crow[j] += alpha * s
		}
	}
}

// gemmSmallTN: C += alpha·Aᵀ·B in k-outer saxpy form: every read of A and B
// is a contiguous row sweep (the strided per-C-row access of the old
// implementation is gone; large shapes route through the packed kernel,
// whose packing step performs the transpose).
func gemmSmallTN(alpha float64, a, b, c *Matrix) {
	for k := 0; k < a.Rows; k++ {
		arow, brow := a.Row(k), b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			s := alpha * av
			crow := c.Row(i)
			for j, bv := range brow {
				crow[j] += s * bv
			}
		}
	}
}

// gemmSmallTT: C += alpha·Aᵀ·Bᵀ via explicit strided dots (rare).
func gemmSmallTT(alpha float64, a, b, c *Matrix) {
	for i := 0; i < c.Rows; i++ {
		crow := c.Row(i)
		for j := 0; j < c.Cols; j++ {
			brow := b.Row(j)
			var s float64
			for k := 0; k < a.Rows; k++ {
				s += a.Data[k*a.Stride+i] * brow[k]
			}
			crow[j] += alpha * s
		}
	}
}

// syrkRef accumulates the lower triangle of C += alpha·op(A)·op(A)ᵀ with
// plain loops; used on diagonal blocks of the blocked Syrk and as the test
// reference.
func syrkRef(trans Transpose, alpha float64, a *Matrix, c *Matrix) {
	n := c.Rows
	if trans == NoTrans {
		for i := 0; i < n; i++ {
			arow, crow := a.Row(i), c.Row(i)
			for j := 0; j <= i; j++ {
				brow := a.Row(j)
				var s float64
				for k, av := range arow {
					s += av * brow[k]
				}
				crow[j] += alpha * s
			}
		}
		return
	}
	// op(A) = Aᵀ: C += alpha·Aᵀ·A, k-outer accumulation.
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		for i := 0; i < n; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			s := alpha * av
			crow := c.Row(i)
			for j := 0; j <= i; j++ {
				crow[j] += s * arow[j]
			}
		}
	}
}
