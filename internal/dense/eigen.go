package dense

import (
	"fmt"
	"math"
)

// SymEigen computes the eigendecomposition A = V·diag(λ)·Vᵀ of a symmetric
// matrix by cyclic Jacobi rotations. Intended for the small matrices of the
// INLA layer (the dim(θ)×dim(θ) Hessian at the mode, §III-3); cost is
// O(n³) per sweep with quadratic convergence.
//
// Returns eigenvalues in ascending order with matching eigenvector columns.
func SymEigen(a *Matrix) (vals []float64, vecs *Matrix, err error) {
	n := a.Rows
	if n != a.Cols {
		return nil, nil, fmt.Errorf("dense: eigen of non-square %d×%d matrix", n, a.Cols)
	}
	w := a.Clone()
	w.Symmetrize()
	v := Eye(n)

	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-26*(1+w.FrobNorm()) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	vals = make([]float64, n)
	for i := range vals {
		vals[i] = w.At(i, i)
	}
	// Sort ascending, permuting eigenvector columns alongside.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vals[order[j]] < vals[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	sortedVals := make([]float64, n)
	vecs = New(n, n)
	for k, idx := range order {
		sortedVals[k] = vals[idx]
		for r := 0; r < n; r++ {
			vecs.Set(r, k, v.At(r, idx))
		}
	}
	return sortedVals, vecs, nil
}

// rotate applies the Jacobi rotation J(p,q,c,s) to w (two-sided) and
// accumulates it into v.
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for k := 0; k < n; k++ {
		wkp, wkq := w.At(k, p), w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk, wqk := w.At(p, k), w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}
