package dense

import (
	"fmt"
	"math"
)

// Transpose flags for Gemm/Syrk.
type Transpose bool

const (
	NoTrans Transpose = false
	Trans   Transpose = true
)

// Side selects the triangular operand's side in Trsm.
type Side int

const (
	Left Side = iota
	Right
)

// gemmPackFlops is the dispatch threshold between the naive small-size
// loops and the packed micro-kernel engine: below ~24³ multiply-adds the
// O(m·k + k·n) packing traffic is not amortized.
const gemmPackFlops = 24 * 24 * 24

// opShape returns the rows/cols of op(M).
func opShape(t Transpose, m *Matrix) (int, int) {
	if t == Trans {
		return m.Cols, m.Rows
	}
	return m.Rows, m.Cols
}

// checkGemmShapes panics unless op(A)·op(B) conforms with C.
func checkGemmShapes(transA, transB Transpose, a, b, c *Matrix) {
	am, ak := opShape(transA, a)
	bk, bn := opShape(transB, b)
	if ak != bk || c.Rows != am || c.Cols != bn {
		panic(fmt.Sprintf("dense: gemm shape mismatch op(A)=%d×%d op(B)=%d×%d C=%d×%d",
			am, ak, bk, bn, c.Rows, c.Cols))
	}
}

// applyBeta scales C by beta (with the beta == 0 fast path clearing C, so
// NaN/Inf garbage in uninitialized output buffers never propagates).
func applyBeta(beta float64, c *Matrix) {
	if beta == 1 {
		return
	}
	if beta == 0 {
		c.Zero()
		return
	}
	c.Scale(beta)
}

// Gemm computes C = alpha*op(A)*op(B) + beta*C, where op is identity or
// transpose per the flags. Shapes must conform; C must not alias A or B.
// Large products run on the packed register-tiled micro-kernel engine
// (kernel.go/pack.go), parallelized over macro-tiles of C; small ones use
// the retained naive loops (ref.go), whose packing overhead would dominate.
func Gemm(transA, transB Transpose, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	checkGemmShapes(transA, transB, a, b, c)
	am, ak := opShape(transA, a)
	_, bn := opShape(transB, b)
	applyBeta(beta, c)
	if alpha == 0 || am == 0 || bn == 0 || ak == 0 {
		return
	}
	if am*bn*ak >= gemmPackFlops {
		gemmPacked(transA, transB, alpha, a, b, c)
		return
	}
	switch {
	case transA == NoTrans && transB == NoTrans:
		gemmSmallNN(alpha, a, b, c)
	case transA == NoTrans && transB == Trans:
		gemmSmallNT(alpha, a, b, c)
	case transA == Trans && transB == NoTrans:
		gemmSmallTN(alpha, a, b, c)
	default:
		gemmSmallTT(alpha, a, b, c)
	}
}

// MatMul returns op(A)*op(B) as a fresh matrix (convenience for tests and
// non-hot paths).
func MatMul(transA, transB Transpose, a, b *Matrix) *Matrix {
	am, _ := opShape(transA, a)
	_, bn := opShape(transB, b)
	c := New(am, bn)
	Gemm(transA, transB, 1, a, b, 0, c)
	return c
}

// syrkBlock is the panel width of the blocked Syrk: off-diagonal panels
// become Gemm calls on the packed engine, diagonal blocks stay on the
// naive triangular loops.
const syrkBlock = 64

// Syrk computes the lower triangle of C = alpha*op(A)*op(A)ᵀ + beta*C.
// With trans == NoTrans, op(A) = A (C is a.Rows×a.Rows); with Trans,
// op(A) = Aᵀ (C is a.Cols×a.Cols). Only the lower triangle of C is
// referenced and written.
func Syrk(trans Transpose, alpha float64, a *Matrix, beta float64, c *Matrix) {
	n, k := opShape(trans, a)
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("dense: syrk shape mismatch C=%d×%d want %d×%d", c.Rows, c.Cols, n, n))
	}
	if beta != 1 {
		for i := 0; i < n; i++ {
			row := c.Row(i)
			for j := 0; j <= i; j++ {
				if beta == 0 {
					row[j] = 0
				} else {
					row[j] *= beta
				}
			}
		}
	}
	if alpha == 0 || n == 0 || k == 0 {
		return
	}
	if n <= syrkBlock {
		syrkRef(trans, alpha, a, c)
		return
	}
	for i0 := 0; i0 < n; i0 += syrkBlock {
		ib := min(syrkBlock, n-i0)
		if i0 > 0 {
			// Off-diagonal panel C[i0:i0+ib, 0:i0] += alpha·op(A)_I·op(A)_Jᵀ.
			cPanel := c.View(i0, 0, ib, i0)
			if trans == NoTrans {
				Gemm(NoTrans, Trans, alpha, a.View(i0, 0, ib, k), a.View(0, 0, i0, k), 1, cPanel)
			} else {
				Gemm(Trans, NoTrans, alpha, a.View(0, i0, k, ib), a.View(0, 0, k, i0), 1, cPanel)
			}
		}
		// Diagonal block: naive triangular accumulation.
		var slab *Matrix
		if trans == NoTrans {
			slab = a.View(i0, 0, ib, k)
		} else {
			slab = a.View(0, i0, k, ib)
		}
		syrkRef(trans, alpha, slab, c.View(i0, i0, ib, ib))
	}
}

// trsmBlock is the diagonal-block size of the blocked Trsm; the
// off-diagonal updates become Gemm calls.
const trsmBlock = 64

// Trsm solves a triangular system with a lower-triangular L in place of B:
//
//	Left,  NoTrans: B ← L⁻¹ B
//	Left,  Trans:   B ← L⁻ᵀ B
//	Right, NoTrans: B ← B L⁻¹
//	Right, Trans:   B ← B L⁻ᵀ
//
// Only the lower triangle of L is referenced. Unit-diagonal systems are not
// needed by the BTA solvers and are not supported. Systems larger than
// trsmBlock are solved blocked: small triangular solves on the diagonal
// blocks, level-3 Gemm updates for everything else.
func Trsm(side Side, trans Transpose, l, b *Matrix) {
	if l.Rows != l.Cols {
		panic("dense: trsm with non-square triangular factor")
	}
	n := l.Rows
	if side == Left && b.Rows != n || side == Right && b.Cols != n {
		panic(fmt.Sprintf("dense: trsm shape mismatch L=%d×%d B=%d×%d side=%d", l.Rows, l.Cols, b.Rows, b.Cols, side))
	}
	if n == 0 || b.Rows == 0 || b.Cols == 0 {
		return
	}
	if n <= trsmBlock {
		trsmUnb(side, trans, l, b)
		return
	}
	switch {
	case side == Left && trans == NoTrans:
		// Forward over row blocks: solve diag, then eliminate below.
		for k0 := 0; k0 < n; k0 += trsmBlock {
			kb := min(trsmBlock, n-k0)
			bk := b.View(k0, 0, kb, b.Cols)
			trsmUnb(Left, NoTrans, l.View(k0, k0, kb, kb), bk)
			if rem := n - k0 - kb; rem > 0 {
				Gemm(NoTrans, NoTrans, -1, l.View(k0+kb, k0, rem, kb), bk, 1, b.View(k0+kb, 0, rem, b.Cols))
			}
		}
	case side == Left && trans == Trans:
		// Backward over row blocks: eliminate from below, then solve diag.
		k0 := ((n - 1) / trsmBlock) * trsmBlock
		for ; k0 >= 0; k0 -= trsmBlock {
			kb := min(trsmBlock, n-k0)
			bk := b.View(k0, 0, kb, b.Cols)
			if rem := n - k0 - kb; rem > 0 {
				Gemm(Trans, NoTrans, -1, l.View(k0+kb, k0, rem, kb), b.View(k0+kb, 0, rem, b.Cols), 1, bk)
			}
			trsmUnb(Left, Trans, l.View(k0, k0, kb, kb), bk)
		}
	case side == Right && trans == Trans:
		// Forward over column blocks of X·Lᵀ = B.
		for j0 := 0; j0 < n; j0 += trsmBlock {
			jb := min(trsmBlock, n-j0)
			bj := b.View(0, j0, b.Rows, jb)
			if j0 > 0 {
				Gemm(NoTrans, Trans, -1, b.View(0, 0, b.Rows, j0), l.View(j0, 0, jb, j0), 1, bj)
			}
			trsmUnb(Right, Trans, l.View(j0, j0, jb, jb), bj)
		}
	default: // Right, NoTrans
		// Backward over column blocks of X·L = B.
		j0 := ((n - 1) / trsmBlock) * trsmBlock
		for ; j0 >= 0; j0 -= trsmBlock {
			jb := min(trsmBlock, n-j0)
			bj := b.View(0, j0, b.Rows, jb)
			if rem := n - j0 - jb; rem > 0 {
				Gemm(NoTrans, NoTrans, -1, b.View(0, j0+jb, b.Rows, rem), l.View(j0+jb, j0, rem, jb), 1, bj)
			}
			trsmUnb(Right, NoTrans, l.View(j0, j0, jb, jb), bj)
		}
	}
}

// trsmUnb is the unblocked triangular solve used on diagonal blocks.
func trsmUnb(side Side, trans Transpose, l, b *Matrix) {
	n := l.Rows
	switch {
	case side == Left && trans == NoTrans:
		// Forward substitution over rows; columns are independent.
		for i := 0; i < n; i++ {
			li := l.Row(i)
			bi := b.Row(i)
			for k := 0; k < i; k++ {
				f := li[k]
				if f == 0 {
					continue
				}
				bk := b.Row(k)
				for j := range bi {
					bi[j] -= f * bk[j]
				}
			}
			inv := 1 / li[i]
			for j := range bi {
				bi[j] *= inv
			}
		}
	case side == Left && trans == Trans:
		// Backward substitution with Lᵀ (upper triangular).
		for i := n - 1; i >= 0; i-- {
			bi := b.Row(i)
			for k := i + 1; k < n; k++ {
				f := l.Data[k*l.Stride+i] // Lᵀ[i,k] = L[k,i]
				if f == 0 {
					continue
				}
				bk := b.Row(k)
				for j := range bi {
					bi[j] -= f * bk[j]
				}
			}
			inv := 1 / l.Data[i*l.Stride+i]
			for j := range bi {
				bi[j] *= inv
			}
		}
	case side == Right && trans == Trans:
		trsmUnbRT(n, l.Data, l.Stride, b.Data, b.Stride, b.Rows, b.Cols)
	default: // Right, NoTrans
		trsmUnbRN(n, l.Data, l.Stride, b.Data, b.Stride, b.Rows, b.Cols)
	}
}

// trsmUnbRT solves x·Lᵀ = b row-wise: x[j] = (b[j] − Σ_{k<j} x[k]·L[j,k]) / L[j,j].
// Operands arrive as raw (data, stride) so the parallel closure captures no
// *Matrix (keeps caller Views stack-allocated); the serial branch avoids
// even the closure allocation.
func trsmUnbRT(n int, lData []float64, lStride int, bData []float64, bStride, bRows, bCols int) {
	if MaxWorkers() <= 1 || bRows < parallelRows {
		trsmUnbRTRange(0, bRows, n, lData, lStride, bData, bStride, bCols)
		return
	}
	parFor(bRows, func(lo, hi int) {
		trsmUnbRTRange(lo, hi, n, lData, lStride, bData, bStride, bCols)
	})
}

func trsmUnbRTRange(lo, hi, n int, lData []float64, lStride int, bData []float64, bStride, bCols int) {
	for i := lo; i < hi; i++ {
		x := bData[i*bStride : i*bStride+bCols]
		for j := 0; j < n; j++ {
			lj := lData[j*lStride : j*lStride+j+1]
			s := x[j]
			for k := 0; k < j; k++ {
				s -= x[k] * lj[k]
			}
			x[j] = s / lj[j]
		}
	}
}

// trsmUnbRN solves x·L = b row-wise, backward over j using column j of L
// below the diagonal.
func trsmUnbRN(n int, lData []float64, lStride int, bData []float64, bStride, bRows, bCols int) {
	if MaxWorkers() <= 1 || bRows < parallelRows {
		trsmUnbRNRange(0, bRows, n, lData, lStride, bData, bStride, bCols)
		return
	}
	parFor(bRows, func(lo, hi int) {
		trsmUnbRNRange(lo, hi, n, lData, lStride, bData, bStride, bCols)
	})
}

func trsmUnbRNRange(lo, hi, n int, lData []float64, lStride int, bData []float64, bStride, bCols int) {
	for i := lo; i < hi; i++ {
		x := bData[i*bStride : i*bStride+bCols]
		for j := n - 1; j >= 0; j-- {
			s := x[j]
			for k := j + 1; k < n; k++ {
				s -= x[k] * lData[k*lStride+j]
			}
			x[j] = s / lData[j*lStride+j]
		}
	}
}

// Trmm computes B ← op(L)·B (side Left) or B ← B·op(L) (side Right) for a
// lower-triangular L, in place.
func Trmm(side Side, trans Transpose, l, b *Matrix) {
	n := l.Rows
	if l.Rows != l.Cols {
		panic("dense: trmm with non-square triangular factor")
	}
	switch {
	case side == Left && trans == NoTrans:
		if b.Rows != n {
			panic("dense: trmm shape mismatch")
		}
		for i := n - 1; i >= 0; i-- {
			li := l.Row(i)
			bi := b.Row(i)
			for j := range bi {
				bi[j] *= li[i]
			}
			for k := 0; k < i; k++ {
				f := li[k]
				if f == 0 {
					continue
				}
				bk := b.Row(k)
				for j := range bi {
					bi[j] += f * bk[j]
				}
			}
		}
	case side == Left && trans == Trans:
		if b.Rows != n {
			panic("dense: trmm shape mismatch")
		}
		for i := 0; i < n; i++ {
			bi := b.Row(i)
			for j := range bi {
				bi[j] *= l.Data[i*l.Stride+i]
			}
			for k := i + 1; k < n; k++ {
				f := l.Data[k*l.Stride+i]
				if f == 0 {
					continue
				}
				bk := b.Row(k)
				for j := range bi {
					bi[j] += f * bk[j]
				}
			}
		}
	case side == Right && trans == NoTrans:
		if b.Cols != n {
			panic("dense: trmm shape mismatch")
		}
		parFor(b.Rows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := b.Row(i)
				for j := 0; j < n; j++ {
					var s float64
					for k := j; k < n; k++ {
						s += x[k] * l.Data[k*l.Stride+j]
					}
					x[j] = s
				}
			}
		})
	default: // Right, Trans: B ← B·Lᵀ
		if b.Cols != n {
			panic("dense: trmm shape mismatch")
		}
		parFor(b.Rows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := b.Row(i)
				for j := n - 1; j >= 0; j-- {
					lj := l.Row(j)
					var s float64
					for k := 0; k <= j; k++ {
						s += x[k] * lj[k]
					}
					x[j] = s
				}
			}
		})
	}
}

// Gemv computes y = alpha*op(A)*x + beta*y.
func Gemv(trans Transpose, alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	m, n := a.Rows, a.Cols
	if trans == Trans {
		m, n = n, m
	}
	if len(x) < n || len(y) < m {
		panic(fmt.Sprintf("dense: gemv shape mismatch A=%d×%d len(x)=%d len(y)=%d trans=%v",
			a.Rows, a.Cols, len(x), len(y), trans))
	}
	if beta != 1 {
		for i := 0; i < m; i++ {
			y[i] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	if trans == NoTrans {
		aData, aStride, aCols := a.Data, a.Stride, a.Cols
		if MaxWorkers() <= 1 || m < parallelRows {
			gemvRows(0, m, alpha, aData, aStride, aCols, x, y)
			return
		}
		parFor(m, func(lo, hi int) {
			gemvRows(lo, hi, alpha, aData, aStride, aCols, x, y)
		})
		return
	}
	for k := 0; k < a.Rows; k++ {
		f := alpha * x[k]
		if f == 0 {
			continue
		}
		row := a.Row(k)
		for j, v := range row {
			y[j] += f * v
		}
	}
}

// gemvRows accumulates y[i] += alpha·(A row i · x) over the row range.
func gemvRows(lo, hi int, alpha float64, aData []float64, aStride, aCols int, x, y []float64) {
	for i := lo; i < hi; i++ {
		row := aData[i*aStride : i*aStride+aCols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] += alpha * s
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("dense: dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("dense: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Nrm2 returns the Euclidean norm of x.
func Nrm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
