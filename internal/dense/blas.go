package dense

import (
	"fmt"
	"math"
)

// Transpose flags for Gemm/Syrk.
type Transpose bool

const (
	NoTrans Transpose = false
	Trans   Transpose = true
)

// Side selects the triangular operand's side in Trsm.
type Side int

const (
	Left Side = iota
	Right
)

// Gemm computes C = alpha*op(A)*op(B) + beta*C, where op is identity or
// transpose per the flags. Shapes must conform; C must not alias A or B.
func Gemm(transA, transB Transpose, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	am, ak := a.Rows, a.Cols
	if transA == Trans {
		am, ak = a.Cols, a.Rows
	}
	bk, bn := b.Rows, b.Cols
	if transB == Trans {
		bk, bn = b.Cols, b.Rows
	}
	if ak != bk || c.Rows != am || c.Cols != bn {
		panic(fmt.Sprintf("dense: gemm shape mismatch op(A)=%d×%d op(B)=%d×%d C=%d×%d",
			am, ak, bk, bn, c.Rows, c.Cols))
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			c.Scale(beta)
		}
	}
	if alpha == 0 || am == 0 || bn == 0 || ak == 0 {
		return
	}
	switch {
	case transA == NoTrans && transB == NoTrans:
		gemmNN(alpha, a, b, c)
	case transA == NoTrans && transB == Trans:
		gemmNT(alpha, a, b, c)
	case transA == Trans && transB == NoTrans:
		gemmTN(alpha, a, b, c)
	default:
		gemmTT(alpha, a, b, c)
	}
}

// gemmNN: C += alpha * A*B. i-k-j loop order is cache-friendly row-major.
func gemmNN(alpha float64, a, b, c *Matrix) {
	parFor(c.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow, crow := a.Row(i), c.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				s := alpha * av
				brow := b.Row(k)
				for j, bv := range brow {
					crow[j] += s * bv
				}
			}
		}
	})
}

// gemmNT: C += alpha * A*Bᵀ. C[i,j] = dot(A row i, B row j).
func gemmNT(alpha float64, a, b, c *Matrix) {
	parFor(c.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow, crow := a.Row(i), c.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var s float64
				for k, av := range arow {
					s += av * brow[k]
				}
				crow[j] += alpha * s
			}
		}
	})
}

// gemmTN: C += alpha * Aᵀ*B. k-outer saxpy form.
func gemmTN(alpha float64, a, b, c *Matrix) {
	// Parallelizing over C rows (columns of A) requires strided reads of A;
	// instead split the k loop range per worker into private accumulation when
	// parallel — simpler: parallelize over C rows with strided A access.
	parFor(c.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := c.Row(i)
			for k := 0; k < a.Rows; k++ {
				av := a.Data[k*a.Stride+i]
				if av == 0 {
					continue
				}
				s := alpha * av
				brow := b.Row(k)
				for j, bv := range brow {
					crow[j] += s * bv
				}
			}
		}
	})
}

// gemmTT: C += alpha * Aᵀ*Bᵀ. Rare; computed via explicit strided dots.
func gemmTT(alpha float64, a, b, c *Matrix) {
	parFor(c.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := c.Row(i)
			for j := 0; j < c.Cols; j++ {
				brow := b.Row(j)
				var s float64
				for k := 0; k < a.Rows; k++ {
					s += a.Data[k*a.Stride+i] * brow[k]
				}
				crow[j] += alpha * s
			}
		}
	})
}

// MatMul returns op(A)*op(B) as a fresh matrix (convenience for tests and
// non-hot paths).
func MatMul(transA, transB Transpose, a, b *Matrix) *Matrix {
	am := a.Rows
	if transA == Trans {
		am = a.Cols
	}
	bn := b.Cols
	if transB == Trans {
		bn = b.Rows
	}
	c := New(am, bn)
	Gemm(transA, transB, 1, a, b, 0, c)
	return c
}

// Syrk computes the lower triangle of C = alpha*op(A)*op(A)ᵀ + beta*C.
// With trans == NoTrans, op(A) = A (C is a.Rows×a.Rows); with Trans,
// op(A) = Aᵀ (C is a.Cols×a.Cols). Only the lower triangle of C is
// referenced and written.
func Syrk(trans Transpose, alpha float64, a *Matrix, beta float64, c *Matrix) {
	n := a.Rows
	if trans == Trans {
		n = a.Cols
	}
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("dense: syrk shape mismatch C=%d×%d want %d×%d", c.Rows, c.Cols, n, n))
	}
	if beta != 1 {
		for i := 0; i < n; i++ {
			row := c.Row(i)
			for j := 0; j <= i; j++ {
				row[j] *= beta
			}
		}
	}
	if alpha == 0 {
		return
	}
	if trans == NoTrans {
		parFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				arow, crow := a.Row(i), c.Row(i)
				for j := 0; j <= i; j++ {
					brow := a.Row(j)
					var s float64
					for k, av := range arow {
						s += av * brow[k]
					}
					crow[j] += alpha * s
				}
			}
		})
		return
	}
	// Trans: C += alpha * AᵀA, lower triangle. k-outer accumulation.
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		for i := 0; i < n; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			s := alpha * av
			crow := c.Row(i)
			for j := 0; j <= i; j++ {
				crow[j] += s * arow[j]
			}
		}
	}
}

// Trsm solves a triangular system with a lower-triangular L in place of B:
//
//	Left,  NoTrans: B ← L⁻¹ B
//	Left,  Trans:   B ← L⁻ᵀ B
//	Right, NoTrans: B ← B L⁻¹
//	Right, Trans:   B ← B L⁻ᵀ
//
// Only the lower triangle of L is referenced. Unit-diagonal systems are not
// needed by the BTA solvers and are not supported.
func Trsm(side Side, trans Transpose, l, b *Matrix) {
	if l.Rows != l.Cols {
		panic("dense: trsm with non-square triangular factor")
	}
	n := l.Rows
	if side == Left && b.Rows != n || side == Right && b.Cols != n {
		panic(fmt.Sprintf("dense: trsm shape mismatch L=%d×%d B=%d×%d side=%d", l.Rows, l.Cols, b.Rows, b.Cols, side))
	}
	switch {
	case side == Left && trans == NoTrans:
		// Forward substitution over block rows; columns are independent.
		for i := 0; i < n; i++ {
			li := l.Row(i)
			bi := b.Row(i)
			for k := 0; k < i; k++ {
				f := li[k]
				if f == 0 {
					continue
				}
				bk := b.Row(k)
				for j := range bi {
					bi[j] -= f * bk[j]
				}
			}
			inv := 1 / li[i]
			for j := range bi {
				bi[j] *= inv
			}
		}
	case side == Left && trans == Trans:
		// Backward substitution with Lᵀ (upper triangular).
		for i := n - 1; i >= 0; i-- {
			bi := b.Row(i)
			for k := i + 1; k < n; k++ {
				f := l.Data[k*l.Stride+i] // Lᵀ[i,k] = L[k,i]
				if f == 0 {
					continue
				}
				bk := b.Row(k)
				for j := range bi {
					bi[j] -= f * bk[j]
				}
			}
			inv := 1 / l.Data[i*l.Stride+i]
			for j := range bi {
				bi[j] *= inv
			}
		}
	case side == Right && trans == Trans:
		// Row-wise: x Lᵀ = b ⇒ x[j] = (b[j] − Σ_{k<j} x[k] L[j,k]) / L[j,j].
		parFor(b.Rows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := b.Row(i)
				for j := 0; j < n; j++ {
					lj := l.Row(j)
					s := x[j]
					for k := 0; k < j; k++ {
						s -= x[k] * lj[k]
					}
					x[j] = s / lj[j]
				}
			}
		})
	default: // Right, NoTrans
		// Row-wise: x L = b ⇒ backward over j using column j of L below j.
		parFor(b.Rows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := b.Row(i)
				for j := n - 1; j >= 0; j-- {
					s := x[j]
					for k := j + 1; k < n; k++ {
						s -= x[k] * l.Data[k*l.Stride+j]
					}
					x[j] = s / l.Data[j*l.Stride+j]
				}
			}
		})
	}
}

// Trmm computes B ← op(L)·B (side Left) or B ← B·op(L) (side Right) for a
// lower-triangular L, in place.
func Trmm(side Side, trans Transpose, l, b *Matrix) {
	n := l.Rows
	if l.Rows != l.Cols {
		panic("dense: trmm with non-square triangular factor")
	}
	switch {
	case side == Left && trans == NoTrans:
		if b.Rows != n {
			panic("dense: trmm shape mismatch")
		}
		for i := n - 1; i >= 0; i-- {
			li := l.Row(i)
			bi := b.Row(i)
			for j := range bi {
				bi[j] *= li[i]
			}
			for k := 0; k < i; k++ {
				f := li[k]
				if f == 0 {
					continue
				}
				bk := b.Row(k)
				for j := range bi {
					bi[j] += f * bk[j]
				}
			}
		}
	case side == Left && trans == Trans:
		if b.Rows != n {
			panic("dense: trmm shape mismatch")
		}
		for i := 0; i < n; i++ {
			bi := b.Row(i)
			for j := range bi {
				bi[j] *= l.Data[i*l.Stride+i]
			}
			for k := i + 1; k < n; k++ {
				f := l.Data[k*l.Stride+i]
				if f == 0 {
					continue
				}
				bk := b.Row(k)
				for j := range bi {
					bi[j] += f * bk[j]
				}
			}
		}
	case side == Right && trans == NoTrans:
		if b.Cols != n {
			panic("dense: trmm shape mismatch")
		}
		parFor(b.Rows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := b.Row(i)
				for j := 0; j < n; j++ {
					var s float64
					for k := j; k < n; k++ {
						s += x[k] * l.Data[k*l.Stride+j]
					}
					x[j] = s
				}
			}
		})
	default: // Right, Trans: B ← B·Lᵀ
		if b.Cols != n {
			panic("dense: trmm shape mismatch")
		}
		parFor(b.Rows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := b.Row(i)
				for j := n - 1; j >= 0; j-- {
					lj := l.Row(j)
					var s float64
					for k := 0; k <= j; k++ {
						s += x[k] * lj[k]
					}
					x[j] = s
				}
			}
		})
	}
}

// Gemv computes y = alpha*op(A)*x + beta*y.
func Gemv(trans Transpose, alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	m, n := a.Rows, a.Cols
	if trans == Trans {
		m, n = n, m
	}
	if len(x) < n || len(y) < m {
		panic(fmt.Sprintf("dense: gemv shape mismatch A=%d×%d len(x)=%d len(y)=%d trans=%v",
			a.Rows, a.Cols, len(x), len(y), trans))
	}
	if beta != 1 {
		for i := 0; i < m; i++ {
			y[i] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	if trans == NoTrans {
		parFor(m, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := a.Row(i)
				var s float64
				for j, v := range row {
					s += v * x[j]
				}
				y[i] += alpha * s
			}
		})
		return
	}
	for k := 0; k < a.Rows; k++ {
		f := alpha * x[k]
		if f == 0 {
			continue
		}
		row := a.Row(k)
		for j, v := range row {
			y[j] += f * v
		}
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("dense: dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("dense: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Nrm2 returns the Euclidean norm of x.
func Nrm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
