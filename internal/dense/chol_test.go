package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPotrfReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, n := range []int{1, 2, 3, 7, 16, 33, 65, 130} {
		a := randSPD(rng, n)
		l, err := Chol(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := naiveMul(l, l.T())
		if !rec.Equal(a, 1e-9*float64(n)) {
			t.Fatalf("n=%d: LLᵀ does not reconstruct A (maxerr path)", n)
		}
	}
}

func TestPotrfRejectsIndefinite(t *testing.T) {
	a := Eye(3)
	a.Set(1, 1, -1)
	if _, err := Chol(a); err != ErrNotPositiveDefinite {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
}

func TestPotrfRejectsNonSquare(t *testing.T) {
	if err := Potrf(New(2, 3)); err == nil {
		t.Fatal("non-square Potrf must error")
	}
}

func TestPotrfRejectsNaN(t *testing.T) {
	a := Eye(2)
	a.Set(0, 0, math.NaN())
	if err := Potrf(a); err != ErrNotPositiveDefinite {
		t.Fatalf("NaN pivot: got %v", err)
	}
}

func TestPotrsSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randSPD(rng, 12)
	l, err := Chol(a)
	if err != nil {
		t.Fatal(err)
	}
	b := randMat(rng, 12, 3)
	x := b.Clone()
	Potrs(l, x)
	if !naiveMul(a, x).Equal(b, 1e-8) {
		t.Fatal("Potrs residual too large")
	}
}

func TestPotrsVecAndSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randSPD(rng, 9)
	b := make([]float64, 9)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, 9)
	Gemv(NoTrans, 1, a, x, 0, r)
	Axpy(-1, b, r)
	if Nrm2(r) > 1e-9 {
		t.Fatalf("Solve residual %v", Nrm2(r))
	}
}

func TestLogDetFromChol(t *testing.T) {
	// Diagonal matrix: log|A| = Σ log a_ii.
	a := New(4, 4)
	want := 0.0
	for i := 0; i < 4; i++ {
		v := float64(i + 2)
		a.Set(i, i, v)
		want += math.Log(v)
	}
	l, err := Chol(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := LogDetFromChol(l) - want; math.Abs(d) > 1e-12 {
		t.Fatalf("logdet err %v", d)
	}
}

func TestTrtri(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	l := randLower(rng, 10)
	li := l.Clone()
	if err := Trtri(li); err != nil {
		t.Fatal(err)
	}
	if !naiveMul(l, li).Equal(Eye(10), 1e-9) {
		t.Fatal("L·L⁻¹ != I")
	}
}

func TestTrtriSingular(t *testing.T) {
	l := Eye(3)
	l.Set(1, 1, 0)
	if err := Trtri(l); err == nil {
		t.Fatal("singular Trtri must error")
	}
	if err := Trtri(New(2, 3)); err == nil {
		t.Fatal("non-square Trtri must error")
	}
}

func TestPotriAndInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	a := randSPD(rng, 8)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !naiveMul(a, inv).Equal(Eye(8), 1e-8) {
		t.Fatal("A·A⁻¹ != I")
	}
	// Inverse must be symmetric.
	for i := 0; i < 8; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(inv.At(i, j)-inv.At(j, i)) > 1e-12 {
				t.Fatal("inverse not symmetric")
			}
		}
	}
}

// Property: for any random G, A = GGᵀ + (n+1)·I is SPD and chol reconstructs
// it. Exercised through testing/quick with a seed-driven generator.
func TestQuickCholeskyReconstruction(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%24) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randSPD(rng, n)
		l, err := Chol(a)
		if err != nil {
			return false
		}
		return naiveMul(l, l.T()).Equal(a, 1e-8*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: log|A| from the Cholesky diagonal matches the product of
// eigenvalue-free identity on diagonal matrices scaled by random rotations is
// hard without eig; instead verify log|cA| = log|A| + n·log c.
func TestQuickLogDetScaling(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%16) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randSPD(rng, n)
		c := 1.5 + rng.Float64()
		la, err1 := Chol(a)
		as := a.Clone()
		as.Scale(c)
		lb, err2 := Chol(as)
		if err1 != nil || err2 != nil {
			return false
		}
		want := LogDetFromChol(la) + float64(n)*math.Log(c)
		return math.Abs(LogDetFromChol(lb)-want) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Trsm then Trmm round-trips arbitrary right-hand sides for all
// four side/transpose combinations.
func TestQuickTrsmRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8, side bool, trans bool) bool {
		n := int(sz%12) + 1
		rng := rand.New(rand.NewSource(seed))
		l := randLower(rng, n)
		var b *Matrix
		s := Left
		if side {
			s = Right
		}
		tr := NoTrans
		if trans {
			tr = Trans
		}
		if s == Left {
			b = randMat(rng, n, 3)
		} else {
			b = randMat(rng, 3, n)
		}
		orig := b.Clone()
		Trsm(s, tr, l, b)
		Trmm(s, tr, l, b)
		return b.Equal(orig, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The GEMM/POTRF GFLOP/s benchmarks (packed engine vs the retained naive
// reference) live in kernel_test.go.
