package dense

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization meets a
// non-positive pivot. In the INLA loop this signals an infeasible
// hyperparameter configuration; callers back off rather than abort.
var ErrNotPositiveDefinite = errors.New("dense: matrix is not positive definite")

// potrfBlock is the panel width of the blocked Cholesky. 64 balances
// level-3 content against cache residency for float64 on commodity CPUs.
const potrfBlock = 64

// Potrf overwrites the lower triangle of a with its Cholesky factor L such
// that A = L·Lᵀ. The strict upper triangle is left untouched (callers that
// need a clean factor use ZeroUpper). Returns ErrNotPositiveDefinite when a
// pivot is ≤ 0 or NaN.
func Potrf(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("dense: potrf of non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	for j := 0; j < n; j += potrfBlock {
		bw := potrfBlock
		if j+bw > n {
			bw = n - j
		}
		d := a.View(j, j, bw, bw)
		if j > 0 {
			// Trailing update of the panel from already-factored columns:
			// D ← D − P·Pᵀ, R ← R − Q·Pᵀ.
			p := a.View(j, 0, bw, j)
			Syrk(NoTrans, -1, p, 1, d)
			if rem := n - j - bw; rem > 0 {
				q := a.View(j+bw, 0, rem, j)
				r := a.View(j+bw, j, rem, bw)
				Gemm(NoTrans, Trans, -1, q, p, 1, r)
			}
		}
		if err := potf2(d); err != nil {
			return err
		}
		if rem := n - j - bw; rem > 0 {
			r := a.View(j+bw, j, rem, bw)
			Trsm(Right, Trans, d, r)
		}
	}
	return nil
}

// potf2 is the unblocked lower Cholesky used on diagonal panels.
func potf2(a *Matrix) error {
	n := a.Rows
	for j := 0; j < n; j++ {
		row := a.Row(j)
		s := row[j]
		for k := 0; k < j; k++ {
			s -= row[k] * row[k]
		}
		if s <= 0 || math.IsNaN(s) {
			return ErrNotPositiveDefinite
		}
		d := math.Sqrt(s)
		row[j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			ri := a.Row(i)
			s := ri[j]
			for k := 0; k < j; k++ {
				s -= ri[k] * row[k]
			}
			ri[j] = s * inv
		}
	}
	return nil
}

// Chol computes and returns the Cholesky factor of a as a fresh matrix with
// a zeroed upper triangle, leaving a untouched.
func Chol(a *Matrix) (*Matrix, error) {
	l := a.Clone()
	if err := Potrf(l); err != nil {
		return nil, err
	}
	l.ZeroUpper()
	return l, nil
}

// Potrs solves A·X = B in place of B given the Cholesky factor L of A
// (forward then backward substitution).
func Potrs(l, b *Matrix) {
	Trsm(Left, NoTrans, l, b)
	Trsm(Left, Trans, l, b)
}

// PotrsVec solves A·x = b in place of b given the Cholesky factor L of A.
func PotrsVec(l *Matrix, b []float64) {
	bm := &Matrix{Rows: len(b), Cols: 1, Stride: 1, Data: b}
	Potrs(l, bm)
}

// LogDetFromChol returns log|A| = 2·Σ log L_ii given the Cholesky factor L.
func LogDetFromChol(l *Matrix) float64 {
	var s float64
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.Data[i*l.Stride+i])
	}
	return 2 * s
}

// Trtri inverts a lower-triangular matrix in place (unblocked; used on the
// small reduced systems and arrow tips only).
func Trtri(l *Matrix) error {
	n := l.Rows
	if n != l.Cols {
		return fmt.Errorf("dense: trtri of non-square %d×%d matrix", n, l.Cols)
	}
	for j := 0; j < n; j++ {
		d := l.Data[j*l.Stride+j]
		if d == 0 {
			return errors.New("dense: trtri singular diagonal")
		}
		l.Data[j*l.Stride+j] = 1 / d
		for i := j + 1; i < n; i++ {
			ri := l.Row(i)
			var s float64
			for k := j; k < i; k++ {
				s += ri[k] * l.Data[k*l.Stride+j]
			}
			ri[j] = -s / ri[i]
		}
	}
	return nil
}

// Potri computes the full inverse A⁻¹ (symmetric, both triangles filled)
// from the Cholesky factor L: A⁻¹ = L⁻ᵀ·L⁻¹.
func Potri(l *Matrix) (*Matrix, error) {
	li := l.Clone()
	li.ZeroUpper()
	if err := Trtri(li); err != nil {
		return nil, err
	}
	n := l.Rows
	inv := New(n, n)
	Gemm(Trans, NoTrans, 1, li, li, 0, inv)
	inv.Symmetrize()
	return inv, nil
}

// PotriInto computes A⁻¹ = L⁻ᵀ·L⁻¹ into dst without allocating, using tmp
// as triangular-inverse workspace. dst and tmp must both be n×n and distinct
// from each other and from l. This is the hot-path twin of Potri for the
// selected-inversion sweeps that run once per INLA θ-evaluation.
func PotriInto(dst, tmp, l *Matrix) error {
	tmp.CopyFrom(l)
	tmp.ZeroUpper()
	if err := Trtri(tmp); err != nil {
		return err
	}
	Gemm(Trans, NoTrans, 1, tmp, tmp, 0, dst)
	dst.Symmetrize()
	return nil
}

// Inverse returns A⁻¹ of a symmetric positive definite matrix.
func Inverse(a *Matrix) (*Matrix, error) {
	l, err := Chol(a)
	if err != nil {
		return nil, err
	}
	return Potri(l)
}

// Solve solves A·x = b for SPD A, returning a fresh solution vector.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	l, err := Chol(a)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	copy(x, b)
	PotrsVec(l, x)
	return x, nil
}
