package dense

// Register-blocked GEMM micro-kernel layer. The packed driver in pack.go
// feeds the micro-kernel MR×kc panels of op(A) and kc×NR panels of op(B);
// the kernel accumulates a full MR×NR tile of C held in registers:
//
//	C[r,j] += Σ_p a[p·MR+r] · b[p·NR+j]
//
// On amd64 with AVX2+FMA the kernel is hand-written assembly
// (kernel_amd64.s): the 4×8 tile lives in 8 YMM accumulators, each k step
// issuing 2 packed loads, 4 broadcasts and 8 FMAs. Elsewhere (or when the
// CPU lacks AVX2/FMA) the pure-Go kernel below is used.
const (
	// MR×NR is the register tile. 4×8 float64 = 8 YMM registers of
	// accumulator, leaving headroom for the two B vectors and the A
	// broadcast within the 16-register AVX file.
	MR = 4
	NR = 8
)

// ukernel points at the best micro-kernel for this CPU. The initializer is
// the portable Go kernel below (the default on every architecture);
// kernel_amd64.go's init swaps in the assembly kernel when AVX2+FMA are
// available. Building with -tags purego compiles the assembly out entirely
// — the portable-path configuration CI keeps green.
var ukernel func(k int, a, b []float64, c []float64, ldc int) = ukernelGo

// ukernelGo is the portable micro-kernel: C[r,j] += Σ_p a[p·MR+r]·b[p·NR+j]
// with the 4×8 accumulator tile in locals. It is the fallback on
// non-amd64 builds and CPUs without AVX2+FMA, and the reference the
// assembly kernel is tested against.
func ukernelGo(k int, a, b []float64, c []float64, ldc int) {
	var (
		c00, c01, c02, c03, c04, c05, c06, c07 float64
		c10, c11, c12, c13, c14, c15, c16, c17 float64
		c20, c21, c22, c23, c24, c25, c26, c27 float64
		c30, c31, c32, c33, c34, c35, c36, c37 float64
	)
	for p := 0; p < k; p++ {
		av := a[p*MR : p*MR+MR : p*MR+MR]
		bv := b[p*NR : p*NR+NR : p*NR+NR]
		a0, a1, a2, a3 := av[0], av[1], av[2], av[3]
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		b4, b5, b6, b7 := bv[4], bv[5], bv[6], bv[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c04 += a0 * b4
		c05 += a0 * b5
		c06 += a0 * b6
		c07 += a0 * b7
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c14 += a1 * b4
		c15 += a1 * b5
		c16 += a1 * b6
		c17 += a1 * b7
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c24 += a2 * b4
		c25 += a2 * b5
		c26 += a2 * b6
		c27 += a2 * b7
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		c34 += a3 * b4
		c35 += a3 * b5
		c36 += a3 * b6
		c37 += a3 * b7
	}
	r := c[0:NR:NR]
	r[0] += c00
	r[1] += c01
	r[2] += c02
	r[3] += c03
	r[4] += c04
	r[5] += c05
	r[6] += c06
	r[7] += c07
	r = c[ldc : ldc+NR : ldc+NR]
	r[0] += c10
	r[1] += c11
	r[2] += c12
	r[3] += c13
	r[4] += c14
	r[5] += c15
	r[6] += c16
	r[7] += c17
	r = c[2*ldc : 2*ldc+NR : 2*ldc+NR]
	r[0] += c20
	r[1] += c21
	r[2] += c22
	r[3] += c23
	r[4] += c24
	r[5] += c25
	r[6] += c26
	r[7] += c27
	r = c[3*ldc : 3*ldc+NR : 3*ldc+NR]
	r[0] += c30
	r[1] += c31
	r[2] += c32
	r[3] += c33
	r[4] += c34
	r[5] += c35
	r[6] += c36
	r[7] += c37
}
