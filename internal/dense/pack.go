package dense

import "sync"

// Cache blocking parameters of the packed GEMM driver (GotoBLAS scheme):
// op(B) is packed once per (kc×nc) panel and streamed from L2/L3; each
// worker packs its own (mc×kc) panel of op(A) into L2; the micro-kernel
// then runs MR×NR register tiles over the packed panels.
const (
	kcBlock = 256 // depth of one packed panel pair (L1 residency of the micro-panels)
	mcBlock = 128 // rows of op(A) per packed A panel (multiple of MR)
	ncBlock = 512 // cols of op(B) per packed B panel (multiple of NR)
)

// Packing buffers are recycled through sync.Pools so steady-state GEMM
// calls perform zero heap allocations. The A buffer carries MR·NR extra
// trailing elements used as the edge-tile scratch (kept out of the stack so
// the indirect micro-kernel call cannot force a heap escape per call).
var packAPool = sync.Pool{New: func() any {
	s := make([]float64, mcBlock*kcBlock+MR*NR)
	return &s
}}

var packBPool = sync.Pool{New: func() any {
	s := make([]float64, kcBlock*ncBlock)
	return &s
}}

// packPanelsA packs op(A)[i0:i0+mcb, p0:p0+kcb] into MR-interleaved
// micro-panels: panel ip holds rows [ip,ip+MR) k-major, so the micro-kernel
// reads MR consecutive values per k step. Rows beyond mcb are zero-padded;
// alpha is folded in here so the kernel needs no epilogue scaling.
// A is passed as raw (data, stride) so parallel closures upstream never
// capture a *Matrix — keeping caller-side Views stack-allocated.
func packPanelsA(dst []float64, trans Transpose, aData []float64, aStride, i0, p0, mcb, kcb int, alpha float64) {
	for ip := 0; ip < mcb; ip += MR {
		h := MR
		if ip+h > mcb {
			h = mcb - ip
		}
		panel := dst[(ip/MR)*MR*kcb:]
		if trans == NoTrans {
			for r := 0; r < h; r++ {
				src := aData[(i0+ip+r)*aStride+p0 : (i0+ip+r)*aStride+p0+kcb]
				for p, v := range src {
					panel[p*MR+r] = alpha * v
				}
			}
		} else {
			for p := 0; p < kcb; p++ {
				src := aData[(p0+p)*aStride+i0+ip : (p0+p)*aStride+i0+ip+h]
				d := panel[p*MR : p*MR+MR]
				for r, v := range src {
					d[r] = alpha * v
				}
			}
		}
		if h < MR {
			for p := 0; p < kcb; p++ {
				d := panel[p*MR : p*MR+MR]
				for r := h; r < MR; r++ {
					d[r] = 0
				}
			}
		}
	}
}

// packPanelsB packs op(B)[p0:p0+kcb, j0:j0+ncb] into NR-interleaved
// micro-panels: panel jp holds columns [jp,jp+NR) k-major. Columns beyond
// ncb are zero-padded.
func packPanelsB(dst []float64, trans Transpose, bData []float64, bStride, p0, j0, kcb, ncb int) {
	for jp := 0; jp < ncb; jp += NR {
		w := NR
		if jp+w > ncb {
			w = ncb - jp
		}
		panel := dst[(jp/NR)*NR*kcb:]
		if trans == NoTrans {
			for p := 0; p < kcb; p++ {
				src := bData[(p0+p)*bStride+j0+jp : (p0+p)*bStride+j0+jp+w]
				d := panel[p*NR : p*NR+NR]
				copy(d, src)
				for j := w; j < NR; j++ {
					d[j] = 0
				}
			}
		} else {
			if w < NR {
				for p := 0; p < kcb; p++ {
					d := panel[p*NR+w : p*NR+NR]
					for j := range d {
						d[j] = 0
					}
				}
			}
			for j := 0; j < w; j++ {
				src := bData[(j0+jp+j)*bStride+p0 : (j0+jp+j)*bStride+p0+kcb]
				for p, v := range src {
					panel[p*NR+j] = v
				}
			}
		}
	}
}

// macroKernel sweeps the register tiles of one (mcb×ncb) block of C over
// the packed panels. cData points at the (0,0) element of the C block, with
// row stride ldc. Full MR×NR tiles hit C directly; edge tiles go through
// the zero-padded scratch tile and only the valid region is accumulated.
func macroKernel(mcb, ncb, kcb int, aPan, bPan, tile, cData []float64, ldc int) {
	for jp := 0; jp < ncb; jp += NR {
		w := NR
		if jp+w > ncb {
			w = ncb - jp
		}
		bp := bPan[(jp/NR)*NR*kcb:]
		for ip := 0; ip < mcb; ip += MR {
			h := MR
			if ip+h > mcb {
				h = mcb - ip
			}
			ap := aPan[(ip/MR)*MR*kcb:]
			if h == MR && w == NR {
				ukernel(kcb, ap, bp, cData[ip*ldc+jp:], ldc)
				continue
			}
			for i := range tile[:MR*NR] {
				tile[i] = 0
			}
			ukernel(kcb, ap, bp, tile, NR)
			for r := 0; r < h; r++ {
				crow := cData[(ip+r)*ldc+jp : (ip+r)*ldc+jp+w]
				trow := tile[r*NR : r*NR+w]
				for j, v := range trow {
					crow[j] += v
				}
			}
		}
	}
}

// gemmPacked computes C += alpha·op(A)·op(B) through the packed micro-kernel
// engine. Parallelism is over mc-sized macro-tiles of C rows: the packed B
// panel is shared read-only, each worker packs its own A panel. Matrix
// operands are unwrapped to (data, stride) immediately: the goroutine
// closures below must never capture a *Matrix, or escape analysis would
// heap-allocate every View the blocked Potrf/Trsm/Syrk callers pass in.
func gemmPacked(transA, transB Transpose, alpha float64, a, b, c *Matrix) {
	m, n := c.Rows, c.Cols
	k := a.Cols
	if transA == Trans {
		k = a.Rows
	}
	aData, aStride := a.Data, a.Stride
	bData, bStride := b.Data, b.Stride
	cData, cStride := c.Data, c.Stride
	bBufP := packBPool.Get().(*[]float64)
	bBuf := *bBufP
	for jc := 0; jc < n; jc += ncBlock {
		ncb := min(ncBlock, n-jc)
		for pc := 0; pc < k; pc += kcBlock {
			kcb := min(kcBlock, k-pc)
			packPanelsB(bBuf, transB, bData, bStride, pc, jc, kcb, ncb)
			nTiles := (m + mcBlock - 1) / mcBlock
			if MaxWorkers() <= 1 || nTiles < 2 {
				// Serial fast path: no closure, zero per-call allocations.
				gemmTileRange(0, nTiles, transA, alpha, aData, aStride, cData, cStride, bBuf, m, pc, jc, kcb, ncb)
			} else {
				gemmTilesParallel(nTiles, transA, alpha, aData, aStride, cData, cStride, bBuf, m, pc, jc, kcb, ncb)
			}
		}
	}
	packBPool.Put(bBufP)
}

// gemmTilesParallel fans the macro-tile sweep out across workers. It lives
// in its own function so the closure (and the heap moves of its captures)
// only exists when parallelism is actually used — the serial path in
// gemmPacked must stay allocation-free.
func gemmTilesParallel(nTiles int, transA Transpose, alpha float64, aData []float64, aStride int, cData []float64, cStride int, bBuf []float64, m, pc, jc, kcb, ncb int) {
	parForTiles(nTiles, func(t0, t1 int) {
		gemmTileRange(t0, t1, transA, alpha, aData, aStride, cData, cStride, bBuf, m, pc, jc, kcb, ncb)
	})
}

// gemmTileRange processes macro-tiles [t0,t1) of C rows against the shared
// packed B panel: pack the worker-private A panel, run the macro-kernel.
func gemmTileRange(t0, t1 int, transA Transpose, alpha float64, aData []float64, aStride int, cData []float64, cStride int, bBuf []float64, m, pc, jc, kcb, ncb int) {
	aBufP := packAPool.Get().(*[]float64)
	aBuf := *aBufP
	tile := aBuf[mcBlock*kcBlock:]
	for t := t0; t < t1; t++ {
		ic := t * mcBlock
		mcb := min(mcBlock, m-ic)
		packPanelsA(aBuf, transA, aData, aStride, ic, pc, mcb, kcb, alpha)
		macroKernel(mcb, ncb, kcb, aBuf, bBuf, tile, cData[ic*cStride+jc:], cStride)
	}
	packAPool.Put(aBufP)
}
