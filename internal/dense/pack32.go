package dense

import "sync"

// Float32 packing layer — the single-precision twin of pack.go. The cache
// blocking parameters (kcBlock/mcBlock/ncBlock) are shared with the fp64
// engine: halving the element size doubles the panel capacity headroom in
// each cache level, so the fp64-tuned blocks remain safely resident. The
// fp32 panels are MR32/NR32-interleaved for the 8×8 micro-kernel.

// Pack buffers are recycled through sync.Pools so steady-state Gemm32 calls
// perform zero heap allocations; the A buffer carries an MR32·NR32 scratch
// tail for edge tiles, exactly like the fp64 pool.
var packA32Pool = sync.Pool{New: func() any {
	s := make([]float32, mcBlock*kcBlock+MR32*NR32)
	return &s
}}

var packB32Pool = sync.Pool{New: func() any {
	s := make([]float32, kcBlock*ncBlock)
	return &s
}}

// packPanelsA32 packs op(A)[i0:i0+mcb, p0:p0+kcb] into MR32-interleaved
// micro-panels with alpha folded in and zero-padded edge rows; see
// packPanelsA for the layout contract.
func packPanelsA32(dst []float32, trans Transpose, aData []float32, aStride, i0, p0, mcb, kcb int, alpha float32) {
	for ip := 0; ip < mcb; ip += MR32 {
		h := MR32
		if ip+h > mcb {
			h = mcb - ip
		}
		panel := dst[(ip/MR32)*MR32*kcb:]
		if trans == NoTrans {
			for r := 0; r < h; r++ {
				src := aData[(i0+ip+r)*aStride+p0 : (i0+ip+r)*aStride+p0+kcb]
				for p, v := range src {
					panel[p*MR32+r] = alpha * v
				}
			}
		} else {
			for p := 0; p < kcb; p++ {
				src := aData[(p0+p)*aStride+i0+ip : (p0+p)*aStride+i0+ip+h]
				d := panel[p*MR32 : p*MR32+MR32]
				for r, v := range src {
					d[r] = alpha * v
				}
			}
		}
		if h < MR32 {
			for p := 0; p < kcb; p++ {
				d := panel[p*MR32 : p*MR32+MR32]
				for r := h; r < MR32; r++ {
					d[r] = 0
				}
			}
		}
	}
}

// packPanelsB32 packs op(B)[p0:p0+kcb, j0:j0+ncb] into NR32-interleaved
// micro-panels with zero-padded edge columns.
func packPanelsB32(dst []float32, trans Transpose, bData []float32, bStride, p0, j0, kcb, ncb int) {
	for jp := 0; jp < ncb; jp += NR32 {
		w := NR32
		if jp+w > ncb {
			w = ncb - jp
		}
		panel := dst[(jp/NR32)*NR32*kcb:]
		if trans == NoTrans {
			for p := 0; p < kcb; p++ {
				src := bData[(p0+p)*bStride+j0+jp : (p0+p)*bStride+j0+jp+w]
				d := panel[p*NR32 : p*NR32+NR32]
				copy(d, src)
				for j := w; j < NR32; j++ {
					d[j] = 0
				}
			}
		} else {
			if w < NR32 {
				for p := 0; p < kcb; p++ {
					d := panel[p*NR32+w : p*NR32+NR32]
					for j := range d {
						d[j] = 0
					}
				}
			}
			for j := 0; j < w; j++ {
				src := bData[(j0+jp+j)*bStride+p0 : (j0+jp+j)*bStride+p0+kcb]
				for p, v := range src {
					panel[p*NR32+j] = v
				}
			}
		}
	}
}

// macroKernel32 sweeps the fp32 register tiles of one (mcb×ncb) block of C
// over the packed panels; full tiles hit C directly, edge tiles go through
// the zero-padded scratch tile.
func macroKernel32(mcb, ncb, kcb int, aPan, bPan, tile, cData []float32, ldc int) {
	for jp := 0; jp < ncb; jp += NR32 {
		w := NR32
		if jp+w > ncb {
			w = ncb - jp
		}
		bp := bPan[(jp/NR32)*NR32*kcb:]
		for ip := 0; ip < mcb; ip += MR32 {
			h := MR32
			if ip+h > mcb {
				h = mcb - ip
			}
			ap := aPan[(ip/MR32)*MR32*kcb:]
			if h == MR32 && w == NR32 {
				ukernel32(kcb, ap, bp, cData[ip*ldc+jp:], ldc)
				continue
			}
			for i := range tile[:MR32*NR32] {
				tile[i] = 0
			}
			ukernel32(kcb, ap, bp, tile, NR32)
			for r := 0; r < h; r++ {
				crow := cData[(ip+r)*ldc+jp : (ip+r)*ldc+jp+w]
				trow := tile[r*NR32 : r*NR32+w]
				for j, v := range trow {
					crow[j] += v
				}
			}
		}
	}
}

// gemmPacked32 computes C += alpha·op(A)·op(B) through the fp32 packed
// micro-kernel engine, with the same macro-tile parallel structure as
// gemmPacked: operands are unwrapped to (data, stride) immediately so the
// worker closures never capture a *Matrix32.
func gemmPacked32(transA, transB Transpose, alpha float32, a, b, c *Matrix32) {
	m, n := c.Rows, c.Cols
	k := a.Cols
	if transA == Trans {
		k = a.Rows
	}
	aData, aStride := a.Data, a.Stride
	bData, bStride := b.Data, b.Stride
	cData, cStride := c.Data, c.Stride
	bBufP := packB32Pool.Get().(*[]float32)
	bBuf := *bBufP
	for jc := 0; jc < n; jc += ncBlock {
		ncb := min(ncBlock, n-jc)
		for pc := 0; pc < k; pc += kcBlock {
			kcb := min(kcBlock, k-pc)
			packPanelsB32(bBuf, transB, bData, bStride, pc, jc, kcb, ncb)
			nTiles := (m + mcBlock - 1) / mcBlock
			if MaxWorkers() <= 1 || nTiles < 2 {
				// Serial fast path: no closure, zero per-call allocations.
				gemmTile32Range(0, nTiles, transA, alpha, aData, aStride, cData, cStride, bBuf, m, pc, jc, kcb, ncb)
			} else {
				gemmTiles32Parallel(nTiles, transA, alpha, aData, aStride, cData, cStride, bBuf, m, pc, jc, kcb, ncb)
			}
		}
	}
	packB32Pool.Put(bBufP)
}

// gemmTiles32Parallel fans the fp32 macro-tile sweep out across workers;
// isolated from gemmPacked32 so the closure only exists when parallelism is
// actually used.
func gemmTiles32Parallel(nTiles int, transA Transpose, alpha float32, aData []float32, aStride int, cData []float32, cStride int, bBuf []float32, m, pc, jc, kcb, ncb int) {
	parForTiles(nTiles, func(t0, t1 int) {
		gemmTile32Range(t0, t1, transA, alpha, aData, aStride, cData, cStride, bBuf, m, pc, jc, kcb, ncb)
	})
}

// gemmTile32Range processes macro-tiles [t0,t1) of C rows against the shared
// packed B panel.
func gemmTile32Range(t0, t1 int, transA Transpose, alpha float32, aData []float32, aStride int, cData []float32, cStride int, bBuf []float32, m, pc, jc, kcb, ncb int) {
	aBufP := packA32Pool.Get().(*[]float32)
	aBuf := *aBufP
	tile := aBuf[mcBlock*kcBlock:]
	for t := t0; t < t1; t++ {
		ic := t * mcBlock
		mcb := min(mcBlock, m-ic)
		packPanelsA32(aBuf, transA, aData, aStride, ic, pc, mcb, kcb, alpha)
		macroKernel32(mcb, ncb, kcb, aBuf, bBuf, tile, cData[ic*cStride+jc:], cStride)
	}
	packA32Pool.Put(aBufP)
}
