//go:build amd64 && !purego

package dense

// ukernel8x8asm is the AVX2+FMA fp32 micro-kernel (kernel32_amd64.s). a holds
// the packed MR32-interleaved panel of op(A), b the packed NR32-interleaved
// panel of op(B); the MR32×NR32 result tile is accumulated onto c with row
// stride ldc. CPU feature detection is shared with the fp64 kernel
// (hasAVX2FMA in kernel_amd64.go) — both kernels need exactly AVX2+FMA.
//
//go:noescape
func ukernel8x8asm(k int, a, b *float32, c *float32, ldc int)

func ukernel32AsmWrap(k int, a, b []float32, c []float32, ldc int) {
	if k == 0 {
		return // zero-depth panel: C is unchanged
	}
	ukernel8x8asm(k, &a[0], &b[0], &c[0], ldc)
}

func init() {
	if hasAVX2FMA() {
		ukernel32 = ukernel32AsmWrap
	}
}
