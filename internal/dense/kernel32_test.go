package dense

import (
	"math"
	"math/rand"
	"testing"
)

// TestMicroKernel32MatchesGo cross-checks the active fp32 micro-kernel
// (assembly on capable amd64 CPUs) against the portable Go kernel on random
// packed panels, including k == 0 and odd k (the unrolled tail path). The
// assembly kernel uses FMA while the Go kernel rounds the multiply and add
// separately, so the comparison is at accumulated-fp32-rounding tolerance,
// not bitwise.
func TestMicroKernel32MatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{0, 1, 2, 3, 7, 16, 33, 255, 256} {
		a := make([]float32, k*MR32)
		b := make([]float32, k*NR32)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}
		for i := range b {
			b[i] = float32(rng.NormFloat64())
		}
		ldc := NR32 + 3 // non-trivial stride
		want := make([]float32, MR32*ldc)
		got := make([]float32, MR32*ldc)
		for i := range want {
			v := float32(rng.NormFloat64())
			want[i] = v
			got[i] = v
		}
		ukernel32Go(k, a, b, want, ldc)
		ukernel32(k, a, b, got, ldc)
		for i := range want {
			w, g := float64(want[i]), float64(got[i])
			if math.Abs(w-g) > 1e-4*(1+math.Abs(w)) {
				t.Fatalf("k=%d: fp32 kernel mismatch at %d: got %g want %g", k, i, g, w)
			}
		}
	}
}

// TestGemm32MatchesFloat64 checks the full fp32 packed engine (including
// macro-tile edges and multiple kc panels) against a float64 reference on
// the same float32 inputs; the only difference is accumulation rounding.
func TestGemm32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		transA, transB Transpose
		m, n, k        int
	}{
		{NoTrans, NoTrans, 300, 300, 300}, // packed path, edge tiles, two kc panels
		{NoTrans, Trans, 260, 140, 300},
		{Trans, NoTrans, 140, 260, 300},
		{NoTrans, Trans, 20, 20, 8}, // small path
	} {
		ar, ac := tc.m, tc.k
		if tc.transA == Trans {
			ar, ac = tc.k, tc.m
		}
		br, bc := tc.k, tc.n
		if tc.transB == Trans {
			br, bc = tc.n, tc.k
		}
		a32, b32, c32 := New32(ar, ac), New32(br, bc), New32(tc.m, tc.n)
		a64, b64, c64 := New(ar, ac), New(br, bc), New(tc.m, tc.n)
		for i := range a32.Data {
			v := float32(rng.NormFloat64())
			a32.Data[i] = v
			a64.Data[i] = float64(v)
		}
		for i := range b32.Data {
			v := float32(rng.NormFloat64())
			b32.Data[i] = v
			b64.Data[i] = float64(v)
		}
		for i := range c32.Data {
			v := float32(rng.NormFloat64())
			c32.Data[i] = v
			c64.Data[i] = float64(v)
		}
		Gemm32(tc.transA, tc.transB, 1, a32, b32, 0.5, c32)
		Gemm(tc.transA, tc.transB, 1, a64, b64, 0.5, c64)
		for i := range c32.Data {
			w, g := c64.Data[i], float64(c32.Data[i])
			if math.Abs(w-g) > 2e-3*(1+math.Abs(w)) {
				t.Fatalf("%v/%v %dx%dx%d: gemm32 mismatch at %d: got %g want %g",
					tc.transA, tc.transB, tc.m, tc.n, tc.k, i, g, w)
			}
		}
	}
}

// TestSyrk32MatchesFloat64 checks the blocked fp32 Syrk (off-diagonal Gemm32
// panels + reference diagonal blocks) against the float64 Syrk.
func TestSyrk32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, trans := range []Transpose{NoTrans, Trans} {
		n, k := 150, 80
		ar, ac := n, k
		if trans == Trans {
			ar, ac = k, n
		}
		a32, a64 := New32(ar, ac), New(ar, ac)
		for i := range a32.Data {
			v := float32(rng.NormFloat64())
			a32.Data[i] = v
			a64.Data[i] = float64(v)
		}
		c32, c64 := New32(n, n), New(n, n)
		for i := range c32.Data {
			v := float32(rng.NormFloat64())
			c32.Data[i] = v
			c64.Data[i] = float64(v)
		}
		Syrk32(trans, -1, a32, 1, c32)
		Syrk(trans, -1, a64, 1, c64)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				w, g := c64.At(i, j), float64(c32.At(i, j))
				if math.Abs(w-g) > 1e-3*(1+math.Abs(w)) {
					t.Fatalf("trans=%v: syrk32 mismatch at (%d,%d): got %g want %g", trans, i, j, g, w)
				}
			}
		}
	}
}

// randLower32 builds a well-conditioned random lower-triangular factor.
func randLower32(rng *rand.Rand, n int) *Matrix32 {
	l := New32(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, float32(rng.NormFloat64()))
		}
		l.Set(i, i, float32(4+rng.Float64()))
	}
	return l
}

// TestTrsm32Residual verifies each blocked Trsm32 case by multiplying the
// solution back through op(L) in float64 and comparing to the original
// right-hand side.
func TestTrsm32Residual(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n, m := 150, 40 // n > trsmBlock so the blocked paths run
	l32 := randLower32(rng, n)
	l64 := New(n, n)
	l32.StoreFloat64(l64)
	for _, tc := range []struct {
		side  Side
		trans Transpose
	}{{Left, NoTrans}, {Left, Trans}, {Right, NoTrans}, {Right, Trans}} {
		br, bc := n, m
		if tc.side == Right {
			br, bc = m, n
		}
		b32 := New32(br, bc)
		b64 := New(br, bc)
		for i := range b32.Data {
			v := float32(rng.NormFloat64())
			b32.Data[i] = v
			b64.Data[i] = float64(v)
		}
		Trsm32(tc.side, tc.trans, l32, b32)
		// Reconstruct op(L)·X (or X·op(L)) in float64.
		x := New(br, bc)
		b32.StoreFloat64(x)
		back := New(br, bc)
		lowerOnly := l64.Clone()
		lowerOnly.ZeroUpper()
		if tc.side == Left {
			Gemm(tc.trans, NoTrans, 1, lowerOnly, x, 0, back)
		} else {
			Gemm(NoTrans, tc.trans, 1, x, lowerOnly, 0, back)
		}
		for i := range back.Data {
			w, g := b64.Data[i], back.Data[i]
			if math.Abs(w-g) > 1e-3*(1+math.Abs(w)) {
				t.Fatalf("side=%d trans=%v: trsm32 residual at %d: got %g want %g", tc.side, tc.trans, i, g, w)
			}
		}
	}
}

// TestPotrf32MatchesFloat64 factors a well-conditioned SPD matrix in both
// precisions and compares the factors.
func TestPotrf32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 150 // > potrfBlock so the blocked path runs
	g := New32(n, n)
	for i := range g.Data {
		g.Data[i] = float32(rng.NormFloat64())
	}
	spd32 := New32(n, n)
	Syrk32(NoTrans, 1, g, 0, spd32)
	spd32.MirrorLowerToUpper()
	for i := 0; i < n; i++ {
		spd32.Set(i, i, spd32.At(i, i)+float32(n))
	}
	spd64 := New(n, n)
	spd32.StoreFloat64(spd64)
	if err := Potrf32(spd32); err != nil {
		t.Fatal(err)
	}
	if err := Potrf(spd64); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			w, g := spd64.At(i, j), float64(spd32.At(i, j))
			if math.Abs(w-g) > 1e-3*(1+math.Abs(w)) {
				t.Fatalf("potrf32 mismatch at (%d,%d): got %g want %g", i, j, g, w)
			}
		}
	}
}

// TestPotrf32NotSPD: the fp32 Cholesky must report indefiniteness instead of
// producing NaNs — the mixed-precision BTA path relies on this error to fall
// back to the fp64 sweep.
func TestPotrf32NotSPD(t *testing.T) {
	a := New32(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	a.Set(2, 2, 1)
	if err := Potrf32(a); err != ErrNotPositiveDefinite {
		t.Fatalf("got %v, want ErrNotPositiveDefinite", err)
	}
}

// TestGemm32ZeroAllocSteadyState: after warm-up, repeated Gemm32 calls on
// the packed path recycle all packing buffers through the fp32 pools.
func TestGemm32ZeroAllocSteadyState(t *testing.T) {
	if RaceEnabled {
		t.Skip("race-mode sync.Pool drops Put items; alloc counts are meaningless")
	}
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	n := 192
	x := New32(n, n)
	y := New32(n, n)
	c := New32(n, n)
	for i := range x.Data {
		x.Data[i] = float32(i % 13)
		y.Data[i] = float32(i % 11)
	}
	Gemm32(NoTrans, NoTrans, 1, x, y, 0, c) // warm the pools
	allocs := testing.AllocsPerRun(20, func() {
		Gemm32(NoTrans, Trans, 1, x, y, 0.5, c)
	})
	if allocs != 0 {
		t.Fatalf("packed Gemm32 allocates %.1f objects per call in steady state, want 0", allocs)
	}
}

func benchGemm32(b *testing.B, n int) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(1))
	x := New32(n, n)
	y := New32(n, n)
	c := New32(n, n)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
		y.Data[i] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm32(NoTrans, NoTrans, 1, x, y, 0, c)
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkGemm32_256(b *testing.B)  { benchGemm32(b, 256) }
func BenchmarkGemm32_1024(b *testing.B) { benchGemm32(b, 1024) }
