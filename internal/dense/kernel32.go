package dense

// Float32 register-blocked GEMM micro-kernel layer — the single-precision
// twin of kernel.go. The packed driver in pack32.go feeds MR32×kc panels of
// op(A) and kc×NR32 panels of op(B); the kernel accumulates a full
// MR32×NR32 tile of C:
//
//	C[r,j] += Σ_p a[p·MR32+r] · b[p·NR32+j]
//
// On amd64 with AVX2+FMA the kernel is hand-written assembly
// (kernel32_amd64.s): the 8×8 float32 tile lives in 8 YMM accumulators —
// one full row per register — each k step issuing one packed load of b,
// eight broadcasts of a and eight FMAs. Each FMA moves 8 float32 lanes vs
// the fp64 kernel's 4, which is where the mixed-precision path's raw
// throughput win comes from.
const (
	// MR32×NR32 is the fp32 register tile: 8×8 float32 = 8 YMM registers
	// of accumulator (a whole row per register), leaving the B vector and
	// the A broadcast within the 16-register AVX file.
	MR32 = 8
	NR32 = 8
)

// ukernel32 points at the best fp32 micro-kernel for this CPU; the
// initializer is the portable Go kernel, kernel32_amd64.go's init swaps in
// the assembly kernel when AVX2+FMA are available. Building with
// -tags purego compiles the assembly out entirely.
var ukernel32 func(k int, a, b []float32, c []float32, ldc int) = ukernel32Go

// ukernel32Go is the portable fp32 micro-kernel and the reference the
// assembly kernel is tested against (TestMicroKernel32MatchesGo). The 8×8
// accumulator tile is held in eight row arrays so the compiler can keep the
// hot row in registers.
func ukernel32Go(k int, a, b []float32, c []float32, ldc int) {
	var acc [MR32][NR32]float32
	for p := 0; p < k; p++ {
		av := a[p*MR32 : p*MR32+MR32 : p*MR32+MR32]
		bv := b[p*NR32 : p*NR32+NR32 : p*NR32+NR32]
		for r := 0; r < MR32; r++ {
			ar := av[r]
			cr := &acc[r]
			for j := 0; j < NR32; j++ {
				cr[j] += ar * bv[j]
			}
		}
	}
	for r := 0; r < MR32; r++ {
		crow := c[r*ldc : r*ldc+NR32 : r*ldc+NR32]
		cr := &acc[r]
		for j := 0; j < NR32; j++ {
			crow[j] += cr[j]
		}
	}
}
