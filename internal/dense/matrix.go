// Package dense provides the dense linear-algebra kernels that back the
// block-structured solvers in this repository. It plays the role that
// cuBLAS/cuSOLVER play in the DALIA paper: all block operations of the
// BTA (block-tridiagonal-with-arrowhead) factorization, triangular solve
// and selected inversion reduce to the Level-3 kernels implemented here
// (GEMM, SYRK, TRSM) plus a blocked Cholesky (POTRF).
//
// Matrices are stored row-major with an explicit stride, so cheap
// rectangular views into larger buffers are possible without copying.
// Kernels are cache-blocked and, above a size threshold, split across
// goroutines (see parallel.go).
package dense

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix view. Element (i,j) lives at
// Data[i*Stride+j]. A Matrix may be a view into a larger buffer; Copy and
// Clone produce compact (Stride==Cols) matrices.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// New returns a zeroed r×c matrix with compact storage.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: negative dimension %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// NewFromData wraps an existing slice as an r×c matrix without copying.
// len(data) must be at least r*c.
func NewFromData(r, c int, data []float64) *Matrix {
	if len(data) < r*c {
		panic(fmt.Sprintf("dense: data length %d < %d*%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: data}
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*m.Stride+i] = 1
	}
	return m
}

// At returns element (i,j). Bounds are checked by the underlying slice
// access only in debug builds of the caller; indices are trusted here for
// speed on hot paths — use AtChecked in user-facing code.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set stores v at (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// AtChecked returns element (i,j) with explicit bounds validation.
func (m *Matrix) AtChecked(i, j int) (float64, error) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		return 0, fmt.Errorf("dense: index (%d,%d) out of range %d×%d", i, j, m.Rows, m.Cols)
	}
	return m.At(i, j), nil
}

// View returns an r×c view starting at (i,j) sharing storage with m.
// View is kept small enough to inline so that short-lived views inside the
// blocked kernels (Potrf/Syrk/Trsm panels) stay on the caller's stack.
func (m *Matrix) View(i, j, r, c int) *Matrix {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		// Constant-string panic keeps View within the inlining budget
		// (fmt.Sprintf here would push it over and force every panel view
		// of the blocked kernels onto the heap).
		panic("dense: view out of range")
	}
	return &Matrix{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[i*m.Stride+j:]}
}

// Row returns row i as a slice view of length Cols.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// Clone returns a compact deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies src into m. Dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("dense: copy %d×%d into %d×%d", src.Rows, src.Cols, m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = v
		}
	}
}

// Scale multiplies every element by alpha.
func (m *Matrix) Scale(alpha float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= alpha
		}
	}
}

// Add accumulates alpha*src into m (m += alpha*src).
func (m *Matrix) Add(alpha float64, src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("dense: add %d×%d to %d×%d", src.Rows, src.Cols, m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		dst, s := m.Row(i), src.Row(i)
		for j, v := range s {
			dst[j] += alpha * v
		}
	}
}

// T returns a compact transposed copy of m.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	m.TransposeInto(out)
	return out
}

// TransposeInto writes mᵀ into dst (allocation-free transpose for reused
// workspaces). dst must be Cols×Rows and must not alias m.
func (m *Matrix) TransposeInto(dst *Matrix) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic(fmt.Sprintf("dense: transpose %d×%d into %d×%d", m.Rows, m.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst.Data[j*dst.Stride+i] = v
		}
	}
}

// Symmetrize overwrites m with (m+mᵀ)/2. m must be square.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("dense: symmetrize of non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// MirrorLowerToUpper copies the strict lower triangle onto the upper one,
// producing a full symmetric matrix from factor-style lower storage.
func (m *Matrix) MirrorLowerToUpper() {
	if m.Rows != m.Cols {
		panic("dense: mirror of non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < i; j++ {
			m.Set(j, i, m.At(i, j))
		}
	}
}

// ZeroUpper clears the strict upper triangle (canonicalizing a lower factor).
func (m *Matrix) ZeroUpper() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := i + 1; j < m.Cols; j++ {
			row[j] = 0
		}
	}
}

// MaxAbs returns max|m_ij|.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
	}
	return mx
}

// FrobNorm returns the Frobenius norm of m.
func (m *Matrix) FrobNorm() float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// Equal reports whether m and b agree element-wise within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		ra, rb := m.Row(i), b.Row(i)
		for j := range ra {
			if math.Abs(ra[j]-rb[j]) > tol {
				return false
			}
		}
	}
	return true
}

// String renders small matrices for debugging; large ones are abbreviated.
func (m *Matrix) String() string {
	if m.Rows > 12 || m.Cols > 12 {
		return fmt.Sprintf("dense.Matrix{%d×%d}", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("% 10.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// Diag returns a copy of the main diagonal.
func (m *Matrix) Diag() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = m.At(i, i)
	}
	return d
}

// AddDiag adds v to every element of the main diagonal.
func (m *Matrix) AddDiag(v float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Stride+i] += v
	}
}

// Trace returns the sum of the diagonal. m must be square.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("dense: trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}
