//go:build amd64 && !purego

package dense

// ukernel4x8asm is the AVX2+FMA micro-kernel (kernel_amd64.s). a holds the
// packed MR-interleaved panel of op(A), b the packed NR-interleaved panel of
// op(B); the MR×NR result tile is accumulated onto c with row stride ldc.
//
//go:noescape
func ukernel4x8asm(k int, a, b *float64, c *float64, ldc int)

// cpuid executes the CPUID instruction for the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (OS-enabled SIMD state).
func xgetbv() (eax, edx uint32)

// hasAVX2FMA reports whether the CPU and OS support the AVX2+FMA kernel.
func hasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const fmaBit, osxsaveBit, avxBit = 1 << 12, 1 << 27, 1 << 28
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// OS must have enabled XMM (bit 1) and YMM (bit 2) state saving.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

func ukernelAsmWrap(k int, a, b []float64, c []float64, ldc int) {
	if k == 0 {
		return // zero-depth panel: C is unchanged
	}
	ukernel4x8asm(k, &a[0], &b[0], &c[0], ldc)
}

func init() {
	if hasAVX2FMA() {
		ukernel = ukernelAsmWrap
	}
}
