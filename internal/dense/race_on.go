//go:build race

package dense

// RaceEnabled reports whether the binary was built with the race detector.
// Race-mode sync.Pool intentionally drops Put items, so the zero-allocation
// assertions over the pooled GEMM path are skipped under -race.
const RaceEnabled = true
