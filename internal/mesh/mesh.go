// Package mesh provides the 2D finite-element substrate of the SPDE
// discretization: triangulated meshes over rectangular domains, P1
// mass/stiffness assembly, and barycentric interpolation of observation
// locations — the pieces R-INLA obtains from fmesher. Structured meshes at
// doubling refinement levels stand in for the paper's irregular
// northern-Italy meshes (Fig. 6c); the FEM matrices have identical
// structure (sparse SPD, ~7 nonzeros/row) so solver behaviour is preserved.
package mesh

import (
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/sparse"
)

// Point is a 2D location.
type Point struct {
	X, Y float64
}

// Mesh is a conforming triangulation. Tri stores vertex indices (CCW).
type Mesh struct {
	Nodes []Point
	Tri   [][3]int

	// structured-grid metadata enabling O(1) point location; zero for
	// general meshes.
	nx, ny int
	w, h   float64
}

// NumNodes returns the number of mesh vertices (the ns of the paper).
func (m *Mesh) NumNodes() int { return len(m.Nodes) }

// NumTriangles returns the number of elements.
func (m *Mesh) NumTriangles() int { return len(m.Tri) }

// Uniform builds a structured triangulation of [0,w]×[0,h] with nx×ny
// vertices (each grid cell split into two triangles).
func Uniform(nx, ny int, w, h float64) *Mesh {
	if nx < 2 || ny < 2 {
		panic(fmt.Sprintf("mesh: need at least 2×2 vertices, got %d×%d", nx, ny))
	}
	m := &Mesh{nx: nx, ny: ny, w: w, h: h}
	dx := w / float64(nx-1)
	dy := h / float64(ny-1)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			m.Nodes = append(m.Nodes, Point{X: float64(i) * dx, Y: float64(j) * dy})
		}
	}
	id := func(i, j int) int { return j*nx + i }
	for j := 0; j < ny-1; j++ {
		for i := 0; i < nx-1; i++ {
			m.Tri = append(m.Tri,
				[3]int{id(i, j), id(i+1, j), id(i, j+1)},
				[3]int{id(i+1, j), id(i+1, j+1), id(i, j+1)})
		}
	}
	return m
}

// RefinementLevels returns meshes whose node counts roughly quadruple per
// level, mirroring the four refinement levels of Fig. 6c (72 → 282 → 1119 →
// 4485 nodes in the paper; 72 → 288 → 1160 → 4560 here).
func RefinementLevels(levels int, w, h float64) []*Mesh {
	out := make([]*Mesh, levels)
	nx, ny := 9, 8
	for l := 0; l < levels; l++ {
		out[l] = Uniform(nx, ny, w, h)
		nx = 2*nx + 2
		ny = 2 * ny
	}
	return out
}

// triArea returns the signed doubled area of a triangle.
func (m *Mesh) triArea2(t [3]int) float64 {
	a, b, c := m.Nodes[t[0]], m.Nodes[t[1]], m.Nodes[t[2]]
	return (b.X-a.X)*(c.Y-a.Y) - (c.X-a.X)*(b.Y-a.Y)
}

// MassMatrix assembles the lumped P1 mass matrix C̃ (diagonal), the variant
// the SPDE approach uses to keep Q sparse (Lindgren et al. 2011, §2.3).
func (m *Mesh) MassMatrix() *sparse.CSR {
	n := m.NumNodes()
	d := make([]float64, n)
	for _, t := range m.Tri {
		area := m.triArea2(t) / 2
		if area < 0 {
			area = -area
		}
		third := area / 3
		for _, v := range t {
			d[v] += third
		}
	}
	return sparse.Diag(d)
}

// StiffnessMatrix assembles the P1 stiffness matrix G with entries
// ∫ ∇φi·∇φj over the domain.
func (m *Mesh) StiffnessMatrix() *sparse.CSR {
	n := m.NumNodes()
	coo := sparse.NewCOO(n, n)
	for _, t := range m.Tri {
		a, b, c := m.Nodes[t[0]], m.Nodes[t[1]], m.Nodes[t[2]]
		area2 := m.triArea2(t)
		area := area2 / 2
		if area < 0 {
			area = -area
		}
		// Gradients of the P1 basis functions on the element.
		gx := [3]float64{(b.Y - c.Y) / area2, (c.Y - a.Y) / area2, (a.Y - b.Y) / area2}
		gy := [3]float64{(c.X - b.X) / area2, (a.X - c.X) / area2, (b.X - a.X) / area2}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				coo.Add(t[i], t[j], area*(gx[i]*gx[j]+gy[i]*gy[j]))
			}
		}
	}
	return coo.ToCSR()
}

// Locate returns the triangle index containing p and its barycentric
// coordinates. Points outside the domain are clamped to it. Structured
// meshes use O(1) cell lookup; general meshes scan.
func (m *Mesh) Locate(p Point) (int, [3]float64, error) {
	if m.nx > 0 {
		return m.locateStructured(p)
	}
	for ti, t := range m.Tri {
		if bc, ok := m.bary(t, p); ok {
			return ti, bc, nil
		}
	}
	return 0, [3]float64{}, fmt.Errorf("mesh: point (%g,%g) not inside any triangle", p.X, p.Y)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (m *Mesh) locateStructured(p Point) (int, [3]float64, error) {
	dx := m.w / float64(m.nx-1)
	dy := m.h / float64(m.ny-1)
	x := clamp(p.X, 0, m.w)
	y := clamp(p.Y, 0, m.h)
	ci := int(x / dx)
	cj := int(y / dy)
	if ci > m.nx-2 {
		ci = m.nx - 2
	}
	if cj > m.ny-2 {
		cj = m.ny - 2
	}
	base := 2 * (cj*(m.nx-1) + ci)
	for _, ti := range [2]int{base, base + 1} {
		if bc, ok := m.bary(m.Tri[ti], Point{x, y}); ok {
			return ti, bc, nil
		}
	}
	// Numerical edge case exactly on the diagonal: fall back to the first
	// triangle with clamped coordinates.
	bc, _ := m.baryClamped(m.Tri[base], Point{x, y})
	return base, bc, nil
}

// bary returns barycentric coordinates of p in triangle t and whether p is
// inside (within a small tolerance).
func (m *Mesh) bary(t [3]int, p Point) ([3]float64, bool) {
	a, b, c := m.Nodes[t[0]], m.Nodes[t[1]], m.Nodes[t[2]]
	det := (b.Y-c.Y)*(a.X-c.X) + (c.X-b.X)*(a.Y-c.Y)
	l0 := ((b.Y-c.Y)*(p.X-c.X) + (c.X-b.X)*(p.Y-c.Y)) / det
	l1 := ((c.Y-a.Y)*(p.X-c.X) + (a.X-c.X)*(p.Y-c.Y)) / det
	l2 := 1 - l0 - l1
	const tol = -1e-10
	return [3]float64{l0, l1, l2}, l0 >= tol && l1 >= tol && l2 >= tol
}

func (m *Mesh) baryClamped(t [3]int, p Point) ([3]float64, bool) {
	bc, _ := m.bary(t, p)
	var s float64
	for i := range bc {
		bc[i] = math.Max(bc[i], 0)
		s += bc[i]
	}
	for i := range bc {
		bc[i] /= s
	}
	return bc, true
}

// InterpolationMatrix returns the sparse m×ns barycentric projection matrix
// mapping mesh weights to values at the given locations — the per-process
// observation operator A_i of Eq. 5.
func (m *Mesh) InterpolationMatrix(pts []Point) (*sparse.CSR, error) {
	coo := sparse.NewCOO(len(pts), m.NumNodes())
	for i, p := range pts {
		ti, bc, err := m.Locate(p)
		if err != nil {
			return nil, fmt.Errorf("mesh: observation %d: %w", i, err)
		}
		t := m.Tri[ti]
		for v := 0; v < 3; v++ {
			if bc[v] != 0 {
				coo.Add(i, t[v], bc[v])
			}
		}
	}
	return coo.ToCSR(), nil
}
