package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformCounts(t *testing.T) {
	m := Uniform(4, 3, 2, 1)
	if m.NumNodes() != 12 {
		t.Fatalf("nodes = %d, want 12", m.NumNodes())
	}
	if m.NumTriangles() != 12 { // (4−1)(3−1)·2
		t.Fatalf("triangles = %d, want 12", m.NumTriangles())
	}
}

func TestUniformPanicsTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1×n mesh must panic")
		}
	}()
	Uniform(1, 5, 1, 1)
}

func TestTriangleOrientationAndArea(t *testing.T) {
	m := Uniform(3, 3, 2, 2)
	var total float64
	for _, tri := range m.Tri {
		a2 := m.triArea2(tri)
		if a2 <= 0 {
			t.Fatalf("triangle %v not CCW (area2=%v)", tri, a2)
		}
		total += a2 / 2
	}
	if math.Abs(total-4) > 1e-12 {
		t.Fatalf("total area %v, want 4", total)
	}
}

func TestMassMatrixSumsToArea(t *testing.T) {
	m := Uniform(5, 4, 3, 2)
	c := m.MassMatrix()
	var sum float64
	for i := 0; i < m.NumNodes(); i++ {
		v := c.At(i, i)
		if v <= 0 {
			t.Fatalf("lumped mass %d = %v not positive", i, v)
		}
		sum += v
	}
	if math.Abs(sum-6) > 1e-12 {
		t.Fatalf("mass total %v, want domain area 6", sum)
	}
}

func TestStiffnessProperties(t *testing.T) {
	m := Uniform(5, 5, 1, 1)
	g := m.StiffnessMatrix()
	if !g.IsSymmetric(1e-12) {
		t.Fatal("stiffness not symmetric")
	}
	// Rows sum to zero (constants are in the kernel of the Laplacian).
	n := m.NumNodes()
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	y := make([]float64, n)
	g.MulVec(ones, y)
	for i, v := range y {
		if math.Abs(v) > 1e-10 {
			t.Fatalf("stiffness row %d sums to %v", i, v)
		}
	}
	// Positive semidefinite: xᵀGx ≥ 0 for random x.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		g.MulVec(x, y)
		var q float64
		for i := range x {
			q += x[i] * y[i]
		}
		if q < -1e-10 {
			t.Fatalf("xᵀGx = %v < 0", q)
		}
	}
}

func TestLocateInside(t *testing.T) {
	m := Uniform(6, 6, 2, 3)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		p := Point{X: rng.Float64() * 2, Y: rng.Float64() * 3}
		ti, bc, err := m.Locate(p)
		if err != nil {
			t.Fatal(err)
		}
		// Barycentric reconstruction must recover the point.
		tri := m.Tri[ti]
		var x, y, s float64
		for v := 0; v < 3; v++ {
			x += bc[v] * m.Nodes[tri[v]].X
			y += bc[v] * m.Nodes[tri[v]].Y
			s += bc[v]
		}
		if math.Abs(s-1) > 1e-9 || math.Abs(x-p.X) > 1e-9 || math.Abs(y-p.Y) > 1e-9 {
			t.Fatalf("locate reconstruction failed at %+v: (%v,%v) sum %v", p, x, y, s)
		}
	}
}

func TestLocateClampsOutside(t *testing.T) {
	m := Uniform(4, 4, 1, 1)
	_, bc, err := m.Locate(Point{X: -5, Y: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bc {
		if v < -1e-12 {
			t.Fatalf("clamped barycentric coordinate %v < 0", v)
		}
	}
}

func TestInterpolationMatrix(t *testing.T) {
	m := Uniform(5, 5, 1, 1)
	pts := []Point{{0.5, 0.5}, {0.1, 0.9}, {0, 0}, {1, 1}}
	a, err := m.InterpolationMatrix(pts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows() != 4 || a.Cols() != 25 {
		t.Fatalf("interp shape %d×%d", a.Rows(), a.Cols())
	}
	// Interpolating the coordinate functions reproduces the points exactly
	// (P1 elements are exact on linear functions).
	xs := make([]float64, 25)
	ys := make([]float64, 25)
	for i, nd := range m.Nodes {
		xs[i] = nd.X
		ys[i] = nd.Y
	}
	gx := make([]float64, 4)
	gy := make([]float64, 4)
	a.MulVec(xs, gx)
	a.MulVec(ys, gy)
	for i, p := range pts {
		if math.Abs(gx[i]-p.X) > 1e-12 || math.Abs(gy[i]-p.Y) > 1e-12 {
			t.Fatalf("interp point %d: (%v,%v) want (%v,%v)", i, gx[i], gy[i], p.X, p.Y)
		}
	}
	// Rows are convex combinations.
	for i := 0; i < 4; i++ {
		var s float64
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			s += a.Val[p]
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d weights sum to %v", i, s)
		}
	}
}

func TestRefinementLevels(t *testing.T) {
	ms := RefinementLevels(4, 300, 200)
	if len(ms) != 4 {
		t.Fatalf("levels = %d", len(ms))
	}
	prev := 0
	for l, m := range ms {
		if m.NumNodes() <= prev {
			t.Fatalf("level %d nodes %d not increasing", l, m.NumNodes())
		}
		prev = m.NumNodes()
	}
	// First level matches the paper's coarsest mesh size (72 nodes).
	if ms[0].NumNodes() != 72 {
		t.Fatalf("coarsest level %d nodes, want 72", ms[0].NumNodes())
	}
	// Roughly quadrupling per level.
	for l := 1; l < 4; l++ {
		ratio := float64(ms[l].NumNodes()) / float64(ms[l-1].NumNodes())
		if ratio < 3 || ratio > 5 {
			t.Fatalf("level %d refinement ratio %v outside [3,5]", l, ratio)
		}
	}
}

func TestQuickLocateReconstruction(t *testing.T) {
	m := Uniform(7, 5, 4, 3)
	f := func(xr, yr uint16) bool {
		p := Point{X: float64(xr) / 65535 * 4, Y: float64(yr) / 65535 * 3}
		ti, bc, err := m.Locate(p)
		if err != nil {
			return false
		}
		tri := m.Tri[ti]
		var x, y float64
		for v := 0; v < 3; v++ {
			x += bc[v] * m.Nodes[tri[v]].X
			y += bc[v] * m.Nodes[tri[v]].Y
		}
		return math.Abs(x-p.X) < 1e-9 && math.Abs(y-p.Y) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLocateGeneralMeshScanPath(t *testing.T) {
	// A hand-built mesh without structured-grid metadata exercises the
	// linear-scan locator.
	m := &Mesh{
		Nodes: []Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}},
		Tri:   [][3]int{{0, 1, 2}, {1, 3, 2}},
	}
	ti, bc, err := m.Locate(Point{X: 0.2, Y: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if ti != 0 {
		t.Fatalf("point in triangle %d, want 0", ti)
	}
	var s float64
	for _, v := range bc {
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("barycentric sum %v", s)
	}
	// Outside the hull must error on the scan path (no clamping metadata).
	if _, _, err := m.Locate(Point{X: 5, Y: 5}); err == nil {
		t.Fatal("point outside a general mesh must error")
	}
	// And the interpolation matrix surfaces that error.
	if _, err := m.InterpolationMatrix([]Point{{X: 5, Y: 5}}); err == nil {
		t.Fatal("InterpolationMatrix must propagate locate errors")
	}
}
