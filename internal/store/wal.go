package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
)

// Write-ahead log for publish/refit/delete events.
//
// Record framing:
//
//	length u32 LE   payload length
//	crc    u32 LE   CRC32-IEEE of the payload
//	payload [length]byte
//
// Record payload:
//
//	op      u8       opBegin | opCommit | opRollback | opDelete
//	nameLen uvarint
//	name    [nameLen]byte
//	gen     u64 LE   generation (0 for opDelete)
//
// The protocol around a publish is begin → (atomic checkpoint write) →
// commit, each followed by an fsync. Replay therefore classifies every
// on-disk generation: begin without commit means the publish was
// interrupted — the generation (whether absent, torn, or even fully
// written) is rolled back and the previous one served. A torn record at
// the tail (short frame or CRC mismatch) marks the crash point: the tail
// is truncated and everything before it replayed.

const (
	opBegin    = 1
	opCommit   = 2
	opRollback = 3
	opDelete   = 4
)

const walName = "wal.log"

// walRecord is one decoded log entry.
type walRecord struct {
	op   byte
	name string
	gen  uint64
}

// maxWALRecord bounds a single record so a corrupt length prefix cannot
// drive a giant allocation during replay.
const maxWALRecord = 1 << 20

// walCompactEvery is how many appended records a running store tolerates
// before compacting the log in place (each publish appends two or three
// fsynced records, so without this a long-lived server grows the log
// without bound until the next restart's recovery compaction).
const walCompactEvery = 256

func encodeWALRecord(r walRecord) []byte {
	payload := []byte{r.op}
	payload = binary.AppendUvarint(payload, uint64(len(r.name)))
	payload = append(payload, r.name...)
	payload = binary.LittleEndian.AppendUint64(payload, r.gen)
	buf := make([]byte, 0, 8+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

func decodeWALPayload(payload []byte) (walRecord, error) {
	var r walRecord
	if len(payload) < 1 {
		return r, fmt.Errorf("empty record")
	}
	r.op = payload[0]
	if r.op < opBegin || r.op > opDelete {
		return r, fmt.Errorf("unknown op %d", r.op)
	}
	n, w := binary.Uvarint(payload[1:])
	if w <= 0 || n > uint64(math.MaxInt32) || uint64(len(payload)-1-w) < n+8 {
		return r, fmt.Errorf("truncated record")
	}
	off := 1 + w
	r.name = string(payload[off : off+int(n)])
	off += int(n)
	r.gen = binary.LittleEndian.Uint64(payload[off:])
	if off+8 != len(payload) {
		return r, fmt.Errorf("%d trailing bytes", len(payload)-off-8)
	}
	return r, nil
}

// wal is the open append handle. All appends go through the store's
// mutex, so the handle itself needs no locking.
type wal struct {
	f    *os.File
	path string
	// appended counts records written through this handle since the last
	// compaction; maybeCompact resets it.
	appended int
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, path: path}, nil
}

// append durably adds one record: the write and the fsync both complete
// before the caller proceeds to the next protocol step.
func (w *wal) append(r walRecord) error {
	if _, err := w.f.Write(encodeWALRecord(r)); err != nil {
		return err
	}
	w.appended++
	return w.f.Sync()
}

// maybeCompact truncates the log in place once enough records have
// accumulated. Callers must hold the store mutex at a quiescent point — no
// publish between its begin and commit, no delete mid-removal — where every
// on-disk generation is committed, so the empty log is an equivalent
// (minimal) representation of the same state. The handle is opened
// O_APPEND, so writes after the truncate land at offset zero.
func (w *wal) maybeCompact() error {
	if w.appended < walCompactEvery {
		return nil
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	w.appended = 0
	return w.f.Sync()
}

func (w *wal) close() error { return w.f.Close() }

// replayWAL reads every intact record from the log. A torn tail — short
// frame, short payload, or CRC mismatch — ends the replay: the offset of
// the first bad byte is returned so the caller can truncate it away, along
// with whether a tear was found. Corruption in the middle is
// indistinguishable from a tear and handled the same way (everything after
// the first bad record is discarded; the publish protocol's fsync ordering
// means those records never acknowledged anyway).
func replayWAL(path string) (records []walRecord, tornAt int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, false, nil
		}
		return nil, 0, false, err
	}
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			return records, int64(off), true, nil
		}
		plen := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen > maxWALRecord || int(plen) > len(data)-off-8 {
			return records, int64(off), true, nil
		}
		payload := data[off+8 : off+8+int(plen)]
		if crc32.ChecksumIEEE(payload) != crc {
			return records, int64(off), true, nil
		}
		r, derr := decodeWALPayload(payload)
		if derr != nil {
			return records, int64(off), true, nil
		}
		records = append(records, r)
		off += 8 + int(plen)
	}
	return records, int64(len(data)), false, nil
}

// truncateWAL cuts a torn tail off the log, durably.
func truncateWAL(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// resetWAL compacts the log to empty after recovery has resolved every
// in-flight event (atomically, so a crash mid-compaction keeps the old
// log).
func resetWAL(path string) error {
	return writeFileAtomic(path, nil)
}

// walSize reports the current log size (for stats).
func walSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}
