package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"
)

// Container file format — the durability envelope every checkpoint and
// fit-state file is wrapped in:
//
//	magic   [8]byte  "DALIACK\x01"
//	version u32 LE   container version (1)
//	length  u64 LE   payload length in bytes
//	payload [length]byte
//	crc     u64 LE   CRC64-ECMA over everything preceding it
//
// The whole-file checksum plus the exact-size check means truncation,
// trailing garbage and bit rot are all detected before a single payload
// byte is interpreted; the version field lets later PRs evolve the payload
// without misreading old files.

var containerMagic = [8]byte{'D', 'A', 'L', 'I', 'A', 'C', 'K', 1}

const containerVersion = 1

// containerOverhead is the fixed byte cost around a payload.
const containerOverhead = 8 + 4 + 8 + 8

var crcTable = crc64.MakeTable(crc64.ECMA)

// ErrCorrupt wraps every integrity failure (bad magic, size mismatch,
// checksum mismatch, garbled payload) so callers can distinguish corruption
// (quarantine, fall back a generation) from I/O errors (surface).
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt %s: %s", e.Path, e.Reason)
}

// encodeContainer wraps a payload in the checksummed envelope.
func encodeContainer(payload []byte) []byte {
	buf := make([]byte, 0, containerOverhead+len(payload))
	buf = append(buf, containerMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, containerVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint64(buf, crc64.Checksum(buf, crcTable))
	return buf
}

// decodeContainer validates the envelope and returns the payload. Any
// integrity failure comes back as a *CorruptError.
func decodeContainer(path string, data []byte) ([]byte, error) {
	corrupt := func(reason string) ([]byte, error) {
		return nil, &CorruptError{Path: path, Reason: reason}
	}
	if len(data) < containerOverhead {
		return corrupt(fmt.Sprintf("%d bytes, shorter than the %d-byte envelope", len(data), containerOverhead))
	}
	if [8]byte(data[:8]) != containerMagic {
		return corrupt("bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != containerVersion {
		return corrupt(fmt.Sprintf("container version %d, this build reads %d", v, containerVersion))
	}
	plen := binary.LittleEndian.Uint64(data[12:])
	if want := uint64(len(data)) - containerOverhead; plen != want {
		return corrupt(fmt.Sprintf("payload length %d, file holds %d", plen, want))
	}
	body := data[:len(data)-8]
	want := binary.LittleEndian.Uint64(data[len(data)-8:])
	if got := crc64.Checksum(body, crcTable); got != want {
		return corrupt(fmt.Sprintf("checksum %016x, want %016x", got, want))
	}
	return data[20 : len(data)-8], nil
}

// writeFileAtomic durably publishes data at path: write to a temp file in
// the same directory, fsync it, rename over the target, fsync the
// directory. A crash at any point leaves either the old file or the new
// one, never a torn mix; stray temp files are swept on recovery.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Checkpoint is one durable fitted-model record: everything the serving
// layer needs to reconstruct a predictor without re-optimizing. Spec and
// Payload are opaque to the store — the serve layer puts its fit recipe
// (JSON) in Spec and the bit-exact serialized inla.Result in Payload, so
// the store depends on neither package.
type Checkpoint struct {
	// Name is the model name (also the directory key).
	Name string
	// Generation numbers successive publishes of the same model; for
	// fit-state records it carries the optimizer iteration instead.
	Generation uint64
	// CreatedUnixNano is the publish wall-clock time.
	CreatedUnixNano int64
	// Spec is the opaque model/fit specification.
	Spec []byte
	// Payload is the opaque fitted-model payload.
	Payload []byte
}

// encodeCheckpoint serializes the record payload (container adds the
// checksum around it).
func encodeCheckpoint(ck *Checkpoint) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(ck.Name)))
	buf = append(buf, ck.Name...)
	buf = binary.LittleEndian.AppendUint64(buf, ck.Generation)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ck.CreatedUnixNano))
	buf = binary.AppendUvarint(buf, uint64(len(ck.Spec)))
	buf = append(buf, ck.Spec...)
	buf = binary.AppendUvarint(buf, uint64(len(ck.Payload)))
	buf = append(buf, ck.Payload...)
	return buf
}

// decodeCheckpoint parses a record payload, rejecting truncation and
// trailing bytes as corruption.
func decodeCheckpoint(path string, buf []byte) (*Checkpoint, error) {
	corrupt := func(reason string) (*Checkpoint, error) {
		return nil, &CorruptError{Path: path, Reason: reason}
	}
	off := 0
	bytesField := func() []byte {
		if off < 0 {
			return nil
		}
		n, w := binary.Uvarint(buf[off:])
		if w <= 0 || n > uint64(math.MaxInt32) || uint64(len(buf)-off-w) < n {
			off = -1
			return nil
		}
		off += w
		b := buf[off : off+int(n)]
		off += int(n)
		return b
	}
	u64Field := func() uint64 {
		if off < 0 || len(buf)-off < 8 {
			off = -1
			return 0
		}
		v := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		return v
	}
	name := bytesField()
	gen := u64Field()
	created := u64Field()
	spec := bytesField()
	payload := bytesField()
	if off < 0 {
		return corrupt("truncated checkpoint record")
	}
	if off != len(buf) {
		return corrupt(fmt.Sprintf("%d trailing bytes in checkpoint record", len(buf)-off))
	}
	return &Checkpoint{
		Name:            string(name),
		Generation:      gen,
		CreatedUnixNano: int64(created),
		Spec:            append([]byte(nil), spec...),
		Payload:         append([]byte(nil), payload...),
	}, nil
}

// writeCheckpointFile durably writes a checkpoint record at path.
func writeCheckpointFile(path string, ck *Checkpoint) error {
	return writeFileAtomic(path, encodeContainer(encodeCheckpoint(ck)))
}

// readCheckpointFile reads and fully validates a checkpoint file.
func readCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := decodeContainer(path, data)
	if err != nil {
		return nil, err
	}
	return decodeCheckpoint(path, payload)
}
