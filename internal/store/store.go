// Package store is the crash-safe persistence layer for fitted models: a
// versioned, checksummed binary checkpoint format with atomic publish
// (write-temp + fsync + rename), a generation-numbered per-model directory
// layout, and a small write-ahead log so an interrupted publish or refit
// replays or rolls back cleanly on restart.
//
// On-disk layout under the store root:
//
//	wal.log                          publish/refit/delete event log
//	models/<escaped-name>/gen-%012d.ckpt
//	fits/<escaped-name>.fit          in-flight optimizer state (resume)
//	quarantine/                      corrupt or rolled-back checkpoints
//
// The store is deliberately opaque about what a model is: Spec and Payload
// are byte slices the serving layer fills with its fit recipe and the
// serialized fit result, so the package depends only on the standard
// library and can back any future subsystem.
package store

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// retainGenerations is how many committed generations of a model survive a
// publish: the new one plus its predecessor, so a corrupt current
// generation always has a fallback.
const retainGenerations = 2

// RecoveryStats summarizes what Open found and repaired. The serving layer
// surfaces these on /readyz: a restart that quarantined or rolled anything
// back reports degraded rather than silently serving less than it had.
type RecoveryStats struct {
	// Recovered counts models restored with a valid current generation.
	Recovered int `json:"recovered"`
	// Quarantined counts checkpoint files moved aside for failing
	// validation (checksum, envelope, or record decode).
	Quarantined int `json:"quarantined"`
	// RolledBack counts generations discarded because the WAL showed their
	// publish began but never committed.
	RolledBack int `json:"rolled_back"`
	// FellBack counts models now serving an older generation because a
	// newer one was quarantined or rolled back.
	FellBack int `json:"fell_back"`
	// Failed counts models with no valid generation left at all.
	Failed int `json:"failed"`
	// TornWAL is 1 when the log ended in a torn record that was truncated.
	TornWAL int `json:"torn_wal"`
	// CleanedTemps counts abandoned atomic-write temp files removed.
	CleanedTemps int `json:"cleaned_temps"`
	// FitStates counts in-flight fit checkpoints found (resumable fits).
	FitStates int `json:"fit_states"`
}

// Degraded reports whether recovery had to repair anything a clean
// shutdown would not have left behind.
func (rs *RecoveryStats) Degraded() bool {
	return rs.Quarantined > 0 || rs.RolledBack > 0 || rs.FellBack > 0 ||
		rs.Failed > 0 || rs.TornWAL > 0
}

func (rs *RecoveryStats) String() string {
	return fmt.Sprintf("recovered=%d quarantined=%d rolled_back=%d fell_back=%d failed=%d torn_wal=%d cleaned_temps=%d fit_states=%d",
		rs.Recovered, rs.Quarantined, rs.RolledBack, rs.FellBack, rs.Failed, rs.TornWAL, rs.CleanedTemps, rs.FitStates)
}

// modelState is the in-memory index entry for one model.
type modelState struct {
	current uint64   // newest valid committed generation (0 = none)
	gens    []uint64 // on-disk generations, ascending
}

// Store is a durable checkpoint store rooted at one directory. All methods
// are safe for concurrent use; the WAL protocol serializes publishes.
type Store struct {
	dir string

	mu     sync.Mutex
	wal    *wal
	models map[string]*modelState
	closed bool
}

// ErrNotFound reports a model or generation the store does not hold.
var ErrNotFound = errors.New("store: not found")

// ValidateName rejects model names the directory encoding cannot contain.
// url.PathEscape leaves "." and ".." unescaped, so those names would
// resolve outside the models/ directory (Delete("..") would remove the
// store root), and an empty name resolves to models/ itself. Every method
// that turns a name into a path checks this; the serving layer also calls
// it at the HTTP boundary for a friendly 400.
func ValidateName(name string) error {
	switch name {
	case "", ".", "..":
		return fmt.Errorf("store: invalid model name %q", name)
	}
	return nil
}

// ErrClosed reports use after Close.
var ErrClosed = errors.New("store: closed")

// Open opens (creating if needed) the store at dir and runs crash
// recovery: the WAL is replayed, interrupted publishes are rolled back,
// corrupt checkpoints are quarantined with the previous generation
// promoted, abandoned temp files are swept, and the WAL is compacted. The
// returned stats say exactly what was repaired.
func Open(dir string) (*Store, *RecoveryStats, error) {
	for _, sub := range []string{"", "models", "fits", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, nil, err
		}
	}
	s := &Store{dir: dir, models: map[string]*modelState{}}
	stats, err := s.recover()
	if err != nil {
		return nil, nil, err
	}
	w, err := openWAL(s.walPath())
	if err != nil {
		return nil, nil, err
	}
	s.wal = w
	return s, stats, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// Close releases the WAL handle. Published data is already durable; Close
// only stops further writes.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.close()
}

func (s *Store) walPath() string          { return filepath.Join(s.dir, walName) }
func (s *Store) modelDir(n string) string { return filepath.Join(s.dir, "models", url.PathEscape(n)) }
func (s *Store) fitPath(n string) string {
	return filepath.Join(s.dir, "fits", url.PathEscape(n)+".fit")
}

func genFileName(gen uint64) string { return fmt.Sprintf("gen-%012d.ckpt", gen) }

// parseGenFileName inverts genFileName; ok=false for anything else.
func parseGenFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "gen-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "gen-"), ".ckpt"), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// recover replays the WAL, reconciles it against the on-disk generations,
// and rebuilds the in-memory index.
func (s *Store) recover() (*RecoveryStats, error) {
	stats := &RecoveryStats{}

	// Sweep abandoned atomic-write temps in the store root first: resetWAL's
	// temp file lands here, and a crash between CreateTemp and rename would
	// otherwise leave wal.log.tmp-* files behind forever.
	rootEntries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range rootEntries {
		if ent.IsDir() || !strings.Contains(ent.Name(), ".tmp-") {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, ent.Name())); err != nil {
			return nil, err
		}
		stats.CleanedTemps++
	}

	records, tornAt, torn, err := replayWAL(s.walPath())
	if err != nil {
		return nil, err
	}
	if torn {
		stats.TornWAL = 1
		if err := truncateWAL(s.walPath(), tornAt); err != nil {
			return nil, err
		}
	}
	// Per-(model, generation) outcome from the log: a begin without a
	// matching commit marks an interrupted publish; a delete marks the
	// whole model removed.
	type genKey struct {
		name string
		gen  uint64
	}
	pending := map[genKey]bool{}
	deleted := map[string]bool{}
	for _, r := range records {
		k := genKey{r.name, r.gen}
		switch r.op {
		case opBegin:
			pending[k] = true
			delete(deleted, r.name)
		case opCommit, opRollback:
			delete(pending, k)
		case opDelete:
			deleted[r.name] = true
		}
	}

	modelsDir := filepath.Join(s.dir, "models")
	entries, err := os.ReadDir(modelsDir)
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		name, err := url.PathUnescape(ent.Name())
		if err != nil {
			name = ent.Name()
		}
		dir := filepath.Join(modelsDir, ent.Name())
		if deleted[name] {
			// A delete that didn't finish removing files: finish it now.
			if err := os.RemoveAll(dir); err != nil {
				return nil, err
			}
			continue
		}
		files, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var gens []uint64
		for _, f := range files {
			if gen, ok := parseGenFileName(f.Name()); ok {
				gens = append(gens, gen)
				continue
			}
			// Anything else in a model directory is an abandoned atomic
			// temp from a crashed write.
			if err := os.Remove(filepath.Join(dir, f.Name())); err != nil {
				return nil, err
			}
			stats.CleanedTemps++
		}
		sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })

		st := &modelState{}
		sawNewerInvalid := false
		onDisk := map[uint64]bool{}
		// Walk newest → oldest; the first generation that is both committed
		// and intact becomes current.
		for i := len(gens) - 1; i >= 0; i-- {
			gen := gens[i]
			onDisk[gen] = true
			path := filepath.Join(dir, genFileName(gen))
			if pending[genKey{name, gen}] {
				// Publish began but never committed: roll it back whether or
				// not the file happens to be readable — the writer never got
				// an acknowledgment.
				if err := s.quarantine(path, name, gen, "uncommitted"); err != nil {
					return nil, err
				}
				delete(pending, genKey{name, gen})
				stats.RolledBack++
				sawNewerInvalid = true
				continue
			}
			if _, err := readCheckpointFile(path); err != nil {
				var ce *CorruptError
				if !errors.As(err, &ce) && !os.IsNotExist(err) {
					return nil, err
				}
				if !os.IsNotExist(err) {
					if qerr := s.quarantine(path, name, gen, "corrupt"); qerr != nil {
						return nil, qerr
					}
					stats.Quarantined++
				}
				sawNewerInvalid = true
				continue
			}
			if st.current == 0 {
				st.current = gen
				if sawNewerInvalid {
					stats.FellBack++
				}
			}
			st.gens = append([]uint64{gen}, st.gens...)
		}
		// Pending publishes of this model that never wrote their file
		// (begin logged, crash before the write) are rollbacks too.
		for k := range pending {
			if k.name == name && !onDisk[k.gen] {
				delete(pending, k)
				stats.RolledBack++
			}
		}
		if st.current == 0 {
			// Nothing valid left. Failed only means lost data — a model that
			// never completed a single publish was just rolled back. Either
			// way the empty directory goes, so a later Open starts clean.
			if len(gens) > 0 {
				stats.Failed++
			}
			if err := os.RemoveAll(dir); err != nil {
				return nil, err
			}
			continue
		}
		stats.Recovered++
		s.models[name] = st
	}

	// Leftover pendings have no model directory at all (begin logged, crash
	// before even the mkdir survived): count them so /readyz reflects the
	// interrupted refit even though no file needed moving.
	stats.RolledBack += len(pending)

	// Sweep stray fit temp files and count resumable fit states.
	fitsDir := filepath.Join(s.dir, "fits")
	fitFiles, err := os.ReadDir(fitsDir)
	if err != nil {
		return nil, err
	}
	for _, f := range fitFiles {
		if strings.HasSuffix(f.Name(), ".fit") {
			stats.FitStates++
			continue
		}
		if err := os.Remove(filepath.Join(fitsDir, f.Name())); err != nil {
			return nil, err
		}
		stats.CleanedTemps++
	}

	// Every in-flight event is now resolved: compact the log so replay cost
	// stays bounded and resolved rollbacks are not re-applied next time.
	if err := resetWAL(s.walPath()); err != nil {
		return nil, err
	}
	return stats, nil
}

// quarantine moves a bad checkpoint aside (never deletes it: a human can
// inspect or hand-repair it later).
func (s *Store) quarantine(path, name string, gen uint64, reason string) error {
	dst := filepath.Join(s.dir, "quarantine",
		fmt.Sprintf("%s.gen-%012d.%s", url.PathEscape(name), gen, reason))
	if err := os.Rename(path, dst); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	return syncDir(filepath.Dir(path))
}

// Publish durably stores a new generation of ck.Name and returns its
// generation number. The WAL protocol (begin+sync → atomic write →
// commit+sync) means a crash at any point either leaves the previous
// generation current or the new one fully committed — never a torn or
// half-adopted checkpoint. Older generations beyond the retention window
// are pruned after the commit.
func (s *Store) Publish(ck *Checkpoint) (uint64, error) {
	if err := ValidateName(ck.Name); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	st := s.models[ck.Name]
	if st == nil {
		st = &modelState{}
	}
	gen := st.current + 1
	if n := len(st.gens); n > 0 && st.gens[n-1] >= gen {
		gen = st.gens[n-1] + 1
	}

	dir := s.modelDir(ck.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	if err := s.wal.append(walRecord{op: opBegin, name: ck.Name, gen: gen}); err != nil {
		return 0, err
	}
	rec := *ck
	rec.Generation = gen
	if rec.CreatedUnixNano == 0 {
		rec.CreatedUnixNano = time.Now().UnixNano()
	}
	if err := writeCheckpointFile(filepath.Join(dir, genFileName(gen)), &rec); err != nil {
		// Best-effort rollback record; recovery handles it either way.
		_ = s.wal.append(walRecord{op: opRollback, name: ck.Name, gen: gen})
		return 0, err
	}
	if err := s.wal.append(walRecord{op: opCommit, name: ck.Name, gen: gen}); err != nil {
		return 0, err
	}

	st.current = gen
	st.gens = append(st.gens, gen)
	s.models[ck.Name] = st

	// Retention: drop everything older than the newest retainGenerations.
	for len(st.gens) > retainGenerations {
		old := st.gens[0]
		st.gens = st.gens[1:]
		if err := os.Remove(filepath.Join(dir, genFileName(old))); err != nil && !os.IsNotExist(err) {
			return gen, err
		}
	}
	// The publish is fully committed, so this is a quiescent point where the
	// log may be compacted (it would otherwise grow by three fsynced records
	// per publish until the next restart).
	if err := s.wal.maybeCompact(); err != nil {
		return gen, err
	}
	return gen, nil
}

// Load returns the current generation of a model, fully validated. The
// checkpoint file is read outside the store mutex, so a concurrent Publish
// can prune the generation captured from the index before the read lands
// (retention keeps only retainGenerations); a missing file re-checks the
// index and retries with the newer generation instead of surfacing a raw
// *PathError.
func (s *Store) Load(name string) (*Checkpoint, error) {
	var lastGen uint64
	for {
		s.mu.Lock()
		var gen uint64
		if st := s.models[name]; st != nil {
			gen = st.current
		}
		s.mu.Unlock()
		if gen == 0 {
			return nil, fmt.Errorf("%w: model %q", ErrNotFound, name)
		}
		ck, err := readCheckpointFile(filepath.Join(s.modelDir(name), genFileName(gen)))
		if err == nil || !os.IsNotExist(err) {
			return ck, err
		}
		if gen == lastGen {
			// The index still points at the missing file: genuinely gone,
			// not pruned out from under us by a racing publish.
			return nil, fmt.Errorf("%w: model %q generation %d", ErrNotFound, name, gen)
		}
		lastGen = gen
	}
}

// Models lists the model names with a valid current generation, sorted.
func (s *Store) Models() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.models))
	for name := range s.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Generation reports the current generation of a model (0, false if the
// store does not hold it).
func (s *Store) Generation(name string) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.models[name]
	if st == nil {
		return 0, false
	}
	return st.current, true
}

// Delete durably removes a model: the delete is WAL-logged first, so a
// crash mid-removal finishes on recovery instead of resurrecting stale
// generations. The model's fit state goes with it.
func (s *Store) Delete(name string) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.wal.append(walRecord{op: opDelete, name: name}); err != nil {
		return err
	}
	delete(s.models, name)
	if err := os.RemoveAll(s.modelDir(name)); err != nil {
		return err
	}
	if err := os.Remove(s.fitPath(name)); err != nil && !os.IsNotExist(err) {
		return err
	}
	// The delete is fully applied on disk, so its WAL record is no longer
	// load-bearing and the log may compact.
	return s.wal.maybeCompact()
}

// SaveFitState durably records the in-flight optimizer state of a fit
// (atomic overwrite — only the newest checkpoint matters). ck.Generation
// carries the optimizer iteration.
func (s *Store) SaveFitState(ck *Checkpoint) error {
	if err := ValidateName(ck.Name); err != nil {
		return err
	}
	rec := *ck
	if rec.CreatedUnixNano == 0 {
		rec.CreatedUnixNano = time.Now().UnixNano()
	}
	return writeFileAtomic(s.fitPath(ck.Name), encodeContainer(encodeCheckpoint(&rec)))
}

// FitStates returns every valid in-flight fit checkpoint (a fit that was
// running when the process died and can be resumed from its last BFGS
// iterate). Corrupt fit states are quarantined, not surfaced: losing an
// optimizer checkpoint only costs a from-scratch refit.
func (s *Store) FitStates() ([]*Checkpoint, error) {
	fitsDir := filepath.Join(s.dir, "fits")
	files, err := os.ReadDir(fitsDir)
	if err != nil {
		return nil, err
	}
	var out []*Checkpoint
	for _, f := range files {
		if !strings.HasSuffix(f.Name(), ".fit") {
			continue
		}
		path := filepath.Join(fitsDir, f.Name())
		ck, err := readCheckpointFile(path)
		if err != nil {
			var ce *CorruptError
			if errors.As(err, &ce) {
				dst := filepath.Join(s.dir, "quarantine", f.Name()+".corrupt")
				if rerr := os.Rename(path, dst); rerr != nil && !os.IsNotExist(rerr) {
					return nil, rerr
				}
				continue
			}
			return nil, err
		}
		out = append(out, ck)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ClearFitState removes a fit's in-flight state (called once the fit
// publishes or is abandoned).
func (s *Store) ClearFitState(name string) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	if err := os.Remove(s.fitPath(name)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
