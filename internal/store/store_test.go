package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string) (*Store, *RecoveryStats) {
	t.Helper()
	s, stats, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, stats
}

func TestPublishLoadRoundTrip(t *testing.T) {
	s, stats := openT(t, t.TempDir())
	if stats.Degraded() {
		t.Fatalf("fresh store reports degraded: %s", stats)
	}
	ck := &Checkpoint{Name: "m1", Spec: []byte(`{"nv":2}`), Payload: []byte{1, 2, 3, 4}}
	gen, err := s.Publish(ck)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first generation = %d, want 1", gen)
	}
	got, err := s.Load("m1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "m1" || got.Generation != 1 ||
		!bytes.Equal(got.Spec, ck.Spec) || !bytes.Equal(got.Payload, ck.Payload) {
		t.Fatalf("loaded %+v", got)
	}
	if got.CreatedUnixNano == 0 {
		t.Fatal("publish did not stamp a creation time")
	}
	if _, err := s.Load("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestGenerationsAdvanceAndRetention(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	for i := 1; i <= 5; i++ {
		gen, err := s.Publish(&Checkpoint{Name: "m", Payload: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		if gen != uint64(i) {
			t.Fatalf("publish %d got generation %d", i, gen)
		}
	}
	got, err := s.Load("m")
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 5 || got.Payload[0] != 5 {
		t.Fatalf("current = %+v", got)
	}
	// Only the newest retainGenerations survive on disk.
	files, err := os.ReadDir(s.modelDir("m"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != retainGenerations {
		t.Fatalf("%d generation files on disk, want %d", len(files), retainGenerations)
	}
}

func TestReopenRecoversModels(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if _, err := s.Publish(&Checkpoint{Name: "a", Payload: []byte("aa")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish(&Checkpoint{Name: "b", Payload: []byte("bb")}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, stats := openT(t, dir)
	if stats.Degraded() {
		t.Fatalf("clean reopen reports degraded: %s", stats)
	}
	if stats.Recovered != 2 {
		t.Fatalf("recovered %d models, want 2", stats.Recovered)
	}
	names := s2.Models()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("models = %v", names)
	}
	got, err := s2.Load("a")
	if err != nil || string(got.Payload) != "aa" {
		t.Fatalf("load a: %v %+v", err, got)
	}
	// Generations keep advancing across the reopen.
	gen, err := s2.Publish(&Checkpoint{Name: "a", Payload: []byte("aa2")})
	if err != nil || gen != 2 {
		t.Fatalf("post-reopen publish: gen=%d err=%v", gen, err)
	}
}

func TestCorruptCurrentFallsBackToPrevious(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if _, err := s.Publish(&Checkpoint{Name: "m", Payload: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish(&Checkpoint{Name: "m", Payload: []byte("v2")}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one payload byte of the committed current generation.
	path := filepath.Join(s.modelDir("m"), genFileName(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, stats := openT(t, dir)
	if !stats.Degraded() || stats.Quarantined != 1 || stats.FellBack != 1 {
		t.Fatalf("stats = %s", stats)
	}
	got, err := s2.Load("m")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "v1" || got.Generation != 1 {
		t.Fatalf("fell back to %+v, want generation 1", got)
	}
	// The bad file is preserved in quarantine, not deleted.
	qfiles, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(qfiles) != 1 {
		t.Fatalf("quarantine: %v %d files", err, len(qfiles))
	}
	// A second reopen is clean: degradation is reported once, then repaired.
	s2.Close()
	_, stats3 := openT(t, dir)
	if stats3.Degraded() {
		t.Fatalf("second reopen still degraded: %s", stats3)
	}
}

func TestUncommittedPublishRollsBack(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if _, err := s.Publish(&Checkpoint{Name: "m", Payload: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between the checkpoint write and the WAL commit:
	// log begin, write a fully valid gen-2 file, never commit.
	if err := s.wal.append(walRecord{op: opBegin, name: "m", gen: 2}); err != nil {
		t.Fatal(err)
	}
	if err := writeCheckpointFile(filepath.Join(s.modelDir("m"), genFileName(2)),
		&Checkpoint{Name: "m", Generation: 2, CreatedUnixNano: 1, Payload: []byte("v2")}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, stats := openT(t, dir)
	if stats.RolledBack != 1 || stats.FellBack != 1 {
		t.Fatalf("stats = %s", stats)
	}
	got, err := s2.Load("m")
	if err != nil || string(got.Payload) != "v1" {
		t.Fatalf("uncommitted generation served: %v %+v", err, got)
	}
}

func TestDeleteSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if _, err := s.Publish(&Checkpoint{Name: "m", Payload: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("m"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("m"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound after delete, got %v", err)
	}
	s.Close()
	s2, stats := openT(t, dir)
	if stats.Recovered != 0 {
		t.Fatalf("deleted model recovered: %s", stats)
	}
	if len(s2.Models()) != 0 {
		t.Fatalf("models = %v", s2.Models())
	}
}

func TestFitStateLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	ck := &Checkpoint{Name: "m", Generation: 7, Spec: []byte("spec"), Payload: []byte("bfgs")}
	if err := s.SaveFitState(ck); err != nil {
		t.Fatal(err)
	}
	// Overwrite is atomic and last-writer-wins.
	ck2 := &Checkpoint{Name: "m", Generation: 9, Spec: []byte("spec"), Payload: []byte("bfgs2")}
	if err := s.SaveFitState(ck2); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, stats := openT(t, dir)
	if stats.FitStates != 1 {
		t.Fatalf("fit states = %d, want 1", stats.FitStates)
	}
	states, err := s2.FitStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].Generation != 9 || string(states[0].Payload) != "bfgs2" {
		t.Fatalf("states = %+v", states)
	}
	if err := s2.ClearFitState("m"); err != nil {
		t.Fatal(err)
	}
	states, err = s2.FitStates()
	if err != nil || len(states) != 0 {
		t.Fatalf("after clear: %v %d states", err, len(states))
	}
	// Clearing an absent state is a no-op, not an error.
	if err := s2.ClearFitState("m"); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptFitStateQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if err := s.SaveFitState(&Checkpoint{Name: "m", Payload: []byte("bfgs")}); err != nil {
		t.Fatal(err)
	}
	path := s.fitPath("m")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	states, err := s.FitStates()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 0 {
		t.Fatalf("corrupt fit state surfaced: %+v", states)
	}
}

func TestModelNameEscaping(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	name := "weird/name with spaces/../x"
	if _, err := s.Publish(&Checkpoint{Name: name, Payload: []byte("p")}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(name)
	if err != nil || got.Name != name {
		t.Fatalf("load: %v %+v", err, got)
	}
	s.Close()
	s2, _ := openT(t, dir)
	names := s2.Models()
	if len(names) != 1 || names[0] != name {
		t.Fatalf("recovered names = %q", names)
	}
}

func TestPublishAfterClose(t *testing.T) {
	s, _ := openT(t, t.TempDir())
	s.Close()
	if _, err := s.Publish(&Checkpoint{Name: "m"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestContainerRejectsEveryTruncation(t *testing.T) {
	enc := encodeContainer([]byte("hello, durable world"))
	for n := 0; n < len(enc); n++ {
		if _, err := decodeContainer("t", enc[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(enc))
		}
	}
	if _, err := decodeContainer("t", append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	payload, err := decodeContainer("t", enc)
	if err != nil || string(payload) != "hello, durable world" {
		t.Fatalf("round trip: %v %q", err, payload)
	}
}

// TestInvalidModelNamesRejected: url.PathEscape leaves "." and ".."
// unescaped, so without validation Delete("..") would os.RemoveAll the
// store root and Publish("..") would scatter gen files where recovery
// never looks. Every path-forming method must reject them (and "").
func TestInvalidModelNamesRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if _, err := s.Publish(&Checkpoint{Name: "ok", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", ".", ".."} {
		if _, err := s.Publish(&Checkpoint{Name: name, Payload: []byte("x")}); err == nil {
			t.Fatalf("Publish(%q) accepted", name)
		}
		if err := s.Delete(name); err == nil {
			t.Fatalf("Delete(%q) accepted", name)
		}
		if err := s.SaveFitState(&Checkpoint{Name: name, Payload: []byte("x")}); err == nil {
			t.Fatalf("SaveFitState(%q) accepted", name)
		}
		if err := s.ClearFitState(name); err == nil {
			t.Fatalf("ClearFitState(%q) accepted", name)
		}
	}
	// The rejected calls must not have touched the store: the WAL, the
	// layout directories and the published model are all still intact.
	for _, p := range []string{walName, "models", "fits", "quarantine", filepath.Join("models", "ok")} {
		if _, err := os.Stat(filepath.Join(dir, p)); err != nil {
			t.Fatalf("store damaged by rejected name: %v", err)
		}
	}
	if _, err := s.Load("ok"); err != nil {
		t.Fatal(err)
	}
}

// TestWALCompactsWhileRunning: a long-lived store compacts its log in
// place at quiescent points instead of growing it by fsynced records per
// publish until the next restart — and the compacted log still recovers
// everything on reopen.
func TestWALCompactsWhileRunning(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	const publishes = 200 // 2 records each, comfortably past walCompactEvery
	for i := 1; i <= publishes; i++ {
		if _, err := s.Publish(&Checkpoint{Name: "m", Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Each record for name "m" is 19 bytes on disk; without compaction the
	// log would hold every begin+commit pair.
	uncompacted := int64(publishes * 2 * 19)
	if size := walSize(s.walPath()); size >= uncompacted/2 {
		t.Fatalf("wal size %d after %d publishes (uncompacted would be %d): never compacted",
			size, publishes, uncompacted)
	}
	s.Close()

	s2, stats := openT(t, dir)
	if stats.Degraded() {
		t.Fatalf("reopen after compaction reports degraded: %s", stats)
	}
	got, err := s2.Load("m")
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != publishes || got.Payload[0] != byte(publishes) {
		t.Fatalf("recovered generation %d payload %v, want %d/%d",
			got.Generation, got.Payload, publishes, byte(publishes))
	}
}

// TestRootTempFilesSweptOnOpen: resetWAL's atomic write stages its temp
// file in the store root; a crash between CreateTemp and rename must not
// leave it there forever.
func TestRootTempFilesSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if _, err := s.Publish(&Checkpoint{Name: "m", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	stray := filepath.Join(dir, walName+".tmp-123456")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, stats := openT(t, dir)
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray root temp not swept (stat err: %v)", err)
	}
	if stats.CleanedTemps != 1 {
		t.Fatalf("cleaned_temps = %d, want 1", stats.CleanedTemps)
	}
	if _, err := s2.Load("m"); err != nil {
		t.Fatal(err)
	}
}
