package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// The kill-at-byte-N torture suite: simulate a crash at every possible
// byte position of the files a publish touches — the checkpoint truncated
// mid-write, any single byte flipped after a full write, the WAL cut at
// every offset — and assert the store always recovers to a consistent
// state: the model serves either the previous or the new payload intact,
// never a torn mix, never an uncommitted generation.

// publishTwo seeds a store with two committed generations of one model and
// returns the payloads.
func publishTwo(t *testing.T, dir string) (p1, p2 []byte) {
	t.Helper()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p1 = []byte("generation-one-payload")
	p2 = []byte("generation-two-payload-longer")
	if _, err := s.Publish(&Checkpoint{Name: "m", Spec: []byte("spec"), Payload: p1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish(&Checkpoint{Name: "m", Spec: []byte("spec"), Payload: p2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return p1, p2
}

// assertConsistent opens the store and asserts model "m" serves exactly
// one of the allowed payloads, fully intact.
func assertConsistent(t *testing.T, dir, scenario string, allowed ...[]byte) {
	t.Helper()
	s, stats, err := Open(dir)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", scenario, err)
	}
	defer s.Close()
	ck, err := s.Load("m")
	if err != nil {
		t.Fatalf("%s: no generation recovered (stats %s): %v", scenario, stats, err)
	}
	for _, want := range allowed {
		if bytes.Equal(ck.Payload, want) {
			return
		}
	}
	t.Fatalf("%s: recovered payload %q is none of the allowed versions (stats %s)",
		scenario, ck.Payload, stats)
}

// TestTortureCheckpointTruncatedAtEveryByte: a refit crashes mid-write —
// WAL shows begin without commit, and the new generation's file is cut at
// byte N for every N. Recovery must roll the torn generation back and
// serve generation 1 intact, at every single offset.
func TestTortureCheckpointTruncatedAtEveryByte(t *testing.T) {
	base := t.TempDir()
	seedDir := filepath.Join(base, "seed")
	p1, _ := publishTwo(t, seedDir)

	// Build the interrupted-publish image: begin gen 3 in the WAL, full
	// gen-3 file written, no commit.
	p3 := []byte("generation-three-interrupted")
	{
		s, _, err := Open(seedDir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.wal.append(walRecord{op: opBegin, name: "m", gen: 3}); err != nil {
			t.Fatal(err)
		}
		if err := writeCheckpointFile(filepath.Join(s.modelDir("m"), genFileName(3)),
			&Checkpoint{Name: "m", Generation: 3, CreatedUnixNano: 1, Payload: p3}); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	genPath := filepath.Join(seedDir, "models", "m", genFileName(3))
	full, err := os.ReadFile(genPath)
	if err != nil {
		t.Fatal(err)
	}
	// p2 was committed, but the in-flight begin for gen 3 rolls 3 back; the
	// current generation must remain 2.
	p2 := []byte("generation-two-payload-longer")
	for n := 0; n <= len(full); n++ {
		dir := filepath.Join(base, fmt.Sprintf("trunc-%d", n))
		copyTree(t, seedDir, dir)
		if err := os.WriteFile(filepath.Join(dir, "models", "m", genFileName(3)), full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		assertConsistent(t, dir, fmt.Sprintf("ckpt truncated at %d/%d", n, len(full)), p1, p2)
	}
}

// TestTortureCheckpointBitFlipAtEveryByte: every single-byte corruption of
// a committed current generation is detected by the checksum and recovery
// falls back to the intact previous generation.
func TestTortureCheckpointBitFlipAtEveryByte(t *testing.T) {
	base := t.TempDir()
	seedDir := filepath.Join(base, "seed")
	p1, p2 := publishTwo(t, seedDir)
	genPath := filepath.Join(seedDir, "models", "m", genFileName(2))
	full, err := os.ReadFile(genPath)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1337))
	for n := 0; n < len(full); n++ {
		dir := filepath.Join(base, fmt.Sprintf("flip-%d", n))
		copyTree(t, seedDir, dir)
		mut := append([]byte(nil), full...)
		// Seeded corruption: flip one random non-zero mask at each byte.
		mut[n] ^= byte(1 + rng.Intn(255))
		if err := os.WriteFile(filepath.Join(dir, "models", "m", genFileName(2)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		// A flipped byte must never yield a *different* accepted payload:
		// either the checksum catches it (fall back to p1) or — impossible
		// by CRC64 for single-byte damage — the file still reads as p2.
		assertConsistent(t, dir, fmt.Sprintf("byte %d flipped", n), p1, p2)

		// And the store must detect it: the mutated current generation can
		// only survive if it decodes bit-identically, which a byte flip
		// precludes — so the recovered payload must be p1.
		s, stats, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		ck, err := s.Load("m")
		s.Close()
		if err != nil {
			t.Fatalf("byte %d flipped: %v (stats %s)", n, err, stats)
		}
		if !bytes.Equal(ck.Payload, p1) {
			t.Fatalf("byte %d flipped: corruption not detected, served %q", n, ck.Payload)
		}
	}
}

// TestTortureWALTruncatedAtEveryByte: the WAL of an in-flight publish is
// cut at every offset. Wherever the tear lands — inside begin, between
// records, inside commit — recovery resolves to a consistent generation
// and an intact payload.
func TestTortureWALTruncatedAtEveryByte(t *testing.T) {
	base := t.TempDir()
	seedDir := filepath.Join(base, "seed")
	p1, p2 := publishTwo(t, seedDir)

	// Craft a WAL image holding the full protocol for generations 1..2
	// plus a begin+commit for a fully written generation 3: truncations
	// land in every protocol position.
	p3 := []byte("generation-three-committed")
	{
		s, _, err := Open(seedDir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Publish(&Checkpoint{Name: "m", Spec: []byte("spec"), Payload: p3}); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	walPath := filepath.Join(seedDir, walName)
	walFull, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(walFull) == 0 {
		t.Fatal("seed WAL is empty; expected begin/commit records for generation 3")
	}

	for n := 0; n <= len(walFull); n++ {
		dir := filepath.Join(base, fmt.Sprintf("wal-%d", n))
		copyTree(t, seedDir, dir)
		if err := os.WriteFile(filepath.Join(dir, walName), walFull[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		// Cut before the commit record survives → gen 3 uncommitted → p2.
		// Cut after → gen 3 current → p3. p1 remains legal if both fall.
		assertConsistent(t, dir, fmt.Sprintf("wal truncated at %d/%d", n, len(walFull)), p1, p2, p3)
	}
}

// TestTortureWALBitFlipAtEveryByte: every single-byte corruption of the
// WAL still recovers a consistent, intact generation.
func TestTortureWALBitFlipAtEveryByte(t *testing.T) {
	base := t.TempDir()
	seedDir := filepath.Join(base, "seed")
	p1, p2 := publishTwo(t, seedDir)
	p3 := []byte("generation-three-committed")
	{
		s, _, err := Open(seedDir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Publish(&Checkpoint{Name: "m", Spec: []byte("spec"), Payload: p3}); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	walPath := filepath.Join(seedDir, walName)
	walFull, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4242))
	for n := 0; n < len(walFull); n++ {
		dir := filepath.Join(base, fmt.Sprintf("walflip-%d", n))
		copyTree(t, seedDir, dir)
		mut := append([]byte(nil), walFull...)
		mut[n] ^= byte(1 + rng.Intn(255))
		if err := os.WriteFile(filepath.Join(dir, walName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		assertConsistent(t, dir, fmt.Sprintf("wal byte %d flipped", n), p1, p2, p3)
	}
}

// copyTree clones a store directory for one torture trial.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		sp := filepath.Join(src, ent.Name())
		dp := filepath.Join(dst, ent.Name())
		if ent.IsDir() {
			copyTree(t, sp, dp)
			continue
		}
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
