package model

import (
	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/sparse"
)

// QcDensifyNaive builds the BTA form of Q_c by permuting the sparse matrix
// and scanning every entry of every dense block with index lookups — the
// O(n·b²) densification path that §IV-F's cached O(nnz) mapping replaces.
// Kept as the INLA_DIST-like baseline and for the mapping ablation.
func (m *Model) QcDensifyNaive(t *Theta) (*bta.Matrix, error) {
	return m.densifyNaive(m.QcCSR(t))
}

// QpDensifyNaive is the naive-densification counterpart of Qp.
func (m *Model) QpDensifyNaive(t *Theta) (*bta.Matrix, error) {
	return m.densifyNaive(m.QpCSR(t))
}

func (m *Model) densifyNaive(csr *sparse.CSR) (*bta.Matrix, error) {
	permuted := csr.PermuteSym(m.perm)
	n, b, a := m.Dims.BTAShape()
	out := bta.NewMatrix(n, b, a)
	// Scan the full block pattern entry by entry (the deliberate O(n·b²)
	// cost: one indexed lookup per position whether stored or not).
	for blk := 0; blk < n; blk++ {
		d := out.Diag[blk]
		for i := 0; i < b; i++ {
			gi := blk*b + i
			for j := 0; j < b; j++ {
				d.Set(i, j, permuted.At(gi, blk*b+j))
			}
		}
		if blk < n-1 {
			l := out.Lower[blk]
			for i := 0; i < b; i++ {
				gi := (blk+1)*b + i
				for j := 0; j < b; j++ {
					l.Set(i, j, permuted.At(gi, blk*b+j))
				}
			}
		}
		if a > 0 {
			ar := out.Arrow[blk]
			for i := 0; i < a; i++ {
				gi := n*b + i
				for j := 0; j < b; j++ {
					ar.Set(i, j, permuted.At(gi, blk*b+j))
				}
			}
		}
	}
	if a > 0 {
		for i := 0; i < a; i++ {
			for j := 0; j < a; j++ {
				out.Tip.Set(i, j, permuted.At(n*b+i, n*b+j))
			}
		}
	}
	return out, nil
}
