package model

import (
	"fmt"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/coreg"
	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/sparse"
	"github.com/dalia-hpc/dalia/internal/spde"
)

// prototypeHyper is any valid hyperparameter value; only the induced
// sparsity pattern matters during mapping construction.
func prototypeHyper() spde.Hyper { return spde.Hyper{RangeS: 1, RangeT: 2, Sigma: 1} }

func newLambda(sig, lam []float64) (*coreg.Lambda, error) { return coreg.NewLambda(sig, lam) }

// BTAMap is the cached sparse→block-dense mapping of §IV-F: for every
// stored entry of a process-major CSR matrix with a θ-invariant pattern, it
// precomputes the destination (block, offset) in the permuted BTA layout.
// Applying the map is O(nnz) — the paper's replacement for the O(n·b²)
// naive densification — and runs every fobj evaluation.
type BTAMap struct {
	N, B, A  int
	nnz      int
	blockIdx []int32
	off      []int32
}

// newBTAMap builds the mapping for a process-major pattern under the given
// permutation (perm[new] = old).
func newBTAMap(pattern *sparse.CSR, permInv []int, n, b, a int) (*BTAMap, error) {
	nb := n * b
	dim := nb + a
	if pattern.Rows() != dim || pattern.Cols() != dim {
		return nil, fmt.Errorf("model: pattern is %d×%d, BTA(n=%d,b=%d,a=%d) needs %d",
			pattern.Rows(), pattern.Cols(), n, b, a, dim)
	}
	m := &BTAMap{N: n, B: b, A: a, nnz: pattern.NNZ()}
	m.blockIdx = make([]int32, m.nnz)
	m.off = make([]int32, m.nnz)
	// Unified block index space: [0,n) Diag, [n,2n−1) Lower, [2n−1,3n−1)
	// Arrow, 3n−1 Tip.
	p := 0
	for r := 0; r < pattern.Rows(); r++ {
		rp := permInv[r]
		for q := pattern.RowPtr[r]; q < pattern.RowPtr[r+1]; q++ {
			cp := permInv[pattern.ColIdx[q]]
			blk, off, err := btaDest(rp, cp, n, b, a)
			if err != nil {
				return nil, err
			}
			m.blockIdx[p] = int32(blk)
			m.off[p] = int32(off)
			p++
		}
	}
	return m, nil
}

// btaDest computes the unified block index and intra-block offset of the
// permuted coordinate (r,c).
func btaDest(r, c, n, b, a int) (int, int, error) {
	nb := n * b
	switch {
	case r < nb && c < nb:
		bi, bj := r/b, c/b
		ri, cj := r%b, c%b
		switch {
		case bi == bj:
			return bi, ri*b + cj, nil
		case bi == bj+1:
			return n + bj, ri*b + cj, nil
		case bj == bi+1:
			return n + bi, cj*b + ri, nil // symmetric entry stored transposed
		default:
			return 0, 0, fmt.Errorf("model: entry (%d,%d) outside BTA pattern", r, c)
		}
	case r >= nb && c < nb:
		if a == 0 {
			return 0, 0, fmt.Errorf("model: arrow entry (%d,%d) with a=0", r, c)
		}
		return 2*n - 1 + c/b, (r-nb)*b + c%b, nil
	case c >= nb && r < nb:
		if a == 0 {
			return 0, 0, fmt.Errorf("model: arrow entry (%d,%d) with a=0", r, c)
		}
		return 2*n - 1 + r/b, (c-nb)*b + r%b, nil
	default:
		return 3*n - 1, (r-nb)*a + (c - nb), nil
	}
}

// Apply scatters the CSR value array (in the pattern's canonical order)
// into a fresh BTA matrix.
func (m *BTAMap) Apply(vals []float64) (*bta.Matrix, error) {
	out := bta.NewMatrix(m.N, m.B, m.A)
	if err := m.ApplyInto(vals, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ApplyInto scatters the CSR value array into an existing BTA workspace of
// the mapping's shape without allocating — the hot-path variant used by the
// INLA scratch arena. Entries outside the pattern keep whatever values the
// previous scatter left, which is correct because the pattern is
// θ-invariant: every stored position is rewritten on every call.
func (m *BTAMap) ApplyInto(vals []float64, out *bta.Matrix) error {
	if len(vals) != m.nnz {
		return fmt.Errorf("model: value array length %d, mapping built for %d", len(vals), m.nnz)
	}
	if out.N != m.N || out.B != m.B || out.A != m.A {
		return fmt.Errorf("model: workspace BTA(n=%d,b=%d,a=%d), mapping built for (n=%d,b=%d,a=%d)",
			out.N, out.B, out.A, m.N, m.B, m.A)
	}
	// Resolve the unified block index space without materializing a block
	// slice per call: [0,n) Diag, [n,2n−1) Lower, [2n−1,3n−1) Arrow, 3n−1 Tip.
	n := int32(m.N)
	for p, v := range vals {
		idx := m.blockIdx[p]
		var blk *dense.Matrix
		switch {
		case idx < n:
			blk = out.Diag[idx]
		case idx < 2*n-1:
			blk = out.Lower[idx-n]
		case idx < 3*n-1:
			blk = out.Arrow[idx-(2*n-1)]
		default:
			blk = out.Tip
		}
		blk.Data[m.off[p]] = v
	}
	return nil
}

// buildMappings constructs the θ-invariant Q_p and Q_c patterns from a
// prototype hyperparameter configuration and caches their BTA mappings.
func (m *Model) buildMappings() error {
	proto, err := m.prototypeTheta()
	if err != nil {
		return err
	}
	m.qpPattern = m.QpCSR(proto)
	m.qcPattern = sparse.Add(1, m.qpPattern, 1, m.dataTermCSR(proto))
	n, b, a := m.Dims.BTAShape()
	if m.qpMap, err = newBTAMap(m.qpPattern, m.permInv, n, b, a); err != nil {
		return fmt.Errorf("model: Q_p mapping: %w", err)
	}
	if m.qcMap, err = newBTAMap(m.qcPattern, m.permInv, n, b, a); err != nil {
		return fmt.Errorf("model: Q_c mapping: %w", err)
	}
	return nil
}

// prototypeTheta returns an arbitrary valid configuration used only for
// pattern discovery.
func (m *Model) prototypeTheta() (*Theta, error) {
	nv := m.Dims.Nv
	t := &Theta{}
	for k := 0; k < nv; k++ {
		t.Process = append(t.Process, prototypeHyper())
		t.TauY = append(t.TauY, 1)
	}
	sig := make([]float64, nv)
	lam := make([]float64, 0, nv*(nv-1)/2)
	for k := 0; k < nv; k++ {
		sig[k] = 1
	}
	for i := 0; i < cap(lam); i++ {
		lam = append(lam, 0.1)
	}
	l, err := newLambda(sig, lam)
	if err != nil {
		return nil, err
	}
	t.Lambda = l
	return t, nil
}

// Qp assembles the prior precision as a BTA matrix (BT blocks plus a
// decoupled fixed-effects tip) for the given configuration.
func (m *Model) Qp(t *Theta) (*bta.Matrix, error) {
	out := bta.NewMatrix(m.qpMap.N, m.qpMap.B, m.qpMap.A)
	if err := m.QpInto(t, out); err != nil {
		return nil, err
	}
	return out, nil
}

// QpInto assembles the prior precision into an existing BTA workspace
// (zero solver-side allocations; the sparse assembly itself still builds
// its CSR scaffolding).
func (m *Model) QpInto(t *Theta, out *bta.Matrix) error {
	csr := m.QpCSR(t)
	if csr.NNZ() != m.qpPattern.NNZ() {
		return fmt.Errorf("model: Q_p pattern drifted (%d vs %d nonzeros)", csr.NNZ(), m.qpPattern.NNZ())
	}
	return m.qpMap.ApplyInto(csr.Val, out)
}

// Qc assembles the conditional precision Q_c = Q_p + AᵀDA as a BTA matrix.
func (m *Model) Qc(t *Theta) (*bta.Matrix, error) {
	return m.QcFromCSR(m.QcCSR(t))
}

// QcInto assembles the conditional precision into an existing workspace.
func (m *Model) QcInto(t *Theta, out *bta.Matrix) error {
	return m.QcFromCSRInto(m.QcCSR(t), out)
}

// QcFromCSR maps any process-major CSR with the model's Q_c pattern into
// BTA form through the cached mapping — the entry point for non-Gaussian
// conditional precisions whose values change every inner Newton iteration
// while the pattern stays fixed.
func (m *Model) QcFromCSR(csr *sparse.CSR) (*bta.Matrix, error) {
	out := bta.NewMatrix(m.qcMap.N, m.qcMap.B, m.qcMap.A)
	if err := m.QcFromCSRInto(csr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// QcFromCSRInto is QcFromCSR into an existing workspace.
func (m *Model) QcFromCSRInto(csr *sparse.CSR, out *bta.Matrix) error {
	if csr.NNZ() != m.qcPattern.NNZ() {
		return fmt.Errorf("model: Q_c pattern drifted (%d vs %d nonzeros)", csr.NNZ(), m.qcPattern.NNZ())
	}
	return m.qcMap.ApplyInto(csr.Val, out)
}
