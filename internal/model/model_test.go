package model

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/coreg"
	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/mesh"
	"github.com/dalia-hpc/dalia/internal/spde"
)

// testModel builds a small trivariate model with synthetic observations.
func testModel(t *testing.T, nv, nt int) (*Model, *Theta) {
	t.Helper()
	msh := mesh.Uniform(4, 4, 100, 100)
	b := spde.NewBuilder(msh, nt)
	d := coreg.Dims{Nv: nv, Ns: b.Ns(), Nt: nt, Nr: 2}
	rng := rand.New(rand.NewSource(11))

	// Observations at random interior locations, every time step.
	var pts []mesh.Point
	var tidx []int
	const perStep = 9
	for tt := 0; tt < nt; tt++ {
		for i := 0; i < perStep; i++ {
			pts = append(pts, mesh.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
			tidx = append(tidx, tt)
		}
	}
	mObs := len(pts)
	cov := dense.New(mObs, 2)
	for i := 0; i < mObs; i++ {
		cov.Set(i, 0, 1) // intercept
		cov.Set(i, 1, rng.NormFloat64())
	}
	obs := &Obs{Points: pts, TimeIdx: tidx, Covariates: cov}
	for k := 0; k < nv; k++ {
		y := make([]float64, mObs)
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		obs.Y = append(obs.Y, y)
	}
	mod, err := New(b, d, obs)
	if err != nil {
		t.Fatal(err)
	}

	sig := make([]float64, nv)
	tau := make([]float64, nv)
	var hyp []spde.Hyper
	for k := 0; k < nv; k++ {
		sig[k] = 0.8 + 0.2*float64(k)
		tau[k] = 2 + float64(k)
		hyp = append(hyp, spde.Hyper{RangeS: 40 + 5*float64(k), RangeT: 2 + float64(k), Sigma: 1})
	}
	lam := make([]float64, coreg.NumLambdas(nv))
	for i := range lam {
		lam[i] = 0.3 - 0.1*float64(i)
	}
	l, err := coreg.NewLambda(sig, lam)
	if err != nil {
		t.Fatal(err)
	}
	return mod, &Theta{Process: hyp, Lambda: l, TauY: tau}
}

func TestNumHyperMatchesPaper(t *testing.T) {
	// Table IV: univariate dim(θ)=4, trivariate coregional dim(θ)=15.
	uni, _ := testModel(t, 1, 2)
	if uni.NumHyper() != 4 {
		t.Fatalf("univariate dim(θ) = %d, want 4", uni.NumHyper())
	}
	tri, _ := testModel(t, 3, 2)
	if tri.NumHyper() != 15 {
		t.Fatalf("trivariate dim(θ) = %d, want 15", tri.NumHyper())
	}
}

func TestThetaEncodeDecodeRoundTrip(t *testing.T) {
	m, th := testModel(t, 3, 2)
	vec := m.EncodeTheta(th)
	if len(vec) != m.NumHyper() {
		t.Fatalf("encoded length %d", len(vec))
	}
	back, err := m.DecodeTheta(vec)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if math.Abs(back.Process[k].RangeS-th.Process[k].RangeS) > 1e-9 ||
			math.Abs(back.Process[k].RangeT-th.Process[k].RangeT) > 1e-9 {
			t.Fatalf("process %d hyper mismatch", k)
		}
		if math.Abs(back.TauY[k]-th.TauY[k]) > 1e-9 {
			t.Fatalf("tauY %d mismatch", k)
		}
		if math.Abs(back.Lambda.Sigmas[k]-th.Lambda.Sigmas[k]) > 1e-9 {
			t.Fatalf("sigma %d mismatch", k)
		}
	}
	if !back.Lambda.Coreg().Equal(th.Lambda.Coreg(), 1e-9) {
		t.Fatal("Λ mismatch after round trip")
	}
}

func TestDecodeThetaRejectsWrongLength(t *testing.T) {
	m, _ := testModel(t, 2, 2)
	if _, err := m.DecodeTheta(make([]float64, 3)); err == nil {
		t.Fatal("wrong theta length must error")
	}
}

func TestQpQcBTAMatchesCSR(t *testing.T) {
	m, th := testModel(t, 2, 3)
	n, b, a := m.Dims.BTAShape()

	qpCSR := m.QpCSR(th)
	qp, err := m.Qp(th)
	if err != nil {
		t.Fatal(err)
	}
	permuted := qpCSR.PermuteSym(m.perm)
	want, err := bta.FromCSR(permuted, n, b, a)
	if err != nil {
		t.Fatalf("permuted Q_p not BTA: %v", err)
	}
	if !qp.ToDense().Equal(want.ToDense(), 1e-12) {
		t.Fatal("mapped Q_p != permuted CSR Q_p")
	}

	qcCSR := m.QcCSR(th)
	qc, err := m.Qc(th)
	if err != nil {
		t.Fatal(err)
	}
	permutedC := qcCSR.PermuteSym(m.perm)
	wantC, err := bta.FromCSR(permutedC, n, b, a)
	if err != nil {
		t.Fatalf("permuted Q_c not BTA: %v", err)
	}
	if !qc.ToDense().Equal(wantC.ToDense(), 1e-12) {
		t.Fatal("mapped Q_c != permuted CSR Q_c")
	}
}

func TestQcIsSPD(t *testing.T) {
	m, th := testModel(t, 3, 2)
	qc, err := m.Qc(th)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bta.Factorize(qc); err != nil {
		t.Fatalf("Q_c not SPD: %v", err)
	}
	qp, err := m.Qp(th)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bta.Factorize(qp); err != nil {
		t.Fatalf("Q_p not SPD: %v", err)
	}
}

func TestPatternStableAcrossTheta(t *testing.T) {
	// The cached mapping requires identical patterns for different θ —
	// including λ = 0 configurations.
	m, th := testModel(t, 3, 2)
	if _, err := m.Qc(th); err != nil {
		t.Fatal(err)
	}
	l0, err := coreg.NewLambda([]float64{1, 1, 1}, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	th2 := &Theta{Process: th.Process, Lambda: l0, TauY: th.TauY}
	if _, err := m.Qc(th2); err != nil {
		t.Fatalf("pattern drift with zero lambdas: %v", err)
	}
}

func TestCondMeanMatchesDenseSolve(t *testing.T) {
	// μ = Q_c⁻¹·Aᵀ_eff·D·y computed via BTA must match the dense normal
	// equations in the original ordering.
	m, th := testModel(t, 2, 2)
	qc, err := m.Qc(th)
	if err != nil {
		t.Fatal(err)
	}
	f, err := bta.Factorize(qc)
	if err != nil {
		t.Fatal(err)
	}
	rhs := m.CondRHS(th)
	mu := append([]float64(nil), rhs...)
	f.Solve(mu)

	// Dense reference (process-major): Q_c μ = Aᵀ D y.
	qcD := m.QcCSR(th).ToDense()
	rhsPM := m.UnPerm(rhs)
	want, err := dense.Solve(qcD, rhsPM)
	if err != nil {
		t.Fatal(err)
	}
	muPM := m.UnPerm(mu)
	for i := range want {
		if math.Abs(muPM[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
			t.Fatalf("conditional mean [%d] = %v want %v", i, muPM[i], want[i])
		}
	}
}

func TestLogLikDecreasesWithResiduals(t *testing.T) {
	m, th := testModel(t, 2, 2)
	x0 := make([]float64, m.Dims.Total()) // zero latent state
	ll0 := m.LogLik(th, x0)
	// The conditional mean fits better than zero (or at least as well).
	qc, err := m.Qc(th)
	if err != nil {
		t.Fatal(err)
	}
	f, err := bta.Factorize(qc)
	if err != nil {
		t.Fatal(err)
	}
	mu := m.CondRHS(th)
	f.Solve(mu)
	llMu := m.LogLik(th, mu)
	if llMu < ll0 {
		t.Fatalf("loglik at conditional mean %v < at zero %v", llMu, ll0)
	}
}

func TestLogLikGaussianIdentity(t *testing.T) {
	// With x = 0, log ℓ = Σ_k [ m/2·(log τ_k − log 2π) − τ_k/2·‖y_k‖² ].
	m, th := testModel(t, 2, 2)
	x0 := make([]float64, m.Dims.Total())
	got := m.LogLik(th, x0)
	var want float64
	mObs := m.Obs.M()
	for k := 0; k < 2; k++ {
		var ss float64
		for _, v := range m.Obs.Y[k] {
			ss += v * v
		}
		want += 0.5*float64(mObs)*(math.Log(th.TauY[k])-math.Log(2*math.Pi)) - 0.5*th.TauY[k]*ss
	}
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("loglik %v want %v", got, want)
	}
}

func TestPredictMeanAtObservations(t *testing.T) {
	// Predicting at the observation points with the conditional mean should
	// be closer to y than the zero field is.
	m, th := testModel(t, 2, 2)
	qc, _ := m.Qc(th)
	f, err := bta.Factorize(qc)
	if err != nil {
		t.Fatal(err)
	}
	mu := m.CondRHS(th)
	f.Solve(mu)
	pred, err := m.PredictMean(th, mu, m.Obs.Points, m.Obs.TimeIdx, m.Obs.Covariates)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		var ssPred, ssZero float64
		for i := range pred[k] {
			d := pred[k][i] - m.Obs.Y[k][i]
			ssPred += d * d
			ssZero += m.Obs.Y[k][i] * m.Obs.Y[k][i]
		}
		if ssPred > ssZero {
			t.Fatalf("response %d: prediction RSS %v worse than zero fit %v", k, ssPred, ssZero)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	msh := mesh.Uniform(3, 3, 10, 10)
	b := spde.NewBuilder(msh, 2)
	d := coreg.Dims{Nv: 1, Ns: b.Ns(), Nt: 2, Nr: 0}
	// Mismatched response count.
	obs := &Obs{Points: []mesh.Point{{X: 1, Y: 1}}, TimeIdx: []int{0}, Y: [][]float64{}}
	if _, err := New(b, d, obs); err == nil {
		t.Fatal("missing responses must error")
	}
	// Bad time index.
	obs2 := &Obs{Points: []mesh.Point{{X: 1, Y: 1}}, TimeIdx: []int{5}, Y: [][]float64{{1}}}
	if _, err := New(b, d, obs2); err == nil {
		t.Fatal("time index out of range must error")
	}
	// Dims disagreement.
	d3 := coreg.Dims{Nv: 1, Ns: 999, Nt: 2, Nr: 0}
	obs3 := &Obs{Points: []mesh.Point{{X: 1, Y: 1}}, TimeIdx: []int{0}, Y: [][]float64{{1}}}
	if _, err := New(b, d3, obs3); err == nil {
		t.Fatal("dims mismatch must error")
	}
}

func BenchmarkQcAssembly(b *testing.B) {
	msh := mesh.Uniform(6, 6, 100, 100)
	sb := spde.NewBuilder(msh, 8)
	d := coreg.Dims{Nv: 3, Ns: sb.Ns(), Nt: 8, Nr: 2}
	rng := rand.New(rand.NewSource(3))
	var pts []mesh.Point
	var tidx []int
	for tt := 0; tt < 8; tt++ {
		for i := 0; i < 20; i++ {
			pts = append(pts, mesh.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
			tidx = append(tidx, tt)
		}
	}
	cov := dense.New(len(pts), 2)
	for i := 0; i < len(pts); i++ {
		cov.Set(i, 0, 1)
		cov.Set(i, 1, rng.NormFloat64())
	}
	obs := &Obs{Points: pts, TimeIdx: tidx, Covariates: cov}
	for k := 0; k < 3; k++ {
		y := make([]float64, len(pts))
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		obs.Y = append(obs.Y, y)
	}
	mod, err := New(sb, d, obs)
	if err != nil {
		b.Fatal(err)
	}
	l, _ := coreg.NewLambda([]float64{1, 1, 1}, []float64{0.3, 0.2, 0.1})
	th := &Theta{
		Process: []spde.Hyper{{RangeS: 40, RangeT: 2, Sigma: 1}, {RangeS: 50, RangeT: 3, Sigma: 1}, {RangeS: 30, RangeT: 2, Sigma: 1}},
		Lambda:  l,
		TauY:    []float64{2, 2, 2},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mod.Qc(th); err != nil {
			b.Fatal(err)
		}
	}
}
