package model

import (
	"math"
	"testing"

	"github.com/dalia-hpc/dalia/internal/sparse"
)

// TestExpandGramBlocksMatchesTriplets pins the fast sorted-CSR expansion
// against the straightforward triplet assembly it replaced.
func TestExpandGramBlocksMatchesTriplets(t *testing.T) {
	m, th := testModel(t, 3, 2)
	w := NoiseW(th)
	fast := m.expandGramBlocks(func(i, j int) float64 { return w.At(i, j) }, m.gram)

	n := m.Dims.PerProcess()
	nv := m.Dims.Nv
	coo := sparse.NewCOO(nv*n, nv*n)
	g := m.gram
	for i := 0; i < nv; i++ {
		for j := 0; j < nv; j++ {
			c := w.At(i, j)
			for r := 0; r < n; r++ {
				for p := g.RowPtr[r]; p < g.RowPtr[r+1]; p++ {
					coo.Add(i*n+r, j*n+g.ColIdx[p], c*g.Val[p])
				}
			}
		}
	}
	slow := coo.ToCSR()
	if !sparse.SameStructure(fast, slow) {
		t.Fatal("fast expansion pattern differs from triplet assembly")
	}
	for p := range fast.Val {
		if math.Abs(fast.Val[p]-slow.Val[p]) > 1e-14 {
			t.Fatalf("value %d: %v vs %v", p, fast.Val[p], slow.Val[p])
		}
	}
}

// TestJointFastPathMatchesDense cross-checks the sorted-CSR joint assembly
// in coreg through the full model path: QpCSR must stay symmetric and SPD
// for several θ, including after repeated calls (no state corruption).
func TestJointFastPathStability(t *testing.T) {
	m, th := testModel(t, 3, 2)
	first := m.QpCSR(th)
	if !first.IsSymmetric(1e-9) {
		t.Fatal("fast joint assembly lost symmetry")
	}
	for trial := 0; trial < 3; trial++ {
		again := m.QpCSR(th)
		if !sparse.SameStructure(first, again) {
			t.Fatal("pattern changed across identical calls")
		}
		for p := range again.Val {
			if again.Val[p] != first.Val[p] {
				t.Fatal("values changed across identical calls")
			}
		}
	}
}

// TestWeightedGramMatchesDense checks Aᵀdiag(w)A against a dense reference
// and that its pattern matches the unweighted Gram kernel (the property the
// Poisson inner loop relies on for mapping reuse).
func TestWeightedGramMatchesDense(t *testing.T) {
	m, _ := testModel(t, 1, 2)
	mObs := m.Obs.M()
	w := make([]float64, mObs)
	for i := range w {
		w[i] = 0.5 + float64(i%7)
	}
	got := m.weightedGram(w)
	if !sparse.SameStructure(got, m.gram) {
		t.Fatal("weighted Gram pattern differs from the cached kernel")
	}
	ad := m.aDesign.ToDense()
	n := m.Dims.PerProcess()
	for i := 0; i < n; i += 5 {
		for j := 0; j < n; j += 7 {
			var want float64
			for o := 0; o < mObs; o++ {
				want += ad.At(o, i) * w[o] * ad.At(o, j)
			}
			if math.Abs(got.At(i, j)-want) > 1e-10*(1+math.Abs(want)) {
				t.Fatalf("weightedGram(%d,%d) = %v want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

// TestNaiveDensifyMatchesCachedMapping: both Q_c construction paths must
// produce identical BTA matrices (the X1 ablation's correctness anchor).
func TestNaiveDensifyMatchesCachedMapping(t *testing.T) {
	m, th := testModel(t, 2, 3)
	fast, err := m.Qc(th)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := m.QcDensifyNaive(th)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.ToDense().Equal(naive.ToDense(), 1e-12) {
		t.Fatal("cached mapping and naive densification disagree")
	}
	fastP, err := m.Qp(th)
	if err != nil {
		t.Fatal(err)
	}
	naiveP, err := m.QpDensifyNaive(th)
	if err != nil {
		t.Fatal(err)
	}
	if !fastP.ToDense().Equal(naiveP.ToDense(), 1e-12) {
		t.Fatal("Q_p paths disagree")
	}
}
