// Package model assembles the Bayesian observation model of the paper: the
// multivariate linear model y = Λ·A·x + ε (Eq. 5) over the coregionalized
// spatio-temporal latent field, the Gaussian likelihood, and the prior and
// conditional precision matrices Q_p and Q_c = Q_p + AᵀDA (Eq. 4) in both
// general-sparse (baseline) and block-dense BTA (DALIA) form.
//
// The coregionalization structure is exploited the way §IV-B advocates:
// because every response shares the observation operator A = [A_st | A_cov],
// the data term factorizes as AᵀDA|_(i,j) = W[i,j]·(AᵀA) with the small
// dense matrix W = Λᵀ·diag(τ_y)·Λ, so the expensive sparse product AᵀA is
// computed once at setup and every hyperparameter configuration only
// rescales it.
package model

import (
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/coreg"
	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/mesh"
	"github.com/dalia-hpc/dalia/internal/sparse"
	"github.com/dalia-hpc/dalia/internal/spde"
)

// FixedEffectPriorPrecision is the vague Gaussian prior precision placed on
// fixed effects (R-INLA's default is 1e-3 as well).
const FixedEffectPriorPrecision = 1e-3

// Obs holds the observations of one multivariate dataset: every response is
// observed at the same m space-time points (the CAMS-grid situation of §VI).
type Obs struct {
	// Points and TimeIdx give the spatial location and time step of each of
	// the m observation slots.
	Points  []mesh.Point
	TimeIdx []int
	// Covariates is m×nr (fixed-effect design, e.g. elevation).
	Covariates *dense.Matrix
	// Y holds the responses: Y[k] is the length-m vector for response k.
	Y [][]float64
}

// M returns the number of observation slots per response.
func (o *Obs) M() int { return len(o.Points) }

// Model is a fully specified multivariate spatio-temporal LMC model ready
// for repeated precision-matrix assembly across hyperparameter values.
type Model struct {
	Dims    coreg.Dims
	Builder *spde.Builder
	Obs     *Obs
	// Lik selects the observation model (default LikGaussian). Set through
	// SetLikelihood before encoding/decoding hyperparameters.
	Lik LikelihoodKind
	// ST selects the spatio-temporal prior family (default STSeparable).
	ST STKind

	// fixed structures computed at construction
	aDesign *sparse.CSR // m × (ns·nt + nr): [A_st | covariates]
	gram    *sparse.CSR // AᵀA (per-process data-term kernel)
	perm    []int       // process-major → time-major (BTA) permutation
	permInv []int

	// prototype patterns + cached dense-block mappings (§IV-F)
	qpPattern *sparse.CSR
	qcPattern *sparse.CSR
	qpMap     *BTAMap
	qcMap     *BTAMap
}

// STKind selects the spatio-temporal prior family of the latent processes.
type STKind int

const (
	// STSeparable is the AR(1) ⊗ Matérn construction (the default).
	STSeparable STKind = iota
	// STDiffusion is the non-separable diffusion-based model of the
	// paper's reference [25] (implicit-Euler heat SPDE).
	STDiffusion
)

// Option customizes model construction before the cached mappings are
// built.
type Option func(*Model)

// WithSTKind selects the spatio-temporal prior family.
func WithSTKind(k STKind) Option { return func(m *Model) { m.ST = k } }

// WithLikelihood selects the observation model at construction time.
func WithLikelihood(k LikelihoodKind) Option { return func(m *Model) { m.Lik = k } }

// New constructs a model, precomputing the design matrix, the Gram kernel
// AᵀA, the time-major permutation, and the cached sparse→BTA mappings.
func New(b *spde.Builder, d coreg.Dims, obs *Obs, opts ...Option) (*Model, error) {
	if d.Ns != b.Ns() || d.Nt != b.Nt {
		return nil, fmt.Errorf("model: dims (ns=%d,nt=%d) disagree with builder (ns=%d,nt=%d)",
			d.Ns, d.Nt, b.Ns(), b.Nt)
	}
	if len(obs.Y) != d.Nv {
		return nil, fmt.Errorf("model: %d response vectors for nv=%d", len(obs.Y), d.Nv)
	}
	m := obs.M()
	if len(obs.TimeIdx) != m {
		return nil, fmt.Errorf("model: %d time indices for %d points", len(obs.TimeIdx), m)
	}
	for k, y := range obs.Y {
		if len(y) != m {
			return nil, fmt.Errorf("model: response %d has %d values, want %d", k, len(y), m)
		}
	}
	if obs.Covariates != nil && (obs.Covariates.Rows != m || obs.Covariates.Cols != d.Nr) {
		return nil, fmt.Errorf("model: covariates are %d×%d, want %d×%d",
			obs.Covariates.Rows, obs.Covariates.Cols, m, d.Nr)
	}
	if obs.Covariates == nil && d.Nr != 0 {
		return nil, fmt.Errorf("model: nr=%d but no covariates given", d.Nr)
	}

	mod := &Model{Dims: d, Builder: b, Obs: obs}
	for _, o := range opts {
		o(mod)
	}
	var err error
	mod.aDesign, err = buildDesign(b.Mesh, d, obs)
	if err != nil {
		return nil, err
	}
	at := mod.aDesign.Transpose()
	mod.gram = sparse.MatMul(at, mod.aDesign)
	mod.perm = coreg.TimeMajorPermutation(d)
	mod.permInv = sparse.InvertPerm(mod.perm)
	if err := mod.buildMappings(); err != nil {
		return nil, err
	}
	return mod, nil
}

// buildDesign assembles the per-process design matrix [A_st | covariates]:
// row i projects the latent field at time TimeIdx[i] onto Points[i] and
// appends the covariate values.
func buildDesign(msh *mesh.Mesh, d coreg.Dims, obs *Obs) (*sparse.CSR, error) {
	m := obs.M()
	cols := d.Ns*d.Nt + d.Nr
	coo := sparse.NewCOO(m, cols)
	for i := 0; i < m; i++ {
		t := obs.TimeIdx[i]
		if t < 0 || t >= d.Nt {
			return nil, fmt.Errorf("model: observation %d has time index %d outside [0,%d)", i, t, d.Nt)
		}
		ti, bc, err := msh.Locate(obs.Points[i])
		if err != nil {
			return nil, fmt.Errorf("model: observation %d: %w", i, err)
		}
		tri := msh.Tri[ti]
		for v := 0; v < 3; v++ {
			if bc[v] != 0 {
				coo.Add(i, t*d.Ns+tri[v], bc[v])
			}
		}
		for r := 0; r < d.Nr; r++ {
			coo.Add(i, d.Ns*d.Nt+r, obs.Covariates.At(i, r))
		}
	}
	return coo.ToCSR(), nil
}

// Theta is the decoded hyperparameter configuration.
type Theta struct {
	Process []spde.Hyper // per-process (range_s, range_t, sigma)
	Lambda  *coreg.Lambda
	TauY    []float64 // per-response Gaussian noise precision
}

// SetLikelihood switches the observation model. The θ layout depends on
// it: Gaussian models carry nv noise precisions that Poisson models do not.
func (m *Model) SetLikelihood(k LikelihoodKind) { m.Lik = k }

// NumHyper returns dim(θ): 3·nv + nv(nv−1)/2 plus, for Gaussian models, nv
// noise precisions — e.g. 15 for the trivariate coregional model and 4 for
// the univariate one (Table IV).
func (m *Model) NumHyper() int {
	nv := m.Dims.Nv
	n := 3*nv + coreg.NumLambdas(nv)
	if m.Lik == LikGaussian {
		n += nv
	}
	return n
}

// DecodeTheta maps the unconstrained optimizer vector to model quantities:
// [log ρ_s, log ρ_t, log σ]×nv, λ…, [log τ_y]×nv.
func (m *Model) DecodeTheta(theta []float64) (*Theta, error) {
	if len(theta) != m.NumHyper() {
		return nil, fmt.Errorf("model: theta length %d, want %d", len(theta), m.NumHyper())
	}
	nv := m.Dims.Nv
	out := &Theta{}
	idx := 0
	for k := 0; k < nv; k++ {
		out.Process = append(out.Process, spde.Hyper{
			RangeS: math.Exp(theta[idx]),
			RangeT: math.Exp(theta[idx+1]),
			Sigma:  1, // LMC latent processes have unit variance (§II-B);
			// process scale lives in Λ's σ.
		})
		idx += 3
		// σ_k of Λ comes from the same triple's third entry:
		_ = k
	}
	// Re-read the σ entries (third of each triple) for Λ's scales.
	sig := make([]float64, nv)
	for k := 0; k < nv; k++ {
		sig[k] = math.Exp(theta[3*k+2])
	}
	lam := make([]float64, coreg.NumLambdas(nv))
	copy(lam, theta[3*nv:3*nv+len(lam)])
	l, err := coreg.NewLambda(sig, lam)
	if err != nil {
		return nil, err
	}
	out.Lambda = l
	if m.Lik == LikGaussian {
		for k := 0; k < nv; k++ {
			out.TauY = append(out.TauY, math.Exp(theta[3*nv+len(lam)+k]))
		}
	}
	return out, nil
}

// EncodeTheta is the inverse of DecodeTheta for constructing initial points
// and ground-truth vectors in tests and experiments.
func (m *Model) EncodeTheta(t *Theta) []float64 {
	nv := m.Dims.Nv
	out := make([]float64, 0, m.NumHyper())
	for k := 0; k < nv; k++ {
		out = append(out, math.Log(t.Process[k].RangeS), math.Log(t.Process[k].RangeT), math.Log(t.Lambda.Sigmas[k]))
	}
	out = append(out, lambdaParams(t.Lambda)...)
	if m.Lik == LikGaussian {
		for k := 0; k < nv; k++ {
			out = append(out, math.Log(t.TauY[k]))
		}
	}
	return out
}

// lambdaParams recovers the λ parameter vector from Λ's P matrix (inverting
// the elementary-factor composition).
func lambdaParams(l *coreg.Lambda) []float64 {
	nv := l.Nv
	out := make([]float64, coreg.NumLambdas(nv))
	// Chain entries are read directly; longer bands subtract the chain
	// products (for nv ≤ 3 this matches the paper's (λ3+λ1λ2) convention).
	for i := 1; i < nv; i++ {
		out[i-1] = l.P.At(i, i-1)
	}
	idx := nv - 1
	for band := 2; band < nv; band++ {
		for i := band; i < nv; i++ {
			j := i - band
			v := l.P.At(i, j)
			// subtract the chain-path product contribution
			prod := 1.0
			for k := j; k < i; k++ {
				prod *= l.P.At(k+1, k)
			}
			out[idx] = v - prod
			idx++
		}
	}
	return out
}

// processPrecision returns process k's prior precision (fixed effects
// appended with a vague prior), process-major local ordering.
func (m *Model) processPrecision(h spde.Hyper) *sparse.CSR {
	var qst *sparse.CSR
	if m.ST == STDiffusion {
		qst = m.Builder.DiffusionPrecision(h)
	} else {
		qst = m.Builder.Precision(h)
	}
	if m.Dims.Nr == 0 {
		return qst
	}
	n := m.Dims.PerProcess()
	coo := sparse.NewCOO(n, n)
	for i := 0; i < qst.Rows(); i++ {
		for p := qst.RowPtr[i]; p < qst.RowPtr[i+1]; p++ {
			coo.Add(i, qst.ColIdx[p], qst.Val[p])
		}
	}
	for r := 0; r < m.Dims.Nr; r++ {
		coo.Add(qst.Rows()+r, qst.Rows()+r, FixedEffectPriorPrecision)
	}
	return coo.ToCSR()
}

// QpCSR assembles the joint prior precision in process-major ordering (the
// R-INLA-like baseline path operates directly on this).
func (m *Model) QpCSR(t *Theta) *sparse.CSR {
	qs := make([]*sparse.CSR, m.Dims.Nv)
	for k := 0; k < m.Dims.Nv; k++ {
		qs[k] = m.processPrecision(t.Process[k])
	}
	joint, err := t.Lambda.JointPrecision(qs)
	if err != nil {
		// dimensions are construction-guaranteed equal
		panic(fmt.Sprintf("model: %v", err))
	}
	return joint
}

// NoiseW returns W = Λᵀ·diag(τ_y)·Λ, the nv×nv data-term mixing matrix.
func NoiseW(t *Theta) *dense.Matrix {
	lc := t.Lambda.CoregView()
	nv := lc.Rows
	w := dense.New(nv, nv)
	for i := 0; i < nv; i++ {
		for j := 0; j < nv; j++ {
			var s float64
			for k := 0; k < nv; k++ {
				s += t.TauY[k] * lc.At(k, i) * lc.At(k, j)
			}
			w.Set(i, j, s)
		}
	}
	return w
}

// QcCSR assembles the conditional precision Q_c = Q_p + AᵀDA in
// process-major ordering.
func (m *Model) QcCSR(t *Theta) *sparse.CSR {
	qp := m.QpCSR(t)
	return sparse.Add(1, qp, 1, m.dataTermCSR(t))
}

// dataTermCSR expands Σ_{ij} W[i,j]·G into the joint process-major layout.
// All blocks are emitted regardless of value so the pattern is θ-invariant.
// Assembled directly in sorted CSR order (every block shares the Gram
// pattern), avoiding triplet sorting on the hot path.
func (m *Model) dataTermCSR(t *Theta) *sparse.CSR {
	w := NoiseW(t)
	return m.expandGramBlocks(func(i, j int) float64 { return w.At(i, j) }, m.gram)
}

// expandGramBlocks builds the nv×nv block matrix with block (i,j) =
// coef(i,j)·g, in canonical CSR order.
func (m *Model) expandGramBlocks(coef func(i, j int) float64, g *sparse.CSR) *sparse.CSR {
	n := m.Dims.PerProcess()
	nv := m.Dims.Nv
	total := nv * nv * g.NNZ()
	rowPtr := make([]int, nv*n+1)
	colIdx := make([]int, total)
	val := make([]float64, total)
	wp := 0
	for i := 0; i < nv; i++ {
		cs := make([]float64, nv)
		for j := 0; j < nv; j++ {
			cs[j] = coef(i, j)
		}
		for r := 0; r < n; r++ {
			rowPtr[i*n+r] = wp
			lo, hi := g.RowPtr[r], g.RowPtr[r+1]
			for j := 0; j < nv; j++ {
				c := cs[j]
				off := j * n
				for p := lo; p < hi; p++ {
					colIdx[wp] = off + g.ColIdx[p]
					val[wp] = c * g.Val[p]
					wp++
				}
			}
		}
	}
	rowPtr[nv*n] = wp
	return sparse.NewCSR(nv*n, nv*n, rowPtr, colIdx, val)
}

// CondRHS returns Aᵀ_eff·D·y in the permuted (BTA) ordering: the right-hand
// side of the conditional-mean solve Q_c·μ = rhs.
func (m *Model) CondRHS(t *Theta) []float64 {
	dst := make([]float64, m.Dims.Total())
	m.CondRHSInto(t, dst, make([]float64, m.Dims.Total()), make([]float64, m.Obs.M()))
	return dst
}

// CondRHSInto computes the conditional right-hand side into dst without
// allocating. pmScratch (length Total) holds the process-major intermediate
// before permutation; obsScratch (length Obs.M) holds the weighted response
// combination. dst must not alias pmScratch.
func (m *Model) CondRHSInto(t *Theta, dst, pmScratch, obsScratch []float64) {
	nv := m.Dims.Nv
	n := m.Dims.PerProcess()
	mObs := m.Obs.M()
	lc := t.Lambda.CoregView()
	for i := range pmScratch {
		pmScratch[i] = 0
	}
	for i := 0; i < nv; i++ {
		// weighted response combination Σ_k Λ[k,i]·τ_k·y_k
		for o := 0; o < mObs; o++ {
			obsScratch[o] = 0
		}
		for k := 0; k < nv; k++ {
			f := lc.At(k, i) * t.TauY[k]
			if f == 0 {
				continue
			}
			dense.Axpy(f, m.Obs.Y[k], obsScratch[:mObs])
		}
		m.aDesign.MulVecT(obsScratch[:mObs], pmScratch[i*n:(i+1)*n])
	}
	m.ApplyPermInto(pmScratch, dst)
}

// ApplyPerm maps a process-major vector to the BTA (time-major) ordering.
func (m *Model) ApplyPerm(x []float64) []float64 {
	out := make([]float64, len(x))
	m.ApplyPermInto(x, out)
	return out
}

// ApplyPermInto maps a process-major vector to the BTA ordering into an
// existing buffer (dst must not alias x).
func (m *Model) ApplyPermInto(x, dst []float64) {
	for newI, oldI := range m.perm {
		dst[newI] = x[oldI]
	}
}

// BTAIndex maps a process-major latent index to its position in the BTA
// (time-major) ordering — the coordinate-level counterpart of ApplyPerm,
// used by the prediction layer to scatter sparse projection rows directly
// into solver-ordered right-hand sides without building a full vector.
func (m *Model) BTAIndex(processMajor int) int { return m.permInv[processMajor] }

// UnPerm maps a BTA-ordered vector back to process-major ordering.
func (m *Model) UnPerm(x []float64) []float64 {
	out := make([]float64, len(x))
	for newI, oldI := range m.perm {
		out[oldI] = x[newI]
	}
	return out
}

// LogLik evaluates log ℓ(y|θ,x) under the model's likelihood at a latent
// state given in the permuted (BTA) ordering.
func (m *Model) LogLik(t *Theta, xPermuted []float64) float64 {
	x := m.UnPerm(xPermuted)
	if m.Lik == LikPoisson {
		return m.logLikPoissonAt(t, x)
	}
	nv := m.Dims.Nv
	n := m.Dims.PerProcess()
	mObs := m.Obs.M()
	lc := t.Lambda.CoregView()
	// u_j = A·x_j per process
	u := make([][]float64, nv)
	for j := 0; j < nv; j++ {
		u[j] = make([]float64, mObs)
		m.aDesign.MulVec(x[j*n:(j+1)*n], u[j])
	}
	var ll float64
	r := make([]float64, mObs)
	for k := 0; k < nv; k++ {
		copy(r, m.Obs.Y[k])
		for j := 0; j <= k; j++ {
			if f := lc.At(k, j); f != 0 {
				dense.Axpy(-f, u[j], r)
			}
		}
		var ss float64
		for _, v := range r {
			ss += v * v
		}
		ll += 0.5*float64(mObs)*(math.Log(t.TauY[k])-math.Log(2*math.Pi)) - 0.5*t.TauY[k]*ss
	}
	return ll
}

// PredictMean evaluates the fitted response means at new space-time points
// for every response, given the latent state in permuted ordering. This is
// the downscaling operation of §VI.
func (m *Model) PredictMean(t *Theta, xPermuted []float64, pts []mesh.Point, timeIdx []int, cov *dense.Matrix) ([][]float64, error) {
	if len(pts) != len(timeIdx) {
		return nil, fmt.Errorf("model: %d points vs %d time indices", len(pts), len(timeIdx))
	}
	d := m.Dims
	tmpObs := &Obs{Points: pts, TimeIdx: timeIdx, Covariates: cov}
	aNew, err := buildDesign(m.Builder.Mesh, d, tmpObs)
	if err != nil {
		return nil, err
	}
	x := m.UnPerm(xPermuted)
	n := d.PerProcess()
	u := make([][]float64, d.Nv)
	for j := 0; j < d.Nv; j++ {
		u[j] = make([]float64, len(pts))
		aNew.MulVec(x[j*n:(j+1)*n], u[j])
	}
	lc := t.Lambda.CoregView()
	out := make([][]float64, d.Nv)
	for k := 0; k < d.Nv; k++ {
		out[k] = make([]float64, len(pts))
		for j := 0; j <= k; j++ {
			if f := lc.At(k, j); f != 0 {
				dense.Axpy(f, u[j], out[k])
			}
		}
	}
	return out, nil
}
