package model

import (
	"errors"
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/sparse"
)

// LikelihoodKind selects the observation model. The paper's evaluation uses
// the Gaussian case (where the Laplace approximation is exact, §II-A3); the
// INLA methodology itself covers general likelihoods through the
// second-order Taylor expansion D of Eq. 4 — implemented here for Poisson
// counts with the canonical log link, the workhorse of epidemiological and
// point-process applications of R-INLA.
type LikelihoodKind int

const (
	// LikGaussian observes y = η + ε with per-response noise precision τ_y.
	LikGaussian LikelihoodKind = iota
	// LikPoisson observes y ~ Poisson(exp(η)).
	LikPoisson
)

// String names the likelihood.
func (k LikelihoodKind) String() string {
	switch k {
	case LikGaussian:
		return "gaussian"
	case LikPoisson:
		return "poisson"
	default:
		return fmt.Sprintf("likelihood(%d)", int(k))
	}
}

// ErrInnerLoopDiverged reports a failed Newton search for the conditional
// mode of a non-Gaussian model (usually an infeasible θ).
var ErrInnerLoopDiverged = errors.New("model: inner Newton loop for the conditional mode diverged")

// linPred computes the linear predictors η_k = Σ_j Λ[k,j]·A·x_j for every
// response from a process-major latent state.
func (m *Model) linPred(t *Theta, xPM []float64) [][]float64 {
	nv := m.Dims.Nv
	n := m.Dims.PerProcess()
	mObs := m.Obs.M()
	lc := t.Lambda.CoregView()
	u := make([][]float64, nv)
	for j := 0; j < nv; j++ {
		u[j] = make([]float64, mObs)
		m.aDesign.MulVec(xPM[j*n:(j+1)*n], u[j])
	}
	eta := make([][]float64, nv)
	for k := 0; k < nv; k++ {
		eta[k] = make([]float64, mObs)
		for j := 0; j <= k; j++ {
			if f := lc.At(k, j); f != 0 {
				dense.Axpy(f, u[j], eta[k])
			}
		}
	}
	return eta
}

// logLikPoissonAt evaluates Σ [y·η − exp(η) − log y!] at the given
// process-major state.
func (m *Model) logLikPoissonAt(t *Theta, xPM []float64) float64 {
	eta := m.linPred(t, xPM)
	var ll float64
	for k := range eta {
		y := m.Obs.Y[k]
		for i, e := range eta[k] {
			ll += y[i]*e - math.Exp(e) - lgammaPlus1(y[i])
		}
	}
	return ll
}

func lgammaPlus1(y float64) float64 {
	v, _ := math.Lgamma(y + 1)
	return v
}

// weightedGram computes Aᵀ·diag(w)·A with the same structural pattern as
// the cached Gram kernel (w > 0 elementwise), enabling reuse of the §IV-F
// mapping for non-Gaussian conditional precisions.
func (m *Model) weightedGram(w []float64) *sparse.CSR {
	scaled := m.aDesign.Clone()
	for i := 0; i < scaled.RowsN; i++ {
		f := w[i]
		for p := scaled.RowPtr[i]; p < scaled.RowPtr[i+1]; p++ {
			scaled.Val[p] *= f
		}
	}
	return sparse.MatMul(m.aDesign.Transpose(), scaled)
}

// dataTermPoisson expands the second-order data term AᵀD(x)A for the
// Poisson model: block (i,j) = Aᵀ·diag(Σ_k Λ[k,i]Λ[k,j]·exp(η_k))·A.
func (m *Model) dataTermPoisson(t *Theta, eta [][]float64) *sparse.CSR {
	nv := m.Dims.Nv
	n := m.Dims.PerProcess()
	mObs := m.Obs.M()
	lc := t.Lambda.CoregView()
	mu := make([][]float64, nv)
	for k := 0; k < nv; k++ {
		mu[k] = make([]float64, mObs)
		for i, e := range eta[k] {
			mu[k][i] = math.Exp(e)
		}
	}
	coo := sparse.NewCOO(nv*n, nv*n)
	w := make([]float64, mObs)
	for i := 0; i < nv; i++ {
		for j := 0; j < nv; j++ {
			for o := range w {
				w[o] = 0
			}
			for k := 0; k < nv; k++ {
				f := lc.At(k, i) * lc.At(k, j)
				if f == 0 {
					continue
				}
				dense.Axpy(f, mu[k], w)
			}
			g := m.weightedGram(w)
			for r := 0; r < n; r++ {
				for p := g.RowPtr[r]; p < g.RowPtr[r+1]; p++ {
					coo.Add(i*n+r, j*n+g.ColIdx[p], g.Val[p])
				}
			}
		}
	}
	return coo.ToCSR()
}

// scoreRHSPoisson builds the Newton right-hand side
// Aᵀ_eff·(D·η + y − exp(η)) in process-major ordering.
func (m *Model) scoreRHSPoisson(t *Theta, eta [][]float64) []float64 {
	nv := m.Dims.Nv
	n := m.Dims.PerProcess()
	mObs := m.Obs.M()
	lc := t.Lambda.CoregView()
	rhs := make([]float64, m.Dims.Total())
	buf := make([]float64, mObs)
	col := make([]float64, n)
	for i := 0; i < nv; i++ {
		for o := range buf {
			buf[o] = 0
		}
		for k := 0; k < nv; k++ {
			f := lc.At(k, i)
			if f == 0 {
				continue
			}
			y := m.Obs.Y[k]
			for o, e := range eta[k] {
				mu := math.Exp(e)
				buf[o] += f * (mu*e + y[o] - mu)
			}
		}
		m.aDesign.MulVecT(buf, col)
		copy(rhs[i*n:(i+1)*n], col)
	}
	return rhs
}

// PoissonMode holds the converged inner-Newton state of a non-Gaussian fit:
// the conditional mode x* (both orderings), the conditional precision at
// the mode in CSR and BTA form, and the iteration count.
type PoissonMode struct {
	XPM    []float64
	XPerm  []float64
	QcCSR  *sparse.CSR
	Eta    [][]float64
	Inner  int
	LogLik float64
}

// innerNewtonOptions bounds the conditional-mode search.
const (
	innerMaxIter = 30
	innerTol     = 1e-8
	etaCap       = 30 // exp overflow guard on the linear predictor
)

// ScoreRHSForTest exposes the Newton right-hand side at a converged mode
// for fixed-point verification in tests.
func (m *Model) ScoreRHSForTest(t *Theta, mode *PoissonMode) []float64 {
	return m.scoreRHSPoisson(t, mode.Eta)
}

// ConditionalModePoisson runs the damped Newton iteration for the mode of
// p(x|θ,y) under the Poisson likelihood: solve
// (Q_p + AᵀD(x)A)·x⁺ = Aᵀ(D·η + y − μ) repeatedly with the structured
// solver until the latent state stabilizes.
func (m *Model) ConditionalModePoisson(t *Theta, factorize func(*sparse.CSR) (func([]float64) []float64, error)) (*PoissonMode, error) {
	qp := m.QpCSR(t)
	x := make([]float64, m.Dims.Total())

	// Penalized objective g(x) = −½xᵀQ_px + log ℓ(y|η(x)); the Newton step
	// is damped by backtracking on g (counts with large means make the full
	// step overshoot through the exp link).
	penalized := func(x []float64, eta [][]float64) float64 {
		tmp := make([]float64, len(x))
		qp.MulVec(x, tmp)
		quad := 0.0
		for i := range x {
			quad += x[i] * tmp[i]
		}
		var ll float64
		for k := range eta {
			y := m.Obs.Y[k]
			for i, e := range eta[k] {
				ll += y[i]*e - math.Exp(e)
			}
		}
		return -0.5*quad + ll
	}
	etaOK := func(eta [][]float64) bool {
		for k := range eta {
			for _, e := range eta[k] {
				if e > etaCap || math.IsNaN(e) {
					return false
				}
			}
		}
		return true
	}

	eta := m.linPred(t, x)
	gCur := penalized(x, eta)
	for iter := 0; iter < innerMaxIter; iter++ {
		qc := sparse.Add(1, qp, 1, m.dataTermPoisson(t, eta))
		solve, err := factorize(qc)
		if err != nil {
			return nil, fmt.Errorf("model: inner iteration %d: %w", iter, err)
		}
		rhs := m.scoreRHSPoisson(t, eta)
		xFull := solve(rhs)

		// Backtracking along the Newton direction.
		var xNew []float64
		var etaNew [][]float64
		var gNew float64
		accepted := false
		for step := 1.0; step >= 1.0/64; step /= 2 {
			xNew = make([]float64, len(x))
			for i := range x {
				xNew[i] = x[i] + step*(xFull[i]-x[i])
			}
			etaNew = m.linPred(t, xNew)
			if !etaOK(etaNew) {
				continue
			}
			gNew = penalized(xNew, etaNew)
			if gNew >= gCur-1e-12 {
				accepted = true
				break
			}
		}
		if !accepted {
			return nil, ErrInnerLoopDiverged
		}
		var diff, norm float64
		for i := range x {
			d := xNew[i] - x[i]
			diff += d * d
			norm += xNew[i] * xNew[i]
		}
		x, eta, gCur = xNew, etaNew, gNew
		if diff <= innerTol*(1+norm) {
			qcStar := sparse.Add(1, qp, 1, m.dataTermPoisson(t, eta))
			return &PoissonMode{
				XPM: x, XPerm: m.ApplyPerm(x), QcCSR: qcStar, Eta: eta,
				Inner: iter + 1, LogLik: m.logLikPoissonAt(t, x),
			}, nil
		}
	}
	return nil, ErrInnerLoopDiverged
}
