package inla

import (
	"math"
	"testing"

	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/model"
	"github.com/dalia-hpc/dalia/internal/synth"
)

func genPoisson(t *testing.T, nv int) *synth.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.GenConfig{
		Nv: nv, Nt: 3, Nr: 2,
		MeshNx: 4, MeshNy: 4,
		ObsPerStep: 30,
		Seed:       13,
		Family:     model.LikPoisson,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPoissonDimTheta(t *testing.T) {
	ds := genPoisson(t, 2)
	// Poisson models drop the nv noise precisions: 3·2 + 1 = 7.
	if got := ds.Model.NumHyper(); got != 7 {
		t.Fatalf("Poisson dim(θ) = %d, want 7", got)
	}
	if len(ds.Theta0) != 7 {
		t.Fatalf("theta0 length %d", len(ds.Theta0))
	}
	dec, err := ds.Model.DecodeTheta(ds.Theta0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TauY != nil {
		t.Fatal("Poisson decode must not produce noise precisions")
	}
}

func TestPoissonCountsAreCounts(t *testing.T) {
	ds := genPoisson(t, 1)
	for _, y := range ds.Model.Obs.Y[0] {
		if y < 0 || y != math.Trunc(y) {
			t.Fatalf("Poisson observation %v is not a count", y)
		}
	}
}

func TestPoissonInnerNewtonConverges(t *testing.T) {
	ds := genPoisson(t, 1)
	th, err := ds.Model.DecodeTheta(ds.Theta0)
	if err != nil {
		t.Fatal(err)
	}
	mode, err := ds.Model.ConditionalModePoisson(th, btaFactorizer(ds.Model))
	if err != nil {
		t.Fatal(err)
	}
	if mode.Inner < 2 || mode.Inner > 30 {
		t.Fatalf("inner iterations = %d", mode.Inner)
	}
	// At the mode, the Newton update must be a (near) fixed point: one more
	// step barely moves the state.
	solve, err := btaFactorizer(ds.Model)(mode.QcCSR)
	if err != nil {
		t.Fatal(err)
	}
	next := solve(scoreRHSForTest(ds.Model, th, mode))
	var diff, norm float64
	for i := range next {
		d := next[i] - mode.XPM[i]
		diff += d * d
		norm += mode.XPM[i] * mode.XPM[i]
	}
	if diff > 1e-6*(1+norm) {
		t.Fatalf("mode is not a Newton fixed point: Δ² = %v", diff)
	}
}

// scoreRHSForTest re-derives the Newton right-hand side at the mode through
// the exported pieces (η from the mode state).
func scoreRHSForTest(m *model.Model, th *model.Theta, mode *model.PoissonMode) []float64 {
	return m.ScoreRHSForTest(th, mode)
}

func TestPoissonFobjFinite(t *testing.T) {
	ds := genPoisson(t, 2)
	prior := WeakPrior(ds.Theta0, 5)
	parts, err := EvalFobj(ds.Model, prior, ds.Theta0, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(parts.F()) || math.IsInf(parts.F(), 0) {
		t.Fatalf("Poisson fobj = %v", parts.F())
	}
	if parts.LogLik > 0 {
		t.Fatalf("Poisson loglik %v must be negative for counts > 1", parts.LogLik)
	}
}

func TestPoissonFitRecovers(t *testing.T) {
	ds := genPoisson(t, 1)
	truth := ds.Model.EncodeTheta(ds.TrueTheta)
	prior := WeakPrior(truth, 3)
	opts := DefaultFitOptions()
	opts.Opt.MaxIter = 10
	opts.SkipHyperUncertainty = true
	res, err := Fit(ds.Model, prior, ds.Theta0, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Latent log-intensity recovery: correlation with truth.
	var num, da, db float64
	for i := range res.Mu {
		num += res.Mu[i] * ds.TrueX[i]
		da += res.Mu[i] * res.Mu[i]
		db += ds.TrueX[i] * ds.TrueX[i]
	}
	corr := num / math.Sqrt(da*db)
	if corr < 0.4 {
		t.Fatalf("Poisson latent recovery correlation %v", corr)
	}
	for i, v := range res.LatentVar {
		if v <= 0 {
			t.Fatalf("latent variance[%d] = %v", i, v)
		}
	}
}

func TestPoissonModeImprovesLoglik(t *testing.T) {
	// The conditional mode must have a higher penalized loglik than zero.
	ds := genPoisson(t, 1)
	th, err := ds.Model.DecodeTheta(ds.Theta0)
	if err != nil {
		t.Fatal(err)
	}
	mode, err := ds.Model.ConditionalModePoisson(th, btaFactorizer(ds.Model))
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, ds.Model.Dims.Total())
	llZero := ds.Model.LogLik(th, zero)
	if mode.LogLik <= llZero {
		t.Fatalf("mode loglik %v not above zero-state loglik %v", mode.LogLik, llZero)
	}
}

func TestPoissonDistributedRejected(t *testing.T) {
	ds := genPoisson(t, 1)
	prior := WeakPrior(ds.Theta0, 5)
	_, err := RunDistributed(ds.Model, prior, ds.Theta0, DistConfig{
		World: 2, Machine: comm.DefaultMachine(), Iterations: 1,
	})
	if err == nil {
		t.Fatal("distributed driver must reject non-Gaussian models explicitly")
	}
}
