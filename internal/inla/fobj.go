// Package inla implements the integrated nested Laplace approximation
// engine of the paper (§III): the objective function fobj(θ) of Eq. 8, its
// BFGS optimization with parallel central-difference gradients (layer S1),
// the concurrent prior/conditional factorization pipelines (layer S2), the
// distributed solver integration (layer S3, package bta), posterior
// extraction for the hyperparameters (Hessian at the mode) and for the
// latent field (selected inversion of Q_c).
package inla

import (
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/model"
)

// Prior places independent Gaussian priors on the working-scale
// hyperparameters θ.
type Prior struct {
	Mean []float64
	SD   []float64
}

// WeakPrior centers a wide prior (sd) at the given point.
func WeakPrior(center []float64, sd float64) Prior {
	m := append([]float64(nil), center...)
	s := make([]float64, len(center))
	for i := range s {
		s[i] = sd
	}
	return Prior{Mean: m, SD: s}
}

// LogDensity evaluates Σ log N(θ_i | mean_i, sd_i²).
func (p Prior) LogDensity(theta []float64) float64 {
	var ll float64
	for i, t := range theta {
		z := (t - p.Mean[i]) / p.SD[i]
		ll += -0.5*z*z - math.Log(p.SD[i]) - 0.5*math.Log(2*math.Pi)
	}
	return ll
}

// FobjParts carries the per-term decomposition of one objective evaluation
// (Eq. 8), plus the conditional mean computed on the way.
type FobjParts struct {
	LogPrior  float64
	LogLik    float64
	LogDetQp  float64
	LogDetQc  float64
	QuadQp    float64 // μᵀ·Q_p·μ
	Mu        []float64
	LatentDim int
}

// F returns fobj(θ) = log p(θ) + log ℓ(y|θ,x*) + log p(x*|θ) − log p_G(x*|θ,y).
// For the Gaussian likelihood the Laplace approximation is exact and the
// Gaussian normalization constants of the two densities cancel:
// fobj = log p(θ) + log ℓ + ½log|Q_p| − ½μᵀQ_pμ − ½log|Q_c|.
func (p FobjParts) F() float64 {
	return p.LogPrior + p.LogLik + 0.5*p.LogDetQp - 0.5*p.QuadQp - 0.5*p.LogDetQc
}

// EvalFobj evaluates the objective at theta using the sequential BTA solver
// (the single-device DALIA path). The two factorizations of Q_p and Q_c are
// independent (§III-A); runS2 runs them concurrently when true — the S2
// layer in shared-memory form. Non-Gaussian likelihoods route through the
// inner Newton loop for the conditional mode.
func EvalFobj(m *model.Model, prior Prior, theta []float64, runS2 bool) (FobjParts, error) {
	t, err := m.DecodeTheta(theta)
	if err != nil {
		return FobjParts{}, err
	}
	if m.Lik == model.LikPoisson {
		return evalFobjPoisson(m, prior, t, theta)
	}
	parts := FobjParts{LogPrior: prior.LogDensity(theta)}

	type qpOut struct {
		logDet float64
		qp     *bta.Matrix
		err    error
	}
	type qcOut struct {
		logDet float64
		mu     []float64
		err    error
	}
	qpRes := make(chan qpOut, 1)
	qcRes := make(chan qcOut, 1)

	qpPipeline := func() {
		qp, err := m.Qp(t)
		if err != nil {
			qpRes <- qpOut{err: err}
			return
		}
		f, err := bta.Factorize(qp)
		if err != nil {
			qpRes <- qpOut{err: fmt.Errorf("inla: Q_p factorization: %w", err)}
			return
		}
		qpRes <- qpOut{logDet: f.LogDet(), qp: qp}
	}
	qcPipeline := func() {
		qc, err := m.Qc(t)
		if err != nil {
			qcRes <- qcOut{err: err}
			return
		}
		f, err := bta.Factorize(qc)
		if err != nil {
			qcRes <- qcOut{err: fmt.Errorf("inla: Q_c factorization: %w", err)}
			return
		}
		mu := m.CondRHS(t)
		f.Solve(mu)
		qcRes <- qcOut{logDet: f.LogDet(), mu: mu}
	}
	if runS2 {
		go qpPipeline()
		go qcPipeline()
	} else {
		qpPipeline()
		qcPipeline()
	}
	qp := <-qpRes
	qc := <-qcRes
	if qp.err != nil {
		return FobjParts{}, qp.err
	}
	if qc.err != nil {
		return FobjParts{}, qc.err
	}

	parts.LogDetQp = qp.logDet
	parts.LogDetQc = qc.logDet
	parts.Mu = qc.mu
	parts.LatentDim = len(qc.mu)
	// μᵀ·Q_p·μ via the block structure.
	tmp := make([]float64, len(qc.mu))
	qp.qp.MulVec(qc.mu, tmp)
	parts.QuadQp = dense.Dot(qc.mu, tmp)
	parts.LogLik = m.LogLik(t, qc.mu)
	return parts, nil
}

// Evaluator evaluates −fobj at a batch of hyperparameter points; its
// implementations define where the work runs (goroutines here, the comm
// simulator in dist.go, the general sparse solver in package baselines).
// Infeasible points (non-SPD precision) evaluate to +Inf.
type Evaluator interface {
	EvalBatch(points [][]float64) []float64
	// Posterior computes the conditional mean and latent marginal variances
	// at theta (selected inversion of Q_c).
	Posterior(theta []float64) (mu, variance []float64, err error)
}

// BTAEvaluator runs fobj on the sequential BTA solver with goroutine
// parallelism across points (S1) and across the two pipelines (S2).
type BTAEvaluator struct {
	Model *model.Model
	Prior Prior
	// Workers bounds concurrent point evaluations; 0 = all points at once.
	Workers int
	// S2 toggles the concurrent Q_p/Q_c pipelines.
	S2 bool
}

// EvalBatch evaluates −fobj at every point, +Inf for infeasible ones.
func (e *BTAEvaluator) EvalBatch(points [][]float64) []float64 {
	out := make([]float64, len(points))
	w := e.Workers
	if w <= 0 || w > len(points) {
		w = len(points)
	}
	sem := make(chan struct{}, w)
	done := make(chan struct{})
	for i := range points {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- struct{}{} }()
			parts, err := EvalFobj(e.Model, e.Prior, points[i], e.S2)
			if err != nil {
				out[i] = math.Inf(1)
				return
			}
			out[i] = -parts.F()
		}(i)
	}
	for range points {
		<-done
	}
	return out
}

// Posterior computes μ(θ) and the latent marginal variances via the
// sequential selected inversion (POBTASI). Poisson models center the
// Gaussian approximation at the conditional mode.
func (e *BTAEvaluator) Posterior(theta []float64) ([]float64, []float64, error) {
	if e.Model.Lik == model.LikPoisson {
		return posteriorPoisson(e.Model, theta)
	}
	t, err := e.Model.DecodeTheta(theta)
	if err != nil {
		return nil, nil, err
	}
	qc, err := e.Model.Qc(t)
	if err != nil {
		return nil, nil, err
	}
	f, err := bta.Factorize(qc)
	if err != nil {
		return nil, nil, err
	}
	mu := e.Model.CondRHS(t)
	f.Solve(mu)
	sig, err := f.SelectedInversion()
	if err != nil {
		return nil, nil, err
	}
	return mu, sig.DiagVec(), nil
}
