// Package inla implements the integrated nested Laplace approximation
// engine of the paper (§III): the objective function fobj(θ) of Eq. 8, its
// BFGS optimization with parallel central-difference gradients (layer S1),
// the concurrent prior/conditional factorization pipelines (layer S2), the
// distributed solver integration (layer S3, package bta), posterior
// extraction for the hyperparameters (Hessian at the mode) and for the
// latent field (selected inversion of Q_c).
package inla

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/model"
	"github.com/dalia-hpc/dalia/internal/sched"
)

// evalLabels caches eval=<k> pprof label contexts so batch runners tag each
// point's work for per-evaluation profile attribution without allocating.
var evalLabels = sched.NewLabelSet("eval")

// Prior places independent Gaussian priors on the working-scale
// hyperparameters θ.
type Prior struct {
	Mean []float64
	SD   []float64
}

// WeakPrior centers a wide prior (sd) at the given point.
func WeakPrior(center []float64, sd float64) Prior {
	m := append([]float64(nil), center...)
	s := make([]float64, len(center))
	for i := range s {
		s[i] = sd
	}
	return Prior{Mean: m, SD: s}
}

// LogDensity evaluates Σ log N(θ_i | mean_i, sd_i²).
func (p Prior) LogDensity(theta []float64) float64 {
	var ll float64
	for i, t := range theta {
		z := (t - p.Mean[i]) / p.SD[i]
		ll += -0.5*z*z - math.Log(p.SD[i]) - 0.5*math.Log(2*math.Pi)
	}
	return ll
}

// FobjParts carries the per-term decomposition of one objective evaluation
// (Eq. 8), plus the conditional mean computed on the way.
type FobjParts struct {
	LogPrior  float64
	LogLik    float64
	LogDetQp  float64
	LogDetQc  float64
	QuadQp    float64 // μᵀ·Q_p·μ
	Mu        []float64
	LatentDim int
}

// F returns fobj(θ) = log p(θ) + log ℓ(y|θ,x*) + log p(x*|θ) − log p_G(x*|θ,y).
// For the Gaussian likelihood the Laplace approximation is exact and the
// Gaussian normalization constants of the two densities cancel:
// fobj = log p(θ) + log ℓ + ½log|Q_p| − ½μᵀQ_pμ − ½log|Q_c|.
func (p FobjParts) F() float64 {
	return p.LogPrior + p.LogLik + 0.5*p.LogDetQp - 0.5*p.QuadQp - 0.5*p.LogDetQc
}

// solverScratch is the reusable arena of one fobj evaluation pipeline pair:
// the two BTA workspaces and solver backends (prior and conditional
// precision), the conditional-mean vector, and the assembly/permutation
// scratch vectors. After warm-up, repeated Refactorize+Solve cycles on the
// same scratch perform zero heap allocations — the fixed-memory-footprint
// property the INLA mode search needs across its hundreds of θ-evaluations.
//
// The arena holds the sequential factors always and builds the
// parallel-in-time pair lazily the first time a batch plan asks for
// within-factorization partitions, so purely wide workloads never pay for
// the second set of factor storage.
type solverScratch struct {
	qp, qc *bta.Matrix
	fp, fc *bta.Factor // sequential backends (partitions = 1)

	pfp, pfc cachedParallel // parallel-in-time backends, built on demand

	sigC *bta.Matrix // selected-inversion output (posterior extraction)

	mu  []float64 // conditional mean (solution of Q_c·μ = rhs)
	tmp []float64 // Q_p·μ product for the quadratic form
	pm  []float64 // process-major rhs before permutation
	obs []float64 // weighted response combination
}

func newSolverScratch(m *model.Model) *solverScratch {
	n, b, a := m.Dims.BTAShape()
	tot := m.Dims.Total()
	return &solverScratch{
		qp:  bta.NewMatrix(n, b, a),
		qc:  bta.NewMatrix(n, b, a),
		fp:  bta.NewFactor(n, b, a),
		fc:  bta.NewFactor(n, b, a),
		mu:  make([]float64, tot),
		tmp: make([]float64, tot),
		pm:  make([]float64, tot),
		obs: make([]float64, m.Obs.M()),
	}
}

// solverSpec pins the per-factorization solver configuration one batch runs
// at: the parallel-in-time width plus the reduced-system engine knobs
// (recursion depth/crossover and the pipelined boundary handoff).
type solverSpec struct {
	parts     int
	depth     int
	crossover int
	pipeline  bool
	prec      bta.Precision
	maxRefine int
	// barrier forces the solvers' legacy phase-barrier goroutine gangs;
	// exec overrides the task executor of the default DAG mode (nil =
	// sched.Shared()). Both participate in the spec comparison that gates
	// cachedParallel rebuilds.
	barrier bool
	exec    *sched.Executor
}

// specOf converts a batch plan into the factorization spec.
func specOf(plan SharedPlan) solverSpec {
	return solverSpec{parts: plan.Partitions, depth: plan.Recursion,
		pipeline: plan.PipelineReduced, prec: plan.Precision}
}

// cachedParallel lazily builds and caches one parallel-in-time factor per
// spec, so the Q_p and Q_c pipelines share a single caching policy while
// staying independent (a posterior-only workload never builds the Q_p
// one).
type cachedParallel struct {
	pf   *bta.ParallelFactor
	spec solverSpec
}

// solver returns seq for widths the clamp reduces to 1, otherwise the
// cached parallel factor for the spec (rebuilding only when it changes).
func (c *cachedParallel) solver(seq *bta.Factor, n, b, a int, spec solverSpec) (bta.Solver, error) {
	if mx := bta.MaxUsefulPartitions(n); spec.parts > mx {
		spec.parts = mx
	}
	if spec.parts <= 1 {
		seq.SetPrecision(spec.prec)
		seq.SetMaxRefine(spec.maxRefine)
		return seq, nil
	}
	if c.pf == nil || c.spec != spec {
		pf, err := bta.NewParallelFactorOpts(n, b, a, bta.ParallelOptions{
			Partitions: spec.parts,
			Precision:  spec.prec,
			MaxRefine:  spec.maxRefine,
			Reduced: bta.ReducedOptions{
				Depth: spec.depth, Crossover: spec.crossover, Pipeline: spec.pipeline,
			},
			PhaseBarrier: spec.barrier,
			Executor:     spec.exec,
		})
		if err != nil {
			return nil, err
		}
		c.pf, c.spec = pf, spec
	}
	return c.pf, nil
}

// priorSolver returns the Q_p solver for the requested factorization spec;
// condSolver the Q_c one.
func (ws *solverScratch) priorSolver(m *model.Model, spec solverSpec) (bta.Solver, error) {
	n, b, a := m.Dims.BTAShape()
	return ws.pfp.solver(ws.fp, n, b, a, spec)
}

func (ws *solverScratch) condSolver(m *model.Model, spec solverSpec) (bta.Solver, error) {
	n, b, a := m.Dims.BTAShape()
	return ws.pfc.solver(ws.fc, n, b, a, spec)
}

// solvers returns the (Q_p, Q_c) solver pair for the requested spec.
func (ws *solverScratch) solvers(m *model.Model, spec solverSpec) (sp, sc bta.Solver, err error) {
	if sp, err = ws.priorSolver(m, spec); err != nil {
		return nil, nil, err
	}
	if sc, err = ws.condSolver(m, spec); err != nil {
		return nil, nil, err
	}
	return sp, sc, nil
}

// EvalFobj evaluates the objective at theta using the sequential BTA solver
// (the single-device DALIA path). The two factorizations of Q_p and Q_c are
// independent (§III-A); runS2 runs them concurrently when true — the S2
// layer in shared-memory form. Non-Gaussian likelihoods route through the
// inner Newton loop for the conditional mode.
func EvalFobj(m *model.Model, prior Prior, theta []float64, runS2 bool) (FobjParts, error) {
	return evalFobjScratch(m, prior, theta, runS2, solverSpec{parts: 1}, nil)
}

// evalFobjScratch is EvalFobj against a caller-owned arena (nil allocates a
// fresh one), with the factorizations run at the given parallel-in-time
// width (1 = sequential POBTAF, >1 = bta.ParallelFactor over that many
// partitions). The returned FobjParts.Mu aliases the arena's μ buffer and
// is only valid until the arena's next evaluation.
func evalFobjScratch(m *model.Model, prior Prior, theta []float64, runS2 bool, spec solverSpec, ws *solverScratch) (FobjParts, error) {
	t, err := m.DecodeTheta(theta)
	if err != nil {
		return FobjParts{}, err
	}
	if m.Lik == model.LikPoisson {
		return evalFobjPoisson(m, prior, t, theta)
	}
	if ws == nil {
		ws = newSolverScratch(m)
	}
	fp, fc, err := ws.solvers(m, spec)
	if err != nil {
		return FobjParts{}, err
	}
	parts := FobjParts{LogPrior: prior.LogDensity(theta)}

	var qpErr, qcErr error
	var ldQp, ldQc float64
	qpPipeline := func() {
		if qpErr = m.QpInto(t, ws.qp); qpErr != nil {
			return
		}
		if qpErr = fp.Refactorize(ws.qp); qpErr != nil {
			qpErr = fmt.Errorf("inla: Q_p factorization: %w", qpErr)
			return
		}
		ldQp = fp.LogDet()
	}
	qcPipeline := func() {
		if qcErr = m.QcInto(t, ws.qc); qcErr != nil {
			return
		}
		if qcErr = fc.Refactorize(ws.qc); qcErr != nil {
			qcErr = fmt.Errorf("inla: Q_c factorization: %w", qcErr)
			return
		}
		m.CondRHSInto(t, ws.mu, ws.pm, ws.obs)
		fc.Solve(ws.mu)
		ldQc = fc.LogDet()
	}
	if runS2 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			qpPipeline()
		}()
		qcPipeline()
		wg.Wait()
	} else {
		qpPipeline()
		qcPipeline()
	}
	if qpErr != nil {
		return FobjParts{}, qpErr
	}
	if qcErr != nil {
		return FobjParts{}, qcErr
	}

	parts.LogDetQp = ldQp
	parts.LogDetQc = ldQc
	parts.Mu = ws.mu
	parts.LatentDim = len(ws.mu)
	// μᵀ·Q_p·μ via the block structure.
	ws.qp.MulVec(ws.mu, ws.tmp)
	parts.QuadQp = dense.Dot(ws.mu, ws.tmp)
	parts.LogLik = m.LogLik(t, ws.mu)
	return parts, nil
}

// Evaluator evaluates −fobj at a batch of hyperparameter points; its
// implementations define where the work runs (goroutines here, the comm
// simulator in dist.go, the general sparse solver in package baselines).
// Infeasible points (non-SPD precision) evaluate to +Inf.
type Evaluator interface {
	EvalBatch(points [][]float64) []float64
	// Posterior computes the conditional mean and latent marginal variances
	// at theta (selected inversion of Q_c).
	Posterior(theta []float64) (mu, variance []float64, err error)
}

// BTAEvaluator runs fobj on the structured BTA solvers with goroutine
// parallelism across points (S1), across the two pipelines (S2), and —
// when the batch is too narrow to fill the cores — across parallel-in-time
// partitions inside each factorization (S3, bta.ParallelFactor), following
// the per-batch SharedPlan. Every worker draws a solverScratch arena from
// an internal pool, so steady-state batches re-use precision workspaces,
// factors and vectors instead of re-allocating them at each of the
// 2·dim(θ)+1 evaluations per iteration.
type BTAEvaluator struct {
	Model *model.Model
	Prior Prior
	// Workers is the core budget the batch plan distributes across the
	// layers (and the bound on concurrent point evaluations); 0 = GOMAXPROCS.
	Workers int
	// S2 toggles the concurrent Q_p/Q_c pipelines.
	S2 bool
	// Partitions pins the parallel-in-time width: 0 schedules it per batch
	// (PlanBatch: wide batches sequential, narrow batches partitioned),
	// 1 forces the sequential factorization chain, ≥ 2 forces that width.
	Partitions int
	// Recursion pins the reduced-system nesting depth: 0 follows the batch
	// plan (one level once the gang is wide enough), -1 forces the
	// sequential reduced solve, ≥ 1 forces that depth.
	Recursion int
	// ReducedCrossover overrides the smallest reduced block count worth
	// recursing on (0 = bta.DefaultReducedCrossover) — the threshold knob
	// of the reduced-system engine.
	ReducedCrossover int
	// NoPipeline forces the eager (non-streamed) reduced assembly even
	// where the batch plan would pipeline the boundary handoff.
	NoPipeline bool
	// Precision selects the per-stage factorization precision policy:
	// bta.PrecMixed runs interior elimination sweeps in fp32 with the
	// reduced system, log-dets and non-SPD recovery in fp64, and fp64
	// iterative refinement on the conditional-mean solves. The zero value
	// keeps pure fp64 everywhere.
	Precision bta.Precision
	// MaxRefine bounds the fp64 refinement iterations per mixed-precision
	// solve (0 = bta.DefaultMaxRefine).
	MaxRefine int
	// PhaseBarrier forces the legacy phase-synchronized concurrency — fresh
	// per-batch goroutines (runBounded) and per-phase solver gangs —
	// instead of routing batch bodies and solver phases through the shared
	// work-stealing executor. Results are identical; the knob exists for
	// the scheduler benchmark and the cross-evaluation determinism suite.
	PhaseBarrier bool
	// Exec overrides the task executor batches and solvers run on
	// (nil = sched.Shared()). Tests use private executors so shutdown/leak
	// behaviour can be asserted in isolation.
	Exec *sched.Executor

	scratch sync.Pool // *solverScratch, shape-bound to Model

	// Quarantine bookkeeping: failed θ evaluations (infeasible points,
	// non-SPD beyond the solver's recovery, escaped panics) are absorbed as
	// +Inf and recorded here instead of crashing the fit.
	failures    atomic.Int64
	evalErrMu   sync.Mutex
	lastEvalErr *EvalError
}

// EvalError is one quarantined θ evaluation failure: the point, the retry
// attempt it occurred on (0 for a first evaluation), and the underlying
// cause. BFGS absorbs quarantined evaluations as +Inf objective values and
// recovers with step-backoff (OptOptions.MaxEvalRetries/RetryBackoff).
type EvalError struct {
	Theta   []float64
	Attempt int
	Err     error
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("inla: evaluation at θ=%v quarantined (attempt %d): %v", e.Theta, e.Attempt, e.Err)
}

func (e *EvalError) Unwrap() error { return e.Err }

// quarantine records one failed evaluation.
func (e *BTAEvaluator) quarantine(theta []float64, err error) {
	ee := &EvalError{Theta: append([]float64(nil), theta...), Err: err}
	e.failures.Add(1)
	e.evalErrMu.Lock()
	e.lastEvalErr = ee
	e.evalErrMu.Unlock()
}

// EvalFailures returns how many evaluations have been quarantined.
func (e *BTAEvaluator) EvalFailures() int64 { return e.failures.Load() }

// LastEvalError returns the most recently quarantined evaluation (nil when
// every evaluation so far succeeded).
func (e *BTAEvaluator) LastEvalError() *EvalError {
	e.evalErrMu.Lock()
	defer e.evalErrMu.Unlock()
	return e.lastEvalErr
}

func (e *BTAEvaluator) getScratch() *solverScratch {
	if ws, ok := e.scratch.Get().(*solverScratch); ok {
		return ws
	}
	return newSolverScratch(e.Model)
}

// cores resolves the evaluator's core budget.
func (e *BTAEvaluator) cores() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// planFor resolves the batch plan for the given width with the evaluator's
// pinned knobs applied (Partitions/Recursion/ReducedCrossover/NoPipeline).
// s2 tells the plan whether the evaluation actually runs two concurrent
// pipelines (Posterior runs only the Q_c one, so its full spare budget
// flows into that single factorization).
func (e *BTAEvaluator) planFor(width int, s2 bool) SharedPlan {
	plan := PlanBatch(width, e.cores(), e.Model.Dims.Nt, s2)
	if e.Partitions > 0 {
		plan.Partitions = e.Partitions
		plan.applyReducedDefaults() // re-derive for the pinned width
	}
	if e.Recursion > 0 {
		plan.Recursion = e.Recursion
	} else if e.Recursion < 0 {
		plan.Recursion = 0
	}
	if e.NoPipeline {
		plan.PipelineReduced = false
	}
	plan.Precision = e.Precision
	return plan
}

// specFor is planFor reduced to the factorization spec.
func (e *BTAEvaluator) specFor(width int, s2 bool) solverSpec {
	spec := specOf(e.planFor(width, s2))
	spec.crossover = e.ReducedCrossover
	spec.maxRefine = e.MaxRefine
	spec.barrier = e.PhaseBarrier
	spec.exec = e.Exec
	return spec
}

// executor resolves the task executor the evaluator's batches run on.
func (e *BTAEvaluator) executor() *sched.Executor {
	if e.Exec != nil {
		return e.Exec
	}
	return sched.Shared()
}

// StencilPlan reports how a batch of the given width would spend the
// evaluator's core budget (the StencilPlanner hook of HessianAtMode): the
// per-batch SharedPlan, with the pinned knobs taking precedence exactly as
// they do inside EvalBatch.
func (e *BTAEvaluator) StencilPlan(width int) SharedPlan {
	return e.planFor(width, e.S2)
}

// EvalBatch evaluates −fobj at every point, +Inf for infeasible ones. The
// batch runs at a bound of min(width, core budget) concurrent point
// evaluations pulling points off a shared counter (dynamic load balance:
// line-search-adjacent batches mix cheap and infeasible points), and
// narrow batches route their spare cores into parallel-in-time
// factorization partitions per the batch plan. By default the point
// bodies are heavy tasks on the shared work-stealing executor — warm
// workers reused across gradient/Hessian/line-search batches, and tasks
// from concurrently running batches interleaved on the same cores; under
// PhaseBarrier they run on fresh per-batch goroutines (runBounded).
func (e *BTAEvaluator) EvalBatch(points [][]float64) []float64 {
	out := make([]float64, len(points))
	w := e.cores()
	if w > len(points) {
		w = len(points)
	}
	spec := e.specFor(len(points), e.S2)
	body := func(i int) {
		ws := e.getScratch()
		var parts FobjParts
		var err error
		panicked := true
		func() {
			defer func() {
				if r := recover(); r != nil {
					// A solver abort must cost one point, not the process;
					// the poisoned scratch is dropped, not pooled.
					err = fmt.Errorf("inla: evaluation panicked: %v", r)
				}
			}()
			parts, err = evalFobjScratch(e.Model, e.Prior, points[i], e.S2, spec, ws)
			panicked = false
		}()
		if err != nil {
			e.quarantine(points[i], err)
			out[i] = math.Inf(1)
		} else {
			out[i] = -parts.F()
		}
		if !panicked {
			e.scratch.Put(ws) // parts.Mu is dead past this point
		}
	}
	if e.PhaseBarrier {
		runBounded(len(points), w, body)
	} else {
		e.runOnExecutor(len(points), w, body)
	}
	return out
}

// runOnExecutor executes body(i) for i in [0, n) as at most `workers`
// concurrent runners: workers−1 heavy tasks submitted to the executor's
// injector plus the calling goroutine, all pulling indices from a shared
// atomic counter. The caller finishes by help-joining (WaitHeavy), so the
// batch completes even when every executor worker is busy in another
// evaluation — and those workers, when free, pick these runners up without
// a single goroutine spawn.
func (e *BTAEvaluator) runOnExecutor(n, workers int, body func(i int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	runner := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				pprof.SetGoroutineLabels(context.Background())
				return
			}
			pprof.SetGoroutineLabels(evalLabels.Get(i))
			body(i)
		}
	}
	if workers == 1 {
		runner()
		return
	}
	ex := e.executor()
	var g sched.Group
	g.Init(ex)
	g.Add(workers - 1)
	tasks := make([]sched.Task, workers-1)
	for k := range tasks {
		tasks[k].Reset(ex, &g, runner, nil)
		ex.Submit(&tasks[k])
	}
	runner()
	g.WaitHeavy(nil)
}

// runBounded executes body(i) for i in [0, n) on at most workers fresh
// goroutines pulling indices from a shared atomic counter. This is the
// legacy phase-barrier batch path (BTAEvaluator.PhaseBarrier); the default
// path is runOnExecutor, which reuses the shared executor's warm workers
// instead of spawning per batch.
func runBounded(n, workers int, body func(i int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}

// Posterior computes μ(θ) and the latent marginal variances via selected
// inversion at the width-1 plan — the spare cores run inside the single
// factorization and the PPOBTASI sweeps. Poisson models center the
// Gaussian approximation at the conditional mode.
func (e *BTAEvaluator) Posterior(theta []float64) ([]float64, []float64, error) {
	if e.Model.Lik == model.LikPoisson {
		return posteriorPoisson(e.Model, theta)
	}
	t, err := e.Model.DecodeTheta(theta)
	if err != nil {
		return nil, nil, err
	}
	ws := e.getScratch()
	defer e.scratch.Put(ws)
	// Posterior runs the Q_c pipeline alone: no S2 split, so the whole
	// width-1 spare budget goes into this one factorization.
	fc, err := ws.condSolver(e.Model, e.specFor(1, false))
	if err != nil {
		return nil, nil, err
	}
	if err := e.Model.QcInto(t, ws.qc); err != nil {
		return nil, nil, err
	}
	if err := fc.Refactorize(ws.qc); err != nil {
		return nil, nil, err
	}
	e.Model.CondRHSInto(t, ws.mu, ws.pm, ws.obs)
	fc.Solve(ws.mu)
	if ws.sigC == nil {
		n, b, a := e.Model.Dims.BTAShape()
		ws.sigC = bta.NewMatrix(n, b, a)
	}
	if err := fc.SelectedInversionInto(ws.sigC); err != nil {
		return nil, nil, err
	}
	mu := append([]float64(nil), ws.mu...) // detach from the pooled arena
	return mu, ws.sigC.DiagVec(), nil
}
