package inla

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// genSeeded mirrors genSmall with an explicit seed for the equivalence grid.
func genSeeded(t *testing.T, nv int, seed int64) *synth.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.GenConfig{
		Nv: nv, Nt: 3, Nr: 2,
		MeshNx: 4, MeshNy: 4,
		ObsPerStep: 25,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestResumeMatchesUninterrupted pins the crash-recovery contract of the
// optimizer checkpoint: a fit killed mid-search and resumed from its last
// checkpoint must reach the same θ mode as the uninterrupted fit — the
// resumed continuation evaluates exactly the points the uninterrupted run
// would have, so the iterates agree to floating-point noise.
func TestResumeMatchesUninterrupted(t *testing.T) {
	for _, nv := range []int{1, 2} {
		for _, seed := range []int64{7, 11, 23} {
			nv, seed := nv, seed
			t.Run(name2("nv", nv, "seed", int(seed)), func(t *testing.T) {
				t.Parallel()
				ds := genSeeded(t, nv, seed)
				prior := WeakPrior(ds.Theta0, 5)
				mkOpts := func() OptOptions {
					o := DefaultOptOptions()
					o.MaxIter = 8
					return o
				}

				// Uninterrupted reference run.
				eRef := &BTAEvaluator{Model: ds.Model, Prior: prior}
				ref, err := Minimize(eRef, ds.Theta0, mkOpts())
				if err != nil && !errors.Is(err, ErrLineSearchFailed) {
					t.Fatal(err)
				}

				// Interrupted run: capture a checkpoint every iteration and
				// abort the search via context once the third completes —
				// the moral equivalent of a SIGKILL whose last durable state
				// is the iteration-3 checkpoint.
				const killAfter = 3
				var last *OptCheckpoint
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				interrupted := mkOpts()
				interrupted.Ctx = ctx
				interrupted.Checkpoint = func(ck *OptCheckpoint) error {
					last = ck
					if ck.Iter >= killAfter {
						cancel()
					}
					return nil
				}
				eInt := &BTAEvaluator{Model: ds.Model, Prior: prior}
				if _, err := Minimize(eInt, ds.Theta0, interrupted); !errors.Is(err, ErrFitCanceled) {
					t.Fatalf("want ErrFitCanceled, got %v", err)
				}
				if last == nil || last.Iter < killAfter {
					t.Fatalf("no checkpoint at iteration %d (last=%+v)", killAfter, last)
				}

				// Round-trip the checkpoint through the wire format, as the
				// store does, then resume from the decoded copy.
				decoded, err := UnmarshalOptCheckpoint(MarshalOptCheckpoint(last))
				if err != nil {
					t.Fatal(err)
				}
				resumed := mkOpts()
				resumed.Resume = decoded
				eRes := &BTAEvaluator{Model: ds.Model, Prior: prior}
				got, err := Minimize(eRes, ds.Theta0, resumed)
				if err != nil && !errors.Is(err, ErrLineSearchFailed) {
					t.Fatal(err)
				}

				if got.Converged != ref.Converged {
					t.Fatalf("converged: resumed %v, uninterrupted %v", got.Converged, ref.Converged)
				}
				if got.Iterations != ref.Iterations {
					t.Fatalf("iterations: resumed %d, uninterrupted %d", got.Iterations, ref.Iterations)
				}
				for i := range ref.Theta {
					if d := math.Abs(got.Theta[i] - ref.Theta[i]); d > 1e-8 {
						t.Fatalf("θ[%d]: resumed %v vs uninterrupted %v (|Δ|=%.3g)",
							i, got.Theta[i], ref.Theta[i], d)
					}
				}
				if d := math.Abs(got.F - ref.F); d > 1e-8 {
					t.Fatalf("F: resumed %v vs uninterrupted %v", got.F, ref.F)
				}
				// Evaluation bookkeeping continues from the checkpoint, so
				// the total matches the uninterrupted run exactly.
				if got.FEvals != ref.FEvals {
					t.Fatalf("fevals: resumed %d, uninterrupted %d", got.FEvals, ref.FEvals)
				}
				if len(got.Trace) != len(ref.Trace) {
					t.Fatalf("trace length: resumed %d, uninterrupted %d", len(got.Trace), len(ref.Trace))
				}
			})
		}
	}
}

func name2(k1 string, v1 int, k2 string, v2 int) string {
	return k1 + "=" + itoa(v1) + "/" + k2 + "=" + itoa(v2)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestMinimizeCanceledBeforeStart: a context canceled before the first
// iteration aborts immediately with the initial iterate and still emits a
// resumable checkpoint at iteration 0.
func TestMinimizeCanceledBeforeStart(t *testing.T) {
	q := dense.Eye(2)
	e := &quadEvaluator{q: q, c: []float64{1, -1}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptOptions()
	opts.Ctx = ctx
	var ck *OptCheckpoint
	opts.Checkpoint = func(c *OptCheckpoint) error { ck = c; return nil }
	res, err := Minimize(e, []float64{0, 0}, opts)
	if !errors.Is(err, ErrFitCanceled) {
		t.Fatalf("want ErrFitCanceled, got %v", err)
	}
	if res == nil || res.Theta[0] != 0 || res.Theta[1] != 0 {
		t.Fatalf("canceled search must return the initial iterate, got %+v", res)
	}
	if ck == nil || ck.Iter != 0 {
		t.Fatalf("want a final checkpoint at iteration 0, got %+v", ck)
	}
}

// TestFitCanceledPropagates: FitOptions.Ctx reaches the mode search and a
// canceled fit returns ErrFitCanceled without running the posterior stages.
func TestFitCanceledPropagates(t *testing.T) {
	ds := genSmall(t, 1)
	prior := WeakPrior(ds.Theta0, 5)
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultFitOptions()
	opts.Opt.MaxIter = 10
	opts.Ctx = ctx
	opts.Checkpoint = func(ck *OptCheckpoint) error {
		if ck.Iter >= 1 {
			cancel()
		}
		return nil
	}
	if _, err := Fit(ds.Model, prior, ds.Theta0, opts); !errorsIsFitCanceled(err) {
		t.Fatalf("want ErrFitCanceled, got %v", err)
	}
}

func errorsIsFitCanceled(err error) bool { return errors.Is(err, ErrFitCanceled) }

// TestMinimizeResumeDimensionMismatch: a checkpoint of the wrong
// dimensionality is rejected up front instead of corrupting the search.
func TestMinimizeResumeDimensionMismatch(t *testing.T) {
	e := &quadEvaluator{q: dense.Eye(2), c: []float64{0, 0}}
	opts := DefaultOptOptions()
	opts.Resume = &OptCheckpoint{Theta: []float64{1}, Grad: []float64{0}}
	if _, err := Minimize(e, []float64{0, 0}, opts); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

// TestCheckpointEveryStride: CheckpointEvery=k emits every k completed
// iterations only.
func TestCheckpointEveryStride(t *testing.T) {
	q := dense.New(2, 2)
	q.Set(0, 0, 4)
	q.Set(1, 1, 1)
	e := &quadEvaluator{q: q, c: []float64{2, -3}}
	opts := DefaultOptOptions()
	opts.CheckpointEvery = 2
	var iters []int
	opts.Checkpoint = func(ck *OptCheckpoint) error { iters = append(iters, ck.Iter); return nil }
	if _, err := Minimize(e, []float64{0, 0}, opts); err != nil {
		t.Fatal(err)
	}
	if len(iters) == 0 {
		t.Fatal("no checkpoints emitted")
	}
	for _, it := range iters {
		if it%2 != 0 {
			t.Fatalf("checkpoint at odd iteration %d with stride 2 (all: %v)", it, iters)
		}
	}
}

// TestCheckpointErrorStopsSearch: a failing Checkpoint callback aborts the
// search with the callback's error attached.
func TestCheckpointErrorStopsSearch(t *testing.T) {
	e := &quadEvaluator{q: dense.Eye(2), c: []float64{5, 5}}
	opts := DefaultOptOptions()
	wantErr := errors.New("disk full")
	opts.Checkpoint = func(*OptCheckpoint) error { return wantErr }
	res, err := Minimize(e, []float64{0, 0}, opts)
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("want checkpoint error, got %v", err)
	}
	if res == nil {
		t.Fatal("failed checkpoint must still return the current iterate")
	}
}

// TestResultCodecRoundTrip: MarshalResult/UnmarshalResult preserve every
// field bit-for-bit, including the optional sections.
func TestResultCodecRoundTrip(t *testing.T) {
	cov := dense.New(2, 2)
	cov.Set(0, 0, 1.25)
	cov.Set(0, 1, -0.5)
	cov.Set(1, 0, -0.5)
	cov.Set(1, 1, 2.75)
	full := &Result{
		Theta:    []float64{1.5, -2.25},
		ThetaSD:  []float64{0.1, 0.2},
		ThetaCov: cov,
		Opt: &OptResult{
			Theta: []float64{1.5, -2.25}, F: -123.456,
			Iterations: 7, FEvals: 91,
			Trace:     []float64{-100, -110, -123.456},
			Converged: true,
		},
		Mu:        []float64{0.1, 0.2, 0.3, math.Pi},
		LatentVar: []float64{1, 2, 3, 4},
		Integrated: &IntegratedPosterior{
			Points:  [][]float64{{1, 2}, {3, 4}, {5, 6}},
			Weights: []float64{0.5, 0.25, 0.25},
			Mu:      []float64{9, 8, 7, 6},
			Var:     []float64{1, 1, 2, 2},
		},
	}
	minimal := &Result{Theta: []float64{42}, Mu: []float64{1}, LatentVar: []float64{2}}

	for _, r := range []*Result{full, minimal} {
		got, err := UnmarshalResult(MarshalResult(r))
		if err != nil {
			t.Fatal(err)
		}
		assertVecEq(t, "Theta", got.Theta, r.Theta)
		assertVecEq(t, "ThetaSD", got.ThetaSD, r.ThetaSD)
		assertVecEq(t, "Mu", got.Mu, r.Mu)
		assertVecEq(t, "LatentVar", got.LatentVar, r.LatentVar)
		if (got.ThetaCov == nil) != (r.ThetaCov == nil) {
			t.Fatalf("ThetaCov presence mismatch")
		}
		if r.ThetaCov != nil {
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					if got.ThetaCov.At(i, j) != r.ThetaCov.At(i, j) {
						t.Fatalf("ThetaCov[%d,%d] mismatch", i, j)
					}
				}
			}
		}
		if (got.Opt == nil) != (r.Opt == nil) {
			t.Fatal("Opt presence mismatch")
		}
		if r.Opt != nil {
			if got.Opt.F != r.Opt.F || got.Opt.Iterations != r.Opt.Iterations ||
				got.Opt.FEvals != r.Opt.FEvals || got.Opt.Converged != r.Opt.Converged {
				t.Fatalf("Opt scalar mismatch: %+v vs %+v", got.Opt, r.Opt)
			}
			assertVecEq(t, "Opt.Trace", got.Opt.Trace, r.Opt.Trace)
		}
		if (got.Integrated == nil) != (r.Integrated == nil) {
			t.Fatal("Integrated presence mismatch")
		}
		if r.Integrated != nil {
			if len(got.Integrated.Points) != len(r.Integrated.Points) {
				t.Fatal("Integrated.Points length mismatch")
			}
			assertVecEq(t, "Integrated.Weights", got.Integrated.Weights, r.Integrated.Weights)
			assertVecEq(t, "Integrated.Mu", got.Integrated.Mu, r.Integrated.Mu)
		}
	}
}

func assertVecEq(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: %v vs %v (bits differ)", name, i, got[i], want[i])
		}
	}
}

// TestResultCodecRejectsCorruption: every truncation of a valid encoding and
// a bad version byte are rejected, never silently misdecoded.
func TestResultCodecRejectsCorruption(t *testing.T) {
	r := &Result{
		Theta: []float64{1, 2}, Mu: []float64{3, 4, 5}, LatentVar: []float64{6, 7, 8},
		Opt: &OptResult{Theta: []float64{1, 2}, F: -1, Iterations: 2, FEvals: 10,
			Trace: []float64{-0.5, -1}, Converged: true},
	}
	enc := MarshalResult(r)
	for n := 0; n < len(enc); n++ {
		if _, err := UnmarshalResult(enc[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(enc))
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if _, err := UnmarshalResult(bad); err == nil {
		t.Fatal("wrong version byte must be rejected")
	}
	if _, err := UnmarshalResult(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing garbage must be rejected")
	}
}

// TestOptCheckpointCodecRoundTrip: checkpoints round-trip bit-for-bit,
// including the inverse Hessian, and reject truncations.
func TestOptCheckpointCodecRoundTrip(t *testing.T) {
	h := dense.New(2, 2)
	h.Set(0, 0, 1.5)
	h.Set(0, 1, 0.25)
	h.Set(1, 0, 0.25)
	h.Set(1, 1, 0.75)
	ck := &OptCheckpoint{
		Theta: []float64{0.5, -0.5}, Grad: []float64{1e-3, -2e-3},
		F: -42.42, HInv: h, Iter: 5, FEvals: 37,
		Trace: []float64{-40, -41, -42.42},
	}
	enc := MarshalOptCheckpoint(ck)
	got, err := UnmarshalOptCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	assertVecEq(t, "Theta", got.Theta, ck.Theta)
	assertVecEq(t, "Grad", got.Grad, ck.Grad)
	assertVecEq(t, "Trace", got.Trace, ck.Trace)
	if got.F != ck.F || got.Iter != ck.Iter || got.FEvals != ck.FEvals {
		t.Fatalf("scalar mismatch: %+v", got)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.HInv.At(i, j) != ck.HInv.At(i, j) {
				t.Fatalf("HInv[%d,%d] mismatch", i, j)
			}
		}
	}
	for n := 0; n < len(enc); n++ {
		if _, err := UnmarshalOptCheckpoint(enc[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(enc))
		}
	}
}
