package inla

import (
	"errors"
	"math"
	"testing"

	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// quadEvaluator is an analytic Evaluator for optimizer unit tests:
// F(θ) = ½(θ−c)ᵀ·Q·(θ−c) with known minimum c and Hessian Q.
type quadEvaluator struct {
	q *dense.Matrix
	c []float64
}

func (e *quadEvaluator) EvalBatch(points [][]float64) []float64 {
	out := make([]float64, len(points))
	d := len(e.c)
	for i, p := range points {
		r := make([]float64, d)
		for j := range r {
			r[j] = p[j] - e.c[j]
		}
		tmp := make([]float64, d)
		dense.Gemv(dense.NoTrans, 1, e.q, r, 0, tmp)
		out[i] = 0.5 * dense.Dot(r, tmp)
	}
	return out
}

func (e *quadEvaluator) Posterior(theta []float64) ([]float64, []float64, error) {
	return append([]float64(nil), theta...), make([]float64, len(theta)), nil
}

func TestGradientPointsLayout(t *testing.T) {
	pts := gradientPoints([]float64{1, 2}, 0.1)
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 2d+1 = 5", len(pts))
	}
	if pts[0][0] != 1 || pts[0][1] != 2 {
		t.Fatal("center point wrong")
	}
	if pts[1][0] != 1.1 || pts[2][0] != 0.9 {
		t.Fatal("dimension-0 stencil wrong")
	}
	if pts[3][1] != 2.1 || pts[4][1] != 1.9 {
		t.Fatal("dimension-1 stencil wrong")
	}
}

func TestGradientFromBatchLinearExact(t *testing.T) {
	// F(θ) = 3θ₀ − 2θ₁: central differences are exact for linear functions.
	theta := []float64{0.5, -0.25}
	h := 0.05
	pts := gradientPoints(theta, h)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = 3*p[0] - 2*p[1]
	}
	f, g := gradientFromBatch(vals, h)
	if math.Abs(f-(3*0.5+0.5)) > 1e-12 {
		t.Fatalf("f = %v", f)
	}
	if math.Abs(g[0]-3) > 1e-10 || math.Abs(g[1]+2) > 1e-10 {
		t.Fatalf("g = %v", g)
	}
}

func TestMinimizeQuadratic(t *testing.T) {
	q := dense.New(3, 3)
	q.Set(0, 0, 4)
	q.Set(1, 1, 1)
	q.Set(2, 2, 9)
	q.Set(0, 1, 0.5)
	q.Set(1, 0, 0.5)
	e := &quadEvaluator{q: q, c: []float64{1, -2, 0.5}}
	res, err := Minimize(e, []float64{0, 0, 0}, DefaultOptOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
	for i, want := range e.c {
		if math.Abs(res.Theta[i]-want) > 1e-2 {
			t.Fatalf("θ[%d] = %v want %v", i, res.Theta[i], want)
		}
	}
	// Trace must be non-increasing.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] > res.Trace[i-1]+1e-12 {
			t.Fatalf("objective increased at iteration %d", i)
		}
	}
}

func TestMinimizeInfeasibleStart(t *testing.T) {
	e := &infEvaluator{}
	if _, err := Minimize(e, []float64{0}, DefaultOptOptions()); err == nil {
		t.Fatal("infeasible start must error")
	}
}

type infEvaluator struct{}

func (e *infEvaluator) EvalBatch(points [][]float64) []float64 {
	out := make([]float64, len(points))
	for i := range out {
		out[i] = math.Inf(1)
	}
	return out
}
func (e *infEvaluator) Posterior([]float64) ([]float64, []float64, error) {
	return nil, nil, nil
}

func TestHessianAtModeQuadratic(t *testing.T) {
	q := dense.New(2, 2)
	q.Set(0, 0, 3)
	q.Set(1, 1, 5)
	q.Set(0, 1, 1)
	q.Set(1, 0, 1)
	e := &quadEvaluator{q: q, c: []float64{0.2, -0.7}}
	h, err := HessianAtMode(e, e.c, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Equal(q, 1e-5) {
		t.Fatalf("Hessian mismatch:\n%v\nwant\n%v", h, q)
	}
}

func TestPriorLogDensity(t *testing.T) {
	p := WeakPrior([]float64{0, 0}, 1)
	// Standard normal at 0: −½log(2π) each.
	want := -math.Log(2 * math.Pi)
	if got := p.LogDensity([]float64{0, 0}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("prior at mean = %v want %v", got, want)
	}
	if p.LogDensity([]float64{1, 1}) >= p.LogDensity([]float64{0, 0}) {
		t.Fatal("prior must decrease away from the mean")
	}
}

func genSmall(t *testing.T, nv int) *synth.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.GenConfig{
		Nv: nv, Nt: 3, Nr: 2,
		MeshNx: 4, MeshNy: 4,
		ObsPerStep: 25,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestEvalFobjFiniteAndS2Consistent(t *testing.T) {
	ds := genSmall(t, 2)
	prior := WeakPrior(ds.Theta0, 5)
	p1, err := EvalFobj(ds.Model, prior, ds.Theta0, false)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := EvalFobj(ds.Model, prior, ds.Theta0, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p1.F()) || math.IsInf(p1.F(), 0) {
		t.Fatalf("fobj = %v", p1.F())
	}
	if math.Abs(p1.F()-p2.F()) > 1e-9*(1+math.Abs(p1.F())) {
		t.Fatalf("S2 on/off disagree: %v vs %v", p1.F(), p2.F())
	}
	if p1.LatentDim != ds.Model.Dims.Total() {
		t.Fatalf("latent dim %d", p1.LatentDim)
	}
}

func TestEvalFobjPrefersTruthOverJunk(t *testing.T) {
	// fobj at the generating hyperparameters should beat a far-off point.
	ds := genSmall(t, 2)
	truth := ds.Model.EncodeTheta(ds.TrueTheta)
	prior := WeakPrior(truth, 10)
	at, err := EvalFobj(ds.Model, prior, truth, false)
	if err != nil {
		t.Fatal(err)
	}
	junk := append([]float64(nil), truth...)
	for i := range junk {
		junk[i] += 3 // e^3 ≈ 20× off on every scale parameter
	}
	atJunk, err := EvalFobj(ds.Model, prior, junk, false)
	if err == nil && atJunk.F() > at.F() {
		t.Fatalf("fobj prefers junk (%v) over truth (%v)", atJunk.F(), at.F())
	}
}

func TestFitRecoversUnivariateNoise(t *testing.T) {
	ds := genSmall(t, 1)
	truth := ds.Model.EncodeTheta(ds.TrueTheta)
	prior := WeakPrior(truth, 3)
	opts := DefaultFitOptions()
	opts.Opt.MaxIter = 25
	res, err := Fit(ds.Model, prior, ds.Theta0, opts)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ds.Model.DecodeTheta(res.Theta)
	if err != nil {
		t.Fatal(err)
	}
	// Noise precision is well identified: within a factor of 2.5.
	ratio := dec.TauY[0] / ds.TrueTheta.TauY[0]
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("recovered τ_y = %v, truth %v (ratio %v)", dec.TauY[0], ds.TrueTheta.TauY[0], ratio)
	}
	// Objective decreased along the run.
	if len(res.Opt.Trace) > 1 && res.Opt.Trace[len(res.Opt.Trace)-1] > res.Opt.Trace[0] {
		t.Fatal("objective did not decrease")
	}
	// Latent marginal variances are positive.
	for i, v := range res.LatentVar {
		if v <= 0 {
			t.Fatalf("latent variance[%d] = %v", i, v)
		}
	}
}

func TestFitLatentMeanTracksTruth(t *testing.T) {
	ds := genSmall(t, 1)
	truth := ds.Model.EncodeTheta(ds.TrueTheta)
	prior := WeakPrior(truth, 3)
	opts := DefaultFitOptions()
	opts.Opt.MaxIter = 10
	opts.SkipHyperUncertainty = true
	res, err := Fit(ds.Model, prior, ds.Theta0, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Posterior mean must correlate positively with the true latent state.
	var num, da, db float64
	for i := range res.Mu {
		num += res.Mu[i] * ds.TrueX[i]
		da += res.Mu[i] * res.Mu[i]
		db += ds.TrueX[i] * ds.TrueX[i]
	}
	corr := num / math.Sqrt(da*db)
	if corr < 0.5 {
		t.Fatalf("latent posterior correlation with truth = %v, want > 0.5", corr)
	}
}

func TestFixedEffectsExtraction(t *testing.T) {
	ds := genSmall(t, 2)
	truth := ds.Model.EncodeTheta(ds.TrueTheta)
	prior := WeakPrior(truth, 3)
	opts := DefaultFitOptions()
	opts.Opt.MaxIter = 8
	opts.SkipHyperUncertainty = true
	res, err := Fit(ds.Model, prior, ds.Theta0, opts)
	if err != nil {
		t.Fatal(err)
	}
	fes := FixedEffects(ds.Model, res)
	if len(fes) != 4 { // 2 processes × 2 fixed effects
		t.Fatalf("fixed effects = %d", len(fes))
	}
	for _, fe := range fes {
		if fe.SD <= 0 {
			t.Fatalf("fixed effect sd %v", fe.SD)
		}
		if fe.Q025 >= fe.Q975 {
			t.Fatal("quantiles out of order")
		}
		if fe.Mean < fe.Q025 || fe.Mean > fe.Q975 {
			t.Fatal("mean outside its own interval")
		}
	}
}

func TestPosteriorVarianceMatchesDense(t *testing.T) {
	ds := genSmall(t, 2)
	e := &BTAEvaluator{Model: ds.Model, Prior: WeakPrior(ds.Theta0, 5)}
	_, va, err := e.Posterior(ds.Theta0)
	if err != nil {
		t.Fatal(err)
	}
	th, err := ds.Model.DecodeTheta(ds.Theta0)
	if err != nil {
		t.Fatal(err)
	}
	qc := ds.Model.QcCSR(th)
	inv, err := dense.Inverse(qc.ToDense())
	if err != nil {
		t.Fatal(err)
	}
	// Variances are permuted BTA-order; compare through UnPerm.
	vaPM := ds.Model.UnPerm(va)
	for i := 0; i < len(vaPM); i += 17 { // sample a subset
		if math.Abs(vaPM[i]-inv.At(i, i)) > 1e-7*(1+inv.At(i, i)) {
			t.Fatalf("posterior variance[%d] = %v want %v", i, vaPM[i], inv.At(i, i))
		}
	}
}

func TestBatchEvaluatorInfeasiblePoint(t *testing.T) {
	ds := genSmall(t, 1)
	e := &BTAEvaluator{Model: ds.Model, Prior: WeakPrior(ds.Theta0, 5)}
	bad := append([]float64(nil), ds.Theta0...)
	bad[0] = 800 // exp overflows to +Inf → NaN assembly → non-SPD
	vals := e.EvalBatch([][]float64{ds.Theta0, bad})
	if math.IsInf(vals[0], 1) {
		t.Fatal("good point reported infeasible")
	}
	if !math.IsInf(vals[1], 1) {
		t.Fatal("bad point must evaluate to +Inf")
	}
}

func TestThetaLayoutAndMarginals(t *testing.T) {
	names, logs := ThetaLayout(3, 3, true)
	if len(names) != 15 || len(logs) != 15 {
		t.Fatalf("trivariate layout %d/%d components, want 15", len(names), len(logs))
	}
	if names[0] != "range_s[0]" || !logs[0] {
		t.Fatalf("first component %q log=%v", names[0], logs[0])
	}
	if names[9] != "lambda[0]" || logs[9] {
		t.Fatalf("lambda component %q log=%v", names[9], logs[9])
	}
	if names[12] != "tau_y[0]" || !logs[12] {
		t.Fatalf("tau component %q log=%v", names[12], logs[12])
	}
	namesP, logsP := ThetaLayout(2, 1, false)
	if len(namesP) != 7 || len(logsP) != 7 {
		t.Fatal("poisson layout must drop tau components")
	}

	r := &Result{
		Theta:   []float64{1.0, 0.5},
		ThetaSD: []float64{0.1, 0.2},
	}
	hm := HyperMarginals([]string{"a", "b"}, []bool{true, false}, r)
	if len(hm) != 2 {
		t.Fatalf("marginals = %d", len(hm))
	}
	if hm[0].Q025 >= hm[0].Q975 || hm[0].Mean != 1.0 {
		t.Fatal("working-scale interval wrong")
	}
	if !hm[0].LogScale || math.Abs(hm[0].NaturalMedian-math.Exp(1.0)) > 1e-12 {
		t.Fatal("natural-scale transform wrong")
	}
	if hm[1].LogScale {
		t.Fatal("identity-scale component flagged log")
	}
	if HyperMarginals(nil, nil, &Result{Theta: []float64{1}}) != nil {
		t.Fatal("marginals without Hessian must be nil")
	}
}

func TestFitProducesUsableMarginals(t *testing.T) {
	ds := genSmall(t, 1)
	truth := ds.Model.EncodeTheta(ds.TrueTheta)
	prior := WeakPrior(truth, 3)
	opts := DefaultFitOptions()
	opts.Opt.MaxIter = 12
	res, err := Fit(ds.Model, prior, ds.Theta0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThetaSD == nil {
		t.Skip("Hessian stage failed on this draw; covered by other tests")
	}
	names, logs := ThetaLayout(1, 0, true)
	hms := HyperMarginals(names, logs, res)
	if len(hms) != 4 {
		t.Fatalf("marginals = %d", len(hms))
	}
	for _, hm := range hms {
		if hm.SD <= 0 || hm.Q025 >= hm.Q975 {
			t.Fatalf("degenerate marginal %+v", hm)
		}
		if hm.LogScale && (hm.NaturalQ025 <= 0 || hm.NaturalQ025 >= hm.NaturalQ975) {
			t.Fatalf("bad natural-scale interval %+v", hm)
		}
	}
}

// descendingEvaluator decreases along e_0 forever: the line search always
// accepts, the gradient never vanishes, so Minimize exhausts MaxIter
// without converging (exercises the iteration-cap path).
type descendingEvaluator struct{}

func (e *descendingEvaluator) EvalBatch(points [][]float64) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = -p[0]
	}
	return out
}
func (e *descendingEvaluator) Posterior([]float64) ([]float64, []float64, error) {
	return nil, nil, nil
}

func TestMinimizeHitsIterationCap(t *testing.T) {
	opts := DefaultOptOptions()
	opts.MaxIter = 3
	res, err := Minimize(&descendingEvaluator{}, []float64{0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("linear descent cannot converge")
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations = %d, want cap 3", res.Iterations)
	}
	if res.Theta[0] <= 0 {
		t.Fatal("optimizer made no progress downhill")
	}
}

// cliffEvaluator is finite at the start but +Inf everywhere else: the first
// line search cannot find a decrease.
type cliffEvaluator struct{ calls int }

func (e *cliffEvaluator) EvalBatch(points [][]float64) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		if p[0] == 0 {
			out[i] = 5
		} else {
			out[i] = math.Inf(1)
		}
	}
	return out
}
func (e *cliffEvaluator) Posterior([]float64) ([]float64, []float64, error) {
	return nil, nil, nil
}

func TestMinimizeUndefinedGradient(t *testing.T) {
	// The ±h stencil around 0 is infinite (Inf − Inf = NaN gradient): the
	// optimizer must not report convergence — it returns the best iterate
	// with ErrGradientUndefined.
	res, err := Minimize(&cliffEvaluator{}, []float64{0}, DefaultOptOptions())
	if !errors.Is(err, ErrGradientUndefined) {
		t.Fatalf("want ErrGradientUndefined, got %v (res=%+v)", err, res)
	}
	if res == nil || res.Theta[0] != 0 || res.Converged {
		t.Fatal("undefined gradient must return the last iterate, unconverged")
	}
	// The default policy retries the stencil with a shrunk step before
	// giving up: 3 attempts × 3 points for the 1-d cliff.
	if res.FEvals != 9 {
		t.Fatalf("want 9 evaluations (2 step-backoff retries), got %d", res.FEvals)
	}
}
