package inla

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// Stable binary (de)serialization of fit results and optimizer checkpoints.
//
// The encoding is the durability contract of the persistence layer
// (internal/store): a fitted model's θ mode, BFGS state and latent posterior
// written by one process must decode bit-for-bit in a later one, so every
// float64 is stored as its IEEE-754 bit pattern (little-endian) — no textual
// round-tripping — and the format carries an explicit version byte so later
// PRs can evolve it without corrupting old checkpoints.

// resultCodecVersion is the current Result wire-format version.
const resultCodecVersion = 1

// optCheckpointVersion is the current OptCheckpoint wire-format version.
const optCheckpointVersion = 1

// Result section-presence flags.
const (
	resHasThetaSD = 1 << iota
	resHasThetaCov
	resHasOpt
	resHasIntegrated
)

// MarshalResult encodes a fit result into the stable binary format. Every
// field of Result round-trips, including the BFGS OptResult (so a restored
// model keeps its optimization provenance) and the optional grid-integrated
// posterior.
func MarshalResult(r *Result) []byte {
	var flags byte
	if r.ThetaSD != nil {
		flags |= resHasThetaSD
	}
	if r.ThetaCov != nil {
		flags |= resHasThetaCov
	}
	if r.Opt != nil {
		flags |= resHasOpt
	}
	if r.Integrated != nil {
		flags |= resHasIntegrated
	}
	buf := []byte{resultCodecVersion, flags}
	buf = appendVec(buf, r.Theta)
	if r.ThetaSD != nil {
		buf = appendVec(buf, r.ThetaSD)
	}
	if r.ThetaCov != nil {
		buf = appendMat(buf, r.ThetaCov)
	}
	if r.Opt != nil {
		buf = appendVec(buf, r.Opt.Theta)
		buf = appendF64(buf, r.Opt.F)
		buf = binary.AppendUvarint(buf, uint64(r.Opt.Iterations))
		buf = binary.AppendUvarint(buf, uint64(r.Opt.FEvals))
		buf = appendVec(buf, r.Opt.Trace)
		buf = appendBool(buf, r.Opt.Converged)
	}
	buf = appendVec(buf, r.Mu)
	buf = appendVec(buf, r.LatentVar)
	if r.Integrated != nil {
		ip := r.Integrated
		buf = binary.AppendUvarint(buf, uint64(len(ip.Points)))
		for _, p := range ip.Points {
			buf = appendVec(buf, p)
		}
		buf = appendVec(buf, ip.Weights)
		buf = appendVec(buf, ip.Mu)
		buf = appendVec(buf, ip.Var)
	}
	return buf
}

// UnmarshalResult decodes a result encoded by MarshalResult, failing on a
// version it does not understand or on truncated/garbled input.
func UnmarshalResult(data []byte) (*Result, error) {
	d := &decoder{buf: data}
	if v := d.u8(); v != resultCodecVersion {
		if d.err != nil {
			return nil, fmt.Errorf("inla: result decode: %w", d.err)
		}
		return nil, fmt.Errorf("inla: result codec version %d, this build reads %d", v, resultCodecVersion)
	}
	flags := d.u8()
	r := &Result{}
	r.Theta = d.vec()
	if flags&resHasThetaSD != 0 {
		r.ThetaSD = d.vec()
	}
	if flags&resHasThetaCov != 0 {
		r.ThetaCov = d.mat()
	}
	if flags&resHasOpt != 0 {
		opt := &OptResult{}
		opt.Theta = d.vec()
		opt.F = d.f64()
		opt.Iterations = d.count()
		opt.FEvals = d.count()
		opt.Trace = d.vec()
		opt.Converged = d.bool()
		r.Opt = opt
	}
	r.Mu = d.vec()
	r.LatentVar = d.vec()
	if flags&resHasIntegrated != 0 {
		ip := &IntegratedPosterior{}
		n := d.count()
		if d.err == nil && n > d.remaining() {
			d.err = fmt.Errorf("point count %d exceeds remaining input", n)
		}
		for i := 0; i < n && d.err == nil; i++ {
			ip.Points = append(ip.Points, d.vec())
		}
		ip.Weights = d.vec()
		ip.Mu = d.vec()
		ip.Var = d.vec()
		r.Integrated = ip
	}
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("inla: result decode: %w", err)
	}
	return r, nil
}

// OptCheckpoint freezes the complete state of a BFGS mode search at an
// iteration boundary: the current iterate and gradient, the objective value,
// the inverse-Hessian approximation, and the evaluation bookkeeping. A
// search resumed from a checkpoint continues exactly where the interrupted
// one stopped — the continuation evaluates the same points an uninterrupted
// run would have, so the resumed mode matches the uninterrupted mode.
type OptCheckpoint struct {
	Theta []float64     // current iterate
	Grad  []float64     // gradient at Theta
	F     float64       // objective at Theta
	HInv  *dense.Matrix // inverse BFGS Hessian approximation
	// Iter is the number of completed iterations; a resumed search
	// continues at iteration Iter.
	Iter   int
	FEvals int
	Trace  []float64 // objective per completed iteration (center values)
}

// clone deep-copies the checkpoint so callers may retain it across further
// optimizer iterations that reuse the underlying buffers.
func (ck *OptCheckpoint) clone() *OptCheckpoint {
	c := &OptCheckpoint{
		Theta:  append([]float64(nil), ck.Theta...),
		Grad:   append([]float64(nil), ck.Grad...),
		F:      ck.F,
		Iter:   ck.Iter,
		FEvals: ck.FEvals,
		Trace:  append([]float64(nil), ck.Trace...),
	}
	if ck.HInv != nil {
		c.HInv = ck.HInv.Clone()
	}
	return c
}

// MarshalOptCheckpoint encodes an optimizer checkpoint into the stable
// binary format (the payload of the per-fit write-ahead state the store
// keeps for in-flight fits).
func MarshalOptCheckpoint(ck *OptCheckpoint) []byte {
	buf := []byte{optCheckpointVersion}
	buf = appendVec(buf, ck.Theta)
	buf = appendVec(buf, ck.Grad)
	buf = appendF64(buf, ck.F)
	buf = appendMat(buf, ck.HInv)
	buf = binary.AppendUvarint(buf, uint64(ck.Iter))
	buf = binary.AppendUvarint(buf, uint64(ck.FEvals))
	buf = appendVec(buf, ck.Trace)
	return buf
}

// UnmarshalOptCheckpoint decodes a checkpoint written by
// MarshalOptCheckpoint.
func UnmarshalOptCheckpoint(data []byte) (*OptCheckpoint, error) {
	d := &decoder{buf: data}
	if v := d.u8(); v != optCheckpointVersion {
		if d.err != nil {
			return nil, fmt.Errorf("inla: checkpoint decode: %w", d.err)
		}
		return nil, fmt.Errorf("inla: checkpoint codec version %d, this build reads %d", v, optCheckpointVersion)
	}
	ck := &OptCheckpoint{}
	ck.Theta = d.vec()
	ck.Grad = d.vec()
	ck.F = d.f64()
	ck.HInv = d.mat()
	ck.Iter = d.count()
	ck.FEvals = d.count()
	ck.Trace = d.vec()
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("inla: checkpoint decode: %w", err)
	}
	return ck, nil
}

// --- primitive append/decode helpers ---

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// appendVec writes a length-prefixed float64 slice (bit-exact).
func appendVec(buf []byte, v []float64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	for _, x := range v {
		buf = appendF64(buf, x)
	}
	return buf
}

// appendMat writes a dense matrix as rows, cols and row-major data; views
// with a wider stride are compacted on the way out.
func appendMat(buf []byte, m *dense.Matrix) []byte {
	if m == nil {
		return binary.AppendUvarint(binary.AppendUvarint(buf, 0), 0)
	}
	buf = binary.AppendUvarint(buf, uint64(m.Rows))
	buf = binary.AppendUvarint(buf, uint64(m.Cols))
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			buf = appendF64(buf, m.At(i, j))
		}
	}
	return buf
}

// decoder reads the primitives back, latching the first error so callers can
// chain reads and check once.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated at byte %d", d.off)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("truncated float at byte %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// count reads a uvarint and range-checks it as a non-negative int.
func (d *decoder) count() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at byte %d", d.off)
		return 0
	}
	d.off += n
	if v > uint64(math.MaxInt32) {
		d.fail("implausible count %d at byte %d", v, d.off)
		return 0
	}
	return int(v)
}

func (d *decoder) vec() []float64 {
	n := d.count()
	if d.err != nil {
		return nil
	}
	if d.remaining() < 8*n {
		d.fail("vector of %d floats exceeds remaining %d bytes", n, d.remaining())
		return nil
	}
	if n == 0 {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

func (d *decoder) mat() *dense.Matrix {
	r := d.count()
	c := d.count()
	if d.err != nil {
		return nil
	}
	if r == 0 && c == 0 {
		return nil
	}
	if d.remaining() < 8*r*c {
		d.fail("matrix %dx%d exceeds remaining %d bytes", r, c, d.remaining())
		return nil
	}
	m := dense.New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, d.f64())
		}
	}
	return m
}

// finish reports the latched error, or trailing garbage after a clean parse.
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%d trailing bytes after payload", len(d.buf)-d.off)
	}
	return nil
}
