package inla

import (
	"math"
	"testing"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// TestEvalFobjScratchReuseConsistent: evaluations through a shared arena
// must agree exactly with fresh-allocation evaluations, including when the
// arena is re-used across different θ (stale workspace content must never
// leak into a later evaluation).
func TestEvalFobjScratchReuseConsistent(t *testing.T) {
	ds := genSmall(t, 2)
	prior := WeakPrior(ds.Theta0, 5)
	ws := newSolverScratch(ds.Model)

	theta1 := append([]float64(nil), ds.Theta0...)
	theta1[0] += 0.3
	theta1[len(theta1)-1] -= 0.2

	for _, theta := range [][]float64{ds.Theta0, theta1, ds.Theta0} {
		want, err := EvalFobj(ds.Model, prior, theta, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := evalFobjScratch(ds.Model, prior, theta, false, solverSpec{parts: 1}, ws)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.F()-want.F()) > 1e-9*(1+math.Abs(want.F())) {
			t.Fatalf("scratch evaluation drifted: got %v want %v", got.F(), want.F())
		}
		if got.LogDetQc != want.LogDetQc || got.LogDetQp != want.LogDetQp {
			t.Fatalf("log-determinants differ: got (%v,%v) want (%v,%v)",
				got.LogDetQp, got.LogDetQc, want.LogDetQp, want.LogDetQc)
		}
	}
}

// TestEvaluatorRefactorizeSolveZeroAlloc pins the acceptance criterion at
// the evaluator level: with a warm arena, the per-θ solver cycle
// (Refactorize of Q_c + conditional-mean solve + log-determinant) performs
// zero heap allocations.
func TestEvaluatorRefactorizeSolveZeroAlloc(t *testing.T) {
	if dense.RaceEnabled {
		t.Skip("race-mode sync.Pool drops Put items; alloc counts are meaningless")
	}
	prev := dense.SetMaxWorkers(1)
	defer dense.SetMaxWorkers(prev)
	ds := genSmall(t, 2)
	e := &BTAEvaluator{Model: ds.Model, Prior: WeakPrior(ds.Theta0, 5)}
	th, err := ds.Model.DecodeTheta(ds.Theta0)
	if err != nil {
		t.Fatal(err)
	}
	ws := e.getScratch()
	defer e.scratch.Put(ws)
	// Warm-up: assemble once, factorize once, solve once.
	if err := ds.Model.QcInto(th, ws.qc); err != nil {
		t.Fatal(err)
	}
	if err := ws.fc.Refactorize(ws.qc); err != nil {
		t.Fatal(err)
	}
	ds.Model.CondRHSInto(th, ws.mu, ws.pm, ws.obs)
	ws.fc.Solve(ws.mu)
	allocs := testing.AllocsPerRun(10, func() {
		if err := ws.fc.Refactorize(ws.qc); err != nil {
			t.Fatal(err)
		}
		ds.Model.CondRHSInto(th, ws.mu, ws.pm, ws.obs)
		ws.fc.Solve(ws.mu)
		_ = ws.fc.LogDet()
	})
	if allocs != 0 {
		t.Fatalf("evaluator solver cycle allocates %.1f objects per run in steady state, want 0", allocs)
	}
}
