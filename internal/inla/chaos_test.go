package inla

import (
	"math"
	"runtime"
	"testing"
	"time"

	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// chaosDataset is the small spatio-temporal problem the fault-injection
// tests fit — the same shape distCase uses, so the fault-free behaviour is
// already pinned elsewhere.
func chaosDataset(t *testing.T) (*synth.Dataset, Prior) {
	t.Helper()
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 6, Nr: 1,
		MeshNx: 3, MeshNy: 3,
		ObsPerStep: 10,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, WeakPrior(ds.Theta0, 5)
}

// The tentpole end-to-end criterion: with one rank killed mid-evaluation
// and messages randomly delayed, the distributed fit shrinks onto the
// survivors, retries the interrupted iteration, and lands on the fault-free
// θ — collectives are all-or-nothing, so every survivor retries from the
// same state, and the shrunken replan changes only the schedule, not the
// arithmetic (beyond reduction-order noise far below the 1e-8 tolerance).
func TestChaosDistributedFitMatchesFaultFree(t *testing.T) {
	ds, prior := chaosDataset(t)
	goroutines := runtime.NumGoroutine()
	base := DistConfig{World: 6, Machine: comm.DefaultMachine(), Iterations: 3}

	ref, err := RunDistributed(ds.Model, prior, ds.Theta0, base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Shrinks != 0 || ref.Survivors != 6 {
		t.Fatalf("fault-free run reported shrinks=%d survivors=%d", ref.Shrinks, ref.Survivors)
	}

	faulty := base
	faulty.Faults = &comm.FaultPlan{
		Seed:         11,
		DelayProb:    0.2,
		DelaySeconds: 1e-4,
		// Rank 3 dies at its 5th communication operation: past the setup
		// Split, inside the first iteration's gradient batch.
		Kill: map[int]int{3: 5},
	}
	rep, err := RunDistributed(ds.Model, prior, ds.Theta0, faulty)
	if err != nil {
		t.Fatalf("faulty run failed instead of recovering: %v", err)
	}
	if len(rep.Stats.Killed) != 1 || rep.Stats.Killed[0] != 3 {
		t.Fatalf("Stats.Killed = %v, want [3]", rep.Stats.Killed)
	}
	if rep.Shrinks != 1 {
		t.Fatalf("Shrinks = %d, want 1", rep.Shrinks)
	}
	if rep.Survivors != 5 {
		t.Fatalf("Survivors = %d, want 5", rep.Survivors)
	}
	if len(rep.FTrace) != base.Iterations {
		t.Fatalf("trace length %d, want %d (every iteration must commit)", len(rep.FTrace), base.Iterations)
	}
	for i := range ref.Theta {
		if d := math.Abs(rep.Theta[i] - ref.Theta[i]); d > 1e-8 {
			t.Fatalf("theta[%d]: faulty %v vs fault-free %v (|Δ| = %.3g > 1e-8)",
				i, rep.Theta[i], ref.Theta[i], d)
		}
	}
	// The wounded world must be fully torn down: no rank goroutines survive.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutines && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > goroutines {
		t.Fatalf("goroutines leaked: %d before, %d after", goroutines, n)
	}
}

// The shrink budget is honoured: with recoveries disabled by MaxShrinks the
// same scheduled kill must surface as a typed, retryable error instead of a
// hang or a panic. (MaxShrinks = -1 is the explicit "no recoveries" setting;
// 0 keeps the World−1 default.)
func TestChaosShrinkBudgetExhausted(t *testing.T) {
	ds, prior := chaosDataset(t)
	cfg := DistConfig{
		World: 4, Machine: comm.DefaultMachine(), Iterations: 2,
		Faults:     &comm.FaultPlan{Kill: map[int]int{2: 5}},
		MaxShrinks: -1,
	}
	_, err := RunDistributed(ds.Model, prior, ds.Theta0, cfg)
	if err == nil {
		t.Fatal("exhausted shrink budget must fail the run")
	}
	if !comm.Retryable(err) {
		t.Fatalf("budget-exhaustion error should wrap the retryable fault, got: %v", err)
	}
}

// A θ evaluation that dies inside the solver is quarantined — +Inf for the
// point, structured EvalError on the evaluator — rather than crashing the
// batch or poisoning its neighbours.
func TestEvalBatchQuarantinesFailedPoint(t *testing.T) {
	ds, prior := chaosDataset(t)
	e := &BTAEvaluator{Model: ds.Model, Prior: prior}
	bad := append([]float64(nil), ds.Theta0...)
	bad[0] = math.NaN()
	vals := e.EvalBatch([][]float64{ds.Theta0, bad})
	if !isFinite(vals[0]) {
		t.Fatalf("healthy point poisoned by its neighbour: %v", vals[0])
	}
	if !math.IsInf(vals[1], 1) {
		t.Fatalf("failed point = %v, want +Inf", vals[1])
	}
	if e.EvalFailures() < 1 {
		t.Fatalf("EvalFailures = %d, want ≥ 1", e.EvalFailures())
	}
	ee := e.LastEvalError()
	if ee == nil {
		t.Fatal("LastEvalError = nil after a quarantined evaluation")
	}
	if len(ee.Theta) != len(bad) || !math.IsNaN(ee.Theta[0]) {
		t.Fatalf("EvalError does not record the failing point: %+v", ee)
	}
}

func isFinite(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }
