package inla

import (
	"math"
	"runtime"
	"testing"
	"time"

	"github.com/dalia-hpc/dalia/internal/sched"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// TestDAGFitMatchesPhaseBarrier is the cross-evaluation determinism suite:
// the full INLA fit scheduled on the work-stealing task-DAG executor must
// reproduce the legacy phase-barrier fit — mode θ, objective, optimizer
// trajectory, latent mean and variances — to 1e-10 across the partition ×
// arrow-width × reduced-recursion grid. The DAG re-expression reorders
// nothing that matters: frontier installs stay in partition order, tip
// folds at fixed positions, and every other write set is disjoint, so the
// two schedules perform identical arithmetic.
func TestDAGFitMatchesPhaseBarrier(t *testing.T) {
	for _, nr := range []int{1, 2} { // arrow width: nv*nr fixed effects
		ds, err := synth.Generate(synth.GenConfig{
			Nv: 1, Nt: 8, Nr: nr,
			MeshNx: 3, MeshNy: 3,
			ObsPerStep: 10,
			Seed:       31,
		})
		if err != nil {
			t.Fatal(err)
		}
		prior := WeakPrior(ds.Theta0, 5)
		for _, parts := range []int{1, 3} {
			for _, rec := range []int{-1, 1} {
				fit := func(barrier bool) *Result {
					opts := DefaultFitOptions()
					opts.Opt.MaxIter = 3
					opts.SkipHyperUncertainty = true
					opts.SolverPartitions = parts
					opts.SolverRecursion = rec
					opts.PhaseBarrier = barrier
					res, err := Fit(ds.Model, prior, ds.Theta0, opts)
					if err != nil {
						t.Fatalf("nr=%d parts=%d rec=%d barrier=%v: %v", nr, parts, rec, barrier, err)
					}
					return res
				}
				want := fit(true)
				got := fit(false)
				const tol = 1e-10
				if math.Abs(got.Opt.F-want.Opt.F) > tol*(1+math.Abs(want.Opt.F)) {
					t.Fatalf("nr=%d parts=%d rec=%d: dag F=%v, barrier F=%v", nr, parts, rec, got.Opt.F, want.Opt.F)
				}
				if got.Opt.Iterations != want.Opt.Iterations || got.Opt.FEvals != want.Opt.FEvals {
					t.Fatalf("nr=%d parts=%d rec=%d: dag trajectory (%d it, %d evals) vs barrier (%d it, %d evals)",
						nr, parts, rec, got.Opt.Iterations, got.Opt.FEvals, want.Opt.Iterations, want.Opt.FEvals)
				}
				for i := range want.Theta {
					if math.Abs(got.Theta[i]-want.Theta[i]) > tol*(1+math.Abs(want.Theta[i])) {
						t.Fatalf("nr=%d parts=%d rec=%d: θ[%d] dag %v, barrier %v", nr, parts, rec, i, got.Theta[i], want.Theta[i])
					}
				}
				for i := range want.Mu {
					if math.Abs(got.Mu[i]-want.Mu[i]) > tol*(1+math.Abs(want.Mu[i])) {
						t.Fatalf("nr=%d parts=%d rec=%d: μ[%d] dag %v, barrier %v", nr, parts, rec, i, got.Mu[i], want.Mu[i])
					}
					if math.Abs(got.LatentVar[i]-want.LatentVar[i]) > tol*(1+math.Abs(want.LatentVar[i])) {
						t.Fatalf("nr=%d parts=%d rec=%d: var[%d] dag %v, barrier %v", nr, parts, rec, i, got.LatentVar[i], want.LatentVar[i])
					}
				}
			}
		}
	}
}

// TestDAGEvalBatchMatchesBarrier pins the batch layer itself on a wider
// stencil than the fits above exercise: the same 2d+1 gradient batch
// through both schedules, where the DAG path interleaves solver tasks from
// different θ points on one worker pool.
func TestDAGEvalBatchMatchesBarrier(t *testing.T) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 2, Nt: 6, Nr: 1,
		MeshNx: 3, MeshNy: 3,
		ObsPerStep: 10,
		Seed:       37,
	})
	if err != nil {
		t.Fatal(err)
	}
	prior := WeakPrior(ds.Theta0, 5)
	pts := gradientPoints(ds.Theta0, 1e-3)
	ref := &BTAEvaluator{Model: ds.Model, Prior: prior, PhaseBarrier: true, Partitions: 2}
	want := ref.EvalBatch(pts)
	e := &BTAEvaluator{Model: ds.Model, Prior: prior, Partitions: 2}
	got := e.EvalBatch(pts)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
			t.Fatalf("point %d: dag F=%v, barrier F=%v", i, got[i], want[i])
		}
	}
}

// TestEvaluatorPrivateExecutorShutdown: an evaluator pinned to a private
// executor (BTAEvaluator.Exec) runs its batches and posterior there, and
// closing the executor leaves no goroutines behind — the leak assertion of
// the DAG port.
func TestEvaluatorPrivateExecutorShutdown(t *testing.T) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 6, Nr: 1,
		MeshNx: 3, MeshNy: 3,
		ObsPerStep: 10,
		Seed:       41,
	})
	if err != nil {
		t.Fatal(err)
	}
	prior := WeakPrior(ds.Theta0, 5)
	before := runtime.NumGoroutine()

	ex := sched.New(3)
	e := &BTAEvaluator{Model: ds.Model, Prior: prior, Partitions: 2, Exec: ex}
	ref := &BTAEvaluator{Model: ds.Model, Prior: prior, PhaseBarrier: true, Partitions: 2}
	pts := gradientPoints(ds.Theta0, 1e-3)
	want := ref.EvalBatch(pts)
	got := e.EvalBatch(pts)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
			t.Fatalf("point %d: private-executor F=%v, barrier F=%v", i, got[i], want[i])
		}
	}
	if _, _, err := e.Posterior(ds.Theta0); err != nil {
		t.Fatal(err)
	}
	ex.Close()

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak after executor Close: %d before, %d after", before, after)
	}
}
