package inla

import (
	"fmt"
	"math"
	"sync"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/model"
)

// Plan is the resource assignment across the three nested parallelization
// layers (§V-D policy: fill S1 first, then S2, then S3 — unless the
// densified matrix exceeds device memory, which forces S3 width first).
// The S3 layer is two-level: solver ranks across simulated nodes times
// PartitionsPerRank shared-memory partitions within each node, matching the
// paper's GPU-node topology (world size × partitions = total solver width).
type Plan struct {
	World  int
	NFeval int
	// Groups is the S1 width; GroupSizes[g] ranks per group.
	Groups     int
	GroupSizes []int
	// UseS2 splits each group into the Q_p and Q_c pipelines.
	UseS2 bool
	// P3Min is the S3 rank width forced by the device-memory cap (1 = no
	// constraint). The per-node stream width does not relax it: all of a
	// node's partitions share that node's device memory.
	P3Min int
	// PartitionsPerRank is the second S3 level: the shared-memory
	// parallel-in-time width each solver rank (node) runs at (1 = flat
	// one-partition-per-rank configuration). Under a device-memory cap the
	// planner may have reduced it below the requested width — all of a
	// node's streams share that node's device memory, so streams trade
	// against ranks.
	PartitionsPerRank int
	// ReduceDepth is the recursive-nesting budget of rank 0's reduced
	// boundary system (bta.ReducedOptions.Depth), ReduceCrossover its
	// recursion threshold (0 = bta.DefaultReducedCrossover);
	// PipelineReduced streams boundary contributions into the reduced
	// assembly as partitions finish. Copied from DistConfig for the record,
	// so a run can be reproduced from its reported Plan.
	ReduceDepth     int
	ReduceCrossover int
	PipelineReduced bool
	// Precision is the per-stage precision policy the evaluations run at:
	// under bta.PrecMixed each rank's interior elimination sweeps run in
	// fp32 while the reduced boundary system, log-det accumulation and
	// non-SPD recovery stay fp64, and the conditional-mean solve is
	// recovered to fp64 accuracy by iterative refinement (PPOBTASRefined).
	// MakePlan grants a requested mixed policy only where the stage
	// structure allows it: with a single global partition there are no
	// interior sweeps and the policy degenerates to pure fp64.
	Precision bta.Precision
}

// StreamLayout returns the per-rank stream counts the plan's smallest S1
// group actually evaluates at over ntBlocks time blocks: the uniform
// PartitionsPerRank grid when the time dimension can absorb it, otherwise
// the unequal SpreadStreams layout over the widest partitionable total —
// earlier ranks carry the extra streams — instead of shedding whole
// streams from every rank.
func (p Plan) StreamLayout(ntBlocks int) []int {
	p3 := 1
	if len(p.GroupSizes) > 0 {
		p3 = p.GroupSizes[len(p.GroupSizes)-1]
		if p.UseS2 {
			p3 /= 2
		}
		if p3 < 1 {
			p3 = 1
		}
	}
	return effectiveStreams(ntBlocks, p3, p.PartitionsPerRank)
}

// SolverWidthAt returns the total S3 solver width (ranks × streams) one
// evaluation actually runs at for the plan's smallest S1 group — the width
// that determines whether a reduced boundary system exists (≥ 2) and
// whether recursion can engage (2·width−2 ≥ crossover). It applies the
// same policy as the evaluation: the rank count capped by ntBlocks'
// partitionability, then the stream grid spread unevenly across ranks when
// the time dimension cannot absorb the full uniform layout.
func (p Plan) SolverWidthAt(ntBlocks int) int {
	total := 0
	for _, q := range p.StreamLayout(ntBlocks) {
		total += q
	}
	return total
}

// effectiveStreams lays a hybrid S3 topology's streams over ntBlocks time
// blocks: uniform perRank streams on each of the p3 ranks when the time
// dimension can absorb the full grid, otherwise a SpreadStreams layout over
// the widest partitionable total (earlier ranks run more streams). The old
// policy shed one stream from every rank until the uniform grid fit, which
// over-discards width: at nt=10, p3=4, perRank=2 it fell all the way back
// to 4 partitions where the spread layout [2,2,1,1] keeps 6.
func effectiveStreams(ntBlocks, p3, perRank int) []int {
	if p3 < 1 {
		p3 = 1
	}
	if perRank < 1 {
		perRank = 1
	}
	mx := maxPartitions(ntBlocks)
	if p3 > mx {
		p3 = mx
	}
	if p3*perRank <= mx {
		return bta.UniformStreams(p3, perRank)
	}
	return bta.SpreadStreams(p3, mx)
}

// nodeWorkingSetBytes models the steady-state device bytes one node of the
// hybrid topology holds: its 1/p3 slice of the densified blocks, the
// fill-coupling chains of its two-sided partitions (one extra b×b block per
// owned block — the per-node fill-chain working set, which is why streams
// do not relax the cap), and the per-stream solve/sweep scratch.
func nodeWorkingSetBytes(qcBytes int64, p3, q, b, a int) int64 {
	slice := ceilDiv(qcBytes, int64(p3))
	if b > 0 {
		// fill chains ≈ the b×b-per-block share of the slice: b²/(2b²+ab).
		slice += ceilDiv(qcBytes, int64(p3)) * int64(b) / int64(2*b+a)
		// per-stream sweep + solve temporaries (7 b×b, 2 a×b, 1 a×a).
		slice += int64(q) * 8 * int64(7*b*b+2*a*b+a*a)
	}
	return slice
}

func ceilDiv(n, d int64) int64 { return (n + d - 1) / d }

// MakePlan computes the layer assignment for a world of the given size.
// qcBytes is the densified Q_c footprint (bta.Matrix.BytesDense), memCap
// the per-device memory model (0 = unlimited), ntBlocks/blockSize/arrowSize
// the BTA shape (ntBlocks bounds the useful S3 width; blockSize 0 disables
// the fill-chain term, reproducing the flat slice-only model), perRank the
// requested per-node stream width (≤ 1 = flat), prec the requested
// factorization precision policy — granted as-is except where no stage can
// run reduced precision (solver width 1 has no interior sweeps, so a mixed
// request degenerates to pure fp64 and the plan records that).
//
// The memory policy is hybrid-aware: the per-node working set is the matrix
// slice plus the fill-chain storage the partitioned elimination adds, so
// P3Min grows accordingly, and when even the widest partitionable rank
// count cannot fit the cap the planner sheds streams (PartitionsPerRank)
// before giving up — trading ranks against streams under the cap.
func MakePlan(world, nfeval int, qcBytes, memCap int64, ntBlocks, blockSize, arrowSize, perRank int, prec bta.Precision) Plan {
	if perRank < 1 {
		perRank = 1
	}
	if mx := maxPartitions(ntBlocks); perRank > mx {
		perRank = mx
	}
	mx := maxPartitions(ntBlocks)
	p3min := 1
	if memCap > 0 {
		fits := func(p3, q int) bool {
			return nodeWorkingSetBytes(qcBytes, p3, q, blockSize, arrowSize) <= memCap
		}
		// Trade streams for ranks: find the smallest rank width that holds
		// the per-node working set at the requested stream count; if none
		// does, shed streams (their scratch and boundary duplication) and
		// search the rank widths again, down to the flat topology.
		for {
			p3min = 1
			for !fits(p3min, perRank) && p3min < mx {
				p3min++
			}
			if fits(p3min, perRank) || perRank == 1 {
				break
			}
			perRank--
		}
	}
	maxGroups := world / p3min
	if maxGroups < 1 {
		maxGroups = 1
	}
	groups := nfeval
	if groups > maxGroups {
		groups = maxGroups
	}
	sizes := spread(world, groups)
	minSize := sizes[len(sizes)-1]
	useS2 := minSize >= 2*p3min && minSize >= 2
	p := Plan{World: world, NFeval: nfeval, Groups: groups, GroupSizes: sizes,
		UseS2: useS2, P3Min: p3min, PartitionsPerRank: perRank, Precision: prec}
	if prec == bta.PrecMixed && p.SolverWidthAt(ntBlocks) < 2 {
		// A width-1 solver factorizes in place with no interior sweeps —
		// nothing can run fp32, so record the degenerate fp64 policy.
		p.Precision = bta.PrecFloat64
	}
	return p
}

// maxPartitions is the largest useful S3 width for n time blocks
// (PartitionBlocks needs n ≥ 2p−2).
func maxPartitions(n int) int {
	p := (n + 2) / 2
	if p < 1 {
		p = 1
	}
	return p
}

// spread splits total into n near-equal descending parts.
func spread(total, n int) []int {
	out := make([]int, n)
	base := total / n
	extra := total % n
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}

// GroupOf returns the S1 group of a world rank under contiguous assignment.
func (p Plan) GroupOf(rank int) int {
	off := 0
	for g, s := range p.GroupSizes {
		if rank < off+s {
			return g
		}
		off += s
	}
	return p.Groups - 1
}

// assemblyCell deduplicates the (shared-memory) assembly of one global
// matrix per pipeline: the first arriving rank assembles, everyone shares
// the result, and each rank is charged dt/P virtual seconds — modeling the
// O(nnz/P) distributed construction/mapping of §IV-F.
type assemblyCell struct {
	once sync.Once
	qp   *bta.Matrix
	qc   *bta.Matrix
	rhs  []float64
	dtQp float64
	dtQc float64
	err  error
}

type sharedState struct {
	mu    sync.Mutex
	cells map[string]*assemblyCell
}

func newSharedState() *sharedState {
	return &sharedState{cells: make(map[string]*assemblyCell)}
}

func (s *sharedState) cell(key string) *assemblyCell {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cells[key]
	if !ok {
		c = &assemblyCell{}
		s.cells[key] = c
	}
	return c
}

func thetaKey(theta []float64) string {
	return fmt.Sprintf("%x", theta)
}

// groupScratch is one rank's reusable distributed-solver arena: the local
// BTA slice refilled per evaluation, the recycled PPOBTAF block storage,
// and the small quadratic-form vectors. Both pipelines of a rank share it —
// they run sequentially on the same goroutine and use the same partitioning.
type groupScratch struct {
	local    *bta.LocalBTA
	dist     bta.DistScratch
	prev     *bta.DistFactor // dead factor awaiting reclamation
	quadTmp  []float64
	quadTmpA []float64
}

// slice refills (allocating only on first use) the rank-local slice of g
// over the two-level topology: the rank owns counts[rank] consecutive
// partitions of the global list (unequal per-rank stream counts carry the
// SpreadStreams layouts the planner chooses when nt cannot absorb the
// uniform grid).
func (s *groupScratch) slice(g *bta.Matrix, parts []bta.Partition, counts []int, rank int) (*bta.LocalBTA, error) {
	if s.local == nil {
		l, err := bta.NewLocalBTAHybrid(parts, counts, rank, g.N, g.B, g.A)
		if err != nil {
			return nil, err
		}
		s.local = l
	}
	s.local.FillFrom(g)
	return s.local, nil
}

// factorize reclaims the previous factor's recycled blocks and runs the
// distributed factorization against the scratch with the configured
// reduced-system engine.
func (s *groupScratch) factorize(solver *comm.Comm, local *bta.LocalBTA, opts bta.DistOptions) (*bta.DistFactor, error) {
	s.dist.Reclaim(s.prev)
	s.prev = nil
	f, err := bta.PPOBTAFOpts(solver, local, &s.dist, opts)
	if err == nil {
		s.prev = f
	}
	return f, err
}

// DistConfig configures a simulated distributed INLA run.
type DistConfig struct {
	World   int
	Machine comm.Machine
	// LB is the S3 load-balance factor (1 = even partitions).
	LB float64
	// PartitionsPerRank is the second S3 level: each solver rank models a
	// multi-stream node running that many shared-memory parallel-in-time
	// partitions (0/1 = the flat one-partition-per-rank configuration,
	// which PartitionsPerRank = 1 reproduces bit-for-bit).
	PartitionsPerRank int
	// ReduceDepth lets rank 0 factorize the 2P−2 reduced boundary system
	// with a recursively nested partition gang when it is wide enough
	// (bta.ReducedOptions.Depth; 0 = sequential reduced solve).
	ReduceDepth int
	// ReduceCrossover overrides the smallest reduced block count worth
	// recursing on (0 = bta.DefaultReducedCrossover).
	ReduceCrossover int
	// PipelineReduced streams boundary contributions into rank 0's reduced
	// assembly as they arrive, interleaving reduced elimination with later
	// ranks' interior sweeps instead of idling until the last one lands.
	PipelineReduced bool
	// Precision requests the per-stage factorization precision policy
	// (bta.PrecMixed = fp32 interior sweeps, fp64 reduced system and
	// refinement-corrected solves; the zero value = pure fp64). The planner
	// grants it wherever the solver width leaves interior sweeps to
	// accelerate and records the decision on the Plan.
	Precision bta.Precision
	// MaxRefine bounds the fp64 refinement iterations per mixed-precision
	// solve (0 = bta.DefaultMaxRefine).
	MaxRefine int
	// MemCapBytes models per-device memory (0 = unlimited).
	MemCapBytes int64
	// Iterations of the quasi-Newton loop to execute.
	Iterations int
	// DisableS2/DisableS3 restrict the layer usage (ablations and the
	// INLA_DIST-like configuration).
	DisableS2 bool
	DisableS3 bool
	// NaiveMapping replaces the cached O(nnz) sparse→dense mapping with the
	// O(n·b²) densification, charged undistributed — the INLA_DIST-like
	// assembly behaviour (ablation X1).
	NaiveMapping bool
	// Faults injects a deterministic communication-fault plan (message
	// drops/delays/corruption, scheduled rank deaths) into the run; nil runs
	// fault-free. Scheduled deaths are recovered by shrinking the world onto
	// the survivors and retrying the interrupted iteration.
	Faults *comm.FaultPlan
	// MaxShrinks bounds how many shrink-and-retry recoveries the run
	// attempts before giving up (0 = World−1, i.e. down to a single rank;
	// negative = fail on the first fault without recovering).
	MaxShrinks int
}

// DistReport aggregates a distributed run.
type DistReport struct {
	Plan      Plan
	Stats     comm.Stats
	Makespan  float64 // virtual seconds, total
	PerIter   float64 // virtual seconds per iteration
	Theta     []float64
	FTrace    []float64
	SolverSec float64 // max over ranks of solver-attributed compute
	// Shrinks counts the shrink-and-retry recoveries the run performed;
	// Survivors is the world size that finished it (World − ranks lost).
	Shrinks   int
	Survivors int
}

// RunDistributed executes cfg.Iterations quasi-Newton iterations of the
// INLA mode search SPMD over the simulated machine, with the full
// three-layer scheme, and reports virtual-time statistics. Each iteration
// performs the parallel central-difference gradient batch (S1), a
// fixed-step quasi-Newton update, and one probe evaluation — the
// gradient-dominated iteration structure whose per-iteration cost the
// paper's figures report.
func RunDistributed(m *model.Model, prior Prior, theta0 []float64, cfg DistConfig) (*DistReport, error) {
	if m.Lik != model.LikGaussian {
		return nil, fmt.Errorf("inla: the distributed driver supports the Gaussian likelihood (the paper's evaluation case); got %v", m.Lik)
	}
	d := len(theta0)
	nfeval := 2*d + 1
	// Probe assembly once to size the memory model.
	proto, err := m.DecodeTheta(theta0)
	if err != nil {
		return nil, err
	}
	qcProbe, err := m.Qc(proto)
	if err != nil {
		return nil, err
	}
	qcBytes := qcProbe.BytesDense()
	nt := m.Dims.Nt

	_, bBlk, aBlk := m.Dims.BTAShape()
	planFor := func(world int) Plan {
		p := MakePlan(world, nfeval, qcBytes, cfg.MemCapBytes, nt, bBlk, aBlk, cfg.PartitionsPerRank, cfg.Precision)
		p.ReduceDepth = cfg.ReduceDepth
		p.ReduceCrossover = cfg.ReduceCrossover
		p.PipelineReduced = cfg.PipelineReduced
		if cfg.DisableS2 {
			p.UseS2 = false
		}
		return p
	}
	plan := planFor(cfg.World)
	lb := cfg.LB
	if lb < 1 {
		lb = 1
	}
	iterations := cfg.Iterations
	if iterations < 1 {
		iterations = 1
	}
	maxShrinks := cfg.MaxShrinks
	if maxShrinks == 0 {
		maxShrinks = cfg.World - 1
	} else if maxShrinks < 0 {
		maxShrinks = 0
	}

	// Shared-assembly registries keyed by world size: every shrink rebuilds
	// the topology over fewer ranks, and world sizes strictly decrease, so
	// each recovered topology gets its own deduplication state.
	var statesMu sync.Mutex
	statesBySize := make(map[int][]*sharedState)
	getStates := func(size, groups int) []*sharedState {
		statesMu.Lock()
		defer statesMu.Unlock()
		s, ok := statesBySize[size]
		if !ok {
			s = make([]*sharedState, groups)
			for g := range s {
				s[g] = newSharedState()
			}
			statesBySize[size] = s
		}
		return s
	}

	var mu sync.Mutex
	finalTheta := append([]float64(nil), theta0...)
	var trace []float64
	shrinksDone, survivors := 0, cfg.World

	st, runErr := comm.RunPlan(cfg.World, cfg.Machine, cfg.Faults, func(world *comm.Comm) error {
		wplan := plan
		g := wplan.GroupOf(world.Rank())
		group := world.Split(g, world.Rank())
		state := getStates(world.Size(), wplan.Groups)[g]

		theta := append([]float64(nil), theta0...)
		grad := make([]float64, d)
		scr := &groupScratch{}
		var localTrace []float64
		shrinks := 0
		for iter := 0; iter < iterations; iter++ {
			var f0 float64
			iterErr := comm.Catch(func() {
				pts := gradientPoints(theta, 1e-3)
				vals := make([]float64, len(pts))
				for i := g; i < len(pts); i += wplan.Groups {
					f, err := evalFobjGroup(group, state, m, prior, pts[i], wplan, cfg, lb, scr)
					if err != nil {
						f = math.Inf(1)
					}
					if group.Rank() == 0 {
						vals[i] = f
					}
				}
				// World-level reduction of the gradient batch (the ⊕ of Fig. 3a).
				red := world.AllReduceSum(vals)
				f0 = gradientFromBatchInto(grad, red, 1e-3)
				world.Barrier()
			})
			if iterErr != nil {
				if !comm.Retryable(iterErr) {
					return iterErr
				}
				if shrinks >= maxShrinks {
					return fmt.Errorf("inla: shrink budget exhausted after %d recoveries: %w", shrinks, iterErr)
				}
				// Shrink-and-retry: revoke the wounded topology, redistribute
				// the dead ranks' partitions by replanning over the survivors,
				// and redo the interrupted iteration. Collectives complete
				// all-or-nothing, so every survivor lands here with the same θ
				// and the same iteration index.
				shrinks++
				world = world.Shrink()
				wplan = planFor(world.Size())
				g = wplan.GroupOf(world.Rank())
				group = world.Split(g, world.Rank())
				state = getStates(world.Size(), wplan.Groups)[g]
				scr = &groupScratch{}
				iter--
				continue
			}
			// Damped quasi-Newton step from the reduced gradient. The paper's
			// iteration cost is the 2·dim(θ)+1 parallel evaluations (§IV-D1);
			// the step itself is negligible bookkeeping on every rank. It is
			// applied only after the whole iteration committed, so a
			// mid-iteration failure retries from unchanged θ.
			localTrace = append(localTrace, f0)
			step := 0.5 / (1 + dense.Nrm2(grad))
			for i := range theta {
				theta[i] -= step * grad[i]
			}
		}
		if world.Rank() == 0 {
			mu.Lock()
			copy(finalTheta, theta)
			trace = localTrace
			shrinksDone = shrinks
			survivors = world.Size()
			mu.Unlock()
		}
		return nil
	})

	if runErr != nil {
		return nil, runErr
	}
	rep := &DistReport{
		Plan:      plan,
		Stats:     st,
		Makespan:  st.Makespan(),
		PerIter:   st.Makespan() / float64(iterations),
		Theta:     finalTheta,
		FTrace:    trace,
		Shrinks:   shrinksDone,
		Survivors: survivors,
	}
	rep.SolverSec = st.MaxCompute()
	return rep, nil
}

// evalFobjGroup evaluates fobj(θ) on one S1 group: the S2 split into the
// Q_p and Q_c pipelines, each running the S3 distributed solver over its
// sub-communicator. Returns the objective on every rank of the group.
func evalFobjGroup(group *comm.Comm, state *sharedState, m *model.Model, prior Prior,
	theta []float64, plan Plan, cfg DistConfig, lb float64, scr *groupScratch) (float64, error) {

	w := group.Size()
	useS2 := plan.UseS2 && w >= 2

	// Pipeline split: color 0 = Q_p pipeline, color 1 = Q_c pipeline. The
	// Q_c pipeline gets the larger half (it carries the extra triangular
	// solve, §IV-D2).
	var pipe *comm.Comm
	color := 1 // everyone does Q_c work when S2 is off
	wA := 0
	if useS2 {
		wA = w / 2
		if group.Rank() < wA {
			color = 0
		}
		pipe = group.Split(color, group.Rank())
	} else {
		pipe = group
	}

	// S3 width: solver ranks bounded by partitionability and the DisableS3
	// switch, times the per-node stream layout of the hybrid second level —
	// spread unevenly across the ranks when the time dimension cannot
	// absorb the uniform PartitionsPerRank grid.
	p3 := pipe.Size()
	perRank := plan.PartitionsPerRank
	if cfg.DisableS3 {
		p3, perRank = 1, 1
	}
	if mx := maxPartitions(m.Dims.Nt); p3 > mx {
		p3 = mx
	}
	counts := effectiveStreams(m.Dims.Nt, p3, perRank)
	width := 0
	for _, q := range counts {
		width += q
	}
	active := pipe.Rank() < p3
	var solver *comm.Comm
	if p3 < pipe.Size() {
		ac := 0
		if !active {
			ac = 1
		}
		solver = pipe.Split(ac, pipe.Rank())
	} else {
		solver = pipe
	}

	// Shared assembly (charged as dt/P per rank, or undistributed for the
	// naive-mapping configuration). Measured under the compute lock so the
	// wall time is not inflated by other simulated ranks.
	cell := state.cell(thetaKey(theta))
	cell.once.Do(func() {
		t, err := m.DecodeTheta(theta)
		if err != nil {
			cell.err = err
			return
		}
		cell.dtQp = group.Measure(func() {
			if cfg.NaiveMapping {
				cell.qp, cell.err = m.QpDensifyNaive(t)
			} else {
				cell.qp, cell.err = m.Qp(t)
			}
		})
		if cell.err != nil {
			return
		}
		cell.dtQc = group.Measure(func() {
			if cfg.NaiveMapping {
				cell.qc, cell.err = m.QcDensifyNaive(t)
			} else {
				cell.qc, cell.err = m.Qc(t)
			}
			if cell.err == nil {
				cell.rhs = m.CondRHS(t)
			}
		})
	})
	if cell.err != nil {
		// All ranks observe the same failure deterministically.
		return math.Inf(1), cell.err
	}

	_, b, a := m.Dims.BTAShape()
	var comps [4]float64 // [½ld_p, −½quad, −½ld_c, loglik+prior]
	// μ handoff between the Q_c and Q_p phases when S2 is off (same
	// goroutine runs both phases back to back on each rank).
	var muLocal []float64

	// tagMu carries μ from the Q_c pipeline root to the Q_p pipeline root.
	const tagMu = 700

	// Reduced-system engine and precision-policy configuration shared by
	// both pipelines (the plan already degenerated an unusable mixed
	// request to fp64).
	dopts := bta.DistOptions{
		Precision: plan.Precision,
		MaxRefine: cfg.MaxRefine,
		Reduced: bta.ReducedOptions{
			Depth: cfg.ReduceDepth, Crossover: cfg.ReduceCrossover, Pipeline: cfg.PipelineReduced,
		},
	}

	runQc := func() error {
		pipe.Barrier()
		if !active {
			return nil
		}
		err := func() error {
			solverRankCharge(solver, cell.dtQc, chargeP3(width, cfg))
			parts, err := bta.HybridPartition(m.Dims.Nt, counts, lb)
			if err != nil {
				return err
			}
			local, err := scr.slice(cell.qc, parts, counts, solver.Rank())
			if err != nil {
				return err
			}
			f, err := scr.factorize(solver, local, dopts)
			if err != nil {
				return err
			}
			var muFull []float64 // solver root only
			if f.Low() {
				// Mixed-precision factor: the fp64 iterative refinement
				// recovers full solve accuracy and leaves the assembled
				// solution replicated on every rank — no gather needed.
				xFull, _, err := bta.PPOBTASRefined(solver, f, cell.qc, cell.rhs)
				if err != nil {
					return err
				}
				if solver.Rank() == 0 {
					muFull = append([]float64(nil), xFull[:m.Dims.Total()]...)
				}
			} else {
				span := local.Part
				rhsLocal := append([]float64(nil), cell.rhs[span.Lo*b:(span.Hi+1)*b]...)
				var rhsTip []float64
				if a > 0 {
					rhsTip = cell.rhs[m.Dims.Nt*b:]
				}
				xLocal, xTip, err := bta.PPOBTAS(solver, f, rhsLocal, rhsTip)
				if err != nil {
					return err
				}
				// Gather μ on the solver root.
				gathered := solver.Gather(0, xLocal)
				if solver.Rank() == 0 {
					muFull = make([]float64, m.Dims.Total())
					off := 0
					for _, part := range gathered {
						copy(muFull[off:], part)
						off += len(part)
					}
					if a > 0 {
						copy(muFull[m.Dims.Nt*b:], xTip)
					}
				}
			}
			if solver.Rank() == 0 {
				t, _ := m.DecodeTheta(theta)
				var ll float64
				solver.Compute(func() { ll = m.LogLik(t, muFull) })
				comps[2] = -0.5 * f.LogDet()
				comps[3] = ll + prior.LogDensity(theta)
				muLocal = muFull
			}
			return nil
		}()
		// The Q_p pipeline root always receives exactly one μ message per
		// evaluation; failures ship a NaN sentinel so the pairing stays
		// deterministic and no stale message survives into the next call.
		if useS2 && solver.Rank() == 0 {
			if err != nil || muLocal == nil {
				group.Send(0, tagMu, []float64{math.NaN()})
			} else {
				group.Send(0, tagMu, muLocal)
			}
		}
		return err
	}

	runQp := func() error {
		pipe.Barrier()
		var recvErr error
		if !active {
			return nil
		}
		err := func() error {
			solverRankCharge(solver, cell.dtQp, chargeP3(width, cfg))
			parts, err := bta.HybridPartition(m.Dims.Nt, counts, lb)
			if err != nil {
				return err
			}
			local, err := scr.slice(cell.qp, parts, counts, solver.Rank())
			if err != nil {
				return err
			}
			f, err := scr.factorize(solver, local, dopts)
			if err != nil {
				return err
			}
			// Quadratic form μᵀQ_pμ: root obtains μ, broadcasts, every rank
			// contributes its partition's terms.
			var muFull []float64
			if solver.Rank() == 0 {
				if useS2 {
					muFull = group.Recv(wA, tagMu)
				} else {
					muFull = muLocal
				}
				if len(muFull) != m.Dims.Total() || (len(muFull) > 0 && math.IsNaN(muFull[0])) {
					recvErr = fmt.Errorf("inla: Q_c pipeline failed before producing μ")
					muFull = make([]float64, m.Dims.Total()) // keep collectives aligned
				}
			}
			muFull = solver.Bcast(0, muFull)
			var quadLocal float64
			solver.Compute(func() {
				quadLocal = localQuad(cell.qp, local.Part, solver.Rank(), muFull, scr)
			})
			total := solver.AllReduceSum([]float64{quadLocal})
			if solver.Rank() == 0 {
				comps[0] = 0.5 * f.LogDet()
				comps[1] = -0.5 * total[0]
			}
			return recvErr
		}()
		if err != nil && useS2 && solver.Rank() == 0 && recvErr == nil {
			// Local failure before the receive: drain the pending μ message.
			group.Recv(wA, tagMu)
		}
		return err
	}

	var errQp, errQc error
	if useS2 {
		if color == 1 {
			errQc = runQc()
		} else {
			errQp = runQp()
		}
	} else {
		errQc = runQc()
		if errQc == nil {
			errQp = runQp()
		}
	}

	// Group-level combination: pipeline roots contribute their components.
	contrib := make([]float64, 5)
	failed := 0.0
	if errQp != nil || errQc != nil {
		failed = 1
	}
	if useS2 {
		if color == 0 && pipe.Rank() == 0 {
			contrib[0], contrib[1] = comps[0], comps[1]
		}
		if color == 1 && pipe.Rank() == 0 {
			contrib[2], contrib[3] = comps[2], comps[3]
		}
	} else if group.Rank() == 0 {
		copy(contrib, comps[:])
	}
	contrib[4] = failed
	sum := group.AllReduceSum(contrib)
	if sum[4] > 0 {
		if errQp != nil {
			return math.Inf(1), errQp
		}
		if errQc != nil {
			return math.Inf(1), errQc
		}
		return math.Inf(1), fmt.Errorf("inla: a peer pipeline failed")
	}
	fobj := sum[0] + sum[1] + sum[2] + sum[3]
	return -fobj, nil
}

// solverRankCharge charges the modeled per-rank share of the assembly cost
// (the O(nnz/P) mapping of §IV-F). The naive-mapping configuration charges
// the full undistributed cost on every rank (pass p3 = 1).
func solverRankCharge(solver *comm.Comm, dt float64, p3 int) {
	solver.Elapse(dt / float64(p3))
}

// chargeP3 selects the assembly-cost divisor: the naive mapping is not
// distributable (§IV-F), so its cost lands fully on every rank.
func chargeP3(p3 int, cfg DistConfig) int {
	if cfg.NaiveMapping {
		return 1
	}
	return p3
}

// localQuad computes this partition's contribution to μᵀ·Q·μ over the BTA
// block structure: diagonal terms for owned blocks, coupling terms for
// owned sub-diagonals plus the coupling to the previous partition, arrow
// terms for owned blocks, and the tip term on rank 0.
func localQuad(q *bta.Matrix, part bta.Partition, rank int, mu []float64, scr *groupScratch) float64 {
	b := q.B
	var s float64
	if len(scr.quadTmp) < b {
		scr.quadTmp = make([]float64, b)
	}
	tmp := scr.quadTmp[:b]
	for k := part.Lo; k <= part.Hi; k++ {
		mk := mu[k*b : (k+1)*b]
		dense.Gemv(dense.NoTrans, 1, q.Diag[k], mk, 0, tmp)
		s += dense.Dot(mk, tmp)
		if k < part.Hi {
			dense.Gemv(dense.NoTrans, 1, q.Lower[k], mk, 0, tmp)
			s += 2 * dense.Dot(mu[(k+1)*b:(k+2)*b], tmp)
		}
	}
	if part.Lo > 0 {
		prev := mu[(part.Lo-1)*b : part.Lo*b]
		dense.Gemv(dense.NoTrans, 1, q.Lower[part.Lo-1], prev, 0, tmp)
		s += 2 * dense.Dot(mu[part.Lo*b:(part.Lo+1)*b], tmp)
	}
	if q.A > 0 {
		ma := mu[q.N*b : q.N*b+q.A]
		if len(scr.quadTmpA) < q.A {
			scr.quadTmpA = make([]float64, q.A)
		}
		tmpA := scr.quadTmpA[:q.A]
		for k := part.Lo; k <= part.Hi; k++ {
			dense.Gemv(dense.NoTrans, 1, q.Arrow[k], mu[k*b:(k+1)*b], 0, tmpA)
			s += 2 * dense.Dot(ma, tmpA)
		}
		if rank == 0 {
			dense.Gemv(dense.NoTrans, 1, q.Tip, ma, 0, tmpA)
			s += dense.Dot(ma, tmpA)
		}
	}
	return s
}
