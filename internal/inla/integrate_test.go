package inla

import (
	"math"
	"testing"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// gaussEvaluator mimics a conjugate situation where the latent posterior
// mean depends linearly on θ: Posterior(θ) = (θ repeated, unit variance),
// and F(θ) = ½‖θ‖² (mode at 0, identity Hessian).
type gaussEvaluator struct{ dim int }

func (e *gaussEvaluator) EvalBatch(points [][]float64) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		var s float64
		for _, v := range p {
			s += v * v
		}
		out[i] = 0.5 * s
	}
	return out
}

func (e *gaussEvaluator) Posterior(theta []float64) ([]float64, []float64, error) {
	mu := make([]float64, e.dim)
	va := make([]float64, e.dim)
	for i := range mu {
		mu[i] = theta[i%len(theta)]
		va[i] = 1
	}
	return mu, va, nil
}

func TestIntegrateHyperGridAndWeights(t *testing.T) {
	e := &gaussEvaluator{dim: 4}
	mode := []float64{0, 0}
	hess := dense.Eye(2)
	ip, err := IntegrateHyper(e, mode, hess, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ip.Points) != 5 { // center + ±1 per eigendirection
		t.Fatalf("points = %d", len(ip.Points))
	}
	var wsum float64
	for _, w := range ip.Weights {
		if w < 0 {
			t.Fatal("negative weight")
		}
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", wsum)
	}
	// Center has the highest density: F is minimal there.
	for k := 1; k < len(ip.Weights); k++ {
		if ip.Weights[k] > ip.Weights[0] {
			t.Fatal("off-center weight exceeds the mode's")
		}
	}
	// The ± symmetric grid around 0 keeps the mixture mean at 0 and
	// inflates the variance above the plug-in value 1 (between-configuration
	// spread).
	for i := range ip.Mu {
		if math.Abs(ip.Mu[i]) > 1e-12 {
			t.Fatalf("mixture mean %v, want 0", ip.Mu[i])
		}
		if ip.Var[i] <= 1 {
			t.Fatalf("mixture variance %v must exceed the plug-in 1", ip.Var[i])
		}
	}
}

func TestIntegrateHyperRejectsIndefiniteHessian(t *testing.T) {
	e := &gaussEvaluator{dim: 2}
	h := dense.Eye(2)
	h.Set(1, 1, -1)
	if _, err := IntegrateHyper(e, []float64{0, 0}, h, 1); err == nil {
		t.Fatal("indefinite Hessian must error")
	}
}

func TestIntegrateHyperOnFittedModel(t *testing.T) {
	// End-to-end: fit a small model, then integrate over the θ grid; the
	// integrated variances must be ≥ the plug-in variances (extra
	// hyperparameter uncertainty) and the means must stay close.
	ds := genSmall(t, 1)
	truth := ds.Model.EncodeTheta(ds.TrueTheta)
	prior := WeakPrior(truth, 3)
	e := &BTAEvaluator{Model: ds.Model, Prior: prior}
	opts := DefaultOptOptions()
	opts.MaxIter = 12
	res, err := Minimize(e, ds.Theta0, opts)
	if err != nil {
		t.Fatal(err)
	}
	hess, err := HessianAtMode(e, res.Theta, 5e-3)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := IntegrateHyper(e, res.Theta, hess, 1)
	if err != nil {
		t.Skipf("Hessian not PD on this draw: %v", err)
	}
	muPlug, vaPlug, err := e.Posterior(res.Theta)
	if err != nil {
		t.Fatal(err)
	}
	// The mixture variance need not dominate the *center's* variance
	// (off-center configurations can be tighter); assert the sanity band
	// and that the mixture mean stays close to the plug-in.
	var meanDrift float64
	for i := range muPlug {
		if ip.Var[i] <= 0 {
			t.Fatalf("integrated variance[%d] = %v", i, ip.Var[i])
		}
		if ip.Var[i] < 0.2*vaPlug[i] || ip.Var[i] > 5*vaPlug[i] {
			t.Fatalf("integrated variance[%d] = %v vs plug-in %v outside sanity band", i, ip.Var[i], vaPlug[i])
		}
		meanDrift += math.Abs(ip.Mu[i] - muPlug[i])
	}
	meanDrift /= float64(len(muPlug))
	if meanDrift > 1 {
		t.Fatalf("integrated mean drifted %v from the plug-in", meanDrift)
	}
	// Weights are a proper distribution with the mode dominating.
	var wsum float64
	for _, w := range ip.Weights {
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", wsum)
	}
}

func TestFitWithGridIntegration(t *testing.T) {
	ds := genSmall(t, 1)
	truth := ds.Model.EncodeTheta(ds.TrueTheta)
	prior := WeakPrior(truth, 3)
	opts := DefaultFitOptions()
	opts.Opt.MaxIter = 12
	opts.IntegrateHyperGrid = true
	res, err := Fit(ds.Model, prior, ds.Theta0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Integrated == nil {
		t.Skip("Hessian stage did not produce a PD matrix on this draw")
	}
	if len(res.Integrated.Mu) != len(res.Mu) {
		t.Fatal("integrated posterior dimension mismatch")
	}
	if len(res.Integrated.Points) != 2*len(res.Theta)+1 {
		t.Fatalf("grid size %d", len(res.Integrated.Points))
	}
}
