package inla

import (
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/model"
)

// ModeFactor assembles and factorizes the conditional precision Q_c(θ) —
// typically at the fitted mode θ* of a Result — and returns the decoded
// configuration alongside the factor. This is the entry point the
// prediction layer uses to turn a finished fit back into a solver: the
// factor supports Solve/SolveMultiInto/SelectedInversion for arbitrary
// downstream right-hand sides (cross-projections at unobserved locations,
// posterior samples) without re-running any INLA stage.
//
// The returned factor is freshly allocated and exclusively owned by the
// caller, so long-lived services can hold it for the lifetime of a
// registered model while the evaluator pools keep recycling their own.
func ModeFactor(m *model.Model, theta []float64) (*model.Theta, *bta.Factor, error) {
	t, s, err := ModeSolver(m, theta, 1)
	if err != nil {
		return nil, nil, err
	}
	return t, s.(*bta.Factor), nil
}

// ModeSolver is ModeFactor behind the solver interface with a chosen
// parallel-in-time width: partitions ≤ 1 produces the sequential Factor
// (exactly ModeFactor), larger widths a bta.ParallelFactor so a long-lived
// service registering a model pays multicore latency for the one-off mode
// factorization and for every selected inversion it later runs. partitions
// beyond the time dimension's capacity are clamped.
func ModeSolver(m *model.Model, theta []float64, partitions int) (*model.Theta, bta.Solver, error) {
	t, err := m.DecodeTheta(theta)
	if err != nil {
		return nil, nil, err
	}
	n, b, a := m.Dims.BTAShape()
	qc := bta.NewMatrix(n, b, a)
	if err := m.QcInto(t, qc); err != nil {
		return nil, nil, err
	}
	s, err := bta.NewSolver(n, b, a, partitions)
	if err != nil {
		return nil, nil, err
	}
	if err := s.Refactorize(qc); err != nil {
		return nil, nil, fmt.Errorf("inla: Q_c factorization at the mode: %w", err)
	}
	return t, s, nil
}

// LatentMarginal returns the posterior marginal (mean, sd) of latent
// coordinate i in the BTA ordering, reusing the mean and selected-inversion
// diagonal the fit already computed — no solve is performed. Predictions at
// observed mesh nodes reduce to exactly these numbers (scaled through the
// coregionalization), which the prediction tests exploit as an invariant.
func (r *Result) LatentMarginal(i int) (mean, sd float64) {
	return r.Mu[i], math.Sqrt(r.LatentVar[i])
}
