package inla

import (
	"fmt"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/model"
	"github.com/dalia-hpc/dalia/internal/sparse"
)

// btaFactorizer adapts the structured solver to the inner-Newton interface
// of model.ConditionalModePoisson: it maps a process-major Q_c with the
// model's pattern into BTA form, factorizes, and returns a solver closure
// operating on process-major vectors.
func btaFactorizer(m *model.Model) func(*sparse.CSR) (func([]float64) []float64, error) {
	return func(qc *sparse.CSR) (func([]float64) []float64, error) {
		qb, err := m.QcFromCSR(qc)
		if err != nil {
			return nil, err
		}
		f, err := bta.Factorize(qb)
		if err != nil {
			return nil, err
		}
		return func(rhsPM []float64) []float64 {
			x := m.ApplyPerm(rhsPM)
			f.Solve(x)
			return m.UnPerm(x)
		}, nil
	}
}

// evalFobjPoisson evaluates the INLA objective for the Poisson model: find
// the conditional mode via damped Newton (each step a structured solve),
// then assemble Eq. 8 with the Laplace approximation p_G centered at the
// mode.
func evalFobjPoisson(m *model.Model, prior Prior, t *model.Theta, theta []float64) (FobjParts, error) {
	parts := FobjParts{LogPrior: prior.LogDensity(theta)}

	mode, err := m.ConditionalModePoisson(t, btaFactorizer(m))
	if err != nil {
		return FobjParts{}, err
	}
	qcB, err := m.QcFromCSR(mode.QcCSR)
	if err != nil {
		return FobjParts{}, err
	}
	fc, err := bta.Factorize(qcB)
	if err != nil {
		return FobjParts{}, fmt.Errorf("inla: Q_c at the Poisson mode: %w", err)
	}
	qp, err := m.Qp(t)
	if err != nil {
		return FobjParts{}, err
	}
	fp, err := bta.Factorize(qp)
	if err != nil {
		return FobjParts{}, fmt.Errorf("inla: Q_p factorization: %w", err)
	}

	parts.LogDetQp = fp.LogDet()
	parts.LogDetQc = fc.LogDet()
	parts.Mu = mode.XPerm
	parts.LatentDim = len(mode.XPerm)
	tmp := make([]float64, len(mode.XPerm))
	qp.MulVec(mode.XPerm, tmp)
	parts.QuadQp = dense.Dot(mode.XPerm, tmp)
	parts.LogLik = mode.LogLik
	return parts, nil
}

// posteriorPoisson computes the latent posterior at theta for a Poisson
// model: the conditional mode and the marginal variances from the selected
// inversion of Q_c at the mode.
func posteriorPoisson(m *model.Model, theta []float64) ([]float64, []float64, error) {
	t, err := m.DecodeTheta(theta)
	if err != nil {
		return nil, nil, err
	}
	mode, err := m.ConditionalModePoisson(t, btaFactorizer(m))
	if err != nil {
		return nil, nil, err
	}
	qcB, err := m.QcFromCSR(mode.QcCSR)
	if err != nil {
		return nil, nil, err
	}
	f, err := bta.Factorize(qcB)
	if err != nil {
		return nil, nil, err
	}
	sig, err := f.SelectedInversion()
	if err != nil {
		return nil, nil, err
	}
	return mode.XPerm, sig.DiagVec(), nil
}
