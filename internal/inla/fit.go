package inla

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/model"
)

// FitOptions configures a full INLA fit.
type FitOptions struct {
	Opt OptOptions
	// HessStep is the finite-difference step of the mode Hessian.
	HessStep float64
	// SkipHyperUncertainty disables the Hessian stage (scaling benches).
	SkipHyperUncertainty bool
	// Workers is the core budget the per-batch scheduling plan distributes
	// across point-level parallelism and parallel-in-time factorization
	// partitions; 0 = GOMAXPROCS.
	Workers int
	// DisableS2 turns off the concurrent Q_p/Q_c pipelines.
	DisableS2 bool
	// SolverPartitions pins the parallel-in-time solver width: 0 schedules
	// it per batch (wide gradient/Hessian batches stay on point-level
	// parallelism, narrow line-search and posterior evaluations spend the
	// spare cores inside the factorization), 1 forces the sequential
	// solver everywhere, ≥ 2 forces that partition count.
	SolverPartitions int
	// SolverRecursion pins the reduced-system nesting depth of the
	// parallel-in-time factorizations: 0 follows the batch plan (one level
	// once the partition gang is wide enough), -1 forces the sequential
	// reduced solve, ≥ 1 forces that depth.
	SolverRecursion int
	// ReducedCrossover overrides the smallest reduced block count worth
	// recursing on (0 = bta.DefaultReducedCrossover).
	ReducedCrossover int
	// NoPipeline disables the pipelined boundary handoff of the reduced
	// assembly.
	NoPipeline bool
	// Precision selects the per-stage factorization precision policy:
	// bta.PrecMixed runs interior elimination sweeps in fp32 (twice the
	// AVX2 vector width) while the reduced boundary system, log-det
	// accumulation and non-SPD recovery stay fp64, with fp64 iterative
	// refinement restoring solve accuracy to fp64 level. The zero value
	// keeps pure fp64 everywhere.
	Precision bta.Precision
	// MaxRefine bounds the fp64 refinement iterations per mixed-precision
	// solve (0 = bta.DefaultMaxRefine).
	MaxRefine int
	// PhaseBarrier forces the legacy phase-synchronized concurrency (fresh
	// per-batch goroutines, per-phase solver gangs) instead of the shared
	// work-stealing task-DAG executor. Results are identical; the knob
	// exists for the scheduler benchmark and the determinism suite.
	PhaseBarrier bool
	// IntegrateHyperGrid additionally integrates the latent posterior over
	// the eigenvector grid of the mode Hessian (§III-4) instead of the
	// plug-in at θ* only; requires the Hessian stage.
	IntegrateHyperGrid bool
	// MaxEvalRetries / RetryBackoff override the mode search's
	// quarantined-evaluation retry policy (OptOptions.MaxEvalRetries /
	// OptOptions.RetryBackoff) when set (> 0); zero keeps whatever Opt
	// carries.
	MaxEvalRetries int
	RetryBackoff   float64
	// Ctx, when non-nil, propagates cancellation into the mode search: a
	// canceled context aborts the BFGS loop at the next iteration boundary
	// (a checkpoint boundary) and Fit returns ErrFitCanceled. The posterior
	// stages are skipped on an aborted search.
	Ctx context.Context
	// Checkpoint, when set, receives a deep-copied resumable snapshot of
	// the optimizer state every CheckpointEvery completed mode-search
	// iterations — the hook the persistence layer uses so a killed fit
	// resumes from the last BFGS iterate instead of θ₀.
	Checkpoint func(*OptCheckpoint) error
	// CheckpointEvery is the iteration stride of Checkpoint (≤ 0 = every
	// iteration).
	CheckpointEvery int
	// Resume restarts the mode search from a previously captured optimizer
	// checkpoint instead of theta0.
	Resume *OptCheckpoint
}

// DefaultFitOptions returns the standard configuration.
func DefaultFitOptions() FitOptions {
	return FitOptions{Opt: DefaultOptOptions(), HessStep: 5e-3}
}

// Result is the outcome of a full INLA fit: the hyperparameter mode and its
// Gaussian approximation, and the latent posterior (mean + marginal
// variances, BTA ordering).
type Result struct {
	Theta     []float64
	ThetaSD   []float64
	ThetaCov  *dense.Matrix
	Opt       *OptResult
	Mu        []float64
	LatentVar []float64
	// Integrated holds the grid-integrated latent posterior when
	// FitOptions.IntegrateHyperGrid was set and the Hessian stage succeeded.
	Integrated *IntegratedPosterior
}

// Fit runs the complete INLA procedure on the model: mode search (BFGS with
// parallel central differences), hyperparameter uncertainty (Hessian at the
// mode), and latent posterior extraction (conditional mean and selected
// inversion of Q_c at the mode).
func Fit(m *model.Model, prior Prior, theta0 []float64, opts FitOptions) (*Result, error) {
	e := &BTAEvaluator{Model: m, Prior: prior, Workers: opts.Workers,
		S2: !opts.DisableS2, Partitions: opts.SolverPartitions,
		Recursion: opts.SolverRecursion, ReducedCrossover: opts.ReducedCrossover,
		NoPipeline: opts.NoPipeline, Precision: opts.Precision, MaxRefine: opts.MaxRefine,
		PhaseBarrier: opts.PhaseBarrier}
	return fitWith(e, theta0, opts)
}

// fitWith runs the INLA stages on any Evaluator backend.
func fitWith(e Evaluator, theta0 []float64, opts FitOptions) (*Result, error) {
	if opts.MaxEvalRetries > 0 {
		opts.Opt.MaxEvalRetries = opts.MaxEvalRetries
	}
	if opts.RetryBackoff > 0 {
		opts.Opt.RetryBackoff = opts.RetryBackoff
	}
	if opts.Ctx != nil {
		opts.Opt.Ctx = opts.Ctx
	}
	if opts.Checkpoint != nil {
		opts.Opt.Checkpoint = opts.Checkpoint
		opts.Opt.CheckpointEvery = opts.CheckpointEvery
	}
	if opts.Resume != nil {
		opts.Opt.Resume = opts.Resume
	}
	opt, err := Minimize(e, theta0, opts.Opt)
	if err != nil && opt == nil {
		return nil, err
	}
	if errors.Is(err, ErrFitCanceled) {
		// An aborted search has no business running the posterior stages;
		// the caller holds the resumable checkpoint.
		return nil, err
	}
	// A failed line search still yields a usable (if premature) mode.
	res := &Result{Theta: opt.Theta, Opt: opt}

	if !opts.SkipHyperUncertainty {
		h := opts.HessStep
		if h == 0 {
			h = 5e-3
		}
		hess, herr := HessianAtMode(e, opt.Theta, h)
		if herr == nil {
			if opts.IntegrateHyperGrid {
				if ip, ierr := IntegrateHyper(e, opt.Theta, hess, 1); ierr == nil {
					res.Integrated = ip
				}
			}
			if cov, cerr := dense.Inverse(hess); cerr == nil {
				res.ThetaCov = cov
				res.ThetaSD = make([]float64, len(opt.Theta))
				ok := true
				for i := range res.ThetaSD {
					v := cov.At(i, i)
					if v <= 0 {
						ok = false
						break
					}
					res.ThetaSD[i] = math.Sqrt(v)
				}
				if !ok {
					res.ThetaSD = nil
					res.ThetaCov = nil
				}
			}
		}
	}

	mu, va, perr := e.Posterior(opt.Theta)
	if perr != nil {
		return nil, fmt.Errorf("inla: posterior extraction at the mode: %w", perr)
	}
	res.Mu = mu
	res.LatentVar = va
	return res, nil
}

// FixedEffect summarizes one fixed effect's Gaussian posterior.
type FixedEffect struct {
	Process int
	Index   int
	Mean    float64
	SD      float64
	Q025    float64
	Q975    float64
}

// FixedEffects extracts the fixed-effect posteriors from the latent result
// (they live in the BTA arrow tip, ordered process-major).
func FixedEffects(m *model.Model, r *Result) []FixedEffect {
	d := m.Dims
	base := d.Nv * d.Ns * d.Nt
	out := make([]FixedEffect, 0, d.Nv*d.Nr)
	const z = 1.959963984540054
	for v := 0; v < d.Nv; v++ {
		for k := 0; k < d.Nr; k++ {
			idx := base + v*d.Nr + k
			sd := math.Sqrt(r.LatentVar[idx])
			out = append(out, FixedEffect{
				Process: v, Index: k,
				Mean: r.Mu[idx], SD: sd,
				Q025: r.Mu[idx] - z*sd, Q975: r.Mu[idx] + z*sd,
			})
		}
	}
	return out
}
