package inla

import (
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// IntegratedPosterior holds the latent posterior integrated over the
// hyperparameter uncertainty (§III-4: p_G computed at different θ and
// mixed), instead of the simplest plug-in at the mode θ*.
type IntegratedPosterior struct {
	// Points are the explored configurations (center first), Weights their
	// normalized integration weights.
	Points  [][]float64
	Weights []float64
	// Mu and Var are the mixture mean and marginal variance of the latent
	// field (BTA ordering): Var includes the between-configuration spread.
	Mu  []float64
	Var []float64
}

// IntegrateHyper explores the hyperparameter posterior on the eigenvector
// grid of the mode Hessian (the reparametrization of §III-3): the z-grid
// θ = θ* ± δ·√λ_i⁻¹·v_i along each eigendirection, weighting each
// configuration by its posterior density exp(fobj(θ)−fobj(θ*)), and mixes
// the Gaussian latent approximations:
//
//	μ̄ = Σ w_k μ_k,   σ̄² = Σ w_k (σ_k² + μ_k²) − μ̄².
//
// hess is ∇²(−fobj) at the mode (from HessianAtMode); delta ≈ 1 explores
// one posterior standard deviation.
func IntegrateHyper(e Evaluator, thetaMode []float64, hess *dense.Matrix, delta float64) (*IntegratedPosterior, error) {
	d := len(thetaMode)
	vals, vecs, err := dense.SymEigen(hess)
	if err != nil {
		return nil, err
	}
	for i, l := range vals {
		if l <= 0 {
			return nil, fmt.Errorf("inla: mode Hessian not positive definite (λ[%d] = %v)", i, l)
		}
	}
	if delta <= 0 {
		delta = 1
	}
	// Grid: center + ±delta along each eigendirection (2d+1 points).
	pts := make([][]float64, 0, 2*d+1)
	pts = append(pts, append([]float64(nil), thetaMode...))
	for i := 0; i < d; i++ {
		step := delta / math.Sqrt(vals[i])
		plus := append([]float64(nil), thetaMode...)
		minus := append([]float64(nil), thetaMode...)
		for r := 0; r < d; r++ {
			plus[r] += step * vecs.At(r, i)
			minus[r] -= step * vecs.At(r, i)
		}
		pts = append(pts, plus, minus)
	}

	// Posterior density ratios from −fobj (S1-parallel batch).
	fvals := e.EvalBatch(pts)
	f0 := fvals[0]
	weights := make([]float64, len(pts))
	var wsum float64
	for k, f := range fvals {
		if math.IsInf(f, 1) || math.IsNaN(f) {
			weights[k] = 0
			continue
		}
		weights[k] = math.Exp(f0 - f) // fobj(θ_k) − fobj(θ*) on the log scale
		wsum += weights[k]
	}
	if wsum <= 0 {
		return nil, fmt.Errorf("inla: all integration points infeasible")
	}
	for k := range weights {
		weights[k] /= wsum
	}

	// Mix the Gaussian approximations.
	out := &IntegratedPosterior{Points: pts, Weights: weights}
	for k, p := range pts {
		if weights[k] == 0 {
			continue
		}
		mu, va, err := e.Posterior(p)
		if err != nil {
			// An infeasible posterior at a grid point: drop its mass.
			continue
		}
		if out.Mu == nil {
			out.Mu = make([]float64, len(mu))
			out.Var = make([]float64, len(mu))
		}
		w := weights[k]
		for i := range mu {
			out.Mu[i] += w * mu[i]
			out.Var[i] += w * (va[i] + mu[i]*mu[i])
		}
	}
	if out.Mu == nil {
		return nil, fmt.Errorf("inla: no integration point produced a posterior")
	}
	for i := range out.Var {
		out.Var[i] -= out.Mu[i] * out.Mu[i]
		if out.Var[i] < 0 {
			out.Var[i] = 0
		}
	}
	return out, nil
}
