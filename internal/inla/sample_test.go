package inla

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/mesh"
	"github.com/dalia-hpc/dalia/internal/model"
	"github.com/dalia-hpc/dalia/internal/synth"
)

func TestSamplePosteriorMomentsMatchSelectedInversion(t *testing.T) {
	ds := genSmall(t, 1)
	const n = 3000
	rng := rand.New(rand.NewSource(99))
	mu, samples, err := SamplePosterior(ds.Model, ds.Theta0, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != n {
		t.Fatalf("samples = %d", len(samples))
	}
	e := &BTAEvaluator{Model: ds.Model, Prior: WeakPrior(ds.Theta0, 5)}
	muRef, vaRef, err := e.Posterior(ds.Theta0)
	if err != nil {
		t.Fatal(err)
	}
	dim := ds.Model.Dims.Total()
	// Empirical mean ≈ μ and empirical variance ≈ selected-inversion
	// variances within Monte-Carlo tolerance, checked on a spread of
	// coordinates.
	for i := 0; i < dim; i += dim / 7 {
		var em, ev float64
		for _, s := range samples {
			em += s[i]
		}
		em /= n
		for _, s := range samples {
			d := s[i] - em
			ev += d * d
		}
		ev /= float64(n - 1)
		if math.Abs(mu[i]-muRef[i]) > 1e-9 {
			t.Fatalf("returned μ[%d] disagrees with posterior mean", i)
		}
		seMean := math.Sqrt(vaRef[i] / n)
		if math.Abs(em-muRef[i]) > 6*seMean+1e-9 {
			t.Fatalf("sample mean[%d] = %v vs μ %v (se %v)", i, em, muRef[i], seMean)
		}
		if ev < 0.7*vaRef[i] || ev > 1.4*vaRef[i] {
			t.Fatalf("sample variance[%d] = %v vs selinv %v", i, ev, vaRef[i])
		}
	}
}

func TestSamplePosteriorPoisson(t *testing.T) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 2, Nr: 1,
		MeshNx: 3, MeshNy: 3,
		ObsPerStep: 15,
		Seed:       4,
		Family:     model.LikPoisson,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	mu, samples, err := SamplePosterior(ds.Model, ds.Theta0, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(mu) != ds.Model.Dims.Total() || len(samples) != 50 {
		t.Fatal("Poisson sampling shapes wrong")
	}
}

func TestExceedanceProbabilities(t *testing.T) {
	ds := genSmall(t, 1)
	rng := rand.New(rand.NewSource(7))
	_, samples, err := SamplePosterior(ds.Model, ds.Theta0, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	pts := []mesh.Point{{X: 50, Y: 50}, {X: 80, Y: 20}}
	tidx := []int{0, 1}
	cov := covFor(pts)

	// Probabilities in [0,1]; a −∞ threshold gives 1, +∞ gives 0, and they
	// are monotone in the threshold.
	pLo, err := Exceedance(ds.Model, ds.Theta0, samples, pts, tidx, cov, 0, -1e9)
	if err != nil {
		t.Fatal(err)
	}
	pHi, err := Exceedance(ds.Model, ds.Theta0, samples, pts, tidx, cov, 0, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	pMid, err := Exceedance(ds.Model, ds.Theta0, samples, pts, tidx, cov, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if pLo[i] != 1 || pHi[i] != 0 {
			t.Fatalf("degenerate thresholds wrong: %v %v", pLo[i], pHi[i])
		}
		if pMid[i] < 0 || pMid[i] > 1 {
			t.Fatalf("probability %v outside [0,1]", pMid[i])
		}
	}
}

func TestExceedanceValidation(t *testing.T) {
	ds := genSmall(t, 1)
	pts := []mesh.Point{{X: 1, Y: 1}}
	cov := covFor(pts)
	if _, err := Exceedance(ds.Model, ds.Theta0, nil, pts, []int{0}, cov, 0, 0); err == nil {
		t.Fatal("no samples must error")
	}
	rng := rand.New(rand.NewSource(1))
	_, samples, err := SamplePosterior(ds.Model, ds.Theta0, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exceedance(ds.Model, ds.Theta0, samples, pts, []int{0}, cov, 5, 0); err == nil {
		t.Fatal("bad response index must error")
	}
}

func covFor(pts []mesh.Point) *dense.Matrix {
	m := dense.New(len(pts), 2)
	for i := range pts {
		m.Set(i, 0, 1)
		m.Set(i, 1, 0.5)
	}
	return m
}
