package inla

import (
	"fmt"
	"math"
)

// HyperMarginal summarizes one hyperparameter's Gaussian posterior
// approximation (§III-3: from the Hessian of fobj at the mode), reported on
// the working (log/identity) scale and, when the component is a log-scale
// parameter, also back-transformed to the natural scale where the
// distribution is log-normal.
type HyperMarginal struct {
	Index int
	Name  string
	// Working-scale Gaussian.
	Mean float64
	SD   float64
	Q025 float64
	Q975 float64
	// Natural-scale summaries (log-normal when LogScale).
	LogScale      bool
	NaturalMedian float64
	NaturalQ025   float64
	NaturalQ975   float64
}

// HyperMarginals derives per-component marginal summaries from a fit
// result. Names and scale flags follow the model's θ layout:
// [log ρ_s, log ρ_t, log σ]×nv, λ… (identity scale), [log τ_y]×nv for
// Gaussian models. Returns nil when the fit skipped the Hessian stage.
func HyperMarginals(names []string, logScale []bool, r *Result) []HyperMarginal {
	if r.ThetaSD == nil {
		return nil
	}
	const z = 1.959963984540054
	out := make([]HyperMarginal, len(r.Theta))
	for i := range r.Theta {
		hm := HyperMarginal{
			Index: i,
			Mean:  r.Theta[i],
			SD:    r.ThetaSD[i],
			Q025:  r.Theta[i] - z*r.ThetaSD[i],
			Q975:  r.Theta[i] + z*r.ThetaSD[i],
		}
		if i < len(names) {
			hm.Name = names[i]
		}
		if i < len(logScale) && logScale[i] {
			hm.LogScale = true
			hm.NaturalMedian = math.Exp(hm.Mean)
			hm.NaturalQ025 = math.Exp(hm.Q025)
			hm.NaturalQ975 = math.Exp(hm.Q975)
		}
		out[i] = hm
	}
	return out
}

// ThetaLayout returns the component names and log-scale flags of a model's
// θ vector, for labeling marginal summaries.
func ThetaLayout(nv, nLambda int, gaussian bool) (names []string, logScale []bool) {
	for k := 0; k < nv; k++ {
		names = append(names,
			fmt.Sprintf("range_s[%d]", k),
			fmt.Sprintf("range_t[%d]", k),
			fmt.Sprintf("sigma[%d]", k))
		logScale = append(logScale, true, true, true)
	}
	for i := 0; i < nLambda; i++ {
		names = append(names, fmt.Sprintf("lambda[%d]", i))
		logScale = append(logScale, false)
	}
	if gaussian {
		for k := 0; k < nv; k++ {
			names = append(names, fmt.Sprintf("tau_y[%d]", k))
			logScale = append(logScale, true)
		}
	}
	return names, logScale
}
