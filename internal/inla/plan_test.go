package inla

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// genPintime builds a dataset with enough time blocks for parallel-in-time
// partitioning to be in play (nt = 12 supports up to 3 useful partitions).
func genPintime(t *testing.T) *synth.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 2, Nt: 12, Nr: 2,
		MeshNx: 4, MeshNy: 3,
		ObsPerStep: 20,
		Seed:       17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPlanBatchFillsPointsFirst(t *testing.T) {
	// Wide gradient batch on a matching core budget: all cores go to S1,
	// the factorizations stay sequential.
	p := PlanBatch(9, 8, 64, true)
	if p.PointWorkers != 8 {
		t.Fatalf("PointWorkers = %d, want 8", p.PointWorkers)
	}
	if p.Partitions != 1 {
		t.Fatalf("wide batch must stay sequential, got %d partitions", p.Partitions)
	}
	// Width-1 line-search probe: the whole budget flows inside the single
	// factorization (halved by the S2 pipeline split).
	p = PlanBatch(1, 8, 64, true)
	if p.PointWorkers != 1 {
		t.Fatalf("PointWorkers = %d, want 1", p.PointWorkers)
	}
	if p.Partitions != 4 {
		t.Fatalf("width-1 batch with 8 cores and S2 should run 4 partitions, got %d", p.Partitions)
	}
	// Without S2 the full budget becomes partition width.
	p = PlanBatch(1, 8, 64, false)
	if p.Partitions != 8 {
		t.Fatalf("width-1 batch with 8 cores, no S2: want 8 partitions, got %d", p.Partitions)
	}
}

// TestPlanBatchReducedEngineDefaults: narrow batches with wide partition
// gangs turn on one level of reduced-system recursion and the pipelined
// handoff; narrow gangs (below the crossover width) stay sequential.
func TestPlanBatchReducedEngineDefaults(t *testing.T) {
	// 40 cores, width 1, no S2 → 5 partitions ≥ the crossover width.
	p := PlanBatch(1, 5, 64, false)
	if p.Partitions < recursionWorthwhileWidth {
		t.Fatalf("plan %+v: expected a gang at least %d wide", p, recursionWorthwhileWidth)
	}
	if p.Recursion != 1 || !p.PipelineReduced {
		t.Fatalf("wide gang must schedule recursion + pipelining, got %+v", p)
	}
	// 2 partitions: reduced system of 2 blocks — nothing to nest or stream.
	p = PlanBatch(1, 2, 64, false)
	if p.Recursion != 0 || p.PipelineReduced {
		t.Fatalf("narrow gang must stay sequential, got %+v", p)
	}
}

// TestEvaluatorReducedKnobs: the pinned knobs override the plan the same
// way Partitions does.
func TestEvaluatorReducedKnobs(t *testing.T) {
	ds := genPintime(t)
	e := &BTAEvaluator{Model: ds.Model, Workers: 20, Partitions: 6, Recursion: 2, ReducedCrossover: 4}
	spec := e.specFor(1, false)
	if spec.parts != 6 { // the pin; the per-scratch solver clamp applies later
		t.Fatalf("spec parts = %d, want the pinned 6", spec.parts)
	}
	if spec.depth != 2 || spec.crossover != 4 {
		t.Fatalf("spec %+v: pinned depth/crossover not honored", spec)
	}
	e.Recursion = -1
	if s := e.specFor(1, false); s.depth != 0 {
		t.Fatalf("Recursion=-1 must force the sequential reduced solve, got depth %d", s.depth)
	}
	e.NoPipeline = true
	if s := e.specFor(1, false); s.pipeline {
		t.Fatal("NoPipeline must force the eager assembly")
	}
}

func TestPlanBatchRespectsTimePartitionability(t *testing.T) {
	// nt = 8 supports at most 8/4 = 2 useful partitions regardless of the
	// core budget.
	p := PlanBatch(1, 64, 8, false)
	if p.Partitions != 2 {
		t.Fatalf("partitions = %d, want the nt-bound 2", p.Partitions)
	}
	// Tiny time dimensions disable the layer entirely.
	p = PlanBatch(1, 64, 3, false)
	if p.Partitions != 1 {
		t.Fatalf("partitions = %d, want 1 for nt=3", p.Partitions)
	}
	// A single core disables every layer.
	p = PlanBatch(5, 1, 64, true)
	if p.PointWorkers != 1 || p.Partitions != 1 {
		t.Fatalf("single-core plan must be fully sequential, got %+v", p)
	}
}

// TestRunBoundedCapsConcurrency: the worker pool must never exceed its
// bound, must cover every index exactly once, and must not deadlock on
// degenerate bounds.
func TestRunBoundedCapsConcurrency(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		const n = 64
		var active, peak, calls atomic.Int64
		var mu sync.Mutex
		seen := make(map[int]int)
		runBounded(n, workers, func(i int) {
			cur := active.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			mu.Lock()
			seen[i]++
			mu.Unlock()
			calls.Add(1)
			active.Add(-1)
		})
		if calls.Load() != n {
			t.Fatalf("workers=%d: %d calls, want %d", workers, calls.Load(), n)
		}
		for i := 0; i < n; i++ {
			if seen[i] != 1 {
				t.Fatalf("workers=%d: index %d evaluated %d times", workers, i, seen[i])
			}
		}
		bound := int64(workers)
		if bound > n {
			bound = n
		}
		if peak.Load() > bound {
			t.Fatalf("workers=%d: observed concurrency %d beyond the bound %d", workers, peak.Load(), bound)
		}
	}
}

// TestEvalBatchBoundedWorkersMatchesSequential: the pooled batch must give
// the same values as width-1 evaluations, whatever the worker bound.
func TestEvalBatchBoundedWorkersMatchesSequential(t *testing.T) {
	ds := genSmall(t, 2)
	prior := WeakPrior(ds.Theta0, 5)
	pts := gradientPoints(ds.Theta0, 1e-3)
	want := (&BTAEvaluator{Model: ds.Model, Prior: prior, Workers: 1}).EvalBatch(pts)
	got := (&BTAEvaluator{Model: ds.Model, Prior: prior, Workers: 3}).EvalBatch(pts)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("point %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestBFGSIterationAllocFree pins the satellite fix: with the state
// allocated once, one iteration's bookkeeping — stencil refill, gradient
// extraction, direction, trial point, curvature update, Hessian reset —
// performs zero heap allocations.
func TestBFGSIterationAllocFree(t *testing.T) {
	if dense.RaceEnabled {
		t.Skip("race mode skews allocation accounting")
	}
	d := 5
	theta := make([]float64, d)
	st := newBFGSState(theta)
	hInv := dense.Eye(d)
	vals := make([]float64, 2*d+1)
	for i := range vals {
		vals[i] = float64(i%3) - 1
	}
	for i := range st.s {
		st.s[i] = 0.1 * float64(i+1)
		st.yv[i] = 0.2 * float64(d-i)
	}
	allocs := testing.AllocsPerRun(50, func() {
		fillGradientPoints(st.pts, st.x, 1e-3)
		_ = gradientFromBatchInto(st.g, vals, 1e-3)
		dense.Gemv(dense.NoTrans, -1, hInv, st.g, 0, st.p)
		searchPoint(st.xNew, st.x, st.p, 0.5)
		bfgsUpdate(hInv, st.s, st.yv, st.hy)
		setEye(hInv)
	})
	if allocs != 0 {
		t.Fatalf("BFGS iteration bookkeeping allocates %.1f objects per run, want 0", allocs)
	}
}

// TestFitParallelSolverMatchesSequential: a fit forced onto the
// parallel-in-time solver must reproduce the sequential fit's mode to
// optimizer tolerance (the backends agree to 1e-10 per evaluation, so the
// whole BFGS trajectory coincides).
func TestFitParallelSolverMatchesSequential(t *testing.T) {
	ds := genPintime(t)
	prior := WeakPrior(ds.Theta0, 5)
	opts := DefaultFitOptions()
	opts.Opt.MaxIter = 4
	opts.SkipHyperUncertainty = true

	opts.SolverPartitions = 1
	seq, err := Fit(ds.Model, prior, ds.Theta0, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.SolverPartitions = 3
	par, err := Fit(ds.Model, prior, ds.Theta0, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Theta {
		if math.Abs(seq.Theta[i]-par.Theta[i]) > 1e-6 {
			t.Fatalf("theta[%d]: sequential %v vs parallel %v", i, seq.Theta[i], par.Theta[i])
		}
	}
	if math.Abs(seq.Opt.F-par.Opt.F) > 1e-6*(1+math.Abs(seq.Opt.F)) {
		t.Fatalf("objective at the mode: %v vs %v", seq.Opt.F, par.Opt.F)
	}
	for i := range seq.LatentVar {
		if math.Abs(seq.LatentVar[i]-par.LatentVar[i]) > 1e-8*(1+seq.LatentVar[i]) {
			t.Fatalf("latent variance %d: %v vs %v", i, seq.LatentVar[i], par.LatentVar[i])
		}
	}
}

// TestPosteriorParallelMatchesSequential: selected inversion through the
// parallel backend must reproduce the sequential latent posterior.
func TestPosteriorParallelMatchesSequential(t *testing.T) {
	ds := genPintime(t)
	prior := WeakPrior(ds.Theta0, 5)
	seqE := &BTAEvaluator{Model: ds.Model, Prior: prior, Partitions: 1}
	parE := &BTAEvaluator{Model: ds.Model, Prior: prior, Partitions: 3}
	muS, vaS, err := seqE.Posterior(ds.Theta0)
	if err != nil {
		t.Fatal(err)
	}
	muP, vaP, err := parE.Posterior(ds.Theta0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range muS {
		if math.Abs(muS[i]-muP[i]) > 1e-9*(1+math.Abs(muS[i])) {
			t.Fatalf("μ[%d]: %v vs %v", i, muS[i], muP[i])
		}
		if math.Abs(vaS[i]-vaP[i]) > 1e-9*(1+vaS[i]) {
			t.Fatalf("var[%d]: %v vs %v", i, vaS[i], vaP[i])
		}
	}
}

// TestModeSolverBackends: both widths factorize the same Q_c.
func TestModeSolverBackends(t *testing.T) {
	ds := genPintime(t)
	_, seq, err := ModeSolver(ds.Model, ds.Theta0, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, par, err := ModeSolver(ds.Model, ds.Theta0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(seq.LogDet() - par.LogDet()); d > 1e-9*(1+math.Abs(seq.LogDet())) {
		t.Fatalf("mode factor log-determinants differ: %v vs %v", seq.LogDet(), par.LogDet())
	}
	rhs := make([]float64, seq.Dim())
	for i := range rhs {
		rhs[i] = math.Sin(float64(i))
	}
	got := append([]float64(nil), rhs...)
	par.Solve(got)
	seq.Solve(rhs)
	for i := range rhs {
		if math.Abs(rhs[i]-got[i]) > 1e-9*(1+math.Abs(rhs[i])) {
			t.Fatalf("mode solve[%d]: %v vs %v", i, got[i], rhs[i])
		}
	}
}
