package inla

import (
	"math"
	"testing"

	"github.com/dalia-hpc/dalia/internal/coreg"
	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/mesh"
	"github.com/dalia-hpc/dalia/internal/model"
	"github.com/dalia-hpc/dalia/internal/spde"
)

// TestDiffusionModelEndToEnd fits an INLA model whose latent prior is the
// non-separable diffusion family (model.STDiffusion) and checks the full
// pipeline: mapping construction, factorization, mode search, posterior.
func TestDiffusionModelEndToEnd(t *testing.T) {
	msh := mesh.Uniform(4, 4, 100, 100)
	nt := 3
	b := spde.NewBuilder(msh, nt)
	d := coreg.Dims{Nv: 1, Ns: b.Ns(), Nt: nt, Nr: 1}

	var pts []mesh.Point
	var tidx []int
	for tt := 0; tt < nt; tt++ {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				pts = append(pts, mesh.Point{X: 12.5 + 25*float64(i), Y: 12.5 + 25*float64(j)})
				tidx = append(tidx, tt)
			}
		}
	}
	cov := dense.New(len(pts), 1)
	for i := range pts {
		cov.Set(i, 0, 1)
	}
	obs := &model.Obs{Points: pts, TimeIdx: tidx, Covariates: cov, Y: [][]float64{make([]float64, len(pts))}}
	m, err := model.New(b, d, obs, model.WithSTKind(model.STDiffusion))
	if err != nil {
		t.Fatal(err)
	}
	if m.ST != model.STDiffusion {
		t.Fatal("option not applied")
	}

	// Synthetic observations: a smooth spatial bump plus noise.
	for i, p := range pts {
		obs.Y[0][i] = 1 + math.Exp(-((p.X-50)*(p.X-50)+(p.Y-50)*(p.Y-50))/800) + 0.1*math.Sin(float64(i))
	}

	l, err := coreg.NewLambda([]float64{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	th := &model.Theta{
		Process: []spde.Hyper{{RangeS: 40, RangeT: 2, Sigma: 1}},
		Lambda:  l,
		TauY:    []float64{4},
	}
	theta0 := m.EncodeTheta(th)
	prior := WeakPrior(theta0, 3)

	// Objective is finite and the pattern stays stable across θ values.
	parts, err := EvalFobj(m, prior, theta0, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(parts.F()) || math.IsInf(parts.F(), 0) {
		t.Fatalf("diffusion fobj = %v", parts.F())
	}
	shifted := append([]float64(nil), theta0...)
	for i := range shifted {
		shifted[i] += 0.2
	}
	if _, err := EvalFobj(m, prior, shifted, false); err != nil {
		t.Fatalf("pattern drift across θ for the diffusion model: %v", err)
	}

	// A short fit runs end to end with positive marginal variances.
	opts := DefaultFitOptions()
	opts.Opt.MaxIter = 4
	opts.SkipHyperUncertainty = true
	res, err := Fit(m, prior, theta0, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.LatentVar {
		if v <= 0 {
			t.Fatalf("latent variance[%d] = %v", i, v)
		}
	}
}
