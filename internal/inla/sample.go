package inla

import (
	"fmt"
	"math/rand"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/mesh"
	"github.com/dalia-hpc/dalia/internal/model"
)

// SamplePosterior draws n samples from the Gaussian approximation
// p_G(x|θ,y) of the latent posterior: with Q_c = L·Lᵀ and z ~ N(0,I),
// x = μ + L⁻ᵀz has precision Q_c. Samples are returned in the BTA
// ordering. For Poisson models the approximation is centered at the
// conditional mode (the standard INLA simplification).
//
// Posterior samples carry the full posterior *dependence* — unlike the
// marginal variances of the selected inversion — and power derived
// quantities such as exceedance probabilities over regulatory thresholds
// (the motivating use case of the paper's introduction).
func SamplePosterior(m *model.Model, theta []float64, n int, rng *rand.Rand) (mu []float64, samples [][]float64, err error) {
	t, err := m.DecodeTheta(theta)
	if err != nil {
		return nil, nil, err
	}
	var f *bta.Factor
	switch m.Lik {
	case model.LikPoisson:
		mode, err := m.ConditionalModePoisson(t, btaFactorizer(m))
		if err != nil {
			return nil, nil, err
		}
		qcB, err := m.QcFromCSR(mode.QcCSR)
		if err != nil {
			return nil, nil, err
		}
		if f, err = bta.Factorize(qcB); err != nil {
			return nil, nil, err
		}
		mu = mode.XPerm
	default:
		qc, err := m.Qc(t)
		if err != nil {
			return nil, nil, err
		}
		if f, err = bta.Factorize(qc); err != nil {
			return nil, nil, err
		}
		mu = m.CondRHS(t)
		f.Solve(mu)
	}

	dim := m.Dims.Total()
	samples = make([][]float64, n)
	for s := 0; s < n; s++ {
		z := make([]float64, dim)
		for i := range z {
			z[i] = rng.NormFloat64()
		}
		f.SolveLT(z)
		dense.Axpy(1, mu, z)
		samples[s] = z
	}
	return mu, samples, nil
}

// Exceedance estimates, for each prediction point, the posterior
// probability that response k's linear predictor exceeds the threshold —
// P(η_k(point) > threshold | y) — from posterior samples. For Gaussian
// models η is the response mean; for Poisson models it is the
// log-intensity.
func Exceedance(m *model.Model, theta []float64, samples [][]float64,
	pts []mesh.Point, timeIdx []int, cov *dense.Matrix, response int, threshold float64) ([]float64, error) {
	if response < 0 || response >= m.Dims.Nv {
		return nil, fmt.Errorf("inla: response %d outside [0,%d)", response, m.Dims.Nv)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("inla: exceedance needs at least one sample")
	}
	t, err := m.DecodeTheta(theta)
	if err != nil {
		return nil, err
	}
	count := make([]float64, len(pts))
	for _, s := range samples {
		pred, err := m.PredictMean(t, s, pts, timeIdx, cov)
		if err != nil {
			return nil, err
		}
		for i, v := range pred[response] {
			if v > threshold {
				count[i]++
			}
		}
	}
	for i := range count {
		count[i] /= float64(len(samples))
	}
	return count, nil
}
