package inla

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// OptOptions configures the quasi-Newton mode search (§III-2).
type OptOptions struct {
	MaxIter  int     // BFGS iteration cap
	GradStep float64 // central-difference step h (Eq. 10)
	GradTol  float64 // ‖∇F‖∞ convergence threshold
	StepTol  float64 // minimal line-search step before giving up
	// MaxEvalRetries bounds how often an undefined finite-difference
	// gradient (a stencil arm quarantined as +Inf/NaN) is retried with a
	// shrunk step before the search gives up with ErrGradientUndefined
	// (0 = fail on the first undefined gradient, the historical behavior).
	MaxEvalRetries int
	// RetryBackoff is the stencil-shrink factor of each retry (default 0.5):
	// a smaller h pulls the stencil arms back inside the feasible region.
	RetryBackoff float64
	// Ctx, when non-nil, lets a caller abort the search between iterations:
	// cancellation is observed at iteration boundaries only (a checkpoint
	// boundary — the iterate, gradient and inverse Hessian are consistent),
	// and the search returns the current iterate with ErrFitCanceled.
	Ctx context.Context
	// Checkpoint, when set, receives a consistent deep-copied snapshot of
	// the optimizer state every CheckpointEvery completed iterations (and on
	// a context abort). An error returned by the callback stops the search
	// — callers that treat persistence as best-effort absorb errors inside
	// the callback instead.
	Checkpoint func(*OptCheckpoint) error
	// CheckpointEvery is the iteration stride of the Checkpoint callback
	// (≤ 0 = every iteration).
	CheckpointEvery int
	// Resume, when set, restarts the search from a previously captured
	// checkpoint instead of theta0: the iterate, gradient, objective and
	// inverse Hessian are restored exactly, so the continuation performs the
	// same evaluations the uninterrupted run would have from that iteration
	// on. Iteration and evaluation counters continue from the checkpoint.
	Resume *OptCheckpoint
}

// DefaultOptOptions mirrors the tolerances R-INLA uses for its BFGS stage.
func DefaultOptOptions() OptOptions {
	return OptOptions{MaxIter: 60, GradStep: 1e-3, GradTol: 5e-3, StepTol: 1e-10,
		MaxEvalRetries: 2, RetryBackoff: 0.5}
}

// OptResult reports the outcome of the mode search.
type OptResult struct {
	Theta      []float64
	F          float64
	Iterations int
	FEvals     int
	Trace      []float64 // F value per iteration
	Converged  bool
}

// ErrLineSearchFailed signals that no decreasing step could be found; the
// current iterate is returned as the best available mode.
var ErrLineSearchFailed = errors.New("inla: line search failed to decrease the objective")

// ErrGradientUndefined signals that a finite-difference stencil touched
// infeasible points, leaving the gradient NaN/Inf; the current iterate is
// returned as the best available mode.
var ErrGradientUndefined = errors.New("inla: finite-difference gradient is undefined (stencil hit infeasible points)")

// ErrFitCanceled signals that the search's context was canceled; the search
// stopped at an iteration boundary and the current iterate is returned as
// the best available mode (a resumable checkpoint was emitted first when a
// Checkpoint callback is configured).
var ErrFitCanceled = errors.New("inla: fit canceled")

// finiteVec reports whether every component is finite.
func finiteVec(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// gradientPoints builds the 2d+1 evaluation points of the central
// difference scheme (the S1 batch): the center followed by θ ± h·e_i.
func gradientPoints(theta []float64, h float64) [][]float64 {
	d := len(theta)
	pts := make([][]float64, 2*d+1)
	for i := range pts {
		pts[i] = make([]float64, d)
	}
	fillGradientPoints(pts, theta, h)
	return pts
}

// fillGradientPoints refills a preallocated 2d+1-point stencil in place —
// the allocation-free twin of gradientPoints the BFGS loop uses.
func fillGradientPoints(pts [][]float64, theta []float64, h float64) {
	copy(pts[0], theta)
	for i := range theta {
		copy(pts[1+2*i], theta)
		pts[1+2*i][i] += h
		copy(pts[2+2*i], theta)
		pts[2+2*i][i] -= h
	}
}

// gradientFromBatch extracts (F(θ), ∇F(θ)) from batched values in
// gradientPoints order.
func gradientFromBatch(vals []float64, h float64) (float64, []float64) {
	g := make([]float64, (len(vals)-1)/2)
	return gradientFromBatchInto(g, vals, h), g
}

// gradientFromBatchInto is gradientFromBatch into a caller-owned gradient
// buffer, returning the center value.
func gradientFromBatchInto(g, vals []float64, h float64) float64 {
	for i := range g {
		g[i] = (vals[1+2*i] - vals[2+2*i]) / (2 * h)
	}
	return vals[0]
}

// bfgsState holds every per-iteration buffer of the mode search. The BFGS
// loop ran hot enough that rebuilding the direction, trial point and
// curvature vectors on each line-search step showed up next to the solver
// work itself; with the state allocated once, an iteration's bookkeeping
// (everything but the Evaluator calls and the trace append) is
// allocation-free (pinned by TestBFGSIterationAllocFree).
type bfgsState struct {
	x, p, xNew, s, yv, hy, g, gNew []float64
	pts                            [][]float64 // 2d+1 gradient stencil
	probe                          [][]float64 // 1-point line-search batch
}

func newBFGSState(theta0 []float64) *bfgsState {
	d := len(theta0)
	st := &bfgsState{
		x:    append([]float64(nil), theta0...),
		p:    make([]float64, d),
		xNew: make([]float64, d),
		s:    make([]float64, d),
		yv:   make([]float64, d),
		hy:   make([]float64, d),
		g:    make([]float64, d),
		gNew: make([]float64, d),
		pts:  make([][]float64, 2*d+1),
	}
	for i := range st.pts {
		st.pts[i] = make([]float64, d)
	}
	st.probe = [][]float64{st.xNew}
	return st
}

// evalGradient evaluates the central-difference gradient at x into g via
// the evaluator, shrinking the stencil step and retrying when an arm lands
// on an infeasible (quarantined) point, per the OptOptions retry policy.
// It returns the batched center value F(x), the number of evaluations
// spent, and whether the resulting gradient is finite.
func evalGradient(e Evaluator, st *bfgsState, x, g []float64, opt OptOptions) (f float64, nevals int, ok bool) {
	h := opt.GradStep
	backoff := opt.RetryBackoff
	if backoff <= 0 || backoff >= 1 {
		backoff = 0.5
	}
	for attempt := 0; ; attempt++ {
		fillGradientPoints(st.pts, x, h)
		vals := e.EvalBatch(st.pts)
		nevals += len(vals)
		f = gradientFromBatchInto(g, vals, h)
		if finiteVec(g) {
			return f, nevals, true
		}
		if attempt >= opt.MaxEvalRetries {
			return f, nevals, false
		}
		h *= backoff
	}
}

// searchPoint fills xNew = x + step·p.
func searchPoint(xNew, x, p []float64, step float64) {
	for i := range xNew {
		xNew[i] = x[i] + step*p[i]
	}
}

// setEye resets a square matrix to the identity in place.
func setEye(m *dense.Matrix) {
	m.Zero()
	for i := 0; i < m.Rows; i++ {
		m.Set(i, i, 1)
	}
}

// bfgsUpdate applies the inverse BFGS update (Nocedal & Wright Eq. 6.17)
// for the displacement s and gradient change yv, using hy as workspace.
// Degenerate curvature (sᵀy ≤ 0, up to roundoff) skips the update.
func bfgsUpdate(hInv *dense.Matrix, s, yv, hy []float64) {
	sy := dense.Dot(s, yv)
	if sy <= 1e-12 {
		return
	}
	rho := 1 / sy
	dense.Gemv(dense.NoTrans, 1, hInv, yv, 0, hy)
	yhy := dense.Dot(yv, hy)
	// H ← H − ρ(s·hyᵀ + hy·sᵀ) + ρ²(yᵀHy)s·sᵀ + ρ·s·sᵀ
	d := len(s)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			v := hInv.At(i, j)
			v -= rho * (s[i]*hy[j] + hy[i]*s[j])
			v += rho * (rho*yhy + 1) * s[i] * s[j]
			hInv.Set(i, j, v)
		}
	}
}

// snapshotOpt deep-copies the live optimizer state into a resumable
// checkpoint (the Checkpoint callback owns the copy outright).
func snapshotOpt(st *bfgsState, hInv *dense.Matrix, f float64, iter int, res *OptResult) *OptCheckpoint {
	return (&OptCheckpoint{
		Theta: st.x, Grad: st.g, F: f, HInv: hInv,
		Iter: iter, FEvals: res.FEvals, Trace: res.Trace,
	}).clone()
}

// Minimize runs BFGS on F(θ) = −fobj(θ) with gradients from parallel
// central differences evaluated through the Evaluator. All iteration state
// lives in buffers allocated once up front; the per-iteration cost is the
// Evaluator batches.
//
// With opt.Resume set the search continues from the checkpointed iterate
// instead of theta0; with opt.Checkpoint set a resumable snapshot is emitted
// every opt.CheckpointEvery completed iterations; with opt.Ctx set a
// cancellation aborts at the next iteration boundary with ErrFitCanceled.
func Minimize(e Evaluator, theta0 []float64, opt OptOptions) (*OptResult, error) {
	d := len(theta0)
	if opt.Resume != nil && len(opt.Resume.Theta) != d {
		return nil, fmt.Errorf("inla: resume checkpoint dimension %d, want %d", len(opt.Resume.Theta), d)
	}
	st := newBFGSState(theta0)
	hInv := dense.Eye(d) // inverse Hessian approximation
	ckEvery := opt.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = 1
	}

	finish := func(res *OptResult, f float64) *OptResult {
		res.Theta = append([]float64(nil), st.x...)
		res.F = f
		return res
	}

	var res *OptResult
	var f float64
	var gradOK bool
	startIter := 0
	if ck := opt.Resume; ck != nil {
		// Restore the interrupted search's exact state: from here on the
		// continuation evaluates the same points the uninterrupted run
		// would have.
		copy(st.x, ck.Theta)
		copy(st.g, ck.Grad)
		f = ck.F
		if ck.HInv != nil && ck.HInv.Rows == d && ck.HInv.Cols == d {
			for i := 0; i < d; i++ {
				for j := 0; j < d; j++ {
					hInv.Set(i, j, ck.HInv.At(i, j))
				}
			}
		}
		startIter = ck.Iter
		gradOK = finiteVec(st.g)
		res = &OptResult{FEvals: ck.FEvals, Iterations: ck.Iter,
			Trace: append([]float64(nil), ck.Trace...)}
	} else {
		var nevals int
		f, nevals, gradOK = evalGradient(e, st, st.x, st.g, opt)
		if math.IsInf(f, 1) {
			return nil, fmt.Errorf("inla: objective is infeasible at the initial point")
		}
		res = &OptResult{FEvals: nevals, Trace: []float64{f}}
	}

	gradientUndefined := func() error {
		if opt.MaxEvalRetries > 0 {
			return fmt.Errorf("%w (after %d step-backoff retries)", ErrGradientUndefined, opt.MaxEvalRetries)
		}
		return ErrGradientUndefined
	}

	for iter := startIter; iter < opt.MaxIter; iter++ {
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			// Iteration boundaries are checkpoint boundaries: emit a final
			// resumable snapshot, then abort with the current iterate.
			if opt.Checkpoint != nil {
				if cerr := opt.Checkpoint(snapshotOpt(st, hInv, f, iter, res)); cerr != nil {
					return finish(res, f), fmt.Errorf("%w; final checkpoint: %v", ErrFitCanceled, cerr)
				}
			}
			return finish(res, f), fmt.Errorf("%w: %v", ErrFitCanceled, opt.Ctx.Err())
		}
		res.Iterations = iter + 1
		if !gradOK || !finiteVec(st.g) {
			return finish(res, f), gradientUndefined()
		}
		if infNorm(st.g) < opt.GradTol {
			res.Converged = true
			break
		}
		// Search direction p = −H⁻¹·g.
		dense.Gemv(dense.NoTrans, -1, hInv, st.g, 0, st.p)
		if dense.Dot(st.p, st.g) >= 0 {
			// Not a descent direction (degenerate curvature update): reset.
			setEye(hInv)
			for i := range st.p {
				st.p[i] = -st.g[i]
			}
		}
		// Backtracking Armijo line search (st.probe aliases st.xNew, so the
		// width-1 batch needs no per-step slice construction).
		step := 1.0
		var fNew float64
		accepted := false
		for step >= opt.StepTol {
			searchPoint(st.xNew, st.x, st.p, step)
			fNew = e.EvalBatch(st.probe)[0]
			res.FEvals++
			if fNew < f+1e-4*step*dense.Dot(st.g, st.p) {
				accepted = true
				break
			}
			step *= 0.5
		}
		if !accepted {
			return finish(res, f), ErrLineSearchFailed
		}
		// New gradient (parallel batch). Prefer the batched center value
		// (identical point) for consistency.
		var nevals int
		fNew, nevals, gradOK = evalGradient(e, st, st.xNew, st.gNew, opt)
		res.FEvals += nevals

		for i := range st.s {
			st.s[i] = st.xNew[i] - st.x[i]
			st.yv[i] = st.gNew[i] - st.g[i]
		}
		bfgsUpdate(hInv, st.s, st.yv, st.hy)
		// Roll the iterate by swapping buffers; the probe batch must keep
		// aliasing the trial-point buffer.
		st.x, st.xNew = st.xNew, st.x
		st.g, st.gNew = st.gNew, st.g
		st.probe[0] = st.xNew
		f = fNew
		res.Trace = append(res.Trace, f)
		if opt.Checkpoint != nil && (iter+1)%ckEvery == 0 {
			if cerr := opt.Checkpoint(snapshotOpt(st, hInv, f, iter+1, res)); cerr != nil {
				return finish(res, f), fmt.Errorf("inla: optimizer checkpoint at iteration %d: %w", iter+1, cerr)
			}
		}
	}
	return finish(res, f), nil
}

func infNorm(v []float64) float64 {
	var mx float64
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// StencilPlanner is implemented by evaluators whose EvalBatch schedules
// against a core budget (BTAEvaluator): StencilPlan reports how a batch of
// the given width would spend the machine. The Hessian stage uses it to
// split its wide stencil at plan boundaries instead of leaving cores idle
// in the batch's tail.
type StencilPlanner interface {
	StencilPlan(width int) SharedPlan
}

// evalStencil evaluates a wide stencil batch, splitting it into
// plan-aligned sub-batches when the evaluator exposes its scheduling plan
// and the trailing partial chunk would otherwise idle cores: the full
// chunks keep every core on point-level parallelism, while the remainder
// runs as its own narrow batch whose per-batch plan routes the spare cores
// into parallel-in-time factorization partitions (bta.ParallelFactor).
func evalStencil(e Evaluator, pts [][]float64) []float64 {
	p, ok := e.(StencilPlanner)
	if !ok {
		return e.EvalBatch(pts)
	}
	width := len(pts)
	plan := p.StencilPlan(width)
	cores := plan.Cores
	if cores <= 1 || width <= cores {
		// Narrow batches already partition inside EvalBatch; nothing to split.
		return e.EvalBatch(pts)
	}
	rem := width % cores
	if rem == 0 {
		return e.EvalBatch(pts)
	}
	if tail := p.StencilPlan(rem); tail.Partitions <= 1 || tail.Partitions == plan.Partitions {
		// The tail gains nothing from its own batch: either it cannot absorb
		// the spare cores (shallow time dimension), or a pinned width makes
		// both chunks run identically — splitting would only serialize.
		return e.EvalBatch(pts)
	}
	cut := width - rem
	vals := e.EvalBatch(pts[:cut])
	return append(vals, e.EvalBatch(pts[cut:])...)
}

// hessianStencil builds the 2d² + 2d + 1 evaluation points of the
// second-order central-difference scheme at theta.
func hessianStencil(theta []float64, h float64) (pts [][]float64, offIdx [][2]int) {
	d := len(theta)
	shift := func(i, j int, si, sj float64) []float64 {
		p := append([]float64(nil), theta...)
		p[i] += si * h
		if j >= 0 {
			p[j] += sj * h
		}
		return p
	}
	pts = append(pts, append([]float64(nil), theta...))
	for i := 0; i < d; i++ {
		pts = append(pts, shift(i, -1, 1, 0), shift(i, -1, -1, 0))
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			offIdx = append(offIdx, [2]int{i, j})
			pts = append(pts,
				shift(i, j, 1, 1), shift(i, j, 1, -1),
				shift(i, j, -1, 1), shift(i, j, -1, -1))
		}
	}
	return pts, offIdx
}

// HessianAtMode estimates ∇²F(θ*) by second-order central differences
// (§III-3). The 2d² + 2d + 1 evaluations form one parallel batch, split at
// plan boundaries when the evaluator exposes its scheduling plan (so a
// small-d stencil's trailing chunk spends idle cores inside the
// factorizations instead of leaving them dark).
func HessianAtMode(e Evaluator, theta []float64, h float64) (*dense.Matrix, error) {
	d := len(theta)
	pts, offIdx := hessianStencil(theta, h)
	vals := evalStencil(e, pts)
	for _, v := range vals {
		if math.IsInf(v, 1) {
			return nil, fmt.Errorf("inla: Hessian stencil hit an infeasible point")
		}
	}
	hm := dense.New(d, d)
	f0 := vals[0]
	for i := 0; i < d; i++ {
		hm.Set(i, i, (vals[1+2*i]-2*f0+vals[2+2*i])/(h*h))
	}
	base := 1 + 2*d
	for k, ij := range offIdx {
		v := (vals[base+4*k] - vals[base+4*k+1] - vals[base+4*k+2] + vals[base+4*k+3]) / (4 * h * h)
		hm.Set(ij[0], ij[1], v)
		hm.Set(ij[1], ij[0], v)
	}
	return hm, nil
}
