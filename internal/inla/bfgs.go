package inla

import (
	"errors"
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// OptOptions configures the quasi-Newton mode search (§III-2).
type OptOptions struct {
	MaxIter  int     // BFGS iteration cap
	GradStep float64 // central-difference step h (Eq. 10)
	GradTol  float64 // ‖∇F‖∞ convergence threshold
	StepTol  float64 // minimal line-search step before giving up
}

// DefaultOptOptions mirrors the tolerances R-INLA uses for its BFGS stage.
func DefaultOptOptions() OptOptions {
	return OptOptions{MaxIter: 60, GradStep: 1e-3, GradTol: 5e-3, StepTol: 1e-10}
}

// OptResult reports the outcome of the mode search.
type OptResult struct {
	Theta      []float64
	F          float64
	Iterations int
	FEvals     int
	Trace      []float64 // F value per iteration
	Converged  bool
}

// ErrLineSearchFailed signals that no decreasing step could be found; the
// current iterate is returned as the best available mode.
var ErrLineSearchFailed = errors.New("inla: line search failed to decrease the objective")

// ErrGradientUndefined signals that a finite-difference stencil touched
// infeasible points, leaving the gradient NaN/Inf; the current iterate is
// returned as the best available mode.
var ErrGradientUndefined = errors.New("inla: finite-difference gradient is undefined (stencil hit infeasible points)")

// finiteVec reports whether every component is finite.
func finiteVec(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// gradientPoints builds the 2d+1 evaluation points of the central
// difference scheme (the S1 batch): the center followed by θ ± h·e_i.
func gradientPoints(theta []float64, h float64) [][]float64 {
	d := len(theta)
	pts := make([][]float64, 0, 2*d+1)
	pts = append(pts, append([]float64(nil), theta...))
	for i := 0; i < d; i++ {
		p := append([]float64(nil), theta...)
		p[i] += h
		pts = append(pts, p)
		m := append([]float64(nil), theta...)
		m[i] -= h
		pts = append(pts, m)
	}
	return pts
}

// gradientFromBatch extracts (F(θ), ∇F(θ)) from batched values in
// gradientPoints order.
func gradientFromBatch(vals []float64, h float64) (float64, []float64) {
	d := (len(vals) - 1) / 2
	g := make([]float64, d)
	for i := 0; i < d; i++ {
		g[i] = (vals[1+2*i] - vals[2+2*i]) / (2 * h)
	}
	return vals[0], g
}

// Minimize runs BFGS on F(θ) = −fobj(θ) with gradients from parallel
// central differences evaluated through the Evaluator.
func Minimize(e Evaluator, theta0 []float64, opt OptOptions) (*OptResult, error) {
	d := len(theta0)
	x := append([]float64(nil), theta0...)
	hInv := dense.Eye(d) // inverse Hessian approximation

	vals := e.EvalBatch(gradientPoints(x, opt.GradStep))
	f, g := gradientFromBatch(vals, opt.GradStep)
	if math.IsInf(f, 1) {
		return nil, fmt.Errorf("inla: objective is infeasible at the initial point")
	}
	res := &OptResult{FEvals: len(vals), Trace: []float64{f}}

	for iter := 0; iter < opt.MaxIter; iter++ {
		res.Iterations = iter + 1
		if !finiteVec(g) {
			res.Theta = x
			res.F = f
			return res, ErrGradientUndefined
		}
		if infNorm(g) < opt.GradTol {
			res.Converged = true
			break
		}
		// Search direction p = −H⁻¹·g.
		p := make([]float64, d)
		dense.Gemv(dense.NoTrans, -1, hInv, g, 0, p)
		if dense.Dot(p, g) >= 0 {
			// Not a descent direction (degenerate curvature update): reset.
			hInv = dense.Eye(d)
			for i := range p {
				p[i] = -g[i]
			}
		}
		// Backtracking Armijo line search.
		step := 1.0
		var xNew []float64
		var fNew float64
		accepted := false
		for step >= opt.StepTol {
			xNew = make([]float64, d)
			for i := range xNew {
				xNew[i] = x[i] + step*p[i]
			}
			fNew = e.EvalBatch([][]float64{xNew})[0]
			res.FEvals++
			if fNew < f+1e-4*step*dense.Dot(g, p) {
				accepted = true
				break
			}
			step *= 0.5
		}
		if !accepted {
			res.Theta = x
			res.F = f
			return res, ErrLineSearchFailed
		}
		// New gradient (parallel batch).
		vals = e.EvalBatch(gradientPoints(xNew, opt.GradStep))
		res.FEvals += len(vals)
		fCheck, gNew := gradientFromBatch(vals, opt.GradStep)
		// Prefer the batched center value (identical point) for consistency.
		fNew = fCheck

		// BFGS inverse update (Nocedal & Wright Eq. 6.17).
		s := make([]float64, d)
		yv := make([]float64, d)
		for i := range s {
			s[i] = xNew[i] - x[i]
			yv[i] = gNew[i] - g[i]
		}
		sy := dense.Dot(s, yv)
		if sy > 1e-12 {
			rho := 1 / sy
			hy := make([]float64, d)
			dense.Gemv(dense.NoTrans, 1, hInv, yv, 0, hy)
			yhy := dense.Dot(yv, hy)
			// H ← H − ρ(s·hyᵀ + hy·sᵀ) + ρ²(yᵀHy)s·sᵀ + ρ·s·sᵀ
			for i := 0; i < d; i++ {
				for j := 0; j < d; j++ {
					v := hInv.At(i, j)
					v -= rho * (s[i]*hy[j] + hy[i]*s[j])
					v += rho * (rho*yhy + 1) * s[i] * s[j]
					hInv.Set(i, j, v)
				}
			}
		}
		x, f, g = xNew, fNew, gNew
		res.Trace = append(res.Trace, f)
	}
	res.Theta = x
	res.F = f
	return res, nil
}

func infNorm(v []float64) float64 {
	var mx float64
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// HessianAtMode estimates ∇²F(θ*) by second-order central differences
// (§III-3); all 2d² + 2d + 1 evaluations form one parallel batch.
func HessianAtMode(e Evaluator, theta []float64, h float64) (*dense.Matrix, error) {
	d := len(theta)
	shift := func(i, j int, si, sj float64) []float64 {
		p := append([]float64(nil), theta...)
		p[i] += si * h
		if j >= 0 {
			p[j] += sj * h
		}
		return p
	}
	var pts [][]float64
	pts = append(pts, append([]float64(nil), theta...))
	for i := 0; i < d; i++ {
		pts = append(pts, shift(i, -1, 1, 0), shift(i, -1, -1, 0))
	}
	type od struct{ i, j int }
	var offIdx []od
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			offIdx = append(offIdx, od{i, j})
			pts = append(pts,
				shift(i, j, 1, 1), shift(i, j, 1, -1),
				shift(i, j, -1, 1), shift(i, j, -1, -1))
		}
	}
	vals := e.EvalBatch(pts)
	for _, v := range vals {
		if math.IsInf(v, 1) {
			return nil, fmt.Errorf("inla: Hessian stencil hit an infeasible point")
		}
	}
	hm := dense.New(d, d)
	f0 := vals[0]
	for i := 0; i < d; i++ {
		hm.Set(i, i, (vals[1+2*i]-2*f0+vals[2+2*i])/(h*h))
	}
	base := 1 + 2*d
	for k, ij := range offIdx {
		v := (vals[base+4*k] - vals[base+4*k+1] - vals[base+4*k+2] + vals[base+4*k+3]) / (4 * h * h)
		hm.Set(ij.i, ij.j, v)
		hm.Set(ij.j, ij.i, v)
	}
	return hm, nil
}
