package inla

import (
	"runtime"

	"github.com/dalia-hpc/dalia/internal/bta"
)

// SharedPlan is the shared-memory counterpart of the distributed Plan: how
// one evaluation batch spends the machine's cores across the nested
// parallelization layers. It generalizes MakePlan's fill-S1-first policy to
// goroutine scheduling: wide gradient/Hessian batches keep all cores on
// point-level parallelism (S1), while narrow batches — the line-search
// probes of the BFGS loop, posterior extraction, mode factorization —
// spend the spare cores inside each factorization as parallel-in-time
// partitions (S3 in shared-memory form, bta.ParallelFactor).
type SharedPlan struct {
	// Width is the batch width the plan was computed for.
	Width int
	// Cores is the core budget the plan distributes.
	Cores int
	// PointWorkers is the S1 width: concurrently evaluated θ-points.
	PointWorkers int
	// S2 splits each point's evaluation into the concurrent Q_p and Q_c
	// pipelines.
	S2 bool
	// Partitions is the within-factorization parallel-in-time width each
	// pipeline runs at (1 = sequential POBTAF).
	Partitions int
	// Recursion is the reduced-system nesting depth the factorizations run
	// at: at wide Partitions the 2P−2 reduced boundary system is itself
	// factorized by a nested partition gang instead of a sequential sweep
	// (bta.ReducedOptions.Depth). 0 = sequential reduced solve.
	Recursion int
	// PipelineReduced streams partitions' boundary contributions into the
	// reduced assembly as each interior elimination finishes, overlapping
	// the reduced phase with the interior-sweep tail.
	PipelineReduced bool
	// Precision is the per-stage factorization precision policy the batch's
	// solvers run at: bta.PrecMixed runs the interior elimination sweeps in
	// fp32 (packed f32 BLAS-3) while the reduced boundary system, log-det
	// accumulation and non-SPD recovery stay fp64, with fp64 iterative
	// refinement on solves. The zero value is pure fp64. PlanBatch leaves it
	// at fp64; the evaluator's override (BTAEvaluator.Precision /
	// FitOptions.Precision) stamps the requested policy onto every batch.
	Precision bta.Precision
}

// recursionWorthwhileWidth is the partition count from which the reduced
// system reaches bta.DefaultReducedCrossover blocks (2P−2 ≥ crossover), so
// the plan turns recursive nesting on.
const recursionWorthwhileWidth = bta.DefaultReducedCrossover/2 + 1

// maxUsefulPartitions is bta.MaxUsefulPartitions: the diminishing-returns
// bound on the parallel-in-time width (§V-B's strong-scaling knee).
func maxUsefulPartitions(n int) int { return bta.MaxUsefulPartitions(n) }

// PlanBatch computes the shared-memory layer assignment for one batch of
// width points on a budget of cores (0 = GOMAXPROCS) over a model with
// ntBlocks time steps. Policy, mirroring §V-D: fill S1 first — one worker
// per point up to the core budget; give each point's S2 pipelines their
// own core when the budget allows; spend whatever is left inside the
// factorizations as parallel-in-time partitions.
func PlanBatch(width, cores, ntBlocks int, s2 bool) SharedPlan {
	if cores <= 0 {
		cores = runtime.GOMAXPROCS(0)
	}
	if width < 1 {
		width = 1
	}
	pw := width
	if pw > cores {
		pw = cores
	}
	spare := cores / pw
	perPipeline := spare
	if s2 && spare >= 2 {
		perPipeline = spare / 2
	}
	parts := perPipeline
	if mx := maxUsefulPartitions(ntBlocks); parts > mx {
		parts = mx
	}
	if parts < 1 {
		parts = 1
	}
	plan := SharedPlan{
		Width:        width,
		Cores:        cores,
		PointWorkers: pw,
		S2:           s2,
		Partitions:   parts,
	}
	plan.applyReducedDefaults()
	return plan
}

// applyReducedDefaults sets the reduced-engine policy for the plan's
// partition width: wide gangs hit the §V-B reduced-system knee, so one
// level of recursive nesting and the pipelined handoff turn on once the
// reduced system is big enough for either to pay.
func (p *SharedPlan) applyReducedDefaults() {
	p.Recursion, p.PipelineReduced = 0, false
	if p.Partitions >= recursionWorthwhileWidth {
		p.Recursion, p.PipelineReduced = 1, true
	}
}
