package inla

import (
	"math"
	"testing"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// TestEvaluatorMixedMatchesFp64 drives the mixed per-stage policy through
// the shared-memory evaluator: the refined conditional-mean solve keeps the
// quadratic form at fp64 accuracy while the log-dets carry the fp32 sweep
// (~1e-5 relative), for both the sequential and the partitioned backends.
func TestEvaluatorMixedMatchesFp64(t *testing.T) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 8, Nr: 1,
		MeshNx: 3, MeshNy: 3,
		ObsPerStep: 10,
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	prior := WeakPrior(ds.Theta0, 5)
	pts := gradientPoints(ds.Theta0, 1e-3)
	ref := &BTAEvaluator{Model: ds.Model, Prior: prior}
	want := ref.EvalBatch(pts)
	for _, parts := range []int{1, 3} {
		e := &BTAEvaluator{Model: ds.Model, Prior: prior,
			Precision: bta.PrecMixed, Partitions: parts}
		got := e.EvalBatch(pts)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-3*(1+math.Abs(want[i])) {
				t.Fatalf("partitions=%d point %d: mixed F = %v, fp64 F = %v", parts, i, got[i], want[i])
			}
		}
	}
}

// TestEvaluatorMixedPosterior: the posterior stage under the mixed policy
// promotes the factor to full fp64 before selected inversion, so the latent
// variances match the fp64 path exactly and μ to refinement accuracy.
func TestEvaluatorMixedPosterior(t *testing.T) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 6, Nr: 1,
		MeshNx: 3, MeshNy: 3,
		ObsPerStep: 10,
		Seed:       17,
	})
	if err != nil {
		t.Fatal(err)
	}
	prior := WeakPrior(ds.Theta0, 5)
	ref := &BTAEvaluator{Model: ds.Model, Prior: prior}
	muWant, vaWant, err := ref.Posterior(ds.Theta0)
	if err != nil {
		t.Fatal(err)
	}
	e := &BTAEvaluator{Model: ds.Model, Prior: prior, Precision: bta.PrecMixed}
	mu, va, err := e.Posterior(ds.Theta0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range muWant {
		if math.Abs(mu[i]-muWant[i]) > 1e-8*(1+math.Abs(muWant[i])) {
			t.Fatalf("mu[%d]: mixed %v, fp64 %v", i, mu[i], muWant[i])
		}
		if math.Abs(va[i]-vaWant[i]) > 1e-10*(1+math.Abs(vaWant[i])) {
			t.Fatalf("var[%d]: mixed %v, fp64 %v (selinv runs promoted fp64)", i, va[i], vaWant[i])
		}
	}
}

// TestFitMixedPrecision runs a tiny end-to-end fit with the mixed policy
// through FitOptions — the wiring Fit → BTAEvaluator → bta backends.
func TestFitMixedPrecision(t *testing.T) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 4, Nr: 1,
		MeshNx: 3, MeshNy: 3,
		ObsPerStep: 10,
		Seed:       19,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultFitOptions()
	opts.Opt.MaxIter = 2
	opts.SkipHyperUncertainty = true
	opts.Precision = bta.PrecMixed
	res, err := Fit(ds.Model, WeakPrior(ds.Theta0, 5), ds.Theta0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mu) != ds.Model.Dims.Total() {
		t.Fatalf("posterior mean length %d, want %d", len(res.Mu), ds.Model.Dims.Total())
	}
	for _, v := range res.LatentVar {
		if !(v > 0) {
			t.Fatalf("non-positive latent variance %v", v)
		}
	}
}
