package inla

import (
	"math"
	"testing"

	"github.com/dalia-hpc/dalia/internal/bta"
	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/synth"
)

func TestMakePlanFillsS1First(t *testing.T) {
	// 31 evals (trivariate), 8 workers, no memory pressure: 8 S1 groups of 1.
	p := MakePlan(8, 31, 1<<20, 0, 16, 0, 0, 1, bta.PrecFloat64)
	if p.Groups != 8 {
		t.Fatalf("groups = %d, want 8", p.Groups)
	}
	if p.UseS2 {
		t.Fatal("size-1 groups cannot use S2")
	}
	// 62 workers: 31 groups of 2 → S2 on.
	p = MakePlan(62, 31, 1<<20, 0, 16, 0, 0, 1, bta.PrecFloat64)
	if p.Groups != 31 || !p.UseS2 {
		t.Fatalf("plan %+v, want 31 groups with S2", p)
	}
	// 124 workers: 31 groups of 4 → S2 + S3 of width 2.
	p = MakePlan(124, 31, 1<<20, 0, 16, 0, 0, 1, bta.PrecFloat64)
	if p.Groups != 31 || !p.UseS2 {
		t.Fatalf("plan %+v", p)
	}
}

func TestMakePlanMemoryCapForcesS3(t *testing.T) {
	// Matrix of 1 MiB with a 256 KiB cap: S3 width ≥ 4 before S1 widens.
	p := MakePlan(8, 31, 1<<20, 1<<18, 64, 0, 0, 1, bta.PrecFloat64)
	if p.P3Min != 4 {
		t.Fatalf("P3Min = %d, want 4", p.P3Min)
	}
	if p.Groups != 2 { // 8 workers / 4 = 2 groups
		t.Fatalf("groups = %d, want 2", p.Groups)
	}
}

// TestMakePlanHybridMemoryModel: with the BTA shape known the per-node
// working set includes the fill-chain storage of the partitioned
// elimination, so the memory-forced S3 width grows beyond the slice-only
// model; and when even the widest rank count cannot fit the cap the planner
// sheds streams before giving up (ranks traded against streams).
func TestMakePlanHybridMemoryModel(t *testing.T) {
	// Slice-only model: 1 MiB at a 256 KiB cap forces width 4.
	flat := MakePlan(16, 31, 1<<20, 1<<18, 64, 0, 0, 1, bta.PrecFloat64)
	if flat.P3Min != 4 {
		t.Fatalf("flat model P3Min = %d, want 4", flat.P3Min)
	}
	// Fill-chain-aware model (b=8, a=0: chains add b/(2b+a) = 50%).
	aware := MakePlan(16, 31, 1<<20, 1<<18, 64, 8, 0, 1, bta.PrecFloat64)
	if aware.P3Min <= flat.P3Min {
		t.Fatalf("fill-chain model must force a wider S3: %d vs flat %d", aware.P3Min, flat.P3Min)
	}
	// The same footprint with streams: the per-node working set cannot be
	// relaxed by streams (they share the node's memory), so P3Min stays put
	// while the requested stream width survives under no pressure...
	roomy := MakePlan(16, 31, 1<<20, 0, 64, 8, 0, 4, bta.PrecFloat64)
	if roomy.PartitionsPerRank != 4 {
		t.Fatalf("uncapped plan must keep the requested streams, got %d", roomy.PartitionsPerRank)
	}
	// ...but under a cap no rank width can absorb, streams are shed.
	// nt=64 bounds ranks at 33; make the per-stream scratch the binding
	// term with a tiny cap.
	tight := MakePlan(64, 31, 1<<20, 40<<10, 64, 16, 0, 8, bta.PrecFloat64)
	if tight.PartitionsPerRank >= 8 {
		t.Fatalf("capped plan must shed streams, kept %d", tight.PartitionsPerRank)
	}
}

func TestMakePlanClampsToPartitionability(t *testing.T) {
	// nt = 4 supports at most 3 partitions; a huge memory demand must clamp.
	p := MakePlan(16, 9, 1<<30, 1<<10, 4, 0, 0, 1, bta.PrecFloat64)
	if p.P3Min > 3 {
		t.Fatalf("P3Min = %d exceeds partitionability of nt=4", p.P3Min)
	}
}

func TestGroupOfContiguous(t *testing.T) {
	p := Plan{World: 7, Groups: 3, GroupSizes: []int{3, 2, 2}}
	want := []int{0, 0, 0, 1, 1, 2, 2}
	for r, g := range want {
		if p.GroupOf(r) != g {
			t.Fatalf("GroupOf(%d) = %d want %d", r, p.GroupOf(r), g)
		}
	}
}

func TestSpread(t *testing.T) {
	s := spread(10, 3)
	if s[0] != 4 || s[1] != 3 || s[2] != 3 {
		t.Fatalf("spread = %v", s)
	}
}

// distCase runs RunDistributed on a small dataset and cross-checks the
// gradient-batch objective values against the sequential evaluator.
func distCase(t *testing.T, world int, disableS2, disableS3 bool) {
	t.Helper()
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 6, Nr: 1,
		MeshNx: 3, MeshNy: 3,
		ObsPerStep: 10,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	prior := WeakPrior(ds.Theta0, 5)
	rep, err := RunDistributed(ds.Model, prior, ds.Theta0, DistConfig{
		World:      world,
		Machine:    comm.DefaultMachine(),
		Iterations: 1,
		DisableS2:  disableS2,
		DisableS3:  disableS3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Fatal("makespan must be positive")
	}
	if len(rep.FTrace) != 1 {
		t.Fatalf("trace length %d", len(rep.FTrace))
	}
	// The distributed center-point objective must match the sequential one.
	e := &BTAEvaluator{Model: ds.Model, Prior: prior}
	want := e.EvalBatch([][]float64{ds.Theta0})[0]
	if math.Abs(rep.FTrace[0]-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("world=%d: distributed F = %v, sequential F = %v", world, rep.FTrace[0], want)
	}
}

func TestRunDistributedSingleRank(t *testing.T) { distCase(t, 1, false, false) }

// hybridCase runs RunDistributed with the two-level (ranks × partitions)
// S3 topology and cross-checks the gradient-batch objective against the
// sequential evaluator, exactly like distCase.
func hybridCase(t *testing.T, world, perRank int) {
	t.Helper()
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 8, Nr: 1,
		MeshNx: 3, MeshNy: 3,
		ObsPerStep: 10,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	prior := WeakPrior(ds.Theta0, 5)
	rep, err := RunDistributed(ds.Model, prior, ds.Theta0, DistConfig{
		World:             world,
		Machine:           comm.DefaultMachine(),
		Iterations:        1,
		PartitionsPerRank: perRank,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan.PartitionsPerRank != perRank {
		t.Fatalf("plan per-rank width %d, want %d", rep.Plan.PartitionsPerRank, perRank)
	}
	e := &BTAEvaluator{Model: ds.Model, Prior: prior}
	want := e.EvalBatch([][]float64{ds.Theta0})[0]
	if math.Abs(rep.FTrace[0]-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("world=%d q=%d: distributed F = %v, sequential F = %v", world, perRank, rep.FTrace[0], want)
	}
}

func TestRunDistributedHybrid2x2(t *testing.T) { hybridCase(t, 2, 2) }

func TestRunDistributedHybrid4x3(t *testing.T) { hybridCase(t, 4, 3) }

func TestRunDistributedHybrid1x4(t *testing.T) { hybridCase(t, 1, 4) }

// TestRunDistributedHybridFlatBitForBit pins the acceptance criterion: the
// two-level driver at PartitionsPerRank = 1 must reproduce the flat
// configuration (the zero-value DistConfig) bit for bit — same θ trace,
// same objective values.
func TestRunDistributedHybridFlatBitForBit(t *testing.T) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 6, Nr: 1,
		MeshNx: 3, MeshNy: 3,
		ObsPerStep: 10,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	prior := WeakPrior(ds.Theta0, 5)
	run := func(perRank int) *DistReport {
		rep, err := RunDistributed(ds.Model, prior, ds.Theta0, DistConfig{
			World: 4, Machine: comm.DefaultMachine(), Iterations: 2,
			PartitionsPerRank: perRank,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	flat := run(0)
	one := run(1)
	for i := range flat.FTrace {
		if one.FTrace[i] != flat.FTrace[i] {
			t.Fatalf("iteration %d: F %v (partitions=1) != %v (flat)", i, one.FTrace[i], flat.FTrace[i])
		}
	}
	for i := range flat.Theta {
		if one.Theta[i] != flat.Theta[i] {
			t.Fatalf("theta[%d]: %v (partitions=1) != %v (flat)", i, one.Theta[i], flat.Theta[i])
		}
	}
}

// TestRunDistributedReducedEngine: the recursive/pipelined reduced-system
// knobs must flow through the driver and reproduce the sequential
// evaluator's objective — wide enough (6 ranks × 2 streams = 12 partitions
// with a lowered crossover) that rank 0's reduced factorization genuinely
// recurses and streams.
func TestRunDistributedReducedEngine(t *testing.T) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 26, Nr: 1,
		MeshNx: 3, MeshNy: 3,
		ObsPerStep: 10,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	prior := WeakPrior(ds.Theta0, 5)
	e := &BTAEvaluator{Model: ds.Model, Prior: prior}
	want := e.EvalBatch([][]float64{ds.Theta0})[0]
	for _, tc := range []struct {
		depth    int
		pipeline bool
	}{{0, true}, {1, false}, {2, true}} {
		rep, err := RunDistributed(ds.Model, prior, ds.Theta0, DistConfig{
			World: 6, Machine: comm.DefaultMachine(), Iterations: 1,
			PartitionsPerRank: 2,
			ReduceDepth:       tc.depth, ReduceCrossover: 4, PipelineReduced: tc.pipeline,
		})
		if err != nil {
			t.Fatalf("depth=%d pipe=%v: %v", tc.depth, tc.pipeline, err)
		}
		if rep.Plan.ReduceDepth != tc.depth || rep.Plan.PipelineReduced != tc.pipeline {
			t.Fatalf("plan does not record the reduced-engine knobs: %+v", rep.Plan)
		}
		if math.Abs(rep.FTrace[0]-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("depth=%d pipe=%v: distributed F = %v, sequential F = %v",
				tc.depth, tc.pipeline, rep.FTrace[0], want)
		}
	}
}

// TestMakePlanPerRank: the per-node stream width is recorded, defaulted,
// and clamped to what the time dimension can absorb.
func TestMakePlanPerRank(t *testing.T) {
	p := MakePlan(8, 31, 1<<20, 0, 16, 0, 0, 0, bta.PrecFloat64)
	if p.PartitionsPerRank != 1 {
		t.Fatalf("default per-rank width %d, want 1", p.PartitionsPerRank)
	}
	p = MakePlan(8, 31, 1<<20, 0, 64, 0, 0, 4, bta.PrecFloat64)
	if p.PartitionsPerRank != 4 {
		t.Fatalf("per-rank width %d, want 4", p.PartitionsPerRank)
	}
	// nt = 4 supports at most 3 partitions in total.
	p = MakePlan(8, 31, 1<<20, 0, 4, 0, 0, 16, bta.PrecFloat64)
	if p.PartitionsPerRank > 3 {
		t.Fatalf("per-rank width %d exceeds partitionability of nt=4", p.PartitionsPerRank)
	}
}

func TestRunDistributedS1Only(t *testing.T) { distCase(t, 3, true, true) }

func TestRunDistributedS1S2(t *testing.T) { distCase(t, 4, false, true) }

func TestRunDistributedS1S2S3(t *testing.T) { distCase(t, 8, false, false) }

func TestRunDistributedWideS3(t *testing.T) { distCase(t, 6, true, false) }

func TestRunDistributedScalingImproves(t *testing.T) {
	// More workers must reduce the virtual per-iteration time (S1 is
	// embarrassingly parallel).
	// Large enough that per-iteration work (~tens of ms) dominates timing
	// noise; the S1 speedup assertion is then stable.
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 8, Nr: 1,
		MeshNx: 8, MeshNy: 7,
		ObsPerStep: 30,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	prior := WeakPrior(ds.Theta0, 5)
	run := func(world int) float64 {
		rep, err := RunDistributed(ds.Model, prior, ds.Theta0, DistConfig{
			World: world, Machine: comm.DefaultMachine(), Iterations: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.PerIter
	}
	t1 := run(1)
	t9 := run(9) // nfeval = 9 for the univariate model: S1 saturation width
	if t9 >= t1 {
		t.Fatalf("9 workers (%v s) not faster than 1 (%v s)", t9, t1)
	}
	// With 9 embarrassingly parallel evals the speedup should be material.
	if t1/t9 < 2 {
		t.Fatalf("speedup %v too small for S1 width 9", t1/t9)
	}
}

// TestPlanStreamLayoutSpreads pins the SpreadStreams planner policy: when
// the time dimension cannot absorb the uniform ranks × PartitionsPerRank
// grid, the layout spreads the widest partitionable total unevenly across
// the ranks instead of shedding a stream from every rank.
func TestPlanStreamLayoutSpreads(t *testing.T) {
	// nt=10 absorbs at most 6 partitions; 4 ranks × 2 streams would need 8.
	p := Plan{GroupSizes: []int{4}, PartitionsPerRank: 2}
	got := p.StreamLayout(10)
	want := []int{2, 2, 1, 1}
	if len(got) != len(want) {
		t.Fatalf("layout %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("layout %v, want %v", got, want)
		}
	}
	if w := p.SolverWidthAt(10); w != 6 {
		t.Fatalf("solver width %d, want 6 (the old uniform clamp kept only 4)", w)
	}
	// A grid the time dimension absorbs stays uniform.
	got = Plan{GroupSizes: []int{4}, PartitionsPerRank: 2}.StreamLayout(16)
	for _, q := range got {
		if q != 2 {
			t.Fatalf("uniform layout %v, want [2 2 2 2]", got)
		}
	}
}

// TestMakePlanPrecision: a requested mixed policy is granted where the
// solver width leaves interior sweeps to accelerate, and degenerates to
// pure fp64 (recorded on the plan) at solver width 1.
func TestMakePlanPrecision(t *testing.T) {
	p := MakePlan(8, 31, 1<<20, 0, 16, 0, 0, 2, bta.PrecMixed)
	if p.Precision != bta.PrecMixed {
		t.Fatalf("width-%d plan must grant the mixed request, got %v", p.SolverWidthAt(16), p.Precision)
	}
	p = MakePlan(8, 31, 1<<20, 0, 16, 0, 0, 1, bta.PrecMixed)
	if p.Precision != bta.PrecFloat64 {
		t.Fatalf("width-1 plan has no interior sweeps; policy must degenerate to fp64, got %v", p.Precision)
	}
	p = MakePlan(8, 31, 1<<20, 0, 16, 0, 0, 2, bta.PrecFloat64)
	if p.Precision != bta.PrecFloat64 {
		t.Fatalf("fp64 request must stay fp64, got %v", p.Precision)
	}
}

// TestRunDistributedSpreadStreams drives the unequal stream layout end to
// end: 12 workers over 9 evals leave S1 groups of 2 ranks, whose 2 ranks ×
// 4 streams exceed what nt=10 absorbs — the evaluation runs the [3,3]
// spread layout and must still reproduce the sequential objective.
func TestRunDistributedSpreadStreams(t *testing.T) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 10, Nr: 1,
		MeshNx: 3, MeshNy: 3,
		ObsPerStep: 10,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	prior := WeakPrior(ds.Theta0, 5)
	rep, err := RunDistributed(ds.Model, prior, ds.Theta0, DistConfig{
		World:             12,
		Machine:           comm.DefaultMachine(),
		Iterations:        1,
		PartitionsPerRank: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := &BTAEvaluator{Model: ds.Model, Prior: prior}
	want := e.EvalBatch([][]float64{ds.Theta0})[0]
	if math.Abs(rep.FTrace[0]-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("spread layout: distributed F = %v, sequential F = %v", rep.FTrace[0], want)
	}
}

// TestRunDistributedMixedPrecision runs the full distributed driver under
// the mixed per-stage policy: fp32 interior sweeps, fp64 reduced system,
// and the refined conditional-mean solve. The objective carries the fp32
// log-det accumulation (~1e-5 relative), so the cross-check tolerance is
// wider than the fp64 one.
func TestRunDistributedMixedPrecision(t *testing.T) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 8, Nr: 1,
		MeshNx: 3, MeshNy: 3,
		ObsPerStep: 10,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	prior := WeakPrior(ds.Theta0, 5)
	rep, err := RunDistributed(ds.Model, prior, ds.Theta0, DistConfig{
		World:             4,
		Machine:           comm.DefaultMachine(),
		Iterations:        1,
		PartitionsPerRank: 2,
		Precision:         bta.PrecMixed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan.Precision != bta.PrecMixed {
		t.Fatalf("plan must record the granted mixed policy, got %v", rep.Plan.Precision)
	}
	e := &BTAEvaluator{Model: ds.Model, Prior: prior}
	want := e.EvalBatch([][]float64{ds.Theta0})[0]
	if math.Abs(rep.FTrace[0]-want) > 1e-3*(1+math.Abs(want)) {
		t.Fatalf("mixed: distributed F = %v, sequential fp64 F = %v", rep.FTrace[0], want)
	}
}
