package inla

import (
	"testing"

	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// planEvaluator wraps the analytic quadratic evaluator with a synthetic
// scheduling plan (cores × time blocks) and records every batch width it
// receives, so the Hessian stage's plan-aligned splitting is observable.
type planEvaluator struct {
	quadEvaluator
	cores, nt int
	pinned    int // pinned parallel-in-time width (0 = plan per batch)
	widths    []int
}

func (e *planEvaluator) StencilPlan(width int) SharedPlan {
	plan := PlanBatch(width, e.cores, e.nt, false)
	if e.pinned > 0 {
		plan.Partitions = e.pinned
	}
	return plan
}

func (e *planEvaluator) EvalBatch(points [][]float64) []float64 {
	e.widths = append(e.widths, len(points))
	return e.quadEvaluator.EvalBatch(points)
}

func quadProblem(d int) (*dense.Matrix, []float64) {
	q := dense.New(d, d)
	for i := 0; i < d; i++ {
		q.Set(i, i, float64(2+i))
		if i > 0 {
			q.Set(i, i-1, 0.5)
			q.Set(i-1, i, 0.5)
		}
	}
	c := make([]float64, d)
	for i := range c {
		c[i] = 0.3 * float64(i+1)
	}
	return q, c
}

// TestHessianStencilSplitsAtPlanBoundary: a small-d stencil on a wide
// machine is split into full-core chunks plus a narrow tail whose plan
// routes the spare cores into factorization partitions — and the split
// batches produce the exact same Hessian as the single wide batch (same
// points, same per-point arithmetic).
func TestHessianStencilSplitsAtPlanBoundary(t *testing.T) {
	q, c := quadProblem(3) // d=3: 1 + 2d + 2d(d−1) = 19 stencil points
	const h = 1e-3

	// Reference: plain Evaluator, one batch of 19.
	ref := &quadEvaluator{q: q, c: c}
	want, err := HessianAtMode(ref, c, h)
	if err != nil {
		t.Fatal(err)
	}

	// Planner with 8 cores and a deep time dimension: 19 = 2×8 + 3, and the
	// width-3 tail plan carries partitions > 1 → split into [16, 3].
	pe := &planEvaluator{quadEvaluator: quadEvaluator{q: q, c: c}, cores: 8, nt: 64}
	got, err := HessianAtMode(pe, c, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(pe.widths) != 2 || pe.widths[0] != 16 || pe.widths[1] != 3 {
		t.Fatalf("batch widths %v, want [16 3]", pe.widths)
	}
	if !got.Equal(want, 0) {
		t.Fatal("split stencil changed the Hessian")
	}
	// The estimate is still the quadratic's exact Hessian.
	if !got.Equal(q, 1e-5) {
		t.Fatal("Hessian estimate off")
	}
}

// TestHessianStencilNoSplit: no split when the batch already fits the core
// budget, when the tail divides evenly, or when the time dimension is too
// shallow for the tail to absorb spare cores.
func TestHessianStencilNoSplit(t *testing.T) {
	q, c := quadProblem(3)
	const h = 1e-3

	// Width 19 ≤ 32 cores: a single batch (EvalBatch partitions internally).
	pe := &planEvaluator{quadEvaluator: quadEvaluator{q: q, c: c}, cores: 32, nt: 64}
	if _, err := HessianAtMode(pe, c, h); err != nil {
		t.Fatal(err)
	}
	if len(pe.widths) != 1 || pe.widths[0] != 19 {
		t.Fatalf("batch widths %v, want [19]", pe.widths)
	}

	// d=2: width 9 over 3 cores divides evenly — nothing to gain from a
	// split.
	q2, c2 := quadProblem(2)
	pe = &planEvaluator{quadEvaluator: quadEvaluator{q: q2, c: c2}, cores: 3, nt: 64}
	if _, err := HessianAtMode(pe, c2, h); err != nil {
		t.Fatal(err)
	}
	if len(pe.widths) != 1 || pe.widths[0] != 9 {
		t.Fatalf("batch widths %v, want [9]", pe.widths)
	}

	// Shallow time dimension: the tail plan cannot partition, keep one batch.
	pe = &planEvaluator{quadEvaluator: quadEvaluator{q: q, c: c}, cores: 8, nt: 4}
	if _, err := HessianAtMode(pe, c, h); err != nil {
		t.Fatal(err)
	}
	if len(pe.widths) != 1 {
		t.Fatalf("batch widths %v, want one batch", pe.widths)
	}

	// Pinned width: both chunks would run at the identical partition count,
	// so splitting would only serialize — keep one batch.
	pe = &planEvaluator{quadEvaluator: quadEvaluator{q: q, c: c}, cores: 8, nt: 64, pinned: 2}
	if _, err := HessianAtMode(pe, c, h); err != nil {
		t.Fatal(err)
	}
	if len(pe.widths) != 1 {
		t.Fatalf("batch widths %v, want one batch under a pinned width", pe.widths)
	}
}

// TestBTAEvaluatorStencilPlan: the evaluator's plan hook matches PlanBatch
// and honors a pinned Partitions knob, and the Hessian stage sees it
// through the Evaluator interface.
func TestBTAEvaluatorStencilPlan(t *testing.T) {
	ds, err := synth.Generate(synth.GenConfig{
		Nv: 1, Nt: 32, Nr: 1,
		MeshNx: 3, MeshNy: 3,
		ObsPerStep: 8,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := &BTAEvaluator{Model: ds.Model, Prior: WeakPrior(ds.Theta0, 5), Workers: 8}
	plan := e.StencilPlan(3)
	wantParts := PlanBatch(3, 8, ds.Model.Dims.Nt, false).Partitions
	if plan.Cores != 8 || plan.Partitions != wantParts {
		t.Fatalf("plan %+v, want cores 8 partitions %d", plan, wantParts)
	}
	e.Partitions = 2
	if p := e.StencilPlan(3); p.Partitions != 2 {
		t.Fatalf("pinned partitions not honored: %+v", p)
	}
	var iface Evaluator = e
	if _, ok := iface.(StencilPlanner); !ok {
		t.Fatal("BTAEvaluator must implement StencilPlanner through Evaluator")
	}
}
