package bta

import (
	"fmt"
	"sort"
)

// Partition is a contiguous inclusive range [Lo, Hi] of diagonal-block
// indices owned by one rank of the time-domain decomposition (§IV-C).
type Partition struct {
	Lo, Hi int
}

// Size returns the number of blocks in the partition.
func (p Partition) Size() int { return p.Hi - p.Lo + 1 }

// PartitionBlocks splits n diagonal blocks across p ranks. The load-balance
// factor lb ≥ 1 assigns the first partition lb× the blocks of the others,
// compensating for the cheaper one-sided factorization it runs (§V-C: the
// nested-dissection scheme makes non-first partitions run a costlier
// two-sided elimination). lb = 1 gives an even split.
//
// Constraints: p ≥ 1, and middle partitions need at least 2 blocks (their
// two boundary blocks), so n ≥ 2p−2 is required for p ≥ 2.
func PartitionBlocks(n, p int, lb float64) ([]Partition, error) {
	if p < 1 {
		return nil, fmt.Errorf("bta: partition count %d < 1", p)
	}
	if p == 1 {
		return []Partition{{0, n - 1}}, nil
	}
	if lb < 1 {
		return nil, fmt.Errorf("bta: load balance factor %v < 1", lb)
	}
	minNeeded := 1 + 2*(p-2) + 1
	if p == 2 {
		minNeeded = 2
	}
	if n < minNeeded {
		return nil, fmt.Errorf("bta: %d blocks cannot be split over %d partitions (need ≥ %d)", n, p, minNeeded)
	}
	// Target sizes: s0 = lb·x, others x, with s0 + (p−1)·x = n.
	x := float64(n) / (lb + float64(p-1))
	s0 := int(lb*x + 0.5)
	if s0 < 1 {
		s0 = 1
	}
	// Remaining blocks split as evenly as possible with middle minimum 2.
	rest := n - s0
	minRest := 2*(p-2) + 1
	if p == 2 {
		minRest = 1
	}
	if rest < minRest {
		s0 = n - minRest
		rest = minRest
	}
	sizes := make([]int, p)
	sizes[0] = s0
	base := rest / (p - 1)
	extra := rest % (p - 1)
	for i := 1; i < p; i++ {
		sizes[i] = base
		if i <= extra {
			sizes[i]++
		}
	}
	// Enforce middle minimum of 2 by stealing from the largest partitions.
	for i := 1; i < p-1; i++ {
		for sizes[i] < 2 {
			donor := maxIdx(sizes, i)
			if sizes[donor] <= 2 {
				return nil, fmt.Errorf("bta: cannot satisfy middle-partition minimum with n=%d p=%d lb=%v", n, p, lb)
			}
			sizes[donor]--
			sizes[i]++
		}
	}
	if sizes[p-1] < 1 {
		return nil, fmt.Errorf("bta: last partition empty with n=%d p=%d lb=%v", n, p, lb)
	}
	parts := make([]Partition, p)
	lo := 0
	for i, s := range sizes {
		parts[i] = Partition{Lo: lo, Hi: lo + s - 1}
		lo += s
	}
	return parts, nil
}

// HybridPartition splits n diagonal blocks across the nodes of the hybrid
// two-level topology, applying the §V-C load-balance factor per level.
// perNode[i] is node i's stream count (owned partitions, which the node
// sweeps concurrently); stream counts may differ across nodes. The global
// partition list comes back in node order, node ranges contiguous.
//
// Balance model: every two-sided partition costs ~1 unit per block while
// the global-first partition (one-sided elimination, no top-boundary
// updates) costs ~1/lb, so its target size is lb× the others — exactly
// PartitionBlocks' policy, applied here at both levels. Because a node's
// streams run concurrently, its makespan is the largest of its partitions'
// costs; giving every two-sided partition the same target size x (and the
// first lb·x) therefore equalizes per-node makespans even when stream
// counts differ — node block shares follow the stream counts, they are not
// the naive n/nodes split.
//
// All-flat layouts (every perNode[i] == 1) reproduce PartitionBlocks
// exactly, bit for bit. Infeasible load-balanced splits degrade to lb = 1
// before failing.
func HybridPartition(n int, perNode []int, lb float64) ([]Partition, error) {
	if len(perNode) == 0 {
		return nil, fmt.Errorf("bta: hybrid partition with no nodes")
	}
	if lb < 1 {
		return nil, fmt.Errorf("bta: load balance factor %v < 1", lb)
	}
	p := 0
	flat := true
	for i, q := range perNode {
		if q < 1 {
			return nil, fmt.Errorf("bta: node %d stream count %d < 1", i, q)
		}
		p += q
		if q != 1 {
			flat = false
		}
	}
	if p == 1 {
		return []Partition{{0, n - 1}}, nil
	}
	if flat {
		// One stream per node: the two levels coincide; defer to the flat
		// splitter so the flat topology stays bit-for-bit (degrading to the
		// even split exactly where the flat callers' lb adjustment did).
		if parts, err := PartitionBlocks(n, p, lb); err == nil {
			return parts, nil
		}
		return PartitionBlocks(n, p, 1)
	}
	parts, err := hybridSplit(n, perNode, p, lb)
	if err != nil && lb > 1 {
		// Tiny block counts can break the load-balanced arithmetic while the
		// even split still fits (mirroring PartitionBlocks' callers).
		parts, err = hybridSplit(n, perNode, p, 1)
	}
	if err != nil {
		// Last resort: the flat splitter's stealing logic handles the
		// degenerate counts; regroup its partitions under the node layout.
		return PartitionBlocks(n, p, 1)
	}
	return parts, nil
}

func hybridSplit(n int, perNode []int, p int, lb float64) ([]Partition, error) {
	// Per-node targets: node 0 carries the one-sided partition (weight lb)
	// plus q₀−1 two-sided streams; other nodes weigh their stream count.
	nodes := len(perNode)
	weights := make([]float64, nodes)
	mins := make([]int, nodes)
	gFirst := 0
	for i, q := range perNode {
		weights[i] = float64(q)
		if i == 0 {
			weights[i] = lb + float64(q-1)
		}
		// Per-node minimum: 2 per globally-middle partition, 1 for the
		// global first/last.
		for j := 0; j < q; j++ {
			g := gFirst + j
			if g == 0 || g == p-1 {
				mins[i]++
			} else {
				mins[i] += 2
			}
		}
		gFirst += q
	}
	nodeSizes, err := splitWeighted(n, weights, mins)
	if err != nil {
		return nil, err
	}
	// Within each node: lb on the global-first partition, even elsewhere,
	// honoring the global first/last/middle minimums.
	parts := make([]Partition, 0, p)
	lo := 0
	g := 0
	for i, q := range perNode {
		w := make([]float64, q)
		m := make([]int, q)
		for j := 0; j < q; j++ {
			w[j] = 1
			if g+j == 0 {
				w[j] = lb
			}
			if g+j == 0 || g+j == p-1 {
				m[j] = 1
			} else {
				m[j] = 2
			}
		}
		sizes, err := splitWeighted(nodeSizes[i], w, m)
		if err != nil {
			return nil, err
		}
		for _, s := range sizes {
			parts = append(parts, Partition{Lo: lo, Hi: lo + s - 1})
			lo += s
		}
		g += q
	}
	return parts, nil
}

// splitWeighted splits n blocks into len(w) contiguous parts with sizes
// proportional to w, each at least mins[i]: floor the ideal shares, hand the
// remainder out by largest fractional part, then enforce the minimums by
// stealing from the largest surplus.
func splitWeighted(n int, w []float64, mins []int) ([]int, error) {
	var tw float64
	minSum := 0
	for i := range w {
		tw += w[i]
		minSum += mins[i]
	}
	if minSum > n {
		return nil, fmt.Errorf("bta: %d blocks cannot satisfy per-partition minimums summing to %d", n, minSum)
	}
	sizes := make([]int, len(w))
	order := make([]int, len(w))
	fracs := make([]float64, len(w))
	rem := n
	for i := range w {
		ideal := float64(n) * w[i] / tw
		sizes[i] = int(ideal)
		fracs[i] = ideal - float64(sizes[i])
		rem -= sizes[i]
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return fracs[order[a]] > fracs[order[b]] })
	for k := 0; k < rem; k++ {
		sizes[order[k%len(order)]]++
	}
	for i := range sizes {
		for sizes[i] < mins[i] {
			donor, surplus := -1, 0
			for j := range sizes {
				if j != i && sizes[j]-mins[j] > surplus {
					donor, surplus = j, sizes[j]-mins[j]
				}
			}
			if donor < 0 {
				return nil, fmt.Errorf("bta: cannot satisfy partition minimums (n=%d)", n)
			}
			sizes[donor]--
			sizes[i]++
		}
	}
	return sizes, nil
}

// UniformStreams returns the perNode layout of nodes ranks each running
// perRank streams (the clean ranks × partitions grid).
func UniformStreams(ranks, perRank int) []int {
	if perRank < 1 {
		perRank = 1
	}
	out := make([]int, ranks)
	for i := range out {
		out[i] = perRank
	}
	return out
}

// SpreadStreams splits a total stream budget across ranks as evenly as
// possible (earlier ranks take the remainder) — a helper for building the
// unequal-stream-count layouts HybridPartition and NewLocalBTAHybrid
// accept when the time dimension cannot absorb a full ranks × perRank
// grid.
func SpreadStreams(ranks, total int) []int {
	if ranks < 1 {
		ranks = 1
	}
	if total < ranks {
		total = ranks
	}
	out := make([]int, ranks)
	base, extra := total/ranks, total%ranks
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}

func maxIdx(sizes []int, skip int) int {
	best, bi := -1, -1
	for i, s := range sizes {
		if i == skip {
			continue
		}
		if s > best {
			best, bi = s, i
		}
	}
	return bi
}

// boundaries returns the global indices of the partition's boundary blocks
// given its position: the first partition's bottom block, middle partitions'
// top and bottom blocks, the last partition's top block.
func boundaries(part Partition, rank, p int) []int {
	switch {
	case p == 1:
		return nil
	case rank == 0:
		return []int{part.Hi}
	case rank == p-1:
		return []int{part.Lo}
	default:
		return []int{part.Lo, part.Hi}
	}
}

// interiors returns the global indices of the partition's interior
// (rank-locally eliminated) blocks, in elimination order.
func interiors(part Partition, rank, p int) []int {
	var lo, hi int
	switch {
	case p == 1:
		lo, hi = part.Lo, part.Hi
	case rank == 0:
		lo, hi = part.Lo, part.Hi-1
	case rank == p-1:
		lo, hi = part.Lo+1, part.Hi
	default:
		lo, hi = part.Lo+1, part.Hi-1
	}
	out := make([]int, 0, hi-lo+1)
	for k := lo; k <= hi; k++ {
		out = append(out, k)
	}
	return out
}

// reducedIndexTop and reducedIndexBot give the reduced-system block index of
// a rank's top/bottom boundary. Reduced ordering: [hi₀, lo₁, hi₁, lo₂, hi₂,
// …, lo_{P−1}], of size 2P−2.
func reducedIndexTop(rank int) int { return 2*rank - 1 }
func reducedIndexBot(rank int) int {
	if rank == 0 {
		return 0
	}
	return 2 * rank
}

// reducedSize returns the reduced system's block count for P partitions.
func reducedSize(p int) int { return 2*p - 2 }
