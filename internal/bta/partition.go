package bta

import "fmt"

// Partition is a contiguous inclusive range [Lo, Hi] of diagonal-block
// indices owned by one rank of the time-domain decomposition (§IV-C).
type Partition struct {
	Lo, Hi int
}

// Size returns the number of blocks in the partition.
func (p Partition) Size() int { return p.Hi - p.Lo + 1 }

// PartitionBlocks splits n diagonal blocks across p ranks. The load-balance
// factor lb ≥ 1 assigns the first partition lb× the blocks of the others,
// compensating for the cheaper one-sided factorization it runs (§V-C: the
// nested-dissection scheme makes non-first partitions run a costlier
// two-sided elimination). lb = 1 gives an even split.
//
// Constraints: p ≥ 1, and middle partitions need at least 2 blocks (their
// two boundary blocks), so n ≥ 2p−2 is required for p ≥ 2.
func PartitionBlocks(n, p int, lb float64) ([]Partition, error) {
	if p < 1 {
		return nil, fmt.Errorf("bta: partition count %d < 1", p)
	}
	if p == 1 {
		return []Partition{{0, n - 1}}, nil
	}
	if lb < 1 {
		return nil, fmt.Errorf("bta: load balance factor %v < 1", lb)
	}
	minNeeded := 1 + 2*(p-2) + 1
	if p == 2 {
		minNeeded = 2
	}
	if n < minNeeded {
		return nil, fmt.Errorf("bta: %d blocks cannot be split over %d partitions (need ≥ %d)", n, p, minNeeded)
	}
	// Target sizes: s0 = lb·x, others x, with s0 + (p−1)·x = n.
	x := float64(n) / (lb + float64(p-1))
	s0 := int(lb*x + 0.5)
	if s0 < 1 {
		s0 = 1
	}
	// Remaining blocks split as evenly as possible with middle minimum 2.
	rest := n - s0
	minRest := 2*(p-2) + 1
	if p == 2 {
		minRest = 1
	}
	if rest < minRest {
		s0 = n - minRest
		rest = minRest
	}
	sizes := make([]int, p)
	sizes[0] = s0
	base := rest / (p - 1)
	extra := rest % (p - 1)
	for i := 1; i < p; i++ {
		sizes[i] = base
		if i <= extra {
			sizes[i]++
		}
	}
	// Enforce middle minimum of 2 by stealing from the largest partitions.
	for i := 1; i < p-1; i++ {
		for sizes[i] < 2 {
			donor := maxIdx(sizes, i)
			if sizes[donor] <= 2 {
				return nil, fmt.Errorf("bta: cannot satisfy middle-partition minimum with n=%d p=%d lb=%v", n, p, lb)
			}
			sizes[donor]--
			sizes[i]++
		}
	}
	if sizes[p-1] < 1 {
		return nil, fmt.Errorf("bta: last partition empty with n=%d p=%d lb=%v", n, p, lb)
	}
	parts := make([]Partition, p)
	lo := 0
	for i, s := range sizes {
		parts[i] = Partition{Lo: lo, Hi: lo + s - 1}
		lo += s
	}
	return parts, nil
}

func maxIdx(sizes []int, skip int) int {
	best, bi := -1, -1
	for i, s := range sizes {
		if i == skip {
			continue
		}
		if s > best {
			best, bi = s, i
		}
	}
	return bi
}

// boundaries returns the global indices of the partition's boundary blocks
// given its position: the first partition's bottom block, middle partitions'
// top and bottom blocks, the last partition's top block.
func boundaries(part Partition, rank, p int) []int {
	switch {
	case p == 1:
		return nil
	case rank == 0:
		return []int{part.Hi}
	case rank == p-1:
		return []int{part.Lo}
	default:
		return []int{part.Lo, part.Hi}
	}
}

// interiors returns the global indices of the partition's interior
// (rank-locally eliminated) blocks, in elimination order.
func interiors(part Partition, rank, p int) []int {
	var lo, hi int
	switch {
	case p == 1:
		lo, hi = part.Lo, part.Hi
	case rank == 0:
		lo, hi = part.Lo, part.Hi-1
	case rank == p-1:
		lo, hi = part.Lo+1, part.Hi
	default:
		lo, hi = part.Lo+1, part.Hi-1
	}
	out := make([]int, 0, hi-lo+1)
	for k := lo; k <= hi; k++ {
		out = append(out, k)
	}
	return out
}

// reducedIndexTop and reducedIndexBot give the reduced-system block index of
// a rank's top/bottom boundary. Reduced ordering: [hi₀, lo₁, hi₁, lo₂, hi₂,
// …, lo_{P−1}], of size 2P−2.
func reducedIndexTop(rank int) int { return 2*rank - 1 }
func reducedIndexBot(rank int) int {
	if rank == 0 {
		return 0
	}
	return 2 * rank
}

// reducedSize returns the reduced system's block count for P partitions.
func reducedSize(p int) int { return 2*p - 2 }
