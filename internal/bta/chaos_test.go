package bta

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/dalia-hpc/dalia/internal/comm"
)

// A scheduled rank death mid-PPOBTAF must abort the evaluation cleanly on
// every survivor: a typed retryable error (no panic, no deadlock), scratch
// reclamation safe on the nil factor, and the run itself error-free so the
// driver can shrink the world and redo the factorization — which must then
// match the sequential reference.
func TestDistFactorizationAbortsCleanlyOnRankDeath(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const nt, b, a = 12, 3, 2
	g := randBTA(rng, nt, b, a)
	rhs := make([]float64, g.Dim())
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	seq, err := Factorize(g)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), rhs...)
	seq.Solve(want)

	parts, err := PartitionBlocks(nt, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	faults := make([]error, 3)
	got := make([]float64, g.Dim())
	plan := &comm.FaultPlan{Kill: map[int]int{1: 2}}
	st, runErr := comm.RunPlan(3, comm.DefaultMachine(), plan, func(c *comm.Comm) error {
		scr := &DistScratch{}
		local := LocalSliceNode(g, parts, c.Rank(), 1)
		f, ferr := PPOBTAFOpts(c, local, scr, DistOptions{})
		if ferr == nil {
			// The killed rank can fail a survivor only through communication;
			// a rank whose factorization never needed the dead peer fails at
			// the next protocol step instead. Force one.
			_, _, ferr = PPOBTAS(c, f, rhs[local.Part.Lo*b:(local.Part.Hi+1)*b], rhs[nt*b:])
		}
		mu.Lock()
		faults[c.Rank()] = ferr
		mu.Unlock()
		if ferr == nil {
			return nil // unreachable if the abort semantics hold; asserted below
		}
		// Clean abort: reclaiming against the nil factor must be a no-op.
		scr.Reclaim(nil)

		// Shrink-and-retry at the solver level: survivors redo the cycle over
		// the two-rank topology and must reproduce the sequential solve.
		nc := c.Shrink()
		if nc.Size() != 2 {
			t.Errorf("rank %d: shrunk world size %d, want 2", c.Rank(), nc.Size())
			return nil
		}
		parts2, perr := PartitionBlocks(nt, 2, 1)
		if perr != nil {
			return perr
		}
		local2 := LocalSliceNode(g, parts2, nc.Rank(), 1)
		f2, ferr2 := PPOBTAFOpts(nc, local2, scr, DistOptions{})
		if ferr2 != nil {
			return ferr2
		}
		span := local2.Part
		rhsLocal := append([]float64(nil), rhs[span.Lo*b:(span.Hi+1)*b]...)
		xLocal, xTip, serr := PPOBTAS(nc, f2, rhsLocal, rhs[nt*b:])
		if serr != nil {
			return serr
		}
		mu.Lock()
		copy(got[span.Lo*b:], xLocal)
		if nc.Rank() == 0 {
			copy(got[nt*b:], xTip)
		}
		mu.Unlock()
		scr.Reclaim(f2)
		return nil
	})
	if runErr != nil {
		t.Fatalf("run error: %v", runErr)
	}
	if len(st.Killed) != 1 || st.Killed[0] != 1 {
		t.Fatalf("Stats.Killed = %v, want [1]", st.Killed)
	}
	for _, r := range []int{0, 2} {
		if faults[r] == nil {
			t.Fatalf("rank %d completed the wounded protocol without an error", r)
		}
		if !comm.Retryable(faults[r]) {
			t.Fatalf("rank %d: abort error not retryable: %v", r, faults[r])
		}
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("retried solve[%d] = %v, sequential = %v", i, got[i], want[i])
		}
	}
}
