package bta

import (
	"fmt"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// Precision selects the per-stage precision policy of a BTA factorization.
//
// The policy follows the paper's GPU mixed-precision argument translated to
// the CPU SIMD budget: the interior elimination sweeps — the O(n·b³) bulk of
// the factorization — may run on the fp32 packed engine (twice the AVX2
// lanes per FMA), while everything accuracy-critical stays fp64: the reduced
// boundary system, the log-determinant accumulation, and non-SPD recovery
// (a partition whose fp32 Cholesky loses positive definiteness is re-swept
// in fp64 before the configuration is declared infeasible). Solves against a
// mixed factor recover fp64 accuracy through iterative refinement
// (fp64 residual correction); selected inversion and sampling promote the
// factor to a full fp64 refactorization instead.
type Precision int

const (
	// PrecFloat64 is the pure double-precision path (the zero value, so
	// existing callers are unchanged).
	PrecFloat64 Precision = iota
	// PrecMixed runs interior elimination sweeps in fp32 with fp64 residual
	// correction on solves.
	PrecMixed
)

// String returns the flag/JSON spelling of the precision mode.
func (p Precision) String() string {
	switch p {
	case PrecMixed:
		return "mixed"
	default:
		return "fp64"
	}
}

// ParsePrecision parses the flag/JSON spelling ("fp64" or "mixed"; "" means
// fp64).
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "fp64", "float64":
		return PrecFloat64, nil
	case "mixed", "fp32":
		return PrecMixed, nil
	}
	return PrecFloat64, fmt.Errorf("bta: unknown precision %q (want fp64 or mixed)", s)
}

// Refinement parameters of the fp64 residual correction on solves against a
// mixed-precision factor. One correction contracts the error by
// ρ ≈ κ(A)·eps32, so for the condition numbers the policy admits two rounds
// land well under the 1e-10 equivalence bar; the cap only binds on
// pathological systems.
const (
	// DefaultMaxRefine caps the fp64 residual-correction rounds per solve.
	DefaultMaxRefine = 4
	// refineTol stops the refinement once the correction is negligible:
	// ‖dx‖∞ ≤ refineTol·‖x‖∞.
	refineTol = 1e-12
)

// elimShadow32 is the preallocated fp32 shadow arena of one partition's
// interior elimination sweep: single-precision twins of the partition's
// Diag/Lower/Arrow slices, the fill-coupling chain, and the tip accumulator.
// The fp64 blocks stay pristine while the sweep runs on the shadow; on
// success the results are promoted back, on an fp32 Cholesky failure the
// sweep re-runs in fp64 on the untouched originals.
type elimShadow32 struct {
	diag  []*dense.Matrix32
	lower []*dense.Matrix32
	arrow []*dense.Matrix32 // nil when no arrowhead
	chain []*dense.Matrix32 // fill-coupling blocks (two-sided partitions)
	tip   *dense.Matrix32   // a×a Schur tip accumulator (nil when no arrowhead)

	gTops []*dense.Matrix32 // per-interior fill output record (reused backing)
}

// newElimShadow32 sizes a shadow for a partition of size blocks with nChain
// fill blocks (0 for one-sided partitions).
func newElimShadow32(size, nChain, b, a int) *elimShadow32 {
	sh := &elimShadow32{
		diag:  make([]*dense.Matrix32, size),
		gTops: make([]*dense.Matrix32, 0, size),
	}
	for i := range sh.diag {
		sh.diag[i] = dense.New32(b, b)
	}
	if size > 1 {
		sh.lower = make([]*dense.Matrix32, size-1)
		for i := range sh.lower {
			sh.lower[i] = dense.New32(b, b)
		}
	}
	if nChain > 0 {
		sh.chain = make([]*dense.Matrix32, nChain)
		for i := range sh.chain {
			sh.chain[i] = dense.New32(b, b)
		}
	}
	if a > 0 {
		sh.arrow = make([]*dense.Matrix32, size)
		for i := range sh.arrow {
			sh.arrow[i] = dense.New32(a, b)
		}
		sh.tip = dense.New32(a, a)
	}
	return sh
}

// fits reports whether the shadow covers a partition of the given shape.
func (sh *elimShadow32) fits(size, nChain, b, a int) bool {
	if sh == nil || len(sh.diag) != size || len(sh.chain) < nChain {
		return false
	}
	if sh.diag[0].Rows != b {
		return false
	}
	if a > 0 && (sh.tip == nil || sh.tip.Rows != a) {
		return false
	}
	return true
}

// run32 is the fp32 twin of partitionElim.run: it demotes the partition's
// blocks into the shadow arena, performs the whole elimination sweep in
// single precision on the fp32 packed engine, and only on success promotes
// the results back into the fp64 storage and appends the output block lists.
// The fp64 blocks are untouched until that promotion, and no fp64 fill
// blocks are drawn from NewBB before it, so a failed fp32 Cholesky leaves
// the partition exactly as run() expects to find it — the fp64 fallback
// sweep (non-SPD recovery stays double precision) starts clean and the
// recycled-chain accounting is identical either way.
func (pe *partitionElim) run32() error {
	sh := pe.Shadow
	hasArrow := pe.TipDelta != nil
	size := len(pe.Diag)

	for i := 0; i < size; i++ {
		sh.diag[i].FromFloat64(pe.Diag[i])
	}
	for i := range pe.Lower {
		sh.lower[i].FromFloat64(pe.Lower[i])
	}
	if hasArrow {
		for i := range pe.Arrow {
			sh.arrow[i].FromFloat64(pe.Arrow[i])
		}
		sh.tip.Zero()
	}

	used := 0
	var tCur *dense.Matrix32
	if pe.TwoSided && len(pe.Lower) > 0 {
		tCur = sh.chain[used]
		used++
		sh.lower[0].TransposeInto(tCur)
	}

	gTops := sh.gTops[:0]
	for _, k := range pe.Interiors {
		rel := k - pe.Base
		lk := sh.diag[rel]
		if err := dense.Potrf32(lk); err != nil {
			sh.gTops = gTops
			return fmt.Errorf("bta: %s %d interior block %d (fp32): %w", pe.Kind, pe.ID, k, err)
		}
		lk.ZeroUpper()

		var gNext, gTop, gArr *dense.Matrix32
		if rel < len(pe.Lower) {
			gNext = sh.lower[rel]
			dense.Trsm32(dense.Right, dense.Trans, lk, gNext)
		}
		if pe.TwoSided {
			gTop = tCur
			dense.Trsm32(dense.Right, dense.Trans, lk, gTop)
		}
		if hasArrow {
			gArr = sh.arrow[rel]
			dense.Trsm32(dense.Right, dense.Trans, lk, gArr)
		}
		gTops = append(gTops, gTop)

		if gNext != nil {
			dense.Syrk32(dense.NoTrans, -1, gNext, 1, sh.diag[rel+1])
			sh.diag[rel+1].MirrorLowerToUpper()
		}
		if pe.TwoSided && gTop != nil {
			dense.Syrk32(dense.NoTrans, -1, gTop, 1, sh.diag[0])
			sh.diag[0].MirrorLowerToUpper()
			if gNext != nil {
				tNext := sh.chain[used]
				used++
				dense.Gemm32(dense.NoTrans, dense.Trans, -1, gTop, gNext, 0, tNext)
				tCur = tNext
			} else {
				tCur = nil
			}
		}
		if hasArrow {
			if gNext != nil {
				dense.Gemm32(dense.NoTrans, dense.Trans, -1, gArr, gNext, 1, sh.arrow[rel+1])
			}
			if pe.TwoSided && gTop != nil {
				dense.Gemm32(dense.NoTrans, dense.Trans, -1, gArr, gTop, 1, sh.arrow[0])
			}
			dense.Syrk32(dense.NoTrans, -1, gArr, 1, sh.tip)
			sh.tip.MirrorLowerToUpper()
		}
	}
	sh.gTops = gTops

	// Success: promote the swept partition state back into the fp64 storage
	// and append the outputs. The fp64 NewBB draw pattern below (one block
	// per non-nil fill output plus the surviving fill) matches the fp64
	// sweep's draw count exactly, so chain recycling is unchanged.
	for i := 0; i < size; i++ {
		sh.diag[i].StoreFloat64(pe.Diag[i])
	}
	for i := range pe.Lower {
		sh.lower[i].StoreFloat64(pe.Lower[i])
	}
	if hasArrow {
		for i := range pe.Arrow {
			sh.arrow[i].StoreFloat64(pe.Arrow[i])
		}
		sh.tip.StoreFloat64(pe.TipDelta)
	}
	for i, k := range pe.Interiors {
		rel := k - pe.Base
		pe.L = append(pe.L, pe.Diag[rel])
		var gNext, gTop, gArr *dense.Matrix
		if rel < len(pe.Lower) {
			gNext = pe.Lower[rel]
		}
		if hasArrow {
			gArr = pe.Arrow[rel]
		}
		if g32 := gTops[i]; g32 != nil {
			gTop = pe.NewBB()
			g32.StoreFloat64(gTop)
		}
		pe.GNext = append(pe.GNext, gNext)
		pe.GTop = append(pe.GTop, gTop)
		pe.GArr = append(pe.GArr, gArr)
	}
	if tCur != nil {
		fill := pe.NewBB()
		tCur.StoreFloat64(fill)
		pe.Fill = fill
	} else {
		pe.Fill = nil
	}
	return nil
}
