package bta

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/dalia-hpc/dalia/internal/comm"
)

// TestQuickDistributedEqualsSequential is the randomized cross-check of the
// distributed solver family: for random BTA shapes, partition counts and
// load-balance factors, PPOBTAF/PPOBTAS/PPOBTASI must reproduce the
// sequential POBTAF/POBTAS/POBTASI results exactly (up to roundoff).
func TestQuickDistributedEqualsSequential(t *testing.T) {
	f := func(seed int64, nsz, bsz, asz, psz uint8, lbq uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nsz%10) + 4
		b := int(bsz%3) + 1
		a := int(asz % 3)
		p := int(psz%4) + 1
		if maxP := (n + 2) / 2; p > maxP {
			p = maxP
		}
		lb := 1.0 + 0.2*float64(lbq%6)
		g := randBTA(rng, n, b, a)
		parts, err := PartitionBlocks(n, p, lb)
		if err != nil {
			parts, err = PartitionBlocks(n, p, 1)
			if err != nil {
				return false
			}
		}
		rhs := randVec(rng, g.Dim())

		fRef, err := Factorize(g)
		if err != nil {
			return false
		}
		want := append([]float64(nil), rhs...)
		fRef.Solve(want)
		sigRef, err := fRef.SelectedInversion()
		if err != nil {
			return false
		}
		wantDiag := sigRef.DiagVec()
		wantLd := fRef.LogDet()

		var failed atomic.Bool
		x := make([]float64, g.Dim())
		sigDiag := make([]float64, g.Dim())
		gotLd := math.NaN()
		done := make(chan struct{}, p)
		comm.Run(p, comm.DefaultMachine(), func(c *comm.Comm) {
			defer func() { done <- struct{}{} }()
			local := LocalSlice(g, parts, c.Rank())
			df, err := PPOBTAF(c, local)
			if err != nil {
				failed.Store(true)
				return
			}
			part := parts[c.Rank()]
			rl := append([]float64(nil), rhs[part.Lo*b:(part.Hi+1)*b]...)
			var rt []float64
			if a > 0 {
				rt = rhs[g.N*b:]
			}
			xl, xt, err := PPOBTAS(c, df, rl, rt)
			if err != nil {
				failed.Store(true)
				return
			}
			sig, err := PPOBTASI(c, df)
			if err != nil {
				failed.Store(true)
				return
			}
			// Each rank writes its own disjoint slices; the replicated tip
			// values are written by rank 0 only (all ranks hold identical
			// copies, but identical-value concurrent writes are still a
			// data race).
			copy(x[part.Lo*b:(part.Hi+1)*b], xl)
			copy(sigDiag[part.Lo*b:(part.Hi+1)*b], sig.DiagVec())
			if c.Rank() == 0 {
				if a > 0 && xt != nil {
					copy(x[g.N*b:], xt)
				}
				if a > 0 && sig.Tip != nil {
					for k := 0; k < a; k++ {
						sigDiag[g.N*b+k] = sig.Tip.At(k, k)
					}
				}
				gotLd = df.LogDet()
			}
		})
		for i := 0; i < p; i++ {
			<-done
		}
		if failed.Load() {
			return false
		}
		if math.Abs(gotLd-wantLd) > 1e-6*(1+math.Abs(wantLd)) {
			return false
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				return false
			}
			if math.Abs(sigDiag[i]-wantDiag[i]) > 1e-6*(1+math.Abs(wantDiag[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
