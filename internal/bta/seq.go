package bta

import (
	"fmt"
	"math"
	"sync"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// Factor holds the Cholesky factorization of a BTA matrix produced by
// Factorize (the POBTAF routine). The factor reuses the BTA block layout:
// Diag[i] holds L_ii (lower triangular), Lower[i] holds L_{i+1,i}, Arrow[i]
// holds L_{a,i} and Tip holds L_aa.
type Factor struct {
	N, B, A int
	Diag    []*dense.Matrix
	Lower   []*dense.Matrix
	Arrow   []*dense.Matrix
	Tip     *dense.Matrix

	// selinvMu guards the lazily allocated selected-inversion scratch:
	// SelectedInversion used to build all temporaries fresh and was safe to
	// call concurrently on a shared factor (the mode-factor usage pattern);
	// the scratch reuse keeps that contract by serializing the sweep.
	selinvMu sync.Mutex
	selinv   *selinvScratch

	// Mixed-precision state (precision.go / seq_mixed.go). ref retains the
	// matrix passed to the last Refactorize: under PrecMixed the factor
	// blocks carry fp32-accurate values and every Solve runs fp64 iterative
	// refinement against ref to recover double-precision accuracy.
	prec       Precision
	low        bool    // factor blocks came from the fp32 sweep
	ref        *Matrix // matrix of the last Refactorize (refinement residuals)
	shadow     *elimShadow32
	maxRefine  int
	lastRefine int

	// refineMu guards the refinement scratch and the low→fp64 promotion,
	// preserving the concurrent-solve contract of a shared mode factor.
	refineMu   sync.Mutex
	refB, refR []float64
	refBM      *dense.Matrix
	refRM      *dense.Matrix
}

// selinvScratch is the reusable workspace of the alloc-free selected
// inversion: the scaled couplings G = L_{i+1,i}·L_ii⁻¹ and H = L_{a,i}·L_ii⁻¹
// of the current block, plus the triangular-inverse temporaries.
type selinvScratch struct {
	g    *dense.Matrix // b×b
	h    *dense.Matrix // a×b (nil when A == 0)
	tmpB *dense.Matrix // b×b Trtri workspace
	tmpA *dense.Matrix // a×a Trtri workspace (nil when A == 0)
}

func newSelinvScratch(b, a int) *selinvScratch {
	s := &selinvScratch{g: dense.New(b, b), tmpB: dense.New(b, b)}
	if a > 0 {
		s.h = dense.New(a, b)
		s.tmpA = dense.New(a, a)
	}
	return s
}

// Factorize computes the block Cholesky factorization A = L·Lᵀ of a BTA
// matrix (POBTAF). The input is not modified. The cost is
// O(n·(b³ + b²a) + a³), sequential over the n diagonal blocks.
//
// Factorize allocates fresh factor storage on every call; the INLA loop,
// which factorizes the same shape hundreds of times, should allocate a
// Factor once with NewFactor and call Refactorize per θ instead.
func Factorize(m *Matrix) (*Factor, error) {
	f := NewFactor(m.N, m.B, m.A)
	if err := f.Refactorize(m); err != nil {
		return nil, err
	}
	return f, nil
}

// NewFactor allocates zeroed factor storage for a BTA shape. The factor is
// not usable until a successful Refactorize.
func NewFactor(n, b, a int) *Factor {
	w := NewMatrix(n, b, a)
	return &Factor{N: n, B: b, A: a, Diag: w.Diag, Lower: w.Lower, Arrow: w.Arrow, Tip: w.Tip}
}

// FactorizeInto factorizes m into the caller-owned factor storage f,
// performing no heap allocation. Equivalent to f.Refactorize(m).
func FactorizeInto(f *Factor, m *Matrix) error { return f.Refactorize(m) }

// Refactorize recomputes the factorization of m in place of f's existing
// block storage — the zero-allocation hot path of repeated INLA
// θ-evaluations. m is not modified. On error (non-SPD input) the factor
// contents are undefined and must not be used until the next successful
// Refactorize; callers in the INLA loop treat this as an infeasible point
// and back off.
//
// Under SetPrecision(PrecMixed) the factor retains m for the fp64 residual
// corrections of later solves: m must stay unchanged until the next
// Refactorize (the INLA loop rebuilds the precision matrix in place and then
// refactorizes, so this holds by construction).
func (f *Factor) Refactorize(m *Matrix) error {
	if f.N != m.N || f.B != m.B || f.A != m.A {
		return fmt.Errorf("bta: refactorize shape mismatch: factor (n=%d,b=%d,a=%d), matrix (n=%d,b=%d,a=%d)",
			f.N, f.B, f.A, m.N, m.B, m.A)
	}
	f.ref = m
	if f.prec == PrecMixed {
		if err := f.refactorize32(m); err == nil {
			f.low = true
			return nil
		}
		// fp32 lost positive definiteness: re-run in fp64 on the pristine
		// input — the double-precision sweep decides feasibility.
	}
	f.low = false
	w := Matrix{N: f.N, B: f.B, A: f.A, Diag: f.Diag, Lower: f.Lower, Arrow: f.Arrow, Tip: f.Tip}
	w.CopyFrom(m)
	return factorizeInPlace(&w)
}

// factorizeInPlace overwrites the blocks of w with the factor blocks.
func factorizeInPlace(w *Matrix) error {
	for i := 0; i < w.N; i++ {
		if err := factorStep(w, i); err != nil {
			return err
		}
	}
	return factorFinishTip(w)
}

// factorStep eliminates diagonal block i of w in place: Cholesky of the
// block, scaling of its couplings, and the Schur updates onto block i+1 and
// the arrow tip. Blocks 0..i−1 must already be eliminated; blocks > i+1 are
// untouched, which is what lets the reduced-system frontier interleave steps
// with the arrival of later blocks (pipelined boundary handoff).
func factorStep(w *Matrix, i int) error {
	n := w.N
	hasArrow := w.A > 0
	if err := dense.Potrf(w.Diag[i]); err != nil {
		return fmt.Errorf("bta: diagonal block %d: %w", i, err)
	}
	w.Diag[i].ZeroUpper()
	li := w.Diag[i]
	if i < n-1 {
		dense.Trsm(dense.Right, dense.Trans, li, w.Lower[i]) // L_{i+1,i} = A_{i+1,i}·L_ii⁻ᵀ
	}
	if hasArrow {
		dense.Trsm(dense.Right, dense.Trans, li, w.Arrow[i]) // L_{a,i} = A_{a,i}·L_ii⁻ᵀ
	}
	if i < n-1 {
		dense.Syrk(dense.NoTrans, -1, w.Lower[i], 1, w.Diag[i+1])
		w.Diag[i+1].MirrorLowerToUpper()
		if hasArrow {
			dense.Gemm(dense.NoTrans, dense.Trans, -1, w.Arrow[i], w.Lower[i], 1, w.Arrow[i+1])
		}
	}
	if hasArrow {
		dense.Syrk(dense.NoTrans, -1, w.Arrow[i], 1, w.Tip)
	}
	return nil
}

// factorFinishTip factorizes the fully-updated arrow tip, completing an
// in-place factorization whose diagonal steps all ran through factorStep.
func factorFinishTip(w *Matrix) error {
	if w.A > 0 {
		if err := dense.Potrf(w.Tip); err != nil {
			return fmt.Errorf("bta: arrow tip: %w", err)
		}
		w.Tip.ZeroUpper()
	}
	return nil
}

// LogDet returns log|A| = 2·Σ log L_kk over all factor diagonals.
func (f *Factor) LogDet() float64 {
	var s float64
	for i := 0; i < f.N; i++ {
		d := f.Diag[i]
		for k := 0; k < f.B; k++ {
			s += math.Log(d.At(k, k))
		}
	}
	if f.A > 0 {
		for k := 0; k < f.A; k++ {
			s += math.Log(f.Tip.At(k, k))
		}
	}
	return 2 * s
}

// Dim returns the full system dimension.
func (f *Factor) Dim() int { return f.N*f.B + f.A }

// Solve solves A·x = rhs in place of rhs (the POBTAS routine: block forward
// substitution, then block backward substitution).
func (f *Factor) Solve(rhs []float64) {
	if len(rhs) < f.Dim() {
		panic(fmt.Sprintf("bta: solve rhs length %d < %d", len(rhs), f.Dim()))
	}
	if f.isLow() {
		f.solveRefined(rhs)
		return
	}
	f.forward(rhs)
	f.backward(rhs)
}

// forward computes y = L⁻¹·rhs in place.
func (f *Factor) forward(rhs []float64) {
	n, b := f.N, f.B
	for i := 0; i < n; i++ {
		yi := rhs[i*b : (i+1)*b]
		solveLowerVec(f.Diag[i], yi)
		if i < n-1 {
			dense.Gemv(dense.NoTrans, -1, f.Lower[i], yi, 1, rhs[(i+1)*b:(i+2)*b])
		}
		if f.A > 0 {
			dense.Gemv(dense.NoTrans, -1, f.Arrow[i], yi, 1, rhs[n*b:n*b+f.A])
		}
	}
	if f.A > 0 {
		solveLowerVec(f.Tip, rhs[n*b:n*b+f.A])
	}
}

// backward computes x = L⁻ᵀ·y in place.
func (f *Factor) backward(rhs []float64) {
	n, b := f.N, f.B
	var xa []float64
	if f.A > 0 {
		xa = rhs[n*b : n*b+f.A]
		solveLowerTransVec(f.Tip, xa)
	}
	for i := n - 1; i >= 0; i-- {
		xi := rhs[i*b : (i+1)*b]
		if i < n-1 {
			dense.Gemv(dense.Trans, -1, f.Lower[i], rhs[(i+1)*b:(i+2)*b], 1, xi)
		}
		if f.A > 0 {
			dense.Gemv(dense.Trans, -1, f.Arrow[i], xa, 1, xi)
		}
		solveLowerTransVec(f.Diag[i], xi)
	}
}

// SolveLT solves Lᵀ·x = x in place. Drawing z ~ N(0, I) and solving
// Lᵀ·x = z yields a sample x ~ N(0, A⁻¹) — the GMRF sampling primitive the
// synthetic-data generators use.
func (f *Factor) SolveLT(x []float64) {
	if len(x) < f.Dim() {
		panic(fmt.Sprintf("bta: SolveLT length %d < %d", len(x), f.Dim()))
	}
	// Half-solves have no residual to refine against, so sampling promotes a
	// mixed factor to a full fp64 refactorization first.
	f.promote()
	f.backward(x)
}

// SolveMulti solves A·X = B for a block of right-hand sides stored as the
// columns of b (in place).
func (f *Factor) SolveMulti(b *dense.Matrix) {
	if b.Rows != f.Dim() {
		panic(fmt.Sprintf("bta: SolveMulti rhs rows %d != %d", b.Rows, f.Dim()))
	}
	if f.isLow() {
		f.solveMultiRefined(b)
		return
	}
	f.solveMultiOnce(b)
}

// solveMultiOnce is the unrefined block forward/backward substitution.
func (f *Factor) solveMultiOnce(b *dense.Matrix) {
	n, bb := f.N, f.B
	// forward
	for i := 0; i < n; i++ {
		yi := b.View(i*bb, 0, bb, b.Cols)
		dense.Trsm(dense.Left, dense.NoTrans, f.Diag[i], yi)
		if i < n-1 {
			dense.Gemm(dense.NoTrans, dense.NoTrans, -1, f.Lower[i], yi, 1, b.View((i+1)*bb, 0, bb, b.Cols))
		}
		if f.A > 0 {
			dense.Gemm(dense.NoTrans, dense.NoTrans, -1, f.Arrow[i], yi, 1, b.View(n*bb, 0, f.A, b.Cols))
		}
	}
	if f.A > 0 {
		dense.Trsm(dense.Left, dense.NoTrans, f.Tip, b.View(n*bb, 0, f.A, b.Cols))
	}
	// backward
	if f.A > 0 {
		dense.Trsm(dense.Left, dense.Trans, f.Tip, b.View(n*bb, 0, f.A, b.Cols))
	}
	for i := n - 1; i >= 0; i-- {
		xi := b.View(i*bb, 0, bb, b.Cols)
		if i < n-1 {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, f.Lower[i], b.View((i+1)*bb, 0, bb, b.Cols), 1, xi)
		}
		if f.A > 0 {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, f.Arrow[i], b.View(n*bb, 0, f.A, b.Cols), 1, xi)
		}
		dense.Trsm(dense.Left, dense.Trans, f.Diag[i], xi)
	}
}

// solveLowerVec solves L·x = x in place for lower-triangular L.
func solveLowerVec(l *dense.Matrix, x []float64) {
	n := l.Rows
	for i := 0; i < n; i++ {
		row := l.Row(i)
		s := x[i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
}

// solveLowerTransVec solves Lᵀ·x = x in place for lower-triangular L.
func solveLowerTransVec(l *dense.Matrix, x []float64) {
	n := l.Rows
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= l.Data[k*l.Stride+i] * x[k]
		}
		x[i] = s / l.Data[i*l.Stride+i]
	}
}

// SelectedInversion computes the blocks of Σ = A⁻¹ that lie on the BTA
// pattern (the POBTASI routine): Σ_ii, Σ_{i+1,i}, Σ_{a,i} and Σ_aa. These
// are exactly the entries INLA needs for latent marginal variances (the
// diagonal) and local posterior covariances.
//
// Backward block recursion derived from Σ·L = L⁻ᵀ:
//
//	G = L_{i+1,i}·L_ii⁻¹,  H = L_{a,i}·L_ii⁻¹
//	Σ_{i+1,i} = −Σ_{i+1,i+1}·G − Σ_{a,i+1}ᵀ·H
//	Σ_{a,i}   = −Σ_{a,i+1}·G − Σ_aa·H
//	Σ_ii      = (L_ii·L_iiᵀ)⁻¹ − Σ_{i+1,i}ᵀ·G − Σ_{a,i}ᵀ·H
func (f *Factor) SelectedInversion() (*Matrix, error) {
	sig := NewMatrix(f.N, f.B, f.A)
	if err := f.SelectedInversionInto(sig); err != nil {
		return nil, err
	}
	return sig, nil
}

// SelectedInversionInto computes the selected inverse into caller-owned
// storage, drawing all temporaries from a scratch arena allocated on first
// use — the alloc-free counterpart of SelectedInversion for the per-θ
// posterior extraction loop. Concurrent calls on the same factor serialize
// on the shared scratch (each still needs its own sig).
func (f *Factor) SelectedInversionInto(sig *Matrix) error {
	n, b, a := f.N, f.B, f.A
	if sig.N != n || sig.B != b || sig.A != a {
		return fmt.Errorf("bta: selinv output BTA(n=%d,b=%d,a=%d), factor (n=%d,b=%d,a=%d)",
			sig.N, sig.B, sig.A, n, b, a)
	}
	// The selected-inversion recursion has no residual-correction analogue,
	// so a mixed factor is promoted to full fp64 first (per-stage policy:
	// posterior covariances stay double precision).
	f.promote()
	f.selinvMu.Lock()
	defer f.selinvMu.Unlock()
	if f.selinv == nil {
		f.selinv = newSelinvScratch(b, a)
	}
	ws := f.selinv
	if a > 0 {
		if err := dense.PotriInto(sig.Tip, ws.tmpA, f.Tip); err != nil {
			return fmt.Errorf("bta: selinv tip: %w", err)
		}
	}
	for i := n - 1; i >= 0; i-- {
		var g, h *dense.Matrix
		if i < n-1 {
			g = ws.g
			g.CopyFrom(f.Lower[i])
			dense.Trsm(dense.Right, dense.NoTrans, f.Diag[i], g) // G = L_{i+1,i}·L_ii⁻¹
		}
		if a > 0 {
			h = ws.h
			h.CopyFrom(f.Arrow[i])
			dense.Trsm(dense.Right, dense.NoTrans, f.Diag[i], h) // H = L_{a,i}·L_ii⁻¹
		}
		if i < n-1 {
			// Σ_{i+1,i}
			dense.Gemm(dense.NoTrans, dense.NoTrans, -1, sig.Diag[i+1], g, 0, sig.Lower[i])
			if a > 0 {
				dense.Gemm(dense.Trans, dense.NoTrans, -1, sig.Arrow[i+1], h, 1, sig.Lower[i])
			}
		}
		if a > 0 {
			// Σ_{a,i}
			if i < n-1 {
				dense.Gemm(dense.NoTrans, dense.NoTrans, -1, sig.Arrow[i+1], g, 0, sig.Arrow[i])
				dense.Gemm(dense.NoTrans, dense.NoTrans, -1, sig.Tip, h, 1, sig.Arrow[i])
			} else {
				dense.Gemm(dense.NoTrans, dense.NoTrans, -1, sig.Tip, h, 0, sig.Arrow[i])
			}
		}
		// Σ_ii = (L_ii·L_iiᵀ)⁻¹ − Σ_{i+1,i}ᵀ·G − Σ_{a,i}ᵀ·H
		if err := dense.PotriInto(sig.Diag[i], ws.tmpB, f.Diag[i]); err != nil {
			return fmt.Errorf("bta: selinv block %d: %w", i, err)
		}
		if i < n-1 {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, sig.Lower[i], g, 1, sig.Diag[i])
		}
		if a > 0 {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, sig.Arrow[i], h, 1, sig.Diag[i])
		}
		sig.Diag[i].Symmetrize()
	}
	return nil
}

// DiagVec extracts the full main diagonal of the BTA matrix as a vector of
// length n·b + a (used to read marginal variances out of Σ).
func (m *Matrix) DiagVec() []float64 {
	out := make([]float64, m.Dim())
	for i := 0; i < m.N; i++ {
		for k := 0; k < m.B; k++ {
			out[i*m.B+k] = m.Diag[i].At(k, k)
		}
	}
	if m.A > 0 {
		for k := 0; k < m.A; k++ {
			out[m.N*m.B+k] = m.Tip.At(k, k)
		}
	}
	return out
}
