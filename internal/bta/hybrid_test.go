package bta

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/dense"
)

// hybridResult gathers one hybrid run's outputs on the caller side.
type hybridResult struct {
	logDet  float64
	x       []float64
	sigDiag []float64
	sigLows []*dense.Matrix
	sigTip  *dense.Matrix
	err     error
}

// runHybrid factorizes, solves, and selected-inverts g over world ranks ×
// perRank partitions each, optionally with per-rank recycled scratch.
func runHybrid(t *testing.T, g *Matrix, world, perRank int, rhs []float64, scrs []*DistScratch) hybridResult {
	return runHybridOpts(t, g, world, perRank, rhs, scrs, DistOptions{})
}

// runHybridOpts is runHybrid with the reduced-system engine configured.
func runHybridOpts(t *testing.T, g *Matrix, world, perRank int, rhs []float64, scrs []*DistScratch, opts DistOptions) hybridResult {
	t.Helper()
	parts, err := PartitionBlocks(g.N, world*perRank, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, b, a := g.N, g.B, g.A
	res := hybridResult{
		x:       make([]float64, n*b+a),
		sigDiag: make([]float64, n*b+a),
		sigLows: make([]*dense.Matrix, n-1),
	}
	var mu chanMutex = make(chan struct{}, 1)
	comm.Run(world, comm.DefaultMachine(), func(c *comm.Comm) {
		local := LocalSliceNode(g, parts, c.Rank(), perRank)
		var scr *DistScratch
		if scrs != nil {
			scr = scrs[c.Rank()]
		}
		f, err := PPOBTAFOpts(c, local, scr, opts)
		if err != nil {
			mu.Lock()
			res.err = err
			mu.Unlock()
			return
		}
		span := local.Part
		rhsLocal := append([]float64(nil), rhs[span.Lo*b:(span.Hi+1)*b]...)
		var rhsTip []float64
		if a > 0 {
			rhsTip = rhs[n*b:]
		}
		xLocal, xTip, err := PPOBTAS(c, f, rhsLocal, rhsTip)
		if err != nil {
			mu.Lock()
			res.err = err
			mu.Unlock()
			return
		}
		sig, err := PPOBTASI(c, f)
		if err != nil {
			mu.Lock()
			res.err = err
			mu.Unlock()
			return
		}
		mu.Lock()
		res.logDet = f.LogDet()
		copy(res.x[span.Lo*b:], xLocal)
		if a > 0 && xTip != nil {
			copy(res.x[n*b:], xTip)
		}
		copy(res.sigDiag[span.Lo*b:], sig.DiagVec())
		if a > 0 && sig.Tip != nil {
			res.sigTip = sig.Tip.Clone()
			for k := 0; k < a; k++ {
				res.sigDiag[n*b+k] = sig.Tip.At(k, k)
			}
		}
		for i, l := range sig.Lower {
			res.sigLows[span.Lo+i] = l.Clone()
		}
		if sig.TopCoupling != nil {
			res.sigLows[span.Lo-1] = sig.TopCoupling.Clone()
		}
		mu.Unlock()
	})
	return res
}

// TestHybridEquivalenceGrid is the acceptance grid of the reduced-system
// engine: dist (hybrid ranks × partitions, recursion depth {0,1,2} ×
// pipelined handoff on/off) vs sequential vs shared-memory parallel
// selected-inversion diagonals, couplings and solves agree to 1e-10 across
// world sizes {1,2,4} × partitions-per-rank {1,2,3} × arrowhead {0,1,4} at
// an odd time dimension. A lowered recursion crossover makes the wide grid
// points genuinely exercise the nested gang.
func TestHybridEquivalenceGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const nt = 23 // odd, and ≥ 2·(4·3)−2 so every grid point partitions
	for _, a := range []int{0, 1, 4} {
		g := randBTA(rng, nt, 2, a)
		rhs := randVec(rng, g.Dim())

		seq, err := Factorize(g)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]float64(nil), rhs...)
		seq.Solve(want)
		wantLd := seq.LogDet()
		wantSig, err := seq.SelectedInversion()
		if err != nil {
			t.Fatal(err)
		}
		wantDiag := wantSig.DiagVec()

		for _, world := range []int{1, 2, 4} {
			for _, perRank := range []int{1, 2, 3} {
				for _, depth := range []int{0, 1, 2} {
					for _, pipe := range []bool{false, true} {
						opts := DistOptions{Reduced: ReducedOptions{
							Depth: depth, Crossover: 4, Pipeline: pipe,
						}}
						label := fmt.Sprintf("a=%d world=%d q=%d depth=%d pipe=%v", a, world, perRank, depth, pipe)
						res := runHybridOpts(t, g, world, perRank, rhs, nil, opts)
						if res.err != nil {
							t.Fatalf("%s: %v", label, res.err)
						}
						if d := math.Abs(res.logDet - wantLd); d > equivTol*(1+math.Abs(wantLd)) {
							t.Fatalf("%s: logdet %v want %v", label, res.logDet, wantLd)
						}
						for i := range want {
							if math.Abs(res.x[i]-want[i]) > equivTol {
								t.Fatalf("%s: solve[%d] = %v want %v", label, i, res.x[i], want[i])
							}
						}
						for i := range wantDiag {
							if math.Abs(res.sigDiag[i]-wantDiag[i]) > equivTol*(1+math.Abs(wantDiag[i])) {
								t.Fatalf("%s: selinv diag[%d] = %v want %v", label, i, res.sigDiag[i], wantDiag[i])
							}
						}
						for k := 0; k < g.N-1; k++ {
							if res.sigLows[k] == nil {
								t.Fatalf("%s: missing Σ lower block %d", label, k)
							}
							if !res.sigLows[k].Equal(wantSig.Lower[k], equivTol) {
								t.Fatalf("%s: Σ lower block %d mismatch", label, k)
							}
						}
						if a > 0 && !res.sigTip.Equal(wantSig.Tip, equivTol) {
							t.Fatalf("%s: Σ tip mismatch", label)
						}

						// The shared-memory parallel backend over the same
						// total width and reduced options must agree too —
						// all backends drive the same partition cores and
						// reduced engine.
						pf, err := NewParallelFactorOpts(nt, 2, a, ParallelOptions{
							Partitions: world * perRank, Reduced: opts.Reduced,
						})
						if err != nil {
							t.Fatal(err)
						}
						if err := pf.Refactorize(g); err != nil {
							t.Fatal(err)
						}
						got := append([]float64(nil), rhs...)
						pf.Solve(got)
						for i := range want {
							if math.Abs(got[i]-want[i]) > equivTol {
								t.Fatalf("%s: parallel solve[%d] mismatch", label, i)
							}
						}
					}
				}
			}
		}
	}
}

// TestHybridUnequalStreams: a topology whose stream counts differ across
// nodes (2 streams on rank 0, 1 on rank 1) must agree with the sequential
// backend — the global partition indexing follows the recorded layout, not
// a uniform ranks × perRank grid.
func TestHybridUnequalStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, a := range []int{0, 2} {
		g := randBTA(rng, 17, 2, a)
		rhs := randVec(rng, g.Dim())
		seq, err := Factorize(g)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]float64(nil), rhs...)
		seq.Solve(want)
		wantSig, err := seq.SelectedInversion()
		if err != nil {
			t.Fatal(err)
		}
		wantDiag := wantSig.DiagVec()

		counts := []int{2, 1}
		parts, err := HybridPartition(g.N, counts, DefaultLoadBalance)
		if err != nil {
			t.Fatal(err)
		}
		n, b := g.N, g.B
		gotX := make([]float64, g.Dim())
		gotDiag := make([]float64, g.Dim())
		var mu chanMutex = make(chan struct{}, 1)
		var runErr error
		comm.Run(2, comm.DefaultMachine(), func(c *comm.Comm) {
			local, err := LocalSliceHybrid(g, parts, counts, c.Rank())
			if err != nil {
				mu.Lock()
				runErr = err
				mu.Unlock()
				return
			}
			f, err := PPOBTAF(c, local)
			if err != nil {
				mu.Lock()
				runErr = err
				mu.Unlock()
				return
			}
			span := local.Part
			rhsLocal := append([]float64(nil), rhs[span.Lo*b:(span.Hi+1)*b]...)
			var rhsTip []float64
			if a > 0 {
				rhsTip = rhs[n*b:]
			}
			xLocal, xTip, err := PPOBTAS(c, f, rhsLocal, rhsTip)
			if err == nil {
				var sig *LocalSigma
				sig, err = PPOBTASI(c, f)
				if err == nil {
					mu.Lock()
					copy(gotX[span.Lo*b:], xLocal)
					copy(gotDiag[span.Lo*b:], sig.DiagVec())
					if a > 0 {
						copy(gotX[n*b:], xTip)
						for k := 0; k < a; k++ {
							gotDiag[n*b+k] = sig.Tip.At(k, k)
						}
					}
					mu.Unlock()
				}
			}
			if err != nil {
				mu.Lock()
				runErr = err
				mu.Unlock()
			}
		})
		if runErr != nil {
			t.Fatalf("a=%d: %v", a, runErr)
		}
		for i := range want {
			if math.Abs(gotX[i]-want[i]) > equivTol {
				t.Fatalf("a=%d: solve[%d] = %v want %v", a, i, gotX[i], want[i])
			}
		}
		for i := range wantDiag {
			if math.Abs(gotDiag[i]-wantDiag[i]) > equivTol*(1+math.Abs(wantDiag[i])) {
				t.Fatalf("a=%d: selinv diag[%d] = %v want %v", a, i, gotDiag[i], wantDiag[i])
			}
		}
	}
}

// TestHybridTopologyBitForBit: with no arrowhead the hybrid path performs
// the identical floating-point operations for every (ranks, partitions)
// split of the same total width — the per-partition elimination, solve and
// sweep are the same partition-relative cores either way, and only message
// boundaries move. 1 rank × 4 partitions, 2 × 2 and 4 × 1 must therefore
// agree bit for bit.
func TestHybridTopologyBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	g := randBTA(rng, 12, 3, 0)
	rhs := randVec(rng, g.Dim())

	ref := runHybrid(t, g, 4, 1, rhs, nil)
	if ref.err != nil {
		t.Fatal(ref.err)
	}
	for _, tc := range []struct{ world, q int }{{1, 4}, {2, 2}} {
		res := runHybrid(t, g, tc.world, tc.q, rhs, nil)
		if res.err != nil {
			t.Fatalf("%+v: %v", tc, res.err)
		}
		// The log-determinant's collective reduction groups its partial sums
		// by rank, so moving a partition boundary between ranks regroups the
		// sum (ulp-level shift) — everything else is bitwise identical.
		if d := math.Abs(res.logDet - ref.logDet); d > 1e-12*math.Abs(ref.logDet) {
			t.Fatalf("%+v: logdet %v != flat %v", tc, res.logDet, ref.logDet)
		}
		for i := range ref.x {
			if res.x[i] != ref.x[i] {
				t.Fatalf("%+v: solve[%d] %v != flat %v", tc, i, res.x[i], ref.x[i])
			}
		}
		for i := range ref.sigDiag {
			if res.sigDiag[i] != ref.sigDiag[i] {
				t.Fatalf("%+v: selinv diag[%d] %v != flat %v", tc, i, res.sigDiag[i], ref.sigDiag[i])
			}
		}
	}
}

// TestHybridScratchReuseStable: repeated factorize/solve/selinv cycles on
// the same recycled scratch must reproduce the first cycle's results
// exactly — the recycled chains, solve buffers and Σ storage carry no state
// between iterations.
func TestHybridScratchReuseStable(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := randBTA(rng, 11, 3, 2)
	rhs := randVec(rng, g.Dim())
	scrs := []*DistScratch{{}, {}}

	var first hybridResult
	for cycle := 0; cycle < 4; cycle++ {
		res := runHybrid(t, g, 2, 2, rhs, scrs)
		if res.err != nil {
			t.Fatalf("cycle %d: %v", cycle, res.err)
		}
		if cycle == 0 {
			first = res
			continue
		}
		for i := range first.x {
			if res.x[i] != first.x[i] {
				t.Fatalf("cycle %d: solve[%d] drifted", cycle, i)
			}
		}
		for i := range first.sigDiag {
			if res.sigDiag[i] != first.sigDiag[i] {
				t.Fatalf("cycle %d: selinv diag[%d] drifted", cycle, i)
			}
		}
	}
}

// distCycleAllocs measures the steady-state allocations of one full
// scratch-backed distributed cycle (refill + PPOBTAF + PPOBTAS + PPOBTASI +
// Reclaim) over 2 ranks with the given reduced-engine options.
func distCycleAllocs(t *testing.T, nt int, opts DistOptions) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(74 + nt)))
	g := randBTA(rng, nt, 3, 2)
	parts, err := PartitionBlocks(nt, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rhs := randVec(rng, g.Dim())
	scrs := []*DistScratch{{}, {}}
	locals := []*LocalBTA{
		NewLocalBTA(parts[0], g.N, g.B, g.A, 0),
		NewLocalBTA(parts[1], g.N, g.B, g.A, 1),
	}
	rhsLocals := make([][]float64, 2)
	for r, p := range parts {
		rhsLocals[r] = append([]float64(nil), rhs[p.Lo*g.B:(p.Hi+1)*g.B]...)
	}
	cycle := func() {
		comm.Run(2, comm.DefaultMachine(), func(c *comm.Comm) {
			r := c.Rank()
			locals[r].FillFrom(g)
			f, err := PPOBTAFOpts(c, locals[r], scrs[r], opts)
			if err != nil {
				panic(err)
			}
			rl := rhsLocals[r]
			copy(rl, rhs[parts[r].Lo*g.B:(parts[r].Hi+1)*g.B])
			var rhsTip []float64
			if g.A > 0 {
				rhsTip = rhs[g.N*g.B:]
			}
			if _, _, err := PPOBTAS(c, f, rl, rhsTip); err != nil {
				panic(err)
			}
			if _, err := PPOBTASI(c, f); err != nil {
				panic(err)
			}
			scrs[r].Reclaim(f)
		})
	}
	// Warm the scratch pools (chains, solve buffers, Σ storage).
	cycle()
	cycle()
	return testing.AllocsPerRun(5, cycle)
}

// TestDistPerStepAllocFree pins the scratch-backed distributed path's
// allocation behaviour: the remaining allocations per cycle belong to the
// message layer and the simulator (O(ranks) per cycle), so the count must
// not grow with the number of interior blocks — the per-step Clone /
// dense.New churn of the solve and selected-inversion sweeps is gone.
func TestDistPerStepAllocFree(t *testing.T) {
	if dense.RaceEnabled {
		t.Skip("race-mode alloc counts are meaningless")
	}
	small := distCycleAllocs(t, 10, DistOptions{})
	large := distCycleAllocs(t, 34, DistOptions{})
	// 24 extra interior blocks under the old code cost ≥ 4 allocations each
	// (G clones and fresh Σ blocks per step); scratch-backed sweeps cost 0.
	if large > small+6 {
		t.Fatalf("allocations grow with nt: %.1f at nt=10 vs %.1f at nt=34", small, large)
	}
}

// TestDistPipelinedAllocFree pins the pipelined handoff's allocation
// behaviour the same way: the interleaved receive/factorStep assembly and
// the frontier state add zero per-step allocations (the frontier is a value
// field of the factor and the reduced engine is recycled through
// DistScratch), so the count must neither grow with nt nor exceed the eager
// path's by more than a constant.
func TestDistPipelinedAllocFree(t *testing.T) {
	if dense.RaceEnabled {
		t.Skip("race-mode alloc counts are meaningless")
	}
	opts := DistOptions{Reduced: ReducedOptions{Pipeline: true}}
	small := distCycleAllocs(t, 10, opts)
	large := distCycleAllocs(t, 34, opts)
	if large > small+6 {
		t.Fatalf("pipelined allocations grow with nt: %.1f at nt=10 vs %.1f at nt=34", small, large)
	}
	eager := distCycleAllocs(t, 34, DistOptions{})
	if large > eager+4 {
		t.Fatalf("pipelined cycle allocates %.1f vs eager %.1f", large, eager)
	}
}
