package bta

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// TestReducedEngineGrid sweeps the recursive/pipelined reduced-system
// engine against the sequential backend: partitions {2,3,5,6} × recursion
// depth {0,1,2} × pipelined on/off × arrowhead {0,1,4} at an odd block
// count, checking LogDet, Solve and SelectedInversion to 1e-10. P ≥ 5 with
// a lowered crossover actually exercises the nested gang (reduced size
// 2P−2 ≥ 8); smaller P proves the crossover degrades to the sequential
// kernel without breaking anything.
func TestReducedEngineGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	const n, b = 25, 2
	for _, a := range []int{0, 1, 4} {
		m := randBTA(rng, n, b, a)
		seq, err := Factorize(m)
		if err != nil {
			t.Fatal(err)
		}
		rhs0 := randVec(rng, m.Dim())
		want := append([]float64(nil), rhs0...)
		seq.Solve(want)
		wantSig, err := seq.SelectedInversion()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 3, 5, 6} {
			for _, depth := range []int{0, 1, 2} {
				for _, pipe := range []bool{false, true} {
					pf, err := NewParallelFactorOpts(n, b, a, ParallelOptions{
						Partitions: p,
						Reduced:    ReducedOptions{Depth: depth, Pipeline: pipe},
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := pf.Refactorize(m); err != nil {
						t.Fatalf("a=%d p=%d depth=%d pipe=%v: %v", a, p, depth, pipe, err)
					}
					if d := math.Abs(pf.LogDet() - seq.LogDet()); d > equivTol*(1+math.Abs(seq.LogDet())) {
						t.Fatalf("a=%d p=%d depth=%d pipe=%v: LogDet %v want %v",
							a, p, depth, pipe, pf.LogDet(), seq.LogDet())
					}
					got := append([]float64(nil), rhs0...)
					pf.Solve(got)
					for i := range got {
						if math.Abs(got[i]-want[i]) > equivTol {
							t.Fatalf("a=%d p=%d depth=%d pipe=%v: Solve[%d] = %v want %v",
								a, p, depth, pipe, i, got[i], want[i])
						}
					}
					gotSig, err := pf.SelectedInversion()
					if err != nil {
						t.Fatalf("a=%d p=%d depth=%d pipe=%v: selinv: %v", a, p, depth, pipe, err)
					}
					if !gotSig.ToDense().Equal(wantSig.ToDense(), equivTol) {
						t.Fatalf("a=%d p=%d depth=%d pipe=%v: selected inverse mismatch", a, p, depth, pipe)
					}
				}
			}
		}
	}
}

// TestReducedRecursionActuallyNests pins that the recursion plumbing does
// engage where it should: at P ≥ 5 (reduced size ≥ DefaultReducedCrossover)
// with depth ≥ 1 the engine runs a nested gang, while small P and depth 0
// stay sequential.
func TestReducedRecursionActuallyNests(t *testing.T) {
	mk := func(p, depth, crossover int) *ParallelFactor {
		pf, err := NewParallelFactorOpts(40, 2, 1, ParallelOptions{
			Partitions: p,
			Reduced:    ReducedOptions{Depth: depth, Crossover: crossover},
		})
		if err != nil {
			t.Fatal(err)
		}
		return pf
	}
	if !mk(5, 1, 0).ReducedRecursing() {
		t.Fatal("P=5 depth=1 must nest (reduced size 8 ≥ default crossover)")
	}
	if mk(5, 0, 0).ReducedRecursing() {
		t.Fatal("depth=0 must never nest")
	}
	if mk(4, 1, 0).ReducedRecursing() {
		t.Fatal("P=4 (reduced size 6) is below the default crossover")
	}
	if !mk(4, 1, 4).ReducedRecursing() {
		t.Fatal("a lowered crossover must let P=4 nest")
	}
}

// TestReducedCrossoverBitForBit is the crossover acceptance: below the
// recursion crossover the reduced system must take the sequential path bit
// for bit — a factor built with a deep recursion budget and one built with
// depth 0 produce identical bits for every output when P is small.
func TestReducedCrossoverBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	m := randBTA(rng, 13, 3, 2)
	rhs0 := randVec(rng, m.Dim())

	run := func(depth int) (ld float64, x []float64, sig *Matrix) {
		// P = 3 → reduced size 4 < DefaultReducedCrossover: depth must not
		// change the code path.
		pf, err := NewParallelFactorOpts(13, 3, 2, ParallelOptions{
			Partitions: 3,
			Reduced:    ReducedOptions{Depth: depth},
		})
		if err != nil {
			t.Fatal(err)
		}
		if pf.ReducedRecursing() {
			t.Fatal("small-P factor must not recurse")
		}
		if err := pf.Refactorize(m); err != nil {
			t.Fatal(err)
		}
		x = append([]float64(nil), rhs0...)
		pf.Solve(x)
		sig, err = pf.SelectedInversion()
		if err != nil {
			t.Fatal(err)
		}
		return pf.LogDet(), x, sig
	}
	ld0, x0, sig0 := run(0)
	ld2, x2, sig2 := run(2)
	if ld0 != ld2 {
		t.Fatalf("LogDet differs below the crossover: %v vs %v", ld0, ld2)
	}
	for i := range x0 {
		if x0[i] != x2[i] {
			t.Fatalf("Solve[%d] differs below the crossover: %v vs %v", i, x0[i], x2[i])
		}
	}
	if !sig0.ToDense().Equal(sig2.ToDense(), 0) {
		t.Fatal("selected inverse differs below the crossover")
	}
}

// TestReducedPipelineDeterministic: the pipelined handoff must be a pure
// function of the input — repeated refactorizations produce identical bits
// even though partition completion order varies run to run (the frontier
// ties every floating-point operation to the install order, not the
// delivery order).
func TestReducedPipelineDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	m := randBTA(rng, 27, 3, 2)
	rhs0 := randVec(rng, m.Dim())
	pf, err := NewParallelFactorOpts(27, 3, 2, ParallelOptions{
		Partitions: 6,
		Reduced:    ReducedOptions{Pipeline: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	var firstLd float64
	var firstX []float64
	for trial := 0; trial < 5; trial++ {
		if err := pf.Refactorize(m); err != nil {
			t.Fatal(err)
		}
		x := append([]float64(nil), rhs0...)
		pf.Solve(x)
		if trial == 0 {
			firstLd, firstX = pf.LogDet(), x
			continue
		}
		if pf.LogDet() != firstLd {
			t.Fatalf("trial %d: LogDet drifted: %v vs %v", trial, pf.LogDet(), firstLd)
		}
		for i := range x {
			if x[i] != firstX[i] {
				t.Fatalf("trial %d: Solve[%d] drifted", trial, i)
			}
		}
	}
}

// TestReducedEngineNonSPDRecovery: failure/recovery cycles through the
// recursive and pipelined paths — both an interior failure (mid-elimination
// with fill blocks in flight) and a reduced-system failure (all partitions
// succeed, the nested/streamed reduced factorization hits the indefinite
// tip) must surface errors and leave the factor exact afterwards.
func TestReducedEngineNonSPDRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	good := randBTA(rng, 23, 3, 2)
	bad := good.Clone()
	bad.Diag[11].Set(0, 0, -5)
	badTip := good.Clone()
	badTip.Tip.Set(0, 0, -5)

	seq, err := Factorize(good)
	if err != nil {
		t.Fatal(err)
	}
	wantSig, err := seq.SelectedInversion()
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []ReducedOptions{
		{Depth: 1, Crossover: 4},
		{Pipeline: true},
		{Depth: 1, Crossover: 4, Pipeline: true},
	} {
		pf, err := NewParallelFactorOpts(23, 3, 2, ParallelOptions{Partitions: 5, Reduced: opt})
		if err != nil {
			t.Fatal(err)
		}
		for cycle := 0; cycle < 3; cycle++ {
			if err := pf.Refactorize(bad); err == nil {
				t.Fatalf("%+v: non-SPD interior must fail", opt)
			}
			if err := pf.Refactorize(badTip); err == nil {
				t.Fatalf("%+v: non-SPD tip must fail", opt)
			}
			if err := pf.Refactorize(good); err != nil {
				t.Fatalf("%+v cycle %d: recovery: %v", opt, cycle, err)
			}
			gotSig, err := pf.SelectedInversion()
			if err != nil {
				t.Fatalf("%+v cycle %d: %v", opt, cycle, err)
			}
			if !gotSig.ToDense().Equal(wantSig.ToDense(), equivTol) {
				t.Fatalf("%+v cycle %d: selected inverse drifted after failures", opt, cycle)
			}
		}
	}
}

// TestReducedEngineAllocFree extends the zero-allocation pin to the new
// modes: recursion and the pipelined handoff draw everything — nested gang
// included — from construction-time storage.
func TestReducedEngineAllocFree(t *testing.T) {
	if dense.RaceEnabled {
		t.Skip("race-mode alloc counts are meaningless")
	}
	prev := dense.SetMaxWorkers(1)
	defer dense.SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(85))
	const n, b, a = 24, 8, 3
	m := randBTA(rng, n, b, a)
	rhs0 := randVec(rng, m.Dim())
	for _, opt := range []ReducedOptions{
		{Depth: 1, Crossover: 4},
		{Pipeline: true},
		{Depth: 1, Crossover: 4, Pipeline: true},
	} {
		pf, err := NewParallelFactorOpts(n, b, a, ParallelOptions{Partitions: 5, Reduced: opt})
		if err != nil {
			t.Fatal(err)
		}
		sig := NewMatrix(n, b, a)
		rhs := make([]float64, m.Dim())
		if err := pf.Refactorize(m); err != nil {
			t.Fatal(err)
		}
		copy(rhs, rhs0)
		pf.Solve(rhs)
		if err := pf.SelectedInversionInto(sig); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if err := pf.Refactorize(m); err != nil {
				t.Fatal(err)
			}
			copy(rhs, rhs0)
			pf.Solve(rhs)
			_ = pf.LogDet()
			if err := pf.SelectedInversionInto(sig); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%+v: cycle allocates %.1f objects per run, want 0", opt, allocs)
		}
	}
}

// TestReducedEnginePipelinedRecoveryAllocFree extends the non-SPD recovery
// pin to the recursive pipelined engine (depth ≥ 1 + pipeline on): the
// failure/recovery cycles must keep the construction-time storage exactly
// (fill chains neither grow nor leak), and once warmed through failures a
// recovered Refactorize + SelectedInversionInto cycle is allocation-free —
// a failed factorization cannot poison the scratch into reallocating.
func TestReducedEnginePipelinedRecoveryAllocFree(t *testing.T) {
	if dense.RaceEnabled {
		t.Skip("race-mode alloc counts are meaningless")
	}
	prev := dense.SetMaxWorkers(1)
	defer dense.SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(86))
	const n, b, a = 23, 3, 2
	good := randBTA(rng, n, b, a)
	bad := good.Clone()
	bad.Diag[11].Set(0, 0, -5)
	badTip := good.Clone()
	badTip.Tip.Set(0, 0, -5)

	pf, err := NewParallelFactorOpts(n, b, a, ParallelOptions{
		Partitions: 5,
		Reduced:    ReducedOptions{Depth: 1, Crossover: 4, Pipeline: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sig := NewMatrix(n, b, a)
	chainLens := make([]int, len(pf.ps))
	for r, ps := range pf.ps {
		chainLens[r] = len(ps.chain)
	}
	for cycle := 0; cycle < 3; cycle++ {
		if err := pf.Refactorize(bad); err == nil {
			t.Fatal("non-SPD interior must fail to factorize")
		}
		if err := pf.Refactorize(badTip); err == nil {
			t.Fatal("non-SPD reduced system must fail to factorize")
		}
		if err := pf.Refactorize(good); err != nil {
			t.Fatalf("cycle %d: recovery refactorize: %v", cycle, err)
		}
		if err := pf.SelectedInversionInto(sig); err != nil {
			t.Fatal(err)
		}
		for r, ps := range pf.ps {
			if len(ps.chain) != chainLens[r] {
				t.Fatalf("cycle %d: partition %d chain length changed %d → %d",
					cycle, r, chainLens[r], len(ps.chain))
			}
			if ps.chainUsed > len(ps.chain) {
				t.Fatalf("cycle %d: partition %d chain overrun", cycle, r)
			}
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := pf.Refactorize(good); err != nil {
			t.Fatal(err)
		}
		if err := pf.SelectedInversionInto(sig); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("recovered cycle allocates %.1f objects per run, want 0", allocs)
	}
}
