package bta

import (
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/dense"
)

func logOf(v float64) float64 { return math.Log(v) }

// Message tags used by the distributed routines. Bases are spaced so the
// tag+i arithmetic of multi-part transfers cannot collide across kinds.
const (
	tagDiag     = 100 // +0, +1: boundary diagonal blocks
	tagCoupling = 110 // +0: cross-partition coupling, +1: within-partition fill
	tagArrow    = 120 // +0, +1: boundary arrow blocks
	tagTip      = 130
	tagRhs      = 140
	tagSol      = 150
	tagSig      = 160 // +0..+5: scattered Σ boundary blocks
)

// LocalBTA is one rank's slice of a global BTA matrix under the time-domain
// partitioning: the diagonal, sub-diagonal, and arrow blocks of the owned
// block range plus the coupling to the previous partition. The arrow tip is
// carried by rank 0 only (it is globally shared and enters the reduced
// system exactly once).
type LocalBTA struct {
	Part    Partition
	NGlobal int
	B, A    int

	Diag        []*dense.Matrix // blocks Lo..Hi
	Lower       []*dense.Matrix // couplings (k+1,k) for k = Lo..Hi−1
	TopCoupling *dense.Matrix   // block (Lo, Lo−1); nil on rank 0
	Arrow       []*dense.Matrix // blocks (a, Lo..Hi); empty when A == 0
	Tip         *dense.Matrix   // original tip; required on rank 0, ignored elsewhere
}

// LocalSlice extracts rank's partition from a globally assembled matrix
// (tests and single-host experiment drivers; at paper scale each rank would
// assemble its slice directly).
func LocalSlice(g *Matrix, parts []Partition, rank int) *LocalBTA {
	l := NewLocalBTA(parts[rank], g.N, g.B, g.A, rank)
	LocalSliceInto(l, g, parts, rank)
	return l
}

// NewLocalBTA allocates a zeroed local slice workspace for one rank's
// partition, refillable with LocalSliceInto. The factorization consumes the
// slice blocks as workspace, so a slice refilled every INLA iteration gives
// the distributed path the same fixed memory footprint as the sequential
// Refactorize loop.
func NewLocalBTA(part Partition, nGlobal, b, a, rank int) *LocalBTA {
	l := &LocalBTA{Part: part, NGlobal: nGlobal, B: b, A: a}
	size := part.Size()
	l.Diag = make([]*dense.Matrix, size)
	if size > 1 {
		l.Lower = make([]*dense.Matrix, size-1)
	}
	for i := 0; i < size; i++ {
		l.Diag[i] = dense.New(b, b)
		if i < size-1 {
			l.Lower[i] = dense.New(b, b)
		}
	}
	if part.Lo > 0 {
		l.TopCoupling = dense.New(b, b)
	}
	if a > 0 {
		l.Arrow = make([]*dense.Matrix, size)
		for i := range l.Arrow {
			l.Arrow[i] = dense.New(a, b)
		}
		if rank == 0 {
			l.Tip = dense.New(a, a)
		}
	}
	return l
}

// LocalSliceInto refills an existing local slice from a globally assembled
// matrix without allocating. The slice must have been built for the same
// partition shape (NewLocalBTA or a previous LocalSlice).
func LocalSliceInto(dst *LocalBTA, g *Matrix, parts []Partition, rank int) {
	part := parts[rank]
	for k := part.Lo; k <= part.Hi; k++ {
		dst.Diag[k-part.Lo].CopyFrom(g.Diag[k])
		if k < part.Hi {
			dst.Lower[k-part.Lo].CopyFrom(g.Lower[k])
		}
		if g.A > 0 {
			dst.Arrow[k-part.Lo].CopyFrom(g.Arrow[k])
		}
	}
	if part.Lo > 0 {
		dst.TopCoupling.CopyFrom(g.Lower[part.Lo-1])
	}
	if g.A > 0 && rank == 0 {
		dst.Tip.CopyFrom(g.Tip)
	}
}

// DistFactor is the outcome of PPOBTAF: rank-local interior factor data plus
// the factorized reduced system on rank 0. It supports the distributed
// triangular solve (PPOBTAS), selected inversion (PPOBTASI), and the
// collective log-determinant.
type DistFactor struct {
	part     Partition
	rank, p  int
	nGlobal  int
	b, a     int
	interior []int // global indices, elimination order

	l     []*dense.Matrix // chol of eliminated interior diagonals
	gNext []*dense.Matrix // (k+1, k) couplings, scaled; nil for final block of last partition
	gTop  []*dense.Matrix // (lo, k) fill couplings, scaled; nil on rank 0
	gArr  []*dense.Matrix // (a, k) couplings, scaled; nil when a == 0

	// boundary state after local elimination (inputs to the reduced system)
	bndDiag  []*dense.Matrix // updated boundary diagonal blocks
	bndArrow []*dense.Matrix
	fill     *dense.Matrix // M(lo, hi) for middle partitions
	tipDelta *dense.Matrix

	localTopCoupling *dense.Matrix // original coupling to previous partition
	localTip         *dense.Matrix // original tip (rank 0)

	reduced *Factor // rank 0 only
	logDet  float64 // full log-determinant, replicated on all ranks

	scr *DistScratch // optional recycled block storage (PPOBTAFScratch)
}

// DistScratch recycles the per-factorization block allocations of PPOBTAF
// (fill-coupling chain, tip delta, reduced system) across INLA iterations.
// Usage: pass it to PPOBTAFScratch; when the factor is no longer needed —
// before the next factorization — call Reclaim on it.
type DistScratch struct {
	bb  []*dense.Matrix // spare b×b blocks
	aa  *dense.Matrix   // spare a×a tip delta
	red *Matrix         // spare reduced system (rank 0)
}

func (s *DistScratch) popBB() *dense.Matrix {
	if n := len(s.bb); n > 0 {
		m := s.bb[n-1]
		s.bb = s.bb[:n-1]
		return m
	}
	return nil
}

// Reclaim returns a dead factor's recycled blocks to the scratch. The
// factor must not be used afterwards.
func (s *DistScratch) Reclaim(f *DistFactor) {
	if f == nil {
		return
	}
	for _, g := range f.gTop {
		if g != nil {
			s.bb = append(s.bb, g)
		}
	}
	if f.fill != nil {
		// The remaining boundary-boundary coupling block is never part of
		// the gTop chain (it is the final, unconsumed tNext, or the fresh
		// transpose of the size-2 middle-partition case).
		s.bb = append(s.bb, f.fill)
	}
	if f.tipDelta != nil {
		s.aa = f.tipDelta
	}
	if f.reduced != nil && f.p > 1 {
		s.red = &Matrix{N: f.reduced.N, B: f.reduced.B, A: f.reduced.A,
			Diag: f.reduced.Diag, Lower: f.reduced.Lower, Arrow: f.reduced.Arrow, Tip: f.reduced.Tip}
	}
}

// newBB returns a b×b working block, recycled when scratch is attached.
func (f *DistFactor) newBB() *dense.Matrix {
	if f.scr != nil {
		if m := f.scr.popBB(); m != nil {
			return m
		}
	}
	return dense.New(f.b, f.b)
}

// newTipDelta returns a zeroed a×a accumulator block.
func (f *DistFactor) newTipDelta() *dense.Matrix {
	if f.scr != nil && f.scr.aa != nil {
		m := f.scr.aa
		f.scr.aa = nil
		m.Zero()
		return m
	}
	return dense.New(f.a, f.a)
}

// newReduced returns reduced-system storage for nr blocks, zeroed.
func (f *DistFactor) newReduced(nr int) *Matrix {
	if f.scr != nil && f.scr.red != nil && f.scr.red.N == nr && f.scr.red.B == f.b && f.scr.red.A == f.a {
		red := f.scr.red
		f.scr.red = nil
		for i := 0; i < red.N; i++ {
			red.Diag[i].Zero()
			if i < red.N-1 {
				red.Lower[i].Zero()
			}
			if red.A > 0 {
				red.Arrow[i].Zero()
			}
		}
		if red.A > 0 {
			red.Tip.Zero()
		}
		return red
	}
	return NewMatrix(nr, f.b, f.a)
}

// Part returns the factor's partition.
func (f *DistFactor) Part() Partition { return f.part }

// LogDet returns log|A| (already replicated across ranks by PPOBTAF).
func (f *DistFactor) LogDet() float64 { return f.logDet }

// PPOBTAF performs the distributed BTA Cholesky factorization over the
// time-domain partitioning (the Serinv-style nested-dissection scheme):
// every rank eliminates its interior blocks concurrently — non-first
// partitions run the costlier two-sided elimination that also updates their
// top boundary — then rank 0 assembles and factorizes the reduced
// block-tridiagonal-arrowhead system over the 2P−2 boundary blocks.
//
// Must be called collectively by all ranks of c with consistent local
// slices. The local input is consumed (its blocks are used as workspace).
func PPOBTAF(c *comm.Comm, local *LocalBTA) (*DistFactor, error) {
	return PPOBTAFScratch(c, local, nil)
}

// PPOBTAFScratch is PPOBTAF with recycled block storage: the fill-coupling
// chain, tip delta and reduced system are drawn from scr (which the caller
// refills via DistScratch.Reclaim on the previous iteration's factor)
// instead of freshly allocated. scr may be nil.
func PPOBTAFScratch(c *comm.Comm, local *LocalBTA, scr *DistScratch) (*DistFactor, error) {
	p := c.Size()
	rank := c.Rank()
	f := &DistFactor{
		part: local.Part, rank: rank, p: p,
		nGlobal: local.NGlobal, b: local.B, a: local.A,
		interior: interiors(local.Part, rank, p),
		scr:      scr,
	}
	if p == 1 {
		return ppobtafSingle(c, local, f)
	}

	// Error handling is collective: a failed Cholesky on any rank (an
	// infeasible hyperparameter configuration in the INLA loop) must not
	// leave peers blocked in a collective, so ranks agree on success after
	// each phase.
	var elimErr error
	c.Compute(func() { elimErr = f.eliminateInteriors(local) })
	if anyFailed(c, elimErr) {
		// The dead partial factor's recycled blocks must flow back to the
		// scratch: infeasible θ points are routine in the INLA mode search,
		// and dropping the chain on every failure would reintroduce
		// per-evaluation allocation churn.
		if scr != nil {
			scr.Reclaim(f)
		}
		if elimErr != nil {
			return nil, elimErr
		}
		return nil, fmt.Errorf("bta: rank %d: a peer rank failed local elimination", rank)
	}
	redErr := f.assembleAndFactorReduced(c, local)
	if anyFailed(c, redErr) {
		if scr != nil {
			scr.Reclaim(f)
		}
		if redErr != nil {
			return nil, redErr
		}
		return nil, fmt.Errorf("bta: rank %d: reduced-system factorization failed", rank)
	}
	f.shareLogDet(c)
	return f, nil
}

// anyFailed reports collectively whether any rank observed an error.
func anyFailed(c *comm.Comm, err error) bool {
	flag := 0.0
	if err != nil {
		flag = 1
	}
	return c.AllReduceMax([]float64{flag})[0] > 0
}

// ppobtafSingle is the P == 1 fallback: plain sequential factorization
// presented through the distributed interface.
func ppobtafSingle(c *comm.Comm, local *LocalBTA, f *DistFactor) (*DistFactor, error) {
	g := &Matrix{N: local.NGlobal, B: local.B, A: local.A,
		Diag: local.Diag, Lower: local.Lower, Arrow: local.Arrow, Tip: local.Tip}
	var seq *Factor
	var err error
	c.Compute(func() {
		err = factorizeInPlace(g)
		seq = &Factor{N: g.N, B: g.B, A: g.A, Diag: g.Diag, Lower: g.Lower, Arrow: g.Arrow, Tip: g.Tip}
	})
	if err != nil {
		return nil, err
	}
	f.reduced = seq
	f.interior = nil
	f.logDet = seq.LogDet()
	return f, nil
}

// eliminateInteriors runs the rank-local phase of PPOBTAF by delegating to
// the shared per-partition elimination core (partitionElim), which the
// shared-memory ParallelFactor drives as well.
func (f *DistFactor) eliminateInteriors(local *LocalBTA) error {
	lo := local.Part.Lo
	hasArrow := f.a > 0

	pe := &partitionElim{
		Diag:      local.Diag,
		Lower:     local.Lower,
		Arrow:     local.Arrow,
		Interiors: f.interior,
		Base:      lo,
		TwoSided:  f.rank != 0,
		NewBB:     f.newBB,
		Kind:      "rank",
		ID:        f.rank,
	}
	if hasArrow {
		f.tipDelta = f.newTipDelta()
		pe.TipDelta = f.tipDelta
	}
	err := pe.run()
	// Transfer the sweep outputs even on failure: partially appended fill
	// blocks must stay reachable for DistScratch.Reclaim.
	f.l, f.gNext, f.gTop, f.gArr = pe.L, pe.GNext, pe.GTop, pe.GArr
	f.fill = pe.Fill
	if err != nil {
		return err
	}

	// Record boundary state.
	for _, gbl := range boundaries(local.Part, f.rank, f.p) {
		f.bndDiag = append(f.bndDiag, local.Diag[gbl-lo])
		if hasArrow {
			f.bndArrow = append(f.bndArrow, local.Arrow[gbl-lo])
		}
	}
	f.localTopCoupling = local.TopCoupling
	f.localTip = local.Tip
	return nil
}

// assembleAndFactorReduced gathers every rank's boundary contributions on
// rank 0, assembles the 2P−2-block reduced BTA system, and factorizes it.
func (f *DistFactor) assembleAndFactorReduced(c *comm.Comm, local *LocalBTA) error {
	p, rank := f.p, f.rank
	nr := reducedSize(p)
	hasArrow := f.a > 0

	if rank != 0 {
		// Ship boundary contributions to rank 0.
		for i, d := range f.bndDiag {
			c.SendMatrix(0, tagDiag+i, d)
		}
		c.SendMatrix(0, tagCoupling, f.localTopCoupling)
		if f.fill != nil {
			c.SendMatrix(0, tagCoupling+1, f.fill)
		}
		if hasArrow {
			for i, a := range f.bndArrow {
				c.SendMatrix(0, tagArrow+i, a)
			}
			c.SendMatrix(0, tagTip, f.tipDelta)
		}
		f.recvReducedNothing()
		return nil
	}

	red := f.newReduced(nr)
	// Rank 0's own contribution: bottom boundary at reduced index 0.
	red.Diag[0].CopyFrom(f.bndDiag[0])
	if hasArrow {
		red.Arrow[0].CopyFrom(f.bndArrow[0])
		red.Tip.CopyFrom(f.localTip)
		red.Tip.Add(1, f.tipDelta)
	}
	for r := 1; r < p; r++ {
		top := reducedIndexTop(r)
		topCoupling := c.RecvMatrix(r, tagCoupling)
		red.Lower[top-1].CopyFrom(topCoupling) // (lo_r, hi_{r−1})
		if r < p-1 {
			red.Diag[top].CopyFrom(c.RecvMatrix(r, tagDiag))
			red.Diag[top+1].CopyFrom(c.RecvMatrix(r, tagDiag+1))
			fill := c.RecvMatrix(r, tagCoupling+1)
			red.Lower[top].CopyFrom(fill.T()) // (hi_r, lo_r) = fillᵀ
			if hasArrow {
				red.Arrow[top].CopyFrom(c.RecvMatrix(r, tagArrow))
				red.Arrow[top+1].CopyFrom(c.RecvMatrix(r, tagArrow+1))
			}
		} else {
			red.Diag[top].CopyFrom(c.RecvMatrix(r, tagDiag))
			if hasArrow {
				red.Arrow[top].CopyFrom(c.RecvMatrix(r, tagArrow))
			}
		}
		if hasArrow {
			red.Tip.Add(1, c.RecvMatrix(r, tagTip))
		}
	}
	var err error
	c.Compute(func() {
		err = factorizeInPlace(red)
		if err == nil {
			f.reduced = &Factor{N: red.N, B: red.B, A: red.A,
				Diag: red.Diag, Lower: red.Lower, Arrow: red.Arrow, Tip: red.Tip}
		} else if f.scr != nil {
			// Failed reduced factorization: hand the (recycled) storage
			// straight back rather than dropping it with the dead factor.
			f.scr.red = red
		}
	})
	return err
}

// recvReducedNothing is a placeholder synchronization for non-root ranks —
// the reduced factorization is sequential on rank 0 by design (mirroring
// Serinv); other ranks simply proceed to the next collective.
func (f *DistFactor) recvReducedNothing() {}

// shareLogDet computes log|A| collectively: interior contributions from all
// ranks plus the reduced factor's log-determinant from rank 0.
func (f *DistFactor) shareLogDet(c *comm.Comm) {
	var localSum float64
	for _, lk := range f.l {
		for i := 0; i < f.b; i++ {
			localSum += logOf(lk.At(i, i))
		}
	}
	localSum *= 2
	if f.rank == 0 && f.reduced != nil {
		localSum += f.reduced.LogDet()
	}
	total := c.AllReduceSum([]float64{localSum})
	f.logDet = total[0]
}
