package bta

import (
	"fmt"
	"math"
	"sync"

	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/sched"
)

func logOf(v float64) float64 { return math.Log(v) }

// Message tags used by the distributed routines. Bases are spaced so the
// tag+i arithmetic of multi-part transfers cannot collide across kinds.
// A rank owning several partitions (the hybrid two-level topology) reuses
// the same tags for each of them: both sides walk the owned partitions in
// the same order and mailboxes deliver per-tag FIFO, so the pairing stays
// deterministic without widening the tag space.
const (
	tagDiag     = 100 // +0, +1: boundary diagonal blocks
	tagCoupling = 110 // +0: cross-partition coupling, +1: within-partition fill
	tagArrow    = 120 // +0, +1: boundary arrow blocks
	tagTip      = 130
	tagRhs      = 140
	tagSol      = 150
	tagSig      = 160 // +0..+5: scattered Σ boundary blocks
)

// LocalBTA is one rank's slice of a global BTA matrix under the time-domain
// partitioning: the diagonal, sub-diagonal, and arrow blocks of the owned
// block range plus the coupling to the previous rank. The arrow tip is
// carried by rank 0 only (it is globally shared and enters the reduced
// system exactly once).
//
// Under the hybrid two-level topology a rank models a multi-stream node and
// owns several consecutive partitions of the global partition list; Sub
// records them (global block ranges). A nil/single-entry Sub is the flat
// one-partition-per-rank configuration.
type LocalBTA struct {
	Part    Partition   // the rank's whole owned block range
	Sub     []Partition // owned partitions; nil ⇒ flat (Sub = [Part])
	Streams []int       // global per-rank stream counts; nil ⇒ uniform len(Sub) everywhere
	NGlobal int
	B, A    int

	Diag        []*dense.Matrix // blocks Lo..Hi
	Lower       []*dense.Matrix // couplings (k+1,k) for k = Lo..Hi−1
	TopCoupling *dense.Matrix   // block (Lo, Lo−1); nil on rank 0
	Arrow       []*dense.Matrix // blocks (a, Lo..Hi); empty when A == 0
	Tip         *dense.Matrix   // original tip; required on rank 0, ignored elsewhere
}

// LocalSlice extracts rank's partition from a globally assembled matrix
// (tests and single-host experiment drivers; at paper scale each rank would
// assemble its slice directly).
func LocalSlice(g *Matrix, parts []Partition, rank int) *LocalBTA {
	l := NewLocalBTA(parts[rank], g.N, g.B, g.A, rank)
	l.FillFrom(g)
	return l
}

// LocalSliceNode is LocalSlice for the hybrid two-level topology: parts is
// the global partition list of ranks·perRank entries, and the returned
// slice covers rank's perRank consecutive partitions.
func LocalSliceNode(g *Matrix, parts []Partition, rank, perRank int) *LocalBTA {
	l := NewLocalBTANode(parts, rank, perRank, g.N, g.B, g.A)
	l.FillFrom(g)
	return l
}

// NewLocalBTA allocates a zeroed local slice workspace for one rank's
// partition, refillable with FillFrom. The factorization consumes the
// slice blocks as workspace, so a slice refilled every INLA iteration gives
// the distributed path the same fixed memory footprint as the sequential
// Refactorize loop.
func NewLocalBTA(part Partition, nGlobal, b, a, rank int) *LocalBTA {
	return newLocalBTA(part, nil, nGlobal, b, a, rank)
}

// NewLocalBTANode allocates the local slice of a rank under the hybrid
// two-level topology: the global partition list parts has ranks·perRank
// entries and rank owns the perRank consecutive partitions starting at
// rank·perRank.
func NewLocalBTANode(parts []Partition, rank, perRank, nGlobal, b, a int) *LocalBTA {
	if perRank < 1 {
		perRank = 1
	}
	owned := append([]Partition(nil), parts[rank*perRank:(rank+1)*perRank]...)
	span := Partition{Lo: owned[0].Lo, Hi: owned[len(owned)-1].Hi}
	return newLocalBTA(span, owned, nGlobal, b, a, rank)
}

// NewLocalBTAHybrid allocates the local slice of a rank under an arbitrary
// per-rank stream layout: counts[r] is rank r's stream count and the global
// partition list (e.g. from HybridPartition) assigns each rank its counts[r]
// consecutive partitions. Unequal counts are allowed — the factorization
// derives the global partition indexing from the recorded layout. The
// layout is validated here (these are the entry points for externally
// constructed layouts), so a mismatched parts/counts pair errors instead of
// slicing out of range.
func NewLocalBTAHybrid(parts []Partition, counts []int, rank, nGlobal, b, a int) (*LocalBTA, error) {
	if rank < 0 || rank >= len(counts) {
		return nil, fmt.Errorf("bta: rank %d outside the %d-entry stream layout", rank, len(counts))
	}
	total := 0
	for r, q := range counts {
		if q < 1 {
			return nil, fmt.Errorf("bta: rank %d stream count %d < 1", r, q)
		}
		total += q
	}
	if total != len(parts) {
		return nil, fmt.Errorf("bta: stream layout covers %d partitions, partition list has %d", total, len(parts))
	}
	base := 0
	for r := 0; r < rank; r++ {
		base += counts[r]
	}
	owned := append([]Partition(nil), parts[base:base+counts[rank]]...)
	span := Partition{Lo: owned[0].Lo, Hi: owned[len(owned)-1].Hi}
	l := newLocalBTA(span, owned, nGlobal, b, a, rank)
	l.Streams = append([]int(nil), counts...)
	return l, nil
}

// LocalSliceHybrid is LocalSlice for an arbitrary per-rank stream layout.
func LocalSliceHybrid(g *Matrix, parts []Partition, counts []int, rank int) (*LocalBTA, error) {
	l, err := NewLocalBTAHybrid(parts, counts, rank, g.N, g.B, g.A)
	if err != nil {
		return nil, err
	}
	l.FillFrom(g)
	return l, nil
}

func newLocalBTA(span Partition, sub []Partition, nGlobal, b, a, rank int) *LocalBTA {
	l := &LocalBTA{Part: span, Sub: sub, NGlobal: nGlobal, B: b, A: a}
	size := span.Size()
	l.Diag = make([]*dense.Matrix, size)
	if size > 1 {
		l.Lower = make([]*dense.Matrix, size-1)
	}
	for i := 0; i < size; i++ {
		l.Diag[i] = dense.New(b, b)
		if i < size-1 {
			l.Lower[i] = dense.New(b, b)
		}
	}
	if span.Lo > 0 {
		l.TopCoupling = dense.New(b, b)
	}
	if a > 0 {
		l.Arrow = make([]*dense.Matrix, size)
		for i := range l.Arrow {
			l.Arrow[i] = dense.New(a, b)
		}
		if rank == 0 {
			l.Tip = dense.New(a, a)
		}
	}
	return l
}

// FillFrom refills the slice from a globally assembled matrix without
// allocating — the per-θ workspace-reuse primitive of the distributed
// evaluation loop.
func (l *LocalBTA) FillFrom(g *Matrix) {
	for k := l.Part.Lo; k <= l.Part.Hi; k++ {
		l.Diag[k-l.Part.Lo].CopyFrom(g.Diag[k])
		if k < l.Part.Hi {
			l.Lower[k-l.Part.Lo].CopyFrom(g.Lower[k])
		}
		if g.A > 0 {
			l.Arrow[k-l.Part.Lo].CopyFrom(g.Arrow[k])
		}
	}
	if l.Part.Lo > 0 {
		l.TopCoupling.CopyFrom(g.Lower[l.Part.Lo-1])
	}
	if g.A > 0 && l.Tip != nil {
		l.Tip.CopyFrom(g.Tip)
	}
}

// distPart is one owned partition's slice of the distributed factor state:
// the partitionElim outputs, the fill-chain blocks handed to it, the
// boundary blocks after elimination, and the partition's Schur tip
// accumulator. Under the hybrid topology a rank holds several of these and
// sweeps them concurrently (its simulated streams).
type distPart struct {
	part   Partition
	global int // global partition index
	off    int // block offset of part.Lo within the rank's local span

	interior []int // global block indices, elimination order

	l, gNext, gTop, gArr []*dense.Matrix
	chain                []*dense.Matrix // fill blocks predrawn for partitionElim
	fill                 *dense.Matrix
	tipDelta             *dense.Matrix

	bndDiag, bndArrow []*dense.Matrix
	topCoupling       *dense.Matrix // original coupling (Lo, Lo−1); nil for partition 0

	shadow *elimShadow32 // fp32 sweep arena (PrecMixed only)

	err error
}

// solveCore builds the shared partition-relative solve core over the
// partition's elimination outputs.
func (dp *distPart) solveCore(b int) partitionSolve {
	return partitionSolve{
		L: dp.l, GNext: dp.gNext, GTop: dp.gTop, GArr: dp.gArr,
		Interiors: dp.interior, Base: dp.part.Lo, B: b,
	}
}

// DistFactor is the outcome of PPOBTAF: rank-local interior factor data for
// every owned partition plus the factorized reduced system on rank 0. It
// supports the distributed triangular solve (PPOBTAS), selected inversion
// (PPOBTASI), and the collective log-determinant.
type DistFactor struct {
	span        Partition // the rank's whole owned block range
	rank, ranks int
	perRank     int   // partitions owned by THIS rank (its stream width)
	counts      []int // per-rank stream counts (len ranks)
	base        []int // per-rank first global partition index (len ranks)
	p           int   // total partitions = Σ counts
	nGlobal     int
	b, a        int
	opts        DistOptions

	parts []*distPart

	localTip *dense.Matrix // original tip (rank 0)

	redM     *Matrix        // assembled reduced system storage (rank 0, p > 1)
	red      *reducedEngine // rank 0 only (also the p == 1 full-system factor)
	frontier redFrontier    // pipelined incremental reduced factorization (rank 0)
	logDet   float64        // full log-determinant, replicated on all ranks

	low        bool // interior factor blocks came from the fp32 sweeps
	lastRefine int  // corrections of the most recent PPOBTASRefined

	// Multi-stream gang state (task-DAG mode): prebuilt task nodes and
	// per-stream bodies, built on first runOwned and reused every call so
	// the per-step allocation count stays constant.
	gangEx    *sched.Executor
	gangGroup sched.Group
	gangTasks []sched.Task
	gangFns   []func()
	gangBody  func(j int)

	scr *DistScratch // optional recycled storage (PPOBTAFScratch)
}

// DistOptions configures the distributed factorization beyond the topology
// carried by the local slice.
type DistOptions struct {
	// Reduced configures rank 0's reduced boundary system: recursive
	// nesting (a nested shared-memory gang factorizes the 2P−2 system when
	// it is wide enough) and the pipelined boundary handoff (rank 0
	// interleaves reduced elimination with the arrival of later ranks'
	// boundary contributions instead of idling until the last one lands).
	Reduced ReducedOptions
	// Precision selects the per-stage precision policy: under PrecMixed the
	// rank-local interior sweeps run fp32 (with fp64 fallback on lost
	// definiteness) while the reduced boundary system on rank 0 stays fp64,
	// and PPOBTASRefined recovers fp64 solves via residual correction. With
	// a single global partition there are no interior sweeps and the policy
	// degenerates to pure fp64. All ranks must pass the same value.
	Precision Precision
	// MaxRefine caps the fp64 residual corrections per PPOBTASRefined call
	// (0 = DefaultMaxRefine).
	MaxRefine int
	// PhaseBarrier forces the legacy fresh-goroutine stream gangs (and a
	// phase-barrier nested reduced engine) instead of scheduling the
	// node's streams as tasks on the shared work-stealing executor. All
	// ranks must pass the same value.
	PhaseBarrier bool
}

// sweepScratch is one owned partition's preallocated selected-inversion
// sweep workspace (the partitionSweep temporaries).
type sweepScratch struct {
	gN, gT, gA, tmpB *dense.Matrix
	loBuf            [2]*dense.Matrix
}

// distSolveScratch recycles the PPOBTAS vector workspaces across INLA
// iterations: the rank-local solution buffer, the per-partition forward tip
// accumulators, and the reduced-system staging vectors on rank 0.
type distSolveScratch struct {
	y       []float64   // rank-local solution workspace
	tips    [][]float64 // per owned partition forward tip accumulators
	tipSum  []float64   // node-level tip contribution
	payload []float64   // boundary-rhs staging
	red     []float64   // rank 0: reduced right-hand side
	sol     []float64   // rank 0: per-peer solution staging
	xTip    []float64   // replicated tip solution
	full    []float64   // p == 1 full-system workspace

	// PPOBTASRefined workspaces: the replicated full-length solution,
	// residual and correction vectors, plus the owned-span staging buffer.
	xFull, rFull, dxFull, rhsSpan []float64
}

// DistScratch recycles the per-factorization block allocations of the
// distributed path (fill-coupling chains, tip deltas, reduced system) and
// the solve/selected-inversion workspaces across INLA iterations, so the
// rank-local compute between communication calls is allocation-free after
// warmup — matching the shared-memory engines. Usage: pass it to
// PPOBTAFScratch; when the factor is no longer needed — before the next
// factorization — call Reclaim on it.
type DistScratch struct {
	bb  []*dense.Matrix // spare b×b blocks
	aa  []*dense.Matrix // spare a×a tip deltas
	red *Matrix         // spare reduced system (rank 0)

	solve  distSolveScratch
	sweep  []*sweepScratch // per owned partition
	sigma  *LocalSigma     // recycled Σ output storage (PPOBTASI)
	redSig *Matrix         // rank 0: recycled reduced selected inverse
	redEng *reducedEngine  // rank 0: recycled reduced engine (nested gang incl.)

	// shadows holds per-owned-partition fp32 sweep arenas (PrecMixed);
	// partition shapes are fixed across INLA refits, so these persist.
	shadows []*elimShadow32
}

func (s *DistScratch) popBB() *dense.Matrix {
	if n := len(s.bb); n > 0 {
		m := s.bb[n-1]
		s.bb = s.bb[:n-1]
		return m
	}
	return nil
}

// Reclaim returns a dead factor's recycled blocks to the scratch. The
// factor must not be used afterwards.
func (s *DistScratch) Reclaim(f *DistFactor) {
	if f == nil {
		return
	}
	for _, dp := range f.parts {
		// The predrawn chain covers every fill block the elimination handed
		// out (gTop entries and the parked/unconsumed fill alike), so the
		// chain returns wholesale — nothing can leak on failed sweeps.
		s.bb = append(s.bb, dp.chain...)
		dp.chain = nil
		if dp.tipDelta != nil {
			s.aa = append(s.aa, dp.tipDelta)
			dp.tipDelta = nil
		}
	}
	if f.redM != nil && f.p > 1 {
		s.red = f.redM
		f.redM = nil
	}
}

// newBB returns a b×b working block, recycled when scratch is attached.
func (f *DistFactor) newBB() *dense.Matrix {
	if f.scr != nil {
		if m := f.scr.popBB(); m != nil {
			return m
		}
	}
	return dense.New(f.b, f.b)
}

// newTipDelta returns a zeroed a×a accumulator block.
func (f *DistFactor) newTipDelta() *dense.Matrix {
	if f.scr != nil {
		if n := len(f.scr.aa); n > 0 {
			m := f.scr.aa[n-1]
			f.scr.aa = f.scr.aa[:n-1]
			m.Zero()
			return m
		}
	}
	return dense.New(f.a, f.a)
}

// newReduced returns reduced-system storage for nr blocks, zeroed.
func (f *DistFactor) newReduced(nr int) *Matrix {
	if f.scr != nil && f.scr.red != nil && f.scr.red.N == nr && f.scr.red.B == f.b && f.scr.red.A == f.a {
		red := f.scr.red
		f.scr.red = nil
		for i := 0; i < red.N; i++ {
			red.Diag[i].Zero()
			if i < red.N-1 {
				red.Lower[i].Zero()
			}
			if red.A > 0 {
				red.Arrow[i].Zero()
			}
		}
		if red.A > 0 {
			red.Tip.Zero()
		}
		return red
	}
	return NewMatrix(nr, f.b, f.a)
}

// solveScratch returns the recycled solve arena, or a throwaway one when
// the factor carries no scratch.
func (f *DistFactor) solveScratch() *distSolveScratch {
	if f.scr != nil {
		return &f.scr.solve
	}
	return &distSolveScratch{}
}

// growF returns buf resized to n values, reusing its backing when possible.
func growF(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// sweepScratchFor returns owned partition j's selected-inversion sweep
// workspace, allocating (into the recycled arena when attached) on first
// use. Must be called outside the partition gang — growth is not
// synchronized.
func (f *DistFactor) sweepScratchFor(j int) *sweepScratch {
	var ws *sweepScratch
	if f.scr != nil {
		for len(f.scr.sweep) <= j {
			f.scr.sweep = append(f.scr.sweep, &sweepScratch{})
		}
		ws = f.scr.sweep[j]
	} else {
		ws = &sweepScratch{}
	}
	b, a := f.b, f.a
	if ws.gN == nil || ws.gN.Rows != b {
		ws.gN, ws.tmpB = dense.New(b, b), dense.New(b, b)
		ws.gT, ws.gA = nil, nil
		ws.loBuf = [2]*dense.Matrix{}
	}
	if f.parts[j].global != 0 && ws.gT == nil {
		ws.gT = dense.New(b, b)
		ws.loBuf[0], ws.loBuf[1] = dense.New(b, b), dense.New(b, b)
	}
	if a > 0 && (ws.gA == nil || ws.gA.Rows != a || ws.gA.Cols != b) {
		ws.gA = dense.New(a, b)
	}
	return ws
}

// Part returns the factor's whole owned block range.
func (f *DistFactor) Part() Partition { return f.span }

// PerRank returns the node's stream width (owned partitions per rank).
func (f *DistFactor) PerRank() int { return f.perRank }

// LogDet returns log|A| (already replicated across ranks by PPOBTAF).
func (f *DistFactor) LogDet() float64 { return f.logDet }

// Low reports whether the interior factor blocks came from the fp32 sweeps
// (PrecMixed with more than one global partition).
func (f *DistFactor) Low() bool { return f.low }

// LastRefineIters reports the fp64 residual corrections of the most recent
// PPOBTASRefined call on this factor (0 before any, or after an unrefined
// solve).
func (f *DistFactor) LastRefineIters() int { return f.lastRefine }

// runOwned executes body for every owned partition — concurrently when the
// rank models a multi-stream node (perRank > 1), inline otherwise. Callers
// wrap it in comm.Compute, the simulator's timing hook: the measured wall
// time of the whole gang is what gets charged to the rank's virtual clock,
// i.e. one node-level makespan rather than a per-stream sum.
func (f *DistFactor) runOwned(body func(j int)) {
	if len(f.parts) == 1 {
		body(0)
		return
	}
	if f.opts.PhaseBarrier {
		var wg sync.WaitGroup
		for j := range f.parts {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				body(j)
			}(j)
		}
		wg.Wait()
		return
	}
	// Task-DAG mode: the node's streams become tasks on the shared
	// executor (prebuilt bodies, built on first use, reused every call),
	// with stream 0 on the calling goroutine which then help-joins. The
	// comm.Compute wall-time charging around the caller is unchanged: the
	// gang's makespan is still one node-level compute interval.
	if f.gangTasks == nil {
		f.gangEx = sched.Shared()
		f.gangGroup.Init(f.gangEx)
		f.gangTasks = make([]sched.Task, len(f.parts))
		f.gangFns = make([]func(), len(f.parts))
		for j := 1; j < len(f.parts); j++ {
			j := j
			f.gangFns[j] = func() { f.gangBody(j) }
		}
	}
	f.gangBody = body
	l := f.gangEx.AcquireLane()
	f.gangGroup.Add(len(f.parts) - 1)
	for j := 1; j < len(f.parts); j++ {
		f.gangTasks[j].Reset(f.gangEx, &f.gangGroup, f.gangFns[j], nil)
		l.Spawn(&f.gangTasks[j])
	}
	body(0)
	f.gangGroup.Wait(l)
	f.gangEx.ReleaseLane(l)
	f.gangBody = nil
}

// tipSum folds the owned partitions' Schur tip accumulators into the
// first one and returns it (the node-level arrow contribution).
func (f *DistFactor) tipSum() *dense.Matrix {
	t := f.parts[0].tipDelta
	for _, dp := range f.parts[1:] {
		t.Add(1, dp.tipDelta)
	}
	return t
}

// PPOBTAF performs the distributed BTA Cholesky factorization over the
// time-domain partitioning (the Serinv-style nested-dissection scheme):
// every rank eliminates the interiors of its owned partitions concurrently
// — non-first partitions run the costlier two-sided elimination that also
// updates their top boundary — then rank 0 assembles and factorizes the
// reduced block-tridiagonal-arrowhead system over the 2P−2 boundary blocks,
// where P = ranks·partitions-per-rank is the total partition count of the
// two-level topology.
//
// Must be called collectively by all ranks of c with consistent local
// slices (including a consistent Sub width). The local input is consumed
// (its blocks are used as workspace).
func PPOBTAF(c *comm.Comm, local *LocalBTA) (*DistFactor, error) {
	return PPOBTAFScratch(c, local, nil)
}

// PPOBTAFScratch is PPOBTAF with recycled storage: the fill-coupling
// chains, tip deltas and reduced system are drawn from scr (which the
// caller refills via DistScratch.Reclaim on the previous iteration's
// factor) instead of freshly allocated, and the factor's solve and
// selected-inversion paths reuse scr's workspaces. scr may be nil.
func PPOBTAFScratch(c *comm.Comm, local *LocalBTA, scr *DistScratch) (*DistFactor, error) {
	return PPOBTAFOpts(c, local, scr, DistOptions{})
}

// PPOBTAFOpts is PPOBTAFScratch with the reduced-system engine configured:
// recursion depth/crossover for rank 0's reduced factorization and the
// pipelined boundary handoff. All ranks must pass identical options.
//
// A communication fault mid-factorization (a dead peer, a revoked
// communicator, a receive timeout) aborts the evaluation cleanly: the
// partially built factor's recycled blocks flow back to the scratch, no
// gang goroutines are left running (the compute gangs complete before any
// communication call), and the fault is returned as a wrapped error the
// driver can test with comm.Retryable.
func PPOBTAFOpts(c *comm.Comm, local *LocalBTA, scr *DistScratch, opts DistOptions) (f *DistFactor, err error) {
	defer func() {
		if r := recover(); r != nil {
			fe := comm.FaultOf(r)
			if fe == nil {
				panic(r)
			}
			if scr != nil {
				scr.Reclaim(f)
			}
			f = nil
			err = fmt.Errorf("bta: distributed factorization aborted: %w", fe)
		}
	}()
	opts.Reduced = opts.Reduced.normalize()
	ranks := c.Size()
	rank := c.Rank()
	sub := local.Sub
	if len(sub) == 0 {
		sub = []Partition{local.Part}
	}
	q := len(sub)
	counts := local.Streams
	if counts == nil {
		// Uniform layout: every rank runs this rank's stream width. The two
		// O(ranks) layout slices below are part of the tolerated per-cycle
		// constant (like the message layer) — the alloc pins check growth
		// with nt, not ranks.
		counts = make([]int, ranks)
		for r := range counts {
			counts[r] = q
		}
	} else if len(counts) != ranks {
		return nil, fmt.Errorf("bta: rank %d stream layout has %d entries for %d ranks", rank, len(counts), ranks)
	} else if counts[rank] != q {
		return nil, fmt.Errorf("bta: rank %d owns %d partitions but the stream layout records %d", rank, q, counts[rank])
	}
	base := make([]int, ranks)
	p := 0
	for r := 0; r < ranks; r++ {
		base[r] = p
		p += counts[r]
	}
	f = &DistFactor{
		span: local.Part, rank: rank, ranks: ranks, perRank: q,
		counts: counts, base: base, p: p,
		nGlobal: local.NGlobal, b: local.B, a: local.A,
		opts: opts,
		scr:  scr,
	}
	f.parts = make([]*distPart, q)
	for j, part := range sub {
		g := base[rank] + j
		f.parts[j] = &distPart{
			part: part, global: g, off: part.Lo - f.span.Lo,
			interior: interiors(part, g, p),
		}
	}
	if p == 1 {
		return ppobtafSingle(c, local, f)
	}

	// Error handling is collective: a failed Cholesky on any rank (an
	// infeasible hyperparameter configuration in the INLA loop) must not
	// leave peers blocked in a collective, so ranks agree on success after
	// each phase.
	var elimErr error
	c.Compute(func() { elimErr = f.eliminateInteriors(local) })
	if anyFailed(c, elimErr) {
		// The dead partial factor's recycled blocks must flow back to the
		// scratch: infeasible θ points are routine in the INLA mode search,
		// and dropping the chains on every failure would reintroduce
		// per-evaluation allocation churn.
		if scr != nil {
			scr.Reclaim(f)
		}
		if elimErr != nil {
			return nil, elimErr
		}
		return nil, fmt.Errorf("bta: rank %d: a peer rank failed local elimination", rank)
	}
	redErr := f.assembleAndFactorReduced(c, local)
	if anyFailed(c, redErr) {
		if scr != nil {
			scr.Reclaim(f)
		}
		if redErr != nil {
			return nil, redErr
		}
		return nil, fmt.Errorf("bta: rank %d: reduced-system factorization failed", rank)
	}
	f.shareLogDet(c)
	// With a single global partition (handled above) there are no interior
	// sweeps, so only the multi-partition path can carry a low factor.
	f.low = opts.Precision == PrecMixed
	return f, nil
}

// anyFailed reports collectively whether any rank observed an error.
func anyFailed(c *comm.Comm, err error) bool {
	flag := 0.0
	if err != nil {
		flag = 1
	}
	return c.AllReduceMax([]float64{flag})[0] > 0
}

// ppobtafSingle is the P == 1 fallback: plain sequential factorization
// presented through the distributed interface.
func ppobtafSingle(c *comm.Comm, local *LocalBTA, f *DistFactor) (*DistFactor, error) {
	g := &Matrix{N: local.NGlobal, B: local.B, A: local.A,
		Diag: local.Diag, Lower: local.Lower, Arrow: local.Arrow, Tip: local.Tip}
	var seq *Factor
	var err error
	c.Compute(func() {
		err = factorizeInPlace(g)
		seq = &Factor{N: g.N, B: g.B, A: g.A, Diag: g.Diag, Lower: g.Lower, Arrow: g.Arrow, Tip: g.Tip}
	})
	if err != nil {
		return nil, err
	}
	f.red = seqReducedEngine(seq)
	f.parts[0].interior = nil
	f.logDet = seq.LogDet()
	return f, nil
}

// reducedEngineFor returns rank 0's reduced-system engine, recycled from
// the scratch when it matches the topology and options (the nested gang of
// a recursive engine is construction-time storage, exactly like the fill
// chains).
func (f *DistFactor) reducedEngineFor(red *Matrix, nr int) (*reducedEngine, error) {
	if f.scr != nil && f.scr.redEng.matches(nr, f.b, f.a, f.opts.Reduced) {
		return f.scr.redEng, nil
	}
	eng, err := newReducedEngine(red, f.opts.Reduced, f.opts.PhaseBarrier)
	if err != nil {
		return nil, err
	}
	if f.scr != nil {
		f.scr.redEng = eng
	}
	return eng, nil
}

// eliminateInteriors runs the rank-local phase of PPOBTAF: every owned
// partition's interior elimination through the shared partitionElim core —
// the same core the shared-memory ParallelFactor drives — with the owned
// partitions swept concurrently when the rank models a multi-stream node.
func (f *DistFactor) eliminateInteriors(local *LocalBTA) error {
	hasArrow := f.a > 0
	// Predraw every partition's fill chain and tip accumulator before the
	// gang launches: the scratch pools are not synchronized.
	for _, dp := range f.parts {
		if dp.global > 0 {
			need := len(dp.interior) + 1
			dp.chain = make([]*dense.Matrix, need)
			for i := range dp.chain {
				dp.chain[i] = f.newBB()
			}
		}
		if hasArrow {
			dp.tipDelta = f.newTipDelta()
		}
		nInt := len(dp.interior)
		dp.l = make([]*dense.Matrix, 0, nInt)
		dp.gNext = make([]*dense.Matrix, 0, nInt)
		dp.gTop = make([]*dense.Matrix, 0, nInt)
		dp.gArr = make([]*dense.Matrix, 0, nInt)
	}
	// Shadow arenas for the fp32 sweeps, persistent across refits (the
	// partition shapes are fixed): allocated here, outside the gang.
	if f.opts.Precision == PrecMixed {
		for j, dp := range f.parts {
			size := dp.part.Size()
			nChain := 0
			if dp.global > 0 {
				nChain = len(dp.interior) + 1
			}
			var sh *elimShadow32
			if f.scr != nil {
				for len(f.scr.shadows) <= j {
					f.scr.shadows = append(f.scr.shadows, nil)
				}
				sh = f.scr.shadows[j]
			}
			if !sh.fits(size, nChain, f.b, f.a) {
				sh = newElimShadow32(size, nChain, f.b, f.a)
				if f.scr != nil {
					f.scr.shadows[j] = sh
				}
			}
			dp.shadow = sh
		}
	}
	f.runOwned(func(j int) { f.parts[j].err = f.elimOwned(local, j) })
	for _, dp := range f.parts {
		if dp.err != nil {
			return dp.err
		}
	}
	f.localTip = local.Tip
	return nil
}

// elimOwned eliminates one owned partition's interiors and records its
// boundary state.
func (f *DistFactor) elimOwned(local *LocalBTA, j int) error {
	dp := f.parts[j]
	off, size := dp.off, dp.part.Size()
	used := 0
	pe := partitionElim{
		Diag:      local.Diag[off : off+size],
		Lower:     local.Lower[off : off+size-1],
		Interiors: dp.interior,
		Base:      dp.part.Lo,
		TwoSided:  dp.global != 0,
		NewBB: func() *dense.Matrix {
			m := dp.chain[used]
			used++
			return m
		},
		Kind: "rank", ID: f.rank,
		L: dp.l, GNext: dp.gNext, GTop: dp.gTop, GArr: dp.gArr,
		Prec: f.opts.Precision, Shadow: dp.shadow,
	}
	if f.a > 0 {
		pe.Arrow = local.Arrow[off : off+size]
		pe.TipDelta = dp.tipDelta
	}
	err := pe.run()
	// Transfer the sweep outputs even on failure: the elimination state must
	// stay reachable for DistScratch.Reclaim.
	dp.l, dp.gNext, dp.gTop, dp.gArr, dp.fill = pe.L, pe.GNext, pe.GTop, pe.GArr, pe.Fill
	if err != nil {
		return err
	}

	// Record boundary state.
	for _, gbl := range boundaries(dp.part, dp.global, f.p) {
		dp.bndDiag = append(dp.bndDiag, local.Diag[gbl-f.span.Lo])
		if f.a > 0 {
			dp.bndArrow = append(dp.bndArrow, local.Arrow[gbl-f.span.Lo])
		}
	}
	if dp.global > 0 {
		if off == 0 {
			dp.topCoupling = local.TopCoupling // coupling to the previous rank
		} else {
			dp.topCoupling = local.Lower[off-1] // rank-internal partition border
		}
	}
	return nil
}

// assembleAndFactorReduced gathers every partition's boundary contributions
// on rank 0, assembles the 2P−2-block reduced BTA system, and hands it to
// the reduced engine. With the pipelined handoff rank 0 interleaves reduced
// elimination with the arrival of later ranks' contributions; otherwise it
// assembles eagerly and factorizes once everything landed (the historical
// path, bit for bit).
func (f *DistFactor) assembleAndFactorReduced(c *comm.Comm, local *LocalBTA) error {
	nr := reducedSize(f.p)
	hasArrow := f.a > 0

	if f.rank != 0 {
		// Ship boundary contributions to rank 0, one partition at a time in
		// owned order (the receiver walks the same order). The sends are
		// eager, so each partition's contribution is in flight the moment
		// the node gang produced it — the streaming half of the handoff.
		for _, dp := range f.parts {
			for i, d := range dp.bndDiag {
				c.SendMatrix(0, tagDiag+i, d)
			}
			c.SendMatrix(0, tagCoupling, dp.topCoupling)
			if dp.fill != nil {
				c.SendMatrix(0, tagCoupling+1, dp.fill)
			}
			if hasArrow {
				for i, am := range dp.bndArrow {
					c.SendMatrix(0, tagArrow+i, am)
				}
			}
		}
		if hasArrow {
			c.SendMatrix(0, tagTip, f.tipSum())
		}
		return nil
	}

	red := f.newReduced(nr)
	eng, err := f.reducedEngineFor(red, nr)
	if err != nil {
		return err
	}

	pipeline := f.opts.Reduced.Pipeline && !eng.recursing()
	var rf *redFrontier
	if pipeline {
		rf = &f.frontier
		rf.reset(red, f.p, nil)
	}

	// Rank 0's own partitions. The tip deltas of ALL owned partitions fold
	// here (eager path keeps its historical summation order; the frontier
	// path folds before any elimination step, which is equally fixed).
	dp0 := f.parts[0]
	red.Diag[0].CopyFrom(dp0.bndDiag[0])
	if hasArrow {
		red.Arrow[0].CopyFrom(dp0.bndArrow[0])
		red.Tip.CopyFrom(f.localTip)
		for _, dp := range f.parts {
			red.Tip.Add(1, dp.tipDelta)
		}
	}
	for _, dp := range f.parts[1:] {
		f.installReducedLocal(red, dp)
	}
	if pipeline {
		// Rank 0's own blocks are complete: start the reduced elimination
		// while remote ranks are still eliminating/sending.
		c.Compute(func() { rf.advance(f.base[0] + f.counts[0] - 1) })
	}

	// Remote ranks: receive each rank's partitions in its send order,
	// advancing the elimination frontier past each rank's blocks as they
	// land when pipelining.
	for r := 1; r < f.ranks; r++ {
		for jj := 0; jj < f.counts[r]; jj++ {
			g := f.base[r] + jj
			top := reducedIndexTop(g)
			red.Lower[top-1].CopyFrom(c.RecvMatrix(r, tagCoupling)) // (lo_g, hi_{g−1})
			red.Diag[top].CopyFrom(c.RecvMatrix(r, tagDiag))
			if g < f.p-1 {
				red.Diag[top+1].CopyFrom(c.RecvMatrix(r, tagDiag+1))
				fill := c.RecvMatrix(r, tagCoupling+1)
				fill.TransposeInto(red.Lower[top]) // (hi_g, lo_g) = fillᵀ
				if hasArrow {
					red.Arrow[top].CopyFrom(c.RecvMatrix(r, tagArrow))
					red.Arrow[top+1].CopyFrom(c.RecvMatrix(r, tagArrow+1))
				}
			} else if hasArrow {
				red.Arrow[top].CopyFrom(c.RecvMatrix(r, tagArrow))
			}
		}
		if hasArrow {
			red.Tip.Add(1, c.RecvMatrix(r, tagTip))
		}
		if pipeline {
			c.Compute(func() { rf.advance(f.base[r] + f.counts[r] - 1) })
		}
	}
	c.Compute(func() {
		if pipeline {
			eng.rebind(red)
			err = rf.finish()
		} else {
			err = eng.factorize(red)
		}
		if err == nil {
			f.redM = red
			f.red = eng
		} else if f.scr != nil {
			// Failed reduced factorization: hand the (recycled) storage
			// straight back rather than dropping it with the dead factor.
			f.scr.red = red
		}
	})
	return err
}

// installReducedLocal copies one of rank 0's own non-first partitions'
// boundary contributions into the reduced system (the message-free
// counterpart of the remote receive path).
func (f *DistFactor) installReducedLocal(red *Matrix, dp *distPart) {
	top := reducedIndexTop(dp.global)
	red.Lower[top-1].CopyFrom(dp.topCoupling)
	red.Diag[top].CopyFrom(dp.bndDiag[0])
	if dp.global < f.p-1 {
		red.Diag[top+1].CopyFrom(dp.bndDiag[1])
		dp.fill.TransposeInto(red.Lower[top])
		if f.a > 0 {
			red.Arrow[top].CopyFrom(dp.bndArrow[0])
			red.Arrow[top+1].CopyFrom(dp.bndArrow[1])
		}
	} else if f.a > 0 {
		red.Arrow[top].CopyFrom(dp.bndArrow[0])
	}
}

// shareLogDet computes log|A| collectively: interior contributions from all
// owned partitions plus the reduced factor's log-determinant from rank 0.
func (f *DistFactor) shareLogDet(c *comm.Comm) {
	var localSum float64
	for _, dp := range f.parts {
		for _, lk := range dp.l {
			for i := 0; i < f.b; i++ {
				localSum += logOf(lk.At(i, i))
			}
		}
	}
	localSum *= 2
	if f.rank == 0 && f.red != nil {
		localSum += f.red.logDet()
	}
	total := c.AllReduceSum([]float64{localSum})
	f.logDet = total[0]
}
