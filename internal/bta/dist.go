package bta

import (
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/dense"
)

func logOf(v float64) float64 { return math.Log(v) }

// Message tags used by the distributed routines. Bases are spaced so the
// tag+i arithmetic of multi-part transfers cannot collide across kinds.
const (
	tagDiag     = 100 // +0, +1: boundary diagonal blocks
	tagCoupling = 110 // +0: cross-partition coupling, +1: within-partition fill
	tagArrow    = 120 // +0, +1: boundary arrow blocks
	tagTip      = 130
	tagRhs      = 140
	tagSol      = 150
	tagSig      = 160 // +0..+5: scattered Σ boundary blocks
)

// LocalBTA is one rank's slice of a global BTA matrix under the time-domain
// partitioning: the diagonal, sub-diagonal, and arrow blocks of the owned
// block range plus the coupling to the previous partition. The arrow tip is
// carried by rank 0 only (it is globally shared and enters the reduced
// system exactly once).
type LocalBTA struct {
	Part    Partition
	NGlobal int
	B, A    int

	Diag        []*dense.Matrix // blocks Lo..Hi
	Lower       []*dense.Matrix // couplings (k+1,k) for k = Lo..Hi−1
	TopCoupling *dense.Matrix   // block (Lo, Lo−1); nil on rank 0
	Arrow       []*dense.Matrix // blocks (a, Lo..Hi); empty when A == 0
	Tip         *dense.Matrix   // original tip; required on rank 0, ignored elsewhere
}

// LocalSlice extracts rank's partition from a globally assembled matrix
// (tests and single-host experiment drivers; at paper scale each rank would
// assemble its slice directly).
func LocalSlice(g *Matrix, parts []Partition, rank int) *LocalBTA {
	part := parts[rank]
	l := &LocalBTA{Part: part, NGlobal: g.N, B: g.B, A: g.A}
	for k := part.Lo; k <= part.Hi; k++ {
		l.Diag = append(l.Diag, g.Diag[k].Clone())
		if k < part.Hi {
			l.Lower = append(l.Lower, g.Lower[k].Clone())
		}
		if g.A > 0 {
			l.Arrow = append(l.Arrow, g.Arrow[k].Clone())
		}
	}
	if part.Lo > 0 {
		l.TopCoupling = g.Lower[part.Lo-1].Clone()
	}
	if g.A > 0 && rank == 0 {
		l.Tip = g.Tip.Clone()
	}
	return l
}

// DistFactor is the outcome of PPOBTAF: rank-local interior factor data plus
// the factorized reduced system on rank 0. It supports the distributed
// triangular solve (PPOBTAS), selected inversion (PPOBTASI), and the
// collective log-determinant.
type DistFactor struct {
	part     Partition
	rank, p  int
	nGlobal  int
	b, a     int
	interior []int // global indices, elimination order

	l     []*dense.Matrix // chol of eliminated interior diagonals
	gNext []*dense.Matrix // (k+1, k) couplings, scaled; nil for final block of last partition
	gTop  []*dense.Matrix // (lo, k) fill couplings, scaled; nil on rank 0
	gArr  []*dense.Matrix // (a, k) couplings, scaled; nil when a == 0

	// boundary state after local elimination (inputs to the reduced system)
	bndDiag  []*dense.Matrix // updated boundary diagonal blocks
	bndArrow []*dense.Matrix
	fill     *dense.Matrix // M(lo, hi) for middle partitions
	tipDelta *dense.Matrix

	localTopCoupling *dense.Matrix // original coupling to previous partition
	localTip         *dense.Matrix // original tip (rank 0)

	reduced *Factor // rank 0 only
	logDet  float64 // full log-determinant, replicated on all ranks
}

// Part returns the factor's partition.
func (f *DistFactor) Part() Partition { return f.part }

// LogDet returns log|A| (already replicated across ranks by PPOBTAF).
func (f *DistFactor) LogDet() float64 { return f.logDet }

// PPOBTAF performs the distributed BTA Cholesky factorization over the
// time-domain partitioning (the Serinv-style nested-dissection scheme):
// every rank eliminates its interior blocks concurrently — non-first
// partitions run the costlier two-sided elimination that also updates their
// top boundary — then rank 0 assembles and factorizes the reduced
// block-tridiagonal-arrowhead system over the 2P−2 boundary blocks.
//
// Must be called collectively by all ranks of c with consistent local
// slices. The local input is consumed (its blocks are used as workspace).
func PPOBTAF(c *comm.Comm, local *LocalBTA) (*DistFactor, error) {
	p := c.Size()
	rank := c.Rank()
	f := &DistFactor{
		part: local.Part, rank: rank, p: p,
		nGlobal: local.NGlobal, b: local.B, a: local.A,
		interior: interiors(local.Part, rank, p),
	}
	if p == 1 {
		return ppobtafSingle(c, local, f)
	}

	// Error handling is collective: a failed Cholesky on any rank (an
	// infeasible hyperparameter configuration in the INLA loop) must not
	// leave peers blocked in a collective, so ranks agree on success after
	// each phase.
	var elimErr error
	c.Compute(func() { elimErr = f.eliminateInteriors(local) })
	if anyFailed(c, elimErr) {
		if elimErr != nil {
			return nil, elimErr
		}
		return nil, fmt.Errorf("bta: rank %d: a peer rank failed local elimination", rank)
	}
	redErr := f.assembleAndFactorReduced(c, local)
	if anyFailed(c, redErr) {
		if redErr != nil {
			return nil, redErr
		}
		return nil, fmt.Errorf("bta: rank %d: reduced-system factorization failed", rank)
	}
	f.shareLogDet(c)
	return f, nil
}

// anyFailed reports collectively whether any rank observed an error.
func anyFailed(c *comm.Comm, err error) bool {
	flag := 0.0
	if err != nil {
		flag = 1
	}
	return c.AllReduceMax([]float64{flag})[0] > 0
}

// ppobtafSingle is the P == 1 fallback: plain sequential factorization
// presented through the distributed interface.
func ppobtafSingle(c *comm.Comm, local *LocalBTA, f *DistFactor) (*DistFactor, error) {
	g := &Matrix{N: local.NGlobal, B: local.B, A: local.A,
		Diag: local.Diag, Lower: local.Lower, Arrow: local.Arrow, Tip: local.Tip}
	var seq *Factor
	var err error
	c.Compute(func() {
		err = factorizeInPlace(g)
		seq = &Factor{N: g.N, B: g.B, A: g.A, Diag: g.Diag, Lower: g.Lower, Arrow: g.Arrow, Tip: g.Tip}
	})
	if err != nil {
		return nil, err
	}
	f.reduced = seq
	f.interior = nil
	f.logDet = seq.LogDet()
	return f, nil
}

// eliminateInteriors runs the rank-local phase of PPOBTAF.
func (f *DistFactor) eliminateInteriors(local *LocalBTA) error {
	lo := local.Part.Lo
	hasArrow := f.a > 0
	twoSided := f.rank != 0

	// Working fill coupling M(lo, k): starts as the transpose of the
	// partition's first sub-diagonal block.
	var tCur *dense.Matrix
	if twoSided && len(local.Lower) > 0 {
		tCur = local.Lower[0].T()
	}
	if hasArrow {
		f.tipDelta = dense.New(f.a, f.a)
	}

	for _, k := range f.interior {
		rel := k - lo
		lk := local.Diag[rel]
		if err := dense.Potrf(lk); err != nil {
			return fmt.Errorf("bta: rank %d interior block %d: %w", f.rank, k, err)
		}
		lk.ZeroUpper()
		f.l = append(f.l, lk)

		var gNext, gTop, gArr *dense.Matrix
		if rel < len(local.Lower) { // a next block exists within the partition
			gNext = local.Lower[rel]
			dense.Trsm(dense.Right, dense.Trans, lk, gNext)
		}
		if twoSided {
			gTop = tCur
			dense.Trsm(dense.Right, dense.Trans, lk, gTop)
		}
		if hasArrow {
			gArr = local.Arrow[rel]
			dense.Trsm(dense.Right, dense.Trans, lk, gArr)
		}
		f.gNext = append(f.gNext, gNext)
		f.gTop = append(f.gTop, gTop)
		f.gArr = append(f.gArr, gArr)

		// Schur updates onto the remaining neighbours {k+1, lo, arrow}.
		if gNext != nil {
			dense.Syrk(dense.NoTrans, -1, gNext, 1, local.Diag[rel+1])
			local.Diag[rel+1].MirrorLowerToUpper()
		}
		if twoSided && gTop != nil {
			dense.Syrk(dense.NoTrans, -1, gTop, 1, local.Diag[0])
			local.Diag[0].MirrorLowerToUpper()
			if gNext != nil {
				tNext := dense.New(f.b, f.b)
				dense.Gemm(dense.NoTrans, dense.Trans, -1, gTop, gNext, 0, tNext)
				tCur = tNext
			} else {
				tCur = nil
			}
		}
		if hasArrow {
			if gNext != nil {
				dense.Gemm(dense.NoTrans, dense.Trans, -1, gArr, gNext, 1, local.Arrow[rel+1])
			}
			if twoSided && gTop != nil {
				dense.Gemm(dense.NoTrans, dense.Trans, -1, gArr, gTop, 1, local.Arrow[0])
			}
			dense.Syrk(dense.NoTrans, -1, gArr, 1, f.tipDelta)
			f.tipDelta.MirrorLowerToUpper()
		}
	}

	// Record boundary state.
	for _, gbl := range boundaries(local.Part, f.rank, f.p) {
		rel := gbl - lo
		f.bndDiag = append(f.bndDiag, local.Diag[rel])
		if hasArrow {
			f.bndArrow = append(f.bndArrow, local.Arrow[rel])
		}
	}
	if f.rank != 0 && f.rank != f.p-1 {
		// Middle partition: remaining coupling between its two boundaries.
		if len(f.interior) == 0 {
			// size-2 partition: original coupling, untouched
			f.fill = local.Lower[len(local.Lower)-1].T()
		} else {
			f.fill = tCur
		}
	}
	f.localTopCoupling = local.TopCoupling
	f.localTip = local.Tip
	return nil
}

// assembleAndFactorReduced gathers every rank's boundary contributions on
// rank 0, assembles the 2P−2-block reduced BTA system, and factorizes it.
func (f *DistFactor) assembleAndFactorReduced(c *comm.Comm, local *LocalBTA) error {
	p, rank := f.p, f.rank
	nr := reducedSize(p)
	hasArrow := f.a > 0

	if rank != 0 {
		// Ship boundary contributions to rank 0.
		for i, d := range f.bndDiag {
			c.SendMatrix(0, tagDiag+i, d)
		}
		c.SendMatrix(0, tagCoupling, f.localTopCoupling)
		if f.fill != nil {
			c.SendMatrix(0, tagCoupling+1, f.fill)
		}
		if hasArrow {
			for i, a := range f.bndArrow {
				c.SendMatrix(0, tagArrow+i, a)
			}
			c.SendMatrix(0, tagTip, f.tipDelta)
		}
		f.recvReducedNothing()
		return nil
	}

	red := NewMatrix(nr, f.b, f.a)
	// Rank 0's own contribution: bottom boundary at reduced index 0.
	red.Diag[0].CopyFrom(f.bndDiag[0])
	if hasArrow {
		red.Arrow[0].CopyFrom(f.bndArrow[0])
		red.Tip.CopyFrom(f.localTip)
		red.Tip.Add(1, f.tipDelta)
	}
	for r := 1; r < p; r++ {
		top := reducedIndexTop(r)
		topCoupling := c.RecvMatrix(r, tagCoupling)
		red.Lower[top-1].CopyFrom(topCoupling) // (lo_r, hi_{r−1})
		if r < p-1 {
			red.Diag[top].CopyFrom(c.RecvMatrix(r, tagDiag))
			red.Diag[top+1].CopyFrom(c.RecvMatrix(r, tagDiag+1))
			fill := c.RecvMatrix(r, tagCoupling+1)
			red.Lower[top].CopyFrom(fill.T()) // (hi_r, lo_r) = fillᵀ
			if hasArrow {
				red.Arrow[top].CopyFrom(c.RecvMatrix(r, tagArrow))
				red.Arrow[top+1].CopyFrom(c.RecvMatrix(r, tagArrow+1))
			}
		} else {
			red.Diag[top].CopyFrom(c.RecvMatrix(r, tagDiag))
			if hasArrow {
				red.Arrow[top].CopyFrom(c.RecvMatrix(r, tagArrow))
			}
		}
		if hasArrow {
			red.Tip.Add(1, c.RecvMatrix(r, tagTip))
		}
	}
	var err error
	c.Compute(func() {
		err = factorizeInPlace(red)
		if err == nil {
			f.reduced = &Factor{N: red.N, B: red.B, A: red.A,
				Diag: red.Diag, Lower: red.Lower, Arrow: red.Arrow, Tip: red.Tip}
		}
	})
	return err
}

// recvReducedNothing is a placeholder synchronization for non-root ranks —
// the reduced factorization is sequential on rank 0 by design (mirroring
// Serinv); other ranks simply proceed to the next collective.
func (f *DistFactor) recvReducedNothing() {}

// shareLogDet computes log|A| collectively: interior contributions from all
// ranks plus the reduced factor's log-determinant from rank 0.
func (f *DistFactor) shareLogDet(c *comm.Comm) {
	var localSum float64
	for _, lk := range f.l {
		for i := 0; i < f.b; i++ {
			localSum += logOf(lk.At(i, i))
		}
	}
	localSum *= 2
	if f.rank == 0 && f.reduced != nil {
		localSum += f.reduced.LogDet()
	}
	total := c.AllReduceSum([]float64{localSum})
	f.logDet = total[0]
}
