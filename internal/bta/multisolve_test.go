package bta

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dalia-hpc/dalia/internal/dense"
)

func randSPD(t *testing.T, rng *rand.Rand, n, b, a int) (*Matrix, *Factor) {
	t.Helper()
	m := NewMatrix(n, b, a)
	fill := func(d *dense.Matrix) {
		for i := range d.Data {
			d.Data[i] = rng.NormFloat64() * 0.05
		}
	}
	for i := 0; i < n; i++ {
		fill(m.Diag[i])
		m.Diag[i].Symmetrize()
		m.Diag[i].AddDiag(float64(b + a))
		if i < n-1 {
			fill(m.Lower[i])
		}
		if a > 0 {
			fill(m.Arrow[i])
		}
	}
	if a > 0 {
		fill(m.Tip)
		m.Tip.Symmetrize()
		m.Tip.AddDiag(float64(b + a))
	}
	f, err := Factorize(m)
	if err != nil {
		t.Fatalf("factorize: %v", err)
	}
	return m, f
}

// SolveMultiInto must agree with the allocating SolveMulti and with
// column-by-column vector solves.
func TestSolveMultiIntoMatchesSolveMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][3]int{{4, 5, 3}, {6, 4, 0}, {1, 3, 2}} {
		n, b, a := shape[0], shape[1], shape[2]
		_, f := randSPD(t, rng, n, b, a)
		k := 6
		dim := f.Dim()
		ref := dense.New(dim, k)
		for i := range ref.Data {
			ref.Data[i] = rng.NormFloat64()
		}
		w := NewMultiSolve(n, b, a, k)
		w.RHS.CopyFrom(ref)
		f.SolveMultiInto(w)
		f.SolveMulti(ref)
		if !w.RHS.Equal(ref, 1e-12) {
			t.Errorf("shape (%d,%d,%d): SolveMultiInto disagrees with SolveMulti", n, b, a)
		}
		// Vector solve cross-check on one column.
		col := make([]float64, dim)
		for r := 0; r < dim; r++ {
			col[r] = ref.At(r, 2)
		}
		for r := 0; r < dim; r++ {
			if math.Abs(w.RHS.At(r, 2)-col[r]) > 1e-12 {
				t.Fatalf("shape (%d,%d,%d): column 2 row %d: %g vs %g", n, b, a, r, w.RHS.At(r, 2), col[r])
			}
		}
	}
}

// The forward half-solve squared column norms must equal φᵀ·A⁻¹·φ.
func TestForwardSolveMultiQuadraticForm(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, b, a := 5, 4, 2
	m, f := randSPD(t, rng, n, b, a)
	dim := f.Dim()
	k := 3
	w := NewMultiSolve(n, b, a, k)
	phi := dense.New(dim, k)
	for i := range phi.Data {
		phi.Data[i] = rng.NormFloat64()
	}
	w.RHS.CopyFrom(phi)
	f.ForwardSolveMultiInto(w)
	for j := 0; j < k; j++ {
		var got float64
		for r := 0; r < dim; r++ {
			v := w.RHS.At(r, j)
			got += v * v
		}
		// Reference: solve A·z = φ, take φᵀz.
		z := make([]float64, dim)
		for r := 0; r < dim; r++ {
			z[r] = phi.At(r, j)
		}
		f.Solve(z)
		var want float64
		for r := 0; r < dim; r++ {
			want += phi.At(r, j) * z[r]
		}
		if math.Abs(got-want) > 1e-10*math.Abs(want) {
			t.Errorf("column %d: ‖L⁻¹φ‖²=%g, φᵀA⁻¹φ=%g", j, got, want)
		}
		if got < 0 {
			t.Errorf("column %d: negative quadratic form %g", j, got)
		}
	}
	_ = m
}

// Narrowed workspaces share storage with the parent, solve only their
// columns, and leave the columns beyond the narrow width untouched.
func TestNarrowSolvesPrefixColumnsOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n, b, a := 4, 5, 2
	_, f := randSPD(t, rng, n, b, a)
	dim := f.Dim()
	k, narrowK := 8, 3
	w := NewMultiSolve(n, b, a, k)
	ref := dense.New(dim, k)
	for i := range ref.Data {
		ref.Data[i] = rng.NormFloat64()
	}
	w.RHS.CopyFrom(ref)
	nw := w.Narrow(narrowK)
	if nw.K != narrowK || nw.Dim() != dim {
		t.Fatalf("narrow shape K=%d dim=%d", nw.K, nw.Dim())
	}
	if w.Narrow(narrowK) != nw {
		t.Fatal("Narrow is not memoized")
	}
	if w.Narrow(k) != w {
		t.Fatal("Narrow at full width must return the parent")
	}
	for _, bad := range []int{0, -1, k + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Narrow(%d) did not panic", bad)
				}
			}()
			w.Narrow(bad)
		}()
	}
	orig := ref.Clone()
	f.SolveMultiInto(nw)
	f.SolveMulti(ref)
	for r := 0; r < dim; r++ {
		for c := 0; c < k; c++ {
			got := w.RHS.At(r, c)
			want := ref.At(r, c) // solved value
			if c >= narrowK {
				want = orig.At(r, c) // beyond the narrow width: untouched fill
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("(%d,%d): %g vs %g", r, c, got, want)
			}
		}
	}
}

// The multi-solve hot path must not allocate.
func TestSolveMultiIntoAllocs(t *testing.T) {
	if dense.RaceEnabled {
		t.Skip("race instrumentation allocates; zero-alloc assertion only holds without -race")
	}
	rng := rand.New(rand.NewSource(9))
	n, b, a := 6, 8, 4
	_, f := randSPD(t, rng, n, b, a)
	w := NewMultiSolve(n, b, a, 16)
	for i := range w.RHS.Data {
		w.RHS.Data[i] = rng.NormFloat64()
	}
	allocs := testing.AllocsPerRun(10, func() {
		f.SolveMultiInto(w)
	})
	if allocs != 0 {
		t.Errorf("SolveMultiInto allocates %.1f objects per run, want 0", allocs)
	}
	// Narrowed widths are memoized: allocation-free after one warm pass.
	w.Narrow(5)
	allocs = testing.AllocsPerRun(10, func() {
		f.SolveMultiInto(w.Narrow(5))
	})
	if allocs != 0 {
		t.Errorf("narrowed SolveMultiInto allocates %.1f objects per run, want 0", allocs)
	}
}
