package bta

import "github.com/dalia-hpc/dalia/internal/dense"

// DefaultReducedCrossover is the smallest reduced-system block count worth
// re-entering the partition machinery on. Below it (P < 5 partitions, so a
// reduced system of fewer than 8 blocks) the sequential POBTAF chain beats
// a nested gang, and the engine takes the sequential path bit for bit.
const DefaultReducedCrossover = 8

// MaxRecursionDepth bounds the recursive nesting of reduced-system engines.
// Each level shrinks the system from n to 2P−2 ≤ n/2 blocks, so depth
// beyond a handful cannot ever trigger; the bound keeps misconfigured
// knobs from requesting absurd towers of nested gangs.
const MaxRecursionDepth = 8

// ReducedOptions configures how a parallel backend treats its 2P−2-block
// reduced boundary system — the serial fraction of the parallel-in-time
// scheme (§V-B's scaling knee).
type ReducedOptions struct {
	// Depth is the recursive-nesting budget: a positive depth lets the
	// engine re-enter the partition machinery on the reduced system itself
	// (which is block-tridiagonal-arrowhead with the same structure),
	// factorizing it with a second-level partition gang instead of a
	// sequential sweep. Each nested level receives Depth−1. 0 = always
	// sequential (the historical behaviour).
	Depth int
	// Crossover is the smallest reduced block count to recurse on
	// (0 = DefaultReducedCrossover). Reduced systems below it run the
	// sequential kernel bit for bit regardless of Depth.
	Crossover int
	// Pipeline streams partitions' boundary contributions into the reduced
	// assembly as each interior elimination finishes, overlapping the
	// reduced phase with the tail of the interior sweeps. Off = assemble
	// and factorize only after every partition completed (the historical
	// behaviour, kept bit-for-bit).
	Pipeline bool
}

// normalize clamps the options into their valid ranges.
func (o ReducedOptions) normalize() ReducedOptions {
	if o.Depth < 0 {
		o.Depth = 0
	}
	if o.Depth > MaxRecursionDepth {
		o.Depth = MaxRecursionDepth
	}
	if o.Crossover <= 0 {
		o.Crossover = DefaultReducedCrossover
	}
	if o.Crossover < 4 {
		// A reduced system below 4 blocks cannot hold two partitions with
		// anything left to eliminate in parallel.
		o.Crossover = 4
	}
	return o
}

// reducedEngine factorizes and solves one reduced boundary system, either
// sequentially in place of the assembled storage (the historical path) or
// through a recursively nested ParallelFactor when the system is wide
// enough to deserve its own partition gang. All storage — including the
// nested factor — is built once at construction, so repeated cycles stay
// allocation-free.
type reducedEngine struct {
	nr, b, a int
	opts     ReducedOptions

	seqF   *Factor         // factor view over the assembled storage (sequential mode)
	nested *ParallelFactor // non-nil when the engine recurses
}

// nestedReducedWidth returns the partition count a nested gang over an
// nr-block reduced system should run at (0 = don't recurse).
func nestedReducedWidth(nr, crossover int) int {
	if nr < crossover {
		return 0
	}
	// nr/4 is MaxUsefulPartitions' diminishing-returns policy; once past
	// the crossover a gang of at least 2 always beats the sequential sweep
	// the caller would otherwise idle through.
	p := nr / 4
	if p < 2 {
		p = 2
	}
	if mx := MaxPartitions(nr); p > mx {
		p = mx
	}
	return p
}

// newReducedEngine builds the engine for the reduced system assembled into
// red. The sequential mode factorizes red's blocks in place (seqF is a
// factor view over that same storage); the nested mode copies red into the
// nested factor's own storage on every Refactorize, leaving red intact as
// the assembly staging area.
func newReducedEngine(red *Matrix, opts ReducedOptions, barrier bool) (*reducedEngine, error) {
	opts = opts.normalize()
	e := &reducedEngine{nr: red.N, b: red.B, a: red.A, opts: opts}
	e.seqF = &Factor{N: red.N, B: red.B, A: red.A,
		Diag: red.Diag, Lower: red.Lower, Arrow: red.Arrow, Tip: red.Tip}
	if opts.Depth > 0 {
		if p := nestedReducedWidth(red.N, opts.Crossover); p > 0 {
			nested, err := NewParallelFactorOpts(red.N, red.B, red.A, ParallelOptions{
				Partitions: p,
				Reduced: ReducedOptions{
					Depth:     opts.Depth - 1,
					Crossover: opts.Crossover,
					Pipeline:  opts.Pipeline,
				},
				PhaseBarrier: barrier,
			})
			if err != nil {
				return nil, err
			}
			e.nested = nested
		}
	}
	return e, nil
}

// seqReducedEngine wraps an existing sequential factor (used by the p = 1
// distributed fallback, where the "reduced system" is the whole matrix
// factorized in place of the local slice).
func seqReducedEngine(f *Factor) *reducedEngine {
	return &reducedEngine{nr: f.N, b: f.B, a: f.A, seqF: f}
}

// matches reports whether the engine can be reused for a reduced system of
// the given shape under the given options (the DistScratch recycling test).
func (e *reducedEngine) matches(nr, b, a int, opts ReducedOptions) bool {
	return e != nil && e.nr == nr && e.b == b && e.a == a && e.opts == opts.normalize()
}

// recursing reports whether the reduced factorization runs on a nested
// partition gang (vs the sequential in-place kernel).
func (e *reducedEngine) recursing() bool { return e.nested != nil }

// rebind points the sequential factor view at a different assembled storage
// of the same shape (the distributed path recycles reduced matrices through
// DistScratch, so the storage identity can change between factorizations).
func (e *reducedEngine) rebind(red *Matrix) {
	e.seqF.Diag, e.seqF.Lower, e.seqF.Arrow, e.seqF.Tip = red.Diag, red.Lower, red.Arrow, red.Tip
}

// factorize computes the reduced factorization from the fully assembled
// system in red. Sequential mode consumes red's blocks as the factor
// storage; nested mode reads them into the nested factor.
func (e *reducedEngine) factorize(red *Matrix) error {
	if e.nested != nil {
		return e.nested.Refactorize(red)
	}
	e.rebind(red)
	return factorizeInPlace(red)
}

// logDet returns the reduced factor's log-determinant contribution.
func (e *reducedEngine) logDet() float64 {
	if e.nested != nil {
		return e.nested.LogDet()
	}
	return e.seqF.LogDet()
}

// solve solves the reduced system in place of rhs.
func (e *reducedEngine) solve(rhs []float64) {
	if e.nested != nil {
		e.nested.Solve(rhs)
		return
	}
	e.seqF.Solve(rhs)
}

// solveLT applies the backend's L̃⁻ᵀ to x in place (the GMRF-sampling
// primitive; each nesting level contributes its own symmetric permutation,
// under which i.i.d. Gaussian inputs are invariant).
func (e *reducedEngine) solveLT(x []float64) {
	if e.nested != nil {
		e.nested.SolveLT(x)
		return
	}
	e.seqF.backward(x)
}

// forwardMS / backwardMS are the multi-RHS half solves over the reduced
// workspace.
func (e *reducedEngine) forwardMS(w *MultiSolve) {
	if e.nested != nil {
		e.nested.ForwardSolveMultiInto(w)
		return
	}
	e.seqF.ForwardSolveMultiInto(w)
}

func (e *reducedEngine) backwardMS(w *MultiSolve) {
	if e.nested != nil {
		e.nested.BackwardSolveMultiInto(w)
		return
	}
	e.seqF.BackwardSolveMultiInto(w)
}

// selinvInto computes the reduced selected inverse on the BTA pattern.
func (e *reducedEngine) selinvInto(sig *Matrix) error {
	if e.nested != nil {
		return e.nested.SelectedInversionInto(sig)
	}
	return e.seqF.SelectedInversionInto(sig)
}

// reducedOwner returns the partition owning reduced block i (reduced
// ordering [hi₀, lo₁, hi₁, …, lo_{P−1}]: block 0 belongs to partition 0,
// blocks 2r−1 and 2r to partition r).
func reducedOwner(i int) int { return (i + 1) / 2 }

// redFrontier advances an incremental in-place factorization of the reduced
// system as partitions deliver their boundary contributions in partition
// order — the pipelined boundary handoff. Eliminating reduced block i
// Schur-updates block i+1, so the frontier may pass block i only once the
// owner of block i+1 has installed its contribution; owners are monotone in
// the block index, which makes the resulting operation sequence a pure
// function of the install order (deterministic regardless of which
// partition's elimination finished first).
//
// Tip handling: partition r's Schur tip accumulator is folded into the
// assembled tip right before the frontier eliminates the first block r owns
// — a fixed position in the operation sequence — rather than at delivery
// time, which would make the floating-point summation order depend on
// goroutine scheduling.
type redFrontier struct {
	red  *Matrix
	p    int             // total partitions
	tips []*dense.Matrix // per-partition tip deltas (nil entries allowed)
	next int             // next reduced block to eliminate
	err  error
}

func (rf *redFrontier) reset(red *Matrix, p int, tips []*dense.Matrix) {
	rf.red, rf.p, rf.tips, rf.next, rf.err = red, p, tips, 0, nil
}

// advance runs factorSteps for every reduced block whose inputs are
// complete once partitions 0..installedThrough have installed their
// contributions. Errors latch: further calls are no-ops.
func (rf *redFrontier) advance(installedThrough int) {
	if rf.err != nil {
		return
	}
	nr := rf.red.N
	for rf.next < nr {
		need := rf.next + 1
		if need > nr-1 {
			need = nr - 1
		}
		if reducedOwner(need) > installedThrough {
			return
		}
		i := rf.next
		if rf.red.A > 0 && rf.tips != nil {
			// Fold the tip delta of the partition whose first owned block
			// this is (block 0 → partition 0, block 2r−1 → partition r).
			if i == 0 {
				rf.foldTip(0)
			} else if i%2 == 1 {
				rf.foldTip((i + 1) / 2)
			}
		}
		if err := factorStep(rf.red, i); err != nil {
			rf.err = err
			return
		}
		rf.next++
	}
}

func (rf *redFrontier) foldTip(r int) {
	if r < len(rf.tips) && rf.tips[r] != nil {
		rf.red.Tip.Add(1, rf.tips[r])
	}
}

// finish completes the factorization after every partition installed:
// remaining frontier steps plus the tip Cholesky.
func (rf *redFrontier) finish() error {
	rf.advance(rf.p - 1)
	if rf.err != nil {
		return rf.err
	}
	return factorFinishTip(rf.red)
}
