package bta

import (
	"fmt"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// MultiSolve is the caller-owned workspace of a zero-allocation multi-RHS
// triangular solve: a dim×k right-hand-side matrix plus the per-block row
// views the factor sweeps over. SolveMulti builds those views on every call,
// which costs O(n) small allocations; a prediction service solving the same
// shape thousands of times per second keeps one MultiSolve per worker
// instead and stays allocation-free after warmup.
type MultiSolve struct {
	N, B, A, K int
	// RHS is the dim×k right-hand-side/solution storage. Callers fill its
	// columns before a solve and read the solutions (or half-solutions)
	// back out of the same storage.
	RHS *dense.Matrix

	blocks []*dense.Matrix // n row-block views, b×k each
	arrow  *dense.Matrix   // a×k view (nil when A == 0)

	narrow []*MultiSolve // memoized sub-width workspaces sharing RHS storage
}

// NewMultiSolve allocates a workspace for k simultaneous right-hand sides of
// the BTA shape (n, b, a). All block views into the RHS storage are created
// here, once.
func NewMultiSolve(n, b, a, k int) *MultiSolve {
	if n < 1 || b < 1 || a < 0 || k < 1 {
		panic(fmt.Sprintf("bta: invalid multi-solve shape n=%d b=%d a=%d k=%d", n, b, a, k))
	}
	w := &MultiSolve{N: n, B: b, A: a, K: k}
	w.RHS = dense.New(n*b+a, k)
	w.blocks = make([]*dense.Matrix, n)
	for i := 0; i < n; i++ {
		w.blocks[i] = w.RHS.View(i*b, 0, b, k)
	}
	if a > 0 {
		w.arrow = w.RHS.View(n*b, 0, a, k)
	}
	return w
}

// Dim returns the per-column system dimension n·b + a.
func (w *MultiSolve) Dim() int { return w.N*w.B + w.A }

// Narrow returns a workspace over the first k columns of w's storage, so a
// partially filled batch only sweeps (and zeroes, and reads back) the
// columns it actually uses instead of the full capacity. Sub-width
// workspaces are memoized per width: after one warm pass per observed
// width, Narrow allocates nothing.
func (w *MultiSolve) Narrow(k int) *MultiSolve {
	if k < 1 || k > w.K {
		panic(fmt.Sprintf("bta: narrow to %d columns of a %d-column workspace", k, w.K))
	}
	if k == w.K {
		return w
	}
	if w.narrow == nil {
		w.narrow = make([]*MultiSolve, w.K)
	}
	if nw := w.narrow[k-1]; nw != nil {
		return nw
	}
	nw := &MultiSolve{N: w.N, B: w.B, A: w.A, K: k}
	nw.RHS = w.RHS.View(0, 0, w.Dim(), k)
	nw.blocks = make([]*dense.Matrix, w.N)
	for i := 0; i < w.N; i++ {
		nw.blocks[i] = w.RHS.View(i*w.B, 0, w.B, k)
	}
	if w.A > 0 {
		nw.arrow = w.RHS.View(w.N*w.B, 0, w.A, k)
	}
	w.narrow[k-1] = nw
	return nw
}

// checkShape verifies the workspace matches the factor.
func (w *MultiSolve) checkShape(f *Factor) { w.checkDims(f.N, f.B, f.A) }

// checkDims verifies the workspace matches a BTA shape (shared by the
// sequential and parallel solver backends).
func (w *MultiSolve) checkDims(n, b, a int) {
	if w.N != n || w.B != b || w.A != a {
		panic(fmt.Sprintf("bta: multi-solve workspace (n=%d,b=%d,a=%d) does not match factor (n=%d,b=%d,a=%d)",
			w.N, w.B, w.A, n, b, a))
	}
}

// ForwardSolveMultiInto computes Y = L⁻¹·B in place of the workspace RHS,
// for all k columns at once (blocked forward substitution, BLAS-3
// throughout). This is the half solve behind batched predictive variances:
// for a column φ, ‖L⁻¹φ‖² = φᵀA⁻¹φ, and the sum of squares of a
// half-solved column is nonnegative by construction. Performs no heap
// allocation.
func (f *Factor) ForwardSolveMultiInto(w *MultiSolve) {
	w.checkShape(f)
	// Half-solve norms feed predictive variances; a mixed factor is promoted
	// to full fp64 first (there is no residual to refine against).
	f.promote()
	n := f.N
	for i := 0; i < n; i++ {
		yi := w.blocks[i]
		dense.Trsm(dense.Left, dense.NoTrans, f.Diag[i], yi)
		if i < n-1 {
			dense.Gemm(dense.NoTrans, dense.NoTrans, -1, f.Lower[i], yi, 1, w.blocks[i+1])
		}
		if f.A > 0 {
			dense.Gemm(dense.NoTrans, dense.NoTrans, -1, f.Arrow[i], yi, 1, w.arrow)
		}
	}
	if f.A > 0 {
		dense.Trsm(dense.Left, dense.NoTrans, f.Tip, w.arrow)
	}
}

// BackwardSolveMultiInto computes X = L⁻ᵀ·Y in place of the workspace RHS
// for all k columns. Performs no heap allocation.
func (f *Factor) BackwardSolveMultiInto(w *MultiSolve) {
	w.checkShape(f)
	f.promote()
	n := f.N
	if f.A > 0 {
		dense.Trsm(dense.Left, dense.Trans, f.Tip, w.arrow)
	}
	for i := n - 1; i >= 0; i-- {
		xi := w.blocks[i]
		if i < n-1 {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, f.Lower[i], w.blocks[i+1], 1, xi)
		}
		if f.A > 0 {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, f.Arrow[i], w.arrow, 1, xi)
		}
		dense.Trsm(dense.Left, dense.Trans, f.Diag[i], xi)
	}
}

// SolveMultiInto solves A·X = B in place of the workspace RHS for all k
// columns — the allocation-free counterpart of SolveMulti.
func (f *Factor) SolveMultiInto(w *MultiSolve) {
	f.ForwardSolveMultiInto(w)
	f.BackwardSolveMultiInto(w)
}
