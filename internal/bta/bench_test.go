package bta

import (
	"math/rand"
	"testing"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// TestRefactorizeMatchesFactorize: the workspace-reusing path must produce
// the same factor as the allocating one.
func TestRefactorizeMatchesFactorize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randBTA(rng, 5, 24, 3)
	want, err := Factorize(m)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFactor(5, 24, 3)
	// Run twice to confirm refills do not depend on prior contents.
	for pass := 0; pass < 2; pass++ {
		if err := f.Refactorize(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < m.N; i++ {
		if !f.Diag[i].Equal(want.Diag[i], 1e-12) {
			t.Fatalf("diag block %d differs", i)
		}
		if i < m.N-1 && !f.Lower[i].Equal(want.Lower[i], 1e-12) {
			t.Fatalf("lower block %d differs", i)
		}
		if m.A > 0 && !f.Arrow[i].Equal(want.Arrow[i], 1e-12) {
			t.Fatalf("arrow block %d differs", i)
		}
	}
	if m.A > 0 && !f.Tip.Equal(want.Tip, 1e-12) {
		t.Fatal("tip differs")
	}
}

// TestRefactorizeShapeMismatch: refilling a factor of a different shape is
// an error, not a corruption.
func TestRefactorizeShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := randBTA(rng, 4, 8, 2)
	f := NewFactor(4, 8, 3)
	if err := f.Refactorize(m); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

// TestRefactorizeSolveZeroAlloc is the acceptance gate of the
// zero-allocation hot path: after warm-up, a full Refactorize + Solve +
// LogDet cycle — one INLA θ-evaluation's worth of solver work — touches no
// fresh heap. b is chosen large enough that the blocked kernels route
// through the packed GEMM engine and its buffer pools.
func TestRefactorizeSolveZeroAlloc(t *testing.T) {
	if dense.RaceEnabled {
		t.Skip("race-mode sync.Pool drops Put items; alloc counts are meaningless")
	}
	prev := dense.SetMaxWorkers(1)
	defer dense.SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(13))
	n, b, a := 4, 96, 4
	m := randBTA(rng, n, b, a)
	f := NewFactor(n, b, a)
	rhs0 := randVec(rng, m.Dim())
	rhs := make([]float64, m.Dim())
	// Warm-up: fills the factor storage and the dense packing pools.
	if err := f.Refactorize(m); err != nil {
		t.Fatal(err)
	}
	copy(rhs, rhs0)
	f.Solve(rhs)
	allocs := testing.AllocsPerRun(10, func() {
		if err := f.Refactorize(m); err != nil {
			t.Fatal(err)
		}
		copy(rhs, rhs0)
		f.Solve(rhs)
		_ = f.LogDet()
	})
	if allocs != 0 {
		t.Fatalf("Refactorize+Solve cycle allocates %.1f objects per run in steady state, want 0", allocs)
	}
}

// benchPOBTAF measures the sequential factorization wall-time at a
// paper-like shape, with and without workspace reuse.
func benchPOBTAF(b *testing.B, reuse bool) {
	prev := dense.SetMaxWorkers(1)
	defer dense.SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(14))
	m := randBTA(rng, 16, 128, 8)
	f := NewFactor(16, 128, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if reuse {
			if err := f.Refactorize(m); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := Factorize(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPOBTAFRefactorize(b *testing.B) { benchPOBTAF(b, true) }
func BenchmarkPOBTAFFactorize(b *testing.B)   { benchPOBTAF(b, false) }
