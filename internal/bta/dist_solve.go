package bta

import (
	"fmt"

	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/dense"
)

// PPOBTAS is the distributed triangular solve contributed by the DALIA
// paper (§IV-E): it solves A·x = rhs against an existing distributed
// factorization using the same nested-dissection scheme as PPOBTAF.
//
// rhsLocal holds the right-hand side for the rank's owned blocks
// (Part.Size()·b values); rhsTip holds the arrow-tip right-hand side and is
// read on rank 0 (a values; may be nil when a == 0). The call is collective.
// It returns the solution over the owned blocks and the (replicated) tip
// solution.
func PPOBTAS(c *comm.Comm, f *DistFactor, rhsLocal, rhsTip []float64) ([]float64, []float64, error) {
	if len(rhsLocal) != f.part.Size()*f.b {
		return nil, nil, fmt.Errorf("bta: rank %d rhs length %d, want %d", f.rank, len(rhsLocal), f.part.Size()*f.b)
	}
	if f.p == 1 {
		full := make([]float64, f.nGlobal*f.b+f.a)
		copy(full, rhsLocal)
		copy(full[f.nGlobal*f.b:], rhsTip)
		c.Compute(func() { f.reduced.Solve(full) })
		var xt []float64
		if f.a > 0 {
			xt = append([]float64(nil), full[f.nGlobal*f.b:]...)
		}
		return full[:f.nGlobal*f.b], xt, nil
	}

	b, a := f.b, f.a
	lo := f.part.Lo
	y := append([]float64(nil), rhsLocal...)
	var tipDelta []float64
	if a > 0 {
		tipDelta = make([]float64, a)
	}

	// Forward elimination over the interiors.
	c.Compute(func() {
		for idx, k := range f.interior {
			rel := k - lo
			yk := y[rel*b : (rel+1)*b]
			solveLowerVec(f.l[idx], yk)
			if f.gNext[idx] != nil {
				dense.Gemv(dense.NoTrans, -1, f.gNext[idx], yk, 1, y[(rel+1)*b:(rel+2)*b])
			}
			if f.gTop[idx] != nil {
				dense.Gemv(dense.NoTrans, -1, f.gTop[idx], yk, 1, y[0:b])
			}
			if f.gArr[idx] != nil {
				dense.Gemv(dense.NoTrans, -1, f.gArr[idx], yk, 1, tipDelta)
			}
		}
	})

	// Reduced right-hand side at rank 0.
	bnd := boundaries(f.part, f.rank, f.p)
	nr := reducedSize(f.p)
	var xBnd [][]float64 // solutions for this rank's boundary blocks
	var xTip []float64
	if f.rank != 0 {
		payload := make([]float64, 0, len(bnd)*b+a)
		for _, gbl := range bnd {
			rel := gbl - lo
			payload = append(payload, y[rel*b:(rel+1)*b]...)
		}
		if a > 0 {
			payload = append(payload, tipDelta...)
		}
		c.Send(0, tagRhs, payload)
		sol := c.Recv(0, tagSol)
		for i := range bnd {
			xBnd = append(xBnd, sol[i*b:(i+1)*b])
		}
		if a > 0 {
			xTip = sol[len(bnd)*b : len(bnd)*b+a]
		}
	} else {
		rhsRed := make([]float64, nr*b+a)
		copy(rhsRed[0:b], y[(f.part.Hi-lo)*b:]) // own bottom boundary
		if a > 0 {
			copy(rhsRed[nr*b:], rhsTip)
			dense.Axpy(1, tipDelta, rhsRed[nr*b:])
		}
		payloads := make([][]float64, f.p)
		for r := 1; r < f.p; r++ {
			payloads[r] = c.Recv(r, tagRhs)
			nb := 2
			if r == f.p-1 {
				nb = 1
			}
			top := reducedIndexTop(r)
			copy(rhsRed[top*b:(top+1)*b], payloads[r][0:b])
			if nb == 2 {
				copy(rhsRed[(top+1)*b:(top+2)*b], payloads[r][b:2*b])
			}
			if a > 0 {
				dense.Axpy(1, payloads[r][nb*b:nb*b+a], rhsRed[nr*b:])
			}
		}
		c.Compute(func() { f.reduced.Solve(rhsRed) })
		if a > 0 {
			xTip = append([]float64(nil), rhsRed[nr*b:]...)
		}
		for r := 1; r < f.p; r++ {
			nb := 2
			if r == f.p-1 {
				nb = 1
			}
			top := reducedIndexTop(r)
			sol := make([]float64, 0, nb*b+a)
			sol = append(sol, rhsRed[top*b:(top+1)*b]...)
			if nb == 2 {
				sol = append(sol, rhsRed[(top+1)*b:(top+2)*b]...)
			}
			if a > 0 {
				sol = append(sol, xTip...)
			}
			c.Send(r, tagSol, sol)
		}
		xBnd = [][]float64{rhsRed[0:b]}
	}

	// Install boundary solutions into the local solution vector.
	x := y
	for i, gbl := range bnd {
		rel := gbl - lo
		copy(x[rel*b:(rel+1)*b], xBnd[i])
	}

	// Backward substitution over the interiors (reverse order).
	c.Compute(func() {
		for idx := len(f.interior) - 1; idx >= 0; idx-- {
			k := f.interior[idx]
			rel := k - lo
			xk := x[rel*b : (rel+1)*b]
			if f.gNext[idx] != nil {
				dense.Gemv(dense.Trans, -1, f.gNext[idx], x[(rel+1)*b:(rel+2)*b], 1, xk)
			}
			if f.gTop[idx] != nil {
				dense.Gemv(dense.Trans, -1, f.gTop[idx], x[0:b], 1, xk)
			}
			if f.gArr[idx] != nil {
				dense.Gemv(dense.Trans, -1, f.gArr[idx], xTip, 1, xk)
			}
			solveLowerTransVec(f.l[idx], xk)
		}
	})
	return x, xTip, nil
}

// LocalSigma is one rank's slice of the selected inverse Σ on the BTA
// pattern, mirroring the LocalBTA layout. TopCoupling holds
// Σ(Lo, Lo−1) — the cross-partition off-diagonal block — and Tip is the
// replicated Σ over the fixed-effects corner.
type LocalSigma struct {
	Part        Partition
	NGlobal     int
	B, A        int
	Diag        []*dense.Matrix
	Lower       []*dense.Matrix
	TopCoupling *dense.Matrix
	Arrow       []*dense.Matrix
	Tip         *dense.Matrix
}

// DiagVec returns the rank-local marginal variances (the diagonal of the
// owned Σ blocks), Part.Size()·b values.
func (s *LocalSigma) DiagVec() []float64 {
	out := make([]float64, len(s.Diag)*s.B)
	for i, d := range s.Diag {
		for k := 0; k < s.B; k++ {
			out[i*s.B+k] = d.At(k, k)
		}
	}
	return out
}

// PPOBTASI is the distributed selected inversion: it computes every block
// of Σ = A⁻¹ on the BTA pattern, with each rank producing the blocks of its
// partition. Collective; requires a prior PPOBTAF.
func PPOBTASI(c *comm.Comm, f *DistFactor) (*LocalSigma, error) {
	b, a := f.b, f.a
	out := &LocalSigma{Part: f.part, NGlobal: f.nGlobal, B: b, A: a}
	if f.p == 1 {
		var sig *Matrix
		var err error
		c.Compute(func() { sig, err = f.reduced.SelectedInversion() })
		if err != nil {
			return nil, err
		}
		out.Diag = sig.Diag
		out.Lower = sig.Lower
		out.Arrow = sig.Arrow
		out.Tip = sig.Tip
		return out, nil
	}

	// Phase 1: reduced-system selected inversion on rank 0, scatter of the
	// boundary Σ blocks.
	var sigTopD, sigBotD, sigBotTop, sigCrossPrev *dense.Matrix
	var sigArrTop, sigArrBot, sigTip *dense.Matrix
	if f.rank == 0 {
		var redSig *Matrix
		var err error
		c.Compute(func() { redSig, err = f.reduced.SelectedInversion() })
		if err != nil {
			return nil, err
		}
		for r := 1; r < f.p; r++ {
			top := reducedIndexTop(r)
			c.SendMatrix(r, tagSig, redSig.Diag[top])
			c.SendMatrix(r, tagSig+1, redSig.Lower[top-1]) // Σ(lo_r, hi_{r−1})
			if r < f.p-1 {
				c.SendMatrix(r, tagSig+2, redSig.Diag[top+1])
				c.SendMatrix(r, tagSig+3, redSig.Lower[top]) // Σ(hi_r, lo_r)
			}
			if a > 0 {
				c.SendMatrix(r, tagSig+4, redSig.Arrow[top])
				if r < f.p-1 {
					c.SendMatrix(r, tagSig+5, redSig.Arrow[top+1])
				}
			}
		}
		sigBotD = redSig.Diag[0]
		if a > 0 {
			sigArrBot = redSig.Arrow[0]
			sigTip = redSig.Tip
		}
	} else {
		sigTopD = c.RecvMatrix(0, tagSig)
		sigCrossPrev = c.RecvMatrix(0, tagSig+1)
		if f.rank < f.p-1 {
			sigBotD = c.RecvMatrix(0, tagSig+2)
			sigBotTop = c.RecvMatrix(0, tagSig+3)
		}
		if a > 0 {
			sigArrTop = c.RecvMatrix(0, tagSig+4)
			if f.rank < f.p-1 {
				sigArrBot = c.RecvMatrix(0, tagSig+5)
			}
		}
	}
	if a > 0 {
		var tipIn *dense.Matrix
		if f.rank == 0 {
			tipIn = sigTip
		}
		sigTip = c.BcastMatrix(0, tipIn)
	}

	// Phase 2: rank-local backward recursion over the interiors.
	size := f.part.Size()
	out.Diag = make([]*dense.Matrix, size)
	if size > 1 {
		out.Lower = make([]*dense.Matrix, size-1)
	}
	if a > 0 {
		out.Arrow = make([]*dense.Matrix, size)
		out.Tip = sigTip
	}
	out.TopCoupling = sigCrossPrev

	// Install boundary blocks.
	switch {
	case f.rank == 0:
		out.Diag[size-1] = sigBotD
		if a > 0 {
			out.Arrow[size-1] = sigArrBot
		}
	case f.rank == f.p-1:
		out.Diag[0] = sigTopD
		if a > 0 {
			out.Arrow[0] = sigArrTop
		}
	default:
		out.Diag[0] = sigTopD
		out.Diag[size-1] = sigBotD
		if a > 0 {
			out.Arrow[0] = sigArrTop
			out.Arrow[size-1] = sigArrBot
		}
		if len(f.interior) == 0 {
			out.Lower[0] = sigBotTop
		}
	}

	var err error
	c.Compute(func() { err = f.interiorSigmaSweep(out, sigTopD, sigBotD, sigBotTop, sigArrTop, sigArrBot, sigTip) })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// interiorSigmaSweep runs the backward selected-inversion recursion over
// this rank's interior blocks, filling the interior entries of out.
//
// State rolls Σ over the elimination neighbours of each interior block k:
// {k+1, lo, tip} (the lo terms vanish on rank 0, the k+1 term vanishes for
// the final block of the last partition).
func (f *DistFactor) interiorSigmaSweep(out *LocalSigma,
	sigTopD, sigBotD, sigBotTop, sigArrTop, sigArrBot, sigTip *dense.Matrix) error {
	if len(f.interior) == 0 {
		return nil
	}
	b := f.b
	lo := f.part.Lo
	twoSided := f.rank != 0
	hasArrow := f.a > 0

	// Rolling state: Σ_{k+1,k+1}, Σ_{lo,k+1}, Σ_{a,k+1}.
	var sigNN, sigLoN *dense.Matrix
	var sigArrN *dense.Matrix
	last := len(f.interior) - 1
	if f.gNext[last] != nil {
		// k+1 of the deepest interior is this rank's bottom boundary.
		sigNN = sigBotD
		if twoSided {
			sigLoN = sigBotTop.T() // Σ(lo, hi) = Σ(hi, lo)ᵀ
		}
		if hasArrow {
			sigArrN = sigArrBot
		}
	}

	for idx := last; idx >= 0; idx-- {
		k := f.interior[idx]
		rel := k - lo
		// The factor stores L_{S,k} = A'_{S,k}·L_kk⁻ᵀ; the recursion needs
		// G_{S,k} = L_{S,k}·L_kk⁻¹ (as in the sequential POBTASI).
		var gN, gT, gA *dense.Matrix
		if f.gNext[idx] != nil {
			gN = f.gNext[idx].Clone()
			dense.Trsm(dense.Right, dense.NoTrans, f.l[idx], gN)
		}
		if f.gTop[idx] != nil {
			gT = f.gTop[idx].Clone()
			dense.Trsm(dense.Right, dense.NoTrans, f.l[idx], gT)
		}
		if f.gArr[idx] != nil {
			gA = f.gArr[idx].Clone()
			dense.Trsm(dense.Right, dense.NoTrans, f.l[idx], gA)
		}

		// Σ_{k+1,k}
		var sigNextK *dense.Matrix
		if gN != nil {
			sigNextK = dense.New(b, b)
			dense.Gemm(dense.NoTrans, dense.NoTrans, -1, sigNN, gN, 1, sigNextK)
			if gT != nil {
				dense.Gemm(dense.Trans, dense.NoTrans, -1, sigLoN, gT, 1, sigNextK)
			}
			if gA != nil {
				dense.Gemm(dense.Trans, dense.NoTrans, -1, sigArrN, gA, 1, sigNextK)
			}
		}
		// Σ_{lo,k}
		var sigLoK *dense.Matrix
		if gT != nil {
			sigLoK = dense.New(b, b)
			if gN != nil {
				dense.Gemm(dense.NoTrans, dense.NoTrans, -1, sigLoN, gN, 1, sigLoK)
			}
			dense.Gemm(dense.NoTrans, dense.NoTrans, -1, sigTopD, gT, 1, sigLoK)
			if gA != nil {
				dense.Gemm(dense.Trans, dense.NoTrans, -1, sigArrTop, gA, 1, sigLoK)
			}
		}
		// Σ_{a,k} (fresh matrices are zeroed, so all terms accumulate)
		var sigArrK *dense.Matrix
		if gA != nil {
			sigArrK = dense.New(f.a, b)
			if gN != nil {
				dense.Gemm(dense.NoTrans, dense.NoTrans, -1, sigArrN, gN, 1, sigArrK)
			}
			if gT != nil {
				dense.Gemm(dense.NoTrans, dense.NoTrans, -1, sigArrTop, gT, 1, sigArrK)
			}
			dense.Gemm(dense.NoTrans, dense.NoTrans, -1, sigTip, gA, 1, sigArrK)
		}
		// Σ_{k,k}
		dkk, err := dense.Potri(f.l[idx])
		if err != nil {
			return fmt.Errorf("bta: selinv interior block %d: %w", k, err)
		}
		if gN != nil {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, sigNextK, gN, 1, dkk)
		}
		if gT != nil {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, sigLoK, gT, 1, dkk)
		}
		if gA != nil {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, sigArrK, gA, 1, dkk)
		}
		dkk.Symmetrize()

		// Install outputs.
		out.Diag[rel] = dkk
		if gN != nil {
			out.Lower[rel] = sigNextK
		}
		if hasArrow {
			out.Arrow[rel] = sigArrK
		}

		// Roll the state.
		sigNN = dkk
		sigLoN = sigLoK
		sigArrN = sigArrK
	}

	// The coupling between the first interior and the top boundary:
	// Σ(lo+1, lo) = Σ(lo, lo+1)ᵀ.
	if twoSided && sigLoN != nil {
		out.Lower[0] = sigLoN.T()
	}
	return nil
}
