package bta

import (
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/dense"
)

// PPOBTAS is the distributed triangular solve contributed by the DALIA
// paper (§IV-E): it solves A·x = rhs against an existing distributed
// factorization using the same nested-dissection scheme as PPOBTAF. The
// interior forward/backward sweeps are thin wrappers over the shared
// partition-relative partitionSolve core — the same loops ParallelFactor
// runs in shared memory — executed once per owned partition (concurrently
// under the hybrid two-level topology) with comm's Compute hook charging
// the node-level wall time to the rank's virtual clock.
//
// rhsLocal holds the right-hand side for the rank's owned blocks
// (Part().Size()·b values); rhsTip holds the arrow-tip right-hand side and
// is read on rank 0 (a values; may be nil when a == 0). The call is
// collective. It returns the solution over the owned blocks and the
// (replicated) tip solution; when the factor carries recycled scratch the
// returned slices alias it and stay valid until the next PPOBTAS call.
func PPOBTAS(c *comm.Comm, f *DistFactor, rhsLocal, rhsTip []float64) (xOut, xTipOut []float64, err error) {
	// A communication fault mid-solve aborts cleanly: the sweeps run to
	// completion inside Compute before any exchange, so no gang goroutine
	// outlives the abort, and the solve scratch stays attached to the factor
	// for the retry.
	defer func() {
		if r := recover(); r != nil {
			fe := comm.FaultOf(r)
			if fe == nil {
				panic(r)
			}
			xOut, xTipOut = nil, nil
			err = fmt.Errorf("bta: distributed solve aborted: %w", fe)
		}
	}()
	b, a := f.b, f.a
	if len(rhsLocal) != f.span.Size()*b {
		return nil, nil, fmt.Errorf("bta: rank %d rhs length %d, want %d", f.rank, len(rhsLocal), f.span.Size()*b)
	}
	ss := f.solveScratch()
	if f.p == 1 {
		ss.full = growF(ss.full, f.nGlobal*b+a)
		copy(ss.full, rhsLocal)
		copy(ss.full[f.nGlobal*b:], rhsTip)
		c.Compute(func() { f.red.solve(ss.full) })
		var xt []float64
		if a > 0 {
			ss.xTip = growF(ss.xTip, a)
			copy(ss.xTip, ss.full[f.nGlobal*b:])
			xt = ss.xTip
		}
		return ss.full[:f.nGlobal*b], xt, nil
	}

	spanLo := f.span.Lo
	ss.y = growF(ss.y, len(rhsLocal))
	y := ss.y
	copy(y, rhsLocal)
	if a > 0 {
		for len(ss.tips) < len(f.parts) {
			ss.tips = append(ss.tips, nil)
		}
		for j := range f.parts {
			ss.tips[j] = growF(ss.tips[j], a)
		}
	}

	// Forward elimination over every owned partition's interiors.
	c.Compute(func() {
		f.runOwned(func(j int) {
			dp := f.parts[j]
			var tip []float64
			if a > 0 {
				tip = ss.tips[j]
				for i := range tip {
					tip[i] = 0
				}
			}
			pv := dp.solveCore(b)
			pv.forward(y[dp.off*b:(dp.off+dp.part.Size())*b], tip)
		})
	})
	if a > 0 {
		ss.tipSum = growF(ss.tipSum, a)
		copy(ss.tipSum, ss.tips[0])
		for _, t := range ss.tips[1:len(f.parts)] {
			dense.Axpy(1, t, ss.tipSum)
		}
	}

	// Reduced right-hand side at rank 0.
	nr := reducedSize(f.p)
	var xTip []float64
	if f.rank != 0 {
		nBnd := 0
		for _, dp := range f.parts {
			nBnd += len(dp.bndDiag)
		}
		payload := growF(ss.payload, nBnd*b+a)[:0]
		for _, dp := range f.parts {
			for _, gbl := range boundaries(dp.part, dp.global, f.p) {
				rel := gbl - spanLo
				payload = append(payload, y[rel*b:(rel+1)*b]...)
			}
		}
		if a > 0 {
			payload = append(payload, ss.tipSum...)
		}
		ss.payload = payload
		c.Send(0, tagRhs, payload)
		sol := c.Recv(0, tagSol)
		off := 0
		for _, dp := range f.parts {
			for _, gbl := range boundaries(dp.part, dp.global, f.p) {
				rel := gbl - spanLo
				copy(y[rel*b:(rel+1)*b], sol[off:off+b])
				off += b
			}
		}
		if a > 0 {
			ss.xTip = growF(ss.xTip, a)
			copy(ss.xTip, sol[off:off+a])
			xTip = ss.xTip
		}
	} else {
		ss.red = growF(ss.red, nr*b+a)
		rhsRed := ss.red
		// Rank 0's own boundary values.
		copy(rhsRed[0:b], y[(f.parts[0].part.Hi-spanLo)*b:(f.parts[0].part.Hi-spanLo+1)*b])
		for _, dp := range f.parts[1:] {
			top := reducedIndexTop(dp.global)
			copy(rhsRed[top*b:(top+1)*b], y[dp.off*b:(dp.off+1)*b])
			if dp.global < f.p-1 {
				hiRel := dp.off + dp.part.Size() - 1
				copy(rhsRed[(top+1)*b:(top+2)*b], y[hiRel*b:(hiRel+1)*b])
			}
		}
		if a > 0 {
			copy(rhsRed[nr*b:], rhsTip)
			dense.Axpy(1, ss.tipSum, rhsRed[nr*b:])
		}
		for r := 1; r < f.ranks; r++ {
			pl := c.Recv(r, tagRhs)
			off := 0
			for jj := 0; jj < f.counts[r]; jj++ {
				g := f.base[r] + jj
				nb := 2
				if g == f.p-1 {
					nb = 1
				}
				top := reducedIndexTop(g)
				copy(rhsRed[top*b:(top+1)*b], pl[off:off+b])
				if nb == 2 {
					copy(rhsRed[(top+1)*b:(top+2)*b], pl[off+b:off+2*b])
				}
				off += nb * b
			}
			if a > 0 {
				dense.Axpy(1, pl[off:off+a], rhsRed[nr*b:])
			}
		}
		c.Compute(func() { f.red.solve(rhsRed) })
		if a > 0 {
			ss.xTip = growF(ss.xTip, a)
			copy(ss.xTip, rhsRed[nr*b:])
			xTip = ss.xTip
		}
		for r := 1; r < f.ranks; r++ {
			nb := 0
			for jj := 0; jj < f.counts[r]; jj++ {
				if f.base[r]+jj == f.p-1 {
					nb++
				} else {
					nb += 2
				}
			}
			sol := growF(ss.sol, nb*b+a)[:0]
			for jj := 0; jj < f.counts[r]; jj++ {
				g := f.base[r] + jj
				top := reducedIndexTop(g)
				sol = append(sol, rhsRed[top*b:(top+1)*b]...)
				if g < f.p-1 {
					sol = append(sol, rhsRed[(top+1)*b:(top+2)*b]...)
				}
			}
			if a > 0 {
				sol = append(sol, xTip...)
			}
			ss.sol = sol
			c.Send(r, tagSol, sol)
		}
		// Install rank 0's own boundary solutions.
		copy(y[(f.parts[0].part.Hi-spanLo)*b:(f.parts[0].part.Hi-spanLo+1)*b], rhsRed[0:b])
		for _, dp := range f.parts[1:] {
			top := reducedIndexTop(dp.global)
			copy(y[dp.off*b:(dp.off+1)*b], rhsRed[top*b:(top+1)*b])
			if dp.global < f.p-1 {
				hiRel := dp.off + dp.part.Size() - 1
				copy(y[hiRel*b:(hiRel+1)*b], rhsRed[(top+1)*b:(top+2)*b])
			}
		}
	}

	// Backward substitution over every owned partition's interiors.
	c.Compute(func() {
		f.runOwned(func(j int) {
			dp := f.parts[j]
			pv := dp.solveCore(b)
			pv.backward(y[dp.off*b:(dp.off+dp.part.Size())*b], xTip)
		})
	})
	return y, xTip, nil
}

// PPOBTASRefined is PPOBTAS with fp64 iterative refinement against the
// replicated global matrix — the solve companion of a PrecMixed
// factorization. Every rank passes the same full global matrix g (the
// pristine input PPOBTAF consumed a local slice of) and the same
// full-length right-hand side (nGlobal·b + a values); the call is
// collective and returns the full solution vector, replicated on all
// ranks, plus the number of corrections performed.
//
// Each round costs one PPOBTAS plus one AllReduceSum of the full vector:
// every rank scatters its owned span (rank 0 adds the tip) into a zeroed
// full-length buffer, and the sum assembles the replicated solution — the
// spans are disjoint, so the reduction is exact. The residual
// r = rhs − g·x is then computed identically on every rank, which makes
// the convergence decision collectively consistent with no extra
// communication. On a pure-fp64 factor the refinement loop is skipped
// (iters = 0). The returned slice aliases the factor's solve scratch and
// stays valid until the next PPOBTASRefined call.
func PPOBTASRefined(c *comm.Comm, f *DistFactor, g *Matrix, rhsFull []float64) (x []float64, iters int, err error) {
	b, a := f.b, f.a
	d := f.nGlobal*b + a
	if g.N != f.nGlobal || g.B != b || g.A != a {
		return nil, 0, fmt.Errorf("bta: refined solve matrix BTA(n=%d,b=%d,a=%d), factor (n=%d,b=%d,a=%d)",
			g.N, g.B, g.A, f.nGlobal, b, a)
	}
	if len(rhsFull) < d {
		return nil, 0, fmt.Errorf("bta: refined solve rhs length %d < %d", len(rhsFull), d)
	}
	ss := f.solveScratch()
	ss.xFull = growF(ss.xFull, d)
	ss.rFull = growF(ss.rFull, d)
	ss.dxFull = growF(ss.dxFull, d)
	ss.rhsSpan = growF(ss.rhsSpan, f.span.Size()*b)
	x = ss.xFull

	// solveFull runs one distributed solve of the full-length vector v and
	// assembles the replicated full solution into out.
	lo, size := f.span.Lo, f.span.Size()
	solveFull := func(v, out []float64) error {
		copy(ss.rhsSpan, v[lo*b:(lo+size)*b])
		var tip []float64
		if a > 0 {
			tip = v[f.nGlobal*b : f.nGlobal*b+a]
		}
		y, xTip, err := PPOBTAS(c, f, ss.rhsSpan, tip)
		if err != nil {
			return err
		}
		for i := range out[:d] {
			out[i] = 0
		}
		copy(out[lo*b:(lo+size)*b], y)
		if a > 0 && f.rank == 0 {
			// The tip solution is replicated; only rank 0 contributes it to
			// the sum.
			copy(out[f.nGlobal*b:], xTip)
		}
		copy(out[:d], c.AllReduceSum(out[:d]))
		return nil
	}

	if err := solveFull(rhsFull, x); err != nil {
		f.lastRefine = 0
		return nil, 0, err
	}
	if !f.low {
		f.lastRefine = 0
		return x, 0, nil
	}
	maxR := f.opts.MaxRefine
	if maxR <= 0 {
		maxR = DefaultMaxRefine
	}
	r, dx := ss.rFull, ss.dxFull
	for iters < maxR {
		g.MulVec(x, r)
		for i := range r[:d] {
			r[i] = rhsFull[i] - r[i]
		}
		if err := solveFull(r, dx); err != nil {
			f.lastRefine = iters
			return nil, iters, err
		}
		iters++
		var ndx, nx float64
		for i := range dx[:d] {
			x[i] += dx[i]
			if v := math.Abs(dx[i]); v > ndx {
				ndx = v
			}
			if v := math.Abs(x[i]); v > nx {
				nx = v
			}
		}
		if ndx <= refineTol*nx {
			break
		}
	}
	f.lastRefine = iters
	return x, iters, nil
}

// LocalSigma is one rank's slice of the selected inverse Σ on the BTA
// pattern, mirroring the LocalBTA layout. TopCoupling holds
// Σ(Lo, Lo−1) — the coupling to the previous rank — and Tip is the
// replicated Σ over the fixed-effects corner. Under the hybrid topology the
// slice spans all of the rank's partitions, rank-internal partition borders
// included.
type LocalSigma struct {
	Part        Partition
	NGlobal     int
	B, A        int
	Diag        []*dense.Matrix
	Lower       []*dense.Matrix
	TopCoupling *dense.Matrix
	Arrow       []*dense.Matrix
	Tip         *dense.Matrix
}

// DiagVec returns the rank-local marginal variances (the diagonal of the
// owned Σ blocks), Part.Size()·b values.
func (s *LocalSigma) DiagVec() []float64 {
	out := make([]float64, len(s.Diag)*s.B)
	for i, d := range s.Diag {
		for k := 0; k < s.B; k++ {
			out[i*s.B+k] = d.At(k, k)
		}
	}
	return out
}

// sigmaStorage returns the rank-local Σ output storage, recycled from the
// scratch when attached and shape-compatible.
func (f *DistFactor) sigmaStorage() *LocalSigma {
	if f.scr != nil && f.scr.sigma != nil {
		s := f.scr.sigma
		if s.Part == f.span && s.NGlobal == f.nGlobal && s.B == f.b && s.A == f.a {
			return s
		}
	}
	size := f.span.Size()
	out := &LocalSigma{Part: f.span, NGlobal: f.nGlobal, B: f.b, A: f.a}
	out.Diag = make([]*dense.Matrix, size)
	for i := range out.Diag {
		out.Diag[i] = dense.New(f.b, f.b)
	}
	if size > 1 {
		out.Lower = make([]*dense.Matrix, size-1)
		for i := range out.Lower {
			out.Lower[i] = dense.New(f.b, f.b)
		}
	}
	if f.span.Lo > 0 {
		out.TopCoupling = dense.New(f.b, f.b)
	}
	if f.a > 0 {
		out.Arrow = make([]*dense.Matrix, size)
		for i := range out.Arrow {
			out.Arrow[i] = dense.New(f.a, f.b)
		}
		out.Tip = dense.New(f.a, f.a)
	}
	if f.scr != nil {
		f.scr.sigma = out
	}
	return out
}

// redSigStorage returns rank 0's reduced selected-inverse storage, recycled
// from the scratch when attached.
func (f *DistFactor) redSigStorage() *Matrix {
	nr := reducedSize(f.p)
	if f.scr != nil && f.scr.redSig != nil &&
		f.scr.redSig.N == nr && f.scr.redSig.B == f.b && f.scr.redSig.A == f.a {
		return f.scr.redSig
	}
	m := NewMatrix(nr, f.b, f.a)
	if f.scr != nil {
		f.scr.redSig = m
	}
	return m
}

// PPOBTASI is the distributed selected inversion: it computes every block
// of Σ = A⁻¹ on the BTA pattern, with each rank producing the blocks of its
// owned partitions. The interior backward recursions are thin wrappers over
// the shared partition-relative partitionSweep core (the same recursion
// ParallelFactor runs in shared memory), swept concurrently across the
// rank's partitions under the hybrid topology, with comm's Compute hook
// charging the node-level wall time. Collective; requires a prior PPOBTAF.
//
// When the factor carries recycled scratch the returned LocalSigma reuses
// its storage and stays valid until the next PPOBTASI call.
func PPOBTASI(c *comm.Comm, f *DistFactor) (sig *LocalSigma, err error) {
	// Same abort contract as PPOBTAF/PPOBTAS: a communication fault returns
	// a wrapped error instead of wedging the rank, with the recycled Σ
	// storage left attached to the factor for the retry.
	defer func() {
		if r := recover(); r != nil {
			fe := comm.FaultOf(r)
			if fe == nil {
				panic(r)
			}
			sig = nil
			err = fmt.Errorf("bta: distributed selected inversion aborted: %w", fe)
		}
	}()
	a := f.a
	out := f.sigmaStorage()
	if f.p == 1 {
		sig := Matrix{N: f.nGlobal, B: f.b, A: a,
			Diag: out.Diag, Lower: out.Lower, Arrow: out.Arrow, Tip: out.Tip}
		var err error
		c.Compute(func() { err = f.red.selinvInto(&sig) })
		if err != nil {
			return nil, err
		}
		return out, nil
	}

	// Phase 1: reduced-system selected inversion on rank 0, scatter of the
	// boundary Σ blocks into the rank-local storage. botTops retains each
	// owned partition's Σ(hi, lo) — the seed of its sweep's rolling Σ(lo,·).
	botTops := make([]*dense.Matrix, len(f.parts))
	var sigTip *dense.Matrix
	if f.rank == 0 {
		redSig := f.redSigStorage()
		var err error
		c.Compute(func() { err = f.red.selinvInto(redSig) })
		if err != nil {
			return nil, err
		}
		for r := 1; r < f.ranks; r++ {
			for jj := 0; jj < f.counts[r]; jj++ {
				g := f.base[r] + jj
				top := reducedIndexTop(g)
				c.SendMatrix(r, tagSig, redSig.Diag[top])
				c.SendMatrix(r, tagSig+1, redSig.Lower[top-1]) // Σ(lo_g, hi_{g−1})
				if g < f.p-1 {
					c.SendMatrix(r, tagSig+2, redSig.Diag[top+1])
					c.SendMatrix(r, tagSig+3, redSig.Lower[top]) // Σ(hi_g, lo_g)
				}
				if a > 0 {
					c.SendMatrix(r, tagSig+4, redSig.Arrow[top])
					if g < f.p-1 {
						c.SendMatrix(r, tagSig+5, redSig.Arrow[top+1])
					}
				}
			}
		}
		f.installSigmaLocal(out, redSig, botTops)
		if a > 0 {
			sigTip = redSig.Tip
		}
	} else {
		for j, dp := range f.parts {
			size := dp.part.Size()
			out.Diag[dp.off].CopyFrom(c.RecvMatrix(0, tagSig))
			cross := c.RecvMatrix(0, tagSig+1)
			if dp.off == 0 {
				out.TopCoupling.CopyFrom(cross)
			} else {
				out.Lower[dp.off-1].CopyFrom(cross) // rank-internal partition border
			}
			if dp.global < f.p-1 {
				out.Diag[dp.off+size-1].CopyFrom(c.RecvMatrix(0, tagSig+2))
				botTops[j] = c.RecvMatrix(0, tagSig+3)
				if len(dp.interior) == 0 {
					// Size-2 middle partition: its within coupling is a
					// boundary-boundary block of the reduced system.
					out.Lower[dp.off].CopyFrom(botTops[j])
				}
			}
			if a > 0 {
				out.Arrow[dp.off].CopyFrom(c.RecvMatrix(0, tagSig+4))
				if dp.global < f.p-1 {
					out.Arrow[dp.off+size-1].CopyFrom(c.RecvMatrix(0, tagSig+5))
				}
			}
		}
	}
	if a > 0 {
		out.Tip.CopyFrom(c.BcastMatrix(0, sigTip))
	}

	// Phase 2: the per-partition backward recursions over the interiors,
	// through the shared sweep core. Scratch is resolved outside the gang
	// (sweepScratchFor growth is not synchronized) and handed in.
	scratches := make([]*sweepScratch, len(f.parts))
	for j := range f.parts {
		f.parts[j].err = nil
		scratches[j] = f.sweepScratchFor(j)
	}
	c.Compute(func() {
		f.runOwned(func(j int) { f.parts[j].err = f.sweepOwned(out, botTops[j], scratches[j], j) })
	})
	for _, dp := range f.parts {
		if dp.err != nil {
			return nil, dp.err
		}
	}
	return out, nil
}

// installSigmaLocal copies rank 0's own boundary Σ blocks straight from the
// reduced selected inverse (the message-free counterpart of the scatter).
func (f *DistFactor) installSigmaLocal(out *LocalSigma, redSig *Matrix, botTops []*dense.Matrix) {
	a := f.a
	dp0 := f.parts[0]
	bot0 := dp0.off + dp0.part.Size() - 1
	out.Diag[bot0].CopyFrom(redSig.Diag[0])
	if a > 0 {
		out.Arrow[bot0].CopyFrom(redSig.Arrow[0])
	}
	for j, dp := range f.parts[1:] {
		size := dp.part.Size()
		top := reducedIndexTop(dp.global)
		out.Diag[dp.off].CopyFrom(redSig.Diag[top])
		out.Lower[dp.off-1].CopyFrom(redSig.Lower[top-1])
		if a > 0 {
			out.Arrow[dp.off].CopyFrom(redSig.Arrow[top])
		}
		if dp.global < f.p-1 {
			out.Diag[dp.off+size-1].CopyFrom(redSig.Diag[top+1])
			botTops[j+1] = redSig.Lower[top]
			if len(dp.interior) == 0 {
				out.Lower[dp.off].CopyFrom(redSig.Lower[top])
			}
			if a > 0 {
				out.Arrow[dp.off+size-1].CopyFrom(redSig.Arrow[top+1])
			}
		}
	}
}

// sweepOwned runs one owned partition's interior selected-inversion
// recursion through the shared partitionSweep core, writing into the rank's
// slice of Σ. ws must come from sweepScratchFor, resolved before the gang
// launches.
func (f *DistFactor) sweepOwned(out *LocalSigma, botTop *dense.Matrix, ws *sweepScratch, j int) error {
	dp := f.parts[j]
	if len(dp.interior) == 0 {
		return nil
	}
	off, size := dp.off, dp.part.Size()
	pw := partitionSweep{
		L: dp.l, GNext: dp.gNext, GTop: dp.gTop, GArr: dp.gArr,
		Interiors: dp.interior, Base: dp.part.Lo, TwoSided: dp.global != 0,
		Diag:      out.Diag[off : off+size],
		Lower:     out.Lower[off : off+size-1],
		SigBotTop: botTop,
		GN:        ws.gN, GT: ws.gT, GA: ws.gA, TmpB: ws.tmpB,
		LoBuf: ws.loBuf,
		Kind:  "rank", ID: f.rank,
	}
	if f.a > 0 {
		pw.Arrow = out.Arrow[off : off+size]
		pw.SigTip = out.Tip
	}
	return pw.run()
}
