package bta

// Solver is the common surface of the structured BTA solver backends: the
// strictly sequential Factor (POBTAF/POBTAS/POBTASI over all n time blocks)
// and the shared-memory parallel-in-time ParallelFactor (PPOBTAF/PPOBTAS/
// PPOBTASI over a time-domain partitioning run on goroutines). Everything
// the INLA pipeline needs from a factorization — refilling it per
// θ-evaluation, triangular solves (vector and multi-RHS), log-determinant,
// and selected inversion — goes through this interface, so the evaluation
// scheduler can pick the backend per batch shape without the callers
// knowing which one they got.
//
// All implementations are alloc-free after warmup on the Refactorize /
// Solve / SolveMultiInto / LogDet / SelectedInversionInto cycle, and none
// is safe for concurrent use of the *same* instance (use one Solver per
// worker, exactly like Factor).
type Solver interface {
	// Refactorize recomputes the factorization of m in the solver's
	// existing storage. On error (non-SPD input) the factor contents are
	// undefined until the next successful Refactorize; the solver itself
	// stays reusable.
	Refactorize(m *Matrix) error
	// Dim returns the full system dimension n·b + a.
	Dim() int
	// LogDet returns log|A| of the last successfully factorized matrix.
	LogDet() float64
	// Solve solves A·x = rhs in place of rhs.
	Solve(rhs []float64)
	// SolveLT solves L̃ᵀ·x = x in place for the backend's own Cholesky
	// factor L̃ (GMRF sampling: x = L̃⁻ᵀz has covariance A⁻¹ for z ~ N(0,I),
	// whichever elimination ordering the backend uses).
	SolveLT(x []float64)
	// SolveMultiInto solves A·X = B in place of the workspace RHS for all
	// columns.
	SolveMultiInto(w *MultiSolve)
	// ForwardSolveMultiInto computes the half solve Y = L̃⁻¹·B in place of
	// the workspace RHS. Column squared norms equal φᵀA⁻¹φ for every
	// backend (the quantity batched prediction variances need), though the
	// entries themselves depend on the backend's elimination ordering.
	ForwardSolveMultiInto(w *MultiSolve)
	// SelectedInversionInto computes the blocks of Σ = A⁻¹ on the BTA
	// pattern into caller-owned storage, without allocating after warmup.
	SelectedInversionInto(sig *Matrix) error
	// SelectedInversion is the allocating convenience wrapper.
	SelectedInversion() (*Matrix, error)
}

var (
	_ Solver = (*Factor)(nil)
	_ Solver = (*ParallelFactor)(nil)
)

// NewSolver builds a solver backend for the BTA shape: the sequential
// Factor for partitions ≤ 1, the shared-memory parallel-in-time
// ParallelFactor otherwise. partitions is clamped to
// MaxUsefulPartitions(n) rather than rejected, so callers can pass a core
// budget directly — a budget the time dimension cannot absorb degrades to
// fewer partitions, ultimately to the sequential chain, never to a
// partitioning slower than it.
func NewSolver(n, b, a, partitions int) (Solver, error) {
	if mx := MaxUsefulPartitions(n); partitions > mx {
		partitions = mx
	}
	if partitions <= 1 {
		return NewFactor(n, b, a), nil
	}
	return NewParallelFactor(n, b, a, partitions)
}
