package bta

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"time"

	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/sched"
)

// Precomputed pprof label contexts for the DAG phases: applying a label set
// is allocation-free, so `dalia-bench -cpuprofile` attributes samples per
// phase without disturbing the AllocsPerRun pins.
var (
	labelElim    = sched.LabelCtx("phase", "elim")
	labelReduced = sched.LabelCtx("phase", "reduced")
	labelSweep   = sched.LabelCtx("phase", "sweep")
	labelSigma   = sched.LabelCtx("phase", "sigma")
	labelNone    = context.Background()
)

// phaseLabelCtx maps a gang phase to its pprof label context: interior
// eliminations are "elim", forward/backward substitutions "sweep", and the
// selected-inversion recursions "sigma" ("reduced" is applied around the
// boundary-system work directly).
func phaseLabelCtx(ph int) context.Context {
	switch ph {
	case phaseElim:
		return labelElim
	case phaseSweep:
		return labelSigma
	default:
		return labelSweep
	}
}

// relabel swaps the calling goroutine's pprof label set (alloc-free).
func relabel(ctx context.Context) { pprof.SetGoroutineLabels(ctx) }

// DefaultLoadBalance is the load-balance factor ParallelFactor hands to
// PartitionBlocks: the first partition runs the cheaper one-sided
// elimination (no top-boundary updates, §V-C), so it gets ~1.7× the blocks
// of the two-sided partitions to equalize the per-partition makespan.
const DefaultLoadBalance = 1.7

// MaxPartitions returns the largest partition count PartitionBlocks accepts
// for n diagonal blocks (middle partitions need two boundary blocks, so
// n ≥ 2p−2).
func MaxPartitions(n int) int {
	p := (n + 2) / 2
	if p < 1 {
		p = 1
	}
	return p
}

// MaxUsefulPartitions bounds the parallel-in-time width by diminishing
// returns rather than bare partitionability: beyond n/4 partitions the
// 2P−2-block sequential reduced system rivals the per-partition interior
// work and the speedup collapses (§V-B's strong-scaling knee). This is the
// clamp schedulers should use when converting a core budget to a width.
func MaxUsefulPartitions(n int) int {
	p := n / 4
	if mx := MaxPartitions(n); p > mx {
		p = mx
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Gang phases dispatched to the partition workers. Per-call inputs travel
// through the curRhs/curMS/curSig fields, set before the workers launch.
const (
	phaseElim = iota
	phaseFwd
	phaseBwd
	phaseFwdMS
	phaseBwdMS
	phaseSweep
)

// partState is one partition's persistent slice of the parallel factor:
// elimination outputs, fill-chain storage, Schur/tip accumulators and the
// selected-inversion sweep scratch. Everything is allocated once at
// construction so repeated Refactorize/Solve/SelectedInversionInto cycles
// stay allocation-free.
type partState struct {
	part      Partition
	interiors []int // global block indices, elimination order

	chain     []*dense.Matrix // fill-coupling blocks M(lo,·), b×b
	chainUsed int
	newBB     func() *dense.Matrix // prebuilt pop-from-chain closure

	// partitionElim output backings (gTop is the one the solves consume;
	// l/gNext/gArr are recoverable from the global storage by index).
	l, gNext, gTop, gArr []*dense.Matrix
	fill                 *dense.Matrix
	tipDelta             *dense.Matrix // a×a Schur accumulator
	tipVec               []float64     // a-vector forward-solve accumulator

	// multi-RHS forward accumulator: backing grown to the widest batch
	// seen, plus memoized width views (cleared when the backing regrows).
	tipMS      *dense.Matrix
	tipMSViews map[int]*dense.Matrix

	// selected-inversion sweep scratch
	gN, gT, tmpB *dense.Matrix    // b×b
	gA           *dense.Matrix    // a×b
	loBuf        [2]*dense.Matrix // b×b ping-pong for the rolling Σ(lo,·)

	// fp32 shadow arena of the interior sweep (nil under PrecFloat64)
	shadow *elimShadow32

	err error
}

// ParallelFactor is the shared-memory parallel-in-time BTA solver: the
// PPOBTAF/PPOBTAS/PPOBTASI scheme of §IV-C–E run over goroutines instead of
// communicator ranks. The nt diagonal blocks are split into P contiguous
// partitions (PartitionBlocks); Refactorize eliminates every partition's
// interior blocks concurrently (two-sided for non-first partitions), then
// factorizes the 2P−2-block reduced boundary system sequentially. Solves
// and the selected inversion follow the same interior-parallel /
// reduced-sequential structure.
//
// Unlike the comm-based DistFactor there are no ranks and no message
// copies: all partitions share the factor's block storage, boundary Schur
// contributions land in per-partition accumulators, and the reduced system
// is assembled by plain block copies. All storage — including the gang of
// worker closures — is created at construction, so every operation of the
// Solver surface is allocation-free after warmup.
//
// A ParallelFactor is not safe for concurrent use of the same instance
// (exactly like Factor); different instances may run concurrently.
type ParallelFactor struct {
	N, B, A int
	P       int

	opts  ParallelOptions
	parts []Partition
	store *Matrix // factor block storage, Matrix layout

	seq *Factor // P == 1 delegate over store (nil otherwise)

	ps        []*partState
	red       *Matrix        // reduced boundary system, 2P−2 blocks
	eng       *reducedEngine // sequential or recursively nested reduced solver
	redSig    *Matrix        // reduced selected inverse
	redRhs    []float64
	redGlobal []int       // reduced block index → global block index
	redMS     *MultiSolve // lazily sized multi-RHS reduced workspace

	// Task-DAG scheduling state: the executor the factor's phases run on
	// (nil = legacy phase-barrier goroutine gang), the join group, and the
	// caller-owned task nodes reused across cycles — phase tasks for
	// partitions 1..P−1, pipelined-elimination tasks for all partitions,
	// and the Σ-scatter DAG's install→sweep pairs.
	ex          *sched.Executor
	g           sched.Group
	tasks       []sched.Task
	tasksPipe   []sched.Task
	taskInstall []sched.Task
	taskSweep   []sched.Task
	fnPhase     []func()
	fnInstall   []func()
	fnSweep     []func()

	// gang state
	work  []func() // prebuilt workers for partitions 1..P−1
	done  chan struct{}
	phase int
	// per-call inputs for the phase workers
	curM   *Matrix
	curRhs []float64
	curMS  *MultiSolve
	curSig *Matrix

	// pipelined-handoff state: one prebuilt worker per partition signalling
	// its elimination completion, the delivery bitmap, the incremental
	// reduced-factorization frontier, and the per-partition tip deltas in
	// the frontier's fold order.
	workPipe  []func()
	elimDone  chan int
	delivered []bool
	frontier  redFrontier
	tipDeltas []*dense.Matrix

	// Mixed-precision state (precision.go): the retained input matrix of the
	// last Refactorize (fp64 residual corrections), the low flag, and the
	// refinement scratch. Same single-instance concurrency contract as the
	// rest of the struct.
	ref        *Matrix
	low        bool
	lastRefine int
	refB, refR []float64

	// wall-clock split of the last Refactorize (FactorPhaseSeconds).
	elimSeconds  float64
	totalSeconds float64
}

// ParallelOptions configures a shared-memory parallel-in-time factor beyond
// the partition count.
type ParallelOptions struct {
	// Partitions is the parallel-in-time width P (< 1 is treated as 1).
	Partitions int
	// LoadBalance is the §V-C first-partition factor handed to
	// PartitionBlocks (0 = DefaultLoadBalance).
	LoadBalance float64
	// Reduced configures the 2P−2 reduced boundary system: recursive
	// nesting depth, recursion crossover, and the pipelined boundary
	// handoff.
	Reduced ReducedOptions
	// Precision selects the per-stage precision policy: under PrecMixed the
	// partition interior sweeps run fp32 (with per-partition fp64 fallback on
	// lost definiteness) while the reduced boundary system stays fp64, and
	// solves run fp64 iterative refinement. See the Precision doc.
	Precision Precision
	// MaxRefine caps the fp64 residual corrections per refined solve
	// (0 = DefaultMaxRefine).
	MaxRefine int
	// PhaseBarrier forces the legacy per-phase goroutine gang (spawn P−1
	// goroutines, barrier, next phase) instead of scheduling the phases as
	// tasks on the shared work-stealing executor. The default (false) runs
	// the task-DAG path, which interleaves this factor's partition work
	// with tasks from other concurrent operations — bit-identical results,
	// better core occupancy. The barrier mode exists for the scheduler
	// benchmark and the determinism suite.
	PhaseBarrier bool
	// Executor overrides the task executor the DAG path runs on
	// (nil = sched.Shared()). Ignored under PhaseBarrier.
	Executor *sched.Executor
}

// NewParallelFactor allocates a parallel-in-time factor for the BTA shape
// (n, b, a) over p partitions with the default options (sequential reduced
// solve, no pipelining — the historical behaviour). p = 1 degenerates to
// the sequential POBTAF chain behind the same interface. Partition counts
// the time dimension cannot support (n < 2p−2) are an error; MaxPartitions
// gives the bound.
func NewParallelFactor(n, b, a, p int) (*ParallelFactor, error) {
	return NewParallelFactorOpts(n, b, a, ParallelOptions{Partitions: p})
}

// NewParallelFactorOpts is NewParallelFactor with the reduced-system engine
// configured: recursion depth/crossover for the nested reduced
// factorization and the pipelined boundary handoff.
func NewParallelFactorOpts(n, b, a int, o ParallelOptions) (*ParallelFactor, error) {
	p := o.Partitions
	if p < 1 {
		p = 1
	}
	o.Partitions = p
	o.Reduced = o.Reduced.normalize()
	f := &ParallelFactor{N: n, B: b, A: a, P: p, opts: o, store: NewMatrix(n, b, a)}
	if p == 1 {
		f.parts = []Partition{{0, n - 1}}
		f.seq = &Factor{N: n, B: b, A: a,
			Diag: f.store.Diag, Lower: f.store.Lower, Arrow: f.store.Arrow, Tip: f.store.Tip}
		f.seq.SetPrecision(o.Precision)
		f.seq.SetMaxRefine(o.MaxRefine)
		return f, nil
	}
	lb := o.LoadBalance
	if lb <= 0 {
		lb = DefaultLoadBalance
	}
	parts, err := PartitionBlocks(n, p, lb)
	if err != nil {
		// The load-balanced split can fail on tiny block counts where the
		// even split still fits.
		parts, err = PartitionBlocks(n, p, 1)
		if err != nil {
			return nil, err
		}
	}
	f.parts = parts

	nr := reducedSize(p)
	f.red = NewMatrix(nr, b, a)
	f.eng, err = newReducedEngine(f.red, o.Reduced, o.PhaseBarrier)
	if err != nil {
		return nil, err
	}
	f.redSig = NewMatrix(nr, b, a)
	f.redRhs = make([]float64, nr*b+a)
	f.redGlobal = make([]int, nr)
	f.redGlobal[0] = parts[0].Hi
	for r := 1; r < p; r++ {
		f.redGlobal[reducedIndexTop(r)] = parts[r].Lo
		if r < p-1 {
			f.redGlobal[reducedIndexBot(r)] = parts[r].Hi
		}
	}

	f.ps = make([]*partState, p)
	for r := 0; r < p; r++ {
		ps := &partState{part: parts[r]}
		ps.interiors = interiors(parts[r], r, p)
		nInt := len(ps.interiors)
		if r > 0 {
			ps.chain = make([]*dense.Matrix, nInt+1)
			for i := range ps.chain {
				ps.chain[i] = dense.New(b, b)
			}
		}
		ps.newBB = func() *dense.Matrix {
			m := ps.chain[ps.chainUsed]
			ps.chainUsed++
			return m
		}
		ps.l = make([]*dense.Matrix, 0, nInt)
		ps.gNext = make([]*dense.Matrix, 0, nInt)
		ps.gTop = make([]*dense.Matrix, 0, nInt)
		ps.gArr = make([]*dense.Matrix, 0, nInt)
		if a > 0 {
			ps.tipDelta = dense.New(a, a)
			ps.tipVec = make([]float64, a)
			ps.gA = dense.New(a, b)
		}
		ps.gN = dense.New(b, b)
		ps.tmpB = dense.New(b, b)
		if r > 0 {
			ps.gT = dense.New(b, b)
			ps.loBuf[0] = dense.New(b, b)
			ps.loBuf[1] = dense.New(b, b)
		}
		ps.tipMSViews = map[int]*dense.Matrix{}
		if o.Precision == PrecMixed {
			size := parts[r].Hi - parts[r].Lo + 1
			nChain := 0
			if r > 0 {
				nChain = nInt + 1
			}
			ps.shadow = newElimShadow32(size, nChain, b, a)
		}
		f.ps[r] = ps
	}

	// The worker gang: one prebuilt closure per non-first partition,
	// spawned per phase with `go f.work[r]()` — goroutine launches of
	// preallocated funcvals perform no heap allocation, which keeps the
	// whole operation surface AllocsPerRun-clean without pinning
	// long-lived worker goroutines to the factor's lifetime.
	f.done = make(chan struct{}, p-1)
	f.work = make([]func(), p)
	for r := 1; r < p; r++ {
		r := r
		f.work[r] = func() {
			f.partitionPhase(r)
			f.done <- struct{}{}
		}
	}
	// Pipelined-handoff gang: every partition (0 included) runs on its own
	// goroutine and signals its identity on completion, so the calling
	// goroutine can stream boundary contributions into the reduced assembly
	// while later partitions are still eliminating.
	f.elimDone = make(chan int, p)
	f.workPipe = make([]func(), p)
	for r := 0; r < p; r++ {
		r := r
		f.workPipe[r] = func() {
			f.partitionPhase(r)
			f.elimDone <- r
		}
	}
	f.delivered = make([]bool, p)
	f.tipDeltas = make([]*dense.Matrix, p)
	for r, ps := range f.ps {
		f.tipDeltas[r] = ps.tipDelta
	}
	// Task-DAG mode (the default): phases are spawned as caller-owned task
	// nodes on the shared work-stealing executor instead of fresh goroutine
	// gangs. Bodies are prebuilt once here so steady-state spawning stays
	// allocation-free.
	if !o.PhaseBarrier {
		f.ex = o.Executor
		if f.ex == nil {
			f.ex = sched.Shared()
		}
		f.g.Init(f.ex)
		f.tasks = make([]sched.Task, p)
		f.tasksPipe = make([]sched.Task, p)
		f.taskInstall = make([]sched.Task, p)
		f.taskSweep = make([]sched.Task, p)
		f.fnPhase = make([]func(), p)
		f.fnInstall = make([]func(), p)
		f.fnSweep = make([]func(), p)
		for r := 1; r < p; r++ {
			r := r
			f.fnPhase[r] = func() { f.partitionPhase(r) }
			f.fnInstall[r] = func() { f.installSigmaPart(r) }
			f.fnSweep[r] = func() { f.ps[r].err = f.sweepPartition(r, f.curSig) }
		}
	}
	return f, nil
}

// Options returns the options the factor was built with (normalized).
func (f *ParallelFactor) Options() ParallelOptions { return f.opts }

// ReducedRecursing reports whether the reduced boundary system is
// factorized by a recursively nested partition gang (depth and crossover
// permitting) rather than the sequential kernel.
func (f *ParallelFactor) ReducedRecursing() bool { return f.P > 1 && f.eng.recursing() }

// FactorPhaseSeconds returns the wall-clock split of the last Refactorize:
// elim is the time until the last partition finished its interior
// elimination, tail the remainder — the reduced-system work that did not
// overlap the interior sweeps. tail/(elim+tail) is the serial fraction the
// reduced-system engine attacks; both are 0 for P = 1 (no reduced system).
func (f *ParallelFactor) FactorPhaseSeconds() (elim, tail float64) {
	if f.P == 1 {
		return 0, 0
	}
	return f.elimSeconds, f.totalSeconds - f.elimSeconds
}

// Parts returns the time-domain partitioning.
func (f *ParallelFactor) Parts() []Partition { return f.parts }

// Dim returns the full system dimension.
func (f *ParallelFactor) Dim() int { return f.N*f.B + f.A }

// runPhase fans the current phase out to the partition gang. In task-DAG
// mode (f.ex != nil) partitions 1..P−1 become tasks on a pooled lane of
// the shared executor — runnable by any worker or helping joiner, and
// interleaved with tasks from other concurrent operations — while
// partition 0 runs on the calling goroutine, which then help-joins. In
// phase-barrier mode the legacy goroutine gang runs instead. Either way
// every partition's work has completed when runPhase returns, and the
// arithmetic performed is identical.
func (f *ParallelFactor) runPhase(ph int) {
	f.phase = ph
	if f.ex == nil {
		for r := 1; r < f.P; r++ {
			go f.work[r]()
		}
		f.partitionPhase(0)
		for r := 1; r < f.P; r++ {
			<-f.done
		}
		return
	}
	lbl := phaseLabelCtx(ph)
	l := f.ex.AcquireLane()
	f.g.Add(f.P - 1)
	for r := 1; r < f.P; r++ {
		f.tasks[r].Reset(f.ex, &f.g, f.fnPhase[r], lbl)
		l.Spawn(&f.tasks[r])
	}
	relabel(lbl)
	f.partitionPhase(0)
	f.g.Wait(l)
	relabel(labelNone)
	f.ex.ReleaseLane(l)
}

func (f *ParallelFactor) partitionPhase(r int) {
	switch f.phase {
	case phaseElim:
		f.ps[r].err = f.elimPartition(r)
	case phaseFwd:
		f.forwardPartition(r, f.curRhs)
	case phaseBwd:
		f.backwardPartition(r, f.curRhs)
	case phaseFwdMS:
		f.forwardPartitionMS(r, f.curMS)
	case phaseBwdMS:
		f.backwardPartitionMS(r, f.curMS)
	case phaseSweep:
		f.ps[r].err = f.sweepPartition(r, f.curSig)
	}
}

// Refactorize recomputes the parallel factorization of m in place of f's
// storage (the PPOBTAF sweep). m is not modified. On error the factor
// contents are undefined until the next successful Refactorize; all
// recycled scratch (fill chains, accumulators) is retained either way, so
// infeasible-θ failures in the INLA loop cost no allocation churn.
func (f *ParallelFactor) Refactorize(m *Matrix) error {
	if f.N != m.N || f.B != m.B || f.A != m.A {
		return fmt.Errorf("bta: refactorize shape mismatch: parallel factor (n=%d,b=%d,a=%d), matrix (n=%d,b=%d,a=%d)",
			f.N, f.B, f.A, m.N, m.B, m.A)
	}
	if f.P == 1 {
		return f.seq.Refactorize(m)
	}
	// Retained for the fp64 residual corrections of refined solves; m must
	// stay unchanged until the next Refactorize (see Factor.Refactorize).
	f.ref = m
	f.low = false
	t0 := time.Now()
	if f.A > 0 {
		f.store.Tip.CopyFrom(m.Tip)
	}
	f.curM = m
	var err error
	if f.opts.Reduced.Pipeline {
		err = f.refactorizePipelined(t0)
	} else {
		f.runPhase(phaseElim)
		f.elimSeconds = time.Since(t0).Seconds()
		err = nil
		for _, ps := range f.ps {
			if ps.err != nil {
				err = ps.err
				break
			}
		}
		if err == nil {
			err = f.factorReduced()
		}
	}
	f.curM = nil
	f.totalSeconds = time.Since(t0).Seconds()
	// Partitions whose fp32 sweep fell back to fp64 only tighten the factor;
	// the refinement loop converges faster there, so the whole factor is
	// treated as low whenever the policy is mixed.
	f.low = err == nil && f.opts.Precision == PrecMixed
	return err
}

// refactorizePipelined is the pipelined-boundary-handoff elimination: every
// partition runs on its own goroutine and reports completion, while this
// (the calling) goroutine streams finished partitions' boundary blocks into
// the reduced assembly in partition order. With the sequential reduced
// engine the assembly feeds the incremental factorization frontier, so
// reduced-phase work overlaps the tail of the interior sweeps; with a
// nested (recursive) engine the streaming covers the assembly copies and
// the nested gang launches once the last contribution lands.
func (f *ParallelFactor) refactorizePipelined(t0 time.Time) error {
	for i := range f.delivered {
		f.delivered[i] = false
	}
	f.phase = phaseElim
	var lane *sched.Lane
	if f.ex == nil {
		for r := 0; r < f.P; r++ {
			go f.workPipe[r]()
		}
	} else {
		// Every partition (0 included) becomes an elimination task that
		// signals its identity on completion; the calling goroutine streams
		// the reduced assembly below and runs pending tasks between
		// completion signals (recvElim), so it is a full gang member too.
		// The tasks are also counted into the join group: the channel send
		// happens inside the task body, so the group join below is what
		// guarantees the node epilogues finished before the nodes are
		// reused by the next Refactorize.
		lane = f.ex.AcquireLane()
		f.g.Add(f.P)
		for r := 0; r < f.P; r++ {
			f.tasksPipe[r].Reset(f.ex, &f.g, f.workPipe[r], labelElim)
			lane.Spawn(&f.tasksPipe[r])
		}
	}
	red := f.red
	if f.A > 0 {
		red.Tip.CopyFrom(f.store.Tip)
	}
	stream := !f.eng.recursing()
	if stream {
		f.frontier.reset(red, f.P, f.tipDeltas)
	}
	installed := -1
	failed := false
	for done := 0; done < f.P; done++ {
		r := f.recvElim(lane)
		if done == f.P-1 {
			// The interior phase ends here — before the trailing installs
			// and frontier steps below, which are exactly the reduced work
			// that did NOT overlap the sweeps and must land in the tail.
			f.elimSeconds = time.Since(t0).Seconds()
		}
		f.delivered[r] = true
		if f.ps[r].err != nil {
			failed = true
		}
		if failed {
			continue
		}
		relabel(labelReduced)
		for installed+1 < f.P && f.delivered[installed+1] {
			installed++
			f.installReducedPart(installed)
			if stream {
				f.frontier.advance(installed)
			}
		}
		relabel(labelNone)
	}
	if lane != nil {
		f.g.Wait(lane)
		f.ex.ReleaseLane(lane)
	}
	// Surface elimination failures deterministically (partition order).
	for _, ps := range f.ps {
		if ps.err != nil {
			return ps.err
		}
	}
	relabel(labelReduced)
	defer relabel(labelNone)
	if stream {
		if err := f.frontier.finish(); err != nil {
			return fmt.Errorf("bta: reduced boundary system: %w", err)
		}
		return nil
	}
	if f.A > 0 {
		for _, ps := range f.ps {
			red.Tip.Add(1, ps.tipDelta)
		}
	}
	if err := f.eng.factorize(red); err != nil {
		return fmt.Errorf("bta: reduced boundary system: %w", err)
	}
	return nil
}

// recvElim receives one partition-completion signal. In task-DAG mode the
// calling goroutine runs pending light tasks between polls — it is both
// the reduced-assembly streamer and a gang member — and blocks on the
// channel only when nothing is runnable (its own tasks are then in flight
// on other goroutines).
func (f *ParallelFactor) recvElim(lane *sched.Lane) int {
	if lane == nil {
		return <-f.elimDone
	}
	for {
		select {
		case r := <-f.elimDone:
			return r
		default:
		}
		if !lane.Help() {
			return <-f.elimDone
		}
	}
}

// elimPartition copies the partition's slice of the input matrix into the
// shared factor storage and runs the shared interior elimination core on it.
func (f *ParallelFactor) elimPartition(r int) error {
	ps := f.ps[r]
	lo, hi := ps.part.Lo, ps.part.Hi
	m := f.curM
	for k := lo; k <= hi; k++ {
		f.store.Diag[k].CopyFrom(m.Diag[k])
		if k < hi {
			f.store.Lower[k].CopyFrom(m.Lower[k])
		}
		if f.A > 0 {
			f.store.Arrow[k].CopyFrom(m.Arrow[k])
		}
	}
	if r > 0 {
		f.store.Lower[lo-1].CopyFrom(m.Lower[lo-1])
	}

	ps.chainUsed = 0
	pe := partitionElim{
		Diag:      f.store.Diag[lo : hi+1],
		Lower:     f.store.Lower[lo:hi],
		Interiors: ps.interiors,
		Base:      lo,
		TwoSided:  r != 0,
		NewBB:     ps.newBB,
		Kind:      "partition",
		ID:        r,
		L:         ps.l[:0],
		GNext:     ps.gNext[:0],
		GTop:      ps.gTop[:0],
		GArr:      ps.gArr[:0],
		Prec:      f.opts.Precision,
		Shadow:    ps.shadow,
	}
	if f.A > 0 {
		pe.Arrow = f.store.Arrow[lo : hi+1]
		ps.tipDelta.Zero()
		pe.TipDelta = ps.tipDelta
	}
	err := pe.run()
	ps.l, ps.gNext, ps.gTop, ps.gArr, ps.fill = pe.L, pe.GNext, pe.GTop, pe.GArr, pe.Fill
	return err
}

// factorReduced assembles the 2P−2-block reduced boundary system from the
// post-elimination boundary blocks and hands it to the reduced engine
// (sequential in-place factorization, or the nested gang when recursing).
func (f *ParallelFactor) factorReduced() error {
	relabel(labelReduced)
	defer relabel(labelNone)
	red := f.red
	if f.A > 0 {
		red.Tip.CopyFrom(f.store.Tip)
		for _, ps := range f.ps {
			red.Tip.Add(1, ps.tipDelta)
		}
	}
	for r := 0; r < f.P; r++ {
		f.installReducedPart(r)
	}
	if err := f.eng.factorize(red); err != nil {
		return fmt.Errorf("bta: reduced boundary system: %w", err)
	}
	return nil
}

// installReducedPart copies partition r's boundary contribution into the
// reduced system: its post-elimination boundary Diag/Arrow blocks, the
// untouched coupling to the previous partition, and the remaining
// boundary-boundary fill of middle partitions. Safe to call as soon as
// partition r's elimination finished — every destination block belongs to r
// alone. Tip deltas are deliberately excluded (the caller folds them at
// fixed points of the operation sequence).
func (f *ParallelFactor) installReducedPart(r int) {
	red, parts := f.red, f.parts
	hasArrow := f.A > 0
	if r == 0 {
		red.Diag[0].CopyFrom(f.store.Diag[parts[0].Hi])
		if hasArrow {
			red.Arrow[0].CopyFrom(f.store.Arrow[parts[0].Hi])
		}
		return
	}
	top := reducedIndexTop(r)
	lo, hi := parts[r].Lo, parts[r].Hi
	red.Lower[top-1].CopyFrom(f.store.Lower[lo-1]) // (lo_r, hi_{r−1}), untouched original
	red.Diag[top].CopyFrom(f.store.Diag[lo])
	if hasArrow {
		red.Arrow[top].CopyFrom(f.store.Arrow[lo])
	}
	if r < f.P-1 {
		red.Diag[top+1].CopyFrom(f.store.Diag[hi])
		f.ps[r].fill.TransposeInto(red.Lower[top]) // (hi_r, lo_r) = M(lo_r, hi_r)ᵀ
		if hasArrow {
			red.Arrow[top+1].CopyFrom(f.store.Arrow[hi])
		}
	}
}

// LogDet returns log|A|: interior Cholesky diagonals plus the reduced
// factor's log-determinant.
func (f *ParallelFactor) LogDet() float64 {
	if f.P == 1 {
		return f.seq.LogDet()
	}
	var s float64
	for _, ps := range f.ps {
		for _, k := range ps.interiors {
			d := f.store.Diag[k]
			for i := 0; i < f.B; i++ {
				s += math.Log(d.At(i, i))
			}
		}
	}
	return 2*s + f.eng.logDet()
}

// Solve solves A·x = rhs in place of rhs (the PPOBTAS sweeps in shared
// memory): parallel forward elimination over the partition interiors, a
// sequential reduced solve over the boundaries, parallel backward
// substitution.
func (f *ParallelFactor) Solve(rhs []float64) {
	if len(rhs) < f.Dim() {
		panic(fmt.Sprintf("bta: solve rhs length %d < %d", len(rhs), f.Dim()))
	}
	if f.P == 1 {
		f.seq.Solve(rhs)
		return
	}
	if f.low {
		f.solveRefined(rhs)
		return
	}
	f.solveOnce(rhs)
}

// solveOnce is the unrefined PPOBTAS sweep.
func (f *ParallelFactor) solveOnce(rhs []float64) {
	f.curRhs = rhs
	f.runPhase(phaseFwd)
	f.gatherRhs(rhs, true)
	f.eng.solve(f.redRhs)
	f.scatterRhs(rhs)
	f.runPhase(phaseBwd)
	f.curRhs = nil
}

// solveRefined is Solve against a mixed-precision factor: fp64 residual
// corrections against the retained input matrix, exactly as in
// Factor.solveRefined but with the parallel sweep as the inner solver.
func (f *ParallelFactor) solveRefined(rhs []float64) {
	d := f.Dim()
	f.refB = growF(f.refB, d)
	f.refR = growF(f.refR, d)
	b0, r := f.refB, f.refR
	x := rhs[:d]
	copy(b0, x)
	f.solveOnce(x)
	maxR := f.opts.MaxRefine
	if maxR <= 0 {
		maxR = DefaultMaxRefine
	}
	iters := 0
	for iters < maxR {
		f.ref.MulVec(x, r)
		for i := range r {
			r[i] = b0[i] - r[i]
		}
		f.solveOnce(r)
		iters++
		var ndx, nx float64
		for i := range r {
			x[i] += r[i]
			if v := math.Abs(r[i]); v > ndx {
				ndx = v
			}
			if v := math.Abs(x[i]); v > nx {
				nx = v
			}
		}
		if ndx <= refineTol*nx {
			break
		}
	}
	f.lastRefine = iters
}

// LastRefineIters reports the fp64 residual corrections of the most recent
// refined solve (0 after a pure-fp64 solve).
func (f *ParallelFactor) LastRefineIters() int {
	if f.P == 1 {
		return f.seq.LastRefineIters()
	}
	return f.lastRefine
}

// Low reports whether the current factor blocks came from the fp32 sweeps.
func (f *ParallelFactor) Low() bool {
	if f.P == 1 {
		return f.seq.Low()
	}
	return f.low
}

// promote replaces a mixed factor with a full fp64 refactorization of the
// retained matrix — for operations with no residual to refine against
// (sampling half-solves, multi-RHS half solves, selected inversion). Cannot
// lose definiteness: fp64 is strictly more robust than the fp32 sweep that
// already succeeded. No-op on fp64 factors.
func (f *ParallelFactor) promote() {
	if !f.low || f.ref == nil {
		return
	}
	saved := f.opts.Precision
	f.opts.Precision = PrecFloat64
	err := f.Refactorize(f.ref)
	f.opts.Precision = saved
	if err != nil {
		panic(fmt.Sprintf("bta: fp64 promotion of an fp32-feasible parallel factor failed: %v", err))
	}
}

// SolveLT solves L̃ᵀ·x = x in place for the parallel factor's own Cholesky
// ordering (interiors first, boundaries last). For z ~ N(0, I) the result
// has covariance A⁻¹ — i.i.d. Gaussian vectors are invariant under the
// implicit symmetric permutation — so GMRF sampling works identically
// through either backend.
func (f *ParallelFactor) SolveLT(x []float64) {
	if len(x) < f.Dim() {
		panic(fmt.Sprintf("bta: SolveLT length %d < %d", len(x), f.Dim()))
	}
	if f.P == 1 {
		f.seq.SolveLT(x)
		return
	}
	f.promote() // half-solves have no residual to refine against
	f.gatherRhs(x, false)
	f.eng.solveLT(f.redRhs)
	f.scatterRhs(x)
	f.curRhs = x
	f.runPhase(phaseBwd)
	f.curRhs = nil
}

// gatherRhs copies the boundary blocks and the tip into the reduced
// right-hand side. withAcc folds the partitions' forward tip accumulators
// in — only correct right after a forward phase.
func (f *ParallelFactor) gatherRhs(rhs []float64, withAcc bool) {
	b, a := f.B, f.A
	for i, g := range f.redGlobal {
		copy(f.redRhs[i*b:(i+1)*b], rhs[g*b:(g+1)*b])
	}
	if a > 0 {
		tip := f.redRhs[len(f.redGlobal)*b:]
		copy(tip, rhs[f.N*b:f.N*b+a])
		if withAcc {
			for _, ps := range f.ps {
				dense.Axpy(1, ps.tipVec, tip)
			}
		}
	}
}

// scatterRhs copies the reduced solution back into the boundary and tip
// slots of the full vector.
func (f *ParallelFactor) scatterRhs(rhs []float64) {
	b, a := f.B, f.A
	for i, g := range f.redGlobal {
		copy(rhs[g*b:(g+1)*b], f.redRhs[i*b:(i+1)*b])
	}
	if a > 0 {
		copy(rhs[f.N*b:f.N*b+a], f.redRhs[len(f.redGlobal)*b:])
	}
}

// solveCore builds the shared partition-relative solve core over partition
// r's elimination outputs (valid after a successful Refactorize).
func (f *ParallelFactor) solveCore(r int) partitionSolve {
	ps := f.ps[r]
	return partitionSolve{
		L: ps.l, GNext: ps.gNext, GTop: ps.gTop, GArr: ps.gArr,
		Interiors: ps.interiors, Base: ps.part.Lo, B: f.B,
	}
}

// forwardPartition runs the interior forward elimination of one partition
// through the shared partitionSolve core, accumulating arrow contributions
// in the partition's private tip accumulator.
func (f *ParallelFactor) forwardPartition(r int, rhs []float64) {
	ps := f.ps[r]
	for i := range ps.tipVec {
		ps.tipVec[i] = 0
	}
	pv := f.solveCore(r)
	pv.forward(rhs[ps.part.Lo*f.B:(ps.part.Hi+1)*f.B], ps.tipVec)
}

// backwardPartition runs the interior backward substitution of one
// partition against the already-final boundary and tip solutions.
func (f *ParallelFactor) backwardPartition(r int, rhs []float64) {
	ps := f.ps[r]
	var xa []float64
	if f.A > 0 {
		xa = rhs[f.N*f.B : f.N*f.B+f.A]
	}
	pv := f.solveCore(r)
	pv.backward(rhs[ps.part.Lo*f.B:(ps.part.Hi+1)*f.B], xa)
}

// reducedMS returns the reduced multi-RHS workspace narrowed to k columns,
// growing the backing on first use (or a wider batch than ever seen).
func (f *ParallelFactor) reducedMS(k int) *MultiSolve {
	if f.redMS == nil || f.redMS.K < k {
		f.redMS = NewMultiSolve(reducedSize(f.P), f.B, f.A, k)
	}
	return f.redMS.Narrow(k)
}

// tipAcc returns partition r's a×k forward accumulator view, zeroed.
func (f *ParallelFactor) tipAcc(r, k int) *dense.Matrix {
	ps := f.ps[r]
	if ps.tipMS == nil || ps.tipMS.Cols < k {
		ps.tipMS = dense.New(f.A, k)
		for w := range ps.tipMSViews {
			delete(ps.tipMSViews, w)
		}
	}
	v, ok := ps.tipMSViews[k]
	if !ok {
		v = ps.tipMS.View(0, 0, f.A, k)
		ps.tipMSViews[k] = v
	}
	v.Zero()
	return v
}

// gatherMS copies the boundary block rows of the workspace into the
// reduced multi-RHS workspace. withAcc folds the partitions' forward arrow
// accumulators in — only correct right after a forward phase.
func (f *ParallelFactor) gatherMS(w, red *MultiSolve, withAcc bool) {
	for i, g := range f.redGlobal {
		red.blocks[i].CopyFrom(w.blocks[g])
	}
	if f.A > 0 {
		red.arrow.CopyFrom(w.arrow)
		if withAcc {
			for _, ps := range f.ps {
				red.arrow.Add(1, ps.tipMSViews[w.K])
			}
		}
	}
}

// scatterMS copies the reduced solution rows back into the workspace.
func (f *ParallelFactor) scatterMS(w, red *MultiSolve) {
	for i, g := range f.redGlobal {
		w.blocks[g].CopyFrom(red.blocks[i])
	}
	if f.A > 0 {
		w.arrow.CopyFrom(red.arrow)
	}
}

// ForwardSolveMultiInto computes the half solve Y = L̃⁻¹·B in place of the
// workspace RHS for all columns, with the interiors swept in parallel.
// Column squared norms equal φᵀ·A⁻¹·φ exactly as for the sequential factor
// (the parallel elimination ordering is a symmetric permutation, which
// leaves the half-solve norms invariant) — the batched-predictive-variance
// contract of the serving path.
func (f *ParallelFactor) ForwardSolveMultiInto(w *MultiSolve) {
	if f.P == 1 {
		f.seq.ForwardSolveMultiInto(w)
		return
	}
	f.promote() // half-solve norms feed predictive variances; keep them fp64
	w.checkDims(f.N, f.B, f.A)
	f.curMS = w
	f.runPhase(phaseFwdMS)
	red := f.reducedMS(w.K)
	f.gatherMS(w, red, true)
	f.eng.forwardMS(red)
	f.scatterMS(w, red)
	f.curMS = nil
}

// BackwardSolveMultiInto computes X = L̃⁻ᵀ·Y in place of the workspace RHS.
func (f *ParallelFactor) BackwardSolveMultiInto(w *MultiSolve) {
	if f.P == 1 {
		f.seq.BackwardSolveMultiInto(w)
		return
	}
	f.promote()
	w.checkDims(f.N, f.B, f.A)
	red := f.reducedMS(w.K)
	f.gatherMS(w, red, false)
	f.eng.backwardMS(red)
	f.scatterMS(w, red)
	f.curMS = w
	f.runPhase(phaseBwdMS)
	f.curMS = nil
}

// SolveMultiInto solves A·X = B in place of the workspace RHS for all
// columns.
func (f *ParallelFactor) SolveMultiInto(w *MultiSolve) {
	if f.P == 1 {
		f.seq.SolveMultiInto(w)
		return
	}
	f.ForwardSolveMultiInto(w)
	f.BackwardSolveMultiInto(w)
}

// forwardPartitionMS is forwardPartition over all workspace columns at once
// (BLAS-3 throughout), via the shared core.
func (f *ParallelFactor) forwardPartitionMS(r int, w *MultiSolve) {
	ps := f.ps[r]
	var acc *dense.Matrix
	if f.A > 0 {
		acc = f.tipAcc(r, w.K)
	}
	pv := f.solveCore(r)
	pv.forwardMS(w.blocks[ps.part.Lo:ps.part.Hi+1], acc)
}

// backwardPartitionMS is backwardPartition over all workspace columns.
func (f *ParallelFactor) backwardPartitionMS(r int, w *MultiSolve) {
	ps := f.ps[r]
	pv := f.solveCore(r)
	pv.backwardMS(w.blocks[ps.part.Lo:ps.part.Hi+1], w.arrow)
}

// SelectedInversion computes Σ = A⁻¹ on the BTA pattern into fresh storage.
func (f *ParallelFactor) SelectedInversion() (*Matrix, error) {
	sig := NewMatrix(f.N, f.B, f.A)
	if err := f.SelectedInversionInto(sig); err != nil {
		return nil, err
	}
	return sig, nil
}

// SelectedInversionInto is the shared-memory PPOBTASI: selected inversion
// of the reduced boundary system first (sequential, small), boundary-block
// installation, then the per-partition backward recursions over the
// interiors run concurrently. Alloc-free after warmup.
func (f *ParallelFactor) SelectedInversionInto(sig *Matrix) error {
	if f.P == 1 {
		return f.seq.SelectedInversionInto(sig)
	}
	if sig.N != f.N || sig.B != f.B || sig.A != f.A {
		return fmt.Errorf("bta: selinv output BTA(n=%d,b=%d,a=%d), factor (n=%d,b=%d,a=%d)",
			sig.N, sig.B, sig.A, f.N, f.B, f.A)
	}
	f.promote() // posterior covariances stay fp64 (per-stage policy)
	relabel(labelReduced)
	err := f.eng.selinvInto(f.redSig)
	relabel(labelNone)
	if err != nil {
		return err
	}
	if f.A > 0 {
		// The tip is read by every partition's sweep; land it before any
		// sweep task can start.
		sig.Tip.CopyFrom(f.redSig.Tip)
	}
	f.curSig = sig
	if f.ex == nil {
		// Phase-barrier mode: install every boundary block, then run the
		// interior sweeps as one gang.
		for r := 0; r < f.P; r++ {
			f.installSigmaPart(r)
		}
		f.runPhase(phaseSweep)
	} else {
		// Σ-scatter DAG: each partition's boundary install is a task whose
		// dependent interior sweep starts as soon as its own boundary
		// blocks land — no barrier on the full scatter. A partition's sweep
		// reads only blocks written by its own install (plus the tip,
		// copied above, and redSig, finalized above), so install(r)→sweep(r)
		// are the only edges.
		l := f.ex.AcquireLane()
		f.g.Add(2 * (f.P - 1))
		for r := 1; r < f.P; r++ {
			f.taskInstall[r].Reset(f.ex, &f.g, f.fnInstall[r], labelSigma)
			f.taskSweep[r].Reset(f.ex, &f.g, f.fnSweep[r], labelSigma)
			f.taskSweep[r].After(&f.taskInstall[r])
			// Dependents spawn before predecessors (sched.Lane.Spawn).
			l.Spawn(&f.taskSweep[r])
			l.Spawn(&f.taskInstall[r])
		}
		relabel(labelSigma)
		f.installSigmaPart(0)
		f.ps[0].err = f.sweepPartition(0, sig)
		f.g.Wait(l)
		relabel(labelNone)
		f.ex.ReleaseLane(l)
	}
	f.curSig = nil
	for _, ps := range f.ps {
		if ps.err != nil {
			return ps.err
		}
	}
	return nil
}

// installSigmaPart copies partition r's boundary Σ blocks from the reduced
// selected inverse into the output. Every destination belongs to partition
// r alone, so installs of different partitions commute and each partition's
// interior sweep may start as soon as its own install finished.
func (f *ParallelFactor) installSigmaPart(r int) {
	sig := f.curSig
	parts := f.parts
	hasArrow := f.A > 0
	if r == 0 {
		sig.Diag[parts[0].Hi].CopyFrom(f.redSig.Diag[0])
		if hasArrow {
			sig.Arrow[parts[0].Hi].CopyFrom(f.redSig.Arrow[0])
		}
		return
	}
	top := reducedIndexTop(r)
	lo, hi := parts[r].Lo, parts[r].Hi
	sig.Diag[lo].CopyFrom(f.redSig.Diag[top])
	sig.Lower[lo-1].CopyFrom(f.redSig.Lower[top-1]) // Σ(lo_r, hi_{r−1})
	if hasArrow {
		sig.Arrow[lo].CopyFrom(f.redSig.Arrow[top])
	}
	if r < f.P-1 {
		sig.Diag[hi].CopyFrom(f.redSig.Diag[top+1])
		if hasArrow {
			sig.Arrow[hi].CopyFrom(f.redSig.Arrow[top+1])
		}
		if len(f.ps[r].interiors) == 0 {
			// Size-2 middle partition: its within coupling is a
			// boundary-boundary block of the reduced system.
			sig.Lower[lo].CopyFrom(f.redSig.Lower[top])
		}
	}
}

// sweepPartition runs one partition's backward selected-inversion recursion
// over its interiors through the shared partitionSweep core, writing
// straight into the shared output and drawing every temporary from the
// partition's preallocated scratch.
func (f *ParallelFactor) sweepPartition(r int, sig *Matrix) error {
	ps := f.ps[r]
	if len(ps.interiors) == 0 {
		return nil
	}
	lo, hi := ps.part.Lo, ps.part.Hi
	pw := partitionSweep{
		L: ps.l, GNext: ps.gNext, GTop: ps.gTop, GArr: ps.gArr,
		Interiors: ps.interiors, Base: lo, TwoSided: r != 0,
		Diag:  sig.Diag[lo : hi+1],
		Lower: sig.Lower[lo:hi],
		GN:    ps.gN, GT: ps.gT, GA: ps.gA, TmpB: ps.tmpB,
		LoBuf: ps.loBuf,
		Kind:  "partition", ID: r,
	}
	if f.A > 0 {
		pw.Arrow = sig.Arrow[lo : hi+1]
		pw.SigTip = sig.Tip
	}
	if r > 0 && r < f.P-1 {
		// Σ(hi_r, lo_r) of middle partitions seeds the rolling Σ(lo,·).
		pw.SigBotTop = f.redSig.Lower[reducedIndexTop(r)]
	}
	return pw.run()
}
