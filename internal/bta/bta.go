// Package bta implements structured solvers for symmetric positive definite
// block-tridiagonal (BT) and block-tridiagonal-with-arrowhead (BTA)
// matrices — the Go counterpart of the Serinv library the DALIA paper builds
// on, plus the distributed triangular solve (PPOBTAS) the paper contributes.
//
// A BTA matrix has n diagonal blocks of size b (one per time step of the
// spatio-temporal model, b = n_v·n_s), sub-diagonal coupling blocks between
// consecutive time steps, and an arrowhead row/tip of size a (the fixed
// effects). The three core operations of the INLA methodology are provided
// in sequential form — Factorize (POBTAF), Factor.Solve (POBTAS),
// Factor.SelectedInversion (POBTASI) — and in distributed-memory form over a
// time-domain partitioning (PPOBTAF, PPOBTAS, PPOBTASI) following the
// nested-dissection Schur-complement scheme of §IV-C–E of the paper.
package bta

import (
	"fmt"

	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/sparse"
)

// Matrix is a symmetric BTA matrix stored as dense blocks. Only the lower
// triangle is stored: Diag[i] is block (i,i) (full symmetric content),
// Lower[i] is block (i+1,i), Arrow[i] is block (a,i), and Tip is the (a,a)
// corner. A is 0 for plain block-tridiagonal matrices (no arrowhead).
type Matrix struct {
	N int // number of diagonal blocks
	B int // block size
	A int // arrow tip size (0 = BT matrix)

	Diag  []*dense.Matrix // n blocks, b×b
	Lower []*dense.Matrix // n−1 blocks, b×b
	Arrow []*dense.Matrix // n blocks, a×b (empty when A == 0)
	Tip   *dense.Matrix   // a×a (nil when A == 0)
}

// NewMatrix allocates a zeroed BTA matrix with n diagonal blocks of size b
// and arrow size a (a may be 0).
func NewMatrix(n, b, a int) *Matrix {
	if n < 1 || b < 1 || a < 0 {
		panic(fmt.Sprintf("bta: invalid shape n=%d b=%d a=%d", n, b, a))
	}
	m := &Matrix{N: n, B: b, A: a}
	m.Diag = make([]*dense.Matrix, n)
	m.Lower = make([]*dense.Matrix, n-1)
	for i := 0; i < n; i++ {
		m.Diag[i] = dense.New(b, b)
		if i < n-1 {
			m.Lower[i] = dense.New(b, b)
		}
	}
	if a > 0 {
		m.Arrow = make([]*dense.Matrix, n)
		for i := 0; i < n; i++ {
			m.Arrow[i] = dense.New(a, b)
		}
		m.Tip = dense.New(a, a)
	}
	return m
}

// Dim returns the total matrix dimension N = n·b + a.
func (m *Matrix) Dim() int { return m.N*m.B + m.A }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.N, m.B, m.A)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies src's blocks into m. Shapes must match. This is the
// workspace-reuse primitive of the allocation-free INLA hot path: the same
// BTA storage is refilled on every θ-evaluation instead of re-allocated.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.N != src.N || m.B != src.B || m.A != src.A {
		panic(fmt.Sprintf("bta: copy BTA(n=%d,b=%d,a=%d) into BTA(n=%d,b=%d,a=%d)",
			src.N, src.B, src.A, m.N, m.B, m.A))
	}
	for i := 0; i < m.N; i++ {
		m.Diag[i].CopyFrom(src.Diag[i])
		if i < m.N-1 {
			m.Lower[i].CopyFrom(src.Lower[i])
		}
		if m.A > 0 {
			m.Arrow[i].CopyFrom(src.Arrow[i])
		}
	}
	if m.A > 0 {
		m.Tip.CopyFrom(src.Tip)
	}
}

// ToDense materializes the full symmetric matrix (tests and small sizes).
func (m *Matrix) ToDense() *dense.Matrix {
	nTot := m.Dim()
	out := dense.New(nTot, nTot)
	for i := 0; i < m.N; i++ {
		setBlock(out, i*m.B, i*m.B, m.Diag[i])
		if i < m.N-1 {
			setBlock(out, (i+1)*m.B, i*m.B, m.Lower[i])
			setBlock(out, i*m.B, (i+1)*m.B, m.Lower[i].T())
		}
		if m.A > 0 {
			setBlock(out, m.N*m.B, i*m.B, m.Arrow[i])
			setBlock(out, i*m.B, m.N*m.B, m.Arrow[i].T())
		}
	}
	if m.A > 0 {
		setBlock(out, m.N*m.B, m.N*m.B, m.Tip)
	}
	// Diagonal blocks may carry asymmetry from assembly roundoff; mirror the
	// lower content like the factorizations do.
	return out
}

func setBlock(dst *dense.Matrix, r, c int, blk *dense.Matrix) {
	dst.View(r, c, blk.Rows, blk.Cols).CopyFrom(blk)
}

// FromDense extracts the BTA blocks of a dense symmetric matrix. Entries
// outside the BTA pattern are ignored (tests only).
func FromDense(d *dense.Matrix, n, b, a int) *Matrix {
	m := NewMatrix(n, b, a)
	for i := 0; i < n; i++ {
		m.Diag[i].CopyFrom(d.View(i*b, i*b, b, b))
		if i < n-1 {
			m.Lower[i].CopyFrom(d.View((i+1)*b, i*b, b, b))
		}
		if a > 0 {
			m.Arrow[i].CopyFrom(d.View(n*b, i*b, a, b))
		}
	}
	if a > 0 {
		m.Tip.CopyFrom(d.View(n*b, n*b, a, a))
	}
	return m
}

// FromCSR extracts the BTA blocks from a sparse matrix whose pattern lies
// within the given BTA structure. Entries outside the pattern cause an
// error — this is the validation path; the hot mapping with cached indices
// lives in the model package.
func FromCSR(s *sparse.CSR, n, b, a int) (*Matrix, error) {
	if s.Rows() != n*b+a || s.Cols() != n*b+a {
		return nil, fmt.Errorf("bta: sparse matrix is %d×%d, BTA(n=%d,b=%d,a=%d) needs %d",
			s.Rows(), s.Cols(), n, b, a, n*b+a)
	}
	m := NewMatrix(n, b, a)
	nb := n * b
	for i := 0; i < s.Rows(); i++ {
		bi := i / b // block row (n for arrow rows)
		if i >= nb {
			bi = n
		}
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			j := s.ColIdx[p]
			v := s.Val[p]
			bj := j / b
			if j >= nb {
				bj = n
			}
			switch {
			case bi == bj && bi < n:
				m.Diag[bi].Set(i-bi*b, j-bj*b, v)
			case bi == bj+1 && bi < n:
				m.Lower[bj].Set(i-bi*b, j-bj*b, v)
			case bj == bi+1 && bj < n:
				// upper triangle: symmetric counterpart of Lower[bi]
				m.Lower[bi].Set(j-bj*b, i-bi*b, v)
			case bi == n && bj < n:
				if a == 0 {
					return nil, fmt.Errorf("bta: arrow entry (%d,%d) with a=0", i, j)
				}
				m.Arrow[bj].Set(i-nb, j-bj*b, v)
			case bj == n && bi < n:
				if a == 0 {
					return nil, fmt.Errorf("bta: arrow entry (%d,%d) with a=0", i, j)
				}
				m.Arrow[bi].Set(j-nb, i-bi*b, v)
			case bi == n && bj == n:
				m.Tip.Set(i-nb, j-nb, v)
			default:
				return nil, fmt.Errorf("bta: entry (%d,%d) outside BTA(n=%d,b=%d,a=%d) pattern", i, j, n, b, a)
			}
		}
	}
	return m, nil
}

// MulVec computes y = M·x using the symmetric block structure.
func (m *Matrix) MulVec(x, y []float64) {
	nTot := m.Dim()
	if len(x) < nTot || len(y) < nTot {
		panic(fmt.Sprintf("bta: mulvec length %d/%d < %d", len(x), len(y), nTot))
	}
	for i := range y[:nTot] {
		y[i] = 0
	}
	b := m.B
	for i := 0; i < m.N; i++ {
		xi := x[i*b : (i+1)*b]
		yi := y[i*b : (i+1)*b]
		dense.Gemv(dense.NoTrans, 1, m.Diag[i], xi, 1, yi)
		if i < m.N-1 {
			// block (i+1,i) and its transpose
			dense.Gemv(dense.NoTrans, 1, m.Lower[i], xi, 1, y[(i+1)*b:(i+2)*b])
			dense.Gemv(dense.Trans, 1, m.Lower[i], x[(i+1)*b:(i+2)*b], 1, yi)
		}
		if m.A > 0 {
			xa := x[m.N*b : m.N*b+m.A]
			ya := y[m.N*b : m.N*b+m.A]
			dense.Gemv(dense.NoTrans, 1, m.Arrow[i], xi, 1, ya)
			dense.Gemv(dense.Trans, 1, m.Arrow[i], xa, 1, yi)
		}
	}
	if m.A > 0 {
		xa := x[m.N*b : m.N*b+m.A]
		ya := y[m.N*b : m.N*b+m.A]
		dense.Gemv(dense.NoTrans, 1, m.Tip, xa, 1, ya)
	}
}

// MulMulti computes Y = M·X for a block of column vectors using the
// symmetric block structure — the multi-rhs residual primitive of the
// mixed-precision refinement on SolveMulti.
func (m *Matrix) MulMulti(x, y *dense.Matrix) {
	nTot := m.Dim()
	if x.Rows != nTot || y.Rows != nTot || x.Cols != y.Cols {
		panic(fmt.Sprintf("bta: mulmulti shape (%dx%d)->(%dx%d), want rows %d and equal cols",
			x.Rows, x.Cols, y.Rows, y.Cols, nTot))
	}
	y.Zero()
	b := m.B
	for i := 0; i < m.N; i++ {
		xi := x.View(i*b, 0, b, x.Cols)
		yi := y.View(i*b, 0, b, x.Cols)
		dense.Gemm(dense.NoTrans, dense.NoTrans, 1, m.Diag[i], xi, 1, yi)
		if i < m.N-1 {
			dense.Gemm(dense.NoTrans, dense.NoTrans, 1, m.Lower[i], xi, 1, y.View((i+1)*b, 0, b, x.Cols))
			dense.Gemm(dense.Trans, dense.NoTrans, 1, m.Lower[i], x.View((i+1)*b, 0, b, x.Cols), 1, yi)
		}
		if m.A > 0 {
			xa := x.View(m.N*b, 0, m.A, x.Cols)
			ya := y.View(m.N*b, 0, m.A, x.Cols)
			dense.Gemm(dense.NoTrans, dense.NoTrans, 1, m.Arrow[i], xi, 1, ya)
			dense.Gemm(dense.Trans, dense.NoTrans, 1, m.Arrow[i], xa, 1, yi)
		}
	}
	if m.A > 0 {
		dense.Gemm(dense.NoTrans, dense.NoTrans, 1, m.Tip,
			x.View(m.N*b, 0, m.A, x.Cols), 1, y.View(m.N*b, 0, m.A, x.Cols))
	}
}

// BytesDense reports the densified block storage footprint in bytes —
// the O(n·b²) memory cost of §IV-C that triggers the S3 memory-cap policy.
func (m *Matrix) BytesDense() int64 {
	per := int64(m.B) * int64(m.B) * 8
	total := int64(m.N)*per + int64(m.N-1)*per
	if m.A > 0 {
		total += int64(m.N)*int64(m.A)*int64(m.B)*8 + int64(m.A)*int64(m.A)*8
	}
	return total
}
