package bta

import (
	"fmt"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// partitionElim is the single shared implementation of one partition's
// interior elimination phase of PPOBTAF — the two-sided (or, for the first
// partition, one-sided) block Cholesky sweep of §IV-C. Both distributed
// backends drive it: the comm-based DistFactor feeds it rank-local slices,
// the shared-memory ParallelFactor feeds it sub-slices of the global block
// storage. All indices are partition-relative.
//
// The sweep consumes Diag/Lower/Arrow as workspace: on return Diag[k] of an
// eliminated block holds L_kk, Lower[k] holds the scaled next-coupling
// L_{k+1,k}, Arrow[k] the scaled arrow coupling L_{a,k}, the partition's
// boundary Diag/Arrow blocks hold their accumulated Schur updates, and the
// fill-coupling chain M(lo,·) lives in blocks drawn from NewBB.
type partitionElim struct {
	Diag  []*dense.Matrix // the partition's diagonal blocks
	Lower []*dense.Matrix // within-partition sub-diagonal couplings (len size−1)
	Arrow []*dense.Matrix // arrow couplings (nil when no arrowhead)

	Interiors []int // global block indices, elimination order
	Base      int   // global index of the partition's first block
	TwoSided  bool  // non-first partitions also update their top boundary

	// Kind and ID identify the partition in error messages ("rank" for the
	// comm backend, "partition" for the shared-memory one) — static values,
	// so the success path never formats a label.
	Kind string
	ID   int

	// NewBB supplies b×b fill-chain blocks (recycled scratch or fresh).
	NewBB func() *dense.Matrix
	// TipDelta is the zeroed a×a Schur accumulator for the arrow tip
	// (nil when no arrowhead).
	TipDelta *dense.Matrix

	// Outputs, appended in elimination order (callers pass reusable
	// backings via slice[:0] to stay allocation-free). GNext/GTop/GArr
	// entries are nil where the corresponding coupling does not exist.
	L, GNext, GTop, GArr []*dense.Matrix
	// Fill is the remaining boundary-boundary coupling M(lo, hi) of middle
	// partitions (nil otherwise). On a failed elimination it parks the
	// in-flight fill block so recycled scratch is never leaked.
	Fill *dense.Matrix

	// Prec selects the sweep precision; with PrecMixed and a Shadow arena the
	// sweep first runs in fp32 (precision.go) and only falls back to the fp64
	// body below when single precision loses positive definiteness.
	Prec   Precision
	Shadow *elimShadow32
}

// run executes the sweep.
func (pe *partitionElim) run() error {
	if pe.Prec == PrecMixed && pe.Shadow != nil {
		if err := pe.run32(); err == nil {
			return nil
		}
		// fp32 lost definiteness: the fp64 blocks are untouched and no fill
		// blocks were drawn, so re-run the whole sweep in double precision.
		// A genuinely non-SPD configuration is decided by the fp64 sweep —
		// non-SPD recovery stays double precision.
	}
	hasArrow := pe.TipDelta != nil

	// Working fill coupling M(lo, k): starts as the transpose of the
	// partition's first sub-diagonal block.
	var tCur *dense.Matrix
	if pe.TwoSided && len(pe.Lower) > 0 {
		tCur = pe.NewBB()
		pe.Lower[0].TransposeInto(tCur)
	}

	for _, k := range pe.Interiors {
		rel := k - pe.Base
		lk := pe.Diag[rel]
		if err := dense.Potrf(lk); err != nil {
			// Park the in-flight fill block where reclamation looks for it,
			// so a failed (infeasible-θ) factorization returns every
			// recycled block to the scratch.
			pe.Fill = tCur
			return fmt.Errorf("bta: %s %d interior block %d: %w", pe.Kind, pe.ID, k, err)
		}
		lk.ZeroUpper()
		pe.L = append(pe.L, lk)

		var gNext, gTop, gArr *dense.Matrix
		if rel < len(pe.Lower) { // a next block exists within the partition
			gNext = pe.Lower[rel]
			dense.Trsm(dense.Right, dense.Trans, lk, gNext)
		}
		if pe.TwoSided {
			gTop = tCur
			dense.Trsm(dense.Right, dense.Trans, lk, gTop)
		}
		if hasArrow {
			gArr = pe.Arrow[rel]
			dense.Trsm(dense.Right, dense.Trans, lk, gArr)
		}
		pe.GNext = append(pe.GNext, gNext)
		pe.GTop = append(pe.GTop, gTop)
		pe.GArr = append(pe.GArr, gArr)

		// Schur updates onto the remaining neighbours {k+1, lo, arrow}.
		if gNext != nil {
			dense.Syrk(dense.NoTrans, -1, gNext, 1, pe.Diag[rel+1])
			pe.Diag[rel+1].MirrorLowerToUpper()
		}
		if pe.TwoSided && gTop != nil {
			dense.Syrk(dense.NoTrans, -1, gTop, 1, pe.Diag[0])
			pe.Diag[0].MirrorLowerToUpper()
			if gNext != nil {
				tNext := pe.NewBB()
				dense.Gemm(dense.NoTrans, dense.Trans, -1, gTop, gNext, 0, tNext)
				tCur = tNext
			} else {
				tCur = nil
			}
		}
		if hasArrow {
			if gNext != nil {
				dense.Gemm(dense.NoTrans, dense.Trans, -1, gArr, gNext, 1, pe.Arrow[rel+1])
			}
			if pe.TwoSided && gTop != nil {
				dense.Gemm(dense.NoTrans, dense.Trans, -1, gArr, gTop, 1, pe.Arrow[0])
			}
			dense.Syrk(dense.NoTrans, -1, gArr, 1, pe.TipDelta)
			pe.TipDelta.MirrorLowerToUpper()
		}
	}

	// The remaining coupling between the partition's two boundaries. With
	// no interiors (size-2 middle partition) tCur still holds the untouched
	// Lower[0]ᵀ prepared before the loop; with interiors it is the final,
	// unconsumed fill coupling; for first/last partitions it is nil.
	pe.Fill = tCur
	return nil
}
