package bta

import "github.com/dalia-hpc/dalia/internal/dense"

// partitionSolve is the single shared implementation of one partition's
// interior triangular-solve sweeps of PPOBTAS (§IV-E): the forward
// elimination over the partition's interior blocks and the matching backward
// substitution against already-final boundary and tip solutions. Like
// partitionElim it is partition-relative and backend-agnostic — the
// shared-memory ParallelFactor drives it with sub-slices of the global
// right-hand side, the comm-based DistFactor with each rank's local slice —
// so the two distributed backends execute the exact same solve loops.
//
// The factor inputs are the partitionElim outputs in elimination order:
// L[idx] is the Cholesky of interior block Interiors[idx], GNext/GTop/GArr
// the scaled couplings to the next block, the partition's top boundary, and
// the arrowhead (nil where the coupling does not exist). rhs slices are
// partition-relative: index 0 is the partition's first (Lo) block, so the
// top-boundary slot of two-sided partitions is rhs[0:b].
//
// None of the methods allocate; virtual-time charging (the comm simulator's
// Compute hook) wraps the calls from the outside.
type partitionSolve struct {
	L, GNext, GTop, GArr []*dense.Matrix

	Interiors []int // global block indices, elimination order
	Base      int   // global index of the partition's first block
	B         int   // block size
}

// forward runs the interior forward elimination y_k = L_kk⁻¹·(…), pushing
// updates to the next block, the partition's top boundary, and the
// partition's private arrow-tip accumulator tip (len a; may be nil when the
// matrix has no arrowhead).
func (pv *partitionSolve) forward(rhs, tip []float64) {
	b := pv.B
	for idx, k := range pv.Interiors {
		rel := k - pv.Base
		yk := rhs[rel*b : (rel+1)*b]
		solveLowerVec(pv.L[idx], yk)
		if g := pv.GNext[idx]; g != nil {
			dense.Gemv(dense.NoTrans, -1, g, yk, 1, rhs[(rel+1)*b:(rel+2)*b])
		}
		if g := pv.GTop[idx]; g != nil {
			dense.Gemv(dense.NoTrans, -1, g, yk, 1, rhs[0:b])
		}
		if g := pv.GArr[idx]; g != nil {
			dense.Gemv(dense.NoTrans, -1, g, yk, 1, tip)
		}
	}
}

// backward runs the interior backward substitution in reverse elimination
// order against the already-final boundary solutions in rhs and the solved
// tip xTip (nil when the matrix has no arrowhead).
func (pv *partitionSolve) backward(rhs, xTip []float64) {
	b := pv.B
	for idx := len(pv.Interiors) - 1; idx >= 0; idx-- {
		rel := pv.Interiors[idx] - pv.Base
		xk := rhs[rel*b : (rel+1)*b]
		if g := pv.GNext[idx]; g != nil {
			dense.Gemv(dense.Trans, -1, g, rhs[(rel+1)*b:(rel+2)*b], 1, xk)
		}
		if g := pv.GTop[idx]; g != nil {
			dense.Gemv(dense.Trans, -1, g, rhs[0:b], 1, xk)
		}
		if g := pv.GArr[idx]; g != nil {
			dense.Gemv(dense.Trans, -1, g, xTip, 1, xk)
		}
		solveLowerTransVec(pv.L[idx], xk)
	}
}

// forwardMS is forward over all columns of a multi-RHS workspace at once
// (BLAS-3 throughout). blocks is the partition-relative slice of the
// workspace's row-block views; arrowAcc the partition's a×k forward
// accumulator (nil when the matrix has no arrowhead).
func (pv *partitionSolve) forwardMS(blocks []*dense.Matrix, arrowAcc *dense.Matrix) {
	for idx, k := range pv.Interiors {
		rel := k - pv.Base
		yk := blocks[rel]
		dense.Trsm(dense.Left, dense.NoTrans, pv.L[idx], yk)
		if g := pv.GNext[idx]; g != nil {
			dense.Gemm(dense.NoTrans, dense.NoTrans, -1, g, yk, 1, blocks[rel+1])
		}
		if g := pv.GTop[idx]; g != nil {
			dense.Gemm(dense.NoTrans, dense.NoTrans, -1, g, yk, 1, blocks[0])
		}
		if g := pv.GArr[idx]; g != nil {
			dense.Gemm(dense.NoTrans, dense.NoTrans, -1, g, yk, 1, arrowAcc)
		}
	}
}

// backwardMS is backward over all workspace columns, against the solved
// arrow rows (nil when the matrix has no arrowhead).
func (pv *partitionSolve) backwardMS(blocks []*dense.Matrix, arrow *dense.Matrix) {
	for idx := len(pv.Interiors) - 1; idx >= 0; idx-- {
		rel := pv.Interiors[idx] - pv.Base
		xk := blocks[rel]
		if g := pv.GNext[idx]; g != nil {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, g, blocks[rel+1], 1, xk)
		}
		if g := pv.GTop[idx]; g != nil {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, g, blocks[0], 1, xk)
		}
		if g := pv.GArr[idx]; g != nil {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, g, arrow, 1, xk)
		}
		dense.Trsm(dense.Left, dense.Trans, pv.L[idx], xk)
	}
}
