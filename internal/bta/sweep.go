package bta

import (
	"fmt"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// partitionSweep is the single shared implementation of one partition's
// interior selected-inversion recursion of PPOBTASI (§IV-E): the backward
// sweep that rolls Σ over the elimination neighbours {k+1, lo, tip} of each
// interior block. Both distributed backends drive it — the shared-memory
// ParallelFactor with sub-slices of the global Σ storage, the comm-based
// DistFactor with each rank's LocalSigma blocks — so the recursion exists
// exactly once.
//
// All indices are partition-relative: Diag/Lower/Arrow are the partition's
// slice of the Σ pattern (Diag[rel] = Σ(Base+rel, Base+rel), Lower[rel] =
// Σ(Base+rel+1, Base+rel)), with the boundary entries (Diag[0]/Arrow[0] of
// two-sided partitions, Diag/Arrow of the bottom boundary) installed by the
// caller from the reduced system's selected inverse before the sweep runs.
//
// Every temporary is drawn from the caller-provided scratch (GN/GT/GA/TmpB
// and the LoBuf ping-pong pair for the rolling Σ(lo,·)), so the sweep
// performs no heap allocation; virtual-time charging (the comm simulator's
// Compute hook) wraps the call from the outside.
type partitionSweep struct {
	// partitionElim outputs in elimination order: the interior Cholesky
	// blocks and the scaled couplings (nil where absent).
	L, GNext, GTop, GArr []*dense.Matrix

	Interiors []int // global block indices, elimination order
	Base      int   // global index of the partition's first block
	TwoSided  bool  // non-first partitions roll the Σ(lo,·) coupling

	// Partition-relative Σ storage (boundary entries pre-installed).
	Diag, Lower, Arrow []*dense.Matrix
	// SigBotTop is the reduced selected inverse's Σ(hi, lo) boundary
	// coupling — the seed of the rolling Σ(lo,·) state for two-sided
	// partitions whose deepest interior couples to the bottom boundary
	// (middle partitions); nil otherwise.
	SigBotTop *dense.Matrix
	// SigTip is the replicated Σ over the arrow tip (nil when a == 0).
	SigTip *dense.Matrix

	// Scratch: b×b GN/TmpB always, b×b GT plus the LoBuf pair for
	// two-sided partitions, a×b GA when the matrix has an arrowhead.
	GN, GT, GA, TmpB *dense.Matrix
	LoBuf            [2]*dense.Matrix

	// Kind and ID identify the partition in error messages ("rank" for the
	// comm backend, "partition" for the shared-memory one).
	Kind string
	ID   int
}

// run executes the backward recursion over the partition's interiors.
func (pw *partitionSweep) run() error {
	ints := pw.Interiors
	if len(ints) == 0 {
		return nil
	}
	hasArrow := pw.SigTip != nil
	bot := len(pw.Diag) - 1

	// Rolling state: Σ_{k+1,k+1}, Σ_{lo,k+1}, Σ_{a,k+1}.
	var sigNN, sigLoN, sigArrN *dense.Matrix
	loCur, loNext := pw.LoBuf[0], pw.LoBuf[1]
	last := len(ints) - 1
	if pw.GNext[last] != nil { // the deepest interior couples to the bottom boundary
		sigNN = pw.Diag[bot]
		if pw.TwoSided {
			// Σ(lo, hi) = Σ(hi, lo)ᵀ from the reduced selected inverse.
			pw.SigBotTop.TransposeInto(loCur)
			sigLoN = loCur
		}
		if hasArrow {
			sigArrN = pw.Arrow[bot]
		}
	}

	for idx := last; idx >= 0; idx-- {
		rel := ints[idx] - pw.Base
		// The factor stores L_{S,k} = A'_{S,k}·L_kk⁻ᵀ; the recursion needs
		// G_{S,k} = L_{S,k}·L_kk⁻¹ (as in the sequential POBTASI).
		var gN, gT, gA *dense.Matrix
		if g := pw.GNext[idx]; g != nil {
			gN = pw.GN
			gN.CopyFrom(g)
			dense.Trsm(dense.Right, dense.NoTrans, pw.L[idx], gN)
		}
		if g := pw.GTop[idx]; g != nil {
			gT = pw.GT
			gT.CopyFrom(g)
			dense.Trsm(dense.Right, dense.NoTrans, pw.L[idx], gT)
		}
		if g := pw.GArr[idx]; g != nil {
			gA = pw.GA
			gA.CopyFrom(g)
			dense.Trsm(dense.Right, dense.NoTrans, pw.L[idx], gA)
		}
		// Σ_{k+1,k}
		if gN != nil {
			dense.Gemm(dense.NoTrans, dense.NoTrans, -1, sigNN, gN, 0, pw.Lower[rel])
			if gT != nil {
				dense.Gemm(dense.Trans, dense.NoTrans, -1, sigLoN, gT, 1, pw.Lower[rel])
			}
			if gA != nil {
				dense.Gemm(dense.Trans, dense.NoTrans, -1, sigArrN, gA, 1, pw.Lower[rel])
			}
		}
		// Σ_{lo,k}
		var sigLoK *dense.Matrix
		if gT != nil {
			sigLoK = loNext
			dense.Gemm(dense.NoTrans, dense.NoTrans, -1, pw.Diag[0], gT, 0, sigLoK)
			if gN != nil {
				dense.Gemm(dense.NoTrans, dense.NoTrans, -1, sigLoN, gN, 1, sigLoK)
			}
			if gA != nil {
				dense.Gemm(dense.Trans, dense.NoTrans, -1, pw.Arrow[0], gA, 1, sigLoK)
			}
		}
		// Σ_{a,k}
		if gA != nil {
			dense.Gemm(dense.NoTrans, dense.NoTrans, -1, pw.SigTip, gA, 0, pw.Arrow[rel])
			if gN != nil {
				dense.Gemm(dense.NoTrans, dense.NoTrans, -1, sigArrN, gN, 1, pw.Arrow[rel])
			}
			if gT != nil {
				dense.Gemm(dense.NoTrans, dense.NoTrans, -1, pw.Arrow[0], gT, 1, pw.Arrow[rel])
			}
		}
		// Σ_{k,k}
		if err := dense.PotriInto(pw.Diag[rel], pw.TmpB, pw.L[idx]); err != nil {
			return fmt.Errorf("bta: selinv %s %d block %d: %w", pw.Kind, pw.ID, ints[idx], err)
		}
		if gN != nil {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, pw.Lower[rel], gN, 1, pw.Diag[rel])
		}
		if gT != nil {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, sigLoK, gT, 1, pw.Diag[rel])
		}
		if gA != nil {
			dense.Gemm(dense.Trans, dense.NoTrans, -1, pw.Arrow[rel], gA, 1, pw.Diag[rel])
		}
		pw.Diag[rel].Symmetrize()

		// Roll the state.
		sigNN = pw.Diag[rel]
		if gT != nil {
			sigLoN = sigLoK
			loCur, loNext = loNext, loCur
		}
		if hasArrow {
			sigArrN = pw.Arrow[rel]
		}
	}

	// The coupling between the first interior and the top boundary:
	// Σ(lo+1, lo) = Σ(lo, lo+1)ᵀ.
	if pw.TwoSided && sigLoN != nil {
		sigLoN.TransposeInto(pw.Lower[0])
	}
	return nil
}
