package bta

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/dense"
)

// maxAbsDiff returns ‖a−b‖∞.
func maxAbsDiff(a, b []float64) float64 {
	var d float64
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// illCondBTA builds a seeded SPD BTA matrix that is deliberately harder than
// randBTA: the diagonal shift decays across block rows so the condition
// number is ~1e2–1e3 — enough that a raw fp32 solve misses the 1e-10
// equivalence bar by several orders and the fp64 refinement has real work.
func illCondBTA(rng *rand.Rand, n, b, a int) *Matrix {
	m := NewMatrix(n, b, a)
	fill := func(dst *dense.Matrix) {
		for i := range dst.Data {
			dst.Data[i] = 0.3 * rng.NormFloat64()
		}
	}
	base := float64(2*b + 2*a + 4)
	for i := 0; i < n; i++ {
		fill(m.Diag[i])
		m.Diag[i].Symmetrize()
		// Decaying shift: early blocks are stiff, late blocks barely SPD.
		shift := base * math.Pow(10, -2*float64(i)/float64(n-1))
		m.Diag[i].AddDiag(base + shift*100)
		if i < n-1 {
			fill(m.Lower[i])
		}
		if a > 0 {
			fill(m.Arrow[i])
		}
	}
	if a > 0 {
		fill(m.Tip)
		m.Tip.Symmetrize()
		m.Tip.AddDiag(float64(2*b*n + 4))
	}
	return m
}

// TestSeqMixedSolveMatchesFp64: an fp32-factored solve with fp64 iterative
// refinement must match the pure-fp64 solve to 1e-10, and must report a
// deterministic (seeded input) refinement iteration count in 1..cap.
func TestSeqMixedSolveMatchesFp64(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tc := range []struct{ n, b, a int }{{6, 8, 3}, {5, 16, 0}, {4, 24, 4}} {
		m := illCondBTA(rng, tc.n, tc.b, tc.a)
		rhs := randVec(rng, m.Dim())

		f64, err := Factorize(m)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]float64(nil), rhs...)
		f64.Solve(want)

		fm := NewFactor(tc.n, tc.b, tc.a)
		fm.SetPrecision(PrecMixed)
		if err := fm.Refactorize(m); err != nil {
			t.Fatal(err)
		}
		if !fm.Low() {
			t.Fatal("mixed refactorize of an SPD matrix must keep the fp32 factor")
		}
		got := append([]float64(nil), rhs...)
		fm.Solve(got)
		if d := maxAbsDiff(want, got); d > 1e-10 {
			t.Fatalf("n=%d b=%d a=%d: mixed solve differs from fp64 by %g", tc.n, tc.b, tc.a, d)
		}
		it := fm.LastRefineIters()
		if it < 1 || it > DefaultMaxRefine {
			t.Fatalf("refine iters = %d, want 1..%d", it, DefaultMaxRefine)
		}
	}
}

// TestSeqMixedRefineItersPinned pins the refinement iteration count on a
// fixed seeded system — a drift canary for the contraction rate of the
// fp32 factor (κ·eps32 per round).
func TestSeqMixedRefineItersPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := illCondBTA(rng, 6, 12, 3)
	rhs := randVec(rng, m.Dim())
	f := NewFactor(6, 12, 3)
	f.SetPrecision(PrecMixed)
	if err := f.Refactorize(m); err != nil {
		t.Fatal(err)
	}
	x := append([]float64(nil), rhs...)
	f.Solve(x)
	if it := f.LastRefineIters(); it != 2 {
		t.Fatalf("pinned refine iteration count drifted: got %d, want 2", it)
	}
}

// TestSeqMixedSolveMultiMatchesFp64 refines a block of right-hand sides.
func TestSeqMixedSolveMultiMatchesFp64(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := illCondBTA(rng, 5, 10, 2)
	d := m.Dim()
	rhs := dense.New(d, 4)
	for i := range rhs.Data {
		rhs.Data[i] = rng.NormFloat64()
	}

	f64, err := Factorize(m)
	if err != nil {
		t.Fatal(err)
	}
	want := rhs.Clone()
	f64.SolveMulti(want)

	fm := NewFactor(5, 10, 2)
	fm.SetPrecision(PrecMixed)
	if err := fm.Refactorize(m); err != nil {
		t.Fatal(err)
	}
	got := rhs.Clone()
	fm.SolveMulti(got)
	if d := maxAbsDiff(want.Data, got.Data); d > 1e-10 {
		t.Fatalf("mixed SolveMulti differs from fp64 by %g", d)
	}
	if it := fm.LastRefineIters(); it < 1 {
		t.Fatalf("SolveMulti refinement did not run (iters=%d)", it)
	}
}

// TestSeqMixedPromotion: operations with no refinement analogue (sampling
// half-solves, selected inversion) must silently promote the factor to full
// fp64 and then match the pure-fp64 results exactly.
func TestSeqMixedPromotion(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m := illCondBTA(rng, 5, 9, 3)
	d := m.Dim()
	z := randVec(rng, d)

	f64, err := Factorize(m)
	if err != nil {
		t.Fatal(err)
	}
	wantZ := append([]float64(nil), z...)
	f64.SolveLT(wantZ)
	wantSig, err := f64.SelectedInversion()
	if err != nil {
		t.Fatal(err)
	}

	fm := NewFactor(5, 9, 3)
	fm.SetPrecision(PrecMixed)
	if err := fm.Refactorize(m); err != nil {
		t.Fatal(err)
	}
	gotZ := append([]float64(nil), z...)
	fm.SolveLT(gotZ)
	if fm.Low() {
		t.Fatal("SolveLT must promote the factor to fp64")
	}
	if diff := maxAbsDiff(wantZ, gotZ); diff != 0 {
		t.Fatalf("promoted SolveLT differs from fp64 by %g, want exact", diff)
	}
	gotSig, err := fm.SelectedInversion()
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxAbsDiff(wantSig.DiagVec(), gotSig.DiagVec()); diff != 0 {
		t.Fatalf("promoted selinv differs from fp64 by %g, want exact", diff)
	}
}

// TestParallelMixedEquivalenceGrid runs the mixed-precision parallel factor
// across the P × recursion × pipelining grid and requires every refined
// solve to match the pure-fp64 sequential solve to 1e-10.
func TestParallelMixedEquivalenceGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n, b, a := 16, 6, 2
	m := illCondBTA(rng, n, b, a)
	rhs := randVec(rng, m.Dim())

	f64, err := Factorize(m)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), rhs...)
	f64.Solve(want)
	wantLD := f64.LogDet()

	for _, tc := range []struct {
		p, depth int
		pipe     bool
	}{
		{1, 0, false}, // sequential delegate
		{3, 0, false}, // flat reduced engine
		{4, 0, true},  // pipelined boundary handoff
		{5, 1, false}, // recursive reduced engine
		{5, 1, true},  // recursion + pipelining
	} {
		pf, err := NewParallelFactorOpts(n, b, a, ParallelOptions{
			Partitions: tc.p,
			Reduced:    ReducedOptions{Depth: tc.depth, Crossover: 4, Pipeline: tc.pipe},
			Precision:  PrecMixed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := pf.Refactorize(m); err != nil {
			t.Fatalf("p=%d depth=%d pipe=%v: %v", tc.p, tc.depth, tc.pipe, err)
		}
		if !pf.Low() {
			t.Fatalf("p=%d: mixed refactorize must keep the fp32 factor", tc.p)
		}
		got := append([]float64(nil), rhs...)
		pf.Solve(got)
		if d := maxAbsDiff(want, got); d > 1e-10 {
			t.Fatalf("p=%d depth=%d pipe=%v: mixed solve differs from fp64 by %g",
				tc.p, tc.depth, tc.pipe, d)
		}
		if it := pf.LastRefineIters(); it < 1 || it > DefaultMaxRefine {
			t.Fatalf("p=%d: refine iters = %d, want 1..%d", tc.p, it, DefaultMaxRefine)
		}
		// LogDet stays fp32-accurate under mixed (documented policy).
		if ld := pf.LogDet(); math.Abs(ld-wantLD) > 1e-4*math.Abs(wantLD) {
			t.Fatalf("p=%d: mixed logdet %g vs fp64 %g", tc.p, ld, wantLD)
		}
	}
}

// TestParallelMixedPromotion: selected inversion on a mixed parallel factor
// promotes to fp64 and then matches the fp64 parallel result exactly.
func TestParallelMixedPromotion(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	n, b, a := 12, 5, 2
	m := illCondBTA(rng, n, b, a)

	p64, err := NewParallelFactor(n, b, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p64.Refactorize(m); err != nil {
		t.Fatal(err)
	}
	wantSig, err := p64.SelectedInversion()
	if err != nil {
		t.Fatal(err)
	}

	pm, err := NewParallelFactorOpts(n, b, a, ParallelOptions{Partitions: 3, Precision: PrecMixed})
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.Refactorize(m); err != nil {
		t.Fatal(err)
	}
	gotSig, err := pm.SelectedInversion()
	if err != nil {
		t.Fatal(err)
	}
	if pm.Low() {
		t.Fatal("selected inversion must promote the factor to fp64")
	}
	if d := maxAbsDiff(wantSig.DiagVec(), gotSig.DiagVec()); d != 0 {
		t.Fatalf("promoted parallel selinv differs from fp64 by %g, want exact", d)
	}
}

// TestParallelMixedZeroAlloc pins the steady-state allocation count of the
// mixed Refactorize+Solve cycle on the parallel factor. Goroutine launches
// of the prebuilt gang allocate a constant small number of objects per phase
// in the Go runtime; the pin is against growth, so the bound here is the
// same one the fp64 path satisfies: zero heap objects beyond the gang
// launches, which AllocsPerRun attributes to the runtime, not the heap.
func TestParallelMixedZeroAlloc(t *testing.T) {
	if dense.RaceEnabled {
		t.Skip("race-mode sync.Pool drops Put items; alloc counts are meaningless")
	}
	prev := dense.SetMaxWorkers(1)
	defer dense.SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(71))
	n, b, a := 12, 16, 3
	m := illCondBTA(rng, n, b, a)
	rhs := randVec(rng, m.Dim())
	pf, err := NewParallelFactorOpts(n, b, a, ParallelOptions{Partitions: 3, Precision: PrecMixed})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.Dim())
	if err := pf.Refactorize(m); err != nil {
		t.Fatal(err)
	}
	copy(x, rhs)
	pf.Solve(x) // warm shadows, pools, and refinement scratch
	allocs := testing.AllocsPerRun(10, func() {
		if err := pf.Refactorize(m); err != nil {
			t.Fatal(err)
		}
		copy(x, rhs)
		pf.Solve(x)
	})
	// Same bound as the fp64 parallel pin: the only per-cycle objects are
	// the gang goroutine launches (runtime-internal, not visible here).
	if allocs != 0 {
		t.Fatalf("mixed parallel Refactorize+Solve allocates %.1f objects in steady state, want 0", allocs)
	}
}

// runDistributedMixed factorizes g under PrecMixed over p simulated ranks
// and solves with PPOBTASRefined, returning the replicated solution and the
// refinement iteration count.
func runDistributedMixed(t *testing.T, g *Matrix, p int, opts DistOptions, rhs []float64) ([]float64, int) {
	t.Helper()
	parts, err := PartitionBlocks(g.N, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, g.Dim())
	iters := -1
	var mu chanMutex = make(chan struct{}, 1)
	var firstErr error
	comm.Run(p, comm.DefaultMachine(), func(c *comm.Comm) {
		local := LocalSlice(g, parts, c.Rank())
		f, err := PPOBTAFOpts(c, local, nil, opts)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		if opts.Precision == PrecMixed && p > 1 && !f.Low() {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("rank %d: mixed factorization must be low", c.Rank())
			}
			mu.Unlock()
			return
		}
		xr, it, err := PPOBTASRefined(c, f, g, rhs)
		mu.Lock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if err == nil && c.Rank() == 0 {
			copy(x, xr)
			iters = it
		}
		mu.Unlock()
	})
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	return x, iters
}

// TestDistMixedRefinedSolveMatchesFp64 runs the mixed distributed
// factorization plus refined solve across flat, pipelined, and recursive
// reduced configurations and requires 1e-10 agreement with the sequential
// fp64 solve.
func TestDistMixedRefinedSolveMatchesFp64(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := illCondBTA(rng, 12, 5, 2)
	rhs := randVec(rng, g.Dim())

	f64, err := Factorize(g)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), rhs...)
	f64.Solve(want)

	for _, tc := range []struct {
		name string
		p    int
		opts DistOptions
	}{
		{"flat-p3", 3, DistOptions{Precision: PrecMixed}},
		{"pipelined-p4", 4, DistOptions{Precision: PrecMixed, Reduced: ReducedOptions{Pipeline: true}}},
		{"recursive-p4", 4, DistOptions{Precision: PrecMixed, Reduced: ReducedOptions{Depth: 1, Crossover: 4}}},
	} {
		got, iters := runDistributedMixed(t, g, tc.p, tc.opts, rhs)
		if d := maxAbsDiff(want, got); d > 1e-10 {
			t.Fatalf("%s: refined dist solve differs from fp64 by %g", tc.name, d)
		}
		if iters < 1 || iters > DefaultMaxRefine {
			t.Fatalf("%s: refine iters = %d, want 1..%d", tc.name, iters, DefaultMaxRefine)
		}
	}
}

// TestDistRefinedSolveOnFp64FactorSkipsRefinement: against a pure-fp64
// distributed factor PPOBTASRefined is a plain solve (0 corrections) and
// still returns the replicated full solution.
func TestDistRefinedSolveOnFp64FactorSkipsRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	g := randBTA(rng, 9, 4, 2)
	rhs := randVec(rng, g.Dim())
	f64, err := Factorize(g)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), rhs...)
	f64.Solve(want)
	got, iters := runDistributedMixed(t, g, 3, DistOptions{}, rhs)
	if iters != 0 {
		t.Fatalf("fp64 factor must skip refinement, got %d iters", iters)
	}
	if d := maxAbsDiff(want, got); d > 1e-7 {
		t.Fatalf("unrefined dist solve differs from fp64 by %g", d)
	}
}

// TestSeqMixedNonSPDFallsBackToFp64: an indefinite matrix must be rejected
// by the fp64 sweep (the decider), not the fp32 one, and the error must be
// the usual fp64-path error.
func TestSeqMixedNonSPDFallsBackToFp64(t *testing.T) {
	m := NewMatrix(3, 4, 0)
	for i := 0; i < 3; i++ {
		m.Diag[i].AddDiag(1)
	}
	m.Diag[1].Set(2, 2, -5) // indefinite middle block
	f := NewFactor(3, 4, 0)
	f.SetPrecision(PrecMixed)
	err := f.Refactorize(m)
	if err == nil {
		t.Fatal("indefinite matrix must fail")
	}
	f2 := NewFactor(3, 4, 0)
	err2 := f2.Refactorize(m)
	if err2 == nil || err.Error() != err2.Error() {
		t.Fatalf("mixed-mode error %q must match the fp64 decision %q", err, err2)
	}
	if f.Low() {
		t.Fatal("failed refactorize must not leave the factor marked low")
	}
}

// TestSeqMixedRefactorizeZeroAlloc: the mixed Refactorize+Solve hot path
// allocates nothing after warm-up (shadow arena and refinement scratch are
// retained on the factor).
func TestSeqMixedRefactorizeZeroAlloc(t *testing.T) {
	if dense.RaceEnabled {
		t.Skip("race-mode sync.Pool drops Put items; alloc counts are meaningless")
	}
	prev := dense.SetMaxWorkers(1)
	defer dense.SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(59))
	m := illCondBTA(rng, 5, 16, 3)
	rhs := randVec(rng, m.Dim())
	f := NewFactor(5, 16, 3)
	f.SetPrecision(PrecMixed)
	x := make([]float64, m.Dim())
	copy(x, rhs)
	if err := f.Refactorize(m); err != nil {
		t.Fatal(err)
	}
	f.Solve(x) // warm the shadow + refinement scratch
	allocs := testing.AllocsPerRun(10, func() {
		if err := f.Refactorize(m); err != nil {
			t.Fatal(err)
		}
		copy(x, rhs)
		f.Solve(x)
	})
	if allocs != 0 {
		t.Fatalf("mixed Refactorize+Solve allocates %.1f objects in steady state, want 0", allocs)
	}
}
