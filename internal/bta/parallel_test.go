package bta

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// equivTol is the agreement tolerance between the sequential and parallel
// backends demanded by the acceptance criteria.
const equivTol = 1e-10

// seqParallelPair factorizes the same matrix through both backends.
func seqParallelPair(t *testing.T, m *Matrix, p int) (*Factor, *ParallelFactor) {
	t.Helper()
	seq, err := Factorize(m)
	if err != nil {
		t.Fatalf("sequential factorization: %v", err)
	}
	pf, err := NewParallelFactor(m.N, m.B, m.A, p)
	if err != nil {
		t.Fatalf("NewParallelFactor(p=%d): %v", p, err)
	}
	if err := pf.Refactorize(m); err != nil {
		t.Fatalf("parallel refactorize (p=%d): %v", p, err)
	}
	return seq, pf
}

// TestParallelFactorMatchesSequential sweeps the acceptance grid: partition
// counts {1,2,3,5}, odd block counts, and arrowhead sizes {0,1,4}, checking
// Solve, LogDet and SelectedInversion agreement to 1e-10.
func TestParallelFactorMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, p := range []int{1, 2, 3, 5} {
		for _, a := range []int{0, 1, 4} {
			for _, n := range []int{9, 11} {
				b := 3
				m := randBTA(rng, n, b, a)
				seq, pf := seqParallelPair(t, m, p)

				// LogDet.
				if d := math.Abs(seq.LogDet() - pf.LogDet()); d > equivTol*(1+math.Abs(seq.LogDet())) {
					t.Fatalf("p=%d a=%d n=%d: LogDet %v vs %v", p, a, n, pf.LogDet(), seq.LogDet())
				}

				// Solve.
				rhs0 := randVec(rng, m.Dim())
				want := append([]float64(nil), rhs0...)
				seq.Solve(want)
				got := append([]float64(nil), rhs0...)
				pf.Solve(got)
				for i := range got {
					if math.Abs(got[i]-want[i]) > equivTol {
						t.Fatalf("p=%d a=%d n=%d: Solve[%d] = %v want %v", p, a, n, i, got[i], want[i])
					}
				}

				// SelectedInversion, every block on the pattern.
				wantSig, err := seq.SelectedInversion()
				if err != nil {
					t.Fatal(err)
				}
				gotSig, err := pf.SelectedInversion()
				if err != nil {
					t.Fatalf("p=%d a=%d n=%d: parallel selinv: %v", p, a, n, err)
				}
				for i := 0; i < n; i++ {
					if !gotSig.Diag[i].Equal(wantSig.Diag[i], equivTol) {
						t.Fatalf("p=%d a=%d n=%d: Σ diag block %d mismatch", p, a, n, i)
					}
					if i < n-1 && !gotSig.Lower[i].Equal(wantSig.Lower[i], equivTol) {
						t.Fatalf("p=%d a=%d n=%d: Σ lower block %d mismatch", p, a, n, i)
					}
					if a > 0 && !gotSig.Arrow[i].Equal(wantSig.Arrow[i], equivTol) {
						t.Fatalf("p=%d a=%d n=%d: Σ arrow block %d mismatch", p, a, n, i)
					}
				}
				if a > 0 && !gotSig.Tip.Equal(wantSig.Tip, equivTol) {
					t.Fatalf("p=%d a=%d n=%d: Σ tip mismatch", p, a, n)
				}
			}
		}
	}
}

// TestParallelFactorTinyShapes exercises the degenerate partitionings:
// size-1 first/last partitions and size-2 (interior-free) middle partitions.
func TestParallelFactorTinyShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct{ n, p, a int }{
		{2, 2, 1}, {3, 2, 0}, {4, 3, 2}, {5, 3, 1}, {6, 4, 2}, {8, 5, 1},
	} {
		m := randBTA(rng, tc.n, 2, tc.a)
		seq, pf := seqParallelPair(t, m, tc.p)
		rhs0 := randVec(rng, m.Dim())
		want := append([]float64(nil), rhs0...)
		seq.Solve(want)
		got := append([]float64(nil), rhs0...)
		pf.Solve(got)
		for i := range got {
			if math.Abs(got[i]-want[i]) > equivTol {
				t.Fatalf("%+v: Solve[%d] = %v want %v", tc, i, got[i], want[i])
			}
		}
		wantSig, err := seq.SelectedInversion()
		if err != nil {
			t.Fatal(err)
		}
		gotSig, err := pf.SelectedInversion()
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if !gotSig.ToDense().Equal(wantSig.ToDense(), equivTol) {
			t.Fatalf("%+v: selected inverse mismatch", tc)
		}
	}
}

// TestParallelSolveMultiMatchesSequential checks the multi-RHS full solve
// and the half-solve column-norm contract (predictive variances) against
// the sequential backend.
func TestParallelSolveMultiMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := randBTA(rng, 9, 3, 2)
	seq, pf := seqParallelPair(t, m, 3)
	const k = 5
	b0 := dense.New(m.Dim(), k)
	for i := range b0.Data {
		b0.Data[i] = rng.NormFloat64()
	}

	wantW := NewMultiSolve(m.N, m.B, m.A, k)
	wantW.RHS.CopyFrom(b0)
	seq.SolveMultiInto(wantW)
	gotW := NewMultiSolve(m.N, m.B, m.A, k)
	gotW.RHS.CopyFrom(b0)
	pf.SolveMultiInto(gotW)
	if !gotW.RHS.Equal(wantW.RHS, equivTol) {
		t.Fatal("SolveMultiInto mismatch between backends")
	}

	// Half solve: entries differ (different elimination ordering) but the
	// column squared norms must agree — they are φᵀA⁻¹φ.
	wantW.RHS.CopyFrom(b0)
	seq.ForwardSolveMultiInto(wantW)
	gotW.RHS.CopyFrom(b0)
	pf.ForwardSolveMultiInto(gotW)
	for j := 0; j < k; j++ {
		var wantN, gotN float64
		for i := 0; i < m.Dim(); i++ {
			wantN += wantW.RHS.At(i, j) * wantW.RHS.At(i, j)
			gotN += gotW.RHS.At(i, j) * gotW.RHS.At(i, j)
		}
		if math.Abs(wantN-gotN) > equivTol*(1+wantN) {
			t.Fatalf("column %d half-solve norm %v vs %v", j, gotN, wantN)
		}
	}

	// Forward then backward must equal the full solve.
	pf.BackwardSolveMultiInto(gotW)
	wantW.RHS.CopyFrom(b0)
	seq.SolveMultiInto(wantW)
	if !gotW.RHS.Equal(wantW.RHS, equivTol) {
		t.Fatal("Forward+Backward does not reproduce the full solve")
	}

	// Narrowed workspaces (partial batches) through the parallel backend.
	nw := gotW.Narrow(2)
	nw.RHS.CopyFrom(b0.View(0, 0, m.Dim(), 2))
	pf.SolveMultiInto(nw)
	wide := wantW.RHS
	for j := 0; j < 2; j++ {
		for i := 0; i < m.Dim(); i++ {
			if math.Abs(nw.RHS.At(i, j)-wide.At(i, j)) > equivTol {
				t.Fatalf("narrowed solve col %d row %d mismatch", j, i)
			}
		}
	}
}

// TestParallelSolveLTCovariance verifies the sampling contract: applying
// SolveLT to every unit vector and summing the outer products must
// reproduce A⁻¹ for any elimination ordering, since Σ_i (L̃⁻ᵀe_i)(L̃⁻ᵀe_i)ᵀ
// = L̃⁻ᵀL̃⁻¹ up to the factor's implicit symmetric permutation.
func TestParallelSolveLTCovariance(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := randBTA(rng, 5, 2, 1)
	_, pf := seqParallelPair(t, m, 3)
	dim := m.Dim()
	cov := dense.New(dim, dim)
	x := make([]float64, dim)
	for i := 0; i < dim; i++ {
		for j := range x {
			x[j] = 0
		}
		x[i] = 1
		pf.SolveLT(x)
		for r := 0; r < dim; r++ {
			for c := 0; c < dim; c++ {
				cov.Set(r, c, cov.At(r, c)+x[r]*x[c])
			}
		}
	}
	inv, err := dense.Inverse(m.ToDense())
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Equal(inv, 1e-8) {
		t.Fatal("SolveLT outer-product sum does not reproduce A⁻¹")
	}
}

// TestParallelRefactorizeReuse: refilling the same parallel factor from
// different matrices must not leak state between factorizations.
func TestParallelRefactorizeReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	pf, err := NewParallelFactor(9, 3, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		m := randBTA(rng, 9, 3, 2)
		seq, err := Factorize(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := pf.Refactorize(m); err != nil {
			t.Fatal(err)
		}
		rhs0 := randVec(rng, m.Dim())
		want := append([]float64(nil), rhs0...)
		seq.Solve(want)
		got := append([]float64(nil), rhs0...)
		pf.Solve(got)
		for i := range got {
			if math.Abs(got[i]-want[i]) > equivTol {
				t.Fatalf("trial %d: Solve[%d] = %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestParallelFactorNonSPDRecovery: a failed (infeasible-θ) factorization
// must surface an error, keep all preallocated scratch, and leave the
// factor fully usable — and still exact — on the next successful
// Refactorize, through many failure/success cycles.
func TestParallelFactorNonSPDRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	good := randBTA(rng, 9, 3, 2)
	// Indefinite in a middle partition's interior: partition elimination
	// fails mid-sweep with fill blocks in flight.
	bad := good.Clone()
	bad.Diag[4].Set(0, 0, -5)
	// Indefinite only in the arrowhead: every partition elimination
	// succeeds and the failure surfaces in the reduced boundary system.
	badTip := good.Clone()
	badTip.Tip.Set(0, 0, -5)

	pf, err := NewParallelFactor(9, 3, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Factorize(good)
	if err != nil {
		t.Fatal(err)
	}
	wantSig, err := seq.SelectedInversion()
	if err != nil {
		t.Fatal(err)
	}
	chainLens := make([]int, len(pf.ps))
	for r, ps := range pf.ps {
		chainLens[r] = len(ps.chain)
	}
	for cycle := 0; cycle < 4; cycle++ {
		if err := pf.Refactorize(bad); err == nil {
			t.Fatal("non-SPD interior must fail to factorize")
		}
		if err := pf.Refactorize(badTip); err == nil {
			t.Fatal("non-SPD reduced system must fail to factorize")
		}
		if err := pf.Refactorize(good); err != nil {
			t.Fatalf("cycle %d: recovery refactorize: %v", cycle, err)
		}
		gotSig, err := pf.SelectedInversion()
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if !gotSig.ToDense().Equal(wantSig.ToDense(), equivTol) {
			t.Fatalf("cycle %d: selected inverse drifted after failures", cycle)
		}
		// The preallocated fill chains must neither grow nor leak across
		// failure cycles.
		for r, ps := range pf.ps {
			if len(ps.chain) != chainLens[r] {
				t.Fatalf("cycle %d: partition %d chain length changed %d → %d",
					cycle, r, chainLens[r], len(ps.chain))
			}
			if ps.chainUsed > len(ps.chain) {
				t.Fatalf("cycle %d: partition %d chain overrun", cycle, r)
			}
		}
	}
}

// TestParallelFactorAllocFree pins the acceptance criterion: after warmup,
// a full Refactorize + Solve + LogDet + SelectedInversionInto cycle — one
// INLA θ-evaluation plus posterior extraction — performs zero heap
// allocations, goroutine fan-out included.
func TestParallelFactorAllocFree(t *testing.T) {
	if dense.RaceEnabled {
		t.Skip("race-mode sync.Pool drops Put items; alloc counts are meaningless")
	}
	prev := dense.SetMaxWorkers(1)
	defer dense.SetMaxWorkers(prev)
	rng := rand.New(rand.NewSource(47))
	m := randBTA(rng, 12, 16, 3)
	pf, err := NewParallelFactor(12, 16, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	sig := NewMatrix(12, 16, 3)
	rhs0 := randVec(rng, m.Dim())
	rhs := make([]float64, m.Dim())
	ms := NewMultiSolve(12, 16, 3, 4)
	// Warm-up: factor, solve, selected inversion, multi-RHS.
	if err := pf.Refactorize(m); err != nil {
		t.Fatal(err)
	}
	copy(rhs, rhs0)
	pf.Solve(rhs)
	if err := pf.SelectedInversionInto(sig); err != nil {
		t.Fatal(err)
	}
	pf.SolveMultiInto(ms)
	allocs := testing.AllocsPerRun(10, func() {
		if err := pf.Refactorize(m); err != nil {
			t.Fatal(err)
		}
		copy(rhs, rhs0)
		pf.Solve(rhs)
		_ = pf.LogDet()
		if err := pf.SelectedInversionInto(sig); err != nil {
			t.Fatal(err)
		}
		pf.SolveMultiInto(ms)
	})
	if allocs != 0 {
		t.Fatalf("parallel solver cycle allocates %.1f objects per run in steady state, want 0", allocs)
	}
}

// TestNewSolverClampsPartitions: the Solver constructor clamps an
// oversized core budget to the useful width instead of failing — down to
// the sequential backend when the time dimension is too shallow for
// partitioning to pay at all.
func TestNewSolverClampsPartitions(t *testing.T) {
	// 16 blocks absorb at most 16/4 = 4 useful partitions.
	s, err := NewSolver(16, 2, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	pf, ok := s.(*ParallelFactor)
	if !ok {
		t.Fatalf("expected a ParallelFactor, got %T", s)
	}
	if pf.P != MaxUsefulPartitions(16) {
		t.Fatalf("partitions %d, want the useful bound %d", pf.P, MaxUsefulPartitions(16))
	}
	// 4 blocks over 64 requested partitions would be all boundaries and no
	// interiors — strictly slower than sequential, so it degrades to the
	// sequential chain.
	s, err = NewSolver(4, 2, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*Factor); !ok {
		t.Fatalf("expected the sequential Factor for an unpartitionable shape, got %T", s)
	}
	s, err = NewSolver(16, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*Factor); !ok {
		t.Fatalf("expected the sequential Factor for p=1, got %T", s)
	}
}
