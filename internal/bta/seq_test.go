package bta

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/sparse"
)

// sparseFromDense converts exactly (no drop tolerance).
func sparseFromDense(d *dense.Matrix) *sparse.CSR { return sparse.FromDense(d, 0) }

// randBTA builds a random SPD BTA matrix by forming G·Gᵀ + shift·I over the
// BTA pattern: we generate random blocks and add a strong diagonal so every
// leading minor is positive.
func randBTA(rng *rand.Rand, n, b, a int) *Matrix {
	m := NewMatrix(n, b, a)
	fill := func(dst *dense.Matrix) {
		for i := range dst.Data {
			dst.Data[i] = 0.3 * rng.NormFloat64()
		}
	}
	for i := 0; i < n; i++ {
		fill(m.Diag[i])
		m.Diag[i].Symmetrize()
		m.Diag[i].AddDiag(float64(2*b + 2*a + 4))
		if i < n-1 {
			fill(m.Lower[i])
		}
		if a > 0 {
			fill(m.Arrow[i])
		}
	}
	if a > 0 {
		fill(m.Tip)
		m.Tip.Symmetrize()
		m.Tip.AddDiag(float64(2*b*n + 4))
	}
	return m
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestMatrixShapeAndDim(t *testing.T) {
	m := NewMatrix(4, 3, 2)
	if m.Dim() != 14 {
		t.Fatalf("Dim = %d, want 14", m.Dim())
	}
	if len(m.Diag) != 4 || len(m.Lower) != 3 || len(m.Arrow) != 4 {
		t.Fatal("block counts wrong")
	}
	bt := NewMatrix(3, 2, 0)
	if bt.Tip != nil || bt.Arrow != nil {
		t.Fatal("BT matrix must not allocate arrow storage")
	}
	if bt.Dim() != 6 {
		t.Fatalf("BT Dim = %d", bt.Dim())
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid shape must panic")
		}
	}()
	NewMatrix(0, 3, 1)
}

func TestToDenseFromDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	m := randBTA(rng, 4, 3, 2)
	d := m.ToDense()
	back := FromDense(d, 4, 3, 2)
	if !back.ToDense().Equal(d, 0) {
		t.Fatal("FromDense(ToDense) round trip failed")
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, a := range []int{0, 2} {
		m := randBTA(rng, 5, 3, a)
		d := m.ToDense()
		x := randVec(rng, m.Dim())
		y := make([]float64, m.Dim())
		m.MulVec(x, y)
		want := make([]float64, m.Dim())
		dense.Gemv(dense.NoTrans, 1, d, x, 0, want)
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-11 {
				t.Fatalf("a=%d: MulVec[%d] = %v want %v", a, i, y[i], want[i])
			}
		}
	}
}

func TestFactorizeReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	cases := []struct{ n, b, a int }{
		{1, 3, 0}, {2, 2, 0}, {5, 4, 0},
		{1, 3, 2}, {2, 2, 1}, {5, 4, 3}, {8, 2, 2},
	}
	for _, tc := range cases {
		m := randBTA(rng, tc.n, tc.b, tc.a)
		f, err := Factorize(m)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		// Assemble dense L and check L·Lᵀ = A.
		l := dense.New(m.Dim(), m.Dim())
		for i := 0; i < f.N; i++ {
			setBlock(l, i*f.B, i*f.B, f.Diag[i])
			if i < f.N-1 {
				setBlock(l, (i+1)*f.B, i*f.B, f.Lower[i])
			}
			if f.A > 0 {
				setBlock(l, f.N*f.B, i*f.B, f.Arrow[i])
			}
		}
		if f.A > 0 {
			setBlock(l, f.N*f.B, f.N*f.B, f.Tip)
		}
		rec := dense.MatMul(dense.NoTrans, dense.Trans, l, l)
		if !rec.Equal(m.ToDense(), 1e-8) {
			t.Fatalf("%+v: LLᵀ != A", tc)
		}
	}
}

func TestFactorizeDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	m := randBTA(rng, 3, 2, 1)
	before := m.ToDense()
	if _, err := Factorize(m); err != nil {
		t.Fatal(err)
	}
	if !m.ToDense().Equal(before, 0) {
		t.Fatal("Factorize modified its input")
	}
}

func TestFactorizeRejectsIndefinite(t *testing.T) {
	m := NewMatrix(2, 2, 1)
	m.Diag[0].Set(0, 0, 1)
	m.Diag[0].Set(1, 1, -1) // indefinite block
	m.Diag[1].AddDiag(1)
	m.Tip.AddDiag(1)
	if _, err := Factorize(m); err == nil {
		t.Fatal("indefinite BTA must fail to factorize")
	}
}

func TestLogDetAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for _, a := range []int{0, 2} {
		m := randBTA(rng, 4, 3, a)
		f, err := Factorize(m)
		if err != nil {
			t.Fatal(err)
		}
		ld, err := dense.Chol(m.ToDense())
		if err != nil {
			t.Fatal(err)
		}
		want := dense.LogDetFromChol(ld)
		if math.Abs(f.LogDet()-want) > 1e-8 {
			t.Fatalf("a=%d: LogDet = %v want %v", a, f.LogDet(), want)
		}
	}
}

func TestSolveAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for _, tc := range []struct{ n, b, a int }{{3, 2, 0}, {4, 3, 2}, {1, 4, 1}} {
		m := randBTA(rng, tc.n, tc.b, tc.a)
		f, err := Factorize(m)
		if err != nil {
			t.Fatal(err)
		}
		x := randVec(rng, m.Dim())
		rhs := append([]float64(nil), x...)
		f.Solve(rhs)
		want, err := dense.Solve(m.ToDense(), x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rhs {
			if math.Abs(rhs[i]-want[i]) > 1e-8 {
				t.Fatalf("%+v: Solve[%d] = %v want %v", tc, i, rhs[i], want[i])
			}
		}
	}
}

func TestSolveMultiMatchesVector(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	m := randBTA(rng, 3, 3, 2)
	f, err := Factorize(m)
	if err != nil {
		t.Fatal(err)
	}
	const nrhs = 4
	b := dense.New(m.Dim(), nrhs)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	multi := b.Clone()
	f.SolveMulti(multi)
	for j := 0; j < nrhs; j++ {
		col := make([]float64, m.Dim())
		for i := 0; i < m.Dim(); i++ {
			col[i] = b.At(i, j)
		}
		f.Solve(col)
		for i := 0; i < m.Dim(); i++ {
			if math.Abs(multi.At(i, j)-col[i]) > 1e-10 {
				t.Fatalf("SolveMulti col %d row %d mismatch", j, i)
			}
		}
	}
}

func TestSelectedInversionAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for _, tc := range []struct{ n, b, a int }{{1, 3, 0}, {3, 2, 0}, {4, 3, 2}, {2, 2, 1}, {6, 2, 3}} {
		m := randBTA(rng, tc.n, tc.b, tc.a)
		f, err := Factorize(m)
		if err != nil {
			t.Fatal(err)
		}
		sig, err := f.SelectedInversion()
		if err != nil {
			t.Fatal(err)
		}
		inv, err := dense.Inverse(m.ToDense())
		if err != nil {
			t.Fatal(err)
		}
		// Every block on the BTA pattern must match the dense inverse.
		for i := 0; i < tc.n; i++ {
			if !sig.Diag[i].Equal(inv.View(i*tc.b, i*tc.b, tc.b, tc.b).Clone(), 1e-8) {
				t.Fatalf("%+v: Σ diag block %d mismatch", tc, i)
			}
			if i < tc.n-1 {
				if !sig.Lower[i].Equal(inv.View((i+1)*tc.b, i*tc.b, tc.b, tc.b).Clone(), 1e-8) {
					t.Fatalf("%+v: Σ lower block %d mismatch", tc, i)
				}
			}
			if tc.a > 0 {
				if !sig.Arrow[i].Equal(inv.View(tc.n*tc.b, i*tc.b, tc.a, tc.b).Clone(), 1e-8) {
					t.Fatalf("%+v: Σ arrow block %d mismatch", tc, i)
				}
			}
		}
		if tc.a > 0 {
			if !sig.Tip.Equal(inv.View(tc.n*tc.b, tc.n*tc.b, tc.a, tc.a).Clone(), 1e-8) {
				t.Fatalf("%+v: Σ tip mismatch", tc)
			}
		}
	}
}

func TestDiagVec(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	m := randBTA(rng, 3, 2, 2)
	d := m.DiagVec()
	full := m.ToDense()
	for i := range d {
		if d[i] != full.At(i, i) {
			t.Fatalf("DiagVec[%d] = %v want %v", i, d[i], full.At(i, i))
		}
	}
}

func TestFromCSRMatchesFromDense(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := randBTA(rng, 3, 2, 1)
	d := m.ToDense()
	s := sparseFromDense(d)
	got, err := FromCSR(s, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().Equal(d, 0) {
		t.Fatal("FromCSR mismatch")
	}
}

func TestFromCSRRejectsOutOfPattern(t *testing.T) {
	// Entry (0, 5) is two block-columns away — outside BTA(n=3,b=2,a=0).
	d := dense.New(6, 6)
	for i := 0; i < 6; i++ {
		d.Set(i, i, 2)
	}
	d.Set(0, 5, 1)
	d.Set(5, 0, 1)
	if _, err := FromCSR(sparseFromDense(d), 3, 2, 0); err == nil {
		t.Fatal("out-of-pattern entry must be rejected")
	}
}

func TestFromCSRRejectsWrongSize(t *testing.T) {
	d := dense.Eye(5)
	if _, err := FromCSR(sparseFromDense(d), 3, 2, 0); err == nil {
		t.Fatal("size mismatch must be rejected")
	}
}

func TestBytesDense(t *testing.T) {
	m := NewMatrix(4, 3, 2)
	// 4 diag (9) + 3 lower (9) + 4 arrow (6) + tip (4) doubles ×8 bytes.
	want := int64(4*9+3*9+4*6+4) * 8
	if m.BytesDense() != want {
		t.Fatalf("BytesDense = %d want %d", m.BytesDense(), want)
	}
}

func TestQuickFactorSolveResidual(t *testing.T) {
	f := func(seed int64, ns, bs, as uint8) bool {
		n := int(ns%6) + 1
		b := int(bs%4) + 1
		a := int(as % 4)
		rng := rand.New(rand.NewSource(seed))
		m := randBTA(rng, n, b, a)
		fac, err := Factorize(m)
		if err != nil {
			return false
		}
		x := randVec(rng, m.Dim())
		rhs := append([]float64(nil), x...)
		fac.Solve(rhs)
		// Residual ‖A·x − b‖∞
		y := make([]float64, m.Dim())
		m.MulVec(rhs, y)
		for i := range y {
			if math.Abs(y[i]-x[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSelInvDiagPositive(t *testing.T) {
	f := func(seed int64, ns, bs uint8) bool {
		n := int(ns%5) + 1
		b := int(bs%3) + 1
		rng := rand.New(rand.NewSource(seed))
		m := randBTA(rng, n, b, 2)
		fac, err := Factorize(m)
		if err != nil {
			return false
		}
		sig, err := fac.SelectedInversion()
		if err != nil {
			return false
		}
		for _, v := range sig.DiagVec() {
			if v <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
