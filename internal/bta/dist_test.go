package bta

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dalia-hpc/dalia/internal/comm"
	"github.com/dalia-hpc/dalia/internal/dense"
)

func TestPartitionBlocksEven(t *testing.T) {
	parts, err := PartitionBlocks(12, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("got %d partitions", len(parts))
	}
	covered := 0
	prevHi := -1
	for _, p := range parts {
		if p.Lo != prevHi+1 {
			t.Fatalf("partitions not contiguous: %+v", parts)
		}
		prevHi = p.Hi
		covered += p.Size()
	}
	if covered != 12 || parts[3].Hi != 11 {
		t.Fatalf("coverage wrong: %+v", parts)
	}
}

func TestPartitionBlocksLoadBalanced(t *testing.T) {
	parts, err := PartitionBlocks(26, 4, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].Size() <= parts[1].Size() {
		t.Fatalf("lb=1.6 must enlarge the first partition: %+v", parts)
	}
	total := 0
	for _, p := range parts {
		total += p.Size()
	}
	if total != 26 {
		t.Fatalf("blocks lost: %+v", parts)
	}
}

// TestHybridPartitionFlatBitForBit: the one-stream-per-node layout must
// reproduce the flat splitter exactly — the hybrid code path defers to it.
func TestHybridPartitionFlatBitForBit(t *testing.T) {
	for _, tc := range []struct {
		n, p int
		lb   float64
	}{{26, 4, 1.6}, {12, 4, 1}, {23, 3, 1.7}} {
		flat, err := PartitionBlocks(tc.n, tc.p, tc.lb)
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := HybridPartition(tc.n, UniformStreams(tc.p, 1), tc.lb)
		if err != nil {
			t.Fatal(err)
		}
		for i := range flat {
			if flat[i] != hyb[i] {
				t.Fatalf("%+v: partition %d: flat %+v hybrid %+v", tc, i, flat[i], hyb[i])
			}
		}
	}
}

// TestHybridPartitionLoadBalance: lb must be honored inside the node gangs
// (the global-first partition enlarged) and per-node block shares must
// follow the stream counts even when they are unequal — the node with more
// streams owns proportionally more blocks, keeping per-stream (and hence
// per-node-makespan) sizes near-equal.
func TestHybridPartitionLoadBalance(t *testing.T) {
	// Two nodes, 3 + 1 streams, lb = 1.6 over 50 blocks.
	counts := []int{3, 1}
	parts, err := HybridPartition(50, counts, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("got %d partitions", len(parts))
	}
	prevHi := -1
	total := 0
	for _, p := range parts {
		if p.Lo != prevHi+1 {
			t.Fatalf("not contiguous: %+v", parts)
		}
		prevHi = p.Hi
		total += p.Size()
	}
	if total != 50 || parts[3].Hi != 49 {
		t.Fatalf("coverage wrong: %+v", parts)
	}
	// lb honored inside node 0's gang: the one-sided first partition is
	// strictly larger than its two-sided node-mates.
	if parts[0].Size() <= parts[1].Size() {
		t.Fatalf("lb must enlarge the global-first partition: %+v", parts)
	}
	// Per-node makespan ≈ the largest per-stream cost: every two-sided
	// partition must be within one block of the others (shares follow the
	// stream counts, not an even node split).
	twoSided := []int{parts[1].Size(), parts[2].Size(), parts[3].Size()}
	for _, s := range twoSided[1:] {
		if d := s - twoSided[0]; d > 1 || d < -1 {
			t.Fatalf("two-sided streams unbalanced: %+v", parts)
		}
	}
	// The naive even node split would give node 1 half the blocks; the
	// stream-weighted split must not.
	node1 := parts[3].Size()
	if node1 > 50/2 {
		t.Fatalf("node 1 (1 stream) owns %d of 50 blocks — even node split, not stream-weighted", node1)
	}
}

// TestSpreadStreams covers the unequal fallback layout.
func TestSpreadStreams(t *testing.T) {
	got := SpreadStreams(3, 7)
	if got[0] != 3 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("SpreadStreams(3,7) = %v", got)
	}
	got = SpreadStreams(2, 1)
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("SpreadStreams(2,1) = %v (each rank needs a stream)", got)
	}
}

func TestPartitionBlocksErrors(t *testing.T) {
	if _, err := PartitionBlocks(10, 0, 1); err == nil {
		t.Fatal("p=0 must error")
	}
	if _, err := PartitionBlocks(3, 4, 1); err == nil {
		t.Fatal("too few blocks must error")
	}
	if _, err := PartitionBlocks(10, 3, 0.5); err == nil {
		t.Fatal("lb<1 must error")
	}
}

func TestPartitionSingle(t *testing.T) {
	parts, err := PartitionBlocks(7, 1, 1)
	if err != nil || len(parts) != 1 || parts[0].Lo != 0 || parts[0].Hi != 6 {
		t.Fatalf("single partition wrong: %+v, %v", parts, err)
	}
}

func TestBoundariesAndInteriors(t *testing.T) {
	parts, _ := PartitionBlocks(10, 3, 1)
	// First partition: boundary = last block, interiors = rest.
	b0 := boundaries(parts[0], 0, 3)
	if len(b0) != 1 || b0[0] != parts[0].Hi {
		t.Fatalf("p0 boundaries %v", b0)
	}
	i0 := interiors(parts[0], 0, 3)
	if len(i0) != parts[0].Size()-1 || i0[0] != parts[0].Lo {
		t.Fatalf("p0 interiors %v", i0)
	}
	// Middle partition: two boundaries.
	b1 := boundaries(parts[1], 1, 3)
	if len(b1) != 2 || b1[0] != parts[1].Lo || b1[1] != parts[1].Hi {
		t.Fatalf("p1 boundaries %v", b1)
	}
	// Last partition: top boundary.
	b2 := boundaries(parts[2], 2, 3)
	if len(b2) != 1 || b2[0] != parts[2].Lo {
		t.Fatalf("p2 boundaries %v", b2)
	}
	i2 := interiors(parts[2], 2, 3)
	if len(i2) != parts[2].Size()-1 || i2[len(i2)-1] != parts[2].Hi {
		t.Fatalf("p2 interiors %v", i2)
	}
}

// runDistributed factorizes, solves, and selected-inverts a BTA matrix over
// p simulated ranks, returning the results gathered on caller side.
type distResult struct {
	logDet  float64
	x       []float64
	sigDiag []float64
	sigLows []*dense.Matrix // Σ(k+1,k) for k = 0..n−2 in global order
	sigTip  *dense.Matrix
	err     error
}

func runDistributed(t *testing.T, g *Matrix, p int, lb float64, rhs []float64) distResult {
	t.Helper()
	parts, err := PartitionBlocks(g.N, p, lb)
	if err != nil {
		t.Fatal(err)
	}
	n, b, a := g.N, g.B, g.A
	res := distResult{
		x:       make([]float64, n*b+a),
		sigDiag: make([]float64, n*b+a),
		sigLows: make([]*dense.Matrix, n-1),
	}
	var mu chanMutex = make(chan struct{}, 1)
	comm.Run(p, comm.DefaultMachine(), func(c *comm.Comm) {
		local := LocalSlice(g, parts, c.Rank())
		f, err := PPOBTAF(c, local)
		if err != nil {
			mu.Lock()
			res.err = err
			mu.Unlock()
			return
		}
		part := parts[c.Rank()]
		rhsLocal := append([]float64(nil), rhs[part.Lo*b:(part.Hi+1)*b]...)
		var rhsTip []float64
		if a > 0 {
			rhsTip = rhs[n*b:]
		}
		xLocal, xTip, err := PPOBTAS(c, f, rhsLocal, rhsTip)
		if err != nil {
			mu.Lock()
			res.err = err
			mu.Unlock()
			return
		}
		sig, err := PPOBTASI(c, f)
		if err != nil {
			mu.Lock()
			res.err = err
			mu.Unlock()
			return
		}
		mu.Lock()
		res.logDet = f.LogDet()
		copy(res.x[part.Lo*b:], xLocal)
		if a > 0 && xTip != nil {
			copy(res.x[n*b:], xTip)
		}
		d := sig.DiagVec()
		copy(res.sigDiag[part.Lo*b:], d)
		if a > 0 && sig.Tip != nil {
			res.sigTip = sig.Tip
			for k := 0; k < a; k++ {
				res.sigDiag[n*b+k] = sig.Tip.At(k, k)
			}
		}
		for i, l := range sig.Lower {
			res.sigLows[part.Lo+i] = l
		}
		if sig.TopCoupling != nil {
			res.sigLows[part.Lo-1] = sig.TopCoupling
		}
		mu.Unlock()
	})
	return res
}

type chanMutex chan struct{}

func (m chanMutex) Lock()   { m <- struct{}{} }
func (m chanMutex) Unlock() { <-m }

func checkDistributedMatchesSequential(t *testing.T, g *Matrix, p int, lb float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1234))
	rhs := randVec(rng, g.Dim())

	res := runDistributed(t, g, p, lb, rhs)
	if res.err != nil {
		t.Fatalf("P=%d: %v", p, res.err)
	}

	f, err := Factorize(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.logDet-f.LogDet()) > 1e-7*(1+math.Abs(f.LogDet())) {
		t.Fatalf("P=%d: logdet %v want %v", p, res.logDet, f.LogDet())
	}
	want := append([]float64(nil), rhs...)
	f.Solve(want)
	for i := range want {
		if math.Abs(res.x[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
			t.Fatalf("P=%d: solve[%d] = %v want %v", p, i, res.x[i], want[i])
		}
	}
	sig, err := f.SelectedInversion()
	if err != nil {
		t.Fatal(err)
	}
	wantDiag := sig.DiagVec()
	for i := range wantDiag {
		if math.Abs(res.sigDiag[i]-wantDiag[i]) > 1e-7*(1+math.Abs(wantDiag[i])) {
			t.Fatalf("P=%d: selinv diag[%d] = %v want %v", p, i, res.sigDiag[i], wantDiag[i])
		}
	}
	for k := 0; k < g.N-1; k++ {
		if res.sigLows[k] == nil {
			t.Fatalf("P=%d: missing Σ lower block %d", p, k)
		}
		if !res.sigLows[k].Equal(sig.Lower[k], 1e-7) {
			t.Fatalf("P=%d: Σ lower block %d mismatch", p, k)
		}
	}
	if g.A > 0 && !res.sigTip.Equal(sig.Tip, 1e-7) {
		t.Fatalf("P=%d: Σ tip mismatch", p)
	}
}

func TestDistributedMatchesSequentialP1(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	checkDistributedMatchesSequential(t, randBTA(rng, 6, 3, 2), 1, 1)
}

func TestDistributedMatchesSequentialP2(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	checkDistributedMatchesSequential(t, randBTA(rng, 7, 3, 2), 2, 1)
}

func TestDistributedMatchesSequentialP3(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	checkDistributedMatchesSequential(t, randBTA(rng, 9, 2, 2), 3, 1)
}

func TestDistributedMatchesSequentialP4(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	checkDistributedMatchesSequential(t, randBTA(rng, 12, 3, 2), 4, 1)
}

func TestDistributedMatchesSequentialNoArrow(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	checkDistributedMatchesSequential(t, randBTA(rng, 10, 3, 0), 3, 1)
}

func TestDistributedLoadBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	checkDistributedMatchesSequential(t, randBTA(rng, 14, 2, 1), 4, 1.6)
}

func TestDistributedMinimalMiddlePartitions(t *testing.T) {
	// Middle partitions of exactly 2 blocks (no interiors).
	rng := rand.New(rand.NewSource(107))
	g := randBTA(rng, 6, 2, 1)
	// Partitions: [0,0][1,2][3,4][5,5] — middle partitions have no interiors.
	parts := []Partition{{0, 0}, {1, 2}, {3, 4}, {5, 5}}
	rhs := randVec(rng, g.Dim())

	f, err := Factorize(g)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), rhs...)
	f.Solve(want)
	wantLd := f.LogDet()
	sigRef, _ := f.SelectedInversion()

	var firstErr error
	got := make([]float64, g.Dim())
	sigDiag := make([]float64, g.Dim())
	var mu chanMutex = make(chan struct{}, 1)
	comm.Run(4, comm.DefaultMachine(), func(c *comm.Comm) {
		local := LocalSlice(g, parts, c.Rank())
		df, err := PPOBTAF(c, local)
		if err != nil {
			mu.Lock()
			firstErr = err
			mu.Unlock()
			return
		}
		part := parts[c.Rank()]
		rl := append([]float64(nil), rhs[part.Lo*g.B:(part.Hi+1)*g.B]...)
		x, xt, err := PPOBTAS(c, df, rl, rhs[g.N*g.B:])
		if err != nil {
			mu.Lock()
			firstErr = err
			mu.Unlock()
			return
		}
		sig, err := PPOBTASI(c, df)
		if err != nil {
			mu.Lock()
			firstErr = err
			mu.Unlock()
			return
		}
		mu.Lock()
		if math.Abs(df.LogDet()-wantLd) > 1e-7 {
			firstErr = errLogDet
		}
		copy(got[part.Lo*g.B:], x)
		if xt != nil {
			copy(got[g.N*g.B:], xt)
		}
		copy(sigDiag[part.Lo*g.B:], sig.DiagVec())
		if sig.Tip != nil {
			for k := 0; k < g.A; k++ {
				sigDiag[g.N*g.B+k] = sig.Tip.At(k, k)
			}
		}
		mu.Unlock()
	})
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-7 {
			t.Fatalf("solve[%d] = %v want %v", i, got[i], want[i])
		}
	}
	wantDiag := sigRef.DiagVec()
	for i := range wantDiag {
		if math.Abs(sigDiag[i]-wantDiag[i]) > 1e-7 {
			t.Fatalf("selinv diag[%d] = %v want %v", i, sigDiag[i], wantDiag[i])
		}
	}
}

var errLogDet = errFor("distributed logdet mismatch")

type errFor string

func (e errFor) Error() string { return string(e) }

func TestDistributedRejectsBadRhs(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	g := randBTA(rng, 6, 2, 1)
	parts, _ := PartitionBlocks(6, 2, 1)
	var gotErr error
	var mu chanMutex = make(chan struct{}, 1)
	comm.Run(2, comm.DefaultMachine(), func(c *comm.Comm) {
		local := LocalSlice(g, parts, c.Rank())
		f, err := PPOBTAF(c, local)
		if err != nil {
			return
		}
		_, _, err = PPOBTAS(c, f, []float64{1, 2, 3}, nil) // wrong length
		mu.Lock()
		if err != nil {
			gotErr = err
		}
		mu.Unlock()
	})
	if gotErr == nil {
		t.Fatal("bad rhs length must error")
	}
}

func TestDistributedIndefiniteFails(t *testing.T) {
	g := NewMatrix(6, 2, 0)
	for i := 0; i < 6; i++ {
		g.Diag[i].AddDiag(1)
	}
	g.Diag[2].Set(0, 0, -5) // indefinite interior block
	parts, _ := PartitionBlocks(6, 2, 1)
	sawError := false
	var mu chanMutex = make(chan struct{}, 1)
	comm.Run(2, comm.DefaultMachine(), func(c *comm.Comm) {
		local := LocalSlice(g, parts, c.Rank())
		_, err := PPOBTAF(c, local)
		mu.Lock()
		if err != nil {
			sawError = true
		}
		mu.Unlock()
	})
	if !sawError {
		t.Fatal("indefinite matrix must fail distributed factorization")
	}
}

func BenchmarkSeqFactorize(b *testing.B) {
	rng := rand.New(rand.NewSource(200))
	m := randBTA(rng, 32, 32, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factorize(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeqSelInv(b *testing.B) {
	rng := rand.New(rand.NewSource(201))
	m := randBTA(rng, 32, 32, 4)
	f, err := Factorize(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.SelectedInversion(); err != nil {
			b.Fatal(err)
		}
	}
}
