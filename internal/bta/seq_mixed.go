package bta

import (
	"fmt"
	"math"

	"github.com/dalia-hpc/dalia/internal/dense"
)

// Sequential mixed-precision path: the fp32 in-place factorization sweep and
// the fp64 iterative refinement that recovers double-precision solves from
// the single-precision factor. See the Precision doc comment (precision.go)
// for the per-stage policy.

// SetPrecision selects the precision policy of subsequent Refactorize calls.
// Changing the policy does not touch the current factor contents; it takes
// effect at the next Refactorize. Not safe concurrently with solves.
func (f *Factor) SetPrecision(p Precision) { f.prec = p }

// Precision reports the configured precision policy.
func (f *Factor) Precision() Precision { return f.prec }

// SetMaxRefine overrides the fp64 residual-correction cap per solve
// (DefaultMaxRefine when v <= 0).
func (f *Factor) SetMaxRefine(v int) { f.maxRefine = v }

// LastRefineIters reports the number of fp64 residual corrections the most
// recent refined solve performed (0 after a pure-fp64 solve).
func (f *Factor) LastRefineIters() int {
	f.refineMu.Lock()
	defer f.refineMu.Unlock()
	return f.lastRefine
}

// Low reports whether the current factor blocks came from the fp32 sweep
// (and solves therefore run fp64 iterative refinement).
func (f *Factor) Low() bool { return f.isLow() }

func (f *Factor) isLow() bool {
	f.refineMu.Lock()
	defer f.refineMu.Unlock()
	return f.low
}

// refactorize32 runs the whole POBTAF sweep in fp32 on a lazily allocated
// shadow of the matrix and promotes the factor blocks back on success. The
// fp64 factor storage is only written after the full sweep succeeds, so a
// failed fp32 Cholesky leaves Refactorize free to fall back to the fp64
// path on the untouched input.
func (f *Factor) refactorize32(m *Matrix) error {
	n, b, a := f.N, f.B, f.A
	if !f.shadow.fits(n, 0, b, a) {
		f.shadow = newElimShadow32(n, 0, b, a)
	}
	sh := f.shadow
	for i := 0; i < n; i++ {
		sh.diag[i].FromFloat64(m.Diag[i])
	}
	for i := range m.Lower {
		sh.lower[i].FromFloat64(m.Lower[i])
	}
	if a > 0 {
		for i := range m.Arrow {
			sh.arrow[i].FromFloat64(m.Arrow[i])
		}
		sh.tip.FromFloat64(m.Tip)
	}
	for i := 0; i < n; i++ {
		if err := factorStep32(sh, i, n, a > 0); err != nil {
			return err
		}
	}
	if a > 0 {
		if err := dense.Potrf32(sh.tip); err != nil {
			return fmt.Errorf("bta: arrow tip (fp32): %w", err)
		}
		sh.tip.ZeroUpper()
	}
	for i := 0; i < n; i++ {
		sh.diag[i].StoreFloat64(f.Diag[i])
	}
	for i := range f.Lower {
		sh.lower[i].StoreFloat64(f.Lower[i])
	}
	if a > 0 {
		for i := range f.Arrow {
			sh.arrow[i].StoreFloat64(f.Arrow[i])
		}
		sh.tip.StoreFloat64(f.Tip)
	}
	return nil
}

// factorStep32 is the fp32 twin of factorStep, operating on the shadow arena.
func factorStep32(sh *elimShadow32, i, n int, hasArrow bool) error {
	if err := dense.Potrf32(sh.diag[i]); err != nil {
		return fmt.Errorf("bta: diagonal block %d (fp32): %w", i, err)
	}
	sh.diag[i].ZeroUpper()
	li := sh.diag[i]
	if i < n-1 {
		dense.Trsm32(dense.Right, dense.Trans, li, sh.lower[i])
	}
	if hasArrow {
		dense.Trsm32(dense.Right, dense.Trans, li, sh.arrow[i])
	}
	if i < n-1 {
		dense.Syrk32(dense.NoTrans, -1, sh.lower[i], 1, sh.diag[i+1])
		sh.diag[i+1].MirrorLowerToUpper()
		if hasArrow {
			dense.Gemm32(dense.NoTrans, dense.Trans, -1, sh.arrow[i], sh.lower[i], 1, sh.arrow[i+1])
		}
	}
	if hasArrow {
		dense.Syrk32(dense.NoTrans, -1, sh.arrow[i], 1, sh.tip)
	}
	return nil
}

// promote replaces a low-precision factor with a full fp64 refactorization
// of the retained matrix — the escape hatch for operations with no residual
// to refine against (sampling half-solves, selected inversion). It cannot
// lose definiteness: the fp64 sweep is strictly more robust than the fp32
// sweep that already succeeded on the same matrix. No-op on fp64 factors.
func (f *Factor) promote() {
	f.refineMu.Lock()
	defer f.refineMu.Unlock()
	if !f.low {
		return
	}
	w := Matrix{N: f.N, B: f.B, A: f.A, Diag: f.Diag, Lower: f.Lower, Arrow: f.Arrow, Tip: f.Tip}
	w.CopyFrom(f.ref)
	if err := factorizeInPlace(&w); err != nil {
		panic(fmt.Sprintf("bta: fp64 promotion of an fp32-feasible factor failed: %v", err))
	}
	f.low = false
}

// solveRefined is Solve against a low-precision factor: an unrefined solve
// followed by fp64 residual-correction rounds x += A⁻̃¹(b − A·x) against the
// retained matrix, stopping once the correction is negligible
// (‖dx‖∞ ≤ refineTol·‖x‖∞) or the cap is hit. Scratch is retained on the
// factor, so steady-state refined solves allocate nothing.
func (f *Factor) solveRefined(rhs []float64) {
	d := f.Dim()
	f.refineMu.Lock()
	defer f.refineMu.Unlock()
	f.refB = growF(f.refB, d)
	f.refR = growF(f.refR, d)
	b0, r := f.refB, f.refR
	x := rhs[:d]
	copy(b0, x)
	f.forward(x)
	f.backward(x)
	maxR := f.maxRefine
	if maxR <= 0 {
		maxR = DefaultMaxRefine
	}
	iters := 0
	for iters < maxR {
		f.ref.MulVec(x, r)
		for i := range r {
			r[i] = b0[i] - r[i]
		}
		f.forward(r)
		f.backward(r)
		iters++
		var ndx, nx float64
		for i := range r {
			x[i] += r[i]
			if v := math.Abs(r[i]); v > ndx {
				ndx = v
			}
			if v := math.Abs(x[i]); v > nx {
				nx = v
			}
		}
		if ndx <= refineTol*nx {
			break
		}
	}
	f.lastRefine = iters
}

// solveMultiRefined is SolveMulti against a low-precision factor, refining
// all right-hand-side columns together through block residuals.
func (f *Factor) solveMultiRefined(b *dense.Matrix) {
	f.refineMu.Lock()
	defer f.refineMu.Unlock()
	if f.refBM == nil || f.refBM.Rows < b.Rows || f.refBM.Cols < b.Cols {
		f.refBM = dense.New(b.Rows, b.Cols)
		f.refRM = dense.New(b.Rows, b.Cols)
	}
	b0 := f.refBM.View(0, 0, b.Rows, b.Cols)
	r := f.refRM.View(0, 0, b.Rows, b.Cols)
	b0.CopyFrom(b)
	f.solveMultiOnce(b)
	maxR := f.maxRefine
	if maxR <= 0 {
		maxR = DefaultMaxRefine
	}
	iters := 0
	for iters < maxR {
		f.ref.MulMulti(b, r)
		for i := 0; i < r.Rows; i++ {
			rr, br := r.Row(i), b0.Row(i)
			for j := range rr {
				rr[j] = br[j] - rr[j]
			}
		}
		f.solveMultiOnce(r)
		iters++
		var ndx, nx float64
		for i := 0; i < b.Rows; i++ {
			xr, rr := b.Row(i), r.Row(i)
			for j := range xr {
				xr[j] += rr[j]
				if v := math.Abs(rr[j]); v > ndx {
					ndx = v
				}
				if v := math.Abs(xr[j]); v > nx {
					nx = v
				}
			}
		}
		if ndx <= refineTol*nx {
			break
		}
	}
	f.lastRefine = iters
}
