package comm

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/dalia-hpc/dalia/internal/dense"
)

func TestRunAllRanksExecute(t *testing.T) {
	var count int64
	st := Run(5, DefaultMachine(), func(c *Comm) {
		atomic.AddInt64(&count, 1)
		if c.Size() != 5 {
			t.Errorf("Size = %d", c.Size())
		}
	})
	if count != 5 {
		t.Fatalf("executed %d ranks, want 5", count)
	}
	if len(st.FinalClocks) != 5 || len(st.Ranks) != 5 {
		t.Fatal("stats sized wrong")
	}
}

func TestRanksAreDistinct(t *testing.T) {
	seen := make([]int64, 4)
	Run(4, DefaultMachine(), func(c *Comm) {
		atomic.AddInt64(&seen[c.Rank()], 1)
		if c.WorldRank() != c.Rank() {
			t.Errorf("world rank %d != rank %d at top level", c.WorldRank(), c.Rank())
		}
	})
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("rank %d executed %d times", r, n)
		}
	}
}

func TestSendRecv(t *testing.T) {
	Run(2, DefaultMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("recv got %v", got)
			}
		}
	})
}

func TestSendRecvOrderingPerTag(t *testing.T) {
	Run(2, DefaultMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{10})
			c.Send(1, 1, []float64{20})
			c.Send(1, 2, []float64{30})
		} else {
			if v := c.Recv(0, 2); v[0] != 30 {
				t.Errorf("tag 2 got %v", v)
			}
			if v := c.Recv(0, 1); v[0] != 10 {
				t.Errorf("tag 1 first got %v", v)
			}
			if v := c.Recv(0, 1); v[0] != 20 {
				t.Errorf("tag 1 second got %v", v)
			}
		}
	})
}

func TestTryRecv(t *testing.T) {
	Run(2, DefaultMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			if _, ok := c.TryRecv(1, 9); ok {
				t.Error("TryRecv before send must be empty")
			}
			c.Barrier()
			c.Barrier()
			if v, ok := c.TryRecv(1, 9); !ok || v[0] != 42 {
				t.Errorf("TryRecv after send: %v %v", v, ok)
			}
		} else {
			c.Barrier()
			c.Send(0, 9, []float64{42})
			c.Barrier()
		}
	})
}

func TestRecvAdvancesClockPastSender(t *testing.T) {
	st := Run(2, DefaultMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			c.Elapse(1.0) // sender is busy for 1 virtual second first
			c.Send(1, 0, make([]float64, 1000))
		} else {
			c.Recv(0, 0)
			if c.Clock() < 1.0 {
				t.Errorf("receiver clock %v < sender busy time", c.Clock())
			}
		}
	})
	if st.Makespan() < 1.0 {
		t.Fatalf("makespan %v < 1.0", st.Makespan())
	}
}

func TestAllReduceSum(t *testing.T) {
	Run(4, DefaultMachine(), func(c *Comm) {
		v := []float64{float64(c.Rank()), 1}
		got := c.AllReduceSum(v)
		if got[0] != 6 || got[1] != 4 { // 0+1+2+3, 1×4
			t.Errorf("rank %d: AllReduceSum = %v", c.Rank(), got)
		}
	})
}

func TestAllReduceMax(t *testing.T) {
	Run(3, DefaultMachine(), func(c *Comm) {
		got := c.AllReduceMax([]float64{float64(c.Rank()), -float64(c.Rank())})
		if got[0] != 2 || got[1] != 0 {
			t.Errorf("AllReduceMax = %v", got)
		}
	})
}

func TestBcast(t *testing.T) {
	Run(4, DefaultMachine(), func(c *Comm) {
		var data []float64
		if c.Rank() == 2 {
			data = []float64{3.5, 4.5}
		}
		got := c.Bcast(2, data)
		if len(got) != 2 || got[0] != 3.5 || got[1] != 4.5 {
			t.Errorf("rank %d: Bcast = %v", c.Rank(), got)
		}
	})
}

func TestGatherRagged(t *testing.T) {
	Run(3, DefaultMachine(), func(c *Comm) {
		data := make([]float64, c.Rank()+1)
		for i := range data {
			data[i] = float64(c.Rank()*10 + i)
		}
		got := c.Gather(0, data)
		if c.Rank() != 0 {
			if got != nil {
				t.Errorf("non-root got %v", got)
			}
			return
		}
		if len(got) != 3 {
			t.Fatalf("root gathered %d slices", len(got))
		}
		for r := 0; r < 3; r++ {
			if len(got[r]) != r+1 || got[r][0] != float64(r*10) {
				t.Errorf("gathered[%d] = %v", r, got[r])
			}
		}
	})
}

func TestAllGather(t *testing.T) {
	Run(3, DefaultMachine(), func(c *Comm) {
		got := c.AllGather([]float64{float64(c.Rank() * 100)})
		if len(got) != 3 {
			t.Fatalf("AllGather returned %d slices", len(got))
		}
		for r := 0; r < 3; r++ {
			if got[r][0] != float64(r*100) {
				t.Errorf("AllGather[%d] = %v", r, got[r])
			}
		}
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	Run(3, DefaultMachine(), func(c *Comm) {
		c.Elapse(float64(c.Rank())) // ranks at t = 0, 1, 2
		c.Barrier()
		if c.Clock() < 2 {
			t.Errorf("rank %d clock %v after barrier, want ≥ 2", c.Rank(), c.Clock())
		}
	})
}

func TestSplitColorsAndRanks(t *testing.T) {
	Run(6, DefaultMachine(), func(c *Comm) {
		color := c.Rank() % 2
		sub := c.Split(color, c.Rank())
		if sub.Size() != 3 {
			t.Errorf("split size %d", sub.Size())
		}
		// Even world ranks {0,2,4} → sub ranks {0,1,2}.
		if want := c.Rank() / 2; sub.Rank() != want {
			t.Errorf("world %d: sub rank %d want %d", c.Rank(), sub.Rank(), want)
		}
		// Collectives work inside the split.
		got := sub.AllReduceSum([]float64{1})
		if got[0] != 3 {
			t.Errorf("sub AllReduceSum = %v", got)
		}
		// P2P works inside the split without crosstalk between colors.
		if sub.Rank() == 0 {
			sub.Send(1, 5, []float64{float64(100 + color)})
		} else if sub.Rank() == 1 {
			if v := sub.Recv(0, 5); v[0] != float64(100+color) {
				t.Errorf("split p2p crosstalk: %v", v)
			}
		}
	})
}

func TestSplitSingleton(t *testing.T) {
	Run(3, DefaultMachine(), func(c *Comm) {
		sub := c.Split(c.Rank(), 0) // every rank its own color
		if sub.Size() != 1 || sub.Rank() != 0 {
			t.Errorf("singleton split wrong: size=%d rank=%d", sub.Size(), sub.Rank())
		}
		got := sub.AllReduceSum([]float64{7})
		if got[0] != 7 {
			t.Errorf("singleton AllReduce = %v", got)
		}
	})
}

func TestNestedSplit(t *testing.T) {
	Run(8, DefaultMachine(), func(c *Comm) {
		outer := c.Split(c.Rank()/4, c.Rank()) // two groups of 4
		inner := outer.Split(outer.Rank()/2, outer.Rank())
		if inner.Size() != 2 {
			t.Errorf("inner size %d", inner.Size())
		}
		got := inner.AllReduceSum([]float64{1})
		if got[0] != 2 {
			t.Errorf("inner AllReduce = %v", got)
		}
	})
}

func TestComputeAccountsTime(t *testing.T) {
	st := Run(2, DefaultMachine(), func(c *Comm) {
		c.Compute(func() {
			s := 0.0
			for i := 0; i < 200000; i++ {
				s += math.Sqrt(float64(i))
			}
			_ = s
		})
	})
	for r, rs := range st.Ranks {
		if rs.ComputeSeconds <= 0 {
			t.Fatalf("rank %d compute seconds %v", r, rs.ComputeSeconds)
		}
	}
	if st.Makespan() <= 0 {
		t.Fatal("makespan must be positive")
	}
}

func TestStatsAggregates(t *testing.T) {
	st := Run(3, DefaultMachine(), func(c *Comm) {
		c.Elapse(float64(c.Rank() + 1)) // 1, 2, 3 seconds
	})
	if math.Abs(st.TotalCompute()-6) > 1e-12 {
		t.Fatalf("TotalCompute = %v", st.TotalCompute())
	}
	if math.Abs(st.MaxCompute()-3) > 1e-12 {
		t.Fatalf("MaxCompute = %v", st.MaxCompute())
	}
	if math.Abs(st.Imbalance()-1.5) > 1e-12 {
		t.Fatalf("Imbalance = %v", st.Imbalance())
	}
}

func TestBytesSentAccounting(t *testing.T) {
	st := Run(2, DefaultMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 100))
		} else {
			c.Recv(0, 0)
		}
	})
	if st.Ranks[0].BytesSent != 800 || st.Ranks[0].MessagesSent != 1 {
		t.Fatalf("sender stats %+v", st.Ranks[0])
	}
	if st.Ranks[1].BytesSent != 0 {
		t.Fatalf("receiver sent bytes: %+v", st.Ranks[1])
	}
}

func TestMachineCostModel(t *testing.T) {
	m := DefaultMachine()
	if c := m.p2pCost(0); c != m.Latency {
		t.Fatalf("zero-byte message cost %v", c)
	}
	if m.p2pCost(1000) <= m.p2pCost(10) {
		t.Fatal("cost must grow with size")
	}
	if m.collCost(1, 100) != 0 {
		t.Fatal("single-rank collective must be free")
	}
	if m.collCost(8, 100) <= m.collCost(2, 100) {
		t.Fatal("collective cost must grow with P")
	}
}

func TestMatrixSendRecv(t *testing.T) {
	Run(2, DefaultMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			m := dense.New(2, 3)
			m.Set(1, 2, 5.5)
			m.Set(0, 0, -1)
			c.SendMatrix(1, 3, m)
		} else {
			m := c.RecvMatrix(0, 3)
			if m.Rows != 2 || m.Cols != 3 || m.At(1, 2) != 5.5 || m.At(0, 0) != -1 {
				t.Errorf("matrix transfer corrupted: %v", m)
			}
		}
	})
}

func TestBcastMatrix(t *testing.T) {
	Run(3, DefaultMachine(), func(c *Comm) {
		var m *dense.Matrix
		if c.Rank() == 0 {
			m = dense.Eye(3)
		}
		got := c.BcastMatrix(0, m)
		if !got.Equal(dense.Eye(3), 0) {
			t.Errorf("rank %d: BcastMatrix corrupted", c.Rank())
		}
	})
}

func TestQuickAllReduceMatchesSerialSum(t *testing.T) {
	f := func(vals [8]float64) bool {
		want := 0.0
		for _, v := range vals {
			want += v
		}
		ok := true
		Run(8, DefaultMachine(), func(c *Comm) {
			got := c.AllReduceSum([]float64{vals[c.Rank()]})
			if math.Abs(got[0]-want) > 1e-9*(1+math.Abs(want)) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWorldSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run with size 0 must panic")
		}
	}()
	Run(0, DefaultMachine(), func(c *Comm) {})
}

func TestSendOutOfRangePanics(t *testing.T) {
	done := make(chan bool, 1)
	Run(1, DefaultMachine(), func(c *Comm) {
		defer func() { done <- recover() != nil }()
		c.Send(5, 0, nil)
	})
	if !<-done {
		t.Fatal("out-of-range Send must panic")
	}
}

func TestMeasureDoesNotChargeClock(t *testing.T) {
	Run(2, DefaultMachine(), func(c *Comm) {
		before := c.Clock()
		dt := c.Measure(func() {
			s := 0.0
			for i := 0; i < 100000; i++ {
				s += float64(i)
			}
			_ = s
		})
		if dt <= 0 {
			t.Errorf("Measure returned %v", dt)
		}
		if c.Clock() != before {
			t.Error("Measure must not advance the virtual clock")
		}
		// Elapse of the measured share is the intended usage.
		c.Elapse(dt / 2)
		if c.Clock() <= before {
			t.Error("Elapse after Measure must advance the clock")
		}
	})
}

func TestImbalanceEdgeCases(t *testing.T) {
	empty := Stats{}
	if empty.Imbalance() != 1 {
		t.Fatal("empty stats imbalance must be 1")
	}
	idle := Stats{Ranks: make([]RankStats, 3), FinalClocks: make([]float64, 3)}
	if idle.Imbalance() != 1 {
		t.Fatal("all-idle imbalance must be 1")
	}
}
