package comm

import "github.com/dalia-hpc/dalia/internal/dense"

// encodeMatrix flattens a matrix as [rows, cols, row-major data...].
func encodeMatrix(m *dense.Matrix) []float64 {
	buf := make([]float64, 2+m.Rows*m.Cols)
	buf[0] = float64(m.Rows)
	buf[1] = float64(m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(buf[2+i*m.Cols:2+(i+1)*m.Cols], m.Row(i))
	}
	return buf
}

// decodeMatrix reconstructs a matrix encoded by encodeMatrix.
func decodeMatrix(buf []float64) *dense.Matrix {
	r, c := int(buf[0]), int(buf[1])
	m := dense.New(r, c)
	copy(m.Data, buf[2:2+r*c])
	return m
}

// SendMatrix transmits a dense matrix to dst with the given tag.
func (c *Comm) SendMatrix(dst, tag int, m *dense.Matrix) {
	c.Send(dst, tag, encodeMatrix(m))
}

// RecvMatrix receives a dense matrix from src with the given tag.
func (c *Comm) RecvMatrix(src, tag int) *dense.Matrix {
	return decodeMatrix(c.Recv(src, tag))
}

// BcastMatrix distributes root's matrix to all ranks.
func (c *Comm) BcastMatrix(root int, m *dense.Matrix) *dense.Matrix {
	var enc []float64
	if c.Rank() == root {
		enc = encodeMatrix(m)
	}
	return decodeMatrix(c.Bcast(root, enc))
}
