// Fault model: deterministic, seed-driven injection of the failures a real
// MPI+NCCL deployment sees — dropped, delayed and corrupted messages, and
// whole-rank death — plus the ULFM-style recovery surface the upper layers
// build on (typed RankFailure/RevokedError faults, communicator revocation,
// and Shrink to a survivors-only communicator).
//
// Faults are raised as panics carrying typed error values so the simulated
// MPI API keeps its panic-on-anomaly signature; Catch/FaultOf convert them
// to errors at recovery boundaries (the solver entry points and the
// distributed driver's retry loop). RunErr/RunPlan run an SPMD body with a
// per-rank recover, so a dying rank surfaces as a RankFailure instead of
// taking the process down.
package comm

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// RankFailure reports that a rank is gone — killed by a fault plan, exited
// after an escaped panic, or already returned — while a peer still depended
// on it.
type RankFailure struct {
	Rank int    // world rank that failed
	Op   string // operation that observed (or caused) the failure
	Tag  int    // message tag when applicable, else -1
}

func (e *RankFailure) Error() string {
	if e.Tag >= 0 {
		return fmt.Sprintf("comm: rank %d failed (observed in %s, tag %d)", e.Rank, e.Op, e.Tag)
	}
	return fmt.Sprintf("comm: rank %d failed (observed in %s)", e.Rank, e.Op)
}

// RevokedError reports an operation on a revoked communicator. After a
// failure is detected, Revoke (called implicitly by Shrink) invalidates the
// communicator and everything split from it, so every member — not only the
// ranks talking to the dead one — unblocks and can join the recovery.
type RevokedError struct {
	Epoch int // shrink epoch of the revoked communicator
}

func (e *RevokedError) Error() string {
	return fmt.Sprintf("comm: communicator revoked (epoch %d)", e.Epoch)
}

// TimeoutError reports a RecvTimeout whose virtual-time deadline expired
// before a matching message could have arrived.
type TimeoutError struct {
	Src, Tag int
	Deadline float64 // virtual seconds
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("comm: recv from rank %d (tag %d) timed out at virtual t=%.6gs", e.Src, e.Tag, e.Deadline)
}

// CommError carries rank/tag context for a communicator misuse — the
// conditions the collectives used to report as bare-string panics.
type CommError struct {
	Op   string
	Rank int // comm-local rank that raised it (-1 when not rank-specific)
	Tag  int // message tag when applicable, else -1
	Msg  string
}

func (e *CommError) Error() string {
	s := "comm: " + e.Op
	if e.Rank >= 0 {
		s += fmt.Sprintf(" (rank %d", e.Rank)
		if e.Tag >= 0 {
			s += fmt.Sprintf(", tag %d", e.Tag)
		}
		s += ")"
	} else if e.Tag >= 0 {
		s += fmt.Sprintf(" (tag %d)", e.Tag)
	}
	return s + ": " + e.Msg
}

// FaultOf inspects a recovered panic value and returns the typed comm error
// it carries, or nil when the panic did not originate from this package's
// fault model.
func FaultOf(r any) error {
	switch e := r.(type) {
	case *RankFailure:
		return e
	case *RevokedError:
		return e
	case *TimeoutError:
		return e
	case *CommError:
		return e
	}
	return nil
}

// Catch runs f and converts a comm-fault panic into the returned error.
// Non-fault panics propagate unchanged.
func Catch(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if fe := FaultOf(r); fe != nil {
				err = fe
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

// IsRankFailure reports whether err (or anything it wraps) is a RankFailure.
func IsRankFailure(err error) bool {
	var rf *RankFailure
	return errors.As(err, &rf)
}

// IsRevoked reports whether err (or anything it wraps) is a RevokedError.
func IsRevoked(err error) bool {
	var re *RevokedError
	return errors.As(err, &re)
}

// IsTimeout reports whether err (or anything it wraps) is a TimeoutError.
func IsTimeout(err error) bool {
	var te *TimeoutError
	return errors.As(err, &te)
}

// Retryable reports whether err is a fault a driver can recover from by
// revoking, shrinking and retrying: a rank failure, a revocation, or a
// receive timeout.
func Retryable(err error) bool {
	return IsRankFailure(err) || IsRevoked(err) || IsTimeout(err)
}

// FaultPlan is a deterministic, seed-driven fault injector. Message
// decisions hash (Seed, world src, world dst, tag, per-route sequence
// number), so a plan reproduces the same faults regardless of goroutine
// scheduling; Kill schedules rank death by that rank's own operation count.
type FaultPlan struct {
	Seed int64
	// DropProb is the probability a message is silently discarded (the
	// sender is still charged; receivers need RecvTimeout to survive drops).
	DropProb float64
	// DelayProb/DelaySeconds add virtual latency to a message.
	DelayProb    float64
	DelaySeconds float64
	// CorruptProb poisons one payload element with NaN — the detectable
	// corruption the numerical layers quarantine via their finite checks.
	CorruptProb float64
	// Kill maps a world rank to the 1-based index of the communication
	// operation (send, recv or collective) before which it dies.
	Kill map[int]int
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// routeHash derives the deterministic per-message hash stream.
func (p *FaultPlan) routeHash(src, dst, tag int, seq int64) uint64 {
	h := splitmix64(uint64(p.Seed))
	h = splitmix64(h ^ uint64(src)<<1)
	h = splitmix64(h ^ uint64(dst)<<17)
	h = splitmix64(h ^ uint64(tag)<<33)
	h = splitmix64(h ^ uint64(seq))
	return h
}

func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// decide returns the injection decisions for one message.
func (p *FaultPlan) decide(src, dst, tag int, seq int64) (drop, delay, corrupt bool, elem uint64) {
	h := p.routeHash(src, dst, tag, seq)
	drop = unit(h) < p.DropProb
	h = splitmix64(h)
	delay = unit(h) < p.DelayProb
	h = splitmix64(h)
	corrupt = unit(h) < p.CorruptProb
	elem = splitmix64(h)
	return
}

// rankDeath is the scheduled-kill panic sentinel; only RunPlan's per-rank
// wrapper recovers it.
type rankDeath struct{ rank int }

// commOp counts this rank's communication operations and dies when the
// fault plan says so. Ranks are single goroutines, so the counter needs no
// lock.
func (c *Comm) commOp(op string) {
	w := c.shared.world
	if w.plan == nil || len(w.plan.Kill) == 0 {
		return
	}
	n, ok := w.plan.Kill[c.worldRank]
	if !ok {
		return
	}
	w.ops[c.worldRank]++
	if w.ops[c.worldRank] >= int64(n) {
		panic(rankDeath{c.worldRank})
	}
}

// isDead reports whether a world rank has exited or been killed.
func (w *World) isDead(rank int) bool {
	if !w.anyDead.Load() {
		return false
	}
	w.deadMu.Lock()
	d := w.dead[rank]
	w.deadMu.Unlock()
	return d
}

// markDead records a rank as gone and wakes every blocked receiver and
// collective waiter so they can observe the failure.
func (w *World) markDead(rank int) {
	w.deadMu.Lock()
	if w.dead[rank] {
		w.deadMu.Unlock()
		return
	}
	w.dead[rank] = true
	w.deadMu.Unlock()
	w.anyDead.Store(true)
	w.wakeAll()
}

// wakeAll broadcasts every mailbox and collective condition in the world.
func (w *World) wakeAll() {
	w.mailMu.Lock()
	mbs := make([]*mailbox, 0, len(w.mailboxes))
	for _, mb := range w.mailboxes {
		mbs = append(mbs, mb)
	}
	w.mailMu.Unlock()
	for _, mb := range mbs {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
	w.commIDMu.Lock()
	comms := make([]*commShared, len(w.comms))
	copy(comms, w.comms)
	w.commIDMu.Unlock()
	for _, cs := range comms {
		cs.collMu.Lock()
		cs.collCond.Broadcast()
		cs.collMu.Unlock()
	}
}

// wakeTimed wakes receivers blocked with a virtual-time deadline; called
// after any clock advance so a deadline can expire when its sender's clock
// moves past it. The atomic count keeps the no-waiter fast path to one load.
func (w *World) wakeTimed() {
	if w.timedWaiters.Load() == 0 {
		return
	}
	w.mailMu.Lock()
	mbs := make([]*mailbox, 0, len(w.mailboxes))
	for _, mb := range w.mailboxes {
		mbs = append(mbs, mb)
	}
	w.mailMu.Unlock()
	for _, mb := range mbs {
		mb.mu.Lock()
		if mb.timed > 0 {
			mb.cond.Broadcast()
		}
		mb.mu.Unlock()
	}
}

// revokedAtLeast reports whether epochs ≤ epoch are revoked.
func (w *World) revokedAtLeast(epoch int) bool {
	return int(w.revoked.Load()) >= epoch
}

// checkLive panics when this communicator has been revoked.
func (c *Comm) checkLive(op string) {
	if c.shared.world.revokedAtLeast(c.shared.epoch) {
		panic(&RevokedError{Epoch: c.shared.epoch})
	}
}

// Revoke invalidates this communicator, everything split from it, and every
// older shrink epoch: all pending and future operations on them fail with a
// RevokedError on every member. Call it (or Shrink, which calls it) after
// detecting a failure so peers blocked on unrelated routes unblock too.
// Communicators produced by a later Shrink are unaffected. Idempotent.
func (c *Comm) Revoke() {
	w := c.shared.world
	e := c.shared.epoch
	w.epochMu.Lock()
	if int(w.revoked.Load()) < e {
		// Freeze the dead set per revoked epoch: every survivor shrinking
		// from epoch e must agree on the membership of epoch e+1 even if
		// further ranks die while they get there.
		w.deadMu.Lock()
		snap := append([]bool(nil), w.dead...)
		w.deadMu.Unlock()
		for k := int(w.revoked.Load()) + 1; k <= e; k++ {
			if _, ok := w.deadSnap[k]; !ok {
				w.deadSnap[k] = snap
			}
		}
		w.revoked.Store(int64(e))
	}
	w.epochMu.Unlock()
	w.wakeAll()
}

// Shrink revokes this communicator and returns its successor containing only
// the members still alive at revocation time, with comm-local ranks
// compacted in the old order. Every surviving member must call Shrink on the
// same communicator; the caller's handle in the new communicator is
// returned. The new communicator starts with fresh mailboxes and collective
// state, so stale traffic from before the failure is invisible.
func (c *Comm) Shrink() *Comm {
	c.Revoke()
	w := c.shared.world
	w.epochMu.Lock()
	snap := w.deadSnap[c.shared.epoch]
	w.epochMu.Unlock()
	live := make([]int, 0, len(c.shared.members))
	for _, m := range c.shared.members {
		if snap == nil || !snap[m] {
			live = append(live, m)
		}
	}
	key := fmt.Sprintf("%d/shrink:%v", c.shared.id, live)
	cs := c.shared.world.internComm(key, live, c.shared.epoch+1)
	return cs.forRank(c.worldRank)
}

// RunErr executes body as an SPMD program over p ranks, recovering per-rank
// panics: a comm fault or escaped panic on one rank marks it dead (so peers
// observe a RankFailure instead of hanging) and is reported in the joined
// error, while the surviving ranks keep running.
func RunErr(p int, mach Machine, body func(c *Comm) error) (Stats, error) {
	return RunPlan(p, mach, nil, body)
}

// RunPlan is RunErr under a fault plan: scheduled kills, drops, delays and
// corruption from plan are injected deterministically. A rank dying on
// schedule is the experiment, not a program error: it is reported in
// Stats.Killed but excluded from the returned error, which joins the ranks'
// own returned errors and any unscheduled failures.
func RunPlan(p int, mach Machine, plan *FaultPlan, body func(c *Comm) error) (Stats, error) {
	if p < 1 {
		return Stats{}, &CommError{Op: "run", Rank: -1, Tag: -1, Msg: fmt.Sprintf("world size %d < 1", p)}
	}
	w := newWorld(p, mach)
	w.plan = plan
	world := w.newComm(identityMembers(p))
	errs := make([]error, p)
	var killedMu sync.Mutex
	var killed []int
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					switch v := rec.(type) {
					case rankDeath:
						killedMu.Lock()
						killed = append(killed, v.rank)
						killedMu.Unlock()
					default:
						if fe := FaultOf(rec); fe != nil {
							errs[rank] = fmt.Errorf("comm: rank %d: %w", rank, fe)
						} else {
							errs[rank] = fmt.Errorf("comm: rank %d panicked: %v", rank, rec)
						}
					}
				}
				// Exited ranks send nothing more: surface as RankFailure to
				// peers still waiting on them instead of deadlocking.
				w.markDead(rank)
			}()
			errs[rank] = body(world.forRank(rank))
		}(r)
	}
	wg.Wait()
	st := Stats{Ranks: append([]RankStats(nil), w.stats...), FinalClocks: append([]float64(nil), w.clocks...)}
	killedMu.Lock()
	st.Killed = append([]int(nil), killed...)
	killedMu.Unlock()
	return st, errors.Join(errs...)
}

// RecvErr is Recv with faults returned instead of panicked: a dead sender
// yields a RankFailure, a revoked communicator a RevokedError.
func (c *Comm) RecvErr(src, tag int) ([]float64, error) {
	return c.recvCore(src, tag, math.Inf(1))
}

// RecvTimeout is RecvErr with a virtual-time deadline of the receiver's
// current clock plus vtimeout seconds. The call is deterministic in virtual
// time: a queued message whose send completes by the deadline is delivered;
// the receive times out — advancing the receiver's clock to the deadline —
// only once the sender's clock has provably passed it without sending
// (including a dropped message), never on wall-clock elapsed time.
func (c *Comm) RecvTimeout(src, tag int, vtimeout float64) ([]float64, error) {
	return c.recvCore(src, tag, c.Clock()+vtimeout)
}

// recvCore is the blocking receive with failure detection and an optional
// virtual-time deadline (+Inf = none). Clock updates happen after the
// mailbox lock is released (wakeTimed re-acquires mailbox locks).
func (c *Comm) recvCore(src, tag int, deadline float64) ([]float64, error) {
	if src < 0 || src >= c.Size() {
		panic(&CommError{Op: "recv", Rank: c.rank, Tag: tag,
			Msg: fmt.Sprintf("source rank %d outside communicator of size %d", src, c.Size())})
	}
	c.commOp("recv")
	w := c.shared.world
	srcWorld := c.shared.members[src]
	timed := !math.IsInf(deadline, 1)
	mb := c.mailbox(src, c.rank, tag)
	mb.mu.Lock()
	if timed {
		mb.timed++
		w.timedWaiters.Add(1)
	}
	finish := func() {
		if timed {
			mb.timed--
			w.timedWaiters.Add(-1)
		}
		mb.mu.Unlock()
	}
	timeout := func() (data []float64, err error) {
		finish()
		c.setClock(deadline)
		w.wakeTimed()
		return nil, &TimeoutError{Src: src, Tag: tag, Deadline: deadline}
	}
	for {
		if len(mb.q) > 0 {
			msg := mb.q[0]
			if msg.sendClock > deadline {
				return timeout()
			}
			mb.q = mb.q[1:]
			finish()
			c.setClock(msg.sendClock)
			w.wakeTimed()
			return msg.data, nil
		}
		if w.revokedAtLeast(c.shared.epoch) {
			finish()
			return nil, &RevokedError{Epoch: c.shared.epoch}
		}
		if w.isDead(srcWorld) {
			finish()
			return nil, &RankFailure{Rank: srcWorld, Op: "recv", Tag: tag}
		}
		if timed && c.peerClock(srcWorld) > deadline {
			return timeout()
		}
		mb.cond.Wait()
	}
}

// peerClock reads another rank's virtual clock.
func (c *Comm) peerClock(worldRank int) float64 {
	w := c.shared.world
	w.clockMu.Lock()
	defer w.clockMu.Unlock()
	return w.clocks[worldRank]
}
