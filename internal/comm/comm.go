// Package comm simulates the distributed-memory machine of the DALIA paper
// (MPI + NCCL on GH200 nodes) on a single host.
//
// A World runs P ranks as goroutines executing the same SPMD body. Each rank
// owns a virtual clock:
//
//   - Compute(f) runs f under a global lock (so measurements are not
//     perturbed by other ranks' goroutines), measures its wall time, and
//     advances the rank's clock by it. The real kernels therefore pay their
//     real cost.
//   - Communication primitives advance clocks by a machine model
//     (per-message latency + bytes/bandwidth; collectives pay a log₂(P)
//     tree factor) and synchronize clocks the way blocking MPI calls do:
//     a receiver cannot finish before the sender's send completed.
//
// The simulated runtime of a program is the *makespan*: the maximum final
// clock over ranks. This reproduces the scaling behaviour of the paper's
// three nested parallelization layers — which is a property of work
// partitioning and message structure — without owning 496 superchips.
package comm

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Machine parameterizes the communication cost model.
type Machine struct {
	// Latency is the fixed per-message cost in seconds.
	Latency float64
	// BytesPerSecond is the link bandwidth.
	BytesPerSecond float64
	// CollectiveTreeFactor scales collective costs; cost =
	// factor·⌈log₂P⌉·(Latency + bytes/BW). 1 models tree algorithms.
	CollectiveTreeFactor float64
}

// DefaultMachine models a tightly coupled accelerator fabric (NCCL-class
// intranode links): 5 µs latency, 25 GB/s effective bandwidth.
func DefaultMachine() Machine {
	return Machine{Latency: 5e-6, BytesPerSecond: 25e9, CollectiveTreeFactor: 1}
}

// p2pCost returns the modeled time for one message of n float64 words.
func (m Machine) p2pCost(words int) float64 {
	return m.Latency + float64(8*words)/m.BytesPerSecond
}

// collCost returns the modeled time of one collective over p ranks moving n
// float64 words per rank.
func (m Machine) collCost(p, words int) float64 {
	if p <= 1 {
		return 0
	}
	hops := math.Ceil(math.Log2(float64(p)))
	return m.CollectiveTreeFactor * hops * (m.Latency + float64(8*words)/m.BytesPerSecond)
}

// RankStats aggregates a rank's virtual-time breakdown.
type RankStats struct {
	ComputeSeconds float64
	BytesSent      int64
	MessagesSent   int64
}

// Stats is the outcome of a World run.
type Stats struct {
	Ranks []RankStats
	// FinalClocks holds each rank's virtual clock at exit.
	FinalClocks []float64
	// Killed lists the world ranks a RunPlan fault plan killed on schedule.
	Killed []int
}

// Makespan returns the simulated runtime: the maximum final clock.
func (s Stats) Makespan() float64 {
	var mx float64
	for _, c := range s.FinalClocks {
		if c > mx {
			mx = c
		}
	}
	return mx
}

// TotalCompute returns the summed compute seconds over all ranks.
func (s Stats) TotalCompute() float64 {
	var t float64
	for _, r := range s.Ranks {
		t += r.ComputeSeconds
	}
	return t
}

// MaxCompute returns the largest per-rank compute time — the compute-bound
// lower bound on the makespan.
func (s Stats) MaxCompute() float64 {
	var mx float64
	for _, r := range s.Ranks {
		if r.ComputeSeconds > mx {
			mx = r.ComputeSeconds
		}
	}
	return mx
}

// Imbalance returns maxCompute/meanCompute (1 = perfectly balanced).
func (s Stats) Imbalance() float64 {
	if len(s.Ranks) == 0 {
		return 1
	}
	mean := s.TotalCompute() / float64(len(s.Ranks))
	if mean == 0 {
		return 1
	}
	return s.MaxCompute() / mean
}

type mailKey struct {
	comm     int64
	src, dst int
	tag      int
}

type message struct {
	data      []float64
	sendClock float64
}

type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	q     []message
	sent  int64 // per-route send sequence (fault-plan determinism)
	timed int   // receivers waiting with a virtual-time deadline
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// World is the simulated machine.
type World struct {
	size int
	mach Machine

	mailMu    sync.Mutex
	mailboxes map[mailKey]*mailbox

	computeMu sync.Mutex

	clockMu sync.Mutex
	clocks  []float64
	stats   []RankStats

	commIDMu   sync.Mutex
	nextCommID int64
	interned   map[string]*commShared
	comms      []*commShared // registry for failure wakeups

	// Fault-tolerance state (see fault.go).
	plan         *FaultPlan
	ops          []int64 // per-rank comm-op counts (each touched by its own goroutine)
	deadMu       sync.Mutex
	dead         []bool
	anyDead      atomic.Bool
	epochMu      sync.Mutex
	revoked      atomic.Int64 // highest revoked shrink epoch (-1 = none)
	deadSnap     map[int][]bool
	timedWaiters atomic.Int32
}

func newWorld(p int, mach Machine) *World {
	w := &World{
		size:      p,
		mach:      mach,
		mailboxes: make(map[mailKey]*mailbox),
		clocks:    make([]float64, p),
		stats:     make([]RankStats, p),
		ops:       make([]int64, p),
		dead:      make([]bool, p),
		deadSnap:  make(map[int][]bool),
	}
	w.revoked.Store(-1)
	return w
}

// Run executes body as an SPMD program over p ranks on the given machine and
// returns the run's statistics. body must be safe for concurrent execution
// by p goroutines (each receives its own *Comm).
func Run(p int, mach Machine, body func(c *Comm)) Stats {
	if p < 1 {
		panic(&CommError{Op: "run", Rank: -1, Tag: -1, Msg: fmt.Sprintf("world size %d < 1", p)})
	}
	w := newWorld(p, mach)
	world := w.newComm(identityMembers(p))
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			body(world.forRank(rank))
		}(r)
	}
	wg.Wait()
	return Stats{Ranks: append([]RankStats(nil), w.stats...), FinalClocks: append([]float64(nil), w.clocks...)}
}

func identityMembers(p int) []int {
	m := make([]int, p)
	for i := range m {
		m[i] = i
	}
	return m
}

// commShared is the per-communicator state shared by all member Comms.
type commShared struct {
	id      int64
	world   *World
	members []int // world ranks, index = comm rank
	epoch   int   // shrink epoch: bumped by Shrink, inherited by Split

	collMu     sync.Mutex
	collCond   *sync.Cond
	collGen    int64
	collCnt    int
	collBuf    [][]float64
	collClk    []float64
	collOut    [][]float64
	collT      float64
	collErr    error // fault raised by a reduce, published to the generation
	collErrGen int64

	useCount int // split-interning bookkeeping (guarded by world.commIDMu)
}

func (w *World) newComm(members []int) *commShared {
	w.commIDMu.Lock()
	defer w.commIDMu.Unlock()
	return w.newCommLocked(members, 0)
}

func (cs *commShared) forRank(worldRank int) *Comm {
	idx := -1
	for i, m := range cs.members {
		if m == worldRank {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(&CommError{Op: "forRank", Rank: -1, Tag: -1,
			Msg: fmt.Sprintf("world rank %d is not a member of the communicator", worldRank)})
	}
	return &Comm{shared: cs, rank: idx, worldRank: worldRank}
}

// Comm is one rank's handle on a communicator (MPI_Comm + rank).
type Comm struct {
	shared    *commShared
	rank      int
	worldRank int
}

// Rank returns this rank's index within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.shared.members) }

// WorldRank returns the global rank index.
func (c *Comm) WorldRank() int { return c.worldRank }

// Clock returns this rank's current virtual time in seconds.
func (c *Comm) Clock() float64 {
	w := c.shared.world
	w.clockMu.Lock()
	defer w.clockMu.Unlock()
	return w.clocks[c.worldRank]
}

func (c *Comm) setClock(t float64) {
	w := c.shared.world
	w.clockMu.Lock()
	if t > w.clocks[c.worldRank] {
		w.clocks[c.worldRank] = t
	}
	w.clockMu.Unlock()
}

func (c *Comm) addClock(dt float64) {
	w := c.shared.world
	w.clockMu.Lock()
	w.clocks[c.worldRank] += dt
	w.clockMu.Unlock()
}

// Compute runs f under the world's compute lock, measures its wall time and
// charges it to this rank's virtual clock. f must not call communication
// primitives (doing so would deadlock the compute lock). The lock is
// released even when f panics, so one rank's failure cannot wedge the
// world's compute lane.
func (c *Comm) Compute(f func()) {
	w := c.shared.world
	dt := func() float64 {
		w.computeMu.Lock()
		defer w.computeMu.Unlock()
		t0 := time.Now()
		f()
		return time.Since(t0).Seconds()
	}()
	c.addClock(dt)
	w.clockMu.Lock()
	w.stats[c.worldRank].ComputeSeconds += dt
	w.clockMu.Unlock()
	w.wakeTimed()
}

// Measure runs f under the world's compute lock and returns its wall time
// WITHOUT charging any rank's clock. It exists for shared-memory
// deduplication: when several simulated ranks share one real computation
// (e.g. matrix assembly that the real system would perform distributed),
// the caller measures once and charges each rank a modeled share via
// Elapse. Running under the lock keeps the measurement clean of
// cross-goroutine scheduling noise.
func (c *Comm) Measure(f func()) float64 {
	w := c.shared.world
	w.computeMu.Lock()
	defer w.computeMu.Unlock()
	t0 := time.Now()
	f()
	return time.Since(t0).Seconds()
}

// Elapse charges modeled seconds of compute to this rank without running
// anything (used by cost-model-driven experiments and tests).
func (c *Comm) Elapse(seconds float64) {
	c.addClock(seconds)
	w := c.shared.world
	w.clockMu.Lock()
	w.stats[c.worldRank].ComputeSeconds += seconds
	w.clockMu.Unlock()
	w.wakeTimed()
}

func (c *Comm) mailbox(src, dst, tag int) *mailbox {
	w := c.shared.world
	key := mailKey{comm: c.shared.id, src: src, dst: dst, tag: tag}
	w.mailMu.Lock()
	mb, ok := w.mailboxes[key]
	if !ok {
		mb = newMailbox()
		w.mailboxes[key] = mb
	}
	w.mailMu.Unlock()
	return mb
}

// Send transmits data to rank dst (comm-local) with the given tag. The send
// is buffered (eager); the sender is charged the message injection cost.
// Sending to a dead rank or on a revoked communicator panics with the typed
// fault (recover with Catch/FaultOf).
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.Size() {
		panic(&CommError{Op: "send", Rank: c.rank, Tag: tag,
			Msg: fmt.Sprintf("destination rank %d outside communicator of size %d", dst, c.Size())})
	}
	c.commOp("send")
	c.checkLive("send")
	w := c.shared.world
	dstWorld := c.shared.members[dst]
	if w.isDead(dstWorld) {
		panic(&RankFailure{Rank: dstWorld, Op: "send", Tag: tag})
	}
	cost := w.mach.p2pCost(len(data))
	c.addClock(w.mach.Latency) // injection overhead
	w.clockMu.Lock()
	w.stats[c.worldRank].BytesSent += int64(8 * len(data))
	w.stats[c.worldRank].MessagesSent++
	sendClock := w.clocks[c.worldRank] + cost
	w.clockMu.Unlock()

	mb := c.mailbox(c.rank, dst, tag)
	cp := append([]float64(nil), data...)
	mb.mu.Lock()
	mb.sent++
	if p := w.plan; p != nil {
		drop, delay, corrupt, elem := p.decide(c.worldRank, dstWorld, tag, mb.sent)
		if drop {
			mb.mu.Unlock()
			w.wakeTimed()
			return
		}
		if corrupt && len(cp) > 0 {
			cp[int(elem%uint64(len(cp)))] = math.NaN()
		}
		if delay {
			sendClock += p.DelaySeconds
		}
	}
	mb.q = append(mb.q, message{data: cp, sendClock: sendClock})
	mb.cond.Broadcast()
	mb.mu.Unlock()
	w.wakeTimed()
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. The receiver's clock advances to at least the
// message's arrival time. When src has died or the communicator was
// revoked, Recv panics with the typed fault; RecvErr returns it instead.
func (c *Comm) Recv(src, tag int) []float64 {
	out, err := c.recvCore(src, tag, math.Inf(1))
	if err != nil {
		panic(err)
	}
	return out
}

// TryRecv returns (payload, true) when a matching message is already queued
// and (nil, false) otherwise; it never blocks.
func (c *Comm) TryRecv(src, tag int) ([]float64, bool) {
	mb := c.mailbox(src, c.rank, tag)
	mb.mu.Lock()
	if len(mb.q) == 0 {
		mb.mu.Unlock()
		return nil, false
	}
	msg := mb.q[0]
	mb.q = mb.q[1:]
	mb.mu.Unlock()
	c.setClock(msg.sendClock)
	c.shared.world.wakeTimed()
	return msg.data, true
}

// collective runs one synchronized phase: every member deposits its
// contribution; the last arrival computes the outputs for all members via
// reduce and the synchronized clock; everyone leaves with its output and
// clock = t_sync. words is the per-rank message size used for cost modeling.
//
// Failure handling: a dead member or a revoked communicator makes the
// collective fail on every member with a typed fault panic (each member
// withdraws its own contribution, so the communicator state stays
// consistent). A reduce that itself raises a fault (length mismatch) is
// published to every member of the generation via collErr.
func (c *Comm) collective(contrib []float64, words int, reduce func(bufs [][]float64) [][]float64) []float64 {
	c.commOp("collective")
	cs := c.shared
	w := cs.world
	n := len(cs.members)
	if n == 1 {
		out := reduce([][]float64{contrib})
		return out[0]
	}
	c.checkLive("collective")
	if r := cs.deadMember(); r >= 0 {
		panic(&RankFailure{Rank: r, Op: "collective", Tag: -1})
	}
	clk := c.Clock()
	cs.collMu.Lock()
	myGen := cs.collGen
	cs.collBuf[c.rank] = contrib
	cs.collClk[c.rank] = clk
	cs.collCnt++
	if cs.collCnt == n {
		var tmax float64
		for _, t := range cs.collClk {
			if t > tmax {
				tmax = t
			}
		}
		cs.collT = tmax + w.mach.collCost(n, words)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					// Publish the fault to every waiter of this generation,
					// reset the deposit state, and re-raise locally.
					fe := FaultOf(rec)
					if fe == nil {
						fe = &CommError{Op: "collective", Rank: c.rank, Tag: -1,
							Msg: fmt.Sprintf("reduce panicked: %v", rec)}
					}
					cs.collErr = fe
					cs.collErrGen = myGen
					for i := range cs.collBuf {
						cs.collBuf[i] = nil
					}
					cs.collCnt = 0
					cs.collGen++
					cs.collCond.Broadcast()
					cs.collMu.Unlock()
					panic(fe)
				}
			}()
			outs := reduce(cs.collBuf)
			copy(cs.collOut, outs)
		}()
		cs.collCnt = 0
		cs.collGen++
		cs.collCond.Broadcast()
	} else {
		for cs.collGen == myGen {
			if w.revokedAtLeast(cs.epoch) {
				cs.withdrawLocked(c.rank)
				cs.collMu.Unlock()
				panic(&RevokedError{Epoch: cs.epoch})
			}
			if r := cs.deadMember(); r >= 0 {
				cs.withdrawLocked(c.rank)
				cs.collMu.Unlock()
				panic(&RankFailure{Rank: r, Op: "collective", Tag: -1})
			}
			cs.collCond.Wait()
		}
		if cs.collErr != nil && cs.collErrGen == myGen {
			err := cs.collErr
			cs.collMu.Unlock()
			panic(err)
		}
	}
	out := cs.collOut[c.rank]
	t := cs.collT
	cs.collMu.Unlock()
	c.setClock(t)
	w.wakeTimed()
	return out
}

// withdrawLocked removes this rank's pending contribution from an
// incomplete collective generation (called with collMu held, on the way out
// of a failing collective; every waiter has deposited exactly once).
func (cs *commShared) withdrawLocked(rank int) {
	cs.collBuf[rank] = nil
	cs.collCnt--
}

// deadMember returns the world rank of a dead member of this communicator,
// or -1 when all members are alive.
func (cs *commShared) deadMember() int {
	w := cs.world
	if !w.anyDead.Load() {
		return -1
	}
	w.deadMu.Lock()
	defer w.deadMu.Unlock()
	for _, m := range cs.members {
		if w.dead[m] {
			return m
		}
	}
	return -1
}

// Barrier synchronizes all ranks of the communicator (clocks included).
func (c *Comm) Barrier() {
	c.collective(nil, 0, func(bufs [][]float64) [][]float64 {
		return make([][]float64, len(bufs))
	})
}

// AllReduceSum returns the element-wise sum of every rank's data. All data
// slices must have equal length.
func (c *Comm) AllReduceSum(data []float64) []float64 {
	return c.collective(data, len(data), func(bufs [][]float64) [][]float64 {
		sum := make([]float64, len(bufs[0]))
		for r, b := range bufs {
			if len(b) != len(sum) {
				panic(&CommError{Op: "AllReduceSum", Rank: r, Tag: -1,
					Msg: fmt.Sprintf("length mismatch across ranks: rank %d contributed %d words, rank 0 contributed %d", r, len(b), len(sum))})
			}
			for i, v := range b {
				sum[i] += v
			}
		}
		outs := make([][]float64, len(bufs))
		for i := range outs {
			outs[i] = append([]float64(nil), sum...)
		}
		return outs
	})
}

// AllReduceMax returns the element-wise max of every rank's data.
func (c *Comm) AllReduceMax(data []float64) []float64 {
	return c.collective(data, len(data), func(bufs [][]float64) [][]float64 {
		mx := append([]float64(nil), bufs[0]...)
		for _, b := range bufs[1:] {
			for i, v := range b {
				if v > mx[i] {
					mx[i] = v
				}
			}
		}
		outs := make([][]float64, len(bufs))
		for i := range outs {
			outs[i] = append([]float64(nil), mx...)
		}
		return outs
	})
}

// Bcast distributes root's data to every rank and returns the local copy.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	var contrib []float64
	if c.rank == root {
		contrib = data
	}
	words := 0
	if data != nil {
		words = len(data)
	}
	return c.collective(contrib, words, func(bufs [][]float64) [][]float64 {
		src := bufs[root]
		outs := make([][]float64, len(bufs))
		for i := range outs {
			outs[i] = append([]float64(nil), src...)
		}
		return outs
	})
}

// Gather collects every rank's data at root. Root receives the slices
// concatenated in rank order, prefixed per rank by nothing — use
// GatherVar for ragged payloads. Non-root ranks receive nil.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	n := c.Size()
	flat := c.collective(data, len(data), func(bufs [][]float64) [][]float64 {
		outs := make([][]float64, len(bufs))
		// encode: lengths then payloads, delivered only to root
		var enc []float64
		enc = append(enc, float64(len(bufs)))
		for _, b := range bufs {
			enc = append(enc, float64(len(b)))
		}
		for _, b := range bufs {
			enc = append(enc, b...)
		}
		outs[root] = enc
		return outs
	})
	if c.rank != root {
		return nil
	}
	cnt := int(flat[0])
	if cnt != n {
		panic(&CommError{Op: "Gather", Rank: c.rank, Tag: -1,
			Msg: fmt.Sprintf("internal count mismatch: encoded %d contributions for a communicator of size %d", cnt, n)})
	}
	lens := make([]int, n)
	for i := 0; i < n; i++ {
		lens[i] = int(flat[1+i])
	}
	out := make([][]float64, n)
	off := 1 + n
	for i := 0; i < n; i++ {
		out[i] = append([]float64(nil), flat[off:off+lens[i]]...)
		off += lens[i]
	}
	return out
}

// AllGather returns every rank's contribution, in rank order, on all ranks.
func (c *Comm) AllGather(data []float64) [][]float64 {
	n := c.Size()
	flat := c.collective(data, len(data)*n, func(bufs [][]float64) [][]float64 {
		var enc []float64
		enc = append(enc, float64(len(bufs)))
		for _, b := range bufs {
			enc = append(enc, float64(len(b)))
		}
		for _, b := range bufs {
			enc = append(enc, b...)
		}
		outs := make([][]float64, len(bufs))
		for i := range outs {
			outs[i] = enc
		}
		return outs
	})
	cnt := int(flat[0])
	lens := make([]int, cnt)
	for i := 0; i < cnt; i++ {
		lens[i] = int(flat[1+i])
	}
	out := make([][]float64, cnt)
	off := 1 + cnt
	for i := 0; i < cnt; i++ {
		out[i] = append([]float64(nil), flat[off:off+lens[i]]...)
		off += lens[i]
	}
	return out
}

// Split partitions the communicator by color (as MPI_Comm_split). Ranks
// passing the same color form a new communicator ordered by (key, rank).
// Every rank must call Split; the returned communicator contains only the
// ranks that share the caller's color.
func (c *Comm) Split(color, key int) *Comm {
	n := c.Size()
	enc := []float64{float64(color), float64(key), float64(c.worldRank)}
	all := c.AllGather(enc)
	type member struct{ color, key, worldRank, commRank int }
	var mine []member
	for r := 0; r < n; r++ {
		col := int(all[r][0])
		if col != color {
			continue
		}
		mine = append(mine, member{col, int(all[r][1]), int(all[r][2]), r})
	}
	sort.Slice(mine, func(a, b int) bool {
		if mine[a].key != mine[b].key {
			return mine[a].key < mine[b].key
		}
		return mine[a].commRank < mine[b].commRank
	})
	members := make([]int, len(mine))
	for i, m := range mine {
		members[i] = m.worldRank
	}
	// All ranks with the same color must agree on the new communicator's
	// identity. Derive it deterministically through a per-world registry
	// keyed by (parent comm, generation, color).
	ikey := fmt.Sprintf("%d/%d:%v", c.shared.id, color, members)
	cs := c.shared.world.internComm(ikey, members, c.shared.epoch)
	return cs.forRank(c.worldRank)
}

// internComm returns a single commShared instance per key so that all ranks
// of a Split or Shrink share coordinator state.
func (w *World) internComm(key string, members []int, epoch int) *commShared {
	w.commIDMu.Lock()
	defer w.commIDMu.Unlock()
	if w.interned == nil {
		w.interned = make(map[string]*commShared)
	}
	if cs, ok := w.interned[key]; ok {
		// A communicator is consumed once per Split generation; bump the
		// use-count and recycle.
		cs.useCount++
		if cs.useCount == len(members) {
			delete(w.interned, key)
		}
		return cs
	}
	cs := w.newCommLocked(members, epoch)
	cs.useCount = 1
	if cs.useCount == len(members) {
		// singleton communicator: nothing further to coordinate
		return cs
	}
	w.interned[key] = cs
	return cs
}

func (w *World) newCommLocked(members []int, epoch int) *commShared {
	id := w.nextCommID
	w.nextCommID++
	cs := &commShared{
		id:      id,
		world:   w,
		members: members,
		epoch:   epoch,
		collBuf: make([][]float64, len(members)),
		collClk: make([]float64, len(members)),
		collOut: make([][]float64, len(members)),
	}
	cs.collCond = sync.NewCond(&cs.collMu)
	w.comms = append(w.comms, cs)
	return cs
}
