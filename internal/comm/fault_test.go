package comm

import (
	"errors"
	"math"
	"sort"
	"testing"
)

// Fault decisions must be a pure function of (seed, route, sequence) — the
// same plan replayed over any goroutine schedule injects the same faults.
func TestFaultPlanDeterministic(t *testing.T) {
	p := &FaultPlan{Seed: 42, DropProb: 0.3, DelayProb: 0.3, CorruptProb: 0.3}
	type dec struct {
		drop, delay, corrupt bool
		elem                 uint64
	}
	ref := make([]dec, 0, 64)
	for seq := int64(0); seq < 64; seq++ {
		d1, d2, d3, e := p.decide(1, 2, 7, seq)
		ref = append(ref, dec{d1, d2, d3, e})
	}
	for seq := int64(0); seq < 64; seq++ {
		d1, d2, d3, e := p.decide(1, 2, 7, seq)
		if (dec{d1, d2, d3, e}) != ref[seq] {
			t.Fatalf("decision for seq %d not reproducible", seq)
		}
	}
	// Distinct routes draw from distinct hash streams.
	same := 0
	for seq := int64(0); seq < 64; seq++ {
		d1, d2, d3, e := p.decide(2, 1, 7, seq)
		if (dec{d1, d2, d3, e}) == ref[seq] {
			same++
		}
	}
	if same == 64 {
		t.Fatal("reversed route produced identical decisions — route not hashed")
	}
}

// A scheduled kill surfaces to every surviving rank as a typed RankFailure
// at their next collective, is recorded in Stats.Killed, and — being the
// experiment — is excluded from RunPlan's returned error.
func TestRunPlanScheduledKillSurfacesAsRankFailure(t *testing.T) {
	plan := &FaultPlan{Kill: map[int]int{2: 1}}
	faults := make([]error, 4)
	st, err := RunPlan(4, DefaultMachine(), plan, func(c *Comm) error {
		faults[c.Rank()] = Catch(func() {
			c.AllReduceSum([]float64{1})
		})
		return nil
	})
	if err != nil {
		t.Fatalf("scheduled kill leaked into the run error: %v", err)
	}
	if len(st.Killed) != 1 || st.Killed[0] != 2 {
		t.Fatalf("Stats.Killed = %v, want [2]", st.Killed)
	}
	for r, fe := range faults {
		if r == 2 {
			continue
		}
		if !IsRankFailure(fe) {
			t.Fatalf("rank %d: fault = %v, want RankFailure", r, fe)
		}
		// The named rank is whichever gone member the waiter observed first:
		// the killed rank, or a survivor that already failed out and exited.
		var rf *RankFailure
		if errors.As(fe, &rf) && rf.Rank == r {
			t.Fatalf("rank %d observed itself as failed", r)
		}
	}
}

// Shrink-and-retry: after a kill, every survivor revokes the wounded world,
// shrinks onto the live members with compacted ranks, and completes the
// collective that failed.
func TestShrinkAfterKill(t *testing.T) {
	plan := &FaultPlan{Kill: map[int]int{1: 1}}
	sums := make([]float64, 4)
	ranks := make([]int, 4)
	for i := range ranks {
		ranks[i] = -1
	}
	_, err := RunPlan(4, DefaultMachine(), plan, func(c *Comm) error {
		fe := Catch(func() { c.AllReduceSum([]float64{1}) })
		if fe == nil {
			return errors.New("collective with a dead member succeeded")
		}
		if !Retryable(fe) {
			return fe
		}
		nc := c.Shrink()
		if nc.Size() != 3 {
			return errors.New("shrunk world has wrong size")
		}
		ranks[c.Rank()] = nc.Rank()
		sums[c.Rank()] = nc.AllReduceSum([]float64{1})[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 2, 3} {
		if sums[r] != 3 {
			t.Fatalf("rank %d: shrunk AllReduceSum = %v, want 3", r, sums[r])
		}
	}
	got := []int{ranks[0], ranks[2], ranks[3]}
	sort.Ints(got)
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("shrunk ranks not compacted in order: %v", ranks)
	}
}

// Operations on a revoked communicator fail with RevokedError on every
// member — including members with no route to the failed rank.
func TestRevokeUnblocksUnrelatedReceiver(t *testing.T) {
	_, err := RunErr(3, DefaultMachine(), func(c *Comm) error {
		switch c.Rank() {
		case 0:
			// Waits for a message rank 1 will never send; must be freed by
			// rank 2's revocation rather than deadlock.
			_, fe := c.RecvErr(1, 9)
			if !IsRevoked(fe) && !IsRankFailure(fe) {
				return errors.New("blocked receiver not released by revoke")
			}
		case 1:
			// Blocks forever on rank 2's never-sent message until revocation.
			_, fe := c.RecvErr(2, 8)
			if !IsRevoked(fe) && !IsRankFailure(fe) {
				return errors.New("blocked receiver not released by revoke")
			}
		case 2:
			c.Revoke()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// RecvTimeout is virtual-time deterministic: it delivers a message whose
// send clock is within the deadline, and times out — advancing the receiver
// to the deadline — once the sender's clock passed it without sending.
func TestRecvTimeoutVirtualTime(t *testing.T) {
	_, err := RunErr(2, DefaultMachine(), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{42})
			c.Elapse(5) // provably past the deadline of the second receive
			c.Barrier()
			return nil
		}
		data, fe := c.RecvTimeout(0, 1, 1.0)
		if fe != nil || data[0] != 42 {
			return errors.New("in-deadline message not delivered")
		}
		_, fe = c.RecvTimeout(0, 2, 1.0)
		if !IsTimeout(fe) {
			return errors.New("expired deadline did not time out")
		}
		var te *TimeoutError
		errors.As(fe, &te)
		if c.Clock() < te.Deadline {
			return errors.New("timeout did not advance the receiver clock to the deadline")
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A dropped message is survivable through RecvTimeout; the sender is still
// charged, so the clock model stays consistent.
func TestDroppedMessageTimesOut(t *testing.T) {
	plan := &FaultPlan{Seed: 1, DropProb: 1}
	_, err := RunPlan(2, DefaultMachine(), plan, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{1, 2, 3})
			c.Elapse(5)
			c.Barrier()
			return nil
		}
		_, fe := c.RecvTimeout(0, 3, 1.0)
		if !IsTimeout(fe) {
			return errors.New("dropped message should time out, not deliver")
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Corruption pokes exactly one NaN into the payload — the detectable fault
// the numerical layers quarantine with their finite checks.
func TestCorruptionInjectsNaN(t *testing.T) {
	plan := &FaultPlan{Seed: 2, CorruptProb: 1}
	_, err := RunPlan(2, DefaultMachine(), plan, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 4, []float64{1, 2, 3, 4})
			return nil
		}
		data := c.Recv(0, 4)
		nan := 0
		for _, v := range data {
			if math.IsNaN(v) {
				nan++
			}
		}
		if nan != 1 {
			return errors.New("corrupted payload should carry exactly one NaN")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The collectives' misuse panics now carry typed, contextful CommError
// values that Catch converts into errors.
func TestCollectiveMismatchIsTypedError(t *testing.T) {
	_, err := RunErr(2, DefaultMachine(), func(c *Comm) error {
		return Catch(func() {
			c.AllReduceSum(make([]float64, 1+c.Rank()))
		})
	})
	var ce *CommError
	if !errors.As(err, &ce) {
		t.Fatalf("length mismatch error = %v, want *CommError", err)
	}
	if ce.Op != "AllReduceSum" {
		t.Fatalf("CommError.Op = %q, want AllReduceSum", ce.Op)
	}
}

// A rank that exits its body while peers still wait on it must surface as a
// RankFailure on the peers, not a deadlock.
func TestEarlyExitMarksRankDead(t *testing.T) {
	_, err := RunErr(2, DefaultMachine(), func(c *Comm) error {
		if c.Rank() == 0 {
			return nil // exits immediately, sends nothing
		}
		_, fe := c.RecvErr(0, 6)
		if !IsRankFailure(fe) {
			return errors.New("receive from an exited rank should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A panic inside Compute must not deadlock the world: the compute lock is
// released on unwind and the fault reaches RunErr's per-rank recovery.
func TestComputePanicDoesNotDeadlock(t *testing.T) {
	_, err := RunErr(2, DefaultMachine(), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Compute(func() { panic("boom") })
		}
		c.Compute(func() {}) // must still acquire the compute lock
		return nil
	})
	if err == nil {
		t.Fatal("escaped compute panic should be reported")
	}
}
