package predict

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/dalia-hpc/dalia/internal/dense"
	"github.com/dalia-hpc/dalia/internal/inla"
	"github.com/dalia-hpc/dalia/internal/mesh"
	"github.com/dalia-hpc/dalia/internal/synth"
)

// fitted caches one small fitted bivariate model for the whole test file
// (fitting dominates test time; every invariant shares the same fit).
type fitted struct {
	ds  *synth.Dataset
	res *inla.Result
	pr  *Predictor
}

var (
	fitOnce sync.Once
	fitVal  fitted
	fitErr  error
)

func getFitted(t *testing.T) fitted {
	t.Helper()
	fitOnce.Do(func() {
		ds, err := synth.Generate(synth.GenConfig{
			Nv: 2, Nt: 4, Nr: 2,
			MeshNx: 4, MeshNy: 4,
			ObsPerStep: 25,
			Seed:       11,
		})
		if err != nil {
			fitErr = err
			return
		}
		prior := inla.WeakPrior(ds.Theta0, 5)
		opts := inla.DefaultFitOptions()
		opts.Opt.MaxIter = 10
		opts.SkipHyperUncertainty = true
		res, err := inla.Fit(ds.Model, prior, ds.Theta0, opts)
		if err != nil {
			fitErr = err
			return
		}
		pr, err := New(ds.Model, res)
		if err != nil {
			fitErr = err
			return
		}
		fitVal = fitted{ds: ds, res: res, pr: pr}
	})
	if fitErr != nil {
		t.Fatal(fitErr)
	}
	return fitVal
}

// randomQueries draws in-domain queries across times, responses and
// covariate values.
func randomQueries(rng *rand.Rand, f fitted, n int) []Query {
	d := f.ds.Model.Dims
	qs := make([]Query, n)
	for i := range qs {
		cov := make([]float64, d.Nr)
		cov[0] = 1
		for r := 1; r < d.Nr; r++ {
			cov[r] = rng.NormFloat64()
		}
		qs[i] = Query{
			Point:      mesh.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300},
			T:          rng.Intn(d.Nt),
			Response:   rng.Intn(d.Nv),
			Covariates: cov,
		}
	}
	return qs
}

// Predictive variances are nonnegative everywhere, and adding observation
// noise strictly increases them.
func TestPredictiveVarianceNonnegative(t *testing.T) {
	f := getFitted(t)
	rng := rand.New(rand.NewSource(1))
	qs := randomQueries(rng, f, 150)
	_, vars, err := f.pr.Predict(qs)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := New(f.ds.Model, f.res, WithObservationNoise())
	if err != nil {
		t.Fatal(err)
	}
	_, nvars, err := noisy.Predict(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vars {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("query %d: predictive variance %v", i, v)
		}
		if nvars[i] <= v {
			t.Fatalf("query %d: noise did not increase variance (%v vs %v)", i, nvars[i], v)
		}
	}
}

// A query exactly at an observed mesh node with zero covariates must
// reproduce the latent marginal the fit already computed, scaled through
// the coregionalization (for response 0, the single factor Λ[0,0]).
func TestObservedNodeReproducesLatentMarginal(t *testing.T) {
	f := getFitted(t)
	d := f.ds.Model.Dims
	msh := f.ds.Model.Builder.Mesh
	lc := f.pr.Theta().Lambda.CoregView()
	s := lc.At(0, 0)
	for _, node := range []int{0, 5, d.Ns - 1} {
		for _, tm := range []int{0, d.Nt - 1} {
			q := Query{Point: msh.Nodes[node], T: tm, Response: 0}
			means, vars, err := f.pr.Predict([]Query{q})
			if err != nil {
				t.Fatal(err)
			}
			idx := f.ds.Model.BTAIndex(tm*d.Ns + node)
			wantMean, wantSD := f.res.LatentMarginal(idx)
			if math.Abs(means[0]-s*wantMean) > 1e-10*(1+math.Abs(s*wantMean)) {
				t.Errorf("node %d t %d: mean %v, latent marginal gives %v", node, tm, means[0], s*wantMean)
			}
			wantVar := s * s * wantSD * wantSD
			if math.Abs(vars[0]-wantVar) > 1e-8*(1+wantVar) {
				t.Errorf("node %d t %d: var %v, latent marginal gives %v", node, tm, vars[0], wantVar)
			}
		}
	}
}

// Predictive means must agree with the existing independent downscaling
// path (model.PredictMean applied to the posterior mean).
func TestMeansMatchModelPredictMean(t *testing.T) {
	f := getFitted(t)
	rng := rand.New(rand.NewSource(2))
	qs := randomQueries(rng, f, 40)
	means, _, err := f.pr.Predict(qs)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]mesh.Point, len(qs))
	tidx := make([]int, len(qs))
	cov := dense.New(len(qs), f.ds.Model.Dims.Nr)
	for i, q := range qs {
		pts[i] = q.Point
		tidx[i] = q.T
		for r, v := range q.Covariates {
			cov.Set(i, r, v)
		}
	}
	ref, err := f.ds.Model.PredictMean(f.pr.Theta(), f.res.Mu, pts, tidx, cov)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if math.Abs(means[i]-ref[q.Response][i]) > 1e-10*(1+math.Abs(ref[q.Response][i])) {
			t.Errorf("query %d: mean %v, PredictMean %v", i, means[i], ref[q.Response][i])
		}
	}
}

// Predictive variances must match a direct dense reference: Σ = Q_c⁻¹
// computed by dense inversion, variance = φᵀΣφ with φ recovered from the
// solver path itself being cross-checked through the mean tests above.
func TestVariancesMatchDenseReference(t *testing.T) {
	f := getFitted(t)
	rng := rand.New(rand.NewSource(3))
	qs := randomQueries(rng, f, 12)
	means, vars, err := f.pr.Predict(qs)
	if err != nil {
		t.Fatal(err)
	}
	qc, err := f.ds.Model.Qc(f.pr.Theta())
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := dense.Inverse(qc.ToDense())
	if err != nil {
		t.Fatal(err)
	}
	d := f.ds.Model.Dims
	lc := f.pr.Theta().Lambda.CoregView()
	msh := f.ds.Model.Builder.Mesh
	per := d.PerProcess()
	dim := d.Total()
	for i, q := range qs {
		// Independent φ assembly in BTA coordinates.
		phi := make([]float64, dim)
		ti, bc, err := msh.Locate(q.Point)
		if err != nil {
			t.Fatal(err)
		}
		tri := msh.Tri[ti]
		for j := 0; j <= q.Response; j++ {
			fw := lc.At(q.Response, j)
			for v := 0; v < 3; v++ {
				phi[f.ds.Model.BTAIndex(j*per+q.T*d.Ns+tri[v])] += fw * bc[v]
			}
			for r := 0; r < d.Nr; r++ {
				phi[f.ds.Model.BTAIndex(j*per+d.Ns*d.Nt+r)] += fw * q.Covariates[r]
			}
		}
		var wantVar, wantMean float64
		for a := 0; a < dim; a++ {
			wantMean += phi[a] * f.res.Mu[a]
			row := sigma.Row(a)
			for b := 0; b < dim; b++ {
				wantVar += phi[a] * row[b] * phi[b]
			}
		}
		if math.Abs(vars[i]-wantVar) > 1e-8*(1+wantVar) {
			t.Errorf("query %d: var %v, dense reference %v", i, vars[i], wantVar)
		}
		if math.Abs(means[i]-wantMean) > 1e-8*(1+math.Abs(wantMean)) {
			t.Errorf("query %d: mean %v, dense reference %v", i, means[i], wantMean)
		}
	}
}

// The batched prediction path performs zero heap allocations after the
// pooled scratch warms up.
func TestPredictIntoAllocs(t *testing.T) {
	if dense.RaceEnabled {
		t.Skip("race-mode sync.Pool drops Put items; zero-alloc assertion only holds without -race")
	}
	f := getFitted(t)
	rng := rand.New(rand.NewSource(4))
	qs := randomQueries(rng, f, f.pr.MaxBatch())
	means := make([]float64, len(qs))
	vars := make([]float64, len(qs))
	// Warm the pool.
	if err := f.pr.PredictInto(qs, means, vars); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := f.pr.PredictInto(qs, means, vars); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PredictInto allocates %.1f objects per run, want 0", allocs)
	}
	// Partial batches go through narrowed (memoized) workspaces and stay
	// allocation-free too once their width has been seen.
	part := qs[:5]
	if err := f.pr.PredictInto(part, means[:5], vars[:5]); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(10, func() {
		if err := f.pr.PredictInto(part, means[:5], vars[:5]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("partial-batch PredictInto allocates %.1f objects per run, want 0", allocs)
	}
}

// Chunking across several batches gives identical answers to one query at
// a time.
func TestBatchChunkingConsistent(t *testing.T) {
	f := getFitted(t)
	rng := rand.New(rand.NewSource(5))
	qs := randomQueries(rng, f, 2*f.pr.MaxBatch()+7)
	means, vars, err := f.pr.Predict(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		m1, v1, err := f.pr.Predict([]Query{q})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m1[0]-means[i]) > 1e-12*(1+math.Abs(means[i])) || math.Abs(v1[0]-vars[i]) > 1e-12*(1+vars[i]) {
			t.Fatalf("query %d: batched (%v,%v) vs single (%v,%v)", i, means[i], vars[i], m1[0], v1[0])
		}
	}
}

// Invalid queries are rejected with errors, not panics.
func TestQueryValidation(t *testing.T) {
	f := getFitted(t)
	d := f.ds.Model.Dims
	bad := []Query{
		{Point: mesh.Point{X: 1, Y: 1}, T: -1, Response: 0},
		{Point: mesh.Point{X: 1, Y: 1}, T: d.Nt, Response: 0},
		{Point: mesh.Point{X: 1, Y: 1}, T: 0, Response: d.Nv},
		{Point: mesh.Point{X: 1, Y: 1}, T: 0, Response: -1},
		{Point: mesh.Point{X: 1, Y: 1}, T: 0, Response: 0, Covariates: []float64{1}},
	}
	for i, q := range bad {
		if _, _, err := f.pr.Predict([]Query{q}); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}
